#!/usr/bin/env bash
# Pre-merge gate: the full verification matrix for this repo. Run from the
# repository root before merging any change:
#
#   ./ci/check.sh            # everything
#   ./ci/check.sh --fast     # tier-1 only (Release build + ctest, audited)
#
# Matrix:
#   1. default preset  — RelWithDebInfo, REMOS_AUDIT=ON, full ctest
#                        (includes the remos_lint ctest and test_audit)
#   2. perf-smoke      — micro_waterfill --smoke; the deterministic
#                        water-filling round counts must match the pins in
#                        bench/waterfill_rounds.json (tools/check_waterfill.py)
#   2b. query-smoke    — micro_query_scale --smoke; workload shape and the
#                        QueryServer's coalescing counters must match the
#                        pins in bench/query_scale_pins.json, and the
#                        snapshot path must hold its >=3x throughput edge
#                        over the mutex path (tools/check_query_scale.py)
#   2c. rps-smoke      — micro_rps_scale --smoke; fleet shape and the
#                        FleetPredictor/warm-tier counters must match the
#                        pins in bench/rps_scale_pins.json, and the
#                        incremental fit path must hold its >=5x edge over
#                        the full-refit baseline at 100k series
#                        (tools/check_rps_scale.py)
#   3. sanitize preset — ASan + UBSan, full ctest
#   4. tsan preset     — ThreadSanitizer on the threaded test binaries
#                        (ThreadPool, shared prediction cache, query fleet)
#   5. golden runs     — every golden scenario twice (fresh process each),
#                        exports diffed byte-for-byte; then once under the
#                        tsan preset, diffed against the default-preset run
#                        (determinism must survive both schedulers); the
#                        query transcript gets the same two-build treatment
#   6. remos_lint      — project lint (self-test first), run standalone for
#                        a readable report
#   7. remos_analyze   — whole-project static analysis (lock discipline,
#                        determinism leaks, layer DAG, audit coverage,
#                        concurrency escapes) plus the fail-path corpus;
#                        the --json report is kept as a CI artifact under
#                        build/, diffed per pass against the pinned
#                        tools/analyze/baseline.json, re-run from the tsan
#                        build, and both reports byte-diffed (the analyzer
#                        itself must be deterministic across builds)
#   8. clang-tidy      — `lint` build target (skips itself when clang-tidy
#                        is not installed; see .clang-tidy for the profile)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

step() { printf '\n=== %s ===\n' "$*"; }

step "tier-1: default preset (audited Release) + ctest"
cmake --preset default >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

if [[ "$FAST" == 1 ]]; then
  echo "--fast: skipping sanitize/tsan/lint stages"
  exit 0
fi

step "perf-smoke: deterministic water-filling round counts vs pins"
cmake --build build -j "$JOBS" --target micro_waterfill
./build/bench/micro_waterfill --smoke --out build/BENCH_waterfill_smoke.json
python3 tools/check_waterfill.py --measured build/BENCH_waterfill_smoke.json \
  --pins bench/waterfill_rounds.json

step "query-smoke: snapshot-path coalescing counters + speedup vs pins"
cmake --build build -j "$JOBS" --target micro_query_scale
./build/bench/micro_query_scale --smoke --out build/BENCH_query_scale_smoke.json
python3 tools/check_query_scale.py --measured build/BENCH_query_scale_smoke.json \
  --pins bench/query_scale_pins.json

step "rps-smoke: fleet-prediction counters + incremental-fit speedup vs pins"
cmake --build build -j "$JOBS" --target micro_rps_scale
./build/bench/micro_rps_scale --smoke --out build/BENCH_rps_scale_smoke.json
python3 tools/check_rps_scale.py --measured build/BENCH_rps_scale_smoke.json \
  --pins bench/rps_scale_pins.json

step "sanitize preset (ASan + UBSan) + ctest"
cmake --preset sanitize >/dev/null
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

step "tsan preset (ThreadSanitizer) on the threaded tests"
cmake --preset tsan >/dev/null
cmake --build build-tsan -j "$JOBS" --target test_concurrency test_sim_thread_pool \
  test_rps_shared_cache test_query_scale
# ci/tsan.supp: libstdc++ _Sp_atomic lock-bit false positive (GCC PR101761).
TSAN_OPTIONS="suppressions=$PWD/ci/tsan.supp" \
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
  -R 'Concurrency|ThreadPool|SharedPredictionCache|QueryScale'

step "golden-run determinism: two fresh processes, byte-identical exports"
GOLDEN_TMP="$(mktemp -d)"
trap 'rm -rf "$GOLDEN_TMP"' EXIT
mkdir -p "$GOLDEN_TMP/run1" "$GOLDEN_TMP/run2" "$GOLDEN_TMP/tsan"
REMOS_OBS_EXPORT_DIR="$GOLDEN_TMP/run1" ./build/tests/test_observability \
  --gtest_filter='GoldenRun.*' >/dev/null
REMOS_OBS_EXPORT_DIR="$GOLDEN_TMP/run2" ./build/tests/test_observability \
  --gtest_filter='GoldenRun.*' >/dev/null
diff -r "$GOLDEN_TMP/run1" "$GOLDEN_TMP/run2"
echo "same-build reruns identical"

cmake --build build-tsan -j "$JOBS" --target test_observability
REMOS_OBS_EXPORT_DIR="$GOLDEN_TMP/tsan" ./build-tsan/tests/test_observability \
  --gtest_filter='GoldenRun.*' >/dev/null
diff -r "$GOLDEN_TMP/run1" "$GOLDEN_TMP/tsan"
echo "tsan-build exports identical to default-build exports"

# The query transcript pin is byte-compared inside the test itself, so
# running it from a fresh process in each build proves both rerun
# determinism and that TSan instrumentation didn't perturb the float math
# (both runs equal the pin => equal each other).
./build/tests/test_query_golden >/dev/null
cmake --build build-tsan -j "$JOBS" --target test_query_golden
./build-tsan/tests/test_query_golden >/dev/null
echo "query transcript identical across fresh default-build and tsan-build runs"

step "remos_lint"
python3 tools/remos_lint.py --self-test
python3 tools/remos_lint.py --root .

step "remos_analyze: static analysis + hot-path inventory ratchet + fail-path corpus"
cmake --build build -j "$JOBS" --target remos_analyze
./build/tools/analyze/remos_analyze --root . --json > build/remos_analyze.json \
  || { cat build/remos_analyze.json; exit 1; }
./build/tools/analyze/remos_analyze --root .
python3 tools/check_analyze_baseline.py --report build/remos_analyze.json \
  --baseline tools/analyze/baseline.json
python3 tests/analyze_corpus/run_corpus.py \
  --analyzer ./build/tools/analyze/remos_analyze --corpus tests/analyze_corpus

step "remos_analyze determinism: tsan-build run, byte-identical report"
cmake --build build-tsan -j "$JOBS" --target remos_analyze
./build-tsan/tools/analyze/remos_analyze --root . --json \
  > build-tsan/remos_analyze.json \
  || { cat build-tsan/remos_analyze.json; exit 1; }
diff build/remos_analyze.json build-tsan/remos_analyze.json
echo "tsan-build analyzer report identical to default-build report"

step "clang-tidy (lint target; no-op when clang-tidy is absent)"
cmake --build build --target lint

echo
echo "ci/check.sh: all stages passed"
