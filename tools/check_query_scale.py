#!/usr/bin/env python3
"""Check micro_query_scale output against the deterministic coalescing pins.

The query-scale bench's workload is seeded, so its shape — query mix and the
number of distinct flow/predict coalescing keys per fleet size — is a pure
function of the fleet size, identical on every machine and build mode. Those
facts are pinned (bench/query_scale_pins.json) and this checker also asserts
the QueryServer's own counters obey the coalescing contract:

  * every snapshot row computed exactly `distinct_keys` answers, and
  * coalesce_hits == flow_queries + predict_queries - distinct_keys, and
  * admission control rejected nothing (the bench never saturates it).

Mutex rows carry zeros for the coalescing counters (the retained locked path
recomputes every query and doesn't touch the coalescing tables), so only the
workload-shape pins apply to them. When a mutex row and a snapshot row exist
at the same fleet size, the snapshot path must also beat the mutex path by
the acceptance multiplier (default 3x) — the throughput claim the snapshot
publication PR made, re-proven on whatever machine runs CI.

Usage: check_query_scale.py --measured <bench-json> --pins <pins-json>
                            [--min-speedup 3.0]
"""

import argparse
import json
import sys


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--measured", required=True, help="micro_query_scale --out JSON")
    ap.add_argument("--pins", required=True, help="pinned workload-shape JSON")
    ap.add_argument("--min-speedup", type=float, default=3.0,
                    help="required snapshot/mutex throughput ratio at equal size")
    args = ap.parse_args()

    with open(args.measured, encoding="utf-8") as f:
        measured = json.load(f)["benchmarks"]
    with open(args.pins, encoding="utf-8") as f:
        pins = json.load(f)

    failures = []
    checked = 0
    mutex_qps = {}
    snapshot_qps = {}
    for entry in measured:
        tag = f"{entry['name']}/{entry['clients']}"
        if entry.get("baseline_qps") == 0.0:
            failures.append(
                f"{tag}: baseline_qps is a 0.0 placeholder — omit the key "
                "when no baseline was recorded"
            )
        if entry["queries"] != entry["clients"]:
            failures.append(
                f"{tag}: served {entry['queries']} queries for "
                f"{entry['clients']} clients (lost or duplicated work)"
            )
        pin = pins.get(str(entry["clients"]))
        if pin is not None:
            checked += 1
            for key, want in pin.items():
                got = entry.get(key)
                if got != want:
                    failures.append(
                        f"{tag}: {key} {got} != pinned {want} (workload "
                        "generator drifted; re-record deliberately)"
                    )
        if entry["name"] == "snapshot":
            snapshot_qps[entry["clients"]] = entry["qps"]
            distinct = entry["distinct_keys"]
            recurring = entry["flow_queries"] + entry["predict_queries"] - distinct
            if entry["computations"] != distinct:
                failures.append(
                    f"{tag}: computed {entry['computations']} answers for "
                    f"{distinct} distinct keys (coalescing leaked or starved)"
                )
            if entry["coalesce_hits"] != recurring:
                failures.append(
                    f"{tag}: {entry['coalesce_hits']} coalesce hits != "
                    f"{recurring} recurring queries (accounting drifted)"
                )
            if entry["predict_rejected"] != 0:
                failures.append(
                    f"{tag}: admission control rejected "
                    f"{entry['predict_rejected']} predictions in a bench "
                    "sized not to saturate it"
                )
        elif entry["name"] == "mutex":
            mutex_qps[entry["clients"]] = entry["qps"]

    for clients, base in sorted(mutex_qps.items()):
        snap = snapshot_qps.get(clients)
        if snap is None or base <= 0.0:
            continue
        ratio = snap / base
        if ratio < args.min_speedup:
            failures.append(
                f"snapshot/{clients}: {ratio:.2f}x mutex path < required "
                f"{args.min_speedup:.1f}x (lock-free read path regressed)"
            )

    if checked == 0:
        failures.append("no measured benchmark matched any pin — wrong files?")

    for msg in failures:
        print(f"check_query_scale: FAIL {msg}", file=sys.stderr)
    if not failures:
        print(
            f"check_query_scale: {checked} pinned workload shapes match; "
            f"coalescing accounting exact"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
