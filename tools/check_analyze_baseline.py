#!/usr/bin/env python3
"""Diff a remos_analyze --json report against the checked-in baseline.

    check_analyze_baseline.py --report build/remos_analyze.json \
        --baseline tools/analyze/baseline.json

The baseline pins two per-pass maps:

  counts             findings that survived suppression (zero for a clean
                     tree: absent pass == 0)
  suppressions_used  suppressions that ate a finding — the accepted budget

plus the hot-path inventory (baseline key "hotpath"):

  direct_functions    the `// remos-hot` entry points — losing one means an
                      annotation was dropped, gaining one means a new hot
                      contract that review must see
  function_count      size of the transitive hot closure
  site_status_counts  "kind:status" histogram of every alloc/io/block site
                      in the closure (arena, suppressed, leaf-mutex, ...)

Any drift in either direction fails: new findings or suppressions must be
pinned consciously (update the baseline in the same PR), and a drop means
the baseline is stale and should be ratcheted down.
"""

import argparse
import json
import sys


def diff_maps(kind: str, actual: dict, pinned: dict) -> list[str]:
    problems = []
    for key in sorted(set(actual) | set(pinned)):
        a, p = int(actual.get(key, 0)), int(pinned.get(key, 0))
        if a > p:
            problems.append(
                f"{kind}[{key}]: {a} > baseline {p} — new {kind.replace('_', ' ')};"
                " fix them or pin them in tools/analyze/baseline.json"
            )
        elif a < p:
            problems.append(
                f"{kind}[{key}]: {a} < baseline {p} — baseline is stale;"
                " ratchet tools/analyze/baseline.json down"
            )
    return problems


def diff_hotpath(report: dict, pinned: dict) -> list[str]:
    problems = []
    inv = report.get("hotpath", {})
    functions = inv.get("functions", [])

    actual_direct = sorted({f["function"] for f in functions if f.get("direct")})
    pinned_direct = sorted(set(pinned.get("direct_functions", [])))
    for name in sorted(set(pinned_direct) - set(actual_direct)):
        problems.append(
            f"hotpath.direct_functions: `{name}` pinned but not in the report —"
            " a `// remos-hot` annotation was dropped (or the function renamed);"
            " restore it or ratchet tools/analyze/baseline.json"
        )
    for name in sorted(set(actual_direct) - set(pinned_direct)):
        problems.append(
            f"hotpath.direct_functions: `{name}` is newly hot —"
            " pin the new entry point in tools/analyze/baseline.json"
        )

    actual_count = {"functions": int(inv.get("function_count", 0))}
    pinned_count = {"functions": int(pinned.get("function_count", 0))}
    problems += diff_maps("hotpath.closure", actual_count, pinned_count)

    statuses: dict[str, int] = {}
    for f in functions:
        for s in f.get("sites", []):
            key = f"{s['kind']}:{s.get('status') or 'flagged'}"
            statuses[key] = statuses.get(key, 0) + 1
    problems += diff_maps(
        "hotpath.site_status_counts", statuses, pinned.get("site_status_counts", {})
    )
    return problems


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--report", required=True)
    ap.add_argument("--baseline", required=True)
    args = ap.parse_args()

    with open(args.report) as f:
        report = json.load(f)
    with open(args.baseline) as f:
        baseline = json.load(f)

    problems = diff_maps("counts", report.get("counts", {}), baseline.get("counts", {}))
    problems += diff_maps(
        "suppressions_used",
        report.get("suppressions_used", {}),
        baseline.get("suppressions_used", {}),
    )
    problems += diff_hotpath(report, baseline.get("hotpath", {}))

    if problems:
        for p in problems:
            print(f"check_analyze_baseline: {p}")
        return 1
    print("check_analyze_baseline: report matches baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
