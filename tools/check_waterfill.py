#!/usr/bin/env python3
"""Compare micro_waterfill's deterministic round counts against the pins.

The water-filling round count of each benched problem is a pure function of
the topology and flow population — identical on every machine and build
mode — so it is pinned (bench/waterfill_rounds.json) and CI fails when a
measurement drifts. More rounds means the kernel lost freezing efficiency
(a perf regression even if wall-clock noise hides it); fewer rounds means
the algorithm changed and the pin must be re-recorded deliberately:

    ./build/bench/micro_waterfill --out /tmp/wf.json   # then copy the
    # per-size "rounds" values into bench/waterfill_rounds.json

Usage: check_waterfill.py --measured <bench-json> --pins <pins-json>
"""

import argparse
import json
import sys


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--measured", required=True, help="micro_waterfill --out JSON")
    ap.add_argument("--pins", required=True, help="pinned rounds JSON")
    args = ap.parse_args()

    with open(args.measured, encoding="utf-8") as f:
        measured = json.load(f)["benchmarks"]
    with open(args.pins, encoding="utf-8") as f:
        pins = json.load(f)

    failures = []
    checked = 0
    for entry in measured:
        pin = pins.get(entry["name"], {}).get(str(entry["size"]))
        if pin is None:
            continue
        checked += 1
        rounds = entry["rounds"]
        if rounds > pin:
            failures.append(
                f"{entry['name']}/{entry['size']}: {rounds} rounds > pinned {pin} "
                "(kernel freezing efficiency regressed)"
            )
        elif rounds < pin:
            failures.append(
                f"{entry['name']}/{entry['size']}: {rounds} rounds < pinned {pin} "
                "(algorithm changed; re-record bench/waterfill_rounds.json)"
            )
    if checked == 0:
        failures.append("no measured benchmark matched any pin — wrong files?")

    for msg in failures:
        print(f"check_waterfill: FAIL {msg}", file=sys.stderr)
    if not failures:
        print(f"check_waterfill: {checked} pinned round counts match")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
