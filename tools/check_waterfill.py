#!/usr/bin/env python3
"""Compare micro_waterfill's deterministic round counts against the pins.

The water-filling round count of each benched problem is a pure function of
the topology and flow population — identical on every machine and build
mode — so it is pinned (bench/waterfill_rounds.json) and CI fails when a
measurement drifts. More rounds means the kernel lost freezing efficiency
(a perf regression even if wall-clock noise hides it); fewer rounds means
the algorithm changed and the pin must be re-recorded deliberately:

    ./build/bench/micro_waterfill --out /tmp/wf.json   # then copy the
    # per-size "rounds" values into bench/waterfill_rounds.json

A pin is either a bare int (rounds) or {"rounds": N, "partitions": P}; the
partitioned kernel rows pin their component count too, so a partitioner
change that silently stops (or over-) splitting fails CI the same way a
round drift does. Rows carrying a baseline_ns_per_op of 0 are rejected
outright: they are placeholders that used to render as "speedup: 0.00"
instead of "no baseline recorded" (writers must omit the key instead).

Usage: check_waterfill.py --measured <bench-json> --pins <pins-json>
"""

import argparse
import json
import sys


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--measured", required=True, help="micro_waterfill --out JSON")
    ap.add_argument("--pins", required=True, help="pinned rounds JSON")
    args = ap.parse_args()

    with open(args.measured, encoding="utf-8") as f:
        measured = json.load(f)["benchmarks"]
    with open(args.pins, encoding="utf-8") as f:
        pins = json.load(f)

    failures = []
    checked = 0
    for entry in measured:
        tag = f"{entry['name']}/{entry['size']}"
        if entry.get("baseline_ns_per_op") == 0.0:
            failures.append(
                f"{tag}: baseline_ns_per_op is a 0.0 placeholder — omit the "
                "key when no baseline was recorded"
            )
        pin = pins.get(entry["name"], {}).get(str(entry["size"]))
        if pin is None:
            continue
        if isinstance(pin, dict):
            pinned_rounds = pin["rounds"]
            pinned_partitions = pin.get("partitions")
        else:
            pinned_rounds = pin
            pinned_partitions = None
        checked += 1
        rounds = entry["rounds"]
        if rounds > pinned_rounds:
            failures.append(
                f"{tag}: {rounds} rounds > pinned {pinned_rounds} "
                "(kernel freezing efficiency regressed)"
            )
        elif rounds < pinned_rounds:
            failures.append(
                f"{tag}: {rounds} rounds < pinned {pinned_rounds} "
                "(algorithm changed; re-record bench/waterfill_rounds.json)"
            )
        if pinned_partitions is not None:
            partitions = entry.get("partitions")
            if partitions != pinned_partitions:
                failures.append(
                    f"{tag}: {partitions} partitions != pinned {pinned_partitions} "
                    "(partitioner behavior changed; re-record deliberately)"
                )
    if checked == 0:
        failures.append("no measured benchmark matched any pin — wrong files?")

    for msg in failures:
        print(f"check_waterfill: FAIL {msg}", file=sys.stderr)
    if not failures:
        print(f"check_waterfill: {checked} pinned round counts match")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
