#!/usr/bin/env python3
"""Check micro_rps_scale output against the deterministic fleet pins.

The rps-scale bench's workload is seeded, so the fleet's shape and counters
— spec-shape groups, young (warm-seeded) series, refits, fit failures,
template publications, and warm-tier hits per round — are pure functions of
the fleet size, identical on every machine, build mode, and fit mode. Those
facts are pinned per fleet size (bench/rps_scale_pins.json), normalized per
round so smoke and full runs share one pin set, and checked for BOTH the
incremental and the full_refit rows (the counters must not depend on the
fit mode — that is the equivalence story in miniature).

On top of the shape pins, the perf ratchet: at --ratchet-series (default
100k live series) the incremental mode's fit+query+observe cost per
series-round must beat the full-refit baseline by --min-speedup (default
5x). That is the throughput claim the incremental-fits PR made, re-proven
on whatever machine runs CI; the comparison is measured live in the same
process, so machine speed cancels out.

Usage: check_rps_scale.py --measured <bench-json> --pins <pins-json>
                          [--min-speedup 5.0] [--ratchet-series 100000]
"""

import argparse
import json
import sys


# Pinned counter name -> (measured key, normalized per round?)
COUNTERS = {
    "groups": ("groups", False),
    "young": ("young", False),
    "refits_per_round": ("refits_total", True),
    "fit_failures_per_round": ("fit_failures", True),
    "seeded_per_round": ("seeded_predictions", True),
    "templates_per_round": ("templates_published", True),
    "warm_hits_per_round": ("warm_hits", True),
    "warm_misses": ("warm_misses", False),
    "predict_ok_per_round": ("predict_ok", True),
}


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--measured", required=True, help="micro_rps_scale --out JSON")
    ap.add_argument("--pins", required=True, help="pinned fleet-shape JSON")
    ap.add_argument("--min-speedup", type=float, default=5.0,
                    help="required full_refit/incremental cost ratio")
    ap.add_argument("--ratchet-series", type=int, default=100000,
                    help="fleet size the speedup ratchet is enforced at")
    args = ap.parse_args()

    with open(args.measured, encoding="utf-8") as f:
        measured = json.load(f)["benchmarks"]
    with open(args.pins, encoding="utf-8") as f:
        pins = json.load(f)

    failures = []
    checked = 0
    total_ns = {}  # (name, series) -> ns per series-round
    for entry in measured:
        tag = f"{entry['name']}/{entry['series']}"
        rounds = entry["rounds"]
        if rounds <= 0:
            failures.append(f"{tag}: rounds {rounds} is not positive")
            continue
        total_ns[(entry["name"], entry["series"])] = entry["total_ns"]
        if entry["total_ns"] <= 0.0:
            failures.append(f"{tag}: non-positive total_ns {entry['total_ns']}")
        pin = pins.get(str(entry["series"]))
        if pin is None:
            continue
        checked += 1
        for pin_key, want in pin.items():
            key, per_round = COUNTERS[pin_key]
            raw = entry.get(key)
            if raw is None:
                failures.append(f"{tag}: missing counter {key}")
                continue
            if per_round:
                if raw % rounds != 0:
                    failures.append(
                        f"{tag}: {key} {raw} not divisible by {rounds} rounds "
                        "(counter drifted mid-run; the fleet is not steady)"
                    )
                    continue
                got = raw // rounds
            else:
                got = raw
            if got != want:
                failures.append(
                    f"{tag}: {pin_key} {got} != pinned {want} (workload "
                    "generator or fleet accounting drifted; re-record "
                    "deliberately)"
                )

    ratchet = args.ratchet_series
    full = total_ns.get(("full_refit", ratchet))
    inc = total_ns.get(("incremental", ratchet))
    if full is None or inc is None:
        failures.append(
            f"ratchet: need full_refit and incremental rows at "
            f"{ratchet} series; got {sorted(total_ns)}"
        )
    elif inc > 0.0:
        ratio = full / inc
        if ratio < args.min_speedup:
            failures.append(
                f"ratchet/{ratchet}: incremental {ratio:.2f}x full refit < "
                f"required {args.min_speedup:.1f}x (sliding-window fit path "
                "regressed)"
            )

    if checked == 0:
        failures.append("no measured benchmark matched any pin — wrong files?")

    for msg in failures:
        print(f"check_rps_scale: FAIL {msg}", file=sys.stderr)
    if not failures:
        ratio = full / inc
        print(
            f"check_rps_scale: {checked} pinned fleet shapes match; "
            f"incremental {ratio:.2f}x full refit at {ratchet} series "
            f"(>= {args.min_speedup:.1f}x)"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
