#!/usr/bin/env python3
"""remos_lint: project-specific lint rules for the Remos reproduction.

Registered as a ctest (see the top-level CMakeLists.txt); exits non-zero on
any finding so CI fails. Rules:

  wallclock    Determinism: simulation code must use sim::Engine virtual
               time. Bans std::chrono::{system,steady,high_resolution}_clock,
               ::time(), gettimeofday, clock() in src/ and bench/. Exemption
               is two-sided: a file must appear in WALLCLOCK_ALLOWLIST below
               AND carry a  // remos-lint: allow-file(wallclock)  marker near
               its top, so neither an allowlist edit nor a pasted marker can
               grant an exemption on its own. A one-sided entry (either
               direction) is itself a finding.
  randomness   Determinism: bans rand()/srand()/random_device in src/
               (seedable sim::Rng is the only sanctioned entropy source).
  float-eq     ==/!= on floating-point expressions in src/net and src/core,
               where capacities/rates are derived arithmetically and exact
               comparison is a bug magnet. Comparisons against integer
               literals on non-float identifiers are not flagged (heuristic:
               see FLOAT_HINT).
  include      Hygiene: headers start with #pragma once; no relative
               ("../x", "./x") quoted includes — all project includes are
               rooted at src/.
  protocol     The ASCII wire protocol is frozen: the keyword set emitted by
               src/core/protocol_ascii.cpp must be exactly the known set, so
               a stray printf cannot silently extend the wire format.

Suppression: append  // remos-lint: allow(<rule>)  to the offending line.
"""

import argparse
import re
import sys
from pathlib import Path

# Files allowed to read the wall clock. Each entry must be matched by a
# `// remos-lint: allow-file(wallclock)` marker inside the file itself
# (two-sided exemption; see the module docstring).
#   bench/bench_util.hpp  real-time benchmark scaffolding
#   src/core/obs.cpp      optional annotate_realtime export stamp (off by
#                         default; never on for golden runs)
WALLCLOCK_ALLOWLIST = {
    "bench/bench_util.hpp",
    "src/core/obs.cpp",
}

# The frozen ASCII protocol keyword surface (PR 1 froze the wire format).
PROTOCOL_KEYWORDS = {"QUERY", "NODE", "END", "TOPOLOGY", "VNODE", "VEDGE", "COST", "COMPLETE"}
PROTOCOL_FILE = "src/core/protocol_ascii.cpp"

WALLCLOCK_PATTERNS = [
    (re.compile(r"std::chrono::(system|steady|high_resolution)_clock"), "std::chrono wall clock"),
    (re.compile(r"(?<![\w.:])time\s*\(\s*(nullptr|NULL|0|\&)"), "::time()"),
    (re.compile(r"(?<![\w.:])gettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"(?<![\w.:])clock\s*\(\s*\)"), "clock()"),
]

RANDOMNESS_PATTERNS = [
    (re.compile(r"(?<![\w.:])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"std::random_device"), "std::random_device"),
]

ALLOW_RE = re.compile(r"//\s*remos-lint:\s*allow\(([a-z-]+)\)")
ALLOW_FILE_RE = re.compile(r"//\s*remos-lint:\s*allow-file\(([a-z-]+)\)")

# Heuristic marker that an == / != operand is floating-point: a float
# literal, or an identifier conventionally holding a double in this repo.
# The literal alternative covers every C++ spelling: `1.0`, `1.`, `.5`,
# `1e9` / `1E-9`, and f/F-suffixed forms like `1.f` or `2e3f`. The
# lookbehind keeps hex literals (`0x1f`) and member tails (`v.x2`) out.
FLOAT_HINT = re.compile(
    r"((?<![\w.])(?:\d+\.\d*|\.\d+|\d+(?=[eEfF]))(?:[eE][+-]?\d+)?[fF]?|"
    r"_bps\b|_s\b|\bbps\b|latency\b|capacity\b|staleness\b|"
    r"demand\b|rate\b|util\w*\b|cost_s\b|infinity\(\))"
)
CMP_RE = re.compile(r"([^=!<>&|?:;,]{1,60}?)\s(==|!=)\s([^=&|?:;,]{1,60})")


def float_eq_hits(line: str) -> bool:
    """True if the line contains an ==/!= with a float-typed operand."""
    return any(
        FLOAT_HINT.search(m.group(1)) or FLOAT_HINT.search(m.group(3))
        for m in CMP_RE.finditer(line)
    )


# --self-test corpus: (rule, sample line, should_flag). Pins the heuristics
# so a regex tweak that silently widens or narrows a rule fails the ctest.
SELF_TEST_SAMPLES = [
    ("float-eq", "if (capacity == limit) {", True),
    ("float-eq", "if (x == 1.0) {", True),
    ("float-eq", "if (x != 1.) {", True),
    ("float-eq", "if (x == .5) {", True),
    ("float-eq", "if (x == 1.f) {", True),
    ("float-eq", "if (x == 2.5e3f) {", True),
    ("float-eq", "if (x == 1e-9) {", True),
    ("float-eq", "if (x == 1E9) {", True),
    ("float-eq", "if (rate != 0.0) {", True),
    ("float-eq", "if (count == 10) {", False),
    ("float-eq", "if (mask == 0x1f) {", False),
    ("float-eq", "if (version == 2) {", False),
    ("float-eq", "if (name == other.name) {", False),
    ("wallclock", "auto t = std::chrono::steady_clock::now();", True),
    ("wallclock", "double t = engine.now();", False),
    ("randomness", "std::random_device rd;", True),
    ("randomness", "sim::Rng rng(seed);", False),
]


def self_test() -> int:
    failures = 0
    for rule, line, want in SELF_TEST_SAMPLES:
        if rule == "float-eq":
            got = float_eq_hits(line)
        elif rule == "wallclock":
            got = any(p.search(line) for p, _ in WALLCLOCK_PATTERNS)
        elif rule == "randomness":
            got = any(p.search(line) for p, _ in RANDOMNESS_PATTERNS)
        else:
            raise ValueError(f"no self-test harness for rule {rule}")
        if got != want:
            verb = "flagged" if got else "missed"
            print(f"self-test FAIL [{rule}] {verb}: {line!r}")
            failures += 1
    print(f"remos_lint --self-test: {len(SELF_TEST_SAMPLES)} sample(s), "
          f"{failures} failure(s)")
    return 1 if failures else 0


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line structure
    (and preserving the lint's own allow() markers)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            comment = text[i:j]
            m = ALLOW_RE.search(comment)
            out.append(m.group(0) if m else "")
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("\n" * text.count("\n", i, j))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            out.append(quote + quote)
            i = min(j + 1, n)
        else:
            out.append(c)
            i += 1
    return "".join(out)


class Linter:
    def __init__(self, root: Path):
        self.root = root
        self.findings = []

    def report(self, rule: str, path: Path, lineno: int, message: str, line: str):
        if ALLOW_RE.search(line) and ALLOW_RE.search(line).group(1) == rule:
            return
        rel = path.relative_to(self.root)
        self.findings.append(f"{rel}:{lineno}: [{rule}] {message}")

    def lint_file(self, path: Path):
        rel = str(path.relative_to(self.root)).replace("\\", "/")
        raw = path.read_text(encoding="utf-8", errors="replace")
        text = strip_comments_and_strings(raw)
        lines = text.splitlines()

        in_src = rel.startswith("src/")
        in_bench = rel.startswith("bench/")
        # Two-sided wall-clock exemption: allowlist entry AND in-file marker.
        file_allows = set(ALLOW_FILE_RE.findall(raw))
        listed = rel in WALLCLOCK_ALLOWLIST
        marked = "wallclock" in file_allows
        if listed != marked and (in_src or in_bench):
            which = ("listed in WALLCLOCK_ALLOWLIST but missing the in-file "
                     "`// remos-lint: allow-file(wallclock)` marker" if listed else
                     "carries an allow-file(wallclock) marker but is not in "
                     "WALLCLOCK_ALLOWLIST (tools/remos_lint.py)")
            self.report("wallclock", path, 1, f"one-sided exemption: file is {which}", "")
        wallclock_banned = (in_src or in_bench) and not (listed and marked)

        for lineno, line in enumerate(lines, start=1):
            if wallclock_banned:
                for pat, what in WALLCLOCK_PATTERNS:
                    if pat.search(line):
                        self.report("wallclock", path, lineno,
                                    f"{what} breaks simulation determinism; "
                                    "use sim::Engine::now()", line)
            if in_src:
                for pat, what in RANDOMNESS_PATTERNS:
                    if pat.search(line):
                        self.report("randomness", path, lineno,
                                    f"{what} is unseedable; use sim::Rng", line)
            if rel.startswith(("src/net/", "src/core/")) and float_eq_hits(line):
                self.report("float-eq", path, lineno,
                            "floating-point ==/!= comparison; use a "
                            "tolerance or <=/>= form", line)

        # Include hygiene runs on the raw text: the stripper blanks string
        # literals, which would hide the include path itself.
        raw_lines = raw.splitlines()
        if path.suffix == ".hpp":
            if "#pragma once" not in (s.strip() for s in raw_lines):
                self.report("include", path, 1, "header lacks #pragma once", "")
        for lineno, line in enumerate(raw_lines, start=1):
            m = re.search(r'#include\s+"(\.\.?/[^"]*)"', line)
            if m:
                self.report("include", path, lineno,
                            f'relative include "{m.group(1)}"; include paths are '
                            "rooted at src/", line)

    def lint_protocol(self):
        path = self.root / PROTOCOL_FILE
        if not path.exists():
            self.findings.append(f"{PROTOCOL_FILE}: [protocol] file missing but its "
                                 "wire format is frozen")
            return
        raw = path.read_text(encoding="utf-8", errors="replace")
        # Keywords appear as the leading token of emitted/parsed lines:
        # "QUERY ", starts_with("NODE ") etc. Collect every ALL-CAPS token
        # that starts a string literal.
        found = set()
        for m in re.finditer(r'"([A-Z][A-Z0-9_]*)[ \\"]', raw):
            found.add(m.group(1))
        unknown = found - PROTOCOL_KEYWORDS
        missing = PROTOCOL_KEYWORDS - found
        if unknown:
            self.findings.append(
                f"{PROTOCOL_FILE}: [protocol] new wire keyword(s) {sorted(unknown)} — "
                "the ASCII protocol surface is frozen")
        if missing:
            self.findings.append(
                f"{PROTOCOL_FILE}: [protocol] frozen keyword(s) {sorted(missing)} "
                "disappeared from the protocol implementation")

    def run(self) -> int:
        targets = []
        for sub in ("src", "bench"):
            targets.extend(sorted((self.root / sub).rglob("*.cpp")))
            targets.extend(sorted((self.root / sub).rglob("*.hpp")))
        for path in targets:
            self.lint_file(path)
        self.lint_protocol()
        for f in self.findings:
            print(f)
        print(f"remos_lint: {len(self.findings)} finding(s) in {len(targets)} file(s)")
        return 1 if self.findings else 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", type=Path, default=Path(__file__).resolve().parent.parent,
                    help="repository root (default: parent of tools/)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the embedded good/bad sample corpus and exit")
    args = ap.parse_args()
    if args.self_test:
        sys.exit(self_test())
    sys.exit(Linter(args.root.resolve()).run())


if __name__ == "__main__":
    main()
