// remos-analyze: C++ tokenizer.
//
// A deliberately small lexer: it produces identifier / number / string /
// punctuation tokens with line numbers, skips preprocessor directives
// (including backslash-continued ones), and collects three line-anchored
// side channels the passes need:
//
//   * #include directives (path + quote/angle form),
//   * // remos-lock-order(N) annotations,
//   * // remos-guarded-by(<mutex>) member-protection annotations,
//   * // remos-requires(<mutex>) caller-must-hold annotations,
//   * // remos-analyze: allow(<pass>): <justification> suppressions,
//   * generic // remos-<name>[(<arg>)] markers (remos-hot, remos-published,
//     remos-hot-leaf, ...) from comments that *start* with `remos-` — one
//     shared channel so every pass sees the same marker grammar and syntax
//     errors are reported once.
//
// Side channels are extracted from *comments the token scanner itself
// recognizes*, so annotation-shaped text inside string literals (including
// raw strings) never creates phantom annotations.
//
// It is not a compiler front end. remos-analyze is an approximate,
// project-shaped analyzer (see DESIGN.md "Static analysis"): the grammar
// it understands is the grammar this repository actually uses.
#pragma once

#include <string>
#include <vector>

namespace remos::analyze {

enum class TokKind { kIdent, kNumber, kString, kChar, kPunct };

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;
};

struct IncludeDirective {
  std::string path;   // as written between the delimiters
  bool quoted = false;  // "..." (project include) vs <...> (system)
  int line = 0;
};

struct LockOrderAnnotation {
  int line = 0;
  int order = 0;
};

/// `// remos-guarded-by(<mutex>)` on a member/variable declaration line:
/// the declared entity is protected by the named mutex, and every access
/// site must run with that mutex held (enforced by the concurrency pass).
struct GuardedByAnnotation {
  int line = 0;
  std::string mutex;
};

/// `// remos-requires(<mutex>)` on a function definition (same line or the
/// line above): the function assumes the caller already holds the mutex.
/// Call sites are checked; the function body is analyzed as if holding it.
struct RequiresAnnotation {
  int line = 0;
  std::string mutex;
};

/// One `remos-<name>[(<arg>)]` marker from a comment whose text starts
/// with `remos-` (anchoring keeps prose that merely *mentions* a marker
/// inert). The typed channels above stay authoritative for their markers;
/// this channel carries the structural annotations (`remos-hot`,
/// `remos-published`, `remos-hot-leaf`) and lets the passes validate
/// unknown / unattached markers with one rule id.
struct MarkerAnnotation {
  int line = 0;
  std::string name;  // text after "remos-", e.g. "hot", "published"
  std::string arg;   // text inside the optional (...), "" when absent
  /// Set by the model when the marker binds to a declaration; unattached
  /// structural markers become bad-annotation findings.
  mutable bool attached = false;
};

struct Suppression {
  int line = 0;
  std::string pass;           // pass name inside allow(...)
  std::string justification;  // text after the closing "):"
  bool comment_only_line = false;  // annotation sits on its own line ->
                                   // it suppresses the *next* line too
  mutable bool used = false;
};

struct TokenizedFile {
  std::vector<Token> tokens;
  std::vector<IncludeDirective> includes;
  std::vector<LockOrderAnnotation> lock_orders;
  std::vector<GuardedByAnnotation> guarded_by;
  std::vector<RequiresAnnotation> requires_held;
  std::vector<Suppression> suppressions;
  std::vector<MarkerAnnotation> markers;
};

/// Tokenize one source file's contents. `text` is the raw file body.
TokenizedFile tokenize(const std::string& text);

}  // namespace remos::analyze
