// remos-analyze: C++ tokenizer.
//
// A deliberately small lexer: it produces identifier / number / string /
// punctuation tokens with line numbers, skips preprocessor directives
// (including backslash-continued ones), and collects three line-anchored
// side channels the passes need:
//
//   * #include directives (path + quote/angle form),
//   * // remos-lock-order(N) annotations,
//   * // remos-guarded-by(<mutex>) member-protection annotations,
//   * // remos-requires(<mutex>) caller-must-hold annotations,
//   * // remos-analyze: allow(<pass>): <justification> suppressions.
//
// Side channels are extracted from *comments the token scanner itself
// recognizes*, so annotation-shaped text inside string literals (including
// raw strings) never creates phantom annotations.
//
// It is not a compiler front end. remos-analyze is an approximate,
// project-shaped analyzer (see DESIGN.md "Static analysis"): the grammar
// it understands is the grammar this repository actually uses.
#pragma once

#include <string>
#include <vector>

namespace remos::analyze {

enum class TokKind { kIdent, kNumber, kString, kChar, kPunct };

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;
};

struct IncludeDirective {
  std::string path;   // as written between the delimiters
  bool quoted = false;  // "..." (project include) vs <...> (system)
  int line = 0;
};

struct LockOrderAnnotation {
  int line = 0;
  int order = 0;
};

/// `// remos-guarded-by(<mutex>)` on a member/variable declaration line:
/// the declared entity is protected by the named mutex, and every access
/// site must run with that mutex held (enforced by the concurrency pass).
struct GuardedByAnnotation {
  int line = 0;
  std::string mutex;
};

/// `// remos-requires(<mutex>)` on a function definition (same line or the
/// line above): the function assumes the caller already holds the mutex.
/// Call sites are checked; the function body is analyzed as if holding it.
struct RequiresAnnotation {
  int line = 0;
  std::string mutex;
};

struct Suppression {
  int line = 0;
  std::string pass;           // pass name inside allow(...)
  std::string justification;  // text after the closing "):"
  bool comment_only_line = false;  // annotation sits on its own line ->
                                   // it suppresses the *next* line too
  mutable bool used = false;
};

struct TokenizedFile {
  std::vector<Token> tokens;
  std::vector<IncludeDirective> includes;
  std::vector<LockOrderAnnotation> lock_orders;
  std::vector<GuardedByAnnotation> guarded_by;
  std::vector<RequiresAnnotation> requires_held;
  std::vector<Suppression> suppressions;
};

/// Tokenize one source file's contents. `text` is the raw file body.
TokenizedFile tokenize(const std::string& text);

}  // namespace remos::analyze
