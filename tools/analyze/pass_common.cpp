#include <set>

#include "passes.hpp"

namespace remos::analyze {
namespace {

// Receiver-calls with these names are STL container/primitive operations,
// not project calls — resolving them by bare name would wire, say, every
// `counters_.clear()` to every project `clear()` and drown the passes in
// phantom edges.
const std::set<std::string>& stl_method_names() {
  static const std::set<std::string> kNames{
      "clear",      "size",        "empty",       "begin",      "end",
      "rbegin",     "rend",        "find",        "count",      "erase",
      "insert",     "emplace",     "emplace_back", "push_back", "pop_back",
      "push_front", "pop_front",   "at",          "front",      "back",
      "reserve",    "resize",      "data",        "c_str",      "str",
      "append",     "substr",      "length",      "swap",       "reset",
      "get",        "release",     "load",        "store",      "exchange",
      "fetch_add",  "fetch_sub",   "compare_exchange_weak",
      "compare_exchange_strong",   "lock",        "unlock",     "try_lock",
      "notify_one", "notify_all",  "wait",        "join",       "detach",
      "valid",      "capacity",    "assign",      "insert_or_assign",
      "try_emplace", "contains",   "lower_bound", "upper_bound",
      "equal_range", "first",      "second",      "value",      "value_or",
      "has_value",  "extract",     "merge",       "starts_with", "ends_with"};
  return kNames;
}

}  // namespace

std::vector<std::size_t> resolve_call(const Project& proj,
                                      const FunctionInfo& caller,
                                      const CallSite& call) {
  std::vector<std::size_t> out;
  if (call.qualifier == "std") return out;
  if (call.method_call && stl_method_names().count(call.name)) return out;
  std::string name = call.name;
  if (name == "REMOS_LOG") name = "log_message";  // macro alias
  auto it = proj.by_name.find(name);
  if (it == proj.by_name.end()) return out;
  for (std::size_t k : it->second) {
    const FunctionInfo& callee = proj.functions[k];
    if (callee.file_local && callee.file != caller.file) continue;
    out.push_back(k);
  }
  return out;
}

CallGraph build_call_graph(const Project& proj) {
  CallGraph cg;
  cg.edges.resize(proj.functions.size());
  for (std::size_t i = 0; i < proj.functions.size(); ++i) {
    const FunctionInfo& fn = proj.functions[i];
    std::set<std::size_t> out;
    for (const CallSite& c : fn.calls) {
      for (std::size_t k : resolve_call(proj, fn, c)) {
        if (k != i) out.insert(k);
      }
    }
    cg.edges[i].assign(out.begin(), out.end());
  }
  return cg;
}

}  // namespace remos::analyze
