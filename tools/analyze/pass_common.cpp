#include <set>

#include "passes.hpp"

namespace remos::analyze {
namespace {

// Receiver-calls with these names are STL container/primitive operations,
// not project calls — resolving them by bare name would wire, say, every
// `counters_.clear()` to every project `clear()` and drown the passes in
// phantom edges.
const std::set<std::string>& stl_method_names() {
  static const std::set<std::string> kNames{
      "clear",      "size",        "empty",       "begin",      "end",
      "rbegin",     "rend",        "find",        "count",      "erase",
      "insert",     "emplace",     "emplace_back", "push_back", "pop_back",
      "push_front", "pop_front",   "at",          "front",      "back",
      "reserve",    "resize",      "data",        "c_str",      "str",
      "append",     "substr",      "length",      "swap",       "reset",
      "get",        "release",     "load",        "store",      "exchange",
      "fetch_add",  "fetch_sub",   "compare_exchange_weak",
      "compare_exchange_strong",   "lock",        "unlock",     "try_lock",
      "notify_one", "notify_all",  "wait",        "join",       "detach",
      "valid",      "capacity",    "assign",      "insert_or_assign",
      "try_emplace", "contains",   "lower_bound", "upper_bound",
      "equal_range", "first",      "second",      "value",      "value_or",
      "has_value",  "extract",     "merge",       "starts_with", "ends_with"};
  return kNames;
}

}  // namespace

const SourceFile* find_file(const Project& proj, const std::string& rel_path) {
  for (const auto& sf : proj.files) {
    if (sf.rel_path == rel_path) return &sf;
  }
  return nullptr;
}

bool suppression_covers(const Project& proj, const std::string& pass,
                        const std::string& file, int line) {
  const SourceFile* sf = find_file(proj, file);
  if (!sf) return false;
  for (const auto& s : sf->toks.suppressions) {
    if (s.pass != pass || s.justification.empty()) continue;
    if (s.line == line || (s.comment_only_line && s.line + 1 == line)) return true;
  }
  return false;
}

const std::set<std::string>& pool_entry_names() {
  static const std::set<std::string> kNames{"submit", "parallel_for",
                                            "parallel_ranges"};
  return kNames;
}

const std::set<std::string>& cv_wait_names() {
  static const std::set<std::string> kNames{"wait", "wait_for", "wait_until"};
  return kNames;
}

const std::set<std::string>& future_wait_names() {
  static const std::set<std::string> kNames{"wait", "get"};
  return kNames;
}

std::string join_ids(const std::set<std::string>& ids) {
  std::string out;
  for (const auto& id : ids) {
    if (!out.empty()) out += ", ";
    out += "`" + id + "`";
  }
  return out;
}

NewKind classify_new_site(const std::vector<Token>& toks, std::size_t i) {
  // `operator new` / `operator new[]`: an overload declaration (or an
  // explicit call through it, which the declarer owns), not an ordinary
  // allocating expression.
  if (i > 0 && toks[i - 1].kind == TokKind::kIdent && toks[i - 1].text == "operator") {
    return NewKind::kOperatorDecl;
  }
  // Placement form `new (addr) T...` — constructs into caller-provided
  // storage. (`new (std::nothrow) T` also lands here; erring toward
  // silence is the analyzer-wide contract.)
  if (i + 1 < toks.size() && toks[i + 1].kind == TokKind::kPunct &&
      toks[i + 1].text == "(") {
    return NewKind::kPlacement;
  }
  return NewKind::kAllocating;
}

std::vector<std::size_t> resolve_call(const Project& proj,
                                      const FunctionInfo& caller,
                                      const CallSite& call) {
  std::vector<std::size_t> out;
  if (call.qualifier == "std") return out;
  if (call.method_call && stl_method_names().count(call.name)) return out;
  std::string name = call.name;
  if (name == "REMOS_LOG") name = "log_message";  // macro alias
  auto it = proj.by_name.find(name);
  if (it == proj.by_name.end()) return out;
  for (std::size_t k : it->second) {
    const FunctionInfo& callee = proj.functions[k];
    if (callee.file_local && callee.file != caller.file) continue;
    out.push_back(k);
  }
  return out;
}

CallGraph build_call_graph(const Project& proj) {
  CallGraph cg;
  cg.edges.resize(proj.functions.size());
  for (std::size_t i = 0; i < proj.functions.size(); ++i) {
    const FunctionInfo& fn = proj.functions[i];
    std::set<std::size_t> out;
    for (const CallSite& c : fn.calls) {
      for (std::size_t k : resolve_call(proj, fn, c)) {
        if (k != i) out.insert(k);
      }
    }
    cg.edges[i].assign(out.begin(), out.end());
  }
  return cg;
}

}  // namespace remos::analyze
