#include <algorithm>
#include <map>
#include <set>

#include "passes.hpp"

namespace remos::analyze {
namespace {

/// Transitive acquire set: for each function, every mutex id it may take
/// directly or through any resolvable callee. Computed as a fixpoint so
/// cycles in the (approximate) call graph converge instead of recursing.
std::vector<std::set<std::string>> transitive_acquires(const Project& proj,
                                                       const CallGraph& cg) {
  std::vector<std::set<std::string>> ta(proj.functions.size());
  for (std::size_t i = 0; i < proj.functions.size(); ++i)
    for (const AcquireSite& a : proj.functions[i].acquires)
      ta[i].insert(a.mutex);
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < proj.functions.size(); ++i) {
      for (std::size_t k : cg.edges[i]) {
        for (const std::string& m : ta[k])
          if (ta[i].insert(m).second) changed = true;
      }
    }
  }
  return ta;
}

/// Mutex ids are "Class::name" or "path/to/file.cpp::name". Messages show
/// the basename form ("file.cpp::name") — the full path adds noise, and
/// deduping on the shortened message collapses findings that differ only
/// in the path prefix of the same mutex.
std::string short_id(const std::string& mutex_id) {
  const std::size_t sep = mutex_id.rfind("::");
  const std::size_t slash = mutex_id.rfind('/', sep == std::string::npos ? mutex_id.size() : sep);
  if (slash == std::string::npos) return mutex_id;
  return mutex_id.substr(slash + 1);
}

}  // namespace

Findings pass_lock(const Project& proj, const CallGraph& cg) {
  Findings out;

  // 1. Every mutex must declare its place in the lock order.
  for (const auto& [id, m] : proj.mutexes) {
    if (m.order < 0) {
      out.push_back({"lock", "order-missing", m.file, m.line,
                     "mutex `" + m.name +
                         "` lacks a // remos-lock-order(N) annotation"});
    }
  }

  const auto ta = transitive_acquires(proj, cg);

  auto order_of = [&](const std::string& id) -> int {
    auto it = proj.mutexes.find(id);
    return it == proj.mutexes.end() ? -1 : it->second.order;
  };
  auto is_recursive = [&](const std::string& id) {
    auto it = proj.mutexes.find(id);
    return it != proj.mutexes.end() && it->second.recursive;
  };

  std::set<std::string> seen;  // dedupe (file:line:message), message in
                               // short_id form so path-prefix variants of
                               // one mutex collapse to a single finding
  auto emit = [&](const std::string& rule, const std::string& file, int line,
                  std::string msg) {
    if (seen.insert(file + ":" + std::to_string(line) + ":" + msg).second)
      out.push_back({"lock", rule, file, line, std::move(msg)});
  };

  for (std::size_t i = 0; i < proj.functions.size(); ++i) {
    const FunctionInfo& fn = proj.functions[i];

    // 2. Direct nested acquisition must follow strictly increasing order.
    for (const AcquireSite& a : fn.acquires) {
      for (const std::string& h : a.held) {
        if (h == a.mutex) {
          if (!is_recursive(h))
            emit("reacquire", fn.file, a.line,
                 "`" + short_id(a.mutex) + "` acquired while already held");
          continue;
        }
        const int oh = order_of(h), oa = order_of(a.mutex);
        if (oh >= 0 && oa >= 0 && oh >= oa) {
          emit("order", fn.file, a.line,
               "lock-order violation: acquiring `" + short_id(a.mutex) +
                   "` (order " + std::to_string(oa) + ") while holding `" +
                   short_id(h) + "` (order " + std::to_string(oh) + ")");
        }
      }
    }

    // 3. Calls made under a lock: the callee's transitive acquire set must
    //    stay strictly above every held lock.
    for (const CallSite& c : fn.calls) {
      if (c.held.empty()) continue;
      for (std::size_t k : resolve_call(proj, fn, c)) {
        if (k == i) continue;
        for (const std::string& m : ta[k]) {
          for (const std::string& h : c.held) {
            if (h == m) {
              if (!is_recursive(h))
                emit("reacquire", fn.file, c.line,
                     "call to `" + c.name + "` may re-acquire `" +
                         short_id(m) + "` already held here");
              continue;
            }
            const int oh = order_of(h), om = order_of(m);
            if (oh >= 0 && om >= 0 && oh >= om) {
              emit("order", fn.file, c.line,
                   "lock-order violation: call to `" + c.name +
                       "` may acquire `" + short_id(m) + "` (order " +
                       std::to_string(om) + ") while holding `" + short_id(h) +
                       "` (order " + std::to_string(oh) + ")");
            }
          }
        }
      }
    }

    // 4. Guarded members must only be touched under their mutex.
    //    Constructors/destructors are exempt (object not yet/no longer
    //    shared); the model only records accesses with a resolvable guard.
    if (fn.is_ctor_dtor) continue;
    for (const AccessSite& acc : fn.guarded_accesses) {
      // Explicit remos-guarded-by(...) members are the concurrency pass's
      // contract; this rule enforces the positional inference only.
      if (acc.explicit_guard) continue;
      if (std::find(acc.held.begin(), acc.held.end(), acc.guard) !=
          acc.held.end())
        continue;
      emit("guard", fn.file, acc.line,
           "`" + acc.name + "` is guarded by `" + short_id(acc.guard) +
               "` (declared after it) but touched without holding it");
    }
  }

  return out;
}

}  // namespace remos::analyze
