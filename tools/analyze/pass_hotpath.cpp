// remos-analyze: hot-path pass.
//
// Polices the two idioms the serving story rests on (DESIGN.md "The
// hot-path pass"):
//
//   1. Hot-path discipline. Functions annotated `// remos-hot` — and every
//      function they reach through the approximate call graph — must not
//      allocate, perform I/O, or block. Allocation is an allocating `new`
//      (placement-new and `operator new` overloads are classified apart by
//      classify_new_site), make_shared/make_unique, to_string, the
//      construction of a locally-owned container/string, or a growth op
//      (push_back/emplace/insert/resize/...) on one. Growth on *member*
//      containers — and on `static`/`thread_local` locals, the
//      function-scope arena idiom (core/audit.cpp, shortest_path) — is the
//      scratch-arena discipline and is exempt, amortized to zero
//      steady-state allocation, but still inventoried. Sites inside
//      REMOS_CHECK/REMOS_AUDIT argument lists are failure-path-only (the
//      macros evaluate their message lazily, behind the condition, and the
//      failure path aborts) and are skipped. Blocking is a mutex
//      acquisition (unless the mutex is declared `// remos-hot-leaf`), a
//      ThreadPool entry, a condition_variable/future wait, or a sleep.
//      I/O is a direct stdio call, REMOS_LOG, or std::cout/cerr.
//
//   2. Published-snapshot immutability. Types annotated `// remos-published`
//      are handed to concurrent readers through atomic shared_ptr slots and
//      must be deeply immutable after construction: no `mutable` members,
//      no non-const public methods, no const_cast. Every member slot whose
//      (alias-expanded) type is a shared_ptr to a published type must be
//      wrapped in std::atomic with a const pointee; explicit store/load
//      memory orders must be release/acquire (or seq_cst). A plain
//      shared_ptr member slot is a torn publish.
//
// Receivers that do not resolve (parameters, chained subscripts, locals of
// unknown type) stay silent — like every pass here, approximation errs
// toward silence, and the corpus fixtures pin the must-catch shapes. The
// inventory lists every function in the hot closure with its sites
// (flagged, suppressed, arena, leaf-mutex): the migration worklist for the
// SoA-arena work in ROADMAP item 5.
#include <algorithm>
#include <cctype>
#include <map>
#include <set>

#include "passes.hpp"

namespace remos::analyze {
namespace {

bool punct_at(const std::vector<Token>& t, std::size_t k, const char* p) {
  return k < t.size() && t[k].kind == TokKind::kPunct && t[k].text == p;
}
bool ident_at(const std::vector<Token>& t, std::size_t k, const char* s) {
  return k < t.size() && t[k].kind == TokKind::kIdent && t[k].text == s;
}

std::size_t match_fwd(const std::vector<Token>& t, std::size_t i, std::size_t end,
                      const char* open, const char* close) {
  int d = 0;
  for (std::size_t k = i; k < end; ++k) {
    if (t[k].kind != TokKind::kPunct) continue;
    if (t[k].text == open) ++d;
    else if (t[k].text == close && --d == 0) return k;
  }
  return end;
}

// Growth operations that can reallocate the receiver's storage. clear()
// and pop_back() shrink and are deliberately absent.
const std::set<std::string> kGrowthNames{
    "push_back", "emplace_back", "push_front", "emplace_front", "emplace",
    "insert",    "insert_or_assign", "try_emplace", "resize", "reserve",
    "append",    "assign"};

// Direct allocators by call name (std:: or project-qualified).
const std::set<std::string> kAllocCallNames{"make_shared", "make_unique",
                                            "to_string"};

// I/O by call name; REMOS_LOG is the project's logging macro.
const std::set<std::string> kIoCallNames{
    "printf", "fprintf", "fopen",  "fclose", "fwrite",     "fread",
    "fputs",  "fputc",   "puts",   "fflush", "perror",     "getline",
    "system", "log_message", "REMOS_LOG"};

const std::set<std::string> kSleepNames{"sleep_for", "sleep_until"};

// Assertion macros whose argument expressions only run on the failure
// (abort) path: the message is evaluated lazily behind the condition.
const std::set<std::string> kAssertMacros{"REMOS_CHECK", "REMOS_AUDIT",
                                          "REMOS_AUDIT_SEV"};

// Owning std:: container/string types whose *local* construction in a hot
// body is an allocation site.
const std::set<std::string> kOwningTypeNames{
    "string",        "vector",       "map",           "multimap",
    "set",           "multiset",     "deque",         "list",
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset", "stringstream", "ostringstream", "istringstream",
    "function"};

// Marker names owned by the typed tokenizer channels / other tools; the
// structural set is what this pass binds and validates.
const std::set<std::string> kStructuralMarkers{"hot", "hot-leaf", "published"};
const std::set<std::string> kForeignMarkers{"analyze", "lint", "lock-order",
                                            "guarded-by", "requires"};

/// Receiver identifier of a method call (x.name / x->name), "" for bare.
std::string receiver_name(const std::vector<Token>& t, const CallSite& c) {
  const std::size_t j = c.token_index;
  if (j < 2) return "";
  if (!punct_at(t, j - 1, ".") && !punct_at(t, j - 1, "->")) return "";
  if (t[j - 2].kind != TokKind::kIdent) return "";
  return t[j - 2].text;
}

/// Base identifier of the receiver chain of a method call: for
/// `a.b.c.push_back(...)` returns "a"; "this" when the chain starts at
/// this->; "" when the chain does not start at a plain identifier
/// (subscripts, call results, ...).
std::string receiver_base(const std::vector<Token>& t, const CallSite& c) {
  std::size_t j = c.token_index;
  while (j >= 2 && (punct_at(t, j - 1, ".") || punct_at(t, j - 1, "->"))) {
    if (t[j - 2].kind != TokKind::kIdent) return "";
    j -= 2;
  }
  return t[j].kind == TokKind::kIdent ? t[j].text : "";
}

const VarDecl* scope_var(const Project& proj, const FunctionInfo& fn,
                         const std::string& name) {
  if (!fn.cls.empty()) {
    auto it = proj.classes.find(fn.cls);
    if (it != proj.classes.end()) {
      for (const auto& m : it->second.members) {
        if (m.name == name) return &m;
      }
    }
  }
  auto nv = proj.namespace_vars.find(fn.file);
  if (nv != proj.namespace_vars.end()) {
    for (const auto& v : nv->second) {
      if (v.name == name) return &v;
    }
  }
  return nullptr;
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string display_name(const FunctionInfo& fn) {
  return fn.cls.empty() ? fn.name : fn.cls + "::" + fn.name;
}

}  // namespace

Findings pass_hotpath(const Project& proj, const CallGraph& cg,
                      HotpathInventory* inventory) {
  (void)cg;
  Findings out;
  std::set<std::string> seen;
  auto emit = [&](const std::string& rule, const std::string& file, int line,
                  std::string msg) {
    if (seen.insert(file + ":" + std::to_string(line) + ":" + rule + ":" + msg).second)
      out.push_back({"hotpath", rule, file, line, std::move(msg)});
  };

  std::map<std::string, const SourceFile*> file_by_path;
  for (const auto& sf : proj.files) file_by_path[sf.rel_path] = &sf;

  // ---- marker validation (shared grammar, one rule id) --------------------
  for (const auto& sf : proj.files) {
    for (const auto& ma : sf.toks.markers) {
      if (kForeignMarkers.count(ma.name)) continue;
      if (!kStructuralMarkers.count(ma.name)) {
        emit("bad-annotation", sf.rel_path, ma.line,
             "`remos-" + ma.name +
                 "` names no known annotation (structural markers: remos-hot, "
                 "remos-hot-leaf, remos-published)");
        continue;
      }
      if (!ma.attached) {
        emit("bad-annotation", sf.rel_path, ma.line,
             "`remos-" + ma.name + "` binds to no " +
                 (ma.name == "hot"
                      ? std::string("function declaration")
                      : ma.name == "hot-leaf" ? std::string("mutex declaration")
                                              : std::string("class definition")) +
                 " on this line");
      }
    }
  }

  // ---- hot closure --------------------------------------------------------
  std::vector<std::vector<std::vector<std::size_t>>> resolved(proj.functions.size());
  for (std::size_t i = 0; i < proj.functions.size(); ++i) {
    const FunctionInfo& fn = proj.functions[i];
    resolved[i].resize(fn.calls.size());
    for (std::size_t ci = 0; ci < fn.calls.size(); ++ci) {
      resolved[i][ci] = resolve_call(proj, fn, fn.calls[ci]);
    }
  }

  // root_of[i]: index of the hot entry point that reaches function i
  // (first one in deterministic BFS order), or npos.
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<std::size_t> root_of(proj.functions.size(), kNone);
  std::vector<std::size_t> queue;
  for (std::size_t i = 0; i < proj.functions.size(); ++i) {
    if (proj.functions[i].is_hot && proj.functions[i].has_body) {
      root_of[i] = i;
      queue.push_back(i);
    }
  }
  for (std::size_t qh = 0; qh < queue.size(); ++qh) {
    const std::size_t i = queue[qh];
    const FunctionInfo& fn = proj.functions[i];
    const auto& toks = file_by_path.at(fn.file)->toks.tokens;
    // Local lambda names: calls through them must not resolve by bare name
    // to same-named project functions (phantom inventory rows otherwise).
    std::set<std::string> local_lambdas;
    for (std::size_t j = fn.body_begin; j < fn.body_end && j < toks.size(); ++j) {
      if (toks[j].kind == TokKind::kIdent && punct_at(toks, j + 1, "=") &&
          punct_at(toks, j + 2, "[")) {
        local_lambdas.insert(toks[j].text);
      }
    }
    for (std::size_t ci = 0; ci < fn.calls.size(); ++ci) {
      const CallSite& c = fn.calls[ci];
      // Pool entries are terminal block sites; the pool machinery itself
      // is not part of the hot contract.
      if (pool_entry_names().count(c.name)) continue;
      if (local_lambdas.count(c.name)) continue;
      // `Type<...>::name(...)` static calls (numeric_limits<T>::max, ...)
      // carry no recorded qualifier; resolving them by bare name would
      // wire phantom cross-class edges.
      if (c.token_index >= 2 && punct_at(toks, c.token_index - 1, "::") &&
          toks[c.token_index - 2].kind != TokKind::kIdent) {
        continue;
      }
      // Method calls on a receiver whose declared type we know: keep only
      // candidates of that type (cuts cross-class same-name edges).
      const VarDecl* rv = nullptr;
      if (c.method_call) {
        const std::string recv = receiver_name(toks, c);
        if (!recv.empty()) rv = scope_var(proj, fn, recv);
      }
      for (std::size_t k : resolved[i][ci]) {
        const FunctionInfo& callee = proj.functions[k];
        if (!callee.has_body || callee.cls == "ThreadPool") continue;
        if (rv && !callee.cls.empty() &&
            rv->type_text.find(callee.cls) == std::string::npos) {
          continue;
        }
        if (root_of[k] == kNone) {
          root_of[k] = root_of[i];
          queue.push_back(k);
        }
      }
    }
  }

  // ---- per-function site scan ---------------------------------------------
  std::vector<std::size_t> hot_fns;
  for (std::size_t i = 0; i < proj.functions.size(); ++i) {
    if (root_of[i] != kNone) hot_fns.push_back(i);
  }
  std::sort(hot_fns.begin(), hot_fns.end(), [&](std::size_t a, std::size_t b) {
    const FunctionInfo& fa = proj.functions[a];
    const FunctionInfo& fb = proj.functions[b];
    if (fa.file != fb.file) return fa.file < fb.file;
    if (fa.line != fb.line) return fa.line < fb.line;
    return display_name(fa) < display_name(fb);
  });

  for (std::size_t i : hot_fns) {
    const FunctionInfo& fn = proj.functions[i];
    const FunctionInfo& root = proj.functions[root_of[i]];
    const auto& t = file_by_path.at(fn.file)->toks.tokens;

    HotpathFunction row;
    row.function = display_name(fn);
    row.file = fn.file;
    row.line = fn.line;
    row.root = display_name(root);
    row.direct = fn.is_hot;

    auto add_site = [&](const std::string& kind, int line, const std::string& detail,
                        const std::string& exempt_status) {
      HotpathSite site{kind, fn.file, line, detail, exempt_status};
      if (exempt_status.empty()) {
        site.status = suppression_covers(proj, "hotpath", fn.file, line)
                          ? "suppressed"
                          : "flagged";
        const std::string where =
            fn.is_hot ? "hot `" + row.function + "`"
                      : "`" + row.function + "` (reachable from hot `" + row.root + "`)";
        emit("hot-" + kind, fn.file, line, detail + " in " + where);
      }
      row.sites.push_back(std::move(site));
    };

    // Token ranges of assertion-macro argument lists: failure-path-only.
    std::vector<std::pair<std::size_t, std::size_t>> assert_ranges;
    for (std::size_t j = fn.body_begin; j < fn.body_end && j < t.size(); ++j) {
      if (t[j].kind == TokKind::kIdent && kAssertMacros.count(t[j].text) &&
          punct_at(t, j + 1, "(")) {
        assert_ranges.emplace_back(j + 1, match_fwd(t, j + 1, fn.body_end, "(", ")"));
      }
    }
    auto in_assert = [&](std::size_t k) {
      for (const auto& [b, e] : assert_ranges) {
        if (k > b && k < e) return true;
      }
      return false;
    };

    // Locally-owned containers/strings, locals of project class type, and
    // static/thread_local function-scope arenas.
    std::set<std::string> owning_locals, class_locals, arena_locals;
    for (std::size_t j = fn.body_begin; j < fn.body_end && j < t.size(); ++j) {
      if (t[j].kind != TokKind::kIdent || in_assert(j)) continue;
      const std::string& s = t[j].text;
      if (kOwningTypeNames.count(s) && punct_at(t, j - 1, "::") &&
          ident_at(t, j - 2, "std")) {
        const bool is_arena = j >= 3 && (ident_at(t, j - 3, "thread_local") ||
                                         ident_at(t, j - 3, "static"));
        std::size_t k = j + 1;
        if (punct_at(t, k, "<")) k = match_fwd(t, k, fn.body_end, "<", ">") + 1;
        bool is_ref = false;
        while (punct_at(t, k, "&") || punct_at(t, k, "*") || ident_at(t, k, "const")) {
          if (punct_at(t, k, "&")) is_ref = true;
          ++k;
        }
        if (is_ref) continue;  // reference binding allocates nothing
        if (k + 1 < t.size() && k < fn.body_end && t[k].kind == TokKind::kIdent &&
            t[k + 1].kind != TokKind::kIdent) {
          if (is_arena) {
            // One-time (per thread) construction; growth below is arena.
            arena_locals.insert(t[k].text);
            continue;
          }
          owning_locals.insert(t[k].text);
          const std::size_t after = k + 1;
          const bool paren_init =
              punct_at(t, after, "(") && !punct_at(t, after + 1, ")");
          const bool brace_init =
              punct_at(t, after, "{") && !punct_at(t, after + 1, "}");
          if (paren_init || brace_init || punct_at(t, after, "=")) {
            add_site("alloc", t[k].line,
                     "constructs local owning `std::" + s + "` `" + t[k].text + "`",
                     "");
          }
        } else if ((punct_at(t, k, "(") && !punct_at(t, k + 1, ")")) ||
                   (punct_at(t, k, "{") && !punct_at(t, k + 1, "}"))) {
          // Empty construction (`std::vector<T>{}`) allocates nothing.
          add_site("alloc", t[j].line, "constructs `std::" + s + "` temporary", "");
        }
      } else if (proj.classes.count(s) && !punct_at(t, j - 1, "::") &&
                 !punct_at(t, j - 1, ".") && !punct_at(t, j - 1, "->") &&
                 j + 1 < fn.body_end && t[j + 1].kind == TokKind::kIdent &&
                 !punct_at(t, j + 2, "(")) {
        class_locals.insert(t[j + 1].text);
      } else if (s == "new") {
        if (classify_new_site(t, j) == NewKind::kAllocating) {
          add_site("alloc", t[j].line, "allocating `new` expression", "");
        }
      } else if ((s == "make_shared" || s == "make_unique") &&
                 punct_at(t, j + 1, "<")) {
        // Explicit-template-arg form: `ident <` is not recorded as a call
        // site by the model, so catch it here.
        add_site("alloc", t[j].line, "`" + s + "` allocates", "");
      } else if ((s == "cout" || s == "cerr" || s == "clog") &&
                 punct_at(t, j - 1, "::") && ident_at(t, j - 2, "std")) {
        add_site("io", t[j].line, "writes to std::" + s, "");
      }
    }

    for (const CallSite& c : fn.calls) {
      if (in_assert(c.token_index)) continue;  // failure-path-only
      if (kAllocCallNames.count(c.name)) {
        add_site("alloc", c.line, "`" + c.name + "` allocates", "");
        continue;
      }
      if (kIoCallNames.count(c.name)) {
        add_site("io", c.line, "`" + c.name + "` performs I/O", "");
        continue;
      }
      if (pool_entry_names().count(c.name)) {
        add_site("block", c.line,
                 "ThreadPool entry `" + c.name + "` hands work to pool lanes", "");
        continue;
      }
      if (kSleepNames.count(c.name)) {
        add_site("block", c.line, "`" + c.name + "` sleeps", "");
        continue;
      }
      if (c.method_call && kGrowthNames.count(c.name)) {
        const std::string base = receiver_base(t, c);
        if (base.empty()) continue;  // subscripted/derived receiver: silent
        if (owning_locals.count(base) || class_locals.count(base)) {
          add_site("alloc", c.line,
                   "grows locally-owned `" + base + "` (`" + c.name + "`)", "");
        } else if (arena_locals.count(base)) {
          // static/thread_local function-scope arena: amortized.
          add_site("alloc", c.line,
                   "arena growth `" + base + "." + c.name + "` (thread-local)",
                   "arena");
        } else if (base == "this" || scope_var(proj, fn, base)) {
          // Member scratch arena: amortized, steady-state allocation-free.
          add_site("alloc", c.line,
                   "arena growth `" + base + "." + c.name + "`", "arena");
        }
        continue;
      }
      if (c.method_call) {
        const std::string recv = receiver_name(t, c);
        const VarDecl* rv = recv.empty() ? nullptr : scope_var(proj, fn, recv);
        if (rv && rv->is_cv && cv_wait_names().count(c.name)) {
          add_site("block", c.line, "condition_variable wait on `" + recv + "`", "");
        } else if (rv && rv->is_thread_handle && future_wait_names().count(c.name) &&
                   rv->type_text.find("future") != std::string::npos) {
          add_site("block", c.line, "waits on future `" + recv + "`", "");
        }
      }
    }

    for (const AcquireSite& a : fn.acquires) {
      auto mi = proj.mutexes.find(a.mutex);
      if (mi != proj.mutexes.end() && mi->second.hot_leaf) {
        add_site("block", a.line, "acquires leaf mutex `" + a.mutex + "`",
                 "leaf-mutex");
      } else {
        add_site("block", a.line,
                 "acquires `" + a.mutex +
                     "` — not a declared `// remos-hot-leaf` leaf mutex", "");
      }
    }

    if (inventory) inventory->functions.push_back(std::move(row));
  }

  // ---- published-snapshot immutability ------------------------------------
  std::set<std::string> published;
  for (const auto& [name, ci] : proj.classes) {
    if (ci.is_published) published.insert(name);
  }

  // Alias-expand a compact type text (bounded; aliases may chain).
  auto expand_type = [&](std::string text) {
    for (int round = 0; round < 3; ++round) {
      bool changed = false;
      for (const auto& [name, rhs] : proj.type_aliases) {
        std::size_t pos = 0;
        while ((pos = text.find(name, pos)) != std::string::npos) {
          const bool lb = pos == 0 || !is_ident_char(text[pos - 1]);
          const std::size_t after = pos + name.size();
          const bool rb = after >= text.size() || !is_ident_char(text[after]);
          if (lb && rb && rhs.find(name) == std::string::npos) {
            text = text.substr(0, pos) + rhs + text.substr(after);
            pos += rhs.size();
            changed = true;
          } else {
            pos += name.size();
          }
        }
      }
      if (!changed) break;
    }
    return text;
  };

  auto published_in = [&](const std::string& expanded) -> std::string {
    for (const auto& p : published) {
      if (expanded.find(p) != std::string::npos) return p;
    }
    return "";
  };

  // Immutability of the published types themselves.
  for (const auto& p : published) {
    const ClassInfo& ci = proj.classes.at(p);
    for (const auto& m : ci.members) {
      if (m.type_text.find("mutable") != std::string::npos) {
        emit("published-mutable", m.file, m.line,
             "`" + p + "::" + m.name +
                 "` is mutable — published snapshots must be deeply immutable "
                 "after construction");
      }
    }
  }
  for (const FunctionInfo& fn : proj.functions) {
    if (fn.cls.empty() || !published.count(fn.cls)) continue;
    if (!fn.is_ctor_dtor && !fn.is_static && fn.is_public && !fn.is_const) {
      emit("published-method", fn.file, fn.line,
           "`" + display_name(fn) +
               "` is a non-const public method on a published type — readers "
               "share instances concurrently");
    }
    if (!fn.has_body) continue;
    const auto& t = file_by_path.at(fn.file)->toks.tokens;
    for (std::size_t j = fn.body_begin; j < fn.body_end && j < t.size(); ++j) {
      if (ident_at(t, j, "const_cast")) {
        emit("published-cast", fn.file, t[j].line,
             "const_cast inside published type `" + fn.cls +
                 "` defeats snapshot immutability");
      }
    }
  }

  // Publication slots: members whose expanded type is shared_ptr<published>.
  // scope key (class name / file) -> atomic slot member names, for the
  // store/load order check below.
  std::map<std::string, std::set<std::string>> atomic_slots;
  auto classify_slot = [&](const std::string& scope_key, const VarDecl& v) {
    const std::string expanded = expand_type(v.type_text);
    if (expanded.find("shared_ptr<") == std::string::npos) return;
    const std::string p = published_in(expanded);
    if (p.empty()) return;
    if (expanded.find("atomic<") != std::string::npos) {
      atomic_slots[scope_key].insert(v.name);
      if (expanded.find("shared_ptr<const") == std::string::npos) {
        emit("publish-const", v.file, v.line,
             "publication slot `" + v.name + "` holds `" + p +
                 "` without a const pointee — readers could mutate the "
                 "shared snapshot");
      }
      return;
    }
    // v.is_const is true for any `const` in the decl, including the
    // pointee's (`shared_ptr<const T>`); only a top-level const (set once,
    // never reassigned) exempts the slot from the torn-publish rule.
    if (expanded.rfind("const", 0) == 0 || v.is_ref || v.is_static) return;
    if (!v.guard_id.empty()) return;  // mutex-protected cache, not a slot
    emit("plain-publish", v.file, v.line,
         "`" + v.name + "` publishes `" + p +
             "` through a plain shared_ptr — a torn publish; wrap it in "
             "std::atomic and release-store / acquire-load");
  };
  for (const auto& [name, ci] : proj.classes) {
    for (const auto& m : ci.members) classify_slot(name, m);
  }
  for (const auto& [file, vars] : proj.namespace_vars) {
    for (const auto& v : vars) classify_slot(file, v);
  }

  // Explicit memory orders on slot store/load must publish (release) and
  // observe (acquire); the argument-free forms are seq_cst and fine.
  for (const FunctionInfo& fn : proj.functions) {
    if (!fn.has_body) continue;
    const std::set<std::string>* slots = nullptr;
    if (!fn.cls.empty() && atomic_slots.count(fn.cls)) {
      slots = &atomic_slots.at(fn.cls);
    } else if (fn.cls.empty() && atomic_slots.count(fn.file)) {
      slots = &atomic_slots.at(fn.file);
    }
    if (!slots) continue;
    const auto& t = file_by_path.at(fn.file)->toks.tokens;
    for (const CallSite& c : fn.calls) {
      if (!c.method_call || (c.name != "store" && c.name != "load")) continue;
      const std::string recv = receiver_name(t, c);
      if (!slots->count(recv)) continue;
      const std::size_t open = c.token_index + 1;
      if (!punct_at(t, open, "(")) continue;
      const std::size_t close = match_fwd(t, open, fn.body_end + 1, "(", ")");
      for (std::size_t k = open + 1; k < close; ++k) {
        if (t[k].kind != TokKind::kIdent) continue;
        const std::string& o = t[k].text;
        if (o.rfind("memory_order_", 0) != 0) continue;
        const bool ok = (c.name == "store")
                            ? (o == "memory_order_release" || o == "memory_order_seq_cst")
                            : (o == "memory_order_acquire" || o == "memory_order_seq_cst");
        if (!ok) {
          emit("publish-order", fn.file, c.line,
               "`" + recv + "." + c.name + "` on a publication slot uses " + o +
                   " — publish with release stores and read with acquire "
                   "loads (or seq_cst)");
        }
      }
    }
  }

  return out;
}

}  // namespace remos::analyze
