// remos-analyze: findings, suppression filtering, and output formats.
//
// Suppression grammar (per line, same discipline repo-wide):
//
//   // remos-analyze: allow(<pass>): <justification>
//
// The justification is mandatory — an allow() without one is itself a
// finding, as is an allow() naming an unknown pass or one that suppresses
// nothing (stale). A marker on a comment-only line suppresses the next
// line, so long declarations can keep their justification above them.
#pragma once

#include <string>
#include <vector>

#include "model.hpp"

namespace remos::analyze {

struct Finding {
  std::string pass;  // "lock" | "determinism" | "layer" | "audit" | "suppression"
  std::string file;  // repo-relative
  int line = 0;
  std::string message;
};

using Findings = std::vector<Finding>;

/// Apply suppressions: drop findings covered by a matching, justified
/// allow() marker; then append meta-findings for malformed, unknown-pass,
/// and stale suppressions. Returns the surviving findings, sorted by
/// (file, line, pass) for deterministic output.
Findings apply_suppressions(Findings findings, const Project& proj);

/// Human-readable report to stdout.
void print_text(const Findings& findings, std::size_t files_scanned);

/// Machine-diffable JSON report to stdout.
void print_json(const Findings& findings);

}  // namespace remos::analyze
