// remos-analyze: findings, suppression filtering, and output formats.
//
// Suppression grammar (per line, same discipline repo-wide):
//
//   // remos-analyze: allow(<pass>): <justification>
//
// The justification is mandatory — an allow() without one is itself a
// finding, as is an allow() naming an unknown pass or one that suppresses
// nothing (stale). A marker on a comment-only line suppresses the next
// line, so long declarations can keep their justification above them.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "model.hpp"

namespace remos::analyze {

struct Finding {
  std::string pass;  // "lock" | "determinism" | "layer" | "audit" |
                     // "concurrency" | "hotpath" | "suppression"
  std::string rule;  // stable per-finding-kind id within the pass, used by
                     // the CI baseline diff (tools/analyze/baseline.json)
  std::string file;  // repo-relative
  int line = 0;
  std::string message;
};

using Findings = std::vector<Finding>;

/// One row of the concurrency pass's member inventory: what protects this
/// member, and which execution contexts it escapes to. This is the
/// machine-checked input to the ROADMAP-1 lock-free query-path migration.
struct MemberProtection {
  std::string scope;   // owning class name, or file path for namespace vars
  std::string member;
  std::string file;
  int line = 0;
  /// "atomic" | "const" | "static" | "reference" | "sync-primitive" |
  /// "thread-handle" | "guarded-by" | "suppressed" | "sim-thread-only" |
  /// "unprotected"
  std::string protection;
  std::string guard;  // mutex id when protection == "guarded-by"
  bool guard_positional = false;  // guard inferred from declaration order
  std::vector<std::string> escapes;  // sorted unique of "pool"|"thread"|"scheduled"
};

struct ConcurrencyInventory {
  std::vector<MemberProtection> members;
};

/// One allocation / I/O / blocking site inside hot-path code, with how it
/// was resolved. Sites with status "flagged" surface as findings; the
/// other statuses document why the site is acceptable — together they are
/// the migration worklist for the SoA-arena work (ROADMAP item 5).
struct HotpathSite {
  std::string kind;    // "alloc" | "io" | "block"
  std::string file;
  int line = 0;
  std::string detail;  // what the site does, e.g. "allocating `new`"
  /// "flagged" | "suppressed" (justified allow(hotpath) covers it) |
  /// "arena" (growth on a member scratch arena) | "leaf-mutex" (acquire
  /// of a declared // remos-hot-leaf mutex)
  std::string status;
};

/// One function in the hot closure: a `// remos-hot` entry point or a
/// function transitively reachable from one through the call graph.
struct HotpathFunction {
  std::string function;  // "Class::name", or bare name for free functions
  std::string file;
  int line = 0;
  std::string root;   // the hot entry point that reaches it
  bool direct = false;  // carries its own remos-hot marker
  std::vector<HotpathSite> sites;
};

struct HotpathInventory {
  std::vector<HotpathFunction> functions;
};

/// Apply suppressions: drop findings covered by a matching, justified
/// allow() marker; then append meta-findings for malformed, unknown-pass,
/// and stale suppressions. Returns the surviving findings, sorted by
/// (file, line, pass) for deterministic output.
Findings apply_suppressions(Findings findings, const Project& proj);

/// Per-pass count of suppressions that actually ate a finding. Call after
/// apply_suppressions (which marks markers used).
std::map<std::string, int> used_suppressions(const Project& proj);

/// Human-readable report to stdout.
void print_text(const Findings& findings, std::size_t files_scanned);

/// Machine-diffable JSON report to stdout: findings (with pass/rule),
/// per-pass finding and used-suppression counts, and — when non-null —
/// the concurrency member-protection inventory and the hot-path
/// function/site inventory.
void print_json(const Findings& findings,
                const std::map<std::string, int>& suppressions_used,
                const ConcurrencyInventory* inventory,
                const HotpathInventory* hotpath);

}  // namespace remos::analyze
