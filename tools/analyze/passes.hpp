// remos-analyze: the five analysis passes.
//
//   lock          mutex members must carry // remos-lock-order(N); nested
//                 acquisitions (direct or through the approximate call
//                 graph) must acquire in strictly increasing order; members
//                 declared after a mutex are guarded by it and must only be
//                 touched while it is held.
//   determinism   range-for over std::unordered_* whose body reaches an
//                 export sink (protocol_ascii, protocol_xml, xml, obs,
//                 render) — iteration order would leak into golden output.
//   layer         the include layering declared in layers.txt: no upward
//                 includes, no undeclared layers, no include cycles.
//   audit         public mutating entry points in src/core must invoke
//                 REMOS_CHECK / REMOS_AUDIT, directly or via a callee.
//   concurrency   thread-escape + guarded-by inference: members reachable
//                 from ThreadPool / std::thread / scheduled-callback code
//                 must be atomic, const, mutex-guarded (explicit
//                 // remos-guarded-by(<mutex>) or positional), or carry a
//                 justified suppression; // remos-requires(<mutex>) call
//                 contracts are enforced; blocking (pool entry, cv wait,
//                 future wait) while holding a mutex is flagged.
//
// Every pass is approximate (see model.hpp); each errs toward silence so
// the tree stays warning-clean without suppression sprawl, and the corpus
// fixtures in tests/analyze_corpus pin the must-catch cases.
#pragma once

#include "report.hpp"

namespace remos::analyze {

/// Name-resolved call graph: functions[i] -> indices of possible callees.
/// Resolution is by unqualified name, excluding std::-qualified calls,
/// receiver-calls with STL-container method names, and file-local
/// functions of other files. The macro REMOS_LOG resolves to log_message
/// so logging under a lock participates in lock-order checking.
struct CallGraph {
  std::vector<std::vector<std::size_t>> edges;  // parallel to proj.functions
};
CallGraph build_call_graph(const Project& proj);

/// Resolve one call site to candidate function indices under the same
/// policy build_call_graph uses. Passes that need per-site precision
/// (e.g. which locks are held at *this* call) use this directly.
std::vector<std::size_t> resolve_call(const Project& proj,
                                      const FunctionInfo& caller,
                                      const CallSite& call);

Findings pass_lock(const Project& proj, const CallGraph& cg);
Findings pass_determinism(const Project& proj, const CallGraph& cg);
Findings pass_audit(const Project& proj, const CallGraph& cg);

/// Concurrency pass. Fills `inventory` (when non-null) with the
/// member-protection table for every concurrent scope — the machine-checked
/// input to the lock-free query-path migration (ROADMAP item 1).
Findings pass_concurrency(const Project& proj, const CallGraph& cg,
                          ConcurrencyInventory* inventory);

/// `layers_text` is the contents of layers.txt; `layers_display` is the
/// path used in finding messages for problems with the file itself.
Findings pass_layers(const Project& proj, const std::string& layers_text,
                     const std::string& layers_display);

}  // namespace remos::analyze
