// remos-analyze: the six analysis passes.
//
//   lock          mutex members must carry // remos-lock-order(N); nested
//                 acquisitions (direct or through the approximate call
//                 graph) must acquire in strictly increasing order; members
//                 declared after a mutex are guarded by it and must only be
//                 touched while it is held.
//   determinism   range-for over std::unordered_* whose body reaches an
//                 export sink (protocol_ascii, protocol_xml, xml, obs,
//                 render) — iteration order would leak into golden output.
//   layer         the include layering declared in layers.txt: no upward
//                 includes, no undeclared layers, no include cycles.
//   audit         public mutating entry points in src/core must invoke
//                 REMOS_CHECK / REMOS_AUDIT, directly or via a callee.
//   concurrency   thread-escape + guarded-by inference: members reachable
//                 from ThreadPool / std::thread / scheduled-callback code
//                 must be atomic, const, mutex-guarded (explicit
//                 // remos-guarded-by(<mutex>) or positional), or carry a
//                 justified suppression; // remos-requires(<mutex>) call
//                 contracts are enforced; blocking (pool entry, cv wait,
//                 future wait) while holding a mutex is flagged.
//   hotpath       functions marked // remos-hot (and everything they reach
//                 through the call graph) must not allocate (`new`,
//                 make_shared/make_unique, owning-container construction,
//                 growth of locally-owned containers, to_string), perform
//                 I/O, or block (mutex acquisition beyond declared
//                 // remos-hot-leaf mutexes, pool entry, cv/future waits);
//                 member scratch arenas are exempt sinks. Types marked
//                 // remos-published must be deeply immutable after
//                 construction, and their atomic shared_ptr publication
//                 slots must use release stores / acquire loads — plain
//                 shared_ptr slots are torn publishes.
//
// Every pass is approximate (see model.hpp); each errs toward silence so
// the tree stays warning-clean without suppression sprawl, and the corpus
// fixtures in tests/analyze_corpus pin the must-catch cases.
#pragma once

#include "report.hpp"

namespace remos::analyze {

/// Name-resolved call graph: functions[i] -> indices of possible callees.
/// Resolution is by unqualified name, excluding std::-qualified calls,
/// receiver-calls with STL-container method names, and file-local
/// functions of other files. The macro REMOS_LOG resolves to log_message
/// so logging under a lock participates in lock-order checking.
struct CallGraph {
  std::vector<std::vector<std::size_t>> edges;  // parallel to proj.functions
};
CallGraph build_call_graph(const Project& proj);

/// Resolve one call site to candidate function indices under the same
/// policy build_call_graph uses. Passes that need per-site precision
/// (e.g. which locks are held at *this* call) use this directly.
std::vector<std::size_t> resolve_call(const Project& proj,
                                      const FunctionInfo& caller,
                                      const CallSite& call);

// --- helpers shared by the annotation-driven passes (pass_common.cpp) ----

/// The project's SourceFile for a repo-relative path, or nullptr.
const SourceFile* find_file(const Project& proj, const std::string& rel_path);

/// True when a *justified* `// remos-analyze: allow(<pass>)` marker covers
/// `line` in `file`: marker on the same line, or a comment-only marker on
/// the line above. Read-only — apply_suppressions (report.cpp) stays the
/// one place that marks markers used.
bool suppression_covers(const Project& proj, const std::string& pass,
                        const std::string& file, int line);

/// Call names that hand work to the thread pool / wait on sync primitives;
/// shared between the concurrency and hotpath passes so both agree on what
/// "blocking" means.
const std::set<std::string>& pool_entry_names();
const std::set<std::string>& cv_wait_names();
const std::set<std::string>& future_wait_names();

/// Render a held-lock set as `a`, `b` for messages.
std::string join_ids(const std::set<std::string>& ids);

/// Classification of a `new` keyword token (satellite of the hotpath
/// pass): only kAllocating touches the heap allocator.
enum class NewKind {
  kAllocating,    // new T / new T[n]
  kPlacement,     // new (addr) T — constructs into given storage
  kOperatorDecl,  // operator new / operator new[] overload declaration
};
/// `i` must index an identifier token with text "new". `new` inside
/// strings/comments never reaches here: the tokenizer drops string
/// contents and comments entirely.
NewKind classify_new_site(const std::vector<Token>& toks, std::size_t i);

Findings pass_lock(const Project& proj, const CallGraph& cg);
Findings pass_determinism(const Project& proj, const CallGraph& cg);
Findings pass_audit(const Project& proj, const CallGraph& cg);

/// Concurrency pass. Fills `inventory` (when non-null) with the
/// member-protection table for every concurrent scope — the machine-checked
/// input to the lock-free query-path migration (ROADMAP item 1).
Findings pass_concurrency(const Project& proj, const CallGraph& cg,
                          ConcurrencyInventory* inventory);

/// Hot-path pass. Fills `inventory` (when non-null) with every function in
/// the hot closure and its allocation/IO/blocking sites — the migration
/// worklist for the SoA-arena work (ROADMAP item 5).
Findings pass_hotpath(const Project& proj, const CallGraph& cg,
                      HotpathInventory* inventory);

/// `layers_text` is the contents of layers.txt; `layers_display` is the
/// path used in finding messages for problems with the file itself.
Findings pass_layers(const Project& proj, const std::string& layers_text,
                     const std::string& layers_display);

}  // namespace remos::analyze
