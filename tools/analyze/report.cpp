#include "report.hpp"

#include <algorithm>
#include <cstdio>
#include <set>

namespace remos::analyze {
namespace {

const std::set<std::string> kKnownPasses{"lock",        "determinism", "layer",
                                         "audit",       "concurrency", "hotpath",
                                         "suppression"};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

Findings apply_suppressions(Findings findings, const Project& proj) {
  Findings out;
  for (auto& f : findings) {
    bool suppressed = false;
    for (const auto& sf : proj.files) {
      if (sf.rel_path != f.file) continue;
      for (const auto& s : sf.toks.suppressions) {
        if (s.pass != f.pass) continue;
        if (s.justification.empty()) continue;  // malformed: cannot suppress
        const bool covers =
            (s.line == f.line) || (s.comment_only_line && s.line + 1 == f.line);
        if (covers) {
          s.used = true;
          suppressed = true;
          break;
        }
      }
      break;
    }
    if (!suppressed) out.push_back(std::move(f));
  }

  // Meta-findings over the suppression markers themselves.
  for (const auto& sf : proj.files) {
    for (const auto& s : sf.toks.suppressions) {
      if (!kKnownPasses.count(s.pass)) {
        out.push_back({"suppression", "unknown-pass", sf.rel_path, s.line,
                       "allow(" + s.pass + ") names no analyzer pass"});
        continue;
      }
      if (s.justification.empty()) {
        out.push_back({"suppression", "unjustified", sf.rel_path, s.line,
                       "allow(" + s.pass +
                           ") lacks a justification — write `allow(" + s.pass +
                           "): <why this is safe>`"});
        continue;
      }
      if (!s.used) {
        out.push_back({"suppression", "stale", sf.rel_path, s.line,
                       "stale allow(" + s.pass +
                           "): it suppresses nothing on this line"});
      }
    }
  }

  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.pass != b.pass) return a.pass < b.pass;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  });
  return out;
}

std::map<std::string, int> used_suppressions(const Project& proj) {
  std::map<std::string, int> out;
  for (const auto& sf : proj.files) {
    for (const auto& s : sf.toks.suppressions) {
      if (s.used) ++out[s.pass];
    }
  }
  return out;
}

void print_text(const Findings& findings, std::size_t files_scanned) {
  for (const auto& f : findings) {
    std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.pass.c_str(),
                f.message.c_str());
  }
  std::printf("remos_analyze: %zu finding(s) in %zu file(s)\n", findings.size(),
              files_scanned);
}

void print_json(const Findings& findings,
                const std::map<std::string, int>& suppressions_used,
                const ConcurrencyInventory* inventory,
                const HotpathInventory* hotpath) {
  std::printf("{\n  \"findings\": [");
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const auto& f = findings[i];
    std::printf("%s\n    {\"pass\": \"%s\", \"rule\": \"%s\", \"file\": \"%s\", "
                "\"line\": %d, \"message\": \"%s\"}",
                i ? "," : "", json_escape(f.pass).c_str(), json_escape(f.rule).c_str(),
                json_escape(f.file).c_str(), f.line, json_escape(f.message).c_str());
  }
  std::printf("%s],\n", findings.empty() ? "" : "\n  ");

  // Per-pass finding counts (the CI baseline ratchets on these).
  std::map<std::string, int> by_pass;
  for (const auto& f : findings) ++by_pass[f.pass];
  std::printf("  \"counts\": {");
  {
    bool first = true;
    for (const auto& [pass, n] : by_pass) {
      std::printf("%s\"%s\": %d", first ? "" : ", ", json_escape(pass).c_str(), n);
      first = false;
    }
  }
  std::printf("},\n  \"suppressions_used\": {");
  {
    bool first = true;
    for (const auto& [pass, n] : suppressions_used) {
      std::printf("%s\"%s\": %d", first ? "" : ", ", json_escape(pass).c_str(), n);
      first = false;
    }
  }
  std::printf("},\n");

  if (inventory) {
    std::printf("  \"concurrency\": {\n    \"members\": [");
    for (std::size_t i = 0; i < inventory->members.size(); ++i) {
      const auto& m = inventory->members[i];
      std::printf("%s\n      {\"scope\": \"%s\", \"member\": \"%s\", "
                  "\"file\": \"%s\", \"line\": %d, \"protection\": \"%s\"",
                  i ? "," : "", json_escape(m.scope).c_str(),
                  json_escape(m.member).c_str(), json_escape(m.file).c_str(),
                  m.line, json_escape(m.protection).c_str());
      if (!m.guard.empty()) {
        std::printf(", \"guard\": \"%s\", \"guard_positional\": %s",
                    json_escape(m.guard).c_str(), m.guard_positional ? "true" : "false");
      }
      std::printf(", \"escapes\": [");
      for (std::size_t k = 0; k < m.escapes.size(); ++k) {
        std::printf("%s\"%s\"", k ? ", " : "", json_escape(m.escapes[k]).c_str());
      }
      std::printf("]}");
    }
    std::printf("%s],\n", inventory->members.empty() ? "" : "\n    ");
    std::printf("    \"member_count\": %zu\n  },\n", inventory->members.size());
  }

  if (hotpath) {
    std::size_t n_sites = 0;
    std::printf("  \"hotpath\": {\n    \"functions\": [");
    for (std::size_t i = 0; i < hotpath->functions.size(); ++i) {
      const auto& f = hotpath->functions[i];
      std::printf("%s\n      {\"function\": \"%s\", \"file\": \"%s\", "
                  "\"line\": %d, \"root\": \"%s\", \"direct\": %s, \"sites\": [",
                  i ? "," : "", json_escape(f.function).c_str(),
                  json_escape(f.file).c_str(), f.line, json_escape(f.root).c_str(),
                  f.direct ? "true" : "false");
      for (std::size_t k = 0; k < f.sites.size(); ++k) {
        const auto& s = f.sites[k];
        std::printf("%s\n        {\"kind\": \"%s\", \"file\": \"%s\", "
                    "\"line\": %d, \"status\": \"%s\", \"detail\": \"%s\"}",
                    k ? "," : "", json_escape(s.kind).c_str(),
                    json_escape(s.file).c_str(), s.line,
                    json_escape(s.status).c_str(), json_escape(s.detail).c_str());
      }
      std::printf("%s]}", f.sites.empty() ? "" : "\n      ");
      n_sites += f.sites.size();
    }
    std::printf("%s],\n", hotpath->functions.empty() ? "" : "\n    ");
    std::printf("    \"function_count\": %zu,\n    \"site_count\": %zu\n  },\n",
                hotpath->functions.size(), n_sites);
  }

  std::printf("  \"count\": %zu\n}\n", findings.size());
}

}  // namespace remos::analyze
