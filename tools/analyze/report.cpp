#include "report.hpp"

#include <algorithm>
#include <cstdio>
#include <set>

namespace remos::analyze {
namespace {

const std::set<std::string> kKnownPasses{"lock", "determinism", "layer", "audit",
                                         "suppression"};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

Findings apply_suppressions(Findings findings, const Project& proj) {
  Findings out;
  for (auto& f : findings) {
    bool suppressed = false;
    for (const auto& sf : proj.files) {
      if (sf.rel_path != f.file) continue;
      for (const auto& s : sf.toks.suppressions) {
        if (s.pass != f.pass) continue;
        if (s.justification.empty()) continue;  // malformed: cannot suppress
        const bool covers =
            (s.line == f.line) || (s.comment_only_line && s.line + 1 == f.line);
        if (covers) {
          s.used = true;
          suppressed = true;
          break;
        }
      }
      break;
    }
    if (!suppressed) out.push_back(std::move(f));
  }

  // Meta-findings over the suppression markers themselves.
  for (const auto& sf : proj.files) {
    for (const auto& s : sf.toks.suppressions) {
      if (!kKnownPasses.count(s.pass)) {
        out.push_back({"suppression", sf.rel_path, s.line,
                       "allow(" + s.pass + ") names no analyzer pass"});
        continue;
      }
      if (s.justification.empty()) {
        out.push_back({"suppression", sf.rel_path, s.line,
                       "allow(" + s.pass +
                           ") lacks a justification — write `allow(" + s.pass +
                           "): <why this is safe>`"});
        continue;
      }
      if (!s.used) {
        out.push_back({"suppression", sf.rel_path, s.line,
                       "stale allow(" + s.pass +
                           "): it suppresses nothing on this line"});
      }
    }
  }

  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.pass != b.pass) return a.pass < b.pass;
    return a.message < b.message;
  });
  return out;
}

void print_text(const Findings& findings, std::size_t files_scanned) {
  for (const auto& f : findings) {
    std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.pass.c_str(),
                f.message.c_str());
  }
  std::printf("remos_analyze: %zu finding(s) in %zu file(s)\n", findings.size(),
              files_scanned);
}

void print_json(const Findings& findings) {
  std::printf("{\n  \"findings\": [");
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const auto& f = findings[i];
    std::printf("%s\n    {\"pass\": \"%s\", \"file\": \"%s\", \"line\": %d, "
                "\"message\": \"%s\"}",
                i ? "," : "", json_escape(f.pass).c_str(), json_escape(f.file).c_str(),
                f.line, json_escape(f.message).c_str());
  }
  std::printf("%s],\n  \"count\": %zu\n}\n", findings.empty() ? "" : "\n  ",
              findings.size());
}

}  // namespace remos::analyze
