// remos-analyze: project source model.
//
// Two-phase construction over the token streams of every file under
// <root>/src:
//
//   Phase A (structure): namespaces, classes with their ordered member
//   lists, mutex declarations (+ their // remos-lock-order(N) annotations),
//   and function declarations/definitions with body token spans.
//
//   Phase B (bodies): for every function definition — RAII lock scopes and
//   the lock set held at each point, calls (with qualifier / receiver
//   shape), accesses to lock-guarded names, range-for loops over unordered
//   containers, and REMOS_CHECK / REMOS_AUDIT usage.
//
// The model is approximate by design: names are matched textually, calls
// are resolved by unqualified name, and types are substring-matched. The
// passes (passes.hpp) are written so that approximation errs toward
// silence, and the corpus tests (tests/analyze_corpus) pin the behaviors
// the project relies on.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "tokenizer.hpp"

namespace remos::analyze {

/// A mutex-typed variable: class member or namespace-scope.
struct MutexDecl {
  std::string id;       // "Class::name" or "file::name" (namespace scope)
  std::string cls;      // owning class, "" for namespace scope
  std::string name;
  std::string file;     // repo-relative path of the declaration
  int line = 0;
  int order = -1;       // from // remos-lock-order(N); -1 = unannotated
  bool recursive = false;
  bool shared = false;  // std::shared_mutex
};

/// A non-function data declaration (class member or namespace-scope var).
struct VarDecl {
  std::string name;
  std::string type_text;  // joined declaration tokens left of the name
  std::string file;
  int line = 0;
  bool is_mutex = false;
  bool is_unordered = false;
  /// Types with their own synchronization story (atomics, cv, thread):
  /// excluded from guarded-member analysis.
  bool exempt = false;
};

struct ClassInfo {
  std::string name;
  std::string file;  // file of the defining class body
  int line = 0;
  std::vector<VarDecl> members;  // declaration order
  /// member name -> guarding mutex id, derived from declaration order:
  /// a member declared after a mutex member is guarded by it.
  std::map<std::string, std::string> guarded_by;
};

struct CallSite {
  std::string name;
  std::string qualifier;  // "std" for std::foo(...), "" otherwise
  bool method_call = false;  // receiver.name(...) / receiver->name(...)
  int line = 0;
  std::size_t token_index = 0;  // position in the file token stream
  std::vector<std::string> held;  // mutex ids held at the call
};

struct AccessSite {
  std::string name;       // guarded variable touched
  std::string guard;      // mutex id that must be held
  int line = 0;
  std::vector<std::string> held;
};

struct AcquireSite {
  std::string mutex;  // mutex id
  int line = 0;
  std::vector<std::string> held;  // already held when acquiring
};

struct LoopInfo {
  int line = 0;
  bool unordered = false;        // range resolves to an unordered container
  std::string range_name;        // the container identifier, for messages
  std::size_t body_begin = 0;    // token span of the loop body
  std::size_t body_end = 0;
};

struct FunctionInfo {
  std::string cls;   // enclosing/qualifying class, "" for free functions
  std::string name;
  std::string file;
  int line = 0;             // definition (or declaration) line
  bool is_method = false;
  bool is_const = false;
  bool is_public = true;    // access at declaration (methods)
  bool is_static = false;
  bool is_ctor_dtor = false;
  bool is_operator = false;
  bool file_local = false;  // anonymous namespace / static linkage
  bool access_known = false;  // declared inside a class body (access seen)
  bool has_body = false;
  std::size_t body_begin = 0;  // token span of the body (exclusive braces)
  std::size_t body_end = 0;
  std::size_t body_tokens = 0;
  bool has_audit = false;   // REMOS_CHECK / REMOS_AUDIT in the body
  std::string return_type_text;
  std::vector<CallSite> calls;
  std::vector<AcquireSite> acquires;
  std::vector<AccessSite> guarded_accesses;
  std::vector<LoopInfo> loops;
};

struct SourceFile {
  std::string rel_path;   // e.g. "src/core/modeler.cpp"
  std::string layer;      // first path component under src/, e.g. "core"
  std::string raw;        // file contents (marker searches)
  TokenizedFile toks;
};

struct Project {
  std::vector<SourceFile> files;
  std::map<std::string, ClassInfo> classes;       // by class name
  std::map<std::string, MutexDecl> mutexes;       // by mutex id
  std::vector<FunctionInfo> functions;
  /// unqualified function name -> indices into functions
  std::map<std::string, std::vector<std::size_t>> by_name;
  /// per-file namespace-scope vars, declaration order (guarded-var rules)
  std::map<std::string, std::vector<VarDecl>> namespace_vars;
  /// per-file: namespace-scope var name -> guarding mutex id
  std::map<std::string, std::map<std::string, std::string>> ns_guarded_by;
};

/// Build the model from tokenized files (rel_path must be set on each).
Project build_project(std::vector<SourceFile> files);

}  // namespace remos::analyze
