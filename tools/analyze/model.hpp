// remos-analyze: project source model.
//
// Two-phase construction over the token streams of every file under
// <root>/src:
//
//   Phase A (structure): namespaces, classes with their ordered member
//   lists, mutex declarations (+ their // remos-lock-order(N) annotations),
//   and function declarations/definitions with body token spans.
//
//   Phase B (bodies): for every function definition — RAII lock scopes and
//   the lock set held at each point, calls (with qualifier / receiver
//   shape), accesses to lock-guarded names, range-for loops over unordered
//   containers, and REMOS_CHECK / REMOS_AUDIT usage.
//
// The model is approximate by design: names are matched textually, calls
// are resolved by unqualified name, and types are substring-matched. The
// passes (passes.hpp) are written so that approximation errs toward
// silence, and the corpus tests (tests/analyze_corpus) pin the behaviors
// the project relies on.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "tokenizer.hpp"

namespace remos::analyze {

/// A mutex-typed variable: class member or namespace-scope.
struct MutexDecl {
  std::string id;       // "Class::name" or "file::name" (namespace scope)
  std::string cls;      // owning class, "" for namespace scope
  std::string name;
  std::string file;     // repo-relative path of the declaration
  int line = 0;
  int order = -1;       // from // remos-lock-order(N); -1 = unannotated
  bool recursive = false;
  bool shared = false;  // std::shared_mutex
  /// `// remos-hot-leaf` on the declaration: a declared leaf mutex —
  /// uncontended by construction, so the hot-path pass allows acquiring it
  /// inside `// remos-hot` code.
  bool hot_leaf = false;
};

/// A non-function data declaration (class member or namespace-scope var).
struct VarDecl {
  std::string name;
  std::string type_text;  // joined declaration tokens left of the name
  std::string file;
  int line = 0;
  bool is_mutex = false;
  bool is_unordered = false;
  /// Types with their own synchronization story (atomics, cv, thread):
  /// excluded from guarded-member analysis.
  bool exempt = false;
  // Finer-grained protection classification (concurrency pass):
  bool is_atomic = false;
  bool is_cv = false;            // condition_variable[_any]
  bool is_thread_handle = false; // thread / jthread / future / promise
  bool is_const = false;         // const / constexpr
  bool is_static = false;
  bool is_ref = false;           // reference member (binding is immutable)
  /// Raw mutex name from a `// remos-guarded-by(<mutex>)` annotation on
  /// the declaration line ("" = none).
  std::string guard_annot;
  /// Resolved guarding mutex id ("" = unguarded or unresolved annotation):
  /// explicit annotation when present, else positional inference.
  std::string guard_id;
  bool guard_explicit = false;
};

struct ClassInfo {
  std::string name;
  std::string file;  // file of the defining class body
  int line = 0;
  std::vector<VarDecl> members;  // declaration order
  /// member name -> guarding mutex id: explicit // remos-guarded-by(...)
  /// annotation when present, else derived from declaration order (a
  /// member declared after a mutex member is guarded by it).
  std::map<std::string, std::string> guarded_by;
  /// members whose guard came from an explicit annotation — their access
  /// sites are enforced by the concurrency pass, not the lock pass.
  std::set<std::string> explicit_guard_names;
  /// `// remos-published` on the definition: instances are published to
  /// readers through an atomic shared_ptr slot and must be deeply
  /// immutable after construction (hot-path pass).
  bool is_published = false;
};

struct CallSite {
  std::string name;
  std::string qualifier;  // "std" for std::foo(...), "" otherwise
  bool method_call = false;  // receiver.name(...) / receiver->name(...)
  int line = 0;
  std::size_t token_index = 0;  // position in the file token stream
  std::vector<std::string> held;  // mutex ids held at the call
};

struct AccessSite {
  std::string name;       // guarded variable touched
  std::string guard;      // mutex id that must be held
  int line = 0;
  std::vector<std::string> held;
  bool explicit_guard = false;  // guard came from remos-guarded-by(...)
};

struct AcquireSite {
  std::string mutex;  // mutex id
  int line = 0;
  std::vector<std::string> held;  // already held when acquiring
  std::string raii_var;  // lock object name ("" for anonymous/temporary);
                         // cv.wait(raii_var) legitimately releases it
};

struct LoopInfo {
  int line = 0;
  bool unordered = false;        // range resolves to an unordered container
  std::string range_name;        // the container identifier, for messages
  std::size_t body_begin = 0;    // token span of the loop body
  std::size_t body_end = 0;
};

struct FunctionInfo {
  std::string cls;   // enclosing/qualifying class, "" for free functions
  std::string name;
  std::string file;
  int line = 0;             // definition (or declaration) line
  bool is_method = false;
  bool is_const = false;
  bool is_public = true;    // access at declaration (methods)
  bool is_static = false;
  bool is_ctor_dtor = false;
  bool is_operator = false;
  bool file_local = false;  // anonymous namespace / static linkage
  bool access_known = false;  // declared inside a class body (access seen)
  bool has_body = false;
  std::size_t body_begin = 0;  // token span of the body (exclusive braces)
  std::size_t body_end = 0;
  std::size_t body_tokens = 0;
  bool has_audit = false;   // REMOS_CHECK / REMOS_AUDIT in the body
  /// `// remos-hot` on the declaration or definition: zero-allocation /
  /// non-blocking serving path, enforced transitively by the hot-path
  /// pass. A marker on either the declaration or the out-of-line
  /// definition marks every same-named sibling.
  bool is_hot = false;
  std::string return_type_text;
  /// `// remos-requires(<mutex>)` on the definition: raw names as written,
  /// resolved mutex ids, and any names that failed to resolve.
  std::vector<std::string> requires_annot;
  std::vector<std::string> requires_ids;
  std::vector<std::string> requires_unresolved;
  std::vector<CallSite> calls;
  std::vector<AcquireSite> acquires;
  std::vector<AccessSite> guarded_accesses;
  std::vector<LoopInfo> loops;
};

struct SourceFile {
  std::string rel_path;   // e.g. "src/core/modeler.cpp"
  std::string layer;      // first path component under src/, e.g. "core"
  std::string raw;        // file contents (marker searches)
  TokenizedFile toks;
};

struct Project {
  std::vector<SourceFile> files;
  std::map<std::string, ClassInfo> classes;       // by class name
  std::map<std::string, MutexDecl> mutexes;       // by mutex id
  std::vector<FunctionInfo> functions;
  /// unqualified function name -> indices into functions
  std::map<std::string, std::vector<std::size_t>> by_name;
  /// per-file namespace-scope vars, declaration order (guarded-var rules)
  std::map<std::string, std::vector<VarDecl>> namespace_vars;
  /// per-file: namespace-scope var name -> guarding mutex id
  std::map<std::string, std::map<std::string, std::string>> ns_guarded_by;
  /// per-file: namespace-scope vars whose guard is an explicit annotation
  std::map<std::string, std::set<std::string>> ns_explicit_guard_names;
  /// `using Name = <type>;` aliases, name -> compact right-hand side.
  /// First definition wins; the hot-path pass expands these to see through
  /// e.g. `QuerySnapshotPtr` when classifying publication slots.
  std::map<std::string, std::string> type_aliases;
};

/// Build the model from tokenized files (rel_path must be set on each).
Project build_project(std::vector<SourceFile> files);

}  // namespace remos::analyze
