#include "tokenizer.hpp"

#include <cctype>
#include <regex>

namespace remos::analyze {
namespace {

const std::regex kLockOrderRe{R"(//.*remos-lock-order\((\d+)\))"};
const std::regex kAllowRe{
    R"(//\s*remos-analyze:\s*allow\(([a-z-]*)\)(:\s*(.*))?)"};

bool is_ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool is_ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

/// True when the part of `line` before `pos` holds no code (only blanks),
/// i.e. the comment at `pos` has the line to itself.
bool comment_only(const std::string& line, std::size_t pos) {
  for (std::size_t i = 0; i < pos && i < line.size(); ++i) {
    if (!std::isspace(static_cast<unsigned char>(line[i]))) return false;
  }
  return true;
}

}  // namespace

TokenizedFile tokenize(const std::string& text) {
  TokenizedFile out;

  // Pass 1: line-anchored side channels (annotations, suppressions,
  // includes). Runs on raw lines so comments are still visible.
  {
    int lineno = 0;
    std::size_t start = 0;
    while (start <= text.size()) {
      ++lineno;
      std::size_t end = text.find('\n', start);
      if (end == std::string::npos) end = text.size();
      const std::string line = text.substr(start, end - start);

      std::smatch m;
      if (std::regex_search(line, m, kLockOrderRe)) {
        out.lock_orders.push_back({lineno, std::stoi(m[1].str())});
      }
      if (std::regex_search(line, m, kAllowRe)) {
        Suppression s;
        s.line = lineno;
        s.pass = m[1].str();
        s.justification = m[3].matched ? m[3].str() : "";
        // Trim trailing whitespace from the justification.
        while (!s.justification.empty() &&
               std::isspace(static_cast<unsigned char>(s.justification.back()))) {
          s.justification.pop_back();
        }
        s.comment_only_line = comment_only(line, static_cast<std::size_t>(m.position(0)));
        out.suppressions.push_back(s);
      }
      if (std::regex_search(line, m,
                            std::regex{R"(^\s*#\s*include\s*([<"])([^">]+)[">])"})) {
        out.includes.push_back({m[2].str(), m[1].str() == "\"", lineno});
      }

      if (end == text.size()) break;
      start = end + 1;
    }
  }

  // Pass 2: token stream. Comments, strings (contents), and preprocessor
  // directives are skipped; line numbers are preserved.
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = text.size();
  bool at_line_start = true;
  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#' && at_line_start) {
      // Preprocessor directive, possibly backslash-continued.
      while (i < n) {
        std::size_t eol = text.find('\n', i);
        if (eol == std::string::npos) { i = n; break; }
        bool continued = false;
        for (std::size_t k = eol; k > i;) {
          --k;
          if (text[k] == '\\') { continued = true; break; }
          if (!std::isspace(static_cast<unsigned char>(text[k]))) break;
        }
        ++line;
        i = eol + 1;
        if (!continued) break;
      }
      at_line_start = true;
      continue;
    }
    at_line_start = false;
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      std::size_t eol = text.find('\n', i);
      i = (eol == std::string::npos) ? n : eol;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      std::size_t close = text.find("*/", i + 2);
      if (close == std::string::npos) close = n;
      for (std::size_t k = i; k < close && k < n; ++k) {
        if (text[k] == '\n') ++line;
      }
      i = (close == n) ? n : close + 2;
      continue;
    }
    if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
      // Raw string literal R"delim(...)delim".
      std::size_t open = text.find('(', i + 2);
      if (open == std::string::npos) { ++i; continue; }
      const std::string delim = text.substr(i + 2, open - (i + 2));
      const std::string closer = ")" + delim + "\"";
      std::size_t close = text.find(closer, open + 1);
      if (close == std::string::npos) close = n;
      for (std::size_t k = i; k < close && k < n; ++k) {
        if (text[k] == '\n') ++line;
      }
      out.tokens.push_back({TokKind::kString, "", line});
      i = (close == n) ? n : close + closer.size();
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      while (j < n && text[j] != quote) {
        if (text[j] == '\\') ++j;
        ++j;
      }
      out.tokens.push_back(
          {quote == '"' ? TokKind::kString : TokKind::kChar, "", line});
      i = (j < n) ? j + 1 : n;
      continue;
    }
    if (is_ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && is_ident_char(text[j])) ++j;
      out.tokens.push_back({TokKind::kIdent, text.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i + 1;
      while (j < n && (is_ident_char(text[j]) || text[j] == '.' ||
                       ((text[j] == '+' || text[j] == '-') && j > 0 &&
                        (text[j - 1] == 'e' || text[j - 1] == 'E')))) {
        ++j;
      }
      out.tokens.push_back({TokKind::kNumber, text.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Punctuation. `::` and `->` are fused: qualified names and member
    // dereferences are pattern-matched constantly by the scanner.
    if (c == ':' && i + 1 < n && text[i + 1] == ':') {
      out.tokens.push_back({TokKind::kPunct, "::", line});
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && text[i + 1] == '>') {
      out.tokens.push_back({TokKind::kPunct, "->", line});
      i += 2;
      continue;
    }
    out.tokens.push_back({TokKind::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

}  // namespace remos::analyze
