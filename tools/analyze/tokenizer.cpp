#include "tokenizer.hpp"

#include <cctype>
#include <regex>

namespace remos::analyze {
namespace {

const std::regex kLockOrderRe{R"(remos-lock-order\((\d+)\))"};
const std::regex kGuardedByRe{R"(remos-guarded-by\(([A-Za-z_][A-Za-z0-9_:]*)\))"};
const std::regex kRequiresRe{R"(remos-requires\(([A-Za-z_][A-Za-z0-9_:]*)\))"};
const std::regex kAllowRe{
    R"(^//\s*remos-analyze:\s*allow\(([a-z-]*)\)(:\s*(.*))?)"};
// Generic marker channel: every `remos-<name>[(<arg>)]` in a comment whose
// text starts with `remos-`. Anchoring on the comment start keeps doc prose
// that mentions a marker from creating phantom annotations.
const std::regex kMarkerStartRe{R"(^//[/!]*\s*remos-[a-z])"};
const std::regex kMarkerRe{R"(remos-([a-z][a-z-]*)(\(([^()]*)\))?)"};
const std::regex kIncludeRe{R"(^\s*#\s*include\s*([<"])([^">]+)[">])"};

bool is_ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool is_ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

/// Parse the side channels out of one `//` comment. `comment` is the text
/// from the `//` to end of line; `line` the line it starts on;
/// `line_has_code` whether any token preceded it on that line.
void scan_comment(const std::string& comment, int line, bool line_has_code,
                  TokenizedFile& out) {
  std::smatch m;
  if (std::regex_search(comment, m, kLockOrderRe)) {
    out.lock_orders.push_back({line, std::stoi(m[1].str())});
  }
  for (auto it = std::sregex_iterator(comment.begin(), comment.end(), kGuardedByRe);
       it != std::sregex_iterator(); ++it) {
    out.guarded_by.push_back({line, (*it)[1].str()});
  }
  for (auto it = std::sregex_iterator(comment.begin(), comment.end(), kRequiresRe);
       it != std::sregex_iterator(); ++it) {
    out.requires_held.push_back({line, (*it)[1].str()});
  }
  if (std::regex_search(comment, m, kAllowRe)) {
    Suppression s;
    s.line = line;
    s.pass = m[1].str();
    s.justification = m[3].matched ? m[3].str() : "";
    // Trim trailing whitespace from the justification.
    while (!s.justification.empty() &&
           std::isspace(static_cast<unsigned char>(s.justification.back()))) {
      s.justification.pop_back();
    }
    s.comment_only_line = !line_has_code;
    out.suppressions.push_back(s);
  }
  if (std::regex_search(comment, m, kMarkerStartRe)) {
    for (auto it = std::sregex_iterator(comment.begin(), comment.end(), kMarkerRe);
         it != std::sregex_iterator(); ++it) {
      MarkerAnnotation ma;
      ma.line = line;
      ma.name = (*it)[1].str();
      ma.arg = (*it)[3].matched ? (*it)[3].str() : "";
      out.markers.push_back(std::move(ma));
    }
  }
}

}  // namespace

TokenizedFile tokenize(const std::string& text) {
  TokenizedFile out;

  // One pass: the token scanner owns the string/comment state machine, and
  // the line-anchored side channels are pulled from comments as they are
  // recognized — so a `// remos-...` sequence inside a string literal is
  // just string contents, never an annotation.
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = text.size();
  bool at_line_start = true;
  bool line_has_code = false;
  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      line_has_code = false;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#' && at_line_start) {
      // Preprocessor directive, possibly backslash-continued. The #include
      // side channel is parsed from the first physical line.
      {
        std::size_t eol = text.find('\n', i);
        const std::string first =
            text.substr(i, (eol == std::string::npos ? n : eol) - i);
        std::smatch m;
        if (std::regex_search(first, m, kIncludeRe)) {
          out.includes.push_back({m[2].str(), m[1].str() == "\"", line});
        }
      }
      while (i < n) {
        std::size_t eol = text.find('\n', i);
        if (eol == std::string::npos) { i = n; break; }
        bool continued = false;
        for (std::size_t k = eol; k > i;) {
          --k;
          if (text[k] == '\\') { continued = true; break; }
          if (!std::isspace(static_cast<unsigned char>(text[k]))) break;
        }
        ++line;
        i = eol + 1;
        if (!continued) break;
      }
      at_line_start = true;
      line_has_code = false;
      continue;
    }
    at_line_start = false;
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      std::size_t eol = text.find('\n', i);
      if (eol == std::string::npos) eol = n;
      scan_comment(text.substr(i, eol - i), line, line_has_code, out);
      i = eol;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      std::size_t close = text.find("*/", i + 2);
      if (close == std::string::npos) close = n;
      for (std::size_t k = i; k < close && k < n; ++k) {
        if (text[k] == '\n') ++line;
      }
      i = (close == n) ? n : close + 2;
      continue;
    }
    line_has_code = true;
    if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
      // Raw string literal R"delim(...)delim". The token is stamped with
      // the line the literal *starts* on.
      std::size_t open = text.find('(', i + 2);
      if (open == std::string::npos) { ++i; continue; }
      const std::string delim = text.substr(i + 2, open - (i + 2));
      const std::string closer = ")" + delim + "\"";
      std::size_t close = text.find(closer, open + 1);
      if (close == std::string::npos) close = n;
      out.tokens.push_back({TokKind::kString, "", line});
      for (std::size_t k = i; k < close && k < n; ++k) {
        if (text[k] == '\n') ++line;
      }
      i = (close == n) ? n : close + closer.size();
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      while (j < n && text[j] != quote) {
        if (text[j] == '\\') ++j;
        ++j;
      }
      out.tokens.push_back(
          {quote == '"' ? TokKind::kString : TokKind::kChar, "", line});
      i = (j < n) ? j + 1 : n;
      continue;
    }
    if (is_ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && is_ident_char(text[j])) ++j;
      out.tokens.push_back({TokKind::kIdent, text.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i + 1;
      while (j < n && (is_ident_char(text[j]) || text[j] == '.' ||
                       // Digit separator: 1'000'000. The quote is part of
                       // the number only when a digit/ident char follows,
                       // so `1'x'` still lexes as number + char literal.
                       (text[j] == '\'' && j + 1 < n && is_ident_char(text[j + 1])) ||
                       ((text[j] == '+' || text[j] == '-') && j > 0 &&
                        (text[j - 1] == 'e' || text[j - 1] == 'E')))) {
        ++j;
      }
      out.tokens.push_back({TokKind::kNumber, text.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Punctuation. `::` and `->` are fused: qualified names and member
    // dereferences are pattern-matched constantly by the scanner.
    if (c == ':' && i + 1 < n && text[i + 1] == ':') {
      out.tokens.push_back({TokKind::kPunct, "::", line});
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && text[i + 1] == '>') {
      out.tokens.push_back({TokKind::kPunct, "->", line});
      i += 2;
      continue;
    }
    out.tokens.push_back({TokKind::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

}  // namespace remos::analyze
