#include <set>
#include <vector>

#include "passes.hpp"

namespace remos::analyze {
namespace {

// Files whose functions emit externally visible, order-sensitive output:
// the wire protocols, XML rendering, and the observability exporters.
// Anything a loop body reaches here turns iteration order into output.
const std::set<std::string>& sink_files() {
  static const std::set<std::string> kSinks{
      "src/core/protocol_ascii.cpp", "src/core/protocol_xml.cpp",
      "src/core/xml.cpp",            "src/core/xml.hpp",
      "src/core/obs.cpp",            "src/core/obs.hpp",
      "src/core/render.cpp",         "src/core/render.hpp"};
  return kSinks;
}

}  // namespace

Findings pass_determinism(const Project& proj, const CallGraph& cg) {
  Findings out;

  // reaches_sink[i]: function i is defined in a sink file, or some
  // resolvable callee (transitively) is. Fixpoint, same shape as the
  // lock pass's transitive acquire sets.
  std::vector<char> reaches(proj.functions.size(), 0);
  for (std::size_t i = 0; i < proj.functions.size(); ++i)
    if (sink_files().count(proj.functions[i].file)) reaches[i] = 1;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < proj.functions.size(); ++i) {
      if (reaches[i]) continue;
      for (std::size_t k : cg.edges[i]) {
        if (reaches[k]) {
          reaches[i] = 1;
          changed = true;
          break;
        }
      }
    }
  }

  for (std::size_t i = 0; i < proj.functions.size(); ++i) {
    const FunctionInfo& fn = proj.functions[i];
    const bool fn_in_sink = sink_files().count(fn.file) != 0;
    for (const LoopInfo& loop : fn.loops) {
      if (!loop.unordered) continue;
      bool leaks = fn_in_sink;
      if (!leaks) {
        for (const CallSite& c : fn.calls) {
          if (c.token_index < loop.body_begin || c.token_index >= loop.body_end)
            continue;
          for (std::size_t k : resolve_call(proj, fn, c)) {
            if (reaches[k]) {
              leaks = true;
              break;
            }
          }
          if (leaks) break;
        }
      }
      if (leaks) {
        out.push_back(
            {"determinism", "unordered-export", fn.file, loop.line,
             "iteration over unordered container `" + loop.range_name +
                 "` reaches an export sink — iteration order leaks into "
                 "output; use an ordered container or sort before emitting"});
      }
    }
  }

  return out;
}

}  // namespace remos::analyze
