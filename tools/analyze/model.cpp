#include "model.hpp"

#include <algorithm>
#include <array>

namespace remos::analyze {
namespace {

bool is_kw(const std::string& s) {
  static const std::set<std::string> kKeywords{
      "if", "else", "for", "while", "do", "switch", "case", "return", "sizeof",
      "alignof", "catch", "try", "throw", "new", "delete", "static_cast",
      "dynamic_cast", "const_cast", "reinterpret_cast", "assert", "co_await",
      "co_return", "default", "break", "continue", "goto", "noexcept",
      "decltype", "typeid", "alignas", "static_assert"};
  return kKeywords.count(s) > 0;
}

const std::set<std::string> kLockTakers{"lock_guard", "scoped_lock", "unique_lock",
                                        "shared_lock"};
const std::set<std::string> kAuditMacros{"REMOS_CHECK", "REMOS_AUDIT", "REMOS_AUDIT_SEV"};
const std::set<std::string> kUnorderedNames{"unordered_map", "unordered_set",
                                            "unordered_multimap", "unordered_multiset"};

bool type_is_mutex(const std::string& compact) {
  return compact.find("std::mutex") != std::string::npos ||
         compact.find("std::shared_mutex") != std::string::npos ||
         compact.find("std::recursive_mutex") != std::string::npos ||
         compact.find("std::shared_timed_mutex") != std::string::npos ||
         compact.find("std::timed_mutex") != std::string::npos;
}

bool type_is_unordered(const std::string& compact) {
  return compact.find("std::unordered_") != std::string::npos;
}

bool type_is_exempt(const std::vector<std::string>& type_tokens) {
  for (const auto& t : type_tokens) {
    if (t == "atomic" || t == "condition_variable" || t == "condition_variable_any" ||
        t == "thread" || t == "jthread" || t == "future" || t == "promise" ||
        t == "constexpr" || t == "static") {
      return true;
    }
  }
  return false;
}

std::string join_compact(const std::vector<Token>& t, std::size_t b, std::size_t e) {
  std::string out;
  for (std::size_t k = b; k < e && k < t.size(); ++k) out += t[k].text.empty() ? "\"\"" : t[k].text;
  return out;
}

/// Find the matching close for the open bracket at `i` (t[i] must be the
/// open). Returns the index of the close, or `end` if unbalanced.
std::size_t match_forward(const std::vector<Token>& t, std::size_t i, std::size_t end,
                          const char* open, const char* close) {
  int d = 0;
  for (std::size_t k = i; k < end; ++k) {
    if (t[k].kind != TokKind::kPunct) continue;
    if (t[k].text == open) ++d;
    else if (t[k].text == close && --d == 0) return k;
  }
  return end;
}

struct Ctx {
  enum Kind { kNamespace, kClass } kind;
  std::string name;
  int entry_depth = 0;  // depth *outside* the block
  bool anon = false;
  bool public_access = false;  // current access inside a class
};

// ---------------------------------------------------------------------------
// Phase A: structure
// ---------------------------------------------------------------------------

class StructureScanner {
 public:
  StructureScanner(SourceFile& sf, Project& proj) : sf_(sf), t_(sf.toks.tokens), proj_(proj) {}

  void run() {
    while (i_ < t_.size()) scan_element();
  }

 private:
  SourceFile& sf_;
  const std::vector<Token>& t_;
  Project& proj_;
  std::size_t i_ = 0;
  int depth_ = 0;
  std::vector<Ctx> ctx_;

  bool in_anon() const {
    for (const auto& c : ctx_)
      if (c.anon) return true;
    return false;
  }
  std::string current_class() const {
    for (auto it = ctx_.rbegin(); it != ctx_.rend(); ++it)
      if (it->kind == Ctx::kClass) return it->name;
    return "";
  }
  Ctx* class_ctx() {
    for (auto it = ctx_.rbegin(); it != ctx_.rend(); ++it)
      if (it->kind == Ctx::kClass) return &*it;
    return nullptr;
  }

  bool punct(std::size_t k, const char* p) const {
    return k < t_.size() && t_[k].kind == TokKind::kPunct && t_[k].text == p;
  }
  bool ident(std::size_t k, const char* s) const {
    return k < t_.size() && t_[k].kind == TokKind::kIdent && t_[k].text == s;
  }

  int lock_order_for_line(int line) const {
    // Same-line annotation wins; only then fall back to the line above
    // (consecutive declarations each carry their own trailing annotation).
    for (const auto& a : sf_.toks.lock_orders) {
      if (a.line == line) return a.order;
    }
    for (const auto& a : sf_.toks.lock_orders) {
      if (a.line + 1 == line) return a.order;
    }
    return -1;
  }

  std::string guarded_by_for_line(int line) const {
    for (const auto& a : sf_.toks.guarded_by) {
      if (a.line == line) return a.mutex;
    }
    for (const auto& a : sf_.toks.guarded_by) {
      if (a.line + 1 == line) return a.mutex;
    }
    return "";
  }

  /// Structural marker (`remos-hot`, `remos-published`, `remos-hot-leaf`)
  /// binding to a declaration on `line`: same-line marker wins, else the
  /// comment line above. Marks the annotation attached so the hot-path
  /// pass can flag markers that bound to nothing.
  bool marker_for_line(const char* name, int line) const {
    for (const auto& ma : sf_.toks.markers) {
      if (ma.name == name && (ma.line == line || ma.line + 1 == line)) {
        ma.attached = true;
        return true;
      }
    }
    return false;
  }

  std::vector<std::string> requires_for_line(int line) const {
    std::vector<std::string> out;
    for (const auto& a : sf_.toks.requires_held) {
      if (a.line == line) out.push_back(a.mutex);
    }
    if (out.empty()) {
      for (const auto& a : sf_.toks.requires_held) {
        if (a.line + 1 == line) out.push_back(a.mutex);
      }
    }
    return out;
  }

  void scan_element() {
    if (i_ >= t_.size()) return;
    const Token& tok = t_[i_];
    if (tok.kind == TokKind::kPunct) {
      if (tok.text == "{") { ++depth_; ++i_; return; }
      if (tok.text == "}") {
        --depth_;
        while (!ctx_.empty() && ctx_.back().entry_depth == depth_) ctx_.pop_back();
        ++i_;
        return;
      }
      if (tok.text == ";") { ++i_; return; }
      ++i_;
      return;
    }
    if (tok.kind != TokKind::kIdent) { ++i_; return; }

    const std::string& s = tok.text;
    if (s == "namespace") { scan_namespace(); return; }
    if (s == "class" || s == "struct" || s == "union") { scan_class(s == "struct" || s == "union"); return; }
    if (s == "enum") { skip_enum(); return; }
    if ((s == "public" || s == "private" || s == "protected") && punct(i_ + 1, ":")) {
      if (Ctx* c = class_ctx()) c->public_access = (s == "public");
      i_ += 2;
      return;
    }
    if (s == "template") {
      ++i_;
      if (punct(i_, "<")) skip_angles();
      return;  // the declaration that follows is scanned as its own element
    }
    if (s == "using") {
      scan_using();
      return;
    }
    if (s == "typedef" || s == "friend" || s == "static_assert" || s == "extern") {
      skip_statement();
      return;
    }
    scan_declaration();
  }

  void scan_namespace() {
    ++i_;  // 'namespace'
    std::string name;
    bool anon = true;
    while (i_ < t_.size() && (t_[i_].kind == TokKind::kIdent || punct(i_, "::"))) {
      name += t_[i_].text;
      anon = false;
      ++i_;
    }
    if (punct(i_, "=")) { skip_statement(); return; }  // namespace alias
    if (punct(i_, "{")) {
      ctx_.push_back({Ctx::kNamespace, name, depth_, anon, false});
      ++depth_;
      ++i_;
    }
  }

  void scan_class(bool is_struct) {
    ++i_;  // 'class' / 'struct'
    // Skip attributes [[...]].
    while (punct(i_, "[")) i_ = match_forward(t_, i_, t_.size(), "[", "]") + 1;
    if (i_ >= t_.size() || t_[i_].kind != TokKind::kIdent) { skip_statement(); return; }
    const std::string name = t_[i_].text;
    const int line = t_[i_].line;
    ++i_;
    // Find '{' (definition) or ';' (forward declaration / member of
    // elaborated type) at top level.
    int angle = 0;
    while (i_ < t_.size()) {
      const Token& tk = t_[i_];
      if (tk.kind == TokKind::kPunct) {
        if (tk.text == "<") ++angle;
        else if (tk.text == ">" && angle > 0) --angle;
        else if (angle == 0 && tk.text == ";") { ++i_; return; }
        else if (angle == 0 && tk.text == "{") {
          ctx_.push_back({Ctx::kClass, name, depth_, false, is_struct});
          auto& ci = proj_.classes[name];
          if (ci.name.empty()) {
            ci.name = name;
            ci.file = sf_.rel_path;
            ci.line = line;
          }
          if (marker_for_line("published", line)) ci.is_published = true;
          ++depth_;
          ++i_;
          return;
        }
      }
      ++i_;
    }
  }

  /// `using Name = <type>;` — record the alias so passes can expand it
  /// (e.g. QuerySnapshotPtr); `using namespace` / using-declarations are
  /// skipped like before.
  void scan_using() {
    ++i_;  // 'using'
    if (i_ < t_.size() && t_[i_].kind == TokKind::kIdent && punct(i_ + 1, "=")) {
      const std::string name = t_[i_].text;
      const std::size_t rhs = i_ + 2;
      std::size_t k = rhs;
      int angle = 0;
      while (k < t_.size()) {
        if (punct(k, "<")) ++angle;
        else if (punct(k, ">") && angle > 0) --angle;
        else if (angle == 0 && punct(k, ";")) break;
        ++k;
      }
      proj_.type_aliases.emplace(name, join_compact(t_, rhs, k));
      i_ = std::min(k + 1, t_.size());
      return;
    }
    skip_statement();
  }

  void skip_enum() {
    // enum [class] [name] [: type] { ... } ;  — contributes nothing.
    while (i_ < t_.size() && !punct(i_, "{") && !punct(i_, ";")) ++i_;
    if (punct(i_, "{")) i_ = match_forward(t_, i_, t_.size(), "{", "}") + 1;
    if (punct(i_, ";")) ++i_;
  }

  void skip_angles() {
    int d = 0;
    while (i_ < t_.size()) {
      if (punct(i_, "<")) ++d;
      else if (punct(i_, ">") && --d == 0) { ++i_; return; }
      ++i_;
    }
  }

  void skip_statement() {
    int brace = 0, paren = 0;
    while (i_ < t_.size()) {
      if (punct(i_, "{")) ++brace;
      else if (punct(i_, "}")) --brace;
      else if (punct(i_, "(")) ++paren;
      else if (punct(i_, ")")) --paren;
      else if (punct(i_, ";") && brace == 0 && paren == 0) { ++i_; return; }
      ++i_;
    }
  }

  /// One declaration at class/namespace scope: either a function
  /// (declaration or definition with body) or a variable.
  void scan_declaration() {
    const std::size_t start = i_;
    int angle = 0;
    std::size_t name_idx = t_.size();
    bool is_function = false, saw_operator = false, params_closed = false;
    bool saw_eq = false;  // past a top-level '=': the rest is an initializer
    std::size_t params_end = t_.size();
    std::size_t init_brace = t_.size();  // top-level '{' used as initializer
    bool terminated_by_body = false;
    std::size_t body_open = t_.size();

    while (i_ < t_.size()) {
      const Token& tk = t_[i_];
      if (tk.kind == TokKind::kIdent && tk.text == "operator" && !is_function) {
        saw_operator = true;
        name_idx = i_;
        ++i_;
        // The name may itself be punctuation (<<, ==, ()) — consume it.
        if (punct(i_, "(") && punct(i_ + 1, ")")) { i_ += 2; }
        else {
          while (i_ < t_.size() && t_[i_].kind == TokKind::kPunct && !punct(i_, "(")) ++i_;
        }
        // Next '(' is the parameter list.
        if (punct(i_, "(")) {
          is_function = true;
          i_ = match_forward(t_, i_, t_.size(), "(", ")");
          params_end = i_;
          params_closed = true;
          ++i_;
        }
        continue;
      }
      if (tk.kind == TokKind::kPunct) {
        if (tk.text == "<" && i_ > start &&
            (t_[i_ - 1].kind == TokKind::kIdent || t_[i_ - 1].text == "::")) {
          ++angle;
          ++i_;
          continue;
        }
        if (tk.text == ">" && angle > 0) { --angle; ++i_; continue; }
        if (angle == 0) {
          if (tk.text == "=" && !is_function) saw_eq = true;
          // A call in the initializer (`= std::numeric_limits<T>::max()`)
          // must not turn the declaration into a "function".
          if (tk.text == "(" && !is_function && !saw_eq && i_ > start &&
              t_[i_ - 1].kind == TokKind::kIdent && !is_kw(t_[i_ - 1].text)) {
            is_function = true;
            name_idx = i_ - 1;
            i_ = match_forward(t_, i_, t_.size(), "(", ")");
            params_end = i_;
            params_closed = true;
            ++i_;
            continue;
          }
          if (tk.text == "(") {  // parenthesized initializer or macro-ish
            i_ = match_forward(t_, i_, t_.size(), "(", ")") + 1;
            continue;
          }
          if (tk.text == ";") { ++i_; break; }
          if (tk.text == "{") {
            if (is_function && params_closed) {
              terminated_by_body = true;
              body_open = i_;
              i_ = match_forward(t_, i_, t_.size(), "{", "}") + 1;
              break;
            }
            // Brace initializer: int x{3}; or Type y{...};
            if (init_brace == t_.size()) init_brace = i_;
            i_ = match_forward(t_, i_, t_.size(), "{", "}") + 1;
            continue;
          }
        }
      }
      ++i_;
    }

    const std::size_t stop = std::min(i_, t_.size());
    if (stop <= start) { i_ = std::max(i_, start + 1); return; }

    if (is_function) {
      record_function(start, name_idx, params_end, saw_operator, terminated_by_body, body_open);
      return;
    }
    record_variable(start, stop, init_brace);
  }

  void record_function(std::size_t start, std::size_t name_idx, std::size_t params_end,
                       bool saw_operator, bool has_body, std::size_t body_open) {
    if (name_idx >= t_.size()) return;
    FunctionInfo fn;
    fn.file = sf_.rel_path;
    fn.name = t_[name_idx].text;
    fn.line = t_[name_idx].line;
    fn.is_operator = saw_operator;
    // Destructor?
    std::size_t qual_base = name_idx;  // token left of the (possibly ~'d) name
    if (name_idx > start && punct(name_idx - 1, "~")) {
      fn.name = "~" + fn.name;
      fn.is_ctor_dtor = true;
      qual_base = name_idx - 1;
    }
    // Qualifier: Class::name / Class::~Class at namespace scope.
    std::size_t type_end = name_idx;
    if (qual_base >= 2 && qual_base > start && punct(qual_base - 1, "::") &&
        t_[qual_base - 2].kind == TokKind::kIdent) {
      fn.cls = t_[qual_base - 2].text;
      type_end = qual_base - 2;
    } else {
      fn.cls = current_class();
      if (Ctx* cc = class_ctx()) {
        fn.is_public = cc->public_access;
        fn.access_known = true;
      }
    }
    if (!fn.cls.empty()) fn.is_method = true;
    if (!fn.cls.empty() && (fn.name == fn.cls || fn.name == "~" + fn.cls)) fn.is_ctor_dtor = true;
    // Specifiers before the name.
    std::vector<std::string> type_tokens;
    for (std::size_t k = start; k < type_end && k < t_.size(); ++k) {
      const std::string& s = t_[k].text;
      if (s == "static") fn.is_static = true;
      if (s == "virtual" || s == "inline" || s == "explicit" || s == "constexpr" ||
          s == "static" || s == "friend" || s == "[" || s == "]" || s == "nodiscard" ||
          s == "maybe_unused") {
        continue;
      }
      type_tokens.push_back(s);
    }
    for (const auto& s : type_tokens) fn.return_type_text += s;
    // Trailing const between ')' and body/';'.
    const std::size_t trail_end = has_body ? body_open : i_;
    for (std::size_t k = params_end; k < trail_end && k < t_.size(); ++k) {
      if (t_[k].kind == TokKind::kIdent && t_[k].text == "const") fn.is_const = true;
    }
    fn.file_local = in_anon() || (fn.cls.empty() && fn.is_static);
    fn.requires_annot = requires_for_line(fn.line);
    fn.is_hot = marker_for_line("hot", fn.line);
    if (has_body) {
      fn.has_body = true;
      const std::size_t body_close = match_forward(t_, body_open, t_.size(), "{", "}");
      fn.body_tokens = body_close - body_open;
      fn.body_begin = body_open + 1;
      fn.body_end = body_close;
    }
    proj_.functions.push_back(std::move(fn));
  }

  void record_variable(std::size_t start, std::size_t stop, std::size_t init_brace) {
    // Name: last identifier before '=', before the brace initializer, or
    // before the terminating ';'.
    std::size_t limit = stop;
    for (std::size_t k = start; k < stop; ++k) {
      if (punct(k, "=")) { limit = k; break; }
      if (k == init_brace) { limit = k; break; }
    }
    std::size_t name_idx = t_.size();
    for (std::size_t k = limit; k > start;) {
      --k;
      if (t_[k].kind == TokKind::kIdent && !is_kw(t_[k].text)) { name_idx = k; break; }
    }
    if (name_idx == t_.size()) return;
    VarDecl v;
    v.name = t_[name_idx].text;
    v.file = sf_.rel_path;
    v.line = t_[name_idx].line;
    std::vector<std::string> type_tokens;
    for (std::size_t k = start; k < name_idx; ++k) type_tokens.push_back(t_[k].text);
    v.type_text = join_compact(t_, start, name_idx);
    v.is_mutex = type_is_mutex(v.type_text);
    v.is_unordered = type_is_unordered(v.type_text);
    v.exempt = type_is_exempt(type_tokens);
    for (const auto& s : type_tokens) {
      if (s == "atomic") v.is_atomic = true;
      if (s == "condition_variable" || s == "condition_variable_any") v.is_cv = true;
      if (s == "thread" || s == "jthread" || s == "future" || s == "promise") {
        v.is_thread_handle = true;
      }
      if (s == "const" || s == "constexpr") v.is_const = true;
      if (s == "static") v.is_static = true;
      if (s == "&") v.is_ref = true;
    }
    v.guard_annot = guarded_by_for_line(v.line);
    const std::string cls = current_class();
    if (v.is_mutex) {
      MutexDecl m;
      m.cls = cls;
      m.name = v.name;
      m.file = sf_.rel_path;
      m.line = v.line;
      m.order = lock_order_for_line(v.line);
      m.recursive = v.type_text.find("recursive") != std::string::npos;
      m.shared = v.type_text.find("shared_mutex") != std::string::npos;
      m.hot_leaf = marker_for_line("hot-leaf", v.line);
      m.id = (cls.empty() ? sf_.rel_path : cls) + "::" + v.name;
      proj_.mutexes.emplace(m.id, m);
    }
    if (!cls.empty()) {
      proj_.classes[cls].members.push_back(v);
    } else {
      proj_.namespace_vars[sf_.rel_path].push_back(v);
    }
  }
};

}  // namespace

namespace {

// ---------------------------------------------------------------------------
// Phase B: bodies
// ---------------------------------------------------------------------------

class BodyScanner {
 public:
  BodyScanner(const SourceFile& sf, Project& proj, FunctionInfo& fn)
      : sf_(sf), t_(sf.toks.tokens), proj_(proj), fn_(fn) {}

  void run() {
    const auto* cls = fn_.cls.empty() ? nullptr : find_class(fn_.cls);
    if (cls) {
      for (const auto& [member, guard] : cls->guarded_by) guarded_[member] = guard;
      for (const auto& m : cls->members) {
        if (m.is_unordered) unordered_.insert(m.name);
      }
      explicit_ = cls->explicit_guard_names;
    }
    auto nsg = proj_.ns_guarded_by.find(sf_.rel_path);
    if (nsg != proj_.ns_guarded_by.end()) {
      for (const auto& [var, guard] : nsg->second) guarded_[var] = guard;
    }
    auto nse = proj_.ns_explicit_guard_names.find(sf_.rel_path);
    if (nse != proj_.ns_explicit_guard_names.end()) {
      for (const auto& v : nse->second) explicit_.insert(v);
    }
    auto nsv = proj_.namespace_vars.find(sf_.rel_path);
    if (nsv != proj_.namespace_vars.end()) {
      for (const auto& v : nsv->second) {
        if (v.is_unordered) unordered_.insert(v.name);
      }
    }
    // remos-requires(m): the body runs as if the caller's lock were held.
    // Depth -1 keeps the seed below every scope pop.
    for (const auto& id : fn_.requires_ids) held_.push_back({id, -1});
    scan(fn_.body_begin, fn_.body_end);
  }

 private:
  const SourceFile& sf_;
  const std::vector<Token>& t_;
  Project& proj_;
  FunctionInfo& fn_;
  std::map<std::string, std::string> guarded_;  // name -> mutex id
  std::set<std::string> explicit_;              // names guarded by annotation
  std::set<std::string> unordered_;             // names declared unordered
  int depth_ = 0;
  struct Held { std::string id; int depth; };
  std::vector<Held> held_;

  bool punct(std::size_t k, const char* p) const {
    return k < t_.size() && t_[k].kind == TokKind::kPunct && t_[k].text == p;
  }

  std::vector<std::string> held_ids() const {
    std::vector<std::string> out;
    out.reserve(held_.size());
    for (const auto& h : held_) out.push_back(h.id);
    return out;
  }

  const ClassInfo* find_class(const std::string& name) const {
    auto it = proj_.classes.find(name);
    return it == proj_.classes.end() ? nullptr : &it->second;
  }

  /// Resolve a bare identifier used as a mutex operand.
  std::string resolve_mutex(const std::string& name) const {
    if (!fn_.cls.empty()) {
      auto it = proj_.mutexes.find(fn_.cls + "::" + name);
      if (it != proj_.mutexes.end()) return it->first;
    }
    auto it = proj_.mutexes.find(sf_.rel_path + "::" + name);
    if (it != proj_.mutexes.end()) return it->first;
    return "";
  }

  /// True when the identifier at k names an unordered container: a local,
  /// a member of the enclosing class, a namespace var, a member access
  /// x.name where any known class declares `name` unordered, or a call to
  /// a project function whose return type is unordered.
  bool names_unordered(std::size_t k) const {
    const std::string& name = t_[k].text;
    if (punct(k + 1, "(")) {  // call in range expression
      auto it = proj_.by_name.find(name);
      if (it != proj_.by_name.end()) {
        for (std::size_t fi : it->second) {
          if (type_is_unordered(proj_.functions[fi].return_type_text)) return true;
        }
      }
      return false;
    }
    if (unordered_.count(name)) return true;
    if (k > fn_.body_begin && (punct(k - 1, ".") || punct(k - 1, "->"))) {
      for (const auto& [cname, ci] : proj_.classes) {
        (void)cname;
        for (const auto& m : ci.members) {
          if (m.name == name && m.is_unordered) return true;
        }
      }
    }
    return false;
  }

  void scan(std::size_t begin, std::size_t end) {
    for (std::size_t j = begin; j < end && j < t_.size();) {
      const Token& tk = t_[j];
      if (tk.kind == TokKind::kPunct) {
        if (tk.text == "{") { ++depth_; ++j; continue; }
        if (tk.text == "}") {
          --depth_;
          while (!held_.empty() && held_.back().depth > depth_) held_.pop_back();
          ++j;
          continue;
        }
        ++j;
        continue;
      }
      if (tk.kind != TokKind::kIdent) { ++j; continue; }
      const std::string& s = tk.text;

      if (kAuditMacros.count(s)) { fn_.has_audit = true; ++j; continue; }

      if (kLockTakers.count(s)) {
        j = scan_lock_taker(j, end);
        continue;
      }

      if (kUnorderedNames.count(s)) {
        j = scan_local_unordered(j, end);
        continue;
      }

      if (s == "for" && punct(j + 1, "(")) {
        scan_for_header(j, end);  // records loop span; tokens re-walked
        ++j;
        continue;
      }

      // Guarded-name access?
      auto git = guarded_.find(s);
      if (git != guarded_.end()) {
        const bool receiver = j > begin && (punct(j - 1, ".") || punct(j - 1, "->"));
        const bool via_this =
            receiver && j >= 2 && t_[j - 2].kind == TokKind::kIdent && t_[j - 2].text == "this";
        const bool qualified = j > begin && punct(j - 1, "::");
        if ((!receiver || via_this) && !qualified) {
          fn_.guarded_accesses.push_back(
              {s, git->second, tk.line, held_ids(), explicit_.count(s) > 0});
        }
      }

      // Call?
      if (punct(j + 1, "(") && !is_kw(s)) {
        CallSite c;
        c.name = s;
        c.line = tk.line;
        c.token_index = j;
        c.held = held_ids();
        if (j > begin && punct(j - 1, "::") && j >= 2 && t_[j - 2].kind == TokKind::kIdent) {
          c.qualifier = t_[j - 2].text;
        }
        if (j > begin && (punct(j - 1, ".") || punct(j - 1, "->"))) {
          const bool via_this =
              j >= 2 && t_[j - 2].kind == TokKind::kIdent && t_[j - 2].text == "this";
          c.method_call = !via_this;
        }
        fn_.calls.push_back(std::move(c));
      }
      ++j;
    }
  }

  /// std::lock_guard [<...>] name(args...) — record acquisition(s), skip
  /// past the argument list so `lock(mu_)` is not re-scanned as a call.
  std::size_t scan_lock_taker(std::size_t j, std::size_t end) {
    const int line = t_[j].line;
    std::size_t k = j + 1;
    if (punct(k, "<")) {  // explicit template arguments
      int d = 0;
      while (k < end) {
        if (punct(k, "<")) ++d;
        else if (punct(k, ">") && --d == 0) { ++k; break; }
        ++k;
      }
    }
    std::string raii_var;
    if (k < end && t_[k].kind == TokKind::kIdent) {  // RAII variable name
      raii_var = t_[k].text;
      ++k;
    }
    if (!punct(k, "(")) return j + 1;  // e.g. a using-declaration mention
    const std::size_t close = match_forward(t_, k, end, "(", ")");
    for (std::size_t a = k + 1; a < close; ++a) {
      if (t_[a].kind != TokKind::kIdent) continue;
      if (a > 0 && (punct(a - 1, ".") || punct(a - 1, "->"))) continue;  // other.mu_
      const std::string id = resolve_mutex(t_[a].text);
      if (!id.empty()) {
        fn_.acquires.push_back({id, line, held_ids(), raii_var});
        held_.push_back({id, depth_});
      }
    }
    return close + 1;
  }

  /// std::unordered_map<...> name ...  — register a local unordered name.
  std::size_t scan_local_unordered(std::size_t j, std::size_t end) {
    std::size_t k = j + 1;
    if (punct(k, "<")) {
      int d = 0;
      while (k < end) {
        if (punct(k, "<")) ++d;
        else if (punct(k, ">") && --d == 0) { ++k; break; }
        ++k;
      }
    }
    while (k < end && (punct(k, "&") || punct(k, "*") || (t_[k].kind == TokKind::kIdent &&
                                                          t_[k].text == "const"))) {
      ++k;
    }
    if (k < end && t_[k].kind == TokKind::kIdent) unordered_.insert(t_[k].text);
    return j + 1;  // re-walk naturally; registration is what mattered
  }

  /// Range-for detection; records a LoopInfo with the body token span.
  void scan_for_header(std::size_t j, std::size_t end) {
    const std::size_t open = j + 1;
    const std::size_t close = match_forward(t_, open, end, "(", ")");
    if (close >= end) return;
    // Top-level ':' (tokenizer fuses '::', so a lone ':' is the range
    // separator) and no top-level ';' (classic for).
    std::size_t colon = end;
    int paren = 0, brace = 0;
    for (std::size_t k = open + 1; k < close; ++k) {
      if (punct(k, "(")) ++paren;
      else if (punct(k, ")")) --paren;
      else if (punct(k, "{")) ++brace;
      else if (punct(k, "}")) --brace;
      else if (paren == 0 && brace == 0) {
        if (punct(k, ";")) return;  // classic for
        if (punct(k, ":") && colon == end) colon = k;
      }
    }
    if (colon == end) return;

    LoopInfo loop;
    loop.line = t_[j].line;
    for (std::size_t k = colon + 1; k < close; ++k) {
      if (t_[k].kind != TokKind::kIdent || is_kw(t_[k].text)) continue;
      if (names_unordered(k)) {
        loop.unordered = true;
        loop.range_name = t_[k].text;
        break;
      }
    }
    std::size_t body_begin = close + 1, body_end = body_begin;
    if (punct(body_begin, "{")) {
      body_end = match_forward(t_, body_begin, end, "{", "}");
      ++body_begin;
    } else {
      while (body_end < end && !punct(body_end, ";")) ++body_end;
    }
    loop.body_begin = body_begin;
    loop.body_end = body_end;
    fn_.loops.push_back(std::move(loop));
  }
};

/// Resolve a remos-guarded-by / remos-requires mutex name written in an
/// annotation: a full "Scope::name" id, a same-class member, or a
/// namespace-scope mutex in the same file. "" when nothing matches.
std::string resolve_annot_mutex(const Project& proj, const std::string& name,
                                const std::string& cls, const std::string& file) {
  if (name.find("::") != std::string::npos && proj.mutexes.count(name)) return name;
  if (!cls.empty() && proj.mutexes.count(cls + "::" + name)) return cls + "::" + name;
  if (proj.mutexes.count(file + "::" + name)) return file + "::" + name;
  return "";
}

void compute_guarded(Project& proj) {
  for (auto& [name, ci] : proj.classes) {
    (void)name;
    std::string guard;
    for (auto& m : ci.members) {
      if (m.is_mutex) {
        guard = (ci.name.empty() ? m.file : ci.name) + "::" + m.name;
        continue;
      }
      if (!m.guard_annot.empty()) {
        // Explicit annotation: wins over position, applies even to exempt
        // types (harmless), enforced by the concurrency pass.
        m.guard_id = resolve_annot_mutex(proj, m.guard_annot, ci.name, m.file);
        m.guard_explicit = true;
        if (!m.guard_id.empty()) {
          ci.guarded_by[m.name] = m.guard_id;
          ci.explicit_guard_names.insert(m.name);
        }
        continue;
      }
      if (m.exempt || guard.empty()) continue;
      m.guard_id = guard;
      ci.guarded_by[m.name] = guard;
    }
  }
  for (auto& [file, vars] : proj.namespace_vars) {
    std::string guard;
    for (auto& v : vars) {
      if (v.is_mutex) {
        guard = file + "::" + v.name;
        continue;
      }
      if (!v.guard_annot.empty()) {
        v.guard_id = resolve_annot_mutex(proj, v.guard_annot, "", file);
        v.guard_explicit = true;
        if (!v.guard_id.empty()) {
          proj.ns_guarded_by[file][v.name] = v.guard_id;
          proj.ns_explicit_guard_names[file].insert(v.name);
        }
        continue;
      }
      if (v.exempt || guard.empty()) continue;
      v.guard_id = guard;
      proj.ns_guarded_by[file][v.name] = guard;
    }
  }
}

void resolve_requires(Project& proj) {
  for (auto& fn : proj.functions) {
    for (const auto& raw : fn.requires_annot) {
      const std::string id = resolve_annot_mutex(proj, raw, fn.cls, fn.file);
      if (id.empty()) {
        fn.requires_unresolved.push_back(raw);
      } else {
        fn.requires_ids.push_back(id);
      }
    }
  }
}

void fixup_method_qualifiers(Project& proj) {
  // A qualifier that names no known class was a namespace qualifier:
  // treat the function as free. Then resolve access for out-of-line
  // definitions from the in-class declaration of the same name.
  std::map<std::string, bool> declared_public;  // "Cls::name" -> any public decl
  for (const auto& fn : proj.functions) {
    if (fn.is_method && fn.access_known && proj.classes.count(fn.cls)) {
      auto key = fn.cls + "::" + fn.name;
      auto [it, fresh] = declared_public.try_emplace(key, fn.is_public);
      if (!fresh) it->second = it->second || fn.is_public;
    }
  }
  for (auto& fn : proj.functions) {
    if (fn.is_method && !proj.classes.count(fn.cls)) {
      fn.is_method = false;
      fn.cls.clear();
      continue;
    }
    if (fn.is_method && !fn.access_known) {
      auto it = declared_public.find(fn.cls + "::" + fn.name);
      fn.is_public = (it != declared_public.end()) ? it->second : false;
      fn.access_known = it != declared_public.end();
    }
  }
}

void propagate_hot(Project& proj) {
  // `// remos-hot` on either the in-class declaration or the out-of-line
  // definition marks both (and every overload — hot is a property of the
  // entry point's name, like remos-requires resolution).
  std::set<std::string> hot_keys;
  for (const auto& fn : proj.functions) {
    if (fn.is_hot) hot_keys.insert(fn.cls + "::" + fn.name);
  }
  for (auto& fn : proj.functions) {
    if (hot_keys.count(fn.cls + "::" + fn.name)) fn.is_hot = true;
  }
}

}  // namespace

Project build_project(std::vector<SourceFile> files) {
  Project proj;
  proj.files = std::move(files);
  for (auto& sf : proj.files) {
    StructureScanner(sf, proj).run();
  }
  compute_guarded(proj);
  fixup_method_qualifiers(proj);
  resolve_requires(proj);
  propagate_hot(proj);
  for (std::size_t k = 0; k < proj.functions.size(); ++k) {
    proj.by_name[proj.functions[k].name].push_back(k);
  }
  for (auto& fn : proj.functions) {
    if (!fn.has_body) continue;
    for (const auto& sf : proj.files) {
      if (sf.rel_path == fn.file) {
        BodyScanner(sf, proj, fn).run();
        break;
      }
    }
  }
  return proj;
}

}  // namespace remos::analyze
