// remos-analyze: concurrency pass.
//
// Answers, project-wide: *what state escapes to pool threads, and what
// protects it?* Three cooperating analyses:
//
//   1. Thread-escape. Every lambda handed to sim::ThreadPool (`submit`,
//      `parallel_for`, `parallel_ranges`), spawned as a std::thread /
//      std::jthread (including emplace onto a thread-typed member), passed
//      to a clock-publication channel (`bind_obs_clock`), or scheduled as
//      an event callback (`at` / `after` / `every` / `schedule` on an
//      Engine/EventQueue receiver) is resolved: if it captures `this` (or
//      by-reference), the member fields it can reach — directly or through
//      same-class bare calls, closed over the approximate call graph — are
//      marked as escaping with that kind.
//
//   2. Guarded-by inference + enforcement. Every member of a mutex-owning
//      class (and every namespace-scope variable in a file that owns a
//      namespace mutex), plus every member that escapes to pool/thread
//      context, must have a protection story: std::atomic, const/static,
//      a reference binding, a sync primitive or thread handle, a guarding
//      mutex (explicit // remos-guarded-by(<mutex>) annotation or the lock
//      pass's positional inference), or a justified allow(concurrency)
//      suppression. Explicitly annotated members have every access site
//      checked against the held-lock set (with // remos-requires(<mutex>)
//      seeding the set for caller-holds-the-lock helpers); call sites of
//      remos-requires functions must hold the named mutex.
//
//   3. Blocking-under-lock. A direct ThreadPool entry, a condition_variable
//      wait (other than on the lock it atomically releases), or a wait/get
//      on a future-typed member while any mutex is held — locally or
//      inherited from callers via an entry-held fixpoint — feeds pool
//      starvation deadlocks and is flagged at the entry site.
//
// Scheduled-callback escapes in classes that own no mutex are inventoried
// as "sim-thread-only" (the event loop is single-threaded) but not
// enforced. Like every pass here, approximation errs toward silence; the
// corpus fixtures pin the must-catch shapes.
#include <algorithm>
#include <map>
#include <set>

#include "passes.hpp"

namespace remos::analyze {
namespace {

// Blocking call-name sets (pool entry, cv wait, future wait) are shared
// with the hotpath pass — pass_common.cpp owns them.
const std::set<std::string> kScheduleNames{"at", "after", "every", "schedule"};
const std::set<std::string> kThreadCtorNames{"thread", "jthread"};
const std::set<std::string> kContainerAddNames{"emplace_back", "push_back"};
// Channels that publish a callable to other threads: the obs clock binding
// is invoked by any thread that stamps a metric or span.
const std::set<std::string> kPublishNames{"bind_obs_clock"};

bool punct_at(const std::vector<Token>& t, std::size_t k, const char* p) {
  return k < t.size() && t[k].kind == TokKind::kPunct && t[k].text == p;
}
bool ident_at(const std::vector<Token>& t, std::size_t k, const char* s) {
  return k < t.size() && t[k].kind == TokKind::kIdent && t[k].text == s;
}

std::size_t match_fwd(const std::vector<Token>& t, std::size_t i, std::size_t end,
                      const char* open, const char* close) {
  int d = 0;
  for (std::size_t k = i; k < end; ++k) {
    if (t[k].kind != TokKind::kPunct) continue;
    if (t[k].text == open) ++d;
    else if (t[k].text == close && --d == 0) return k;
  }
  return end;
}

struct LambdaSpan {
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
  bool captures_ctx = false;  // captures `this`, `&`, or `=` — enclosing
                              // object/locals reachable from the body
  bool valid = false;
};

/// Parse a lambda literal whose `[` sits at `lb`.
LambdaSpan parse_lambda(const std::vector<Token>& t, std::size_t lb, std::size_t end) {
  LambdaSpan out;
  if (!punct_at(t, lb, "[")) return out;
  const std::size_t cap_close = match_fwd(t, lb, end, "[", "]");
  if (cap_close >= end) return out;
  for (std::size_t k = lb + 1; k < cap_close; ++k) {
    if (ident_at(t, k, "this")) out.captures_ctx = true;
    if (t[k].kind == TokKind::kPunct && (t[k].text == "&" || t[k].text == "=")) {
      out.captures_ctx = true;
    }
  }
  std::size_t k = cap_close + 1;
  if (punct_at(t, k, "(")) k = match_fwd(t, k, end, "(", ")") + 1;
  while (k < end && !punct_at(t, k, "{")) {
    if (punct_at(t, k, ";") || punct_at(t, k, ")")) return out;  // not a lambda
    ++k;
  }
  if (k >= end) return out;
  const std::size_t close = match_fwd(t, k, end, "{", "}");
  if (close >= end) return out;
  out.body_begin = k + 1;
  out.body_end = close;
  out.valid = true;
  return out;
}

/// Collect bare / this-> identifier uses of `names` inside [begin, end).
void collect_name_uses(const std::vector<Token>& t, std::size_t begin, std::size_t end,
                       const std::set<std::string>& names, std::set<std::string>& out) {
  for (std::size_t j = begin; j < end && j < t.size(); ++j) {
    if (t[j].kind != TokKind::kIdent || !names.count(t[j].text)) continue;
    const bool receiver = j > 0 && (punct_at(t, j - 1, ".") || punct_at(t, j - 1, "->"));
    const bool via_this = receiver && j >= 2 && ident_at(t, j - 2, "this");
    const bool qualified = j > 0 && punct_at(t, j - 1, "::");
    if ((!receiver || via_this) && !qualified) out.insert(t[j].text);
  }
}

/// Per-function escape analysis state shared across the pass.
struct PassState {
  const Project& proj;
  std::map<std::string, const SourceFile*> file_by_path;
  // scope key: class name, or file path for namespace scope.
  // member -> escape kind -> first escape site "file:line".
  std::map<std::string, std::map<std::string, std::map<std::string, std::string>>> escapes;

  explicit PassState(const Project& p) : proj(p) {
    for (const auto& sf : p.files) file_by_path[sf.rel_path] = &sf;
  }
};

/// The scope (class or file) whose variables a function's lambdas can
/// reach, with the name set and the callee filter for the call closure.
struct Scope {
  std::string key;                 // class name or file path
  std::set<std::string> names;     // member / namespace-var names
  bool is_class = false;
};

Scope scope_for(const Project& proj, const FunctionInfo& fn) {
  Scope sc;
  if (!fn.cls.empty()) {
    sc.key = fn.cls;
    sc.is_class = true;
    auto it = proj.classes.find(fn.cls);
    if (it != proj.classes.end()) {
      for (const auto& m : it->second.members) sc.names.insert(m.name);
    }
    return sc;
  }
  sc.key = fn.file;
  auto nv = proj.namespace_vars.find(fn.file);
  if (nv != proj.namespace_vars.end()) {
    for (const auto& v : nv->second) sc.names.insert(v.name);
  }
  return sc;
}

/// Same-scope callees of the calls within [begin, end): bare / this-> calls
/// resolving to methods of the same class (or free functions of the same
/// file at namespace scope). Receiver-based calls on sibling objects are
/// deliberately not followed — their state belongs to the receiver.
std::vector<std::size_t> scope_callees(const Project& proj, const FunctionInfo& fn,
                                       const Scope& sc, std::size_t begin,
                                       std::size_t end) {
  std::vector<std::size_t> out;
  for (const CallSite& c : fn.calls) {
    if (c.token_index < begin || c.token_index >= end) continue;
    if (c.method_call) continue;
    for (std::size_t k : resolve_call(proj, fn, c)) {
      const FunctionInfo& callee = proj.functions[k];
      if (!callee.has_body) continue;
      if (sc.is_class ? (callee.cls == sc.key)
                      : (callee.cls.empty() && callee.file == sc.key)) {
        out.push_back(k);
      }
    }
  }
  return out;
}

/// Members of `sc` reachable from the lambda body: direct uses plus the
/// closure over same-scope calls.
std::set<std::string> reachable_members(PassState& st, const FunctionInfo& fn,
                                        const Scope& sc, const LambdaSpan& lam) {
  std::set<std::string> touched;
  const SourceFile* sf = st.file_by_path.at(fn.file);
  collect_name_uses(sf->toks.tokens, lam.body_begin, lam.body_end, sc.names, touched);

  std::set<std::size_t> visited;
  std::vector<std::size_t> work = scope_callees(st.proj, fn, sc, lam.body_begin, lam.body_end);
  while (!work.empty()) {
    const std::size_t k = work.back();
    work.pop_back();
    if (!visited.insert(k).second) continue;
    const FunctionInfo& callee = st.proj.functions[k];
    const SourceFile* csf = st.file_by_path.at(callee.file);
    collect_name_uses(csf->toks.tokens, callee.body_begin, callee.body_end, sc.names,
                      touched);
    for (std::size_t nk :
         scope_callees(st.proj, callee, sc, callee.body_begin, callee.body_end)) {
      work.push_back(nk);
    }
  }
  return touched;
}

/// Declared type of a bare receiver identifier: same-class member first,
/// then namespace-scope var of the same file. "" when unknown (locals).
std::string receiver_type(const Project& proj, const FunctionInfo& fn,
                          const std::string& name) {
  if (!fn.cls.empty()) {
    auto it = proj.classes.find(fn.cls);
    if (it != proj.classes.end()) {
      for (const auto& m : it->second.members) {
        if (m.name == name) return m.type_text;
      }
    }
  }
  auto nv = proj.namespace_vars.find(fn.file);
  if (nv != proj.namespace_vars.end()) {
    for (const auto& v : nv->second) {
      if (v.name == name) return v.type_text;
    }
  }
  return "";
}

const VarDecl* receiver_var(const Project& proj, const FunctionInfo& fn,
                            const std::string& name) {
  if (!fn.cls.empty()) {
    auto it = proj.classes.find(fn.cls);
    if (it != proj.classes.end()) {
      for (const auto& m : it->second.members) {
        if (m.name == name) return &m;
      }
    }
  }
  auto nv = proj.namespace_vars.find(fn.file);
  if (nv != proj.namespace_vars.end()) {
    for (const auto& v : nv->second) {
      if (v.name == name) return &v;
    }
  }
  return nullptr;
}

/// Receiver identifier of a method call (x.name / x->name), "" for bare.
std::string receiver_name(const std::vector<Token>& t, const CallSite& c) {
  const std::size_t j = c.token_index;
  if (j < 2) return "";
  if (!punct_at(t, j - 1, ".") && !punct_at(t, j - 1, "->")) return "";
  if (t[j - 2].kind != TokKind::kIdent) return "";
  return t[j - 2].text;
}

/// Escape kind of a call site, or "" when it hands nothing to another
/// execution context.
std::string escape_kind(const Project& proj, const FunctionInfo& fn,
                        const std::vector<Token>& toks, const CallSite& c) {
  if (pool_entry_names().count(c.name)) return "pool";
  if (kThreadCtorNames.count(c.name)) return "thread";
  if (kPublishNames.count(c.name)) return "thread";
  if (kContainerAddNames.count(c.name)) {
    const std::string recv = receiver_name(toks, c);
    if (!recv.empty()) {
      const std::string type = receiver_type(proj, fn, recv);
      if (type.find("std::thread") != std::string::npos ||
          type.find("std::jthread") != std::string::npos) {
        return "thread";
      }
    }
    return "";
  }
  if (kScheduleNames.count(c.name)) {
    const std::string recv = receiver_name(toks, c);
    if (!recv.empty()) {
      const std::string type = receiver_type(proj, fn, recv);
      if (type.find("Engine") != std::string::npos ||
          type.find("EventQueue") != std::string::npos) {
        return "scheduled";
      }
      return "";
    }
    if (!c.method_call) {
      for (std::size_t k : resolve_call(proj, fn, c)) {
        const std::string& cls = proj.functions[k].cls;
        if (cls.find("Engine") != std::string::npos ||
            cls.find("EventQueue") != std::string::npos) {
          return "scheduled";
        }
      }
    }
  }
  return "";
}

/// Local lambdas of a function body: `auto name = [...]...;` — so a later
/// `pool->submit(name)` resolves to the recorded literal.
std::map<std::string, LambdaSpan> local_lambdas(const std::vector<Token>& t,
                                                const FunctionInfo& fn) {
  std::map<std::string, LambdaSpan> out;
  for (std::size_t j = fn.body_begin; j + 3 < fn.body_end && j < t.size(); ++j) {
    if (!ident_at(t, j, "auto")) continue;
    if (j + 3 >= t.size() || t[j + 1].kind != TokKind::kIdent) continue;
    if (!punct_at(t, j + 2, "=") || !punct_at(t, j + 3, "[")) continue;
    const LambdaSpan lam = parse_lambda(t, j + 3, fn.body_end);
    if (lam.valid) out[t[j + 1].text] = lam;
  }
  return out;
}

/// Lambda arguments of the call at `c`: inline literals plus named local
/// lambdas recorded earlier in the body.
std::vector<LambdaSpan> lambda_args(const std::vector<Token>& t, const CallSite& c,
                                    std::size_t body_end,
                                    const std::map<std::string, LambdaSpan>& locals) {
  std::vector<LambdaSpan> out;
  const std::size_t open = c.token_index + 1;
  if (!punct_at(t, open, "(")) return out;
  const std::size_t close = match_fwd(t, open, body_end + 1, "(", ")");
  int depth = 0;
  bool arg_start = true;
  for (std::size_t k = open + 1; k < close; ++k) {
    if (t[k].kind == TokKind::kPunct) {
      const std::string& p = t[k].text;
      if (p == "(" || p == "{" || p == "<") ++depth;
      else if (p == ")" || p == "}" || p == ">") --depth;
      else if (p == "," && depth == 0) { arg_start = true; continue; }
      if (p == "[" && depth == 0 && arg_start) {
        const LambdaSpan lam = parse_lambda(t, k, close);
        if (lam.valid) {
          out.push_back(lam);
          k = lam.body_end;  // skip past; loop ++ moves beyond '}'
          arg_start = false;
          continue;
        }
      }
    } else if (t[k].kind == TokKind::kIdent && arg_start) {
      auto it = locals.find(t[k].text);
      if (it != locals.end() &&
          (punct_at(t, k + 1, ",") || k + 1 == close)) {
        out.push_back(it->second);
      }
    }
    arg_start = false;
  }
  return out;
}

}  // namespace

Findings pass_concurrency(const Project& proj, const CallGraph& cg,
                          ConcurrencyInventory* inventory) {
  (void)cg;
  Findings out;
  std::set<std::string> seen;
  auto emit = [&](const std::string& rule, const std::string& file, int line,
                  std::string msg) {
    if (seen.insert(file + ":" + std::to_string(line) + ":" + rule + ":" + msg).second)
      out.push_back({"concurrency", rule, file, line, std::move(msg)});
  };

  PassState st(proj);

  // Pre-resolve call candidates once; the entry-held fixpoint reuses them.
  std::vector<std::vector<std::vector<std::size_t>>> resolved(proj.functions.size());
  for (std::size_t i = 0; i < proj.functions.size(); ++i) {
    const FunctionInfo& fn = proj.functions[i];
    resolved[i].resize(fn.calls.size());
    for (std::size_t ci = 0; ci < fn.calls.size(); ++ci) {
      resolved[i][ci] = resolve_call(proj, fn, fn.calls[ci]);
    }
  }

  // ---- 1. Thread-escape --------------------------------------------------
  for (std::size_t i = 0; i < proj.functions.size(); ++i) {
    const FunctionInfo& fn = proj.functions[i];
    if (!fn.has_body) continue;
    const SourceFile* sf = st.file_by_path.at(fn.file);
    const auto& toks = sf->toks.tokens;
    const auto locals = local_lambdas(toks, fn);
    const Scope sc = scope_for(proj, fn);
    for (const CallSite& c : fn.calls) {
      const std::string kind = escape_kind(proj, fn, toks, c);
      if (kind.empty()) continue;
      for (const LambdaSpan& lam : lambda_args(toks, c, fn.body_end, locals)) {
        // A method lambda reaches members only through this / by-ref
        // capture; namespace-scope vars are reachable regardless.
        if (sc.is_class && !lam.captures_ctx) continue;
        const std::string site = fn.file + ":" + std::to_string(c.line);
        for (const std::string& m : reachable_members(st, fn, sc, lam)) {
          st.escapes[sc.key][m].emplace(kind, site);
        }
      }
    }
  }

  // ---- 2. Protection classification + enforcement ------------------------
  auto classify_scope = [&](const std::string& scope_key, bool is_class,
                            const std::vector<VarDecl>& vars, bool owns_mutex) {
    const auto esc_it = st.escapes.find(scope_key);
    static const std::map<std::string, std::string> kNoEscapes;
    const auto& esc =
        esc_it == st.escapes.end()
            ? std::map<std::string, std::map<std::string, std::string>>{}
            : esc_it->second;
    for (const auto& v : vars) {
      if (v.is_mutex) continue;
      std::vector<std::string> kinds;
      std::string first_site;
      auto ei = esc.find(v.name);
      if (ei != esc.end()) {
        for (const auto& [k, site] : ei->second) {
          kinds.push_back(k);
          // Report a pool/thread escape site when there is one — that is
          // the crossing that makes the member unsafe.
          if (first_site.empty() || k != "scheduled") first_site = site;
        }
      }
      const bool pool_escape =
          std::find(kinds.begin(), kinds.end(), "pool") != kinds.end() ||
          std::find(kinds.begin(), kinds.end(), "thread") != kinds.end();
      if (!owns_mutex && kinds.empty()) continue;  // not part of this story

      std::string protection;
      std::string guard;
      bool positional = false;
      if (v.guard_explicit && v.guard_id.empty()) {
        emit("bad-annotation", v.file, v.line,
             "remos-guarded-by(" + v.guard_annot + ") on `" + v.name +
                 "` names no known mutex");
        protection = "unprotected";
      } else if (v.is_atomic) {
        protection = "atomic";
      } else if (v.is_cv) {
        protection = "sync-primitive";
      } else if (v.is_thread_handle) {
        protection = "thread-handle";
      } else if (v.is_const) {
        protection = "const";
      } else if (v.is_static) {
        protection = "static";
      } else if (v.is_ref) {
        protection = "reference";
      } else if (!v.guard_id.empty()) {
        protection = "guarded-by";
        guard = v.guard_id;
        positional = !v.guard_explicit;
      } else if (!pool_escape && !owns_mutex) {
        // Scheduled-only escape in a mutex-free class: runs on the single
        // event-dispatch thread.
        protection = "sim-thread-only";
      } else {
        protection = "unprotected";
      }

      if (protection == "unprotected") {
        if (suppression_covers(proj, "concurrency", v.file, v.line)) {
          protection = "suppressed";
        }
        if (pool_escape) {
          emit("escape-unprotected", v.file, v.line,
               "`" + v.name + "` (" + scope_key +
                   ") is reachable from pool/thread-executed code (escape at " +
                   first_site +
                   ") but is not atomic, const, or guarded — annotate "
                   "// remos-guarded-by(<mutex>) or fix the sharing");
        } else if (owns_mutex) {
          emit("member-unprotected", v.file, v.line,
               "`" + v.name + "` (" + scope_key +
                   ") belongs to a mutex-owning " +
                   (is_class ? std::string("class") : std::string("file")) +
                   " but has no protection story — atomic, const, "
                   "// remos-guarded-by(<mutex>), or a justified suppression");
        }
      }

      if (inventory) {
        MemberProtection row;
        row.scope = scope_key;
        row.member = v.name;
        row.file = v.file;
        row.line = v.line;
        row.protection = protection;
        row.guard = guard;
        row.guard_positional = positional;
        std::sort(kinds.begin(), kinds.end());
        row.escapes = std::move(kinds);
        inventory->members.push_back(std::move(row));
      }
    }
  };

  for (const auto& [name, ci] : proj.classes) {
    bool owns_mutex = false;
    for (const auto& m : ci.members) owns_mutex = owns_mutex || m.is_mutex;
    if (!owns_mutex && !st.escapes.count(name)) continue;
    classify_scope(name, true, ci.members, owns_mutex);
  }
  for (const auto& [file, vars] : proj.namespace_vars) {
    bool owns_mutex = false;
    for (const auto& v : vars) owns_mutex = owns_mutex || v.is_mutex;
    if (!owns_mutex && !st.escapes.count(file)) continue;
    classify_scope(file, false, vars, owns_mutex);
  }

  // Explicitly guarded members: every access site must hold the mutex.
  for (const FunctionInfo& fn : proj.functions) {
    if (fn.is_ctor_dtor) continue;
    for (const AccessSite& acc : fn.guarded_accesses) {
      if (!acc.explicit_guard) continue;
      if (std::find(acc.held.begin(), acc.held.end(), acc.guard) != acc.held.end())
        continue;
      emit("guard-unheld", fn.file, acc.line,
           "`" + acc.name + "` is annotated remos-guarded-by(`" + acc.guard +
               "`) but touched without holding it");
    }
  }

  // remos-requires(<mutex>): annotation must resolve; call sites must hold.
  for (std::size_t i = 0; i < proj.functions.size(); ++i) {
    const FunctionInfo& fn = proj.functions[i];
    for (const std::string& raw : fn.requires_unresolved) {
      emit("bad-annotation", fn.file, fn.line,
           "remos-requires(" + raw + ") on `" + fn.name + "` names no known mutex");
    }
    if (fn.is_ctor_dtor) continue;
    for (std::size_t ci = 0; ci < fn.calls.size(); ++ci) {
      const CallSite& c = fn.calls[ci];
      if (c.method_call) continue;  // sibling object's state, not ours
      std::set<std::string> needed;
      for (std::size_t k : resolved[i][ci]) {
        if (k == i) continue;
        const FunctionInfo& callee = proj.functions[k];
        const bool same_scope = callee.cls.empty()
                                    ? (fn.cls.empty() && callee.file == fn.file)
                                    : callee.cls == fn.cls;
        if (!same_scope) continue;
        for (const std::string& id : callee.requires_ids) needed.insert(id);
      }
      for (const std::string& id : needed) {
        if (std::find(c.held.begin(), c.held.end(), id) == c.held.end()) {
          emit("requires-unheld", fn.file, c.line,
               "call to `" + c.name + "` requires `" + id +
                   "` held (remos-requires) but it is not held here");
        }
      }
    }
  }

  // ---- 3. Blocking under lock --------------------------------------------
  // Entry-held fixpoint: mutexes that may be held when a function is
  // entered, seeded from every call site's held set and closed over the
  // name-resolved graph.
  std::vector<std::set<std::string>> entry_held(proj.functions.size());
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < proj.functions.size(); ++i) {
      const FunctionInfo& fn = proj.functions[i];
      for (std::size_t ci = 0; ci < fn.calls.size(); ++ci) {
        const CallSite& c = fn.calls[ci];
        std::set<std::string> base(c.held.begin(), c.held.end());
        base.insert(entry_held[i].begin(), entry_held[i].end());
        if (base.empty()) continue;
        for (std::size_t k : resolved[i][ci]) {
          if (k == i) continue;
          for (const std::string& m : base) {
            if (entry_held[k].insert(m).second) changed = true;
          }
        }
      }
    }
  }

  for (std::size_t i = 0; i < proj.functions.size(); ++i) {
    const FunctionInfo& fn = proj.functions[i];
    if (!fn.has_body) continue;
    const SourceFile* sf = st.file_by_path.at(fn.file);
    const auto& toks = sf->toks.tokens;
    for (const CallSite& c : fn.calls) {
      std::set<std::string> held(c.held.begin(), c.held.end());
      held.insert(entry_held[i].begin(), entry_held[i].end());
      if (held.empty()) continue;

      // Direct pool entry while a mutex is (possibly transitively) held.
      // Entries inside the pool implementation itself re-fire for every
      // entry-held caller; the caller's own entry site carries the report.
      if (pool_entry_names().count(c.name) && fn.cls != "ThreadPool") {
        emit("pool-under-lock", fn.file, c.line,
             "ThreadPool entry `" + c.name + "` while holding " + join_ids(held) +
                 " — pool lanes may block behind the lock (deadlock feeder)");
        continue;
      }

      if (c.method_call) {
        const std::string recv = receiver_name(toks, c);
        if (recv.empty()) continue;
        const VarDecl* rv = receiver_var(proj, fn, recv);
        if (!rv) continue;

        // condition_variable wait: the lock it atomically releases (the
        // RAII object passed as first argument) is exempt; anything else
        // held across the wait blocks other threads.
        if (rv->is_cv && cv_wait_names().count(c.name)) {
          std::string wait_arg;
          const std::size_t open = c.token_index + 1;
          if (punct_at(toks, open, "(") && open + 1 < toks.size() &&
              toks[open + 1].kind == TokKind::kIdent) {
            wait_arg = toks[open + 1].text;
          }
          std::set<std::string> blocking = held;
          for (const AcquireSite& a : fn.acquires) {
            if (!wait_arg.empty() && a.raii_var == wait_arg) blocking.erase(a.mutex);
          }
          if (!blocking.empty()) {
            emit("blocking-under-lock", fn.file, c.line,
                 "condition_variable wait on `" + recv + "` while holding " +
                     join_ids(blocking) + " (not released by the wait)");
          }
        }

        // Waiting on a future-typed member while holding a lock.
        if (rv->is_thread_handle && future_wait_names().count(c.name) &&
            rv->type_text.find("future") != std::string::npos) {
          emit("blocking-under-lock", fn.file, c.line,
               "blocking `" + recv + "." + c.name + "()` on a future while holding " +
                   join_ids(held));
        }
      }
    }
  }

  return out;
}

}  // namespace remos::analyze
