#include <vector>

#include "passes.hpp"

namespace remos::analyze {
namespace {

// Bodies below this many tokens are trivial accessors/forwarders; forcing
// a REMOS_CHECK into a two-line setter adds noise, not safety. Calibrated
// against the tree: real mutating entry points (add_site, record_*,
// handle_*) are all comfortably above it.
constexpr std::size_t kMinBodyTokens = 40;

bool core_header(const std::string& file) {
  return file.rfind("src/core/", 0) == 0 &&
         file.size() > 4 && file.compare(file.size() - 4, 4, ".hpp") == 0;
}

}  // namespace

Findings pass_audit(const Project& proj, const CallGraph& cg) {
  Findings out;

  // audited[i]: function i contains REMOS_CHECK/REMOS_AUDIT directly or
  // reaches one through a resolvable callee.
  std::vector<char> audited(proj.functions.size(), 0);
  for (std::size_t i = 0; i < proj.functions.size(); ++i)
    if (proj.functions[i].has_audit) audited[i] = 1;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < proj.functions.size(); ++i) {
      if (audited[i]) continue;
      for (std::size_t k : cg.edges[i]) {
        if (audited[k]) {
          audited[i] = 1;
          changed = true;
          break;
        }
      }
    }
  }

  for (std::size_t i = 0; i < proj.functions.size(); ++i) {
    const FunctionInfo& fn = proj.functions[i];
    if (!fn.is_method || fn.cls.empty()) continue;
    if (!fn.is_public || fn.is_const || fn.is_static) continue;
    if (fn.is_ctor_dtor || fn.is_operator) continue;
    if (!fn.has_body || fn.body_tokens < kMinBodyTokens) continue;
    auto cls = proj.classes.find(fn.cls);
    if (cls == proj.classes.end() || !core_header(cls->second.file)) continue;
    if (audited[i]) continue;
    out.push_back({"audit", "unaudited-entry", fn.file, fn.line,
                   "public mutating entry point `" + fn.cls + "::" + fn.name +
                       "` never reaches REMOS_CHECK/REMOS_AUDIT — assert its "
                       "preconditions or invariants"});
  }

  return out;
}

}  // namespace remos::analyze
