#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "passes.hpp"

namespace remos::analyze {
namespace {

// Marker a header must carry in-file to honor a `public <header>` grant in
// layers.txt — the exemption is two-sided so neither side can drift alone.
constexpr const char* kPublicMarker = "remos-analyze: public-header(";

struct LayerSpec {
  std::map<std::string, std::set<std::string>> allowed;  // direct deps
  std::set<std::string> public_headers;                  // src/-relative
};

LayerSpec parse_layers(const std::string& text, const std::string& display,
                       Findings& out) {
  LayerSpec spec;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (auto hash = line.find('#'); hash != std::string::npos)
      line.resize(hash);
    std::istringstream ls(line);
    std::string kw;
    if (!(ls >> kw)) continue;
    if (kw == "layer") {
      std::string name;
      if (!(ls >> name) || name.back() != ':') {
        out.push_back({"layer", "spec", display, lineno,
                       "expected `layer <name>: [deps...]`"});
        continue;
      }
      name.pop_back();
      auto& deps = spec.allowed[name];  // creates the layer even dep-less
      std::string dep;
      while (ls >> dep) deps.insert(dep);
    } else if (kw == "public") {
      std::string path;
      if (!(ls >> path)) {
        out.push_back({"layer", "spec", display, lineno, "expected `public <header>`"});
        continue;
      }
      spec.public_headers.insert(path);
    } else {
      out.push_back({"layer", "spec", display, lineno, "unknown directive `" + kw + "`"});
    }
  }
  return spec;
}

/// DFS over a string-keyed dep graph; reports each cycle once via `on_cycle`
/// with the back-edge path joined " -> ".
template <typename EdgesFn, typename OnCycle>
void find_cycles(const std::set<std::string>& nodes, EdgesFn edges,
                 OnCycle on_cycle) {
  std::set<std::string> done;
  std::vector<std::string> stack;
  std::set<std::string> on_stack;
  // Iterative DFS with an explicit edge cursor per frame.
  struct Frame {
    std::string node;
    std::vector<std::string> succ;
    std::size_t next = 0;
  };
  for (const std::string& root : nodes) {
    if (done.count(root)) continue;
    std::vector<Frame> frames;
    frames.push_back({root, edges(root), 0});
    stack.push_back(root);
    on_stack.insert(root);
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.next < f.succ.size()) {
        const std::string next = f.succ[f.next++];
        if (on_stack.count(next)) {
          auto it = std::find(stack.begin(), stack.end(), next);
          std::string path;
          for (; it != stack.end(); ++it) path += *it + " -> ";
          on_cycle(path + next);
        } else if (!done.count(next)) {
          frames.push_back({next, edges(next), 0});
          stack.push_back(next);
          on_stack.insert(next);
        }
      } else {
        done.insert(f.node);
        on_stack.erase(f.node);
        stack.pop_back();
        frames.pop_back();
      }
    }
  }
}

}  // namespace

Findings pass_layers(const Project& proj, const std::string& layers_text,
                     const std::string& layers_display) {
  Findings out;
  LayerSpec spec = parse_layers(layers_text, layers_display, out);

  // Declared deps must themselves be declared layers, and the declared
  // graph must be a DAG.
  std::set<std::string> layer_names;
  for (const auto& [name, deps] : spec.allowed) layer_names.insert(name);
  for (const auto& [name, deps] : spec.allowed) {
    for (const std::string& d : deps) {
      if (!layer_names.count(d)) {
        out.push_back({"layer", "spec", layers_display, 1,
                       "layer `" + name + "` depends on undeclared layer `" +
                           d + "`"});
      }
    }
  }
  bool dag_cycle = false;
  find_cycles(
      layer_names,
      [&](const std::string& n) {
        const auto& d = spec.allowed.at(n);
        return std::vector<std::string>(d.begin(), d.end());
      },
      [&](const std::string& path) {
        dag_cycle = true;
        out.push_back({"layer", "spec-cycle", layers_display, 1,
                       "declared layer graph has a cycle: " + path});
      });

  // Transitive closure of allowed deps (skipped if the declaration itself
  // is cyclic — everything below would be noise).
  std::map<std::string, std::set<std::string>> reach = spec.allowed;
  if (!dag_cycle) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (auto& [name, deps] : reach) {
        std::set<std::string> add;
        for (const std::string& d : deps) {
          auto it = reach.find(d);
          if (it == reach.end()) continue;
          for (const std::string& dd : it->second)
            if (!deps.count(dd)) add.insert(dd);
        }
        if (!add.empty()) {
          deps.insert(add.begin(), add.end());
          changed = true;
        }
      }
    }
  }

  std::set<std::string> file_paths;
  for (const SourceFile& sf : proj.files) file_paths.insert(sf.rel_path);

  auto header_has_marker = [&](const std::string& src_rel) {
    for (const SourceFile& sf : proj.files)
      if (sf.rel_path == src_rel)
        return sf.raw.find(kPublicMarker) != std::string::npos;
    return false;
  };

  // Public grants are two-sided: the grant in layers.txt AND the marker in
  // the header. Either one alone is a finding.
  std::set<std::string> public_ok;
  for (const std::string& p : spec.public_headers) {
    const std::string src_rel = "src/" + p;
    if (!file_paths.count(src_rel)) {
      out.push_back({"layer", "public-grant", layers_display, 1,
                     "public grant for `" + p + "` names no file under src/"});
    } else if (!header_has_marker(src_rel)) {
      out.push_back(
          {"layer", "public-grant", src_rel, 1,
           "layers.txt grants `public " + p +
               "` but the header carries no remos-analyze: public-header(...) "
               "marker"});
    } else {
      public_ok.insert(p);
    }
  }
  for (const SourceFile& sf : proj.files) {
    if (sf.raw.find(kPublicMarker) == std::string::npos) continue;
    const std::string src_less =
        sf.rel_path.rfind("src/", 0) == 0 ? sf.rel_path.substr(4) : sf.rel_path;
    if (!spec.public_headers.count(src_less)) {
      out.push_back({"layer", "public-grant", sf.rel_path, 1,
                     "public-header(...) marker present but layers.txt has no "
                     "matching `public " +
                         src_less + "` grant"});
    }
  }

  // Per-file checks: declared layer, and every project include must stay
  // within the layer's allowed set (or target a public header).
  for (const SourceFile& sf : proj.files) {
    if (!layer_names.count(sf.layer)) {
      out.push_back({"layer", "undeclared-layer", sf.rel_path, 1,
                     "directory `src/" + sf.layer +
                         "` is not declared in " + layers_display});
      continue;
    }
    const std::set<std::string>& ok = reach[sf.layer];
    for (const IncludeDirective& inc : sf.toks.includes) {
      if (!inc.quoted) continue;
      auto slash = inc.path.find('/');
      if (slash == std::string::npos) continue;  // not layer-qualified
      const std::string target = inc.path.substr(0, slash);
      if (!layer_names.count(target)) continue;  // not a project layer
      if (target == sf.layer || ok.count(target)) continue;
      if (public_ok.count(inc.path)) continue;
      out.push_back({"layer", "bad-include", sf.rel_path, inc.line,
                     "layer `" + sf.layer + "` must not include \"" +
                         inc.path + "\" — `" + target +
                         "` is not among its declared dependencies"});
    }
  }

  // File-level include cycles (independent of the declared layering —
  // a cycle inside one layer is still a build hazard).
  std::map<std::string, std::vector<std::string>> inc_graph;
  for (const SourceFile& sf : proj.files) {
    auto& succ = inc_graph[sf.rel_path];
    for (const IncludeDirective& inc : sf.toks.includes) {
      if (!inc.quoted) continue;
      const std::string dst = "src/" + inc.path;
      if (file_paths.count(dst)) succ.push_back(dst);
    }
  }
  find_cycles(
      file_paths,
      [&](const std::string& n) {
        auto it = inc_graph.find(n);
        return it == inc_graph.end() ? std::vector<std::string>{} : it->second;
      },
      [&](const std::string& path) {
        const std::string head = path.substr(0, path.find(' '));
        out.push_back({"layer", "include-cycle", head, 1, "include cycle: " + path});
      });

  return out;
}

}  // namespace remos::analyze
