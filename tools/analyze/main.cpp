// remos_analyze — whole-project static analyzer for the Remos tree.
//
//   remos_analyze --root <repo-root> [--json] [--layers <file>]
//
// Scans every .hpp/.cpp under <root>/src, builds the approximate project
// model, and runs the six passes (lock, determinism, layer, audit,
// concurrency, hotpath) plus the suppression meta-pass. Exit status: 0 clean,
// 1 findings, 2 usage or I/O error. Layer spec resolution: --layers, else
// <root>/tools/analyze/layers.txt, else <root>/layers.txt.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "model.hpp"
#include "passes.hpp"
#include "report.hpp"

namespace fs = std::filesystem;
using namespace remos::analyze;

namespace {

bool read_file(const fs::path& p, std::string& out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

int usage() {
  std::fprintf(stderr,
               "usage: remos_analyze --root <repo-root> [--json] "
               "[--layers <file>]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root_arg;
  std::string layers_arg;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--root") && i + 1 < argc) {
      root_arg = argv[++i];
    } else if (!std::strcmp(argv[i], "--layers") && i + 1 < argc) {
      layers_arg = argv[++i];
    } else if (!std::strcmp(argv[i], "--json")) {
      json = true;
    } else {
      return usage();
    }
  }
  if (root_arg.empty()) return usage();

  const fs::path root(root_arg);
  const fs::path src = root / "src";
  if (!fs::is_directory(src)) {
    std::fprintf(stderr, "remos_analyze: no src/ directory under %s\n",
                 root_arg.c_str());
    return 2;
  }

  // Deterministic scan order: collect then sort.
  std::vector<fs::path> paths;
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc")
      paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());

  std::vector<SourceFile> files;
  files.reserve(paths.size());
  for (const fs::path& p : paths) {
    SourceFile sf;
    sf.rel_path = fs::relative(p, root).generic_string();
    const fs::path under_src = fs::relative(p, src);
    sf.layer = under_src.begin() != under_src.end()
                   ? under_src.begin()->string()
                   : std::string();
    if (!read_file(p, sf.raw)) {
      std::fprintf(stderr, "remos_analyze: cannot read %s\n",
                   p.string().c_str());
      return 2;
    }
    sf.toks = tokenize(sf.raw);
    files.push_back(std::move(sf));
  }

  fs::path layers_path;
  if (!layers_arg.empty()) {
    layers_path = layers_arg;
  } else if (fs::exists(root / "tools" / "analyze" / "layers.txt")) {
    layers_path = root / "tools" / "analyze" / "layers.txt";
  } else if (fs::exists(root / "layers.txt")) {
    layers_path = root / "layers.txt";
  } else {
    std::fprintf(stderr,
                 "remos_analyze: no layers.txt (looked in "
                 "tools/analyze/ and the root; or pass --layers)\n");
    return 2;
  }
  std::string layers_text;
  if (!read_file(layers_path, layers_text)) {
    std::fprintf(stderr, "remos_analyze: cannot read %s\n",
                 layers_path.string().c_str());
    return 2;
  }

  const std::size_t n_files = files.size();
  Project proj = build_project(std::move(files));
  const CallGraph cg = build_call_graph(proj);

  ConcurrencyInventory inventory;
  HotpathInventory hot_inventory;
  Findings all;
  for (auto& pass :
       {pass_lock(proj, cg), pass_determinism(proj, cg),
        pass_layers(proj, layers_text,
                    fs::relative(layers_path, root).generic_string()),
        pass_audit(proj, cg), pass_concurrency(proj, cg, &inventory),
        pass_hotpath(proj, cg, &hot_inventory)}) {
    all.insert(all.end(), pass.begin(), pass.end());
  }
  all = apply_suppressions(std::move(all), proj);

  if (json)
    print_json(all, used_suppressions(proj), &inventory, &hot_inventory);
  else
    print_text(all, n_files);
  return all.empty() ? 0 : 1;
}
