#include "core/query_snapshot.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "sim/stats.hpp"

namespace remos::core {

VirtualTopology span_topology(const VirtualTopology& topo,
                              const std::vector<net::Ipv4Address>& nodes) {
  // Resolve and deduplicate endpoints, preserving request order (the same
  // normalization Modeler::fetch applies before a collector query).
  std::vector<VNodeIndex> endpoints;
  for (net::Ipv4Address a : nodes) {
    const VNodeIndex idx = topo.find_by_addr(a);
    if (idx == kNoVNode) continue;
    if (std::find(endpoints.begin(), endpoints.end(), idx) == endpoints.end()) {
      endpoints.push_back(idx);
    }
  }

  std::vector<bool> keep_node(topo.node_count(), false);
  std::vector<bool> keep_edge(topo.edge_count(), false);
  for (const VNodeIndex v : endpoints) keep_node[v] = true;
  for (std::size_t i = 0; i < endpoints.size(); ++i) {
    for (std::size_t j = i + 1; j < endpoints.size(); ++j) {
      const auto path = topo.shortest_path(endpoints[i], endpoints[j]);
      if (!path) continue;
      for (const std::size_t e : *path) {
        keep_edge[e] = true;
        keep_node[topo.edges()[e].a] = true;
        keep_node[topo.edges()[e].b] = true;
      }
    }
  }

  // Rebuild in source order so the result is deterministic and edge/node
  // relative order survives the projection.
  VirtualTopology out;
  std::vector<VNodeIndex> remap(topo.node_count(), kNoVNode);
  for (std::size_t i = 0; i < topo.node_count(); ++i) {
    if (keep_node[i]) remap[i] = out.add_node(topo.nodes()[i]);
  }
  for (std::size_t e = 0; e < topo.edge_count(); ++e) {
    if (!keep_edge[e]) continue;
    VEdge copy = topo.edges()[e];
    copy.a = remap[copy.a];
    copy.b = remap[copy.b];
    out.add_edge(std::move(copy));
  }
  return out;
}

const VEdge* bottleneck_edge(const VirtualTopology& topo, const FlowInfo& info) {
  const VEdge* bottleneck = nullptr;
  double best_avail = std::numeric_limits<double>::infinity();
  for (const std::string& id : info.path_edge_ids) {
    for (const VEdge& e : topo.edges()) {
      if (e.id != id) continue;
      const double avail = std::min(e.available_bps(true), e.available_bps(false));
      if (avail < best_avail) {
        best_avail = avail;
        bottleneck = &e;
      }
    }
  }
  return bottleneck;
}

const std::vector<double>* choose_history(const std::vector<double>* ab,
                                          const std::vector<double>* ba) {
  if (ab != nullptr && ba != nullptr) {
    const auto mean_of = [](const std::vector<double>& values) {
      sim::RunningStats s;
      for (double v : values) s.add(v);
      return s.mean();
    };
    return mean_of(*ba) > mean_of(*ab) ? ba : ab;
  }
  return ab != nullptr ? ab : ba;
}

namespace {

/// Convert a raw RPS forecast to available bandwidth on the bottleneck.
FlowPrediction render_flow_prediction(rps::Prediction pred, const VEdge& bottleneck,
                                      const rps::ModelSpec& model) {
  FlowPrediction out;
  out.model_name = model.to_string();
  out.variance = std::move(pred.variance);
  out.mean_bps.reserve(pred.mean.size());
  const bool history_is_available_bw = bottleneck.id.starts_with("wan:");
  for (double v : pred.mean) {
    // SNMP-collector histories record *utilization*; available bandwidth is
    // capacity minus that. Benchmark (WAN) histories record available
    // bandwidth directly.
    const double avail = history_is_available_bw ? v : bottleneck.capacity_bps - v;
    out.mean_bps.push_back(std::clamp(avail, 0.0, bottleneck.capacity_bps));
  }
  return out;
}

/// Warm-tier fallback: seed a model from a same-shape template fitted on
/// another series and prime it with this history's samples.
std::optional<FlowPrediction> seed_from_template(rps::SharedPredictionCache& cache,
                                                 const std::string& shape_key,
                                                 std::span<const double> values,
                                                 const VEdge& bottleneck,
                                                 const rps::ModelSpec& model,
                                                 std::size_t horizon) {
  auto tmpl = cache.warm_template(shape_key);
  if (!tmpl) return std::nullopt;
  auto seeded = rps::model_from_template(*tmpl, values);
  if (seeded == nullptr) return std::nullopt;
  cache.note_seeded();
  return render_flow_prediction(seeded->predict(horizon), bottleneck, model);
}

}  // namespace

std::optional<FlowPrediction> predict_from_history(std::span<const double> values,
                                                   const VEdge& bottleneck,
                                                   const rps::ClientServerPredictor& predictor,
                                                   const rps::ModelSpec& model,
                                                   std::size_t horizon,
                                                   std::size_t min_history,
                                                   rps::SharedPredictionCache* cache) {
  if (values.size() < min_history) {
    if (cache != nullptr) {
      const std::string shape_key = model.to_string() + "#" + std::to_string(horizon);
      return seed_from_template(*cache, shape_key, values, bottleneck, model, horizon);
    }
    return std::nullopt;
  }

  rps::ClientServerPredictor::Request req;
  req.history = values;
  req.horizon = horizon;
  req.spec = model;
  rps::Prediction pred;
  if (cache != nullptr) {
    const std::string shape_key = model.to_string() + "#" + std::to_string(horizon);
    const std::string key =
        bottleneck.id + "#" + std::to_string(horizon) + "#" + model.to_string();
    try {
      pred = cache->get_or_compute(key, [&] {
        std::optional<rps::ModelTemplate> tmpl;
        rps::Prediction p = predictor.predict(req, &tmpl);
        // Publishing from inside compute is safe: it runs outside the
        // cache lock, and the template tier has its own keyspace.
        if (tmpl) cache->put_template(shape_key, *tmpl);
        return p;
      });
    } catch (const std::invalid_argument&) {
      // Long enough for min_history but too short for this model's order:
      // fall back to a warm-template seed before giving up.
      return seed_from_template(*cache, shape_key, values, bottleneck, model, horizon);
    }
    return render_flow_prediction(std::move(pred), bottleneck, model);
  }
  try {
    pred = predictor.predict(req);
  } catch (const std::invalid_argument&) {
    return std::nullopt;  // history too short for the configured model
  }
  return render_flow_prediction(std::move(pred), bottleneck, model);
}

}  // namespace remos::core
