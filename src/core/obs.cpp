// remos-lint: allow-file(wallclock) — the exporter's *optional* real-time
// annotation (ExportOptions::annotate_realtime, off by default) is the one
// sanctioned wall-clock read in src/; everything on the data path is
// virtual-time only.
#include "core/obs.hpp"

#include <charconv>
#include <chrono>
#include <cstdio>

#include "core/audit.hpp"

namespace remos::core::obs {

namespace {

/// Seconds since the Unix epoch from the real clock — only reachable
/// through annotate_realtime (see file header).
double realtime_unix_s() {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  return std::chrono::duration<double>(now).count();
}

void json_escape_into(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// JSON number token for `v`; non-finite values have no JSON number form,
/// so they are emitted as quoted strings ("inf", "-inf", "nan").
std::string json_number(double v) {
  const std::string s = format_double(v);
  if (s == "inf" || s == "-inf" || s == "nan") return "\"" + s + "\"";
  return s;
}

std::string prometheus_name(const std::string& name) {
  std::string out = "remos_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9');
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

std::string format_double(double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, res.ptr);
}

// --- Tracer ----------------------------------------------------------------

SpanRecord* Tracer::active_by_id(std::uint64_t id) {
  for (auto it = active_.rbegin(); it != active_.rend(); ++it) {
    if (it->id == id) return &*it;
  }
  return nullptr;
}

Tracer::Scope Tracer::span(std::string name) {
  if constexpr (!sim::kObsEnabled) {
    (void)name;
    return Scope(nullptr, 0);
  }
  SpanRecord rec;
  rec.id = next_id_++;
  rec.parent = active_.empty() ? 0 : active_.back().id;
  // Ids order parent-before-child; a wrapped or reset counter would let
  // finish() close the wrong subtree.
  REMOS_CHECK(rec.id > rec.parent, "span ids must increase monotonically");
  rec.name = std::move(name);
  rec.start_s = sim::obs_now();
  active_.push_back(std::move(rec));
  return Scope(this, active_.back().id);
}

void Tracer::finish(std::uint64_t id) {
  // RAII scopes close LIFO, but an early end() between nested scopes is
  // tolerated: everything opened after `id` is force-closed with it.
  while (!active_.empty()) {
    SpanRecord rec = std::move(active_.back());
    active_.pop_back();
    const bool target = rec.id == id;
    rec.end_s = sim::obs_now();
    if (finished_.size() < capacity_) {
      finished_.push_back(std::move(rec));
    } else {
      ++dropped_;
    }
    if (target) return;
  }
}

void Tracer::reset() {
  active_.clear();
  finished_.clear();
  next_id_ = 1;
  dropped_ = 0;
}

void Tracer::Scope::attr(const std::string& key, std::string value) {
  if (tracer_ == nullptr) return;
  REMOS_CHECK(!key.empty(), "span attribute key must be non-empty");
  if (SpanRecord* rec = tracer_->active_by_id(id_)) {
    rec->attrs.emplace_back(key, std::move(value));
  }
}

void Tracer::Scope::attr(const std::string& key, double v) { attr(key, format_double(v)); }

void Tracer::Scope::attr(const std::string& key, bool v) {
  attr(key, std::string(v ? "true" : "false"));
}

void Tracer::Scope::end() {
  if (tracer_ == nullptr) return;
  tracer_->finish(id_);
  tracer_ = nullptr;
}

Tracer& tracer() {
  static Tracer g_tracer;
  return g_tracer;
}

Tracer::Scope span(std::string name) { return tracer().span(std::move(name)); }

// --- exporters -------------------------------------------------------------

std::string export_json(const ExportOptions& opts) {
  const auto counters = sim::metrics().counters_snapshot();
  const auto gauges = sim::metrics().gauges_snapshot();
  const auto histograms = sim::metrics().histograms_snapshot();

  std::string out;
  out += "{\n  \"format\": \"remos-obs-v1\"";
  if (opts.annotate_realtime) {
    // Non-reproducible by construction; never on for golden runs.
    out += ",\n  \"exported_at_unix_s\": " + json_number(realtime_unix_s());
  }
  out += ",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    json_escape_into(out, name);
    out += "\": " + std::to_string(value);
  }
  out += first ? "}" : "\n  }";

  out += ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    json_escape_into(out, name);
    out += "\": " + json_number(value);
  }
  out += first ? "}" : "\n  }";

  out += ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, snap] : histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    json_escape_into(out, name);
    out += "\": {\"le\": [";
    for (std::size_t i = 0; i < snap.bounds.size(); ++i) {
      if (i > 0) out += ", ";
      out += json_number(snap.bounds[i]);
    }
    out += "], \"buckets\": [";
    for (std::size_t i = 0; i < snap.buckets.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(snap.buckets[i]);
    }
    out += "], \"sum\": " + json_number(snap.sum);
    out += ", \"count\": " + std::to_string(snap.count) + "}";
  }
  out += first ? "}" : "\n  }";

  if (opts.include_spans) {
    const Tracer& t = tracer();
    out += ",\n  \"spans\": {\n    \"dropped\": " + std::to_string(t.dropped());
    out += ",\n    \"records\": [";
    first = true;
    for (const SpanRecord& rec : t.finished()) {
      out += first ? "\n" : ",\n";
      first = false;
      out += "      {\"id\": " + std::to_string(rec.id);
      out += ", \"parent\": " + std::to_string(rec.parent);
      out += ", \"name\": \"";
      json_escape_into(out, rec.name);
      out += "\", \"start\": " + json_number(rec.start_s);
      out += ", \"end\": " + json_number(rec.end_s);
      out += ", \"attrs\": {";
      bool afirst = true;
      for (const auto& [k, v] : rec.attrs) {
        if (!afirst) out += ", ";
        afirst = false;
        out += "\"";
        json_escape_into(out, k);
        out += "\": \"";
        json_escape_into(out, v);
        out += "\"";
      }
      out += "}}";
    }
    out += first ? "]" : "\n    ]";
    out += "\n  }";
  }
  out += "\n}\n";
  return out;
}

std::string export_prometheus(const ExportOptions& opts) {
  std::string out;
  if (opts.annotate_realtime) {
    out += "# exported_at_unix_s " + format_double(realtime_unix_s()) + "\n";
  }
  for (const auto& [name, value] : sim::metrics().counters_snapshot()) {
    const std::string pname = prometheus_name(name);
    out += "# TYPE " + pname + " counter\n";
    out += pname + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : sim::metrics().gauges_snapshot()) {
    const std::string pname = prometheus_name(name);
    out += "# TYPE " + pname + " gauge\n";
    out += pname + " " + format_double(value) + "\n";
  }
  for (const auto& [name, snap] : sim::metrics().histograms_snapshot()) {
    const std::string pname = prometheus_name(name);
    out += "# TYPE " + pname + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < snap.bounds.size(); ++i) {
      cumulative += snap.buckets[i];
      out += pname + "_bucket{le=\"" + format_double(snap.bounds[i]) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += pname + "_bucket{le=\"+Inf\"} " + std::to_string(snap.count) + "\n";
    out += pname + "_sum " + format_double(snap.sum) + "\n";
    out += pname + "_count " + std::to_string(snap.count) + "\n";
  }
  return out;
}

bool write_export_file(const std::string& path, const ExportOptions& opts) {
  const bool prom = path.size() >= 5 && path.compare(path.size() - 5, 5, ".prom") == 0;
  const std::string body = prom ? export_prometheus(opts) : export_json(opts);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const bool ok = std::fclose(f) == 0 && written == body.size();
  return ok;
}

void reset() {
  sim::metrics().zero_all();
  tracer().reset();
}

void clear_all() {
  sim::metrics().clear();
  tracer().reset();
}

}  // namespace remos::core::obs
