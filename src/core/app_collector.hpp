// Application-feedback collector — the paper's §6.2 pointer to passive,
// application-level information sources ("Many other sources of
// information could be tapped, including ... application-level information
// [SPAND]").
//
// Applications report the transfer performance they actually achieved;
// the collector aggregates reports per endpoint pair and serves them like
// any other collector — passive measurements at zero network cost,
// complementing SNMP (component-level) and benchmark (active end-to-end)
// data. Reports age out, since a transfer observed an hour ago says little
// about the network now.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/collector.hpp"
#include "sim/engine.hpp"

namespace remos::core {

struct AppFeedbackConfig {
  std::string name = "app-feedback-collector";
  /// Prefixes this collector may be asked about.
  std::vector<net::Ipv4Prefix> domain;
  /// Reports older than this are ignored when answering queries.
  double report_ttl_s = 300.0;
  std::size_t history_capacity = 4096;
};

class AppFeedbackCollector final : public Collector {
 public:
  AppFeedbackCollector(sim::Engine& engine, AppFeedbackConfig config);

  /// An application observed `achieved_bps` on a transfer src -> dst.
  void report(net::Ipv4Address src, net::Ipv4Address dst, double achieved_bps);

  /// Most recent non-expired observation for a pair (direction-less), or
  /// nullopt.
  [[nodiscard]] std::optional<double> observed_bandwidth(net::Ipv4Address a,
                                                         net::Ipv4Address b) const;
  /// Mean over non-expired observations.
  [[nodiscard]] std::optional<double> mean_bandwidth(net::Ipv4Address a,
                                                     net::Ipv4Address b) const;

  [[nodiscard]] std::uint64_t reports_received() const { return reports_; }
  [[nodiscard]] std::size_t pair_count() const { return pairs_.size(); }

  // Collector interface: edges between reported pairs among the queried
  // nodes, capacity = latest observed application throughput.
  [[nodiscard]] std::string name() const override { return config_.name; }
  [[nodiscard]] std::vector<net::Ipv4Prefix> responsibility() const override {
    return config_.domain;
  }
  CollectorResponse query(const std::vector<net::Ipv4Address>& nodes) override;
  /// Histories keyed "app:<lo-ip>-<hi-ip>".
  [[nodiscard]] const sim::MeasurementHistory* history(const std::string& resource_id) const override;

 private:
  using PairKey = std::pair<net::Ipv4Address, net::Ipv4Address>;
  static PairKey key_of(net::Ipv4Address a, net::Ipv4Address b);
  static std::string id_of(const PairKey& key);

  sim::Engine& engine_;
  AppFeedbackConfig config_;
  std::map<PairKey, sim::MeasurementHistory> pairs_;
  std::uint64_t reports_ = 0;
};

}  // namespace remos::core
