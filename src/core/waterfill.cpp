#include "core/waterfill.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/audit.hpp"

namespace remos::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
/// Freeze tolerance, identical to the historical solvers: a flow freezes
/// when its demand or a crossed resource's saturation level is within
/// 1e-9 of the water level.
constexpr double kFreezeEps = 1e-9;

}  // namespace

WaterfillStats WaterfillSolver::solve(std::span<const double> capacity,
                                      std::span<const std::size_t> flow_offsets,
                                      std::span<const std::uint32_t> flow_resources,
                                      std::span<const double> demand,
                                      std::span<double> rates_out,
                                      const WaterfillOptions& options) {
  const std::size_t nf = demand.size();
  const std::size_t nr = capacity.size();
  REMOS_CHECK(flow_offsets.size() == nf + 1, "waterfill: CSR offsets must have F+1 entries");
  REMOS_CHECK(nf == 0 || flow_offsets.front() == 0, "waterfill: CSR offsets must start at 0");
  REMOS_CHECK(nf == 0 || flow_offsets.back() == flow_resources.size(),
              "waterfill: CSR offsets must end at the resource-list size");
  REMOS_CHECK(rates_out.size() == nf, "waterfill: rates_out must have one slot per flow");

  WaterfillStats stats;

  // ---- per-solve state (arena reuse; no steady-state allocation) ----
  frozen_usage_.assign(nr, 0.0);
  unfrozen_.assign(nr, 0);
  sat_.assign(nr, 0.0);
  gen_.assign(nr, 0);
  touch_round_.assign(nr, 0);
  cand_round_.assign(nf, 0);
  frozen_.assign(nf, 0);
  for (std::size_t f = 0; f < nf; ++f) rates_out[f] = 0.0;
  for (const std::uint32_t key : flow_resources) {
    REMOS_CHECK(key < nr, "waterfill: resource id out of range");
    ++unfrozen_[key];
  }

  // Reverse CSR (resource -> flows), rebuilt per solve by counting sort.
  res_off_.assign(nr + 1, 0);
  for (const std::uint32_t key : flow_resources) ++res_off_[key + 1];
  for (std::size_t r = 0; r < nr; ++r) res_off_[r + 1] += res_off_[r];
  res_flows_.resize(flow_resources.size());
  res_cursor_.assign(res_off_.begin(), res_off_.end() - 1);
  for (std::size_t f = 0; f < nf; ++f) {
    for (std::size_t k = flow_offsets[f]; k < flow_offsets[f + 1]; ++k) {
      res_flows_[res_cursor_[flow_resources[k]]++] = static_cast<std::uint32_t>(f);
    }
  }

  // Saturation min-heap over active resources and demand min-heap over
  // flows. Both use lazy deletion: resource entries are invalidated by a
  // generation bump (or the resource freezing out entirely), demand
  // entries by the flow freezing.
  const auto res_less_at_front = [](const ResEntry& a, const ResEntry& b) {
    return a.sat > b.sat;
  };
  const auto dem_less_at_front = [](const DemEntry& a, const DemEntry& b) {
    return a.demand > b.demand;
  };
  res_heap_.clear();
  for (std::size_t r = 0; r < nr; ++r) {
    if (unfrozen_[r] == 0) continue;
    sat_[r] = (capacity[r] - frozen_usage_[r]) / static_cast<double>(unfrozen_[r]);
    res_heap_.push_back(ResEntry{sat_[r], static_cast<std::uint32_t>(r), 0});
  }
  std::make_heap(res_heap_.begin(), res_heap_.end(), res_less_at_front);
  dem_heap_.clear();
  for (std::size_t f = 0; f < nf; ++f) {
    dem_heap_.push_back(DemEntry{demand[f], static_cast<std::uint32_t>(f)});
  }
  std::make_heap(dem_heap_.begin(), dem_heap_.end(), dem_less_at_front);

  // ---- freezing rounds ----
  std::size_t remaining = nf;
  double level = 0.0;
  while (remaining > 0) {
    ++stats.rounds;
    const auto round = static_cast<std::uint32_t>(stats.rounds);

    // Next saturation level among resources: discard stale heap entries,
    // then the front is the exact minimum of the current levels (every
    // active resource has a current-generation entry).
    double res_min = kInf;
    while (!res_heap_.empty()) {
      const ResEntry& top = res_heap_.front();
      if (unfrozen_[top.res] == 0 || top.gen != gen_[top.res]) {
        std::pop_heap(res_heap_.begin(), res_heap_.end(), res_less_at_front);
        res_heap_.pop_back();
        continue;
      }
      res_min = top.sat;
      break;
    }
    // Next demand cap among unfrozen flows.
    double dem_min = kInf;
    while (!dem_heap_.empty()) {
      const DemEntry& top = dem_heap_.front();
      if (frozen_[top.flow] != 0) {
        std::pop_heap(dem_heap_.begin(), dem_heap_.end(), dem_less_at_front);
        dem_heap_.pop_back();
        continue;
      }
      dem_min = top.demand;
      break;
    }

    const double next_level = std::min(res_min, dem_min);
    // Only unconstrained greedy flows remain (no finite resource, no finite
    // demand). Freeze at 0 defensively, as both historical solvers did.
    if (!std::isfinite(next_level)) break;
    if (options.monotone_level) {
      level = std::max(level, next_level);
    } else {
      level = next_level;
      if (options.clamp_negative_level && level < 0.0) level = 0.0;
    }
    const double thr = level + kFreezeEps;

    // Collect this round's freezes: demand-capped flows first (they pop
    // off the demand heap for good), then every unfrozen flow crossing a
    // saturated resource. A saturated resource loses all its unfrozen
    // flows this round, so popping it off the heap is final.
    candidates_.clear();
    while (!dem_heap_.empty()) {
      const DemEntry top = dem_heap_.front();
      if (frozen_[top.flow] == 0 && !(top.demand <= thr)) break;
      std::pop_heap(dem_heap_.begin(), dem_heap_.end(), dem_less_at_front);
      dem_heap_.pop_back();
      if (frozen_[top.flow] != 0) continue;
      cand_round_[top.flow] = round;
      candidates_.push_back(top.flow);
      ++stats.demand_frozen;
    }
    while (!res_heap_.empty()) {
      const ResEntry top = res_heap_.front();
      const bool stale = unfrozen_[top.res] == 0 || top.gen != gen_[top.res];
      if (!stale && !(top.sat <= thr)) break;
      std::pop_heap(res_heap_.begin(), res_heap_.end(), res_less_at_front);
      res_heap_.pop_back();
      if (stale) continue;
      for (std::size_t k = res_off_[top.res]; k < res_off_[top.res + 1]; ++k) {
        const std::uint32_t f = res_flows_[k];
        if (frozen_[f] != 0 || cand_round_[f] == round) continue;
        cand_round_[f] = round;
        candidates_.push_back(f);
        ++stats.saturation_frozen;
      }
    }
    if (candidates_.empty()) break;  // numerical guard, as before

    // Apply in ascending flow order — the order the historical single-scan
    // solvers froze in, which fixes the float accumulation sequence of
    // every resource's frozen_usage.
    std::sort(candidates_.begin(), candidates_.end());
    touched_.clear();
    for (const std::uint32_t f : candidates_) {
      const double r = std::min(level, demand[f]);
      rates_out[f] = r;
      frozen_[f] = 1;
      --remaining;
      for (std::size_t k = flow_offsets[f]; k < flow_offsets[f + 1]; ++k) {
        const std::uint32_t key = flow_resources[k];
        frozen_usage_[key] += r;
        --unfrozen_[key];
        if (touch_round_[key] != round) {
          touch_round_[key] = round;
          touched_.push_back(key);
        }
      }
    }
    // Refresh the saturation level of every touched, still-active
    // resource: one generation bump + one heap push each.
    for (const std::uint32_t key : touched_) {
      if (unfrozen_[key] == 0) continue;
      sat_[key] = (capacity[key] - frozen_usage_[key]) / static_cast<double>(unfrozen_[key]);
      ++gen_[key];
      res_heap_.push_back(ResEntry{sat_[key], key, gen_[key]});
      std::push_heap(res_heap_.begin(), res_heap_.end(), res_less_at_front);
    }
  }
  return stats;
}

}  // namespace remos::core
