#include "core/waterfill.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/audit.hpp"
#include "sim/thread_pool.hpp"

namespace remos::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
/// Freeze tolerance, identical to the historical solvers: a flow freezes
/// when its demand or a crossed resource's saturation level is within
/// 1e-9 of the water level.
constexpr double kFreezeEps = 1e-9;
/// Relative headroom a resource must keep over its worst-case load before
/// the partitioner may cut it. Swamps every float-accumulation error in
/// the load-bound sum (≤ nnz·2⁻⁵² relative ≈ 1e-10 even at a million
/// crossings); a borderline resource is merely left uncut, which costs
/// parallelism, never correctness.
constexpr double kCutRelMargin = 1.0 + 1e-6;

}  // namespace

WaterfillStats WaterfillSolver::solve(std::span<const double> capacity,
                                      std::span<const std::size_t> flow_offsets,
                                      std::span<const std::uint32_t> flow_resources,
                                      std::span<const double> demand,
                                      std::span<double> rates_out,
                                      const WaterfillOptions& options) {
  const std::size_t nf = demand.size();
  REMOS_CHECK(flow_offsets.size() == nf + 1, "waterfill: CSR offsets must have F+1 entries");
  REMOS_CHECK(nf == 0 || flow_offsets.front() == 0, "waterfill: CSR offsets must start at 0");
  REMOS_CHECK(nf == 0 || flow_offsets.back() == flow_resources.size(),
              "waterfill: CSR offsets must end at the resource-list size");
  REMOS_CHECK(rates_out.size() == nf, "waterfill: rates_out must have one slot per flow");

  if (nf >= options.partition_min_flows && nf > 1 &&
      build_partitions(capacity, flow_offsets, flow_resources, demand)) {
    return solve_partitioned(capacity, flow_offsets, flow_resources, demand, rates_out, options);
  }
  return solve_monolithic(capacity, flow_offsets, flow_resources, demand, rates_out, options);
}

WaterfillStats WaterfillSolver::solve_monolithic(std::span<const double> capacity,
                                                 std::span<const std::size_t> flow_offsets,
                                                 std::span<const std::uint32_t> flow_resources,
                                                 std::span<const double> demand,
                                                 std::span<double> rates_out,
                                                 const WaterfillOptions& options) {
  const std::size_t nf = demand.size();
  const std::size_t nr = capacity.size();

  WaterfillStats stats;

  // ---- per-solve state (arena reuse; no steady-state allocation) ----
  frozen_usage_.assign(nr, 0.0);
  unfrozen_.assign(nr, 0);
  sat_.assign(nr, 0.0);
  gen_.assign(nr, 0);
  touch_round_.assign(nr, 0);
  cand_round_.assign(nf, 0);
  frozen_.assign(nf, 0);
  for (std::size_t f = 0; f < nf; ++f) rates_out[f] = 0.0;
  for (const std::uint32_t key : flow_resources) {
    REMOS_CHECK(key < nr, "waterfill: resource id out of range");
    ++unfrozen_[key];
  }

  // Reverse CSR (resource -> flows), rebuilt per solve by counting sort.
  res_off_.assign(nr + 1, 0);
  for (const std::uint32_t key : flow_resources) ++res_off_[key + 1];
  for (std::size_t r = 0; r < nr; ++r) res_off_[r + 1] += res_off_[r];
  res_flows_.resize(flow_resources.size());
  res_cursor_.assign(res_off_.begin(), res_off_.end() - 1);
  for (std::size_t f = 0; f < nf; ++f) {
    for (std::size_t k = flow_offsets[f]; k < flow_offsets[f + 1]; ++k) {
      res_flows_[res_cursor_[flow_resources[k]]++] = static_cast<std::uint32_t>(f);
    }
  }

  // Saturation min-heap over active resources and demand min-heap over
  // flows. Both use lazy deletion: resource entries are invalidated by a
  // generation bump (or the resource freezing out entirely), demand
  // entries by the flow freezing.
  const auto res_less_at_front = [](const ResEntry& a, const ResEntry& b) {
    return a.sat > b.sat;
  };
  const auto dem_less_at_front = [](const DemEntry& a, const DemEntry& b) {
    return a.demand > b.demand;
  };
  res_heap_.clear();
  for (std::size_t r = 0; r < nr; ++r) {
    if (unfrozen_[r] == 0) continue;
    sat_[r] = (capacity[r] - frozen_usage_[r]) / static_cast<double>(unfrozen_[r]);
    res_heap_.push_back(ResEntry{sat_[r], static_cast<std::uint32_t>(r), 0});
  }
  std::make_heap(res_heap_.begin(), res_heap_.end(), res_less_at_front);
  dem_heap_.clear();
  for (std::size_t f = 0; f < nf; ++f) {
    dem_heap_.push_back(DemEntry{demand[f], static_cast<std::uint32_t>(f)});
  }
  std::make_heap(dem_heap_.begin(), dem_heap_.end(), dem_less_at_front);

  // ---- freezing rounds ----
  std::size_t remaining = nf;
  double level = 0.0;
  while (remaining > 0) {
    ++stats.rounds;
    const auto round = static_cast<std::uint32_t>(stats.rounds);

    // Next saturation level among resources: discard stale heap entries,
    // then the front is the exact minimum of the current levels (every
    // active resource has a current-generation entry).
    double res_min = kInf;
    while (!res_heap_.empty()) {
      const ResEntry& top = res_heap_.front();
      if (unfrozen_[top.res] == 0 || top.gen != gen_[top.res]) {
        std::pop_heap(res_heap_.begin(), res_heap_.end(), res_less_at_front);
        res_heap_.pop_back();
        continue;
      }
      res_min = top.sat;
      break;
    }
    // Next demand cap among unfrozen flows.
    double dem_min = kInf;
    while (!dem_heap_.empty()) {
      const DemEntry& top = dem_heap_.front();
      if (frozen_[top.flow] != 0) {
        std::pop_heap(dem_heap_.begin(), dem_heap_.end(), dem_less_at_front);
        dem_heap_.pop_back();
        continue;
      }
      dem_min = top.demand;
      break;
    }

    const double next_level = std::min(res_min, dem_min);
    // Only unconstrained greedy flows remain (no finite resource, no finite
    // demand). Freeze at 0 defensively, as both historical solvers did.
    if (!std::isfinite(next_level)) break;
    if (options.monotone_level) {
      level = std::max(level, next_level);
    } else {
      level = next_level;
      if (options.clamp_negative_level && level < 0.0) level = 0.0;
    }
    const double thr = level + kFreezeEps;

    // Collect this round's freezes: demand-capped flows first (they pop
    // off the demand heap for good), then every unfrozen flow crossing a
    // saturated resource. A saturated resource loses all its unfrozen
    // flows this round, so popping it off the heap is final.
    candidates_.clear();
    while (!dem_heap_.empty()) {
      const DemEntry top = dem_heap_.front();
      if (frozen_[top.flow] == 0 && !(top.demand <= thr)) break;
      std::pop_heap(dem_heap_.begin(), dem_heap_.end(), dem_less_at_front);
      dem_heap_.pop_back();
      if (frozen_[top.flow] != 0) continue;
      cand_round_[top.flow] = round;
      candidates_.push_back(top.flow);
      ++stats.demand_frozen;
    }
    while (!res_heap_.empty()) {
      const ResEntry top = res_heap_.front();
      const bool stale = unfrozen_[top.res] == 0 || top.gen != gen_[top.res];
      if (!stale && !(top.sat <= thr)) break;
      std::pop_heap(res_heap_.begin(), res_heap_.end(), res_less_at_front);
      res_heap_.pop_back();
      if (stale) continue;
      for (std::size_t k = res_off_[top.res]; k < res_off_[top.res + 1]; ++k) {
        const std::uint32_t f = res_flows_[k];
        if (frozen_[f] != 0 || cand_round_[f] == round) continue;
        cand_round_[f] = round;
        candidates_.push_back(f);
        ++stats.saturation_frozen;
      }
    }
    if (candidates_.empty()) break;  // numerical guard, as before

    // Apply in ascending flow order — the order the historical single-scan
    // solvers froze in, which fixes the float accumulation sequence of
    // every resource's frozen_usage.
    std::sort(candidates_.begin(), candidates_.end());
    touched_.clear();
    for (const std::uint32_t f : candidates_) {
      const double r = std::min(level, demand[f]);
      rates_out[f] = r;
      frozen_[f] = 1;
      --remaining;
      for (std::size_t k = flow_offsets[f]; k < flow_offsets[f + 1]; ++k) {
        const std::uint32_t key = flow_resources[k];
        frozen_usage_[key] += r;
        --unfrozen_[key];
        if (touch_round_[key] != round) {
          touch_round_[key] = round;
          touched_.push_back(key);
        }
      }
    }
    // Refresh the saturation level of every touched, still-active
    // resource: one generation bump + one heap push each.
    for (const std::uint32_t key : touched_) {
      if (unfrozen_[key] == 0) continue;
      sat_[key] = (capacity[key] - frozen_usage_[key]) / static_cast<double>(unfrozen_[key]);
      ++gen_[key];
      res_heap_.push_back(ResEntry{sat_[key], key, gen_[key]});
      std::push_heap(res_heap_.begin(), res_heap_.end(), res_less_at_front);
    }
  }
  return stats;
}

bool WaterfillSolver::build_partitions(std::span<const double> capacity,
                                       std::span<const std::size_t> flow_offsets,
                                       std::span<const std::uint32_t> flow_resources,
                                       std::span<const double> demand) {
  const std::size_t nf = demand.size();
  const std::size_t nr = capacity.size();

  // Per-flow rate upper bound: a flow can never exceed its demand cap nor
  // any crossed resource's full capacity (level ≤ every active resource's
  // saturation level ≤ its capacity).
  cut_bound_.resize(nf);
  for (std::size_t f = 0; f < nf; ++f) {
    double ub = demand[f];
    for (std::size_t k = flow_offsets[f]; k < flow_offsets[f + 1]; ++k) {
      REMOS_CHECK(flow_resources[k] < nr, "waterfill: resource id out of range");
      ub = std::min(ub, capacity[flow_resources[k]]);
    }
    cut_bound_[f] = ub;
  }

  // Worst-case load per resource, counting crossing multiplicity (each
  // crossing consumes the flow's rate once). Infinite bounds poison the
  // sum, which correctly marks the resource saturable.
  res_load_bound_.assign(nr, 0.0);
  res_uses_.assign(nr, 0);
  for (std::size_t f = 0; f < nf; ++f) {
    for (std::size_t k = flow_offsets[f]; k < flow_offsets[f + 1]; ++k) {
      res_load_bound_[flow_resources[k]] += cut_bound_[f];
      ++res_uses_[flow_resources[k]];
    }
  }

  // Cut resources that provably never saturate: even at every crossing
  // flow's upper bound the capacity keeps both a relative margin (float
  // accumulation in the bound sum) and an absolute one (the kernel's
  // freeze tolerance, once per crossing) — so no freezing round, in any
  // partition or in the monolithic solve, can ever select them.
  res_cut_.assign(nr, 0);
  for (std::size_t r = 0; r < nr; ++r) {
    if (res_uses_[r] == 0 || !std::isfinite(res_load_bound_[r])) continue;
    if (res_load_bound_[r] * kCutRelMargin < capacity[r] &&
        capacity[r] - res_load_bound_[r] >
            kFreezeEps * static_cast<double>(res_uses_[r] + 1)) {
      res_cut_[r] = 1;
    }
  }

  // Union-find over flows, joining through every uncut resource. Roots are
  // kept minimal (attach the larger root under the smaller), so a
  // component's root is its smallest flow index.
  uf_parent_.resize(nf);
  for (std::size_t f = 0; f < nf; ++f) uf_parent_[f] = static_cast<std::uint32_t>(f);
  const auto find = [this](std::uint32_t f) {
    while (uf_parent_[f] != f) {
      uf_parent_[f] = uf_parent_[uf_parent_[f]];  // path halving
      f = uf_parent_[f];
    }
    return f;
  };
  res_first_flow_.assign(nr, std::numeric_limits<std::uint32_t>::max());
  for (std::size_t f = 0; f < nf; ++f) {
    for (std::size_t k = flow_offsets[f]; k < flow_offsets[f + 1]; ++k) {
      const std::uint32_t r = flow_resources[k];
      if (res_cut_[r] != 0) continue;
      if (res_first_flow_[r] == std::numeric_limits<std::uint32_t>::max()) {
        res_first_flow_[r] = static_cast<std::uint32_t>(f);
        continue;
      }
      std::uint32_t a = find(res_first_flow_[r]);
      std::uint32_t b = find(static_cast<std::uint32_t>(f));
      if (a != b) uf_parent_[std::max(a, b)] = std::min(a, b);
    }
  }

  // Dense component ids in ascending smallest-member order.
  comp_of_flow_.resize(nf);
  comp_remap_.assign(nf, std::numeric_limits<std::uint32_t>::max());
  std::uint32_t ncomp = 0;
  for (std::size_t f = 0; f < nf; ++f) {
    const std::uint32_t root = find(static_cast<std::uint32_t>(f));
    if (comp_remap_[root] == std::numeric_limits<std::uint32_t>::max()) comp_remap_[root] = ncomp++;
    comp_of_flow_[f] = comp_remap_[root];
  }
  partition_count_ = ncomp;
  return ncomp > 1;
}

WaterfillStats WaterfillSolver::solve_partitioned(std::span<const double> capacity,
                                                  std::span<const std::size_t> flow_offsets,
                                                  std::span<const std::uint32_t> flow_resources,
                                                  std::span<const double> demand,
                                                  std::span<double> rates_out,
                                                  const WaterfillOptions& options) {
  const std::size_t nf = demand.size();
  const std::size_t nr = capacity.size();
  const std::size_t ncomp = partition_count_;

  partitions_.resize(ncomp);
  for (Partition& p : partitions_) {
    p.flow_ids.clear();
    p.offsets.clear();
    p.resources.clear();
    p.capacity.clear();
    p.demand.clear();
  }
  for (std::size_t f = 0; f < nf; ++f) partitions_[comp_of_flow_[f]].flow_ids.push_back(f);

  // Per-partition CSR with dense local resource ids. A cut resource shared
  // by several partitions is replicated with its full capacity into each —
  // it never saturates anywhere, so the replicas cannot disagree. Each
  // flow's constraint list (order and multiplicity) is preserved exactly.
  res_local_.resize(nr);
  res_owner_.assign(nr, std::numeric_limits<std::uint32_t>::max());
  for (std::uint32_t c = 0; c < ncomp; ++c) {
    Partition& p = partitions_[c];
    p.offsets.push_back(0);
    for (const std::size_t f : p.flow_ids) {
      for (std::size_t k = flow_offsets[f]; k < flow_offsets[f + 1]; ++k) {
        const std::uint32_t r = flow_resources[k];
        if (res_owner_[r] != c) {
          res_owner_[r] = c;
          res_local_[r] = static_cast<std::uint32_t>(p.capacity.size());
          p.capacity.push_back(capacity[r]);
        }
        p.resources.push_back(res_local_[r]);
      }
      p.offsets.push_back(p.resources.size());
      p.demand.push_back(demand[f]);
    }
    p.rates.assign(p.flow_ids.size(), 0.0);
  }

  // Solve the partitions, batched into contiguous component ranges so a
  // million tiny components do not become a million pool tasks. Each lane
  // owns a private sub-solver (arena reuse without sharing); partitioning
  // is disabled inside so a lane can never re-enter the pool.
  WaterfillOptions sub = options;
  sub.pool = nullptr;
  sub.partition_min_flows = std::numeric_limits<std::size_t>::max();
  const std::size_t nbatch =
      options.pool != nullptr
          ? std::min(ncomp, std::max<std::size_t>(1, 4 * options.pool->worker_count()))
          : 1;
  sub_solvers_.resize(nbatch);
  const auto solve_range = [&](std::size_t batch, std::size_t begin, std::size_t end) {
    for (std::size_t c = begin; c < end; ++c) {
      Partition& p = partitions_[c];
      p.stats = sub_solvers_[batch].solve(p.capacity, p.offsets, p.resources, p.demand, p.rates,
                                          sub);
    }
  };
  if (options.pool != nullptr && nbatch > 1) {
    // remos-analyze: allow(concurrency): FlowEngine::mu_ (5) is deliberately held across this dispatch; ThreadPool::mu_ is order 10 and lanes take no locks, so the nesting is strictly increasing and lanes cannot block on mu_.
    options.pool->parallel_ranges(ncomp, nbatch, solve_range);  // remos-analyze: allow(hotpath): opt-in parallel dispatch above partition_min_flows — the caller explicitly traded blocking on pool lanes for wall-clock speedup; results stay bit-identical
  } else {
    solve_range(0, 0, ncomp);
  }

  // Deterministic merge: ascending component order, ascending flow ids
  // within each (every flow written exactly once — partitions are a
  // disjoint cover).
  WaterfillStats stats;
  stats.partitions = ncomp;
  std::size_t merged = 0;
  for (const Partition& p : partitions_) {
    stats.rounds += p.stats.rounds;
    stats.demand_frozen += p.stats.demand_frozen;
    stats.saturation_frozen += p.stats.saturation_frozen;
    for (std::size_t i = 0; i < p.flow_ids.size(); ++i) rates_out[p.flow_ids[i]] = p.rates[i];
    merged += p.flow_ids.size();
  }
  REMOS_CHECK(merged == nf, "waterfill: partitions must cover every flow exactly once");
  return stats;
}

}  // namespace remos::core
