// Wireless Collector — the paper's §6.2 work-in-progress ("a collector for
// wireless LANs (802.11) is under development ... improving our existing
// collectors to support mobile hosts").
//
// Model: each 802.11 access point is a shared medium (a hub in the network
// model) hanging off the wired distribution switch; stations re-associate
// by moving between APs. The collector tracks, via periodic Bridge-MIB
// style association polls of the distribution switches plus its AP
// configuration:
//   * which AP each station is associated with (and handoff events),
//   * per-AP load (station count) and the shared medium's capacity,
//   * the bandwidth a station can expect: the AP's shared capacity split
//     max-min among its associated stations.
// Topology responses represent each AP as a virtual switch annotated with
// the shared capacity, exactly how the SNMP Collector renders shared
// Ethernets.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/collector.hpp"
#include "net/topology.hpp"
#include "sim/engine.hpp"

namespace remos::core {

struct WirelessCollectorConfig {
  std::string name = "wireless-collector";
  /// Prefixes this collector reports on (the wireless subnet).
  std::vector<net::Ipv4Prefix> domain;
  /// How often station associations are re-polled.
  double association_poll_s = 5.0;
  /// Processing latency charged per query (association table lookups).
  double per_station_cost_s = 0.001;
};

class WirelessCollector final : public Collector {
 public:
  /// `aps`: the hub nodes acting as access points. The collector reads
  /// association ground truth from the network model the way the real one
  /// reads basestation association tables.
  WirelessCollector(sim::Engine& engine, const net::Network& net, std::vector<net::NodeId> aps,
                    WirelessCollectorConfig config);
  ~WirelessCollector() override;
  WirelessCollector(const WirelessCollector&) = delete;
  WirelessCollector& operator=(const WirelessCollector&) = delete;

  [[nodiscard]] std::string name() const override { return config_.name; }
  [[nodiscard]] std::vector<net::Ipv4Prefix> responsibility() const override {
    return config_.domain;
  }
  CollectorResponse query(const std::vector<net::Ipv4Address>& nodes) override;

  /// AP a station is currently associated with; kNone when unknown.
  [[nodiscard]] net::NodeId association_of(net::Ipv4Address station) const;
  /// Stations currently associated with an AP.
  [[nodiscard]] std::size_t station_count(net::NodeId ap) const;
  /// Expected per-station bandwidth at the station's AP (shared capacity /
  /// association count); nullopt for unknown stations.
  [[nodiscard]] std::optional<double> expected_bandwidth(net::Ipv4Address station) const;

  /// Handoffs observed by the periodic association poll.
  [[nodiscard]] std::uint64_t handoff_count() const { return handoffs_; }
  /// Re-poll associations once (the periodic task body; exposed for tests).
  /// Returns the number of stations that moved.
  std::size_t poll_associations();

 private:
  [[nodiscard]] net::NodeId current_ap(net::NodeId station) const;

  sim::Engine& engine_;
  const net::Network& net_;
  std::vector<net::NodeId> aps_;
  WirelessCollectorConfig config_;
  std::map<net::NodeId, net::NodeId> association_;  // station -> AP
  sim::TaskId poll_task_ = 0;
  std::uint64_t handoffs_ = 0;
};

}  // namespace remos::core
