// Wire protocols between Remos components.
//
// Two generations, both from the paper:
//  * ASCII — "the Modeler ... communicates with the Collector over a TCP
//    socket, using a simple ASCII protocol. Because currently only
//    topologies are exchanged", it cannot transfer measurement histories.
//  * XML over HTTP — the successor (§6.2): richer payloads, and crucially
//    the ability "to send an entire history of network measurements to the
//    RPS subsystem for prediction purposes".
//
// Serialization is transport-agnostic; remote.hpp pairs these with a
// request/response transport.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "sim/stats.hpp"

namespace remos::core {

enum class ProtocolKind { kAscii, kXml };

// ---- ASCII protocol (queries + topology responses only) ----

[[nodiscard]] std::string ascii_encode_query(const std::vector<net::Ipv4Address>& nodes);
[[nodiscard]] std::optional<std::vector<net::Ipv4Address>> ascii_decode_query(
    const std::string& wire);
[[nodiscard]] std::string ascii_encode_response(const CollectorResponse& response);
[[nodiscard]] std::optional<CollectorResponse> ascii_decode_response(const std::string& wire);

// ---- XML protocol (queries, responses, measurement histories) ----

[[nodiscard]] std::string xml_encode_query(const std::vector<net::Ipv4Address>& nodes);
[[nodiscard]] std::optional<std::vector<net::Ipv4Address>> xml_decode_query(
    const std::string& wire);
[[nodiscard]] std::string xml_encode_response(const CollectorResponse& response);
[[nodiscard]] std::optional<CollectorResponse> xml_decode_response(const std::string& wire);

[[nodiscard]] std::string xml_encode_history_request(const std::string& resource_id);
[[nodiscard]] std::optional<std::string> xml_decode_history_request(const std::string& wire);
[[nodiscard]] std::string xml_encode_history(const std::string& resource_id,
                                             const sim::MeasurementHistory& history);
/// Returns (resource id, samples); nullopt on malformed input.
[[nodiscard]] std::optional<std::pair<std::string, std::vector<sim::Sample>>> xml_decode_history(
    const std::string& wire);

// ---- HTTP-style framing for the XML protocol ----

/// "POST <path> HTTP/1.0" + Content-Length framing around an XML body.
[[nodiscard]] std::string http_frame(const std::string& path, const std::string& body);
/// Returns (path, body); nullopt on malformed framing.
[[nodiscard]] std::optional<std::pair<std::string, std::string>> http_unframe(
    const std::string& wire);

}  // namespace remos::core
