// SNMP Collector: "the basic collector upon which Remos relies for most of
// its network information."
//
// Responsibilities, mirroring §3.1.1:
//  * topology discovery — follow routes hop-to-hop from the routers' SNMP
//    route tables between the nodes of a query, caching discovered routes;
//  * link capacity — ifSpeed queries along discovered paths;
//  * dynamic monitoring — once a component is discovered it is polled
//    periodically (default every 5 s) by differencing octet counters, and a
//    measurement history is kept per link for prediction;
//  * virtual topology — nodes on shared Ethernets or behind inaccessible
//    devices are joined through virtual switches;
//  * concurrency — router queries are issued in parallel lanes, modeling
//    the Java-threads implementation.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/bridge_collector.hpp"
#include "core/collector.hpp"
#include "sim/engine.hpp"
#include "snmp/client.hpp"

namespace remos::core {

struct SnmpCollectorConfig {
  std::string name = "snmp-collector";
  /// The IP domain this collector monitors (its directory entry).
  std::vector<net::Ipv4Prefix> domain;
  std::string community = "public";
  /// Octet-counter polling period; "By default, the utilization is
  /// monitored every five seconds, although this is a configurable
  /// parameter."
  double poll_interval_s = 5.0;
  /// Issue SNMP requests to distinct agents in parallel lanes.
  bool parallel_queries = true;
  /// Use SNMPv2 GetBulk for route-table walks.
  bool use_bulk = false;
  /// Route/path caching (ablation knob; the paper's Fig 3 shows >=3x).
  bool cache_enabled = true;
  /// Naive pairwise discovery: follow the route between *every pair* of
  /// query nodes — the paper's "worst case cost of a cold cache query is
  /// O(N^2)". Off by default: the optimized star discovery is one of the
  /// "number of optimizations that reduce the cost, especially for large
  /// N" the paper implemented.
  bool pairwise_discovery = false;
  /// History ring size per monitored direction.
  std::size_t history_capacity = 4096;
  /// Local processing cost charged per edge assembled into a response
  /// (cache lookup + marshaling). Keeps warm-cache query time O(N) as the
  /// paper's Fig 3 observes, instead of free.
  double per_edge_processing_s = 0.002;
  /// Processing cost charged per hop when a path is discovered for the
  /// first time (route following + bookkeeping) — even when the hops come
  /// from the Bridge Collector's database rather than fresh SNMP walks.
  double per_hop_discovery_s = 0.001;

  // --- fault tolerance (§6.2: agents time out, drop requests, rotate
  // --- credentials; the collector must degrade and then recover) ---
  /// How long a failed agent sits in quarantine before the collector
  /// re-probes it (on the next query or poll pass touching it). During
  /// quarantine the agent is skipped fail-fast — no timeout storms — and
  /// its connectivity renders as a virtual switch.
  double quarantine_s = 30.0;
  /// Consecutive fully-retried request failures that trigger quarantine.
  int quarantine_after_failures = 1;
  /// TTL-based invalidation so recovered agents get re-walked instead of
  /// served stale data forever. <= 0 disables expiry for that cache.
  double route_table_ttl_s = 600.0;
  double speed_cache_ttl_s = 600.0;
  double path_cache_ttl_s = 600.0;

  /// Nodes to discover and begin monitoring at startup — the paper's
  /// "logical extension ... to configure it to begin monitoring specific
  /// resources at startup, for use in a computational center, etc."
  std::vector<net::Ipv4Address> warm_start_nodes;

  /// Static per-subnet configuration (the collector's config file).
  struct SubnetInfo {
    net::Ipv4Prefix prefix;
    net::Ipv4Address gateway{};       // zero when the subnet has no router
    BridgeCollector* bridge = nullptr;  // switched subnets
    bool shared = false;              // hub/shared-Ethernet subnet
    double shared_capacity_bps = 0.0;
  };
  std::vector<SubnetInfo> subnets;
};

class SnmpCollector final : public Collector {
 public:
  SnmpCollector(sim::Engine& engine, snmp::AgentRegistry& registry, SnmpCollectorConfig config);
  ~SnmpCollector() override;
  SnmpCollector(const SnmpCollector&) = delete;
  SnmpCollector& operator=(const SnmpCollector&) = delete;

  [[nodiscard]] std::string name() const override { return config_.name; }
  [[nodiscard]] std::vector<net::Ipv4Prefix> responsibility() const override {
    return config_.domain;
  }
  CollectorResponse query(const std::vector<net::Ipv4Address>& nodes) override;
  [[nodiscard]] const sim::MeasurementHistory* history(const std::string& resource_id) const override;

  /// Run one monitoring pass immediately (tests/benches).
  void poll_now();

  /// Drop every cache (cold-start state for scalability experiments).
  void clear_caches();

  /// Cache/staleness audit (kCache): every stored timestamp — path-cache
  /// build times, route-table and speed fetch times, monitor samples,
  /// quarantine expiries — is consistent with the engine's virtual clock
  /// (TTLs never move backwards). Runs after every query(); callable
  /// directly from tests. No-op unless built with -DREMOS_AUDIT=ON.
  void audit_caches() const;

  // Introspection.
  [[nodiscard]] std::size_t monitored_interface_count() const { return monitored_.size(); }
  [[nodiscard]] std::size_t known_edge_count() const { return edges_.size(); }
  [[nodiscard]] std::size_t path_cache_size() const { return path_cache_.size(); }
  [[nodiscard]] std::size_t route_table_cache_size() const { return route_tables_.size(); }
  [[nodiscard]] std::uint64_t snmp_request_count() const { return client_.request_count(); }
  [[nodiscard]] double snmp_time_consumed_s() const { return client_.consumed_s(); }
  [[nodiscard]] const SnmpCollectorConfig& config() const { return config_; }
  /// Paths actually constructed (path-cache misses) — the unit Fig 3's
  /// discovery cost scales with; star discovery constructs N-1 per subnet.
  [[nodiscard]] std::uint64_t path_discovery_count() const { return path_discoveries_; }
  /// Agents currently in quarantine (failed, awaiting re-probe).
  [[nodiscard]] std::size_t quarantined_agent_count() const { return quarantine_.size(); }
  [[nodiscard]] bool agent_in_quarantine(net::Ipv4Address agent) const;
  /// Per-agent request health as seen by this collector's client.
  [[nodiscard]] const snmp::AgentHealth* agent_health(net::Ipv4Address agent) const {
    return client_.health(agent);
  }
  /// Latest utilization (bps, a->b / b->a) of a known edge; nullopt if unknown.
  [[nodiscard]] std::optional<std::pair<double, double>> edge_utilization(
      const std::string& edge_id) const;

 private:
  struct RouteEntry {
    net::Ipv4Prefix dest;
    net::Ipv4Address next_hop{};
    std::uint32_t out_ifindex = 0;
  };
  struct MonitorPoint {
    net::Ipv4Address agent{};
    std::uint32_t ifindex = 0;
    friend auto operator<=>(const MonitorPoint&, const MonitorPoint&) = default;
  };
  struct MonitoredIf {
    double capacity_bps = 0.0;
    std::uint32_t last_in = 0, last_out = 0;
    sim::Time last_sample = -1.0;
    double util_in_bps = 0.0, util_out_bps = 0.0;
    std::unique_ptr<sim::MeasurementHistory> hist_in, hist_out;
  };
  struct KnownEdge {
    std::string id;
    VNode a, b;
    double capacity_bps = 0.0;
    double latency_s = 0.0;
    /// Where utilization is read; empty agent = unmonitorable (virtual).
    MonitorPoint monitor{};
    /// True when the monitoring device is endpoint `a` (out_octets = a->b).
    bool monitor_on_a = true;
  };

  // --- discovery ---
  /// Discover (or fetch from cache) the path between two in-domain nodes;
  /// returns the edge ids, appending newly found edges to edges_.
  std::vector<std::string> discover_pair(net::Ipv4Address src, net::Ipv4Address dst,
                                         bool* complete);
  std::vector<std::string> discover_l2(const SnmpCollectorConfig::SubnetInfo& subnet,
                                       net::Ipv4Address src, net::Ipv4Address dst,
                                       bool* complete);
  /// Non-bridge subnet hop between two attached devices.
  std::vector<std::string> direct_subnet_edges(const SnmpCollectorConfig::SubnetInfo& subnet,
                                               const VNode& a, const VNode& b);
  const SnmpCollectorConfig::SubnetInfo* subnet_of(net::Ipv4Address addr) const;
  std::optional<RouteEntry> route_lookup(net::Ipv4Address router, net::Ipv4Address dst,
                                         bool* agent_ok);
  double interface_speed(net::Ipv4Address agent, std::uint32_t ifindex);
  void ensure_monitored(const MonitorPoint& point, double capacity_bps);
  void add_edge(KnownEdge edge);

  // --- fault handling ---
  /// True while `agent` is quarantined; erases (and returns false for)
  /// entries whose expiry has passed, which is what triggers the re-probe.
  bool agent_quarantined(net::Ipv4Address agent);
  /// Record a failed exchange; quarantines once the client's consecutive
  /// failure count reaches the configured threshold.
  void note_agent_failure(net::Ipv4Address agent);
  void quarantine_agent(net::Ipv4Address agent);
  [[nodiscard]] bool cache_expired(sim::Time stored_at, double ttl_s) const {
    return ttl_s > 0.0 && engine_.now() - stored_at > ttl_s;
  }
  VNode node_descriptor(net::Ipv4Address addr) const;
  VNode label_to_vnode(const std::string& label, net::Ipv4Address src, net::Ipv4Address dst,
                       std::uint64_t src_mac, std::uint64_t dst_mac) const;

  // --- monitoring ---
  void sample_interface(const MonitorPoint& point, MonitoredIf& m);
  void poll_pass();

  sim::Engine& engine_;
  SnmpCollectorConfig config_;
  snmp::SnmpClient client_;
  sim::TaskId poll_task_ = 0;

  struct CachedPath {
    std::vector<std::string> edge_ids;
    sim::Time built_at = 0.0;
  };
  struct CachedRouteTable {
    std::vector<RouteEntry> entries;
    sim::Time fetched_at = 0.0;
  };
  struct CachedSpeed {
    double bps = 0.0;
    sim::Time fetched_at = 0.0;
  };

  std::map<std::string, KnownEdge> edges_;
  std::map<MonitorPoint, MonitoredIf> monitored_;
  std::map<std::pair<net::Ipv4Address, net::Ipv4Address>, CachedPath> path_cache_;
  std::map<net::Ipv4Address, CachedRouteTable> route_tables_;
  std::map<MonitorPoint, CachedSpeed> speed_cache_;
  /// Failed agents and when their quarantine expires. Replaces the old
  /// permanent dead-agent set: expiry forces a re-probe, so recovered
  /// agents rejoin the topology instead of staying dark forever.
  std::map<net::Ipv4Address, sim::Time> quarantine_;
  /// Set while the current discover_pair() had to degrade (quarantined or
  /// unreachable device, missing speed) — degraded paths are never cached,
  /// so every later query re-probes instead of serving dark topology.
  bool discovery_degraded_ = false;
  std::uint64_t path_discoveries_ = 0;
  std::unordered_map<const BridgeCollector*, std::uint64_t> bridge_versions_;
};

}  // namespace remos::core
