#include "core/bridge_collector.hpp"

#include <algorithm>
#include <cstdio>
#include <set>

#include "core/audit.hpp"
#include "core/obs.hpp"
#include "snmp/oids.hpp"

namespace remos::core {
namespace {

std::string switch_label(net::Ipv4Address addr) { return "sw@" + addr.to_string(); }

std::string mac_label(std::uint64_t mac) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%012llx", static_cast<unsigned long long>(mac));
  return std::string("mac:") + buf;
}

}  // namespace

BridgeCollector::BridgeCollector(sim::Engine& engine, snmp::AgentRegistry& registry,
                                 BridgeCollectorConfig config)
    : engine_(engine), config_(std::move(config)), client_(registry) {}

BridgeCollector::~BridgeCollector() {
  if (monitor_task_ != 0) engine_.cancel_task(monitor_task_);
}

double BridgeCollector::walk_switch(SwitchData& data) {
  auto walk = [&](const snmp::Oid& subtree) {
    return config_.use_bulk ? client_.walk_bulk(data.addr, config_.community, subtree)
                            : client_.walk(data.addr, config_.community, subtree);
  };
  return client_.metered([&] {
    // dot1dTpFdbPort: mac -> bridge port.
    for (const snmp::VarBind& vb : walk(snmp::oids::kDot1dTpFdbPort)) {
      const snmp::Oid index = vb.oid.suffix_after(snmp::oids::kDot1dTpFdbPort);
      const std::uint64_t mac = snmp::oids::mac_from_index(index);
      if (const auto* port = std::get_if<std::int64_t>(&vb.value)) {
        data.fdb[mac] = static_cast<std::uint32_t>(*port);
      }
    }
    // ifSpeed: port capacities.
    for (const snmp::VarBind& vb : walk(snmp::oids::kIfSpeed)) {
      const snmp::Oid index = vb.oid.suffix_after(snmp::oids::kIfSpeed);
      if (index.size() != 1) continue;
      if (const auto* speed = std::get_if<snmp::Gauge32>(&vb.value)) {
        data.port_speed[index[0]] = static_cast<double>(speed->value);
      }
    }
  });
}

double BridgeCollector::startup() {
  auto sp = obs::span("bridge_collector.startup");
  sp.attr("switches", config_.switches.size());
  sim::metrics().counter("core.bridge_collector.startups_total").inc();
  const double before = client_.consumed_s();
  switches_.clear();
  entities_.clear();
  edges_.clear();
  endpoint_entity_.clear();
  trunk_ports_.clear();
  for (net::Ipv4Address addr : config_.switches) {
    SwitchData data;
    data.addr = addr;
    walk_switch(data);
    switches_.push_back(std::move(data));
  }
  infer_topology();
  started_ = true;
  if (config_.location_check_interval_s > 0 && monitor_task_ == 0) {
    monitor_task_ =
        engine_.every(config_.location_check_interval_s, [this] { check_locations(); });
  }
  return client_.consumed_s() - before;
}

void BridgeCollector::infer_topology() {
  // One entity per switch.
  std::vector<std::size_t> switch_entity(switches_.size());
  for (std::size_t i = 0; i < switches_.size(); ++i) {
    switch_entity[i] = entities_.size();
    entities_.push_back(Entity{Entity::Kind::kSwitch, switches_[i].addr, 0,
                               switch_label(switches_[i].addr)});
  }

  // Per-switch port -> sorted MAC set, plus the universe of endpoints.
  std::set<std::uint64_t> all_macs;
  std::vector<std::map<std::uint32_t, std::vector<std::uint64_t>>> port_sets(switches_.size());
  for (std::size_t i = 0; i < switches_.size(); ++i) {
    for (const auto& [mac, port] : switches_[i].fdb) {
      port_sets[i][port].push_back(mac);
      all_macs.insert(mac);
    }
    for (auto& [port, macs] : port_sets[i]) std::sort(macs.begin(), macs.end());
  }

  // Inter-switch links via the complete-FDB complement theorem.
  for (std::size_t i = 0; i < switches_.size(); ++i) {
    for (std::size_t j = i + 1; j < switches_.size(); ++j) {
      for (const auto& [pi, si] : port_sets[i]) {
        for (const auto& [pj, sj] : port_sets[j]) {
          if (si.size() + sj.size() != all_macs.size()) continue;
          // Disjoint + jointly exhaustive (sizes already match the union).
          std::vector<std::uint64_t> inter;
          std::set_intersection(si.begin(), si.end(), sj.begin(), sj.end(),
                                std::back_inserter(inter));
          if (!inter.empty()) continue;
          const double cap = std::min(switches_[i].port_speed.count(pi)
                                          ? switches_[i].port_speed.at(pi)
                                          : 0.0,
                                      switches_[j].port_speed.count(pj)
                                          ? switches_[j].port_speed.at(pj)
                                          : 0.0);
          Edge e;
          e.a = switch_entity[i];
          e.b = switch_entity[j];
          e.a_port = pi;
          e.b_port = pj;
          e.capacity_bps = cap;
          e.link_id = "l2:" + switches_[i].addr.to_string() + ":" + std::to_string(pi) + "-" +
                      switches_[j].addr.to_string() + ":" + std::to_string(pj);
          edges_.push_back(std::move(e));
          trunk_ports_[{switch_entity[i], pi}] = true;
          trunk_ports_[{switch_entity[j], pj}] = true;
        }
      }
    }
  }

  // Endpoint attachment: group non-trunk-port occupants per (switch, port).
  std::map<std::pair<std::size_t, std::uint32_t>, std::vector<std::uint64_t>> access;
  for (std::uint64_t mac : all_macs) {
    for (std::size_t i = 0; i < switches_.size(); ++i) {
      auto it = switches_[i].fdb.find(mac);
      if (it == switches_[i].fdb.end()) continue;
      const auto key = std::make_pair(switch_entity[i], it->second);
      if (trunk_ports_.contains(key)) continue;
      access[key].push_back(mac);
      break;  // unique access port in a tree
    }
  }
  for (const auto& [key, macs] : access) {
    const auto [sw_entity, port] = key;
    const SwitchData& sw = switches_[sw_entity];  // switch entities come first, same index
    const double cap = sw.port_speed.count(port) ? sw.port_speed.at(port) : 0.0;
    std::size_t attach_to = sw_entity;
    std::uint32_t attach_port = port;
    bool shared = false;
    if (macs.size() > 1) {
      // Several endpoints behind one access port: invisible shared medium.
      Entity cloud;
      cloud.kind = Entity::Kind::kCloud;
      cloud.label = "cloud@" + sw.addr.to_string() + ":" + std::to_string(port);
      const std::size_t cloud_idx = entities_.size();
      entities_.push_back(std::move(cloud));
      Edge up;
      up.a = sw_entity;
      up.b = cloud_idx;
      up.a_port = port;
      up.capacity_bps = cap;
      up.shared = true;
      up.link_id = "l2:" + sw.addr.to_string() + ":" + std::to_string(port) + "-cloud";
      edges_.push_back(std::move(up));
      attach_to = cloud_idx;
      attach_port = 0;
      shared = true;
    }
    for (std::uint64_t mac : macs) {
      Entity ep;
      ep.kind = Entity::Kind::kEndpoint;
      ep.mac = mac;
      ep.label = mac_label(mac);
      const std::size_t ep_idx = entities_.size();
      entities_.push_back(std::move(ep));
      endpoint_entity_[mac] = ep_idx;
      Edge e;
      e.a = attach_to;
      e.b = ep_idx;
      e.a_port = attach_port;
      e.capacity_bps = cap;
      e.shared = shared;
      e.link_id = "l2:" + mac_label(mac) + "@" + sw.addr.to_string() + ":" + std::to_string(port);
      edges_.push_back(std::move(e));
    }
  }
}

std::size_t BridgeCollector::entity_of_endpoint(std::uint64_t mac) const {
  auto it = endpoint_entity_.find(mac);
  return it == endpoint_entity_.end() ? ~std::size_t{0} : it->second;
}

std::optional<std::vector<L2PathHop>> BridgeCollector::l2_path(net::Ipv4Address src,
                                                               net::Ipv4Address dst) const {
  if (!started_ || !config_.arp) return std::nullopt;
  const auto src_mac = config_.arp(src);
  const auto dst_mac = config_.arp(dst);
  if (!src_mac || !dst_mac) return std::nullopt;
  const std::size_t from = entity_of_endpoint(*src_mac);
  const std::size_t to = entity_of_endpoint(*dst_mac);
  if (from == ~std::size_t{0} || to == ~std::size_t{0}) return std::nullopt;
  if (from == to) return std::vector<L2PathHop>{};

  // BFS over the inferred entity graph (endpoints do not forward).
  std::vector<std::vector<std::size_t>> adj(entities_.size());
  for (std::size_t ei = 0; ei < edges_.size(); ++ei) {
    adj[edges_[ei].a].push_back(ei);
    adj[edges_[ei].b].push_back(ei);
  }
  std::vector<std::size_t> via(entities_.size(), ~std::size_t{0});
  std::vector<std::size_t> prev(entities_.size(), ~std::size_t{0});
  std::vector<bool> seen(entities_.size(), false);
  std::vector<std::size_t> frontier{from};
  seen[from] = true;
  for (std::size_t head = 0; head < frontier.size(); ++head) {
    const std::size_t u = frontier[head];
    if (u == to) break;
    if (entities_[u].kind == Entity::Kind::kEndpoint && u != from) continue;
    for (std::size_t ei : adj[u]) {
      const Edge& e = edges_[ei];
      const std::size_t v = (e.a == u) ? e.b : e.a;
      if (seen[v]) continue;
      seen[v] = true;
      via[v] = ei;
      prev[v] = u;
      frontier.push_back(v);
    }
  }
  if (!seen[to]) return std::nullopt;

  std::vector<L2PathHop> hops;
  for (std::size_t cur = to; cur != from; cur = prev[cur]) {
    const Edge& e = edges_[via[cur]];
    const std::size_t hop_from = prev[cur];  // traversal direction
    L2PathHop hop;
    hop.capacity_bps = e.capacity_bps;
    hop.link_id = e.link_id;
    hop.shared_medium = e.shared;
    hop.from_label = entities_[hop_from].label;
    hop.to_label = entities_[cur].label;
    // Monitor at a switch side when one exists (clouds have none).
    if (entities_[e.a].kind == Entity::Kind::kSwitch) {
      hop.agent = entities_[e.a].sw_addr;
      hop.port = e.a_port;
      hop.agent_on_from_side = (e.a == hop_from);
    } else if (entities_[e.b].kind == Entity::Kind::kSwitch) {
      hop.agent = entities_[e.b].sw_addr;
      hop.port = e.b_port;
      hop.agent_on_from_side = (e.b == hop_from);
    }
    hops.push_back(std::move(hop));
  }
  std::reverse(hops.begin(), hops.end());
  return hops;
}

std::optional<std::pair<net::Ipv4Address, std::uint32_t>> BridgeCollector::location_of(
    net::Ipv4Address endpoint) const {
  if (!started_ || !config_.arp) return std::nullopt;
  const auto mac = config_.arp(endpoint);
  if (!mac) return std::nullopt;
  const std::size_t ep = entity_of_endpoint(*mac);
  if (ep == ~std::size_t{0}) return std::nullopt;
  for (const Edge& e : edges_) {
    if (e.a != ep && e.b != ep) continue;
    const std::size_t other = (e.a == ep) ? e.b : e.a;
    if (entities_[other].kind == Entity::Kind::kSwitch) {
      return std::make_pair(entities_[other].sw_addr, e.a == ep ? e.b_port : e.a_port);
    }
    if (entities_[other].kind == Entity::Kind::kCloud) {
      // Report the switch port behind which the cloud hangs.
      for (const Edge& up : edges_) {
        if ((up.a == other && entities_[up.b].kind == Entity::Kind::kSwitch) ||
            (up.b == other && entities_[up.a].kind == Entity::Kind::kSwitch)) {
          const std::size_t sw = entities_[up.a].kind == Entity::Kind::kSwitch ? up.a : up.b;
          return std::make_pair(entities_[sw].sw_addr, up.a == sw ? up.a_port : up.b_port);
        }
      }
    }
  }
  return std::nullopt;
}

std::size_t BridgeCollector::check_locations() {
  if (!started_) return 0;
  std::size_t moved = 0;
  for (auto& [mac, ep_idx] : endpoint_entity_) {
    REMOS_CHECK(ep_idx < entities_.size(), "endpoint map must reference a live entity");
    // Find the endpoint's attachment edge and its recorded switch.
    std::size_t edge_idx = ~std::size_t{0};
    for (std::size_t ei = 0; ei < edges_.size(); ++ei) {
      if (edges_[ei].a == ep_idx || edges_[ei].b == ep_idx) {
        edge_idx = ei;
        break;
      }
    }
    if (edge_idx == ~std::size_t{0}) continue;
    Edge& e = edges_[edge_idx];
    const std::size_t attach = (e.a == ep_idx) ? e.b : e.a;
    if (entities_[attach].kind != Entity::Kind::kSwitch) continue;  // cloud members skipped
    const net::Ipv4Address sw_addr = entities_[attach].sw_addr;
    const std::uint32_t recorded_port = (e.a == ep_idx) ? e.b_port : e.a_port;

    // "The location of a host can be monitored merely by checking its
    // forwarding entry in the bridge to which it is connected."
    auto r = client_.get(sw_addr, config_.community,
                         snmp::oids::kDot1dTpFdbPort.concat(snmp::oids::mac_index(mac)));
    std::uint32_t current_port = 0;
    if (r.ok()) {
      if (const auto* p = std::get_if<std::int64_t>(&r.vb.value)) {
        current_port = static_cast<std::uint32_t>(*p);
      }
    }
    if (current_port == recorded_port) continue;

    // Moved (or entry vanished): re-locate by querying every bridge for
    // this MAC and applying the access-port rule against known trunks.
    for (std::size_t i = 0; i < switches_.size(); ++i) {
      auto rr = client_.get(switches_[i].addr, config_.community,
                            snmp::oids::kDot1dTpFdbPort.concat(snmp::oids::mac_index(mac)));
      if (!rr.ok()) continue;
      const auto* p = std::get_if<std::int64_t>(&rr.vb.value);
      if (p == nullptr || *p == 0) continue;
      const auto port = static_cast<std::uint32_t>(*p);
      switches_[i].fdb[mac] = port;
      if (trunk_ports_.contains({i, port})) continue;  // seen through a trunk
      // Rewire the attachment edge to the new access port.
      const std::size_t sw_entity = i;  // switch entities share switch indices
      if (e.a == ep_idx) {
        e.b = sw_entity;
        e.b_port = port;
      } else {
        e.a = sw_entity;
        e.a_port = port;
      }
      e.capacity_bps = switches_[i].port_speed.count(port) ? switches_[i].port_speed.at(port)
                                                           : e.capacity_bps;
      e.link_id = "l2:" + mac_label(mac) + "@" + switches_[i].addr.to_string() + ":" +
                  std::to_string(port);
      ++moved;
      ++moves_;
      ++version_;
      break;
    }
  }
  return moved;
}

std::size_t BridgeCollector::inter_switch_link_count() const {
  std::size_t n = 0;
  for (const Edge& e : edges_) {
    if (entities_[e.a].kind == Entity::Kind::kSwitch &&
        entities_[e.b].kind == Entity::Kind::kSwitch) {
      ++n;
    }
  }
  return n;
}

}  // namespace remos::core
