// QueryServer: lock-free Remos API serving at client-fleet scale.
//
// ROADMAP item 1: "thousands of concurrent Remos API clients against one
// Modeler". The Modeler itself is single-threaded per instance — every
// query pays a collector fetch, and a naive thread-safe wrapper would put
// one global mutex around all of it. The QueryServer splits the problem:
//
//   * refresh() — simulation thread only. Queries the collector once for
//     the whole universe, copies the measurement histories predictions
//     need, and publishes the result as an immutable QuerySnapshot via an
//     atomic shared_ptr swap (core/query_snapshot.hpp).
//   * topology_query / flow_query / predict_flow — any thread, any number
//     of threads. Load the current snapshot and answer from it with pure
//     functions; they take none of the simulation's locks.
//   * *_locked variants — the retained mutex baseline: one global lock,
//     one collector fetch per query, then the *same* pure answer
//     functions. This is the pre-snapshot cost model, kept (a) as the
//     bit-identity oracle the stress tests compare against on quiescent
//     states and (b) as the baseline the scaling bench measures. Callers
//     must hold the simulation quiescent (exactly the constraint the
//     Modeler always had: collector fetches read live Network state).
//
// Identical-query coalescing: concurrent (and repeated) flow/predict
// queries with the same parameters against the same epoch share one
// computation; followers block on the leader's shared_future and the
// result is memoized for the rest of the epoch. Admission control bounds
// the number of prediction fits in flight — excess *distinct* predict
// queries are rejected (nullopt) and counted rather than queued without
// bound.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/collector.hpp"
#include "core/maxmin.hpp"
#include "core/query_snapshot.hpp"
#include "core/types.hpp"
#include "rps/predictor.hpp"
#include "rps/shared_cache.hpp"

namespace remos::core {

struct QueryServerConfig {
  std::string name = "query-server";
  /// Collapse pure switch clusters for topology answers (Modeler default).
  bool simplify_topology = true;
  rps::ModelSpec prediction_model = rps::ModelSpec::ar(16);
  std::size_t prediction_horizon = 30;
  /// Minimum history samples before a prediction is attempted.
  std::size_t min_history = 64;
  /// Measurement samples copied per resource into each snapshot (the
  /// freshest window; fits see at most this much past).
  std::size_t history_window = 1024;
  /// Admission bound: distinct prediction fits allowed in flight at once.
  std::size_t max_fits_in_flight = 64;
  /// Optional tiered prediction cache shared across the server's fits (and
  /// possibly other servers): hot tier memoizes fitted predictions per
  /// bottleneck, warm tier seeds fits for short histories from same-shape
  /// templates. The cache is internally synchronized; it must outlive the
  /// server. nullptr (default) keeps the historical fit-per-computation
  /// behavior — and the golden transcripts — exactly.
  rps::SharedPredictionCache* prediction_cache = nullptr;
};

/// Per-tier accounting of a server's attached prediction cache (zeros when
/// no cache is attached), surfaced alongside the coalescing counters.
struct PredictionTierStats {
  std::uint64_t hot_hits = 0;
  std::uint64_t hot_misses = 0;
  std::uint64_t warm_hits = 0;
  std::uint64_t warm_misses = 0;
  std::uint64_t seeds = 0;
  std::uint64_t templates_stored = 0;
};

class QueryServer {
 public:
  /// `universe`: every address the server answers about; refresh() fetches
  /// a topology spanning all of them. Publishes the first snapshot before
  /// returning, so queries never observe an empty server.
  QueryServer(Collector& collector, std::vector<net::Ipv4Address> universe,
              QueryServerConfig config = {});
  ~QueryServer();
  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Rebuild and publish a fresh snapshot (epoch + 1). Simulation thread
  /// only — the collector fetch reads live Network state. Serializes with
  /// the *_locked baseline on serve_mu_.
  const QuerySnapshot& refresh();

  /// Current published snapshot (never null after construction).
  // remos-hot
  [[nodiscard]] QuerySnapshotPtr snapshot() const {
    return published_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t epoch() const { return snapshot()->epoch; }

  // ---- lock-free read path (any thread) ----

  [[nodiscard]] VirtualTopology topology_query(const std::vector<net::Ipv4Address>& nodes) const;
  [[nodiscard]] std::vector<FlowInfo> flow_query(const FlowQuery& query) const;
  [[nodiscard]] FlowInfo flow_info(net::Ipv4Address src, net::Ipv4Address dst) const;
  [[nodiscard]] std::optional<FlowPrediction> predict_flow(const FlowRequest& request,
                                                           std::size_t horizon = 0) const;

  // ---- retained mutex baseline (quiescent simulation only) ----

  [[nodiscard]] VirtualTopology topology_query_locked(const std::vector<net::Ipv4Address>& nodes);
  [[nodiscard]] std::vector<FlowInfo> flow_query_locked(const FlowQuery& query);
  [[nodiscard]] std::optional<FlowPrediction> predict_flow_locked(const FlowRequest& request,
                                                                  std::size_t horizon = 0);

  // ---- observability ----

  [[nodiscard]] std::uint64_t queries_total() const {
    return queries_total_.load(std::memory_order_relaxed);
  }
  /// Queries that joined (or reused) another identical query's computation
  /// within one epoch.
  [[nodiscard]] std::uint64_t coalesce_hits() const {
    return coalesce_hits_.load(std::memory_order_relaxed);
  }
  /// Distinct flow/predict computations actually run.
  [[nodiscard]] std::uint64_t computations() const {
    return computations_.load(std::memory_order_relaxed);
  }
  /// Predict queries rejected by the in-flight fit bound.
  [[nodiscard]] std::uint64_t predict_rejected() const {
    return predict_rejected_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t epochs_published() const {
    return epochs_published_.load(std::memory_order_relaxed);
  }
  /// Tier hit/miss/seed counters of the attached prediction cache; all
  /// zeros when the server runs cacheless.
  [[nodiscard]] PredictionTierStats prediction_tier_stats() const;

 private:
  struct CoalesceTables;  // defined in query_server.cpp
  class ScratchLease;     // RAII lease of a pooled MaxMinScratch

  /// Assemble a fresh snapshot from a full-universe collector fetch.
  // remos-requires(serve_mu_)
  [[nodiscard]] QuerySnapshot build_snapshot();

  // Pure answer functions over a snapshot, shared by both paths.
  // answer_topology and answer_predict are deliberately *not* remos-hot:
  // the spanned/simplified topology a topology query returns is a freshly
  // built value (its allocation is the product, not overhead), and a
  // prediction runs an admission-controlled model fit. The steady-state
  // discipline lives on snapshot() and the max-min delegation.
  [[nodiscard]] VirtualTopology answer_topology(const QuerySnapshot& snap,
                                                const std::vector<net::Ipv4Address>& nodes) const;
  // remos-hot
  [[nodiscard]] std::vector<FlowInfo> answer_flows(const QuerySnapshot& snap,
                                                   const FlowQuery& query,
                                                   MaxMinScratch& scratch) const;
  [[nodiscard]] std::optional<FlowPrediction> answer_predict(const QuerySnapshot& snap,
                                                             const FlowRequest& request,
                                                             std::size_t horizon,
                                                             MaxMinScratch& scratch) const;

  [[nodiscard]] ScratchLease lease_scratch() const;

  Collector& collector_;
  const QueryServerConfig config_;
  const std::vector<net::Ipv4Address> universe_;
  /// Stateless fit service; predict() is const and internally thread-safe.
  const rps::ClientServerPredictor predictor_;

  /// The publication slot: refresh() release-stores a fully built
  /// snapshot, readers acquire-load it (wait-free w.r.t. publication).
  std::atomic<QuerySnapshotPtr> published_;

  mutable std::atomic<std::uint64_t> queries_total_{0};
  mutable std::atomic<std::uint64_t> coalesce_hits_{0};
  mutable std::atomic<std::uint64_t> computations_{0};
  mutable std::atomic<std::uint64_t> predict_rejected_{0};
  std::atomic<std::uint64_t> epochs_published_{0};
  /// Admission-control gauge; incremented under coalesce_mu_ when a
  /// predict leader is admitted, decremented (atomically, lock-free) when
  /// its fit completes.
  mutable std::atomic<std::size_t> fits_in_flight_{0};

  /// Leaf lock for the per-epoch coalescing tables: held only for map
  /// lookups/inserts, never across a computation or a blocking wait.
  mutable std::mutex coalesce_mu_;  // remos-lock-order(21)
  std::unique_ptr<CoalesceTables> coalesce_;

  /// Leaf lock for the MaxMinScratch freelist (leaders borrow a scratch
  /// for the duration of a solve; the pool grows to peak concurrency).
  mutable std::mutex scratch_mu_;  // remos-lock-order(22)
  mutable std::vector<std::unique_ptr<MaxMinScratch>> scratch_pool_;

  /// The retained global serving lock: orders the *_locked baseline and
  /// refresh() (both fetch from the collector, which mutates its caches).
  /// Held across collector fetches that touch the metrics registry (30),
  /// so it orders strictly before it.
  mutable std::mutex serve_mu_;  // remos-lock-order(3)
  /// Dedicated arenas for the locked baseline path.
  MaxMinScratch locked_scratch_;
  std::uint64_t next_epoch_ = 1;
};

}  // namespace remos::core
