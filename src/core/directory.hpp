// Collector directory: IP-prefix -> collector resolution.
//
// "The Master Collector maintains a database of the locations of other
// collectors and the portion of the network for which they are
// responsible." The paper notes the database is "very similar to the SLP
// directory"; this is that database, with longest-prefix-match lookup.
#pragma once

#include <string>
#include <vector>

#include "core/collector.hpp"

namespace remos::core {

class CollectorDirectory {
 public:
  struct Entry {
    net::Ipv4Prefix prefix;
    Collector* collector = nullptr;
  };

  /// Register a collector under its self-reported responsibility.
  void register_collector(Collector& collector);
  /// Register a collector under explicit prefixes (overrides).
  void register_collector(Collector& collector, const std::vector<net::Ipv4Prefix>& prefixes);
  /// Remove every entry pointing at the collector.
  void unregister(const Collector& collector);

  /// Longest-prefix-match; nullptr when no collector covers the address.
  [[nodiscard]] Collector* lookup(net::Ipv4Address addr) const;

  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  std::vector<Entry> entries_;
};

}  // namespace remos::core
