// Topology rendering helpers for the release: Graphviz DOT export and a
// compact adjacency listing — what users point at `dot -Tpng` to see the
// virtual topology Remos returned.
#pragma once

#include <string>

#include "core/types.hpp"

namespace remos::core {

struct RenderOptions {
  /// Include capacity/utilization labels on edges.
  bool edge_labels = true;
  /// Graph name in the DOT preamble.
  std::string graph_name = "remos";
};

/// Graphviz DOT rendering of a virtual topology. Hosts are boxes, routers
/// diamonds, switches ellipses, virtual switches dashed ellipses.
[[nodiscard]] std::string to_dot(const VirtualTopology& topo, const RenderOptions& options = {});

/// Compact one-line-per-vertex adjacency listing.
[[nodiscard]] std::string to_adjacency_text(const VirtualTopology& topo);

}  // namespace remos::core
