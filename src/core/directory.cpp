#include "core/directory.hpp"

#include <algorithm>

#include "core/audit.hpp"

namespace remos::core {

void CollectorDirectory::register_collector(Collector& collector) {
  register_collector(collector, collector.responsibility());
}

void CollectorDirectory::register_collector(Collector& collector,
                                            const std::vector<net::Ipv4Prefix>& prefixes) {
  for (const auto& prefix : prefixes) entries_.push_back(Entry{prefix, &collector});
}

void CollectorDirectory::unregister(const Collector& collector) {
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&](const Entry& e) { return e.collector == &collector; }),
                 entries_.end());
  // A dangling entry here becomes a use-after-free at the next lookup().
  REMOS_CHECK(std::none_of(entries_.begin(), entries_.end(),
                           [&](const Entry& e) { return e.collector == &collector; }),
              "unregister must drop every entry for the collector");
}

Collector* CollectorDirectory::lookup(net::Ipv4Address addr) const {
  const Entry* best = nullptr;
  for (const Entry& e : entries_) {
    if (e.prefix.contains(addr) && (best == nullptr || e.prefix.length() > best->prefix.length())) {
      best = &e;
    }
  }
  return best == nullptr ? nullptr : best->collector;
}

}  // namespace remos::core
