// Abstract collector interface.
//
// "from an architectural view they have a single function: collect
// information and forward it on" — every concrete collector (SNMP, Bridge,
// Benchmark, Master) exposes this interface, which is also what lets a
// remote Master Collector be registered as just another collector in a
// hierarchy.
#pragma once

#include <string>
#include <vector>

#include "core/types.hpp"
#include "net/ipv4.hpp"
#include "sim/stats.hpp"

namespace remos::core {

class Collector {
 public:
  virtual ~Collector() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// IP prefixes this collector can report on (its directory entry).
  [[nodiscard]] virtual std::vector<net::Ipv4Prefix> responsibility() const = 0;

  /// Answer a query about a set of nodes: a topology spanning them,
  /// annotated with capacities and the freshest utilization measurements.
  virtual CollectorResponse query(const std::vector<net::Ipv4Address>& nodes) = 0;

  /// Measurement history for a named resource (edge id) — the data the XML
  /// protocol ships to RPS for prediction. nullptr when unknown.
  [[nodiscard]] virtual const sim::MeasurementHistory* history(const std::string& resource_id) const {
    (void)resource_id;
    return nullptr;
  }

  [[nodiscard]] bool responsible_for(net::Ipv4Address addr) const {
    for (const auto& prefix : responsibility()) {
      if (prefix.contains(addr)) return true;
    }
    return false;
  }
};

}  // namespace remos::core
