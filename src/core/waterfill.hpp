// Shared max-min water-filling kernel.
//
// Both max-min solvers in the system — the fluid simulator's ground-truth
// rate assignment (net/flows) and the Modeler's flow-query answers
// (core/maxmin) — solve the same progressive-filling problem: all unfrozen
// flows share one rising water level; a resource saturates when
// frozen_usage + level * unfrozen == capacity, freezing every unfrozen
// flow that crosses it; a flow whose demand cap is reached freezes at its
// demand. This kernel is the single implementation behind both.
//
// Performance contract (the reason this exists — see DESIGN.md
// "Performance"):
//   * The problem arrives as a flat CSR flow→resource index; the solver
//     keeps every per-solve array as a reusable arena, so steady-state
//     solves allocate nothing.
//   * Saturation candidates come from a lazy-deletion min-heap over
//     resource saturation levels (entries carry a per-resource generation;
//     stale entries are discarded on pop), and demand caps from a second
//     min-heap, so each freezing round touches only the flows and
//     resources whose residual level actually changed — O((F + nnz) log R)
//     per solve instead of O(rounds · (F + R)) full rescans.
//   * Results are bit-identical to the historical rescan solvers: levels
//     are derived from the same expressions over the same operands, and
//     freezes are applied in ascending flow order, so every float is
//     produced by the identical sequence of IEEE operations. The golden
//     observability pins cover this.
//   * Above an opt-in flow-count threshold the solver partitions the
//     problem into bottleneck-independent components (union-find over the
//     incidence, cutting at resources that can never saturate) and solves
//     them on a sim::ThreadPool — bit-identically to the partitioned
//     sequential solve regardless of worker count (see DESIGN.md
//     "Parallel partitioned solve").
//
// remos-analyze: public-header(the fluid flow engine in net/ assigns
// ground-truth rates with the same water-filling kernel the Modeler uses,
// so this header is includable from below core; matching `public
// core/waterfill.hpp` grant lives in tools/analyze/layers.txt)
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace remos::sim {
class ThreadPool;  // sim/thread_pool.hpp; only waterfill.cpp needs the def
}  // namespace remos::sim

namespace remos::core {

/// Per-caller semantic switches. The two historical solvers differ in two
/// numeric details; each caller keeps its exact behavior.
struct WaterfillOptions {
  /// Fluid engine: the water level never decreases across rounds
  /// (level = max(level, next_level)).
  bool monotone_level = false;
  /// Modeler: a (numerically) negative fresh level is clamped to zero.
  bool clamp_negative_level = false;
  /// Problems with at least this many flows are split into
  /// bottleneck-independent components before solving (default: never).
  /// Partitioned rates agree with the monolithic kernel within the 1e-9
  /// freeze tolerance (usually bit-identical; the monolithic
  /// monotone-level clamp can couple independent components by an ulp).
  /// WaterfillStats.rounds becomes the sum of per-partition rounds (still
  /// deterministic — a pure function of the problem, pinned by the
  /// scaling bench — though tied cross-component rounds count once
  /// monolithically and once per component here).
  std::size_t partition_min_flows = std::numeric_limits<std::size_t>::max();
  /// Worker pool for partitioned solves. nullptr solves the partitions
  /// sequentially on the calling thread; results are bit-identical with
  /// and without a pool and independent of its worker count (partitions
  /// write disjoint outputs and merge in ascending component order).
  sim::ThreadPool* pool = nullptr;
};

/// Deterministic per-solve work counters (exposed through
/// core.maxmin.* metrics and the waterfill scaling bench).
struct WaterfillStats {
  std::uint64_t rounds = 0;            ///< freezing rounds, incl. a final broken one
  std::uint64_t demand_frozen = 0;     ///< flows frozen at their demand cap
  std::uint64_t saturation_frozen = 0; ///< flows frozen by a saturated resource
  std::uint64_t partitions = 1;        ///< independent components solved (1 = monolithic)
};

/// Reusable water-filling solver. One instance per caller; solve() may be
/// invoked any number of times and reuses all internal arenas. An instance
/// is not safe for concurrent solves — one instance per owning component
/// (the partitioned driver keeps a private sub-solver per parallel lane,
/// so a single instance may still be handed a pool safely).
class WaterfillSolver {
 public:
  /// Solve one max-min allocation.
  ///
  ///   capacity       capacity per resource id (indexed 0..R-1). Entries
  ///                  for resources no flow references are never read.
  ///   flow_offsets   CSR offsets into `flow_resources`, size F+1.
  ///   flow_resources resource ids per flow, concatenated. Duplicate ids
  ///                  within one flow count as two constraints (matching
  ///                  the historical solvers).
  ///   demand         per-flow demand cap in bps (infinity = greedy).
  ///   rates_out      per-flow allocated rate, size F (fully overwritten).
  // remos-hot
  WaterfillStats solve(std::span<const double> capacity,
                       std::span<const std::size_t> flow_offsets,
                       std::span<const std::uint32_t> flow_resources,
                       std::span<const double> demand, std::span<double> rates_out,
                       const WaterfillOptions& options);

 private:
  /// Lazy-deletion heap entry: valid iff gen == gen_[res] and the resource
  /// still has unfrozen flows.
  struct ResEntry {
    double sat = 0.0;
    std::uint32_t res = 0;
    std::uint32_t gen = 0;
  };
  struct DemEntry {
    double demand = 0.0;
    std::uint32_t flow = 0;
  };
  /// One bottleneck-independent component's sub-problem (reusable arena).
  /// Local resource ids are dense, assigned in first-encounter order while
  /// walking the component's flows ascending — fully deterministic.
  struct Partition {
    std::vector<std::size_t> flow_ids;      // global flow indices, ascending
    std::vector<std::size_t> offsets;
    std::vector<std::uint32_t> resources;   // local resource ids
    std::vector<double> capacity;
    std::vector<double> demand;
    std::vector<double> rates;
    WaterfillStats stats;
  };

  /// The single-component progressive-filling kernel (the historical
  /// bit-exact solver).
  WaterfillStats solve_monolithic(std::span<const double> capacity,
                                  std::span<const std::size_t> flow_offsets,
                                  std::span<const std::uint32_t> flow_resources,
                                  std::span<const double> demand, std::span<double> rates_out,
                                  const WaterfillOptions& options);
  /// Find bottleneck-independent components: resources that provably can
  /// never saturate are cut from the incidence, union-find joins flows
  /// through the rest. Returns true when there is more than one component
  /// (comp_of_flow_ / partition_count_ are then valid).
  bool build_partitions(std::span<const double> capacity,
                        std::span<const std::size_t> flow_offsets,
                        std::span<const std::uint32_t> flow_resources,
                        std::span<const double> demand);
  /// Assemble per-component sub-problems, solve them (on `options.pool`
  /// when given), and merge rates/stats in ascending component order.
  WaterfillStats solve_partitioned(std::span<const double> capacity,
                                   std::span<const std::size_t> flow_offsets,
                                   std::span<const std::uint32_t> flow_resources,
                                   std::span<const double> demand, std::span<double> rates_out,
                                   const WaterfillOptions& options);

  // Scratch arenas, reused across solves (sized on first use).
  std::vector<double> frozen_usage_;       // per resource
  std::vector<std::uint32_t> unfrozen_;    // per resource
  std::vector<double> sat_;                // per resource, current level
  std::vector<std::uint32_t> gen_;         // per resource, heap generation
  std::vector<std::uint32_t> touch_round_; // per resource, round stamp
  std::vector<std::uint32_t> cand_round_;  // per flow, round stamp
  std::vector<char> frozen_;               // per flow
  std::vector<std::size_t> res_off_;       // reverse CSR offsets
  std::vector<std::uint32_t> res_flows_;   // reverse CSR values
  std::vector<std::size_t> res_cursor_;    // reverse CSR fill cursors
  std::vector<ResEntry> res_heap_;
  std::vector<DemEntry> dem_heap_;
  std::vector<std::uint32_t> candidates_;  // per-round freeze list
  std::vector<std::uint32_t> touched_;     // per-round dirty resources

  // Partitioner arenas.
  std::vector<double> cut_bound_;          // per flow: min(demand, min crossed capacity)
  std::vector<double> res_load_bound_;     // per resource: worst-case total load
  std::vector<std::uint32_t> res_uses_;    // per resource: crossing count
  std::vector<char> res_cut_;              // per resource: provably never saturates
  std::vector<std::uint32_t> uf_parent_;   // per flow, union-find
  std::vector<std::uint32_t> res_first_flow_;  // per resource, union anchor
  std::vector<std::uint32_t> comp_of_flow_;    // per flow, dense component id
  std::vector<std::uint32_t> comp_remap_;      // union-find root -> dense id
  std::size_t partition_count_ = 0;
  std::vector<std::uint32_t> res_local_;   // global resource -> partition-local id
  std::vector<std::uint32_t> res_owner_;   // partition stamp validating res_local_
  // remos-analyze: allow(concurrency): pool lanes index disjoint partition slices — parallel_ranges hands each lane a distinct [begin, end) and components are a disjoint cover.
  std::vector<Partition> partitions_;
  /// One private kernel per parallel lane (vector of incomplete self type
  /// is fine: resized only in waterfill.cpp where the type is complete).
  // remos-analyze: allow(concurrency): one private sub-solver per lane, indexed by the lane's own batch id; no element is shared across lanes.
  std::vector<WaterfillSolver> sub_solvers_;
};

}  // namespace remos::core
