// Invariant audit framework: machine-checked correctness for the collector
// hierarchy. Applications trust Remos' topology and flow answers, so a
// cache, merge, or max-min step that silently violates its invariants is
// worse than a crash — this header gives every layer cheap, compile-time
// gated checks plus deep auditors invoked at component boundaries.
//
// Two macro families:
//   REMOS_CHECK(cond, msg)            — invariant check, active in debug
//                                       builds and whenever the build was
//                                       configured with -DREMOS_AUDIT=ON
//                                       (replaces raw assert(), which
//                                       vanished in Release builds).
//   REMOS_AUDIT(category, cond, msg)  — deep audit check, active only with
//                                       -DREMOS_AUDIT=ON. Categorized so
//                                       failures are countable per subsystem.
//   REMOS_AUDIT_SEV(category, severity, cond, msg)
//                                     — same with an explicit severity:
//                                       kWarn counts + logs, kError (the
//                                       default) also throws AuditError,
//                                       kFatal aborts the process.
//
// The macro core is header-only (inline counters) so the base libraries
// (sim, net, snmp) can use it without linking remos_core; the deep auditor
// functions over core types live in audit.cpp.
//
// remos-analyze: public-header(project-wide assertion vocabulary — every
// layer asserts with REMOS_CHECK, so this header is includable from below
// core; matching `public core/audit.hpp` grant lives in
// tools/analyze/layers.txt)
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/log.hpp"

namespace remos::core::audit {

#if defined(REMOS_AUDIT_ENABLED)
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

/// True when REMOS_CHECK is compiled in (audited build OR debug build).
#if defined(REMOS_AUDIT_ENABLED) || !defined(NDEBUG)
inline constexpr bool kCheckActive = true;
#else
inline constexpr bool kCheckActive = false;
#endif

/// Audit categories, one per subsystem invariant family.
enum class Category : std::uint8_t {
  kInvariant,    // REMOS_CHECK sites (former raw asserts)
  kTopology,     // virtual-topology graph well-formedness
  kMaxMin,       // max-min allocation feasibility/optimality
  kMib,          // OID ordering, table index consistency
  kCache,        // TTL / staleness timestamps vs. virtual time
  kSim,          // event queue / engine time monotonicity
  kConcurrency,  // thread pool & shared-state checks
};
inline constexpr std::size_t kCategoryCount = 7;

[[nodiscard]] constexpr const char* to_string(Category c) {
  switch (c) {
    case Category::kInvariant: return "invariant";
    case Category::kTopology: return "topology";
    case Category::kMaxMin: return "maxmin";
    case Category::kMib: return "mib";
    case Category::kCache: return "cache";
    case Category::kSim: return "sim";
    case Category::kConcurrency: return "concurrency";
  }
  return "?";
}

enum class Severity : std::uint8_t { kWarn, kError, kFatal };

/// Thrown on kError audit failures so tests can exercise fail paths and
/// long-running deployments can contain a bad answer to one query.
class AuditError : public std::logic_error {
 public:
  AuditError(Category category, const std::string& what)
      : std::logic_error(what), category_(category) {}
  [[nodiscard]] Category category() const { return category_; }

 private:
  Category category_;
};

namespace detail {
inline std::array<std::atomic<std::uint64_t>, kCategoryCount> counters{};
}  // namespace detail

/// Failures recorded so far for one category (process-wide).
[[nodiscard]] inline std::uint64_t failure_count(Category c) {
  return detail::counters[static_cast<std::size_t>(c)].load(std::memory_order_relaxed);
}

[[nodiscard]] inline std::uint64_t total_failures() {
  std::uint64_t sum = 0;
  for (const auto& c : detail::counters) sum += c.load(std::memory_order_relaxed);
  return sum;
}

inline void reset_counters() {
  for (auto& c : detail::counters) c.store(0, std::memory_order_relaxed);
}

/// Record one audit failure: bump the category counter, log, then act on
/// severity (kWarn: continue; kError: throw AuditError; kFatal: abort).
inline void fail(Category category, Severity severity, const std::string& message,
                 const char* file, int line) {
  detail::counters[static_cast<std::size_t>(category)].fetch_add(1, std::memory_order_relaxed);
  const std::string full = std::string(to_string(category)) + " audit failed: " + message + " [" +
                           file + ":" + std::to_string(line) + "]";
  REMOS_LOG(kWarn, "audit") << full;
  if (severity == Severity::kFatal) std::abort();
  if (severity == Severity::kError) throw AuditError(category, full);
}

}  // namespace remos::core::audit

#if defined(REMOS_AUDIT_ENABLED) || !defined(NDEBUG)
#define REMOS_CHECK(cond, msg)                                                              \
  do {                                                                                      \
    if (!(cond)) {                                                                          \
      ::remos::core::audit::fail(::remos::core::audit::Category::kInvariant,                \
                                 ::remos::core::audit::Severity::kError, (msg), __FILE__,   \
                                 __LINE__);                                                 \
    }                                                                                       \
  } while (0)
#else
// Keep the operands type-checked (and their variables "used") in builds
// where the check is compiled out.
#define REMOS_CHECK(cond, msg)        \
  do {                                \
    if (false) {                      \
      (void)(cond);                   \
      (void)(msg);                    \
    }                                 \
  } while (0)
#endif

#if defined(REMOS_AUDIT_ENABLED)
#define REMOS_AUDIT_SEV(category, severity, cond, msg)                                      \
  do {                                                                                      \
    if (!(cond)) {                                                                          \
      ::remos::core::audit::fail(::remos::core::audit::Category::category,                  \
                                 ::remos::core::audit::Severity::severity, (msg), __FILE__, \
                                 __LINE__);                                                 \
    }                                                                                       \
  } while (0)
#else
#define REMOS_AUDIT_SEV(category, severity, cond, msg) \
  do {                                                 \
    if (false) {                                       \
      (void)(cond);                                    \
      (void)(msg);                                     \
    }                                                  \
  } while (0)
#endif

#define REMOS_AUDIT(category, cond, msg) REMOS_AUDIT_SEV(category, kError, cond, msg)

namespace remos::core {

class VirtualTopology;
struct FlowRequest;
struct MaxMinResult;
struct CollectorResponse;

namespace audit {

// Deep auditors over core types (audit.cpp). Each is a no-op unless the
// build was configured with -DREMOS_AUDIT=ON; callers may still guard with
// `if constexpr (audit::kEnabled)` to skip argument setup.

/// Topology-graph audit: edge endpoints in range, no self loops, finite
/// non-negative capacities/utilizations/latencies, per-direction
/// utilization within capacity (duplex consistency, warn-level), virtual
/// switches well-formed (no address, not isolated), no duplicate
/// (a, b, id) edges. Sound after any Bridge/SNMP/Master merge.
void audit_topology(const VirtualTopology& topo);

/// Max-min audit: per directed link, sum of allocated flow rates must not
/// exceed available capacity (within epsilon); every routable flow is
/// either demand-satisfied or crosses >=1 saturated measurable link; rates
/// are finite, non-negative, and within demand.
void audit_max_min(const VirtualTopology& topo, const std::vector<FlowRequest>& requests,
                   const MaxMinResult& result);

/// Response audit: cost/staleness annotations are finite, non-negative,
/// consistent with per-edge staleness, and never exceed virtual `now`.
void audit_response(const CollectorResponse& response, double now);

/// Cache/staleness audit: a stored timestamp may never sit in the virtual
/// future (that would make TTLs and staleness move backwards vs. time).
void audit_timestamp(const char* what, double stamp, double now);

}  // namespace audit
}  // namespace remos::core
