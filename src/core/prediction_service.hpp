// RPS <-> Remos binding (§3.3).
//
// "Remos relies on RPS collecting data itself to establish the performance
// history needed to make predictions. RPS does this through a host load
// sensor and a network flow bandwidth sensor (the latter is itself a Remos
// application)." This module provides both sensors plus the client-server
// facade that predicts any collector-held resource history.
#pragma once

#include <memory>
#include <optional>

#include "core/collector.hpp"
#include "core/modeler.hpp"
#include "net/hostload.hpp"
#include "rps/predictor.hpp"
#include "rps/shared_cache.hpp"

namespace remos::core {

/// The streaming host-load prediction system: sensor -> streaming
/// predictor, sample by sample (the Fig 6 workload).
class HostLoadPredictionSystem {
 public:
  HostLoadPredictionSystem(sim::Engine& engine, sim::Rng rng, double rate_hz,
                           rps::ModelSpec spec = rps::ModelSpec::ar(16),
                           rps::StreamingConfig config = {});

  /// Prime the predictor from synthetic history, then start streaming.
  void start(std::size_t prime_samples = 600);
  void stop();

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] const rps::Prediction& latest() const { return latest_; }
  [[nodiscard]] const rps::StreamingPredictor& predictor() const { return predictor_; }
  [[nodiscard]] const net::HostLoadSensor& sensor() const { return sensor_; }
  [[nodiscard]] std::uint64_t predictions_made() const { return predictions_; }

 private:
  sim::Rng rng_;
  net::HostLoadSensor sensor_;
  rps::StreamingPredictor predictor_;
  rps::Prediction latest_;
  std::uint64_t predictions_ = 0;
  bool running_ = false;
};

/// The network flow bandwidth sensor — "itself a Remos application":
/// periodically flow-queries the Modeler for one src/dst pair, records the
/// available bandwidth, and streams it into an attached predictor.
class FlowBandwidthSensor {
 public:
  FlowBandwidthSensor(sim::Engine& engine, Modeler& modeler, net::Ipv4Address src,
                      net::Ipv4Address dst, double interval_s,
                      rps::ModelSpec spec = rps::ModelSpec::ar(16),
                      std::size_t prime_after = 64);
  ~FlowBandwidthSensor();
  FlowBandwidthSensor(const FlowBandwidthSensor&) = delete;
  FlowBandwidthSensor& operator=(const FlowBandwidthSensor&) = delete;

  void start();
  void stop();

  [[nodiscard]] const sim::MeasurementHistory& history() const { return history_; }
  /// Latest streamed prediction; nullopt until the predictor primes.
  [[nodiscard]] std::optional<rps::Prediction> latest_prediction() const;

 private:
  void sample();

  sim::Engine& engine_;
  Modeler& modeler_;
  net::Ipv4Address src_, dst_;
  double interval_s_;
  std::size_t prime_after_;
  rps::StreamingPredictor predictor_;
  sim::MeasurementHistory history_{1 << 14};
  std::optional<rps::Prediction> latest_;
  sim::TaskId task_ = 0;
};

/// Client-server prediction over collector-held measurement histories.
class PredictionService {
 public:
  explicit PredictionService(Collector& collector,
                             rps::ModelSpec default_spec = rps::ModelSpec::ar(16));

  /// Share a prediction cache (nullptr detaches). Successful predictions
  /// are cached keyed by (resource, horizon, model); failures (missing or
  /// too-short history) are never cached, so a resource that starts
  /// reporting is picked up immediately. The cache may be shared with
  /// other services — keys embed the model, so mixed defaults don't clash.
  void set_cache(rps::SharedPredictionCache* cache) { cache_ = cache; }

  /// Predict a resource's future from the collector's history for it.
  /// nullopt when the history is missing or too short for the model.
  [[nodiscard]] std::optional<rps::Prediction> predict_resource(
      const std::string& resource_id, std::size_t horizon,
      std::optional<rps::ModelSpec> spec = std::nullopt) const;

 private:
  Collector& collector_;
  rps::ModelSpec default_spec_;
  rps::ClientServerPredictor predictor_;
  rps::SharedPredictionCache* cache_ = nullptr;
};

}  // namespace remos::core
