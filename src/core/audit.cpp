#include "core/audit.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <set>
#include <tuple>

#include "core/maxmin.hpp"
#include "core/types.hpp"

namespace remos::core::audit {
namespace {

constexpr double kRelEps = 1e-6;
/// Absolute slack (bps) for capacity sums: octet counters are integral, so
/// measured rates can overshoot the fluid-model rate by a few bytes/dt.
constexpr double kAbsEpsBps = 1024.0;

[[nodiscard]] bool finite_nonneg(double v) { return std::isfinite(v) && v >= 0.0; }

}  // namespace

void audit_topology(const VirtualTopology& topo) {
  if constexpr (!kEnabled) return;
  const auto& nodes = topo.nodes();
  const auto& edges = topo.edges();
  std::vector<std::size_t> degree(nodes.size(), 0);
  std::set<std::tuple<VNodeIndex, VNodeIndex, std::string>> seen;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const VEdge& e = edges[i];
    const std::string where = "edge #" + std::to_string(i) + " (" + e.id + ")";
    REMOS_AUDIT(kTopology, e.a < nodes.size() && e.b < nodes.size(),
                where + ": endpoint out of range");
    REMOS_AUDIT(kTopology, e.a != e.b, where + ": self loop");
    REMOS_AUDIT(kTopology, !e.id.empty(), where + ": empty edge id");
    REMOS_AUDIT(kTopology, finite_nonneg(e.capacity_bps), where + ": bad capacity");
    REMOS_AUDIT(kTopology, finite_nonneg(e.util_ab_bps) && finite_nonneg(e.util_ba_bps),
                where + ": bad utilization");
    REMOS_AUDIT(kTopology, finite_nonneg(e.latency_s), where + ": bad latency");
    REMOS_AUDIT(kTopology, finite_nonneg(e.staleness_s), where + ": bad staleness");
    // Duplex consistency: measured per-direction load fits the link. Warn
    // only — integral octet counters can overshoot the fluid rate slightly.
    if (e.capacity_bps > 0.0) {
      const double cap = e.capacity_bps * (1.0 + 1e-3) + kAbsEpsBps;
      REMOS_AUDIT_SEV(kTopology, kWarn, e.util_ab_bps <= cap && e.util_ba_bps <= cap,
                      where + ": utilization exceeds capacity");
    }
    const auto key = std::make_tuple(std::min(e.a, e.b), std::max(e.a, e.b), e.id);
    REMOS_AUDIT(kTopology, seen.insert(key).second, where + ": duplicate (a,b,id) edge");
    if (e.a < nodes.size()) ++degree[e.a];
    if (e.b < nodes.size()) ++degree[e.b];
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const VNode& n = nodes[i];
    if (n.kind != VNodeKind::kVirtualSwitch) continue;
    const std::string where = "vswitch #" + std::to_string(i) + " (" + n.name + ")";
    // A virtual switch stands in for an unmeasurable network element: it
    // never carries an address, and it only exists to connect things.
    REMOS_AUDIT(kTopology, n.addr.is_zero(), where + ": virtual switch with an address");
    REMOS_AUDIT_SEV(kTopology, kWarn, degree[i] > 0, where + ": isolated virtual switch");
  }
}

void audit_max_min(const VirtualTopology& topo, const std::vector<FlowRequest>& requests,
                   const MaxMinResult& result) {
  if constexpr (!kEnabled) return;
  REMOS_AUDIT(kMaxMin, result.flows.size() == requests.size(),
              "result size " + std::to_string(result.flows.size()) + " != request size " +
                  std::to_string(requests.size()));

  // Re-walk each flow's path to recover the directed resources it uses.
  // The walk lives in a flat thread_local CSR (keys 2*edge + dir) instead
  // of per-flow vectors: this audit runs on every Modeler allocation, and
  // the historical per-flow heap churn was a large share of query cost.
  thread_local std::vector<std::uint32_t> walk_keys;
  thread_local std::vector<std::size_t> walk_off;
  thread_local std::vector<char> has_finite;
  walk_keys.clear();
  walk_off.assign(1, 0);
  has_finite.assign(requests.size(), 0);
  for (std::size_t f = 0; f < requests.size(); ++f) {
    const FlowInfo& info = result.flows[f];
    REMOS_AUDIT(kMaxMin, std::isfinite(info.available_bps) && info.available_bps >= 0.0,
                "flow #" + std::to_string(f) + ": bad rate");
    REMOS_AUDIT(kMaxMin,
                info.available_bps <= requests[f].demand_bps * (1.0 + kRelEps) + kAbsEpsBps,
                "flow #" + std::to_string(f) + ": rate exceeds demand");
    if (!info.routable()) {
      REMOS_AUDIT(kMaxMin, info.available_bps <= 0.0,
                  "flow #" + std::to_string(f) + ": unroutable flow with nonzero rate");
      walk_off.push_back(walk_keys.size());
      continue;
    }
    const VNodeIndex src = topo.find_by_addr(requests[f].src);
    const VNodeIndex dst = topo.find_by_addr(requests[f].dst);
    REMOS_AUDIT(kMaxMin, src != kNoVNode && dst != kNoVNode,
                "flow #" + std::to_string(f) + ": routable flow with unknown endpoint");
    const auto path = topo.shortest_path(src, dst);
    REMOS_AUDIT(kMaxMin, path.has_value(),
                "flow #" + std::to_string(f) + ": routable flow with no path");
    VNodeIndex cur = src;
    for (std::size_t ei : *path) {
      const VEdge& e = topo.edges()[ei];
      const bool ab = (e.a == cur);
      walk_keys.push_back(static_cast<std::uint32_t>(ei * 2 + (ab ? 0 : 1)));
      if (e.capacity_bps > 0.0) has_finite[f] = 1;
      cur = ab ? e.b : e.a;
    }
    walk_off.push_back(walk_keys.size());
  }

  // Feasibility: per directed edge, allocated rates fit available capacity.
  // The ledger accumulates rates in ascending flow order, same as the
  // historical std::map ledger, so the sums are bit-identical.
  thread_local std::vector<double> usage;
  usage.assign(topo.edge_count() * 2, 0.0);
  for (std::size_t f = 0; f < requests.size(); ++f) {
    if (!result.flows[f].routable()) continue;
    const double rate = result.flows[f].available_bps;
    for (std::size_t k = walk_off[f]; k < walk_off[f + 1]; ++k) usage[walk_keys[k]] += rate;
  }
  for (std::size_t ei = 0; ei < topo.edge_count(); ++ei) {
    const VEdge& e = topo.edges()[ei];
    for (const bool ab : {true, false}) {
      const double avail = e.available_bps(ab);
      if (!std::isfinite(avail)) continue;  // unmeasurable (virtual) edge
      const double used = usage[ei * 2 + (ab ? 0 : 1)];
      REMOS_AUDIT(kMaxMin, used <= avail * (1.0 + kRelEps) + kAbsEpsBps,
                  "directed edge " + e.id + (ab ? "" : ":ba") + " overcommitted: " +
                      std::to_string(used) + " > " + std::to_string(avail));
    }
  }

  // Max-min optimality: an unsatisfied flow must be bottlenecked by at
  // least one saturated measurable link on its path. Flows whose path has
  // no measurable edge at all (fully virtual, e.g. everything quarantined)
  // are exempt — there is no link to saturate.
  for (std::size_t f = 0; f < requests.size(); ++f) {
    const FlowInfo& info = result.flows[f];
    if (!info.routable() || has_finite[f] == 0) continue;
    if (info.available_bps >= requests[f].demand_bps * (1.0 - kRelEps)) continue;
    bool bottlenecked = false;
    for (std::size_t k = walk_off[f]; k < walk_off[f + 1]; ++k) {
      const std::uint32_t key = walk_keys[k];
      const VEdge& e = topo.edges()[key / 2];
      const bool ab = (key % 2) == 0;
      const double avail = e.available_bps(ab);
      if (!std::isfinite(avail)) continue;
      if (usage[key] >= avail * (1.0 - kRelEps) - kAbsEpsBps) {
        bottlenecked = true;
        break;
      }
    }
    REMOS_AUDIT(kMaxMin, bottlenecked,
                "flow #" + std::to_string(f) + " is neither demand-satisfied nor bottlenecked");
  }
}

void audit_response(const CollectorResponse& response, double now) {
  if constexpr (!kEnabled) return;
  REMOS_AUDIT(kCache, finite_nonneg(response.cost_s),
              "response cost " + std::to_string(response.cost_s) + " invalid");
  REMOS_AUDIT(kCache, finite_nonneg(response.max_staleness_s),
              "response staleness " + std::to_string(response.max_staleness_s) + " invalid");
  double worst = 0.0;
  for (const VEdge& e : response.topology.edges()) {
    // A staleness annotation larger than the age of the simulation means
    // the measurement timestamp moved backwards vs. virtual time.
    REMOS_AUDIT(kCache, e.staleness_s <= now + 1e-9,
                "edge " + e.id + " staleness " + std::to_string(e.staleness_s) +
                    " exceeds virtual time " + std::to_string(now));
    worst = std::max(worst, e.staleness_s);
  }
  REMOS_AUDIT(kCache, response.max_staleness_s >= worst - 1e-9,
              "response max_staleness " + std::to_string(response.max_staleness_s) +
                  " below worst edge staleness " + std::to_string(worst));
  audit_topology(response.topology);
}

void audit_timestamp(const char* what, double stamp, double now) {
  if constexpr (!kEnabled) return;
  REMOS_AUDIT(kCache, std::isfinite(stamp) && stamp >= 0.0 && stamp <= now + 1e-9,
              std::string(what) + " timestamp " + std::to_string(stamp) +
                  " outside [0, now=" + std::to_string(now) + "]");
}

}  // namespace remos::core::audit
