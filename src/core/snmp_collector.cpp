#include "core/snmp_collector.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <set>

#include "core/audit.hpp"
#include "core/obs.hpp"
#include "snmp/oids.hpp"

namespace remos::core {
namespace {

std::string host_name(net::Ipv4Address addr) { return "host@" + addr.to_string(); }
std::string router_name(net::Ipv4Address addr) { return "rtr@" + addr.to_string(); }

}  // namespace

SnmpCollector::SnmpCollector(sim::Engine& engine, snmp::AgentRegistry& registry,
                             SnmpCollectorConfig config)
    : engine_(engine), config_(std::move(config)), client_(registry) {
  // Health records timestamp successes/failures in simulation time.
  client_.set_clock([this] { return engine_.now(); });
  if (config_.poll_interval_s > 0) {
    poll_task_ = engine_.every(config_.poll_interval_s, [this] { poll_pass(); });
  }
  // Computational-center mode: pre-discover configured resources so the
  // very first application query already hits a warm cache.
  if (!config_.warm_start_nodes.empty()) {
    (void)query(config_.warm_start_nodes);
  }
}

SnmpCollector::~SnmpCollector() {
  if (poll_task_ != 0) engine_.cancel_task(poll_task_);
}

// ---------------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------------

const SnmpCollectorConfig::SubnetInfo* SnmpCollector::subnet_of(net::Ipv4Address addr) const {
  const SnmpCollectorConfig::SubnetInfo* best = nullptr;
  for (const auto& s : config_.subnets) {
    if (s.prefix.contains(addr) && (best == nullptr || s.prefix.length() > best->prefix.length())) {
      best = &s;
    }
  }
  return best;
}

VNode SnmpCollector::node_descriptor(net::Ipv4Address addr) const {
  for (const auto& s : config_.subnets) {
    if (s.gateway == addr && !addr.is_zero()) {
      return VNode{VNodeKind::kRouter, router_name(addr), addr};
    }
  }
  return VNode{VNodeKind::kHost, host_name(addr), addr};
}

VNode SnmpCollector::label_to_vnode(const std::string& label, net::Ipv4Address src,
                                    net::Ipv4Address dst, std::uint64_t src_mac,
                                    std::uint64_t dst_mac) const {
  if (label.starts_with("sw@")) {
    const auto addr = net::Ipv4Address::parse(label.substr(3));
    return VNode{VNodeKind::kSwitch, label, addr.value_or(net::Ipv4Address{})};
  }
  if (label.starts_with("cloud@")) {
    // An invisible shared medium becomes a virtual switch in the response.
    return VNode{VNodeKind::kVirtualSwitch, "vs:" + label, {}};
  }
  if (label.starts_with("mac:")) {
    // Endpoint labels can only be the two nodes the path was asked for.
    char buf[20];
    std::snprintf(buf, sizeof buf, "mac:%012llx", static_cast<unsigned long long>(src_mac));
    if (label == buf) return node_descriptor(src);
    std::snprintf(buf, sizeof buf, "mac:%012llx", static_cast<unsigned long long>(dst_mac));
    if (label == buf) return node_descriptor(dst);
  }
  return VNode{VNodeKind::kVirtualSwitch, "vs:" + label, {}};
}

// ---------------------------------------------------------------------------
// fault handling
// ---------------------------------------------------------------------------

bool SnmpCollector::agent_quarantined(net::Ipv4Address agent) {
  auto it = quarantine_.find(agent);
  if (it == quarantine_.end()) return false;
  if (engine_.now() >= it->second) {
    // Quarantine expired: forget the entry so the next touch re-probes.
    quarantine_.erase(it);
    return false;
  }
  discovery_degraded_ = true;
  return true;
}

bool SnmpCollector::agent_in_quarantine(net::Ipv4Address agent) const {
  auto it = quarantine_.find(agent);
  return it != quarantine_.end() && engine_.now() < it->second;
}

void SnmpCollector::note_agent_failure(net::Ipv4Address agent) {
  discovery_degraded_ = true;
  const snmp::AgentHealth* h = client_.health(agent);
  if (h != nullptr &&
      h->consecutive_failures >= static_cast<std::uint64_t>(config_.quarantine_after_failures)) {
    quarantine_agent(agent);
  }
}

void SnmpCollector::quarantine_agent(net::Ipv4Address agent) {
  const bool fresh = !quarantine_.contains(agent);
  quarantine_[agent] = engine_.now() + config_.quarantine_s;
  if (!fresh) return;
  sim::metrics().counter("core.snmp_collector.quarantine_events_total").inc();
  sim::metrics().gauge("core.snmp_collector.quarantined_agents").set(
      static_cast<double>(quarantine_.size()));
  // Newly quarantined: cached paths that run through this agent describe a
  // topology we can no longer vouch for — flush them so the next query
  // rebuilds around (and later, through) the failed device.
  std::erase_if(path_cache_, [this, agent](const auto& entry) {
    for (const std::string& id : entry.second.edge_ids) {
      auto it = edges_.find(id);
      if (it == edges_.end()) continue;
      const KnownEdge& e = it->second;
      if (e.monitor.agent == agent || e.a.addr == agent || e.b.addr == agent) return true;
    }
    return false;
  });
}

double SnmpCollector::interface_speed(net::Ipv4Address agent, std::uint32_t ifindex) {
  const MonitorPoint key{agent, ifindex};
  auto it = speed_cache_.find(key);
  const bool have_cached = it != speed_cache_.end();
  if (config_.cache_enabled && have_cached && !cache_expired(it->second.fetched_at, config_.speed_cache_ttl_s)) {
    sim::metrics().counter("core.snmp_collector.speed_cache_hits_total").inc();
    return it->second.bps;
  }
  sim::metrics().counter("core.snmp_collector.speed_cache_misses_total").inc();
  if (agent_quarantined(agent)) {
    // Fail fast; a stale capacity beats a timeout storm and beats zero.
    return have_cached ? it->second.bps : 0.0;
  }
  auto r = client_.get(agent, config_.community, snmp::oids::kIfSpeed.child(ifindex));
  if (r.ok()) {
    double speed = 0.0;
    if (const auto* g = std::get_if<snmp::Gauge32>(&r.vb.value)) {
      speed = static_cast<double>(g->value);
    }
    speed_cache_[key] = CachedSpeed{speed, engine_.now()};
    return speed;
  }
  if (r.status == snmp::Status::kNoSuchName || r.status == snmp::Status::kEndOfMib) {
    // The agent answered: it genuinely has no ifSpeed object. That is a
    // definitive (cacheable) zero, unlike a timeout.
    speed_cache_[key] = CachedSpeed{0.0, engine_.now()};
    return 0.0;
  }
  // Timeout/auth failure: do NOT cache the failure as a 0.0 capacity —
  // that poisoned every later query until the cache was dropped.
  note_agent_failure(agent);
  return have_cached ? it->second.bps : 0.0;
}

void SnmpCollector::add_edge(KnownEdge edge) {
  auto it = edges_.find(edge.id);
  if (it == edges_.end()) {
    // Hoist the key: reading edge.id in the same full-expression that
    // moves `edge` trips bugprone-use-after-move.
    std::string id = edge.id;
    edges_.emplace(std::move(id), std::move(edge));
    return;
  }
  // Re-discovered edge. Don't let a degraded rebuild (no capacity, no
  // monitor — e.g. the device is dark right now) clobber an entry that
  // was measured while the device was healthy: staleness already tells
  // the caller the numbers are old.
  const KnownEdge& old = it->second;
  const bool downgrade = edge.capacity_bps <= 0.0 && edge.monitor.agent.is_zero() &&
                         (old.capacity_bps > 0.0 || !old.monitor.agent.is_zero());
  if (!downgrade) it->second = std::move(edge);
}

void SnmpCollector::ensure_monitored(const MonitorPoint& point, double capacity_bps) {
  auto [it, inserted] = monitored_.try_emplace(point);
  MonitoredIf& m = it->second;
  if (inserted) {
    m.capacity_bps = capacity_bps;
    m.hist_in = std::make_unique<sim::MeasurementHistory>(config_.history_capacity);
    m.hist_out = std::make_unique<sim::MeasurementHistory>(config_.history_capacity);
    sample_interface(point, m);  // baseline counter snapshot
  } else if (!config_.cache_enabled) {
    // Caching disabled: treat every touch as a fresh measurement.
    sample_interface(point, m);
  }
}

void SnmpCollector::sample_interface(const MonitorPoint& point, MonitoredIf& m) {
  // Quarantined agents are skipped fail-fast; their last sample ages,
  // which is exactly what the staleness annotation reports.
  if (agent_quarantined(point.agent)) return;
  auto rin = client_.get(point.agent, config_.community,
                         snmp::oids::kIfInOctets.child(point.ifindex));
  if (rin.status == snmp::Status::kTimeout || rin.status == snmp::Status::kAuthFailure) {
    note_agent_failure(point.agent);
    return;
  }
  auto rout = client_.get(point.agent, config_.community,
                          snmp::oids::kIfOutOctets.child(point.ifindex));
  if (rout.status == snmp::Status::kTimeout || rout.status == snmp::Status::kAuthFailure) {
    note_agent_failure(point.agent);
    return;
  }
  if (!rin.ok() || !rout.ok()) return;  // keep previous sample on failure
  const auto* cin = std::get_if<snmp::Counter32>(&rin.vb.value);
  const auto* cout = std::get_if<snmp::Counter32>(&rout.vb.value);
  if (cin == nullptr || cout == nullptr) return;
  const sim::Time now = engine_.now();
  if (m.last_sample >= 0.0) {
    const double dt = now - m.last_sample;
    if (dt > 0) {
      m.util_in_bps =
          static_cast<double>(snmp::counter32_delta(m.last_in, cin->value)) * 8.0 / dt;
      m.util_out_bps =
          static_cast<double>(snmp::counter32_delta(m.last_out, cout->value)) * 8.0 / dt;
      m.hist_in->add(now, m.util_in_bps);
      m.hist_out->add(now, m.util_out_bps);
    }
  }
  m.last_in = cin->value;
  m.last_out = cout->value;
  m.last_sample = now;
}

void SnmpCollector::poll_pass() {
  if (monitored_.empty()) return;
  auto sp = obs::span("snmp_collector.poll");
  sp.attr("interfaces", monitored_.size());
  sim::metrics().counter("core.snmp_collector.poll_passes_total").inc();
  if (!config_.parallel_queries) {
    for (auto& [point, m] : monitored_) sample_interface(point, m);
    return;
  }
  // One lane per agent: the threaded collector polls routers concurrently.
  std::map<net::Ipv4Address, std::vector<std::pair<const MonitorPoint*, MonitoredIf*>>> by_agent;
  for (auto& [point, m] : monitored_) by_agent[point.agent].emplace_back(&point, &m);
  std::vector<std::function<void()>> lanes;
  lanes.reserve(by_agent.size());
  for (auto& [agent, ifaces] : by_agent) {
    (void)agent;
    lanes.push_back([this, group = std::move(ifaces)] {
      for (auto [point, m] : group) sample_interface(*point, *m);
    });
  }
  client_.parallel(lanes);
}

void SnmpCollector::poll_now() { poll_pass(); }

// ---------------------------------------------------------------------------
// route tables
// ---------------------------------------------------------------------------

std::optional<SnmpCollector::RouteEntry> SnmpCollector::route_lookup(net::Ipv4Address router,
                                                                     net::Ipv4Address dst,
                                                                     bool* agent_ok) {
  *agent_ok = true;
  if (agent_quarantined(router)) {
    *agent_ok = false;
    return std::nullopt;
  }
  auto it = route_tables_.find(router);
  const bool fresh = it != route_tables_.end() && config_.cache_enabled &&
                     !cache_expired(it->second.fetched_at, config_.route_table_ttl_s);
  sim::metrics()
      .counter(fresh ? "core.snmp_collector.route_table_hits_total"
                     : "core.snmp_collector.route_table_misses_total")
      .inc();
  if (!fresh) {
    // Walk the agent's ipRouteTable columns and join rows by index.
    snmp::Status status = snmp::Status::kOk;
    std::map<snmp::Oid, RouteEntry> rows;
    auto column_walk = [&](const snmp::Oid& subtree, snmp::Status* st) {
      return config_.use_bulk ? client_.walk_bulk(router, config_.community, subtree, st)
                              : client_.walk(router, config_.community, subtree, st);
    };
    for (const auto& vb : column_walk(snmp::oids::kIpRouteNextHop, &status)) {
      const snmp::Oid idx = vb.oid.suffix_after(snmp::oids::kIpRouteNextHop);
      if (const auto* ip = std::get_if<net::Ipv4Address>(&vb.value)) rows[idx].next_hop = *ip;
    }
    if (status != snmp::Status::kOk) {
      // A failed walk is decisive evidence the agent is unreachable —
      // quarantine immediately (re-probed once the quarantine expires).
      quarantine_agent(router);
      *agent_ok = false;
      return std::nullopt;
    }
    for (const auto& vb : column_walk(snmp::oids::kIpRouteMask, &status)) {
      const snmp::Oid idx = vb.oid.suffix_after(snmp::oids::kIpRouteMask);
      auto row = rows.find(idx);
      if (row == rows.end()) continue;
      if (const auto* mask = std::get_if<net::Ipv4Address>(&vb.value)) {
        const std::uint32_t v = mask->value();
        const int len = std::countl_one(v);
        if (len < 32 && (v & (0xFFFFFFFFu >> len)) != 0) {
          // Non-contiguous netmask (e.g. 255.0.255.0): no prefix length
          // represents it. Counting leading ones used to silently install
          // a too-short prefix (/8) that hijacked longest-prefix match —
          // reject the row instead.
          rows.erase(row);
          continue;
        }
        row->second.dest = net::Ipv4Prefix(snmp::oids::ip_from_index(idx), len);
      }
    }
    for (const auto& vb : column_walk(snmp::oids::kIpRouteIfIndex, &status)) {
      const snmp::Oid idx = vb.oid.suffix_after(snmp::oids::kIpRouteIfIndex);
      auto row = rows.find(idx);
      if (row == rows.end()) continue;
      if (const auto* v = std::get_if<std::int64_t>(&vb.value)) {
        row->second.out_ifindex = static_cast<std::uint32_t>(*v);
      }
    }
    std::vector<RouteEntry> table;
    table.reserve(rows.size());
    for (auto& [idx, entry] : rows) {
      (void)idx;
      table.push_back(entry);
    }
    it = route_tables_.insert_or_assign(router, CachedRouteTable{std::move(table), engine_.now()})
             .first;
  }
  const RouteEntry* best = nullptr;
  for (const RouteEntry& e : it->second.entries) {
    if (e.dest.contains(dst) && (best == nullptr || e.dest.length() > best->dest.length())) {
      best = &e;
    }
  }
  if (best == nullptr) return std::nullopt;
  return *best;
}

// ---------------------------------------------------------------------------
// discovery
// ---------------------------------------------------------------------------

std::vector<std::string> SnmpCollector::direct_subnet_edges(
    const SnmpCollectorConfig::SubnetInfo& subnet, const VNode& a, const VNode& b) {
  // No Bridge Collector covers this subnet, so its internal structure is
  // opaque: join the endpoints through one virtual switch per subnet
  // (§3.1.1's representation for shared Ethernets and unknown segments).
  // Shared subnets annotate the virtual switch with the medium's capacity;
  // edges at SNMP-reachable routers are monitorable via the route table's
  // out-interface.
  std::vector<std::string> ids;
  const VNode vs{VNodeKind::kVirtualSwitch, "vs:" + subnet.prefix.to_string(), {}};
  for (const VNode* ep : {&a, &b}) {
    KnownEdge e;
    e.id = "vs:" + subnet.prefix.to_string() + ":" + ep->name;
    e.a = *ep;
    e.b = vs;
    if (subnet.shared) {
      e.capacity_bps = subnet.shared_capacity_bps;
    } else if (ep->kind == VNodeKind::kRouter) {
      const VNode& far = (ep == &a) ? b : a;
      bool agent_ok = true;
      auto route = route_lookup(ep->addr, far.addr, &agent_ok);
      if (agent_ok && route && route->out_ifindex != 0) {
        e.monitor = MonitorPoint{ep->addr, route->out_ifindex};
        e.monitor_on_a = true;  // edge is router -> vswitch
        e.capacity_bps = interface_speed(ep->addr, route->out_ifindex);
        ensure_monitored(e.monitor, e.capacity_bps);
      }
    }
    ids.push_back(e.id);
    add_edge(std::move(e));
  }
  return ids;
}

std::vector<std::string> SnmpCollector::discover_l2(const SnmpCollectorConfig::SubnetInfo& subnet,
                                                    net::Ipv4Address src, net::Ipv4Address dst,
                                                    bool* complete) {
  std::vector<std::string> ids;
  if (src == dst) return ids;
  const VNode a = node_descriptor(src);
  const VNode b = node_descriptor(dst);
  if (subnet.bridge == nullptr) return direct_subnet_edges(subnet, a, b);

  BridgeCollector& bridge = *subnet.bridge;
  if (!bridge.started()) {
    // Cold bridge: the level-2 database must be built first; its SNMP cost
    // is part of this query's response time.
    client_.charge(bridge.startup());
  }
  const auto src_mac = bridge.resolve_mac(src);
  const auto dst_mac = bridge.resolve_mac(dst);
  auto path = bridge.l2_path(src, dst);
  if (!path || !src_mac || !dst_mac) {
    // Unknown endpoints: connect through a virtual switch so the query
    // still completes (the paper's fallback for unmanageable pieces).
    const VNode vs{VNodeKind::kVirtualSwitch, "vs:l2:" + subnet.prefix.to_string(), {}};
    for (const VNode* ep : {&a, &b}) {
      KnownEdge e;
      e.id = "vs:l2:" + subnet.prefix.to_string() + ":" + ep->name;
      e.a = *ep;
      e.b = vs;
      ids.push_back(e.id);
      add_edge(std::move(e));
    }
    *complete = false;
    discovery_degraded_ = true;
    return ids;
  }
  for (const L2PathHop& hop : *path) {
    KnownEdge e;
    e.id = hop.link_id;
    e.a = label_to_vnode(hop.from_label, src, dst, *src_mac, *dst_mac);
    e.b = label_to_vnode(hop.to_label, src, dst, *src_mac, *dst_mac);
    e.capacity_bps = hop.capacity_bps;
    if (!hop.agent.is_zero()) {
      e.monitor = MonitorPoint{hop.agent, hop.port};
      // agent_on_from_side refers to hop direction (from->to == a->b).
      e.monitor_on_a = hop.agent_on_from_side;
      ensure_monitored(e.monitor, e.capacity_bps);
    }
    ids.push_back(e.id);
    add_edge(std::move(e));
  }
  return ids;
}

std::vector<std::string> SnmpCollector::discover_pair(net::Ipv4Address src, net::Ipv4Address dst,
                                                      bool* complete) {
  const std::pair<net::Ipv4Address, net::Ipv4Address> key = std::minmax(src, dst);
  if (config_.cache_enabled) {
    auto it = path_cache_.find(key);
    if (it != path_cache_.end()) {
      if (!cache_expired(it->second.built_at, config_.path_cache_ttl_s)) {
        sim::metrics().counter("core.snmp_collector.path_cache_hits_total").inc();
        return it->second.edge_ids;
      }
      path_cache_.erase(it);
    }
  }
  sim::metrics().counter("core.snmp_collector.path_cache_misses_total").inc();
  // Track whether this discovery had to degrade (quarantined device, dark
  // router, failed speed read). Degraded paths are served but never
  // cached, so recovery is picked up on the next query instead of TTL.
  discovery_degraded_ = false;
  bool pair_complete = true;
  ++path_discoveries_;
  std::vector<std::string> ids;
  const auto* s_sub = subnet_of(src);
  const auto* d_sub = subnet_of(dst);
  if (s_sub == nullptr || d_sub == nullptr) {
    *complete = false;
    return ids;
  }
  if (s_sub == d_sub) {
    ids = discover_l2(*s_sub, src, dst, &pair_complete);
  } else if (s_sub->gateway.is_zero()) {
    pair_complete = false;
  } else {
    // Host to its first-hop router, inside the source subnet.
    auto first = discover_l2(*s_sub, src, s_sub->gateway, &pair_complete);
    ids.insert(ids.end(), first.begin(), first.end());
    // Follow the route hop-to-hop (§3.1.1), reusing cached router tables.
    net::Ipv4Address cur = s_sub->gateway;
    bool reached = false;
    for (int guard = 0; guard < 32 && !reached; ++guard) {
      bool agent_ok = true;
      auto route = route_lookup(cur, dst, &agent_ok);
      if (!agent_ok) {
        // Inaccessible router: "when the collector discovers nodes ...
        // connected to routers it cannot access, it represents their
        // connection with a virtual switch."
        discovery_degraded_ = true;
        const VNode vs{VNodeKind::kVirtualSwitch, "vs:dark:" + cur.to_string(), {}};
        for (const VNode& ep : {node_descriptor(cur), node_descriptor(dst)}) {
          KnownEdge e;
          e.id = "vs:dark:" + cur.to_string() + ":" + ep.name;
          e.a = ep;
          e.b = vs;
          ids.push_back(e.id);
          add_edge(std::move(e));
        }
        reached = true;  // the virtual switch stands in for the rest
        break;
      }
      if (!route) break;
      if (route->next_hop.is_zero()) {
        auto last = discover_l2(*d_sub, cur, dst, &pair_complete);
        ids.insert(ids.end(), last.begin(), last.end());
        reached = true;
        break;
      }
      const auto* transit = subnet_of(route->next_hop);
      if (transit != nullptr && transit->bridge != nullptr) {
        auto mid = discover_l2(*transit, cur, route->next_hop, &pair_complete);
        ids.insert(ids.end(), mid.begin(), mid.end());
      } else {
        KnownEdge e;
        e.id = "l3:" + cur.to_string() + ":" + std::to_string(route->out_ifindex);
        e.a = node_descriptor(cur);
        e.b = node_descriptor(route->next_hop);
        e.capacity_bps = interface_speed(cur, route->out_ifindex);
        e.monitor = MonitorPoint{cur, route->out_ifindex};
        e.monitor_on_a = true;
        ensure_monitored(e.monitor, e.capacity_bps);
        ids.push_back(e.id);
        add_edge(std::move(e));
      }
      cur = route->next_hop;
    }
    // Routing loop or table gap: the hop chain never reached `dst`. The
    // old code fell out of the guard silently and reported a partial path
    // as complete — misconfigured next hops looked like healthy answers.
    if (!reached) pair_complete = false;
  }
  // Path assembly is collector CPU spent per followed hop, even when the
  // hops came from the bridge database instead of fresh SNMP walks.
  client_.charge(config_.per_hop_discovery_s * static_cast<double>(1 + ids.size()));
  if (config_.cache_enabled && pair_complete && !discovery_degraded_) {
    path_cache_[key] = CachedPath{ids, engine_.now()};
  }
  if (!pair_complete) *complete = false;
  return ids;
}

// ---------------------------------------------------------------------------
// query
// ---------------------------------------------------------------------------

CollectorResponse SnmpCollector::query(const std::vector<net::Ipv4Address>& nodes) {
  auto sp = obs::span("snmp_collector.query");
  sp.attr("nodes", nodes.size());
  sim::metrics().counter("core.snmp_collector.queries_total").inc();
  CollectorResponse resp;
  const double before = client_.consumed_s();

  // Invalidate cached paths when a bridge saw hosts move.
  for (const auto& s : config_.subnets) {
    if (s.bridge == nullptr) continue;
    auto [it, inserted] = bridge_versions_.try_emplace(s.bridge, s.bridge->topology_version());
    if (!inserted && it->second != s.bridge->topology_version()) {
      path_cache_.clear();
      it->second = s.bridge->topology_version();
    }
  }

  bool complete = true;
  // Group query nodes by subnet.
  std::map<const SnmpCollectorConfig::SubnetInfo*, std::vector<net::Ipv4Address>> groups;
  for (net::Ipv4Address addr : nodes) {
    const auto* sub = subnet_of(addr);
    if (sub == nullptr) {
      complete = false;
      continue;
    }
    groups[sub].push_back(addr);
  }

  std::vector<std::string> ids;
  auto append = [&ids](std::vector<std::string> more) {
    ids.insert(ids.end(), more.begin(), more.end());
  };
  // Intra-subnet discovery. Default: star through the gateway (or the
  // first node) — the optimization that keeps large-N LAN queries near
  // O(N) instead of the naive O(N^2) pairwise walk. The pairwise mode
  // reproduces the paper's stated worst case for ablation.
  for (auto& [sub, members] : groups) {
    if (config_.pairwise_discovery) {
      for (std::size_t i = 0; i < members.size(); ++i) {
        for (std::size_t j = i + 1; j < members.size(); ++j) {
          append(discover_pair(members[i], members[j], &complete));
        }
      }
      continue;
    }
    // Star through the reference node. When the reference is the gateway
    // (multi-subnet queries) the loop above already discovered every
    // member's leg to it — the old extra member->gateway pass re-ran
    // discover_pair(members.front(), gateway) redundantly, costing one
    // spurious discovery per subnet on cold caches.
    const net::Ipv4Address ref =
        (!sub->gateway.is_zero() && groups.size() > 1) ? sub->gateway : members.front();
    for (net::Ipv4Address addr : members) {
      if (addr != ref) append(discover_pair(addr, ref, &complete));
    }
  }
  // Inter-subnet: one representative pair per subnet pair.
  for (auto it1 = groups.begin(); it1 != groups.end(); ++it1) {
    for (auto it2 = std::next(it1); it2 != groups.end(); ++it2) {
      append(discover_pair(it1->second.front(), it2->second.front(), &complete));
    }
  }

  // Assemble the response topology from the discovered edges.
  std::set<std::string> unique_ids(ids.begin(), ids.end());
  for (const std::string& id : unique_ids) {
    auto it = edges_.find(id);
    if (it == edges_.end()) continue;
    const KnownEdge& ke = it->second;
    const VNodeIndex ia = resp.topology.ensure_node(ke.a);
    const VNodeIndex ib = resp.topology.ensure_node(ke.b);
    VEdge ve;
    ve.a = ia;
    ve.b = ib;
    ve.capacity_bps = ke.capacity_bps;
    ve.latency_s = ke.latency_s;
    ve.id = ke.id;
    if (!ke.monitor.agent.is_zero()) {
      auto mit = monitored_.find(ke.monitor);
      if (mit != monitored_.end()) {
        const MonitoredIf& m = mit->second;
        ve.util_ab_bps = ke.monitor_on_a ? m.util_out_bps : m.util_in_bps;
        ve.util_ba_bps = ke.monitor_on_a ? m.util_in_bps : m.util_out_bps;
        // Quality annotation: how old the measurement behind this edge is.
        // Grows while the monitoring agent is down; resets on recovery.
        if (m.last_sample >= 0.0) {
          ve.staleness_s = engine_.now() - m.last_sample;
          resp.max_staleness_s = std::max(resp.max_staleness_s, ve.staleness_s);
        }
      }
    }
    resp.topology.add_edge(std::move(ve));
  }
  // Queried nodes always appear, even when isolated.
  for (net::Ipv4Address addr : nodes) resp.topology.ensure_node(node_descriptor(addr));

  // Response assembly cost: cache reads + marshaling scale with the edges
  // reported (the warm-cache O(N) component of Fig 3).
  client_.charge(config_.per_edge_processing_s * static_cast<double>(unique_ids.size()));

  resp.cost_s = client_.consumed_s() - before;
  resp.complete = complete;
  sp.attr("edges", unique_ids.size());
  sp.attr("cost_s", resp.cost_s);
  sp.attr("complete", resp.complete);
  sim::metrics().histogram("core.snmp_collector.query_cost_s").observe(resp.cost_s);
  // Boundary audit: the response graph must be well-formed, its staleness
  // annotations consistent with virtual time, and no internal cache may
  // hold a timestamp from the future.
  audit::audit_response(resp, engine_.now());
  audit_caches();
  return resp;
}

const sim::MeasurementHistory* SnmpCollector::history(const std::string& resource_id) const {
  // Base id: utilization in the edge's a->b orientation; ":ba" suffix for
  // the reverse direction.
  std::string id = resource_id;
  bool reverse = false;
  if (id.size() > 3 && id.ends_with(":ba")) {
    reverse = true;
    id.resize(id.size() - 3);
  }
  auto it = edges_.find(id);
  if (it == edges_.end() || it->second.monitor.agent.is_zero()) return nullptr;
  auto mit = monitored_.find(it->second.monitor);
  if (mit == monitored_.end()) return nullptr;
  // When the monitoring device sits on endpoint a, its out counters carry
  // a->b traffic; otherwise its in counters do.
  const bool want_out = (it->second.monitor_on_a != reverse);
  return want_out ? mit->second.hist_out.get() : mit->second.hist_in.get();
}

std::optional<std::pair<double, double>> SnmpCollector::edge_utilization(
    const std::string& edge_id) const {
  auto it = edges_.find(edge_id);
  if (it == edges_.end() || it->second.monitor.agent.is_zero()) return std::nullopt;
  auto mit = monitored_.find(it->second.monitor);
  if (mit == monitored_.end()) return std::nullopt;
  const KnownEdge& ke = it->second;
  const MonitoredIf& m = mit->second;
  const double ab = ke.monitor_on_a ? m.util_out_bps : m.util_in_bps;
  const double ba = ke.monitor_on_a ? m.util_in_bps : m.util_out_bps;
  return std::make_pair(ab, ba);
}

// remos-analyze: allow(audit): unconditional cache drop — there is no precondition or invariant to assert here; cache health is audited by audit_caches() below.
void SnmpCollector::clear_caches() {
  edges_.clear();
  monitored_.clear();
  path_cache_.clear();
  route_tables_.clear();
  speed_cache_.clear();
  quarantine_.clear();
  bridge_versions_.clear();
}

void SnmpCollector::audit_caches() const {
  if constexpr (!audit::kEnabled) return;
  const double now = engine_.now();
  for (const auto& [key, cached] : path_cache_) {
    audit::audit_timestamp("path-cache built_at", cached.built_at, now);
  }
  for (const auto& [agent, cached] : route_tables_) {
    audit::audit_timestamp("route-table fetched_at", cached.fetched_at, now);
  }
  for (const auto& [point, cached] : speed_cache_) {
    audit::audit_timestamp("speed-cache fetched_at", cached.fetched_at, now);
  }
  for (const auto& [point, m] : monitored_) {
    if (m.last_sample >= 0.0) {  // -1 = never sampled
      audit::audit_timestamp("monitor last_sample", m.last_sample, now);
    }
  }
  // Quarantine entries hold *expiry* times: they live in the future, but
  // never further out than one full quarantine period.
  for (const auto& [agent, expiry] : quarantine_) {
    REMOS_AUDIT(kCache, std::isfinite(expiry) && expiry <= now + config_.quarantine_s + 1e-9,
                "quarantine expiry for " + agent.to_string() + " beyond one period");
  }
}

}  // namespace remos::core
