// Max-min fair flow allocation on a measured virtual topology.
//
// The Modeler answers flow queries by solving, on *measured residual
// capacities*, the same bandwidth-sharing problem the network itself solves
// for real traffic: "the Modeler also performs max-min flow calculations on
// the Collector's topologies to determine solutions to flow queries."
#pragma once

#include <vector>

#include "core/types.hpp"

namespace remos::core {

struct MaxMinResult {
  /// Per requested flow, in input order.
  std::vector<FlowInfo> flows;
};

/// Allocate max-min fair rates for the requested flows over `topo`,
/// routing each flow along its shortest path and treating each edge
/// direction's *available* bandwidth (capacity - measured utilization) as
/// its capacity. Unroutable flows get available_bps == 0 and an empty path.
[[nodiscard]] MaxMinResult max_min_allocate(const VirtualTopology& topo,
                                            const std::vector<FlowRequest>& requests);

/// Available bandwidth for a single new flow: the max-min rate it would
/// get if introduced alone (bottleneck residual capacity along the path).
[[nodiscard]] FlowInfo single_flow_info(const VirtualTopology& topo, const FlowRequest& request);

}  // namespace remos::core
