// Max-min fair flow allocation on a measured virtual topology.
//
// The Modeler answers flow queries by solving, on *measured residual
// capacities*, the same bandwidth-sharing problem the network itself solves
// for real traffic: "the Modeler also performs max-min flow calculations on
// the Collector's topologies to determine solutions to flow queries."
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"
#include "core/waterfill.hpp"

namespace remos::core {

struct MaxMinResult {
  /// Per requested flow, in input order.
  std::vector<FlowInfo> flows;
};

/// Reusable problem-assembly arenas + kernel for max_min_allocate. Owned
/// by the caller (the Modeler keeps one per instance) so ownership is
/// explicit: a scratch must not be used by two allocations concurrently,
/// but distinct scratches are fully independent — which is what lets the
/// partitioned water-filling driver run allocation work on a thread pool.
/// (The previous design hid these arenas in function-local thread_local
/// storage; under a pool that silently keyed solver state to whichever
/// worker ran the query, pinning memory per worker thread and making
/// reuse untestable.)
struct MaxMinScratch {
  /// Per-request routing scratch: path resource keys and metadata
  /// recovered before problem assembly. Lives in the scratch so
  /// steady-state queries reuse the per-flow vectors' capacity instead of
  /// reallocating them every call (the hot-path pass flagged the old
  /// function-local vector).
  struct RoutedFlow {
    std::vector<std::uint32_t> resources;  // directed-edge resource keys
    double demand = 0.0;
    double latency_s = 0.0;
    double bottleneck_capacity = 0.0;
    std::vector<std::string> edge_ids;
    bool routable = false;
  };

  WaterfillSolver solver;
  std::vector<double> capacity;
  std::vector<std::size_t> offsets;
  std::vector<std::uint32_t> resources;
  std::vector<double> demand;
  std::vector<double> rates;
  std::vector<std::size_t> dense_to_request;
  std::vector<RoutedFlow> routed;
};

/// Allocate max-min fair rates for the requested flows over `topo`,
/// routing each flow along its shortest path and treating each edge
/// direction's *available* bandwidth (capacity - measured utilization) as
/// its capacity. Unroutable flows get available_bps == 0 and an empty path.
/// `scratch` supplies the reusable arenas; steady-state calls with a
/// long-lived scratch allocate nothing for problem assembly.
// remos-hot
[[nodiscard]] MaxMinResult max_min_allocate(const VirtualTopology& topo,
                                            const std::vector<FlowRequest>& requests,
                                            MaxMinScratch& scratch);

/// Convenience overload with a one-shot scratch (allocates; prefer the
/// scratch overload on hot paths).
[[nodiscard]] MaxMinResult max_min_allocate(const VirtualTopology& topo,
                                            const std::vector<FlowRequest>& requests);

/// Available bandwidth for a single new flow: the max-min rate it would
/// get if introduced alone (bottleneck residual capacity along the path).
[[nodiscard]] FlowInfo single_flow_info(const VirtualTopology& topo, const FlowRequest& request,
                                        MaxMinScratch& scratch);
[[nodiscard]] FlowInfo single_flow_info(const VirtualTopology& topo, const FlowRequest& request);

}  // namespace remos::core
