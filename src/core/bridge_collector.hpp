// Bridge Collector: level-2 (switched Ethernet) topology discovery.
//
// "the Bridge Collector is used to determine the topology of the Ethernet
// LAN through queries to the forwarding database in the Bridge-MIB of each
// bridge or switch. At startup, the Bridge Collector queries all components
// of a bridged Ethernet to determine its topology, then stores this
// information in a database."
//
// Topology inference uses the complete-FDB theorem (Lowekamp/O'Hallaron/
// Gross, SIGCOMM 2001): two ports on different bridges are directly
// connected iff their forwarding sets are disjoint and jointly cover every
// known address. Host locations follow from the access-port rule: a host
// sits on the unique non-trunk port whose FDB lists it. Multiple endpoints
// behind one access port indicate an invisible shared medium (hub), which
// the collector represents as a cloud the SNMP Collector will surface as a
// virtual switch.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/engine.hpp"
#include "snmp/client.hpp"

namespace remos::core {

/// One monitorable element of an L2 path: the link behind switch port
/// (agent, port). Utilization of the link is read from that port's octet
/// counters.
struct L2PathHop {
  net::Ipv4Address agent{};     // switch management address
  std::uint32_t port = 0;       // egress port toward the next element
  double capacity_bps = 0.0;    // port speed (min of both ends for trunks)
  std::string link_id;          // stable resource identifier
  bool shared_medium = false;   // true when the hop crosses a hub cloud
  /// Entity labels ("sw@<ip>", "mac:<hex>", "cloud@...") in traversal
  /// order, so callers can reconstruct the node chain.
  std::string from_label;
  std::string to_label;
  /// True when the monitoring switch (agent/port) sits on the `from` side
  /// of the hop — out_octets at that port then measure from->to traffic.
  bool agent_on_from_side = false;
};

struct BridgeCollectorConfig {
  /// Management addresses of every bridge/switch in the segment.
  std::vector<net::Ipv4Address> switches;
  std::string community = "public";
  /// Use SNMPv2 GetBulk for the startup walks (one round trip per ~24
  /// rows instead of per row).
  bool use_bulk = false;
  /// ARP-like resolution: endpoint IP -> MAC (the collector's config data).
  std::function<std::optional<std::uint64_t>(net::Ipv4Address)> arp;
  /// Period of the continuous host-location monitor (0 disables).
  double location_check_interval_s = 30.0;
};

class BridgeCollector {
 public:
  BridgeCollector(sim::Engine& engine, snmp::AgentRegistry& registry, BridgeCollectorConfig config);
  ~BridgeCollector();
  BridgeCollector(const BridgeCollector&) = delete;
  BridgeCollector& operator=(const BridgeCollector&) = delete;

  /// Walk every bridge's Bridge-MIB + ifTable and infer the L2 topology.
  /// Returns the virtual (SNMP) time the discovery cost.
  double startup();
  [[nodiscard]] bool started() const { return started_; }

  /// L2 path between two endpoint IPs (answered from the database — no
  /// SNMP traffic). nullopt when either endpoint is unknown.
  [[nodiscard]] std::optional<std::vector<L2PathHop>> l2_path(net::Ipv4Address src,
                                                              net::Ipv4Address dst) const;

  /// Resolve an endpoint IP to its MAC via the collector's ARP config.
  [[nodiscard]] std::optional<std::uint64_t> resolve_mac(net::Ipv4Address addr) const {
    return config_.arp ? config_.arp(addr) : std::nullopt;
  }

  /// Current attachment of an endpoint: (switch mgmt addr, port).
  [[nodiscard]] std::optional<std::pair<net::Ipv4Address, std::uint32_t>> location_of(
      net::Ipv4Address endpoint) const;

  /// Re-check every endpoint's forwarding entry once (the periodic monitor
  /// body; exposed for tests). Returns how many endpoints moved.
  std::size_t check_locations();

  /// Host moves observed by the continuous monitor since startup.
  [[nodiscard]] std::uint64_t move_count() const { return moves_; }

  /// Version bumped on every detected relocation — lets the SNMP
  /// Collector invalidate cached L2 paths.
  [[nodiscard]] std::uint64_t topology_version() const { return version_; }

  [[nodiscard]] std::size_t switch_count() const { return config_.switches.size(); }
  [[nodiscard]] std::size_t endpoint_count() const { return endpoint_entity_.size(); }
  [[nodiscard]] std::size_t inter_switch_link_count() const;
  [[nodiscard]] const snmp::SnmpClient& client() const { return client_; }

 private:
  struct Entity {
    enum class Kind { kSwitch, kEndpoint, kCloud } kind = Kind::kEndpoint;
    net::Ipv4Address sw_addr{};  // switches
    std::uint64_t mac = 0;       // endpoints
    std::string label;
  };
  struct Edge {
    std::size_t a = 0, b = 0;            // entity indices
    std::uint32_t a_port = 0, b_port = 0;  // valid when that side is a switch
    double capacity_bps = 0.0;
    std::string link_id;
    bool shared = false;
  };
  struct SwitchData {
    net::Ipv4Address addr{};
    std::unordered_map<std::uint64_t, std::uint32_t> fdb;  // mac -> port
    std::unordered_map<std::uint32_t, double> port_speed;
  };

  double walk_switch(SwitchData& data);
  void infer_topology();
  void attach_endpoint(std::uint64_t mac);
  [[nodiscard]] std::size_t entity_of_endpoint(std::uint64_t mac) const;

  sim::Engine& engine_;
  BridgeCollectorConfig config_;
  snmp::SnmpClient client_;
  std::vector<SwitchData> switches_;
  std::vector<Entity> entities_;
  std::vector<Edge> edges_;
  // Ordered by MAC so check_locations() polls bridges in a deterministic
  // sequence — iteration order here reaches the SNMP wire and the logs.
  std::map<std::uint64_t, std::size_t> endpoint_entity_;               // mac -> entity
  std::map<std::pair<std::size_t, std::uint32_t>, bool> trunk_ports_;  // (switch entity, port)
  sim::TaskId monitor_task_ = 0;
  bool started_ = false;
  std::uint64_t moves_ = 0;
  std::uint64_t version_ = 0;
};

}  // namespace remos::core
