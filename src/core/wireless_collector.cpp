#include "core/wireless_collector.hpp"

#include <algorithm>

#include "core/audit.hpp"

namespace remos::core {

WirelessCollector::WirelessCollector(sim::Engine& engine, const net::Network& net,
                                     std::vector<net::NodeId> aps, WirelessCollectorConfig config)
    : engine_(engine), net_(net), aps_(std::move(aps)), config_(std::move(config)) {
  poll_associations();  // initial association table
  if (config_.association_poll_s > 0) {
    poll_task_ = engine_.every(config_.association_poll_s, [this] { poll_associations(); });
  }
}

WirelessCollector::~WirelessCollector() {
  if (poll_task_ != 0) engine_.cancel_task(poll_task_);
}

net::NodeId WirelessCollector::current_ap(net::NodeId station) const {
  // Association ground truth: the AP (hub) at the far end of the station's
  // access link — what a basestation's association table reports.
  const net::Node& s = net_.node(station);
  for (const net::Interface& ifc : s.interfaces) {
    if (ifc.link == net::kNone) continue;
    const net::NodeId far = net_.link(ifc.link).other(station);
    if (std::find(aps_.begin(), aps_.end(), far) != aps_.end()) return far;
  }
  return net::kNone;
}

std::size_t WirelessCollector::poll_associations() {
  std::size_t moved = 0;
  // Enumerate stations: hosts attached to any configured AP.
  for (const net::Node& n : net_.nodes()) {
    if (n.kind != net::NodeKind::kHost) continue;
    const net::NodeId ap = current_ap(n.id);
    auto it = association_.find(n.id);
    if (ap == net::kNone) {
      if (it != association_.end()) {
        association_.erase(it);  // left the wireless network
        ++moved;
        ++handoffs_;
      }
      continue;
    }
    if (it == association_.end()) {
      REMOS_CHECK(std::find(aps_.begin(), aps_.end(), ap) != aps_.end(),
                  "stations may only associate with configured APs");
      association_.emplace(n.id, ap);
    } else if (it->second != ap) {
      it->second = ap;
      ++moved;
      ++handoffs_;
    }
  }
  return moved;
}

net::NodeId WirelessCollector::association_of(net::Ipv4Address station) const {
  const net::NodeId id = net_.node_by_ip(station);
  if (id == net::kNone) return net::kNone;
  auto it = association_.find(id);
  return it == association_.end() ? net::kNone : it->second;
}

std::size_t WirelessCollector::station_count(net::NodeId ap) const {
  std::size_t count = 0;
  for (const auto& [station, assoc] : association_) {
    (void)station;
    if (assoc == ap) ++count;
  }
  return count;
}

std::optional<double> WirelessCollector::expected_bandwidth(net::Ipv4Address station) const {
  const net::NodeId ap = association_of(station);
  if (ap == net::kNone) return std::nullopt;
  const std::size_t stations = std::max<std::size_t>(station_count(ap), 1);
  return net_.node(ap).shared_capacity_bps / static_cast<double>(stations);
}

CollectorResponse WirelessCollector::query(const std::vector<net::Ipv4Address>& nodes) {
  CollectorResponse resp;
  // Each AP in play becomes a virtual switch annotated with its shared
  // capacity; stations hang off their AP with the expected share as the
  // utilization-adjusted edge.
  for (net::Ipv4Address addr : nodes) {
    const net::NodeId station = net_.node_by_ip(addr);
    const net::NodeId ap = association_of(addr);
    if (station == net::kNone || ap == net::kNone) {
      resp.complete = false;
      continue;
    }
    const net::Node& ap_node = net_.node(ap);
    const VNodeIndex vs = resp.topology.ensure_node(
        VNode{VNodeKind::kVirtualSwitch, "ap:" + ap_node.name, {}});
    const VNodeIndex st = resp.topology.ensure_node(
        VNode{VNodeKind::kHost, "host@" + addr.to_string(), addr});
    VEdge e;
    e.a = st;
    e.b = vs;
    e.capacity_bps = ap_node.shared_capacity_bps;
    // Report the medium's current contention as utilization: with k
    // stations sharing, a new flow can expect capacity/k.
    const auto stations = static_cast<double>(std::max<std::size_t>(station_count(ap), 1));
    e.util_ab_bps = ap_node.shared_capacity_bps * (1.0 - 1.0 / stations);
    e.util_ba_bps = e.util_ab_bps;
    e.id = "wifi:" + ap_node.name + ":" + addr.to_string();
    resp.topology.add_edge(std::move(e));
    resp.cost_s += config_.per_station_cost_s;
  }
  // APs on the same distribution system interconnect (wired backhaul);
  // join the AP virtual switches through a distribution node so multi-AP
  // queries stay connected.
  if (resp.topology.node_count() > 0) {
    std::vector<VNodeIndex> ap_nodes;
    for (std::size_t i = 0; i < resp.topology.node_count(); ++i) {
      if (resp.topology.nodes()[i].name.starts_with("ap:")) {
        ap_nodes.push_back(static_cast<VNodeIndex>(i));
      }
    }
    if (ap_nodes.size() > 1) {
      const VNodeIndex dist = resp.topology.ensure_node(
          VNode{VNodeKind::kVirtualSwitch, "wifi-distribution", {}});
      for (VNodeIndex ap : ap_nodes) {
        VEdge e;
        e.a = ap;
        e.b = dist;
        e.id = "wifi:dist:" + resp.topology.nodes()[ap].name;
        resp.topology.add_edge(std::move(e));
      }
    }
  }
  audit::audit_response(resp, engine_.now());
  return resp;
}

}  // namespace remos::core
