// Minimal XML document model and parser — enough for the Remos component
// protocol ("we would like to replace [the text format] with an XML format
// using HTTP as a communication protocol", §6.2). Supports elements,
// attributes, text, self-closing tags, and the five predefined entities.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace remos::core {

struct XmlElement {
  std::string name;
  std::map<std::string, std::string> attributes;
  std::vector<std::unique_ptr<XmlElement>> children;
  std::string text;

  XmlElement() = default;
  explicit XmlElement(std::string tag) : name(std::move(tag)) {}

  XmlElement& add_child(std::string tag);
  void set_attr(std::string key, std::string value);
  void set_attr(std::string key, double value);
  void set_attr(std::string key, std::int64_t value);

  [[nodiscard]] const XmlElement* first_child(std::string_view tag) const;
  [[nodiscard]] std::vector<const XmlElement*> children_named(std::string_view tag) const;
  [[nodiscard]] std::optional<std::string> attr(std::string_view key) const;
  [[nodiscard]] double attr_double(std::string_view key, double fallback = 0.0) const;
  [[nodiscard]] std::int64_t attr_int(std::string_view key, std::int64_t fallback = 0) const;

  /// Serialize (compact, deterministic attribute order).
  [[nodiscard]] std::string to_string() const;
};

/// Escape the five predefined entities.
[[nodiscard]] std::string xml_escape(std::string_view text);

/// Parse a single-root document. nullptr on malformed input.
[[nodiscard]] std::unique_ptr<XmlElement> xml_parse(std::string_view text);

}  // namespace remos::core
