#include "core/xml.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace remos::core {

XmlElement& XmlElement::add_child(std::string tag) {
  children.push_back(std::make_unique<XmlElement>(std::move(tag)));
  return *children.back();
}

void XmlElement::set_attr(std::string key, std::string value) {
  attributes[std::move(key)] = std::move(value);
}

void XmlElement::set_attr(std::string key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  attributes[std::move(key)] = buf;
}

void XmlElement::set_attr(std::string key, std::int64_t value) {
  attributes[std::move(key)] = std::to_string(value);
}

const XmlElement* XmlElement::first_child(std::string_view tag) const {
  for (const auto& c : children) {
    if (c->name == tag) return c.get();
  }
  return nullptr;
}

std::vector<const XmlElement*> XmlElement::children_named(std::string_view tag) const {
  std::vector<const XmlElement*> out;
  for (const auto& c : children) {
    if (c->name == tag) out.push_back(c.get());
  }
  return out;
}

std::optional<std::string> XmlElement::attr(std::string_view key) const {
  auto it = attributes.find(std::string(key));
  if (it == attributes.end()) return std::nullopt;
  return it->second;
}

double XmlElement::attr_double(std::string_view key, double fallback) const {
  auto v = attr(key);
  if (!v) return fallback;
  double out = fallback;
  auto [ptr, ec] = std::from_chars(v->data(), v->data() + v->size(), out);
  (void)ptr;
  return ec == std::errc{} ? out : fallback;
}

std::int64_t XmlElement::attr_int(std::string_view key, std::int64_t fallback) const {
  auto v = attr(key);
  if (!v) return fallback;
  std::int64_t out = fallback;
  auto [ptr, ec] = std::from_chars(v->data(), v->data() + v->size(), out);
  (void)ptr;
  return ec == std::errc{} ? out : fallback;
}

std::string xml_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string XmlElement::to_string() const {
  std::string out = "<" + name;
  for (const auto& [k, v] : attributes) out += " " + k + "=\"" + xml_escape(v) + "\"";
  if (children.empty() && text.empty()) {
    out += "/>";
    return out;
  }
  out += ">";
  out += xml_escape(text);
  for (const auto& c : children) out += c->to_string();
  out += "</" + name + ">";
  return out;
}

// ---------------------------------------------------------------------------
// parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::unique_ptr<XmlElement> parse_document() {
    skip_ws();
    if (peek_starts("<?")) {  // XML declaration
      const auto end = text_.find("?>", pos_);
      if (end == std::string_view::npos) return nullptr;
      pos_ = end + 2;
      skip_ws();
    }
    auto root = parse_element();
    if (!root) return nullptr;
    skip_ws();
    return pos_ == text_.size() ? std::move(root) : nullptr;
  }

 private:
  bool peek_starts(std::string_view s) const {
    return text_.substr(pos_, s.size()) == s;
  }
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }
  static std::string unescape(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out += raw[i];
        continue;
      }
      const std::string_view rest = raw.substr(i);
      auto take = [&](std::string_view entity, char c) {
        if (rest.substr(0, entity.size()) == entity) {
          out += c;
          i += entity.size() - 1;
          return true;
        }
        return false;
      };
      if (take("&amp;", '&') || take("&lt;", '<') || take("&gt;", '>') || take("&quot;", '"') ||
          take("&apos;", '\'')) {
        continue;
      }
      out += raw[i];
    }
    return out;
  }

  std::string parse_name() {
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_' || c == ':' ||
          c == '.') {
        ++pos_;
      } else {
        break;
      }
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  std::unique_ptr<XmlElement> parse_element() {
    if (pos_ >= text_.size() || text_[pos_] != '<') return nullptr;
    ++pos_;
    auto elem = std::make_unique<XmlElement>(parse_name());
    if (elem->name.empty()) return nullptr;
    // Attributes.
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size()) return nullptr;
      if (peek_starts("/>")) {
        pos_ += 2;
        return elem;
      }
      if (text_[pos_] == '>') {
        ++pos_;
        break;
      }
      const std::string key = parse_name();
      if (key.empty()) return nullptr;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '=') return nullptr;
      ++pos_;
      skip_ws();
      if (pos_ >= text_.size() || (text_[pos_] != '"' && text_[pos_] != '\'')) return nullptr;
      const char quote = text_[pos_++];
      const std::size_t vstart = pos_;
      while (pos_ < text_.size() && text_[pos_] != quote) ++pos_;
      if (pos_ >= text_.size()) return nullptr;
      elem->attributes[key] = unescape(text_.substr(vstart, pos_ - vstart));
      ++pos_;
    }
    // Content.
    for (;;) {
      if (pos_ >= text_.size()) return nullptr;
      if (peek_starts("</")) {
        pos_ += 2;
        const std::string closing = parse_name();
        if (closing != elem->name) return nullptr;
        skip_ws();
        if (pos_ >= text_.size() || text_[pos_] != '>') return nullptr;
        ++pos_;
        return elem;
      }
      if (text_[pos_] == '<') {
        auto child = parse_element();
        if (!child) return nullptr;
        elem->children.push_back(std::move(child));
      } else {
        const std::size_t start = pos_;
        while (pos_ < text_.size() && text_[pos_] != '<') ++pos_;
        elem->text += unescape(text_.substr(start, pos_ - start));
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::unique_ptr<XmlElement> xml_parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace remos::core
