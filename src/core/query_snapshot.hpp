// Epoch-published query snapshots: the immutable state behind the
// lock-free Remos API read path.
//
// PR 7's concurrency inventory showed that every Modeler query pays two
// costs that scale badly with client count: a collector fetch (which
// mutates collector caches, so it must serialize) and the global lock that
// protects the fetched state while the answer is computed. The snapshot
// design moves both costs off the read path: the simulation thread builds
// a complete, immutable `QuerySnapshot` of the universe — topology,
// per-edge capacities and utilization, and copies of the measurement
// histories predictions need — and publishes it through an atomic
// shared_ptr swap. Readers on any thread load the current snapshot and
// answer topology/flow/predict queries from it with pure functions; no
// reader ever takes the collector's or the FlowEngine's locks.
//
// Grace-period rule (RCU by refcount): a reader that loaded snapshot N
// keeps it alive through its shared_ptr even after N+1 is published, so
// publication never blocks on readers and readers never observe a
// half-built snapshot. A snapshot is destroyed exactly when the last
// reader of its epoch drops it.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "rps/predictor.hpp"
#include "rps/shared_cache.hpp"

namespace remos::core {

/// One immutable, self-contained view of the monitored universe. Built on
/// the simulation thread (QueryServer::refresh), read concurrently from
/// any thread. Never mutated after publication.
// remos-published
struct QuerySnapshot {
  /// Publication serial, 1-based; 0 only for a never-refreshed server.
  std::uint64_t epoch = 0;
  /// Universe topology as the collector reported it (unsimplified —
  /// simplification is a per-query rendering choice).
  VirtualTopology topo;
  bool complete = true;
  /// Collector cost of assembling this snapshot (virtual seconds).
  double cost_s = 0.0;
  /// Worst measurement age across the snapshot's edges at build time.
  double staleness_s = 0.0;
  /// Per-resource measurement values (oldest first, bounded window),
  /// keyed by edge id and edge id + ":ba" — the prediction handles.
  /// std::map: deterministic iteration for renders and goldens.
  std::map<std::string, std::vector<double>> histories;

  [[nodiscard]] const std::vector<double>* history(const std::string& resource_id) const {
    auto it = histories.find(resource_id);
    return it == histories.end() ? nullptr : &it->second;
  }
};

using QuerySnapshotPtr = std::shared_ptr<const QuerySnapshot>;

// The publication slot itself is simply a `std::atomic<QuerySnapshotPtr>`
// member of the publishing class (QueryServer): writers swap in a fully
// built snapshot with a release store, readers acquire-load the current
// one wait-free with respect to publication. That is the one concurrency
// primitive of the snapshot design — declared as a bare std::atomic so
// the concurrency pass classifies it as atomic rather than lock-guarded.

// ---- pure answer helpers --------------------------------------------------
//
// Both the lock-free snapshot path and the retained mutex baseline answer
// queries through these functions, so on a quiescent simulation the two
// paths are bit-identical by construction (same snapshot contents, same
// float operation order).

/// Sub-topology spanning `nodes`: the union of shortest paths between
/// every pair of requested addresses, preserving node and edge order of
/// the source topology. Addresses the topology does not contain are
/// skipped (same semantics as a collector query for unknown nodes).
[[nodiscard]] VirtualTopology span_topology(const VirtualTopology& topo,
                                            const std::vector<net::Ipv4Address>& nodes);

/// Bottleneck edge of a routed flow: the path edge with the minimum
/// available bandwidth over both directions. nullptr when no path edge is
/// present in the topology.
[[nodiscard]] const VEdge* bottleneck_edge(const VirtualTopology& topo, const FlowInfo& info);

/// Pick the binding direction's history: the one with the higher mean
/// recent load when both exist; the one that exists otherwise (nullptr
/// when neither does). Mirrors the Modeler's historical choice exactly.
[[nodiscard]] const std::vector<double>* choose_history(const std::vector<double>* ab,
                                                        const std::vector<double>* ba);

/// Fit `model` over `values` and convert the forecast to available
/// bandwidth on `bottleneck` (utilization histories become capacity minus
/// forecast; "wan:" benchmark histories are available bandwidth already).
/// nullopt when the history is shorter than `min_history` or too short for
/// the model itself.
///
/// With a `cache` attached the fit goes through its tiers: the hot tier
/// memoizes the fitted prediction per (bottleneck, horizon, model) key and
/// publishes the fit's coefficients as a spec-shape template; a history too
/// short to fit is seeded from a same-shape warm template instead of
/// failing. No cache (the default) preserves the historical pure-function
/// behavior exactly.
[[nodiscard]] std::optional<FlowPrediction> predict_from_history(
    std::span<const double> values, const VEdge& bottleneck,
    const rps::ClientServerPredictor& predictor, const rps::ModelSpec& model,
    std::size_t horizon, std::size_t min_history, rps::SharedPredictionCache* cache = nullptr);

}  // namespace remos::core
