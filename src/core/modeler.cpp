#include "core/modeler.hpp"

#include "core/audit.hpp"
#include "core/obs.hpp"
#include "core/query_snapshot.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <stdexcept>

namespace remos::core {

Modeler::Modeler(Collector& collector, ModelerConfig config)
    : collector_(collector), config_(std::move(config)), predictor_(config_.prediction_model) {}

VirtualTopology Modeler::fetch(const std::vector<net::Ipv4Address>& nodes) {
  auto sp = obs::span("modeler.fetch");
  sp.attr("nodes", nodes.size());
  // Deduplicate while preserving order (collectors key caches on pairs).
  std::vector<net::Ipv4Address> unique;
  for (net::Ipv4Address a : nodes) {
    if (std::find(unique.begin(), unique.end(), a) == unique.end()) unique.push_back(a);
  }
  CollectorResponse resp = collector_.query(unique);
  last_cost_s_ = resp.cost_s;
  last_complete_ = resp.complete;
  last_staleness_s_ = resp.max_staleness_s;
  sim::metrics().counter("core.modeler.queries_total").inc();
  // Virtual response time of the underlying collector query — the quantity
  // Fig 3/Fig 5 measure per scenario, pinned here as a distribution.
  sim::metrics().histogram("core.modeler.query_latency_s").observe(resp.cost_s);
  return std::move(resp.topology);
}

VirtualTopology Modeler::topology_query(const std::vector<net::Ipv4Address>& nodes) {
  VirtualTopology topo = fetch(nodes);
  if (!config_.simplify_topology) return topo;
  VirtualTopology simplified = simplify(topo);
  // simplify() collapses switch clusters into virtual switches — exactly
  // the merge step the topology audit exists to guard.
  audit::audit_topology(simplified);
  return simplified;
}

std::vector<FlowInfo> Modeler::flow_query(const FlowQuery& query) {
  std::vector<net::Ipv4Address> endpoints;
  for (const FlowRequest& f : query.flows) {
    endpoints.push_back(f.src);
    endpoints.push_back(f.dst);
  }
  const VirtualTopology topo = fetch(endpoints);
  return max_min_allocate(topo, query.flows, maxmin_scratch_).flows;
}

FlowInfo Modeler::flow_info(net::Ipv4Address src, net::Ipv4Address dst) {
  FlowQuery q;
  q.flows.push_back(FlowRequest{src, dst, std::numeric_limits<double>::infinity()});
  auto infos = flow_query(q);
  return infos.empty() ? FlowInfo{} : std::move(infos.front());
}

std::optional<FlowPrediction> Modeler::predict_flow(const FlowRequest& request,
                                                    std::size_t horizon) {
  if (horizon == 0) horizon = config_.prediction_horizon;
  const VirtualTopology topo = fetch({request.src, request.dst});
  const FlowInfo info = single_flow_info(topo, request, maxmin_scratch_);
  if (!info.routable()) return std::nullopt;

  // Bottleneck edge (minimum available bandwidth along the path), binding
  // history direction, and the fit + utilization-to-available conversion
  // are shared with the snapshot query path (core/query_snapshot.hpp) so
  // the two serving paths cannot drift apart.
  const VEdge* bottleneck = bottleneck_edge(topo, info);
  if (bottleneck == nullptr) return std::nullopt;

  const sim::MeasurementHistory* h_ab = collector_.history(bottleneck->id);
  const sim::MeasurementHistory* h_ba = collector_.history(bottleneck->id + ":ba");
  std::optional<std::vector<double>> v_ab, v_ba;
  if (h_ab != nullptr) v_ab = h_ab->values();
  if (h_ba != nullptr) v_ba = h_ba->values();
  const std::vector<double>* hist =
      choose_history(v_ab ? &*v_ab : nullptr, v_ba ? &*v_ba : nullptr);
  if (hist == nullptr) return std::nullopt;
  return predict_from_history(*hist, *bottleneck, predictor_, config_.prediction_model, horizon,
                              config_.min_history);
}

VirtualTopology Modeler::simplify(const VirtualTopology& topo) {
  const auto& nodes = topo.nodes();
  // Union-find over switch-kind vertices connected by an edge.
  std::vector<std::size_t> parent(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) parent[i] = i;
  auto find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto is_switchy = [&](std::size_t i) {
    return nodes[i].kind == VNodeKind::kSwitch || nodes[i].kind == VNodeKind::kVirtualSwitch;
  };
  for (const VEdge& e : topo.edges()) {
    if (is_switchy(e.a) && is_switchy(e.b)) parent[find(e.a)] = find(e.b);
  }

  VirtualTopology out;
  std::vector<VNodeIndex> remap(nodes.size(), kNoVNode);
  // Endpoints copy through; each switch cluster becomes one virtual switch.
  std::map<std::size_t, VNodeIndex> cluster_node;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (!is_switchy(i)) {
      remap[i] = out.add_node(nodes[i]);
      continue;
    }
    const std::size_t root = find(i);
    auto it = cluster_node.find(root);
    if (it == cluster_node.end()) {
      VNode vs;
      vs.kind = VNodeKind::kVirtualSwitch;
      vs.name = "vswitch#" + std::to_string(cluster_node.size());
      it = cluster_node.emplace(root, out.add_node(std::move(vs))).first;
    }
    remap[i] = it->second;
  }
  for (const VEdge& e : topo.edges()) {
    const VNodeIndex a = remap[e.a];
    const VNodeIndex b = remap[e.b];
    if (a == b) continue;  // intra-cluster trunk: absorbed by the vswitch
    VEdge copy = e;
    copy.a = a;
    copy.b = b;
    out.add_edge(std::move(copy));
  }
  audit::audit_topology(out);
  return out;
}

}  // namespace remos::core
