#include "core/benchmark_collector.hpp"

#include <algorithm>
#include <cmath>

#include "core/audit.hpp"

namespace remos::core {

BenchmarkCollector::BenchmarkCollector(sim::Engine& engine, net::FlowEngine& flows,
                                       BenchmarkCollectorConfig config)
    : engine_(engine), flows_(flows), config_(std::move(config)) {}

BenchmarkCollector::~BenchmarkCollector() {
  if (periodic_task_ != 0) engine_.cancel_task(periodic_task_);
}

void BenchmarkCollector::add_daemon(std::string site, net::NodeId host, net::Ipv4Address addr) {
  daemons_.push_back(Daemon{std::move(site), host, addr});
}

BenchmarkCollector::PairKey BenchmarkCollector::key_of(const std::string& a,
                                                       const std::string& b) {
  return a < b ? PairKey{a, b} : PairKey{b, a};
}

BenchmarkCollector::PairState& BenchmarkCollector::pair_state(const PairKey& key) {
  auto it = pairs_.find(key);
  if (it == pairs_.end()) {
    it = pairs_.emplace(key, PairState(config_.history_capacity)).first;
  }
  return it->second;
}

const BenchmarkCollector::Daemon* BenchmarkCollector::find_daemon(const std::string& site) const {
  for (const Daemon& d : daemons_) {
    if (d.site == site) return &d;
  }
  return nullptr;
}

std::optional<net::Ipv4Address> BenchmarkCollector::daemon_addr(const std::string& site) const {
  const Daemon* d = find_daemon(site);
  if (d == nullptr) return std::nullopt;
  return d->addr;
}

void BenchmarkCollector::add_peer(const std::string& site_a, const std::string& site_b) {
  periodic_peers_.push_back(key_of(site_a, site_b));
}

void BenchmarkCollector::start_periodic() {
  if (config_.period_s <= 0 || periodic_task_ != 0) return;
  periodic_task_ = engine_.every(config_.period_s, [this] {
    // Stagger the pair probes across the period: concurrent probes that
    // share a site's access link would measure each other instead of the
    // network ("too expensive and intrusive" compounds when self-inflicted).
    const double spacing =
        periodic_peers_.empty() ? 0.0
                                : config_.period_s / static_cast<double>(periodic_peers_.size() + 1);
    for (std::size_t k = 0; k < periodic_peers_.size(); ++k) {
      const PairKey key = periodic_peers_[k];
      engine_.after(spacing * static_cast<double>(k), [this, key] {
        measure_now(key.first, key.second);
        if (latency_probes_) (void)ping(key.first, key.second);
      });
    }
  });
}

bool BenchmarkCollector::measure_now(const std::string& site_a, const std::string& site_b,
                                     std::function<void(double)> done) {
  const Daemon* a = find_daemon(site_a);
  const Daemon* b = find_daemon(site_b);
  if (a == nullptr || b == nullptr || a == b) return false;
  const PairKey key = key_of(site_a, site_b);
  PairState& state = pair_state(key);
  if (state.in_flight) return false;
  state.in_flight = true;

  // "the Benchmark Collector exchanges data with the Benchmark Collector
  // running at the other site": probe both directions back-to-back and
  // record the conservative (minimum) rate — applications may load either
  // direction, and WAN paths are rarely symmetric under cross traffic.
  const net::NodeId forward_src = a->host;
  const net::NodeId forward_dst = b->host;
  net::FlowSpec first;
  first.src = forward_src;
  first.dst = forward_dst;
  first.bytes = config_.probe_bytes;
  first.on_complete = [this, key, forward_src, forward_dst,
                       done = std::move(done)](net::FlowId id) {
    const auto stats = flows_.stats(id);
    const double fwd_bps = (stats && stats->completed) ? stats->average_bps() : 0.0;
    net::FlowSpec second;
    second.src = forward_dst;
    second.dst = forward_src;
    second.bytes = config_.probe_bytes;
    second.on_complete = [this, key, fwd_bps, done](net::FlowId rid) {
      PairState& st = pair_state(key);
      st.in_flight = false;
      const auto rstats = flows_.stats(rid);
      const double rev_bps = (rstats && rstats->completed) ? rstats->average_bps() : 0.0;
      const double bps = std::min(fwd_bps, rev_bps);
      if (bps > 0.0) {
        st.history.add(engine_.now(), bps);
        st.last_measured = engine_.now();
        ++probes_completed_;
      }
      if (done) done(bps);
    };
    bytes_injected_ += config_.probe_bytes;
    flows_.start(std::move(second));
  };
  bytes_injected_ += config_.probe_bytes;
  flows_.start(std::move(first));
  return true;
}

std::optional<double> BenchmarkCollector::ping(const std::string& site_a,
                                               const std::string& site_b) {
  const Daemon* a = find_daemon(site_a);
  const Daemon* b = find_daemon(site_b);
  if (a == nullptr || b == nullptr || a == b) return std::nullopt;
  const double rtt = flows_.current_rtt(a->host, b->host);
  REMOS_CHECK(std::isfinite(rtt) && rtt >= 0.0, "probe RTT must be finite and non-negative");
  pair_state(key_of(site_a, site_b)).rtt_history.add(engine_.now(), rtt);
  return rtt;
}

std::optional<double> BenchmarkCollector::latency(const std::string& site_a,
                                                  const std::string& site_b) const {
  auto it = pairs_.find(key_of(site_a, site_b));
  if (it == pairs_.end() || it->second.rtt_history.empty()) return std::nullopt;
  sim::RunningStats stats;
  for (double v : it->second.rtt_history.values()) stats.add(v);
  return stats.mean();
}

std::optional<double> BenchmarkCollector::jitter(const std::string& site_a,
                                                 const std::string& site_b) const {
  auto it = pairs_.find(key_of(site_a, site_b));
  if (it == pairs_.end() || it->second.rtt_history.size() < 2) return std::nullopt;
  sim::RunningStats stats;
  for (double v : it->second.rtt_history.values()) stats.add(v);
  return stats.stddev();
}

std::optional<double> BenchmarkCollector::available_bandwidth(const std::string& site_a,
                                                              const std::string& site_b) {
  const PairKey key = key_of(site_a, site_b);
  PairState& state = pair_state(key);
  if (state.last_measured < 0 || engine_.now() - state.last_measured > config_.cache_ttl_s) {
    // Stale (or never measured): refresh in the background; the caller
    // still gets the cached value, if any.
    measure_now(key.first, key.second);
  }
  if (state.history.empty()) return std::nullopt;
  return state.history.latest().value;
}

const sim::MeasurementHistory* BenchmarkCollector::pair_history(const std::string& site_a,
                                                                const std::string& site_b) const {
  auto it = pairs_.find(key_of(site_a, site_b));
  return it == pairs_.end() ? nullptr : &it->second.history;
}

std::vector<net::Ipv4Prefix> BenchmarkCollector::responsibility() const {
  // Daemon host addresses, as /32s: this collector can only speak about
  // paths between its own endpoints.
  std::vector<net::Ipv4Prefix> out;
  out.reserve(daemons_.size());
  for (const Daemon& d : daemons_) out.emplace_back(d.addr, 32);
  return out;
}

CollectorResponse BenchmarkCollector::query(const std::vector<net::Ipv4Address>& nodes) {
  CollectorResponse resp;
  // Map requested addresses to daemons and connect every known pair with a
  // WAN edge whose capacity is the latest measured available bandwidth.
  std::vector<const Daemon*> matched;
  for (net::Ipv4Address addr : nodes) {
    for (const Daemon& d : daemons_) {
      if (d.addr == addr) matched.push_back(&d);
    }
  }
  for (std::size_t i = 0; i < matched.size(); ++i) {
    for (std::size_t j = i + 1; j < matched.size(); ++j) {
      const auto bw = available_bandwidth(matched[i]->site, matched[j]->site);
      if (!bw) {
        resp.complete = false;
        continue;
      }
      const VNodeIndex a = resp.topology.ensure_node(
          VNode{VNodeKind::kHost, "host@" + matched[i]->addr.to_string(), matched[i]->addr});
      const VNodeIndex b = resp.topology.ensure_node(
          VNode{VNodeKind::kHost, "host@" + matched[j]->addr.to_string(), matched[j]->addr});
      VEdge e;
      e.a = a;
      e.b = b;
      e.capacity_bps = *bw;  // measured *available* bandwidth
      const PairKey key = key_of(matched[i]->site, matched[j]->site);
      e.id = "wan:" + key.first + "-" + key.second;
      resp.topology.add_edge(std::move(e));
    }
  }
  return resp;
}

const sim::MeasurementHistory* BenchmarkCollector::history(const std::string& resource_id) const {
  // Resource ids have the form "wan:<siteA>-<siteB>" (sites sorted).
  if (!resource_id.starts_with("wan:")) return nullptr;
  const std::string rest = resource_id.substr(4);
  const auto dash = rest.find('-');
  if (dash == std::string::npos) return nullptr;
  return pair_history(rest.substr(0, dash), rest.substr(dash + 1));
}

}  // namespace remos::core
