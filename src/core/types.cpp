#include "core/types.hpp"

#include <algorithm>
#include <cstdio>

#include "core/audit.hpp"

namespace remos::core {

const char* to_string(VNodeKind kind) {
  switch (kind) {
    case VNodeKind::kHost: return "host";
    case VNodeKind::kRouter: return "router";
    case VNodeKind::kSwitch: return "switch";
    case VNodeKind::kVirtualSwitch: return "vswitch";
  }
  return "?";
}

VNodeIndex VirtualTopology::add_node(VNode node) {
  nodes_.push_back(std::move(node));
  return static_cast<VNodeIndex>(nodes_.size() - 1);
}

VNodeIndex VirtualTopology::ensure_node(VNode node) {
  const VNodeIndex existing = find_by_name(node.name);
  if (existing != kNoVNode) return existing;
  return add_node(std::move(node));
}

std::size_t VirtualTopology::add_edge(VEdge edge) {
  REMOS_CHECK(edge.a < nodes_.size() && edge.b < nodes_.size(),
              "edge endpoints must reference existing nodes");
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    VEdge& e = edges_[i];
    if (e.id == edge.id && ((e.a == edge.a && e.b == edge.b) || (e.a == edge.b && e.b == edge.a))) {
      // Refresh measurements; flip directions if endpoint order differs.
      const bool flipped = (e.a == edge.b);
      e.capacity_bps = edge.capacity_bps;
      e.util_ab_bps = flipped ? edge.util_ba_bps : edge.util_ab_bps;
      e.util_ba_bps = flipped ? edge.util_ab_bps : edge.util_ba_bps;
      e.latency_s = edge.latency_s;
      e.staleness_s = edge.staleness_s;
      return i;
    }
  }
  edges_.push_back(std::move(edge));
  return edges_.size() - 1;
}

VNodeIndex VirtualTopology::find_by_name(std::string_view name) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].name == name) return static_cast<VNodeIndex>(i);
  }
  return kNoVNode;
}

VNodeIndex VirtualTopology::find_by_addr(net::Ipv4Address addr) const {
  if (addr.is_zero()) return kNoVNode;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].addr == addr) return static_cast<VNodeIndex>(i);
  }
  return kNoVNode;
}

std::vector<std::size_t> VirtualTopology::incident_edges(VNodeIndex v) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (edges_[i].a == v || edges_[i].b == v) out.push_back(i);
  }
  return out;
}

void VirtualTopology::merge(const VirtualTopology& other) {
  std::vector<VNodeIndex> remap(other.nodes_.size());
  for (std::size_t i = 0; i < other.nodes_.size(); ++i) {
    remap[i] = ensure_node(other.nodes_[i]);
  }
  for (const VEdge& e : other.edges_) {
    REMOS_CHECK(e.a < remap.size() && e.b < remap.size(),
                "merged edge endpoints must be in range of the source topology");
    VEdge copy = e;
    copy.a = remap[e.a];
    copy.b = remap[e.b];
    add_edge(std::move(copy));
  }
}

std::optional<std::vector<std::size_t>> VirtualTopology::shortest_path(VNodeIndex src,
                                                                       VNodeIndex dst) const {
  if (src >= nodes_.size() || dst >= nodes_.size()) return std::nullopt;
  if (src == dst) return std::vector<std::size_t>{};
  // BFS over a CSR adjacency built fresh per call from the edge list —
  // results only depend on the current graph, so there is no cache to
  // invalidate. All scratch lives in thread_local arenas: the historical
  // implementation allocated one vector per node per call, which made
  // routing the dominant cost of Modeler flow queries (see DESIGN.md
  // "Performance"). Per-node edge lists stay in ascending edge order (the
  // order the old per-node push_backs produced), so BFS tie-breaking — and
  // therefore every returned path — is unchanged.
  const std::size_t n = nodes_.size();
  thread_local std::vector<std::size_t> off;
  thread_local std::vector<std::size_t> cursor;
  thread_local std::vector<std::size_t> adj;
  thread_local std::vector<std::size_t> via_edge;
  thread_local std::vector<VNodeIndex> prev;
  thread_local std::vector<char> seen;
  thread_local std::vector<VNodeIndex> frontier;
  off.assign(n + 1, 0);
  for (const VEdge& e : edges_) {
    ++off[e.a + 1];
    ++off[e.b + 1];
  }
  for (std::size_t v = 0; v < n; ++v) off[v + 1] += off[v];
  adj.resize(edges_.size() * 2);
  cursor.assign(off.begin(), off.end() - 1);
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    adj[cursor[edges_[i].a]++] = i;
    adj[cursor[edges_[i].b]++] = i;
  }
  via_edge.assign(n, ~std::size_t{0});
  prev.assign(n, kNoVNode);
  seen.assign(n, 0);
  frontier.clear();
  frontier.push_back(src);
  seen[src] = 1;
  for (std::size_t head = 0; head < frontier.size(); ++head) {
    const VNodeIndex u = frontier[head];
    if (u == dst) break;
    // Hosts do not forward traffic.
    if (nodes_[u].kind == VNodeKind::kHost && u != src) continue;
    for (std::size_t k = off[u]; k < off[u + 1]; ++k) {
      const std::size_t ei = adj[k];
      const VEdge& e = edges_[ei];
      const VNodeIndex v = (e.a == u) ? e.b : e.a;
      if (seen[v] != 0) continue;
      seen[v] = 1;
      via_edge[v] = ei;
      prev[v] = u;
      frontier.push_back(v);
    }
  }
  if (seen[dst] == 0) return std::nullopt;
  std::vector<std::size_t> path;
  // remos-analyze: allow(hotpath): the returned path is the product; BFS scratch is thread_local above, and ROADMAP item 5 (SoA arenas) tracks moving the result into caller-owned storage
  for (VNodeIndex cur = dst; cur != src; cur = prev[cur]) path.push_back(via_edge[cur]);
  std::reverse(path.begin(), path.end());
  return path;
}

std::string VirtualTopology::to_text() const {
  std::string out;
  out += "virtual topology: " + std::to_string(nodes_.size()) + " nodes, " +
         std::to_string(edges_.size()) + " edges\n";
  for (const VEdge& e : edges_) {
    const VNode& na = nodes_[e.a];
    const VNode& nb = nodes_[e.b];
    char line[256];
    std::snprintf(line, sizeof line, "  %-18s <-> %-18s cap %8.2f Mb/s  util %7.2f/%7.2f Mb/s\n",
                  na.name.c_str(), nb.name.c_str(), e.capacity_bps / 1e6, e.util_ab_bps / 1e6,
                  e.util_ba_bps / 1e6);
    out += line;
  }
  return out;
}

}  // namespace remos::core
