#include <charconv>
#include <sstream>

#include "core/protocol.hpp"

namespace remos::core {
namespace {

std::vector<std::string> split_lines(const std::string& wire) {
  std::vector<std::string> lines;
  std::istringstream in(wire);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    lines.push_back(line);
  }
  return lines;
}

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> fields;
  std::istringstream in(line);
  std::string field;
  while (in >> field) fields.push_back(field);
  return fields;
}

std::optional<double> to_double(const std::string& s) {
  double v = 0.0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

std::optional<std::uint32_t> to_u32(const std::string& s) {
  std::uint32_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

const char* kind_token(VNodeKind kind) { return to_string(kind); }

std::optional<VNodeKind> kind_from_token(const std::string& token) {
  if (token == "host") return VNodeKind::kHost;
  if (token == "router") return VNodeKind::kRouter;
  if (token == "switch") return VNodeKind::kSwitch;
  if (token == "vswitch") return VNodeKind::kVirtualSwitch;
  return std::nullopt;
}

}  // namespace

std::string ascii_encode_query(const std::vector<net::Ipv4Address>& nodes) {
  std::string out = "QUERY " + std::to_string(nodes.size()) + "\n";
  for (net::Ipv4Address a : nodes) out += "NODE " + a.to_string() + "\n";
  out += "END\n";
  return out;
}

std::optional<std::vector<net::Ipv4Address>> ascii_decode_query(const std::string& wire) {
  const auto lines = split_lines(wire);
  if (lines.empty() || !lines.front().starts_with("QUERY ")) return std::nullopt;
  std::vector<net::Ipv4Address> nodes;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (lines[i] == "END") return nodes;
    if (!lines[i].starts_with("NODE ")) return std::nullopt;
    auto addr = net::Ipv4Address::parse(lines[i].substr(5));
    if (!addr) return std::nullopt;
    nodes.push_back(*addr);
  }
  return std::nullopt;  // missing END
}

std::string ascii_encode_response(const CollectorResponse& response) {
  const VirtualTopology& t = response.topology;
  std::string out = "TOPOLOGY " + std::to_string(t.node_count()) + " " +
                    std::to_string(t.edge_count()) + "\n";
  for (std::size_t i = 0; i < t.node_count(); ++i) {
    const VNode& n = t.nodes()[i];
    out += "VNODE " + std::to_string(i) + " " + kind_token(n.kind) + " " + n.name + " " +
           n.addr.to_string() + "\n";
  }
  char buf[320];
  for (const VEdge& e : t.edges()) {
    std::snprintf(buf, sizeof buf, "VEDGE %u %u %.9g %.9g %.9g %.9g %s\n", e.a, e.b,
                  e.capacity_bps, e.util_ab_bps, e.util_ba_bps, e.latency_s, e.id.c_str());
    out += buf;
  }
  std::snprintf(buf, sizeof buf, "COST %.9g\n", response.cost_s);
  out += buf;
  out += std::string("COMPLETE ") + (response.complete ? "1" : "0") + "\n";
  out += "END\n";
  return out;
}

std::optional<CollectorResponse> ascii_decode_response(const std::string& wire) {
  const auto lines = split_lines(wire);
  if (lines.empty() || !lines.front().starts_with("TOPOLOGY ")) return std::nullopt;
  CollectorResponse resp;
  bool ended = false;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const auto fields = split_fields(lines[i]);
    if (fields.empty()) continue;
    if (fields[0] == "END") {
      ended = true;
      break;
    }
    if (fields[0] == "VNODE") {
      if (fields.size() != 5) return std::nullopt;
      auto kind = kind_from_token(fields[2]);
      auto addr = net::Ipv4Address::parse(fields[4]);
      if (!kind || !addr) return std::nullopt;
      resp.topology.add_node(VNode{*kind, fields[3], *addr});
    } else if (fields[0] == "VEDGE") {
      if (fields.size() != 8) return std::nullopt;
      VEdge e;
      auto a = to_u32(fields[1]);
      auto b = to_u32(fields[2]);
      auto cap = to_double(fields[3]);
      auto uab = to_double(fields[4]);
      auto uba = to_double(fields[5]);
      auto lat = to_double(fields[6]);
      if (!a || !b || !cap || !uab || !uba || !lat) return std::nullopt;
      e.a = *a;
      e.b = *b;
      if (e.a >= resp.topology.node_count() || e.b >= resp.topology.node_count()) {
        return std::nullopt;
      }
      e.capacity_bps = *cap;
      e.util_ab_bps = *uab;
      e.util_ba_bps = *uba;
      e.latency_s = *lat;
      e.id = fields[7];
      resp.topology.add_edge(std::move(e));
    } else if (fields[0] == "COST") {
      if (fields.size() != 2) return std::nullopt;
      auto cost = to_double(fields[1]);
      if (!cost) return std::nullopt;
      resp.cost_s = *cost;
    } else if (fields[0] == "COMPLETE") {
      if (fields.size() != 2) return std::nullopt;
      resp.complete = fields[1] == "1";
    } else {
      return std::nullopt;
    }
  }
  if (!ended) return std::nullopt;
  return resp;
}

}  // namespace remos::core
