// Observability layer: span tracer + export formats over sim/metrics.hpp.
//
// Spans are RAII scopes timestamped exclusively by the simulation's virtual
// clock (sim::obs_now(), bound by the live Engine). Because virtual time is
// deterministic, a scenario's full export — metric values AND span
// timeline — is byte-for-byte reproducible, which tests/golden/ pins as a
// regression surface: an extra SNMP round trip, a lost cache hit, or a
// changed solver iteration count shows up as a golden diff, not a silent
// perf regression.
//
// Naming scheme (see DESIGN.md "Observability"):
//   <layer>.<component>.<what>[_total|_s]
//   e.g. snmp.client.requests_total, core.snmp_collector.path_cache_hits_total,
//        core.modeler.query_latency_s (histogram, virtual seconds)
// Span names are <component>.<operation>, e.g. snmp_collector.query.
//
// The tracer is single-threaded by design (the discrete-event sim thread);
// metrics are thread-safe atomics (see sim/metrics.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/metrics.hpp"

namespace remos::core::obs {

struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  // 0 = root
  std::string name;
  double start_s = 0.0;  // virtual seconds
  double end_s = 0.0;
  /// Insertion-ordered key/value annotations (counts, costs, flags).
  std::vector<std::pair<std::string, std::string>> attrs;
};

class Tracer {
 public:
  /// RAII span handle: finishes the span (stamping end_s) on destruction.
  class Scope {
   public:
    Scope(Scope&& other) noexcept : tracer_(other.tracer_), id_(other.id_) {
      other.tracer_ = nullptr;
    }
    Scope& operator=(Scope&&) = delete;
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() { end(); }

    void attr(const std::string& key, std::string value);
    void attr(const std::string& key, const char* value) { attr(key, std::string(value)); }
    template <class T,
              std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>, int> = 0>
    void attr(const std::string& key, T v) {
      attr(key, std::to_string(v));
    }
    void attr(const std::string& key, double v);
    void attr(const std::string& key, bool v);
    /// Finish early (idempotent; destruction becomes a no-op).
    void end();

   private:
    friend class Tracer;
    Scope(Tracer* tracer, std::uint64_t id) : tracer_(tracer), id_(id) {}
    Tracer* tracer_;  // nullptr: moved-from or observability compiled out
    std::uint64_t id_;
  };

  /// Open a span; the currently active span (if any) becomes its parent.
  [[nodiscard]] Scope span(std::string name);

  [[nodiscard]] const std::vector<SpanRecord>& finished() const { return finished_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  /// Retention cap: once `finished` holds this many records, completed
  /// spans are counted in `dropped` instead of stored (long benches).
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  void set_capacity(std::size_t cap) { capacity_ = cap; }

  void reset();

 private:
  SpanRecord* active_by_id(std::uint64_t id);
  void finish(std::uint64_t id);

  std::vector<SpanRecord> active_;  // open-span stack (LIFO via RAII)
  std::vector<SpanRecord> finished_;
  std::uint64_t next_id_ = 1;
  std::uint64_t dropped_ = 0;
  std::size_t capacity_ = 65536;
};

/// The process-global tracer every component reports into.
Tracer& tracer();

/// Convenience: open a span on the global tracer (no-op scope when
/// observability is compiled out).
[[nodiscard]] Tracer::Scope span(std::string name);

// --- exporters -------------------------------------------------------------

struct ExportOptions {
  bool include_spans = true;
  /// Stamp the export with the real wall-clock time. OFF by default and it
  /// must stay that way for every golden/regression path: turning it on
  /// makes the export non-reproducible by design (ops deployments only).
  bool annotate_realtime = false;
};

/// Canonical JSON export of the global registry (+ span timeline).
/// Deterministic: name-sorted metrics, shortest-round-trip doubles.
[[nodiscard]] std::string export_json(const ExportOptions& opts = {});

/// Prometheus text exposition of the global registry (metrics only; the
/// span timeline has no Prometheus form). Names are sanitized to
/// `remos_<name with [._-] -> _>`.
[[nodiscard]] std::string export_prometheus(const ExportOptions& opts = {});

/// Write export_json (or export_prometheus when `path` ends in ".prom")
/// to `path`. Returns false on I/O failure.
bool write_export_file(const std::string& path, const ExportOptions& opts = {});

/// Zero metric values and clear the span timeline, keeping metric
/// registrations (safe while components hold handles).
void reset();

/// Also drop metric registrations — only safe when no instrumented
/// component is alive. Golden scenarios call this first so their exports
/// contain exactly the metrics the scenario touched.
void clear_all();

/// Canonical shortest-round-trip decimal rendering used by the exporters
/// (exposed for tests and bench CSV helpers).
[[nodiscard]] std::string format_double(double v);

}  // namespace remos::core::obs
