#include "core/prediction_service.hpp"

namespace remos::core {

HostLoadPredictionSystem::HostLoadPredictionSystem(sim::Engine& engine, sim::Rng rng,
                                                   double rate_hz, rps::ModelSpec spec,
                                                   rps::StreamingConfig config)
    : rng_(rng),
      sensor_(engine, rng.fork("hostload-sensor"), 1.0 / rate_hz),
      predictor_(spec, config) {}

void HostLoadPredictionSystem::start(std::size_t prime_samples) {
  if (running_) return;
  sim::Rng prime_rng = rng_.fork("prime");
  const std::vector<double> prime = net::generate_host_load(prime_samples, prime_rng);
  predictor_.prime(prime);
  sensor_.set_callback([this](sim::Time, double load) {
    latest_ = predictor_.push(load);
    ++predictions_;
  });
  sensor_.start();
  running_ = true;
}

void HostLoadPredictionSystem::stop() {
  if (!running_) return;
  sensor_.stop();
  running_ = false;
}

FlowBandwidthSensor::FlowBandwidthSensor(sim::Engine& engine, Modeler& modeler,
                                         net::Ipv4Address src, net::Ipv4Address dst,
                                         double interval_s, rps::ModelSpec spec,
                                         std::size_t prime_after)
    : engine_(engine),
      modeler_(modeler),
      src_(src),
      dst_(dst),
      interval_s_(interval_s),
      prime_after_(prime_after),
      predictor_(spec) {}

FlowBandwidthSensor::~FlowBandwidthSensor() { stop(); }

void FlowBandwidthSensor::start() {
  if (task_ != 0) return;
  task_ = engine_.every(interval_s_, [this] { sample(); });
}

void FlowBandwidthSensor::stop() {
  if (task_ == 0) return;
  engine_.cancel_task(task_);
  task_ = 0;
}

void FlowBandwidthSensor::sample() {
  const FlowInfo info = modeler_.flow_info(src_, dst_);
  history_.add(engine_.now(), info.available_bps);
  if (!predictor_.primed()) {
    if (history_.size() >= prime_after_) {
      try {
        predictor_.prime(history_.values());
      } catch (const std::invalid_argument&) {
        // Not enough data for the model order yet; try again next sample.
      }
    }
    return;
  }
  latest_ = predictor_.push(info.available_bps);
}

std::optional<rps::Prediction> FlowBandwidthSensor::latest_prediction() const { return latest_; }

PredictionService::PredictionService(Collector& collector, rps::ModelSpec default_spec)
    : collector_(collector), default_spec_(default_spec), predictor_(default_spec) {}

std::optional<rps::Prediction> PredictionService::predict_resource(
    const std::string& resource_id, std::size_t horizon,
    std::optional<rps::ModelSpec> spec) const {
  const sim::MeasurementHistory* hist = collector_.history(resource_id);
  if (hist == nullptr || hist->empty()) return std::nullopt;
  rps::ClientServerPredictor::Request req;
  const std::vector<double> values = hist->values();
  req.history = values;
  req.horizon = horizon;
  req.spec = spec;
  try {
    if (cache_ != nullptr) {
      const rps::ModelSpec model_spec = spec.value_or(default_spec_);
      const std::string shape_key = model_spec.to_string() + "#" + std::to_string(horizon);
      const std::string key = resource_id + "#" + std::to_string(horizon) + "#" +
                              model_spec.to_string();
      try {
        return cache_->get_or_compute(key, [&] {
          std::optional<rps::ModelTemplate> tmpl;
          rps::Prediction p = predictor_.predict(req, &tmpl);
          // compute runs outside the cache lock; publishing the fitted
          // coefficients to the warm tier here is deadlock-free.
          if (tmpl) cache_->put_template(shape_key, *tmpl);
          return p;
        });
      } catch (const std::invalid_argument&) {
        // Too short to fit this resource itself: seed from a same-shape
        // warm template (fitted on a longer-lived resource) if one exists.
        if (auto tmpl = cache_->warm_template(shape_key)) {
          if (auto seeded = rps::model_from_template(*tmpl, values)) {
            rps::Prediction p = seeded->predict(horizon);
            cache_->note_seeded();
            return p;
          }
        }
        return std::nullopt;
      }
    }
    return predictor_.predict(req);
  } catch (const std::invalid_argument&) {
    // Too short for the model order: not cached — the next query re-reads
    // the (by then longer) history.
    return std::nullopt;
  }
}

}  // namespace remos::core
