// Grid Monitoring Architecture (GMA) mapping — the paper's §4.
//
// "In this architecture each Collector is a producer. The Master Collector
// is a joint consumer/producer ... Although we view the Modeler as a
// consumer, it could also be another joint consumer/producer ... In the
// Remos architecture, the collectors also implement a limited form of
// directory service to locate each other. The directory service of the
// GMA would be natural to use for this purpose."
//
// This module provides that interoperability layer: GMA producer/consumer
// interfaces, adapters wrapping Remos collectors as producers, and a GMA
// directory service that replaces the Master Collector's private database
// — demonstrating the paper's conclusion that "the Remos architecture is
// quite compatible with the GMA".
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/collector.hpp"
#include "core/modeler.hpp"

namespace remos::core::gma {

/// Event types a producer advertises. Remos collectors produce topology
/// and per-resource measurement-history events.
enum class EventType : std::uint8_t { kTopology, kHistory };

[[nodiscard]] const char* to_string(EventType type);

/// GMA producer: publishes monitoring events on request (the GMA's
/// query-response interaction; Remos does not use the subscribe mode).
class Producer {
 public:
  virtual ~Producer() = default;
  [[nodiscard]] virtual std::string producer_name() const = 0;
  /// Event types this producer can answer for.
  [[nodiscard]] virtual std::vector<EventType> event_types() const = 0;
  /// Topology event: measurements for a set of subjects (node addresses).
  virtual CollectorResponse produce_topology(const std::vector<net::Ipv4Address>& subjects) = 0;
  /// History event for a named resource; nullptr when unknown.
  [[nodiscard]] virtual const sim::MeasurementHistory* produce_history(
      const std::string& resource_id) const = 0;
};

/// Adapter: any Remos collector is a GMA producer.
class CollectorProducer final : public Producer {
 public:
  explicit CollectorProducer(Collector& collector) : collector_(collector) {}

  [[nodiscard]] std::string producer_name() const override { return collector_.name(); }
  [[nodiscard]] std::vector<EventType> event_types() const override {
    return {EventType::kTopology, EventType::kHistory};
  }
  CollectorResponse produce_topology(const std::vector<net::Ipv4Address>& subjects) override {
    return collector_.query(subjects);
  }
  [[nodiscard]] const sim::MeasurementHistory* produce_history(
      const std::string& resource_id) const override {
    return collector_.history(resource_id);
  }
  [[nodiscard]] Collector& collector() { return collector_; }

 private:
  Collector& collector_;
};

/// The Modeler as a joint consumer/producer (§4): "Although we view the
/// Modeler as a consumer, it could also be another joint consumer/
/// producer, providing end-to-end performance predictions using the
/// component data available from the collectors as a service to other
/// applications." It consumes collector data and produces end-to-end
/// topology and flow-prediction events.
class ModelerProducer final : public Producer {
 public:
  explicit ModelerProducer(Modeler& modeler, std::string name = "modeler-producer")
      : modeler_(modeler), name_(std::move(name)) {}

  [[nodiscard]] std::string producer_name() const override { return name_; }
  [[nodiscard]] std::vector<EventType> event_types() const override {
    return {EventType::kTopology};
  }
  CollectorResponse produce_topology(const std::vector<net::Ipv4Address>& subjects) override {
    CollectorResponse resp;
    resp.topology = modeler_.topology_query(subjects);
    resp.cost_s = modeler_.last_query_cost_s();
    resp.complete = modeler_.last_query_complete();
    return resp;
  }
  [[nodiscard]] const sim::MeasurementHistory* produce_history(
      const std::string& resource_id) const override {
    (void)resource_id;
    return nullptr;  // the modeler holds no raw histories of its own
  }
  /// The end-to-end event only a modeler can produce: predicted available
  /// bandwidth for a prospective flow.
  [[nodiscard]] std::optional<FlowPrediction> produce_flow_prediction(const FlowRequest& request,
                                                                      std::size_t horizon) {
    return modeler_.predict_flow(request, horizon);
  }

 private:
  Modeler& modeler_;
  std::string name_;
};

/// The GMA directory service: producers register with metadata (name,
/// producer class, subjects covered); consumers discover them by subject
/// and type. "Both proposals [hierarchical MDS-2 / relational] present
/// models that are capable of associating Remos with the resources it
/// monitors, which is the fundamental requirement."
class DirectoryService {
 public:
  struct Registration {
    std::string name;
    std::string producer_class;  // "snmp", "benchmark", "master", ...
    std::vector<net::Ipv4Prefix> subjects;
    Producer* producer = nullptr;
  };

  /// Register a producer; re-registering the same name replaces the entry.
  void register_producer(Registration registration);
  void unregister(const std::string& name);

  /// Producers covering a subject address (most specific prefix first).
  [[nodiscard]] std::vector<Producer*> lookup(net::Ipv4Address subject) const;
  /// Producers covering a subject, restricted to a producer class.
  [[nodiscard]] std::vector<Producer*> lookup(net::Ipv4Address subject,
                                              const std::string& producer_class) const;
  [[nodiscard]] const Registration* find(const std::string& name) const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  std::map<std::string, Registration> entries_;
};

/// GMA consumer bound to a directory: resolves the best producer for each
/// query — what a GMA-native Modeler would do instead of talking to a
/// hard-wired Master Collector.
class DirectoryConsumer {
 public:
  explicit DirectoryConsumer(const DirectoryService& directory) : directory_(directory) {}

  /// Query the most specific producer covering every subject; merges when
  /// subjects span producers. Returns incomplete when some subject is
  /// uncovered.
  CollectorResponse query(const std::vector<net::Ipv4Address>& subjects);

  [[nodiscard]] std::uint64_t queries_issued() const { return queries_; }

 private:
  const DirectoryService& directory_;
  std::uint64_t queries_ = 0;
};

}  // namespace remos::core::gma
