// Master Collector: query decomposition and response aggregation.
//
// "The Master Collector identifies the networks containing hosts used in
// the query, as well as any intervening networks ... divides up the query
// and passes the relevant portion to the collectors responsible for the
// identified networks. When the responses are received ... the Master
// Collector combines them into one single response and returns that
// response to the Modeler" — without revealing that the answer came from
// multiple collectors.
//
// Because a Master Collector is itself a Collector, one master can be
// registered as a site of another, giving the layered hierarchy of §2.1
// ("it is possible to build several layers of collectors").
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/benchmark_collector.hpp"
#include "core/collector.hpp"
#include "core/directory.hpp"

namespace remos::core {

struct MasterCollectorConfig {
  std::string name = "master-collector";
  /// Fixed per-query processing overhead (query split + merge).
  double merge_overhead_s = 0.002;
  /// Query site collectors concurrently (cost = max, not sum).
  bool parallel_sites = true;
};

class MasterCollector final : public Collector {
 public:
  explicit MasterCollector(MasterCollectorConfig config = {});

  struct Site {
    std::string name;
    Collector* collector = nullptr;
    /// Border endpoint of the site: WAN edges attach here. Usually the
    /// site's benchmark daemon host.
    net::Ipv4Address border{};
  };

  /// Register a site; its collector's responsibility goes into the
  /// directory.
  void add_site(Site site);
  /// Wire the benchmark collector used for inter-site measurements.
  void set_benchmark(BenchmarkCollector* benchmark) { benchmark_ = benchmark; }

  [[nodiscard]] std::string name() const override { return config_.name; }
  [[nodiscard]] std::vector<net::Ipv4Prefix> responsibility() const override;
  CollectorResponse query(const std::vector<net::Ipv4Address>& nodes) override;
  [[nodiscard]] const sim::MeasurementHistory* history(const std::string& resource_id) const override;

  [[nodiscard]] const CollectorDirectory& directory() const { return directory_; }
  [[nodiscard]] std::size_t site_count() const { return sites_.size(); }

 private:
  const Site* site_of(net::Ipv4Address addr) const;

  MasterCollectorConfig config_;
  std::vector<Site> sites_;
  /// Collector -> index into sites_: site_of() resolves each address with
  /// one directory lookup plus one map probe instead of a linear scan over
  /// sites (full-universe snapshot fetches resolve every address).
  std::map<Collector*, std::size_t> site_index_;
  CollectorDirectory directory_;
  BenchmarkCollector* benchmark_ = nullptr;
};

}  // namespace remos::core
