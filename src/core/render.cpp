#include "core/render.hpp"

#include <cstdio>

namespace remos::core {
namespace {

const char* shape_of(VNodeKind kind) {
  switch (kind) {
    case VNodeKind::kHost: return "box";
    case VNodeKind::kRouter: return "diamond";
    case VNodeKind::kSwitch: return "ellipse";
    case VNodeKind::kVirtualSwitch: return "ellipse";
  }
  return "box";
}

std::string dot_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string to_dot(const VirtualTopology& topo, const RenderOptions& options) {
  std::string out = "graph \"" + dot_escape(options.graph_name) + "\" {\n";
  out += "  node [fontsize=10];\n";
  for (std::size_t i = 0; i < topo.node_count(); ++i) {
    const VNode& n = topo.nodes()[i];
    char line[256];
    std::snprintf(line, sizeof line, "  n%zu [label=\"%s\", shape=%s%s];\n", i,
                  dot_escape(n.name).c_str(), shape_of(n.kind),
                  n.kind == VNodeKind::kVirtualSwitch ? ", style=dashed" : "");
    out += line;
  }
  for (const VEdge& e : topo.edges()) {
    char line[320];
    if (options.edge_labels && e.capacity_bps > 0) {
      std::snprintf(line, sizeof line,
                    "  n%u -- n%u [label=\"%.1f Mb/s\\n%.1f/%.1f used\"];\n", e.a, e.b,
                    e.capacity_bps / 1e6, e.util_ab_bps / 1e6, e.util_ba_bps / 1e6);
    } else {
      std::snprintf(line, sizeof line, "  n%u -- n%u;\n", e.a, e.b);
    }
    out += line;
  }
  out += "}\n";
  return out;
}

std::string to_adjacency_text(const VirtualTopology& topo) {
  std::string out;
  for (std::size_t i = 0; i < topo.node_count(); ++i) {
    out += topo.nodes()[i].name + ":";
    for (std::size_t ei : topo.incident_edges(static_cast<VNodeIndex>(i))) {
      const VEdge& e = topo.edges()[ei];
      const VNodeIndex other = (e.a == i) ? e.b : e.a;
      out += " " + topo.nodes()[other].name;
    }
    out += "\n";
  }
  return out;
}

}  // namespace remos::core
