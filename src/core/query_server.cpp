#include "core/query_server.hpp"

#include <cstdio>
#include <future>
#include <map>
#include <utility>

#include "core/audit.hpp"
#include "core/modeler.hpp"
#include "sim/metrics.hpp"

namespace remos::core {
namespace {

std::string format_demand(double demand) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", demand);
  return buf;
}

std::string flow_request_key(const FlowRequest& request) {
  return request.src.to_string() + ">" + request.dst.to_string() + "@" +
         format_demand(request.demand_bps);
}

}  // namespace

/// Per-epoch coalescing tables. A slot is created by the first (leader)
/// query with a given key and epoch; followers share the leader's future.
/// Completed slots stay as memos until refresh() prunes the epoch.
struct QueryServer::CoalesceTables {
  template <class Value>
  struct Fit {
    std::promise<Value> promise;
    std::shared_future<Value> future;
    Fit() : future(promise.get_future().share()) {}
  };
  using Key = std::pair<std::uint64_t, std::string>;
  std::map<Key, std::shared_ptr<Fit<std::vector<FlowInfo>>>> flow;        // remos-guarded-by(coalesce_mu_)
  std::map<Key, std::shared_ptr<Fit<std::optional<FlowPrediction>>>> predict;  // remos-guarded-by(coalesce_mu_)
};

/// Borrowed max-min arenas: returned to the freelist on destruction, so a
/// leader's solve never shares arenas with a concurrent leader's.
class QueryServer::ScratchLease {
 public:
  ScratchLease(const QueryServer& server, std::unique_ptr<MaxMinScratch> scratch)
      : server_(server), scratch_(std::move(scratch)) {}
  ScratchLease(const ScratchLease&) = delete;
  ScratchLease& operator=(const ScratchLease&) = delete;
  ~ScratchLease() {
    std::lock_guard lock(server_.scratch_mu_);
    server_.scratch_pool_.push_back(std::move(scratch_));
  }
  [[nodiscard]] MaxMinScratch& get() { return *scratch_; }

 private:
  const QueryServer& server_;
  // remos-analyze: allow(concurrency): exclusively owned by the leaseholder thread; the only handoff (back to the freelist) happens under scratch_mu_ in the destructor
  std::unique_ptr<MaxMinScratch> scratch_;
};

QueryServer::QueryServer(Collector& collector, std::vector<net::Ipv4Address> universe,
                         QueryServerConfig config)
    : collector_(collector),
      config_(std::move(config)),
      universe_(std::move(universe)),
      predictor_(config_.prediction_model),
      coalesce_(std::make_unique<CoalesceTables>()) {
  refresh();
}

QueryServer::~QueryServer() = default;

// remos-requires(serve_mu_)
QuerySnapshot QueryServer::build_snapshot() {
  QuerySnapshot snap;
  CollectorResponse resp = collector_.query(universe_);
  snap.topo = std::move(resp.topology);
  snap.complete = resp.complete;
  snap.cost_s = resp.cost_s;
  snap.staleness_s = resp.max_staleness_s;
  // Copy the freshest history window of every identified edge (both
  // directions): the prediction handles. Copies make the snapshot
  // self-contained — collectors keep appending to the live histories
  // while readers predict from the frozen ones.
  for (const VEdge& e : snap.topo.edges()) {
    if (e.id.empty()) continue;
    for (const std::string& rid : {e.id, e.id + ":ba"}) {
      if (snap.histories.contains(rid)) continue;
      const sim::MeasurementHistory* h = collector_.history(rid);
      if (h == nullptr || h->empty()) continue;
      snap.histories.emplace(rid, h->last(config_.history_window));
    }
  }
  return snap;
}

const QuerySnapshot& QueryServer::refresh() {
  QuerySnapshotPtr published;
  {
    std::lock_guard lock(serve_mu_);
    auto snap = std::make_shared<QuerySnapshot>(build_snapshot());
    snap->epoch = next_epoch_++;
    published = std::move(snap);
  }
  published_.store(published, std::memory_order_release);
  epochs_published_.fetch_add(1, std::memory_order_relaxed);
  sim::metrics().counter("core.query_server.epochs_total").inc();
  // Old-epoch coalescing slots can no longer gain followers (new queries
  // key on the new epoch); drop the memos. In-flight leaders keep their
  // slot alive through their own shared_ptr.
  {
    std::lock_guard lock(coalesce_mu_);
    const CoalesceTables::Key horizon{published->epoch, std::string()};
    coalesce_->flow.erase(coalesce_->flow.begin(), coalesce_->flow.lower_bound(horizon));
    coalesce_->predict.erase(coalesce_->predict.begin(),
                             coalesce_->predict.lower_bound(horizon));
  }
  return *published;
}

// ---- pure answer functions ------------------------------------------------

VirtualTopology QueryServer::answer_topology(const QuerySnapshot& snap,
                                             const std::vector<net::Ipv4Address>& nodes) const {
  VirtualTopology spanned = span_topology(snap.topo, nodes);
  if (!config_.simplify_topology) return spanned;
  VirtualTopology simplified = Modeler::simplify(spanned);
  audit::audit_topology(simplified);
  return simplified;
}

std::vector<FlowInfo> QueryServer::answer_flows(const QuerySnapshot& snap, const FlowQuery& query,
                                                MaxMinScratch& scratch) const {
  return max_min_allocate(snap.topo, query.flows, scratch).flows;
}

std::optional<FlowPrediction> QueryServer::answer_predict(const QuerySnapshot& snap,
                                                          const FlowRequest& request,
                                                          std::size_t horizon,
                                                          MaxMinScratch& scratch) const {
  const FlowInfo info = single_flow_info(snap.topo, request, scratch);
  if (!info.routable()) return std::nullopt;
  const VEdge* bottleneck = bottleneck_edge(snap.topo, info);
  if (bottleneck == nullptr) return std::nullopt;
  const std::vector<double>* hist =
      choose_history(snap.history(bottleneck->id), snap.history(bottleneck->id + ":ba"));
  if (hist == nullptr) return std::nullopt;
  return predict_from_history(*hist, *bottleneck, predictor_, config_.prediction_model, horizon,
                              config_.min_history, config_.prediction_cache);
}

PredictionTierStats QueryServer::prediction_tier_stats() const {
  PredictionTierStats stats;
  const rps::SharedPredictionCache* cache = config_.prediction_cache;
  if (cache == nullptr) return stats;
  // Each accessor takes the cache's own (leaf) lock; counters may move
  // between reads, so this is a monitoring view, not an atomic snapshot.
  stats.hot_hits = cache->hits();
  stats.hot_misses = cache->misses();
  stats.warm_hits = cache->warm_hits();
  stats.warm_misses = cache->warm_misses();
  stats.seeds = cache->seeds();
  stats.templates_stored = cache->templates_stored();
  return stats;
}

// ---- lock-free read path --------------------------------------------------

VirtualTopology QueryServer::topology_query(const std::vector<net::Ipv4Address>& nodes) const {
  queries_total_.fetch_add(1, std::memory_order_relaxed);
  const QuerySnapshotPtr snap = snapshot();
  return answer_topology(*snap, nodes);
}

std::vector<FlowInfo> QueryServer::flow_query(const FlowQuery& query) const {
  queries_total_.fetch_add(1, std::memory_order_relaxed);
  const QuerySnapshotPtr snap = snapshot();
  std::string key;
  for (const FlowRequest& f : query.flows) {
    key += flow_request_key(f);
    key += ';';
  }

  std::shared_ptr<CoalesceTables::Fit<std::vector<FlowInfo>>> fit;
  bool leader = false;
  {
    std::lock_guard lock(coalesce_mu_);
    auto& slot = coalesce_->flow[CoalesceTables::Key{snap->epoch, std::move(key)}];
    if (!slot) {
      slot = std::make_shared<CoalesceTables::Fit<std::vector<FlowInfo>>>();
      leader = true;
    }
    fit = slot;
  }
  if (!leader) {
    coalesce_hits_.fetch_add(1, std::memory_order_relaxed);
    return fit->future.get();
  }

  computations_.fetch_add(1, std::memory_order_relaxed);
  try {
    ScratchLease scratch = lease_scratch();
    std::vector<FlowInfo> result = answer_flows(*snap, query, scratch.get());
    fit->promise.set_value(result);
    return result;
  } catch (...) {
    fit->promise.set_exception(std::current_exception());
    throw;
  }
}

FlowInfo QueryServer::flow_info(net::Ipv4Address src, net::Ipv4Address dst) const {
  FlowQuery q;
  q.flows.push_back(FlowRequest{src, dst, std::numeric_limits<double>::infinity()});
  auto infos = flow_query(q);
  return infos.empty() ? FlowInfo{} : std::move(infos.front());
}

std::optional<FlowPrediction> QueryServer::predict_flow(const FlowRequest& request,
                                                        std::size_t horizon) const {
  queries_total_.fetch_add(1, std::memory_order_relaxed);
  if (horizon == 0) horizon = config_.prediction_horizon;
  const QuerySnapshotPtr snap = snapshot();
  std::string key = flow_request_key(request) + "#" + std::to_string(horizon);

  std::shared_ptr<CoalesceTables::Fit<std::optional<FlowPrediction>>> fit;
  bool leader = false;
  bool rejected = false;
  {
    std::lock_guard lock(coalesce_mu_);
    auto it = coalesce_->predict.find(CoalesceTables::Key{snap->epoch, key});
    if (it != coalesce_->predict.end()) {
      fit = it->second;
    } else if (fits_in_flight_.load(std::memory_order_relaxed) >= config_.max_fits_in_flight) {
      rejected = true;
    } else {
      fits_in_flight_.fetch_add(1, std::memory_order_relaxed);
      fit = std::make_shared<CoalesceTables::Fit<std::optional<FlowPrediction>>>();
      coalesce_->predict.emplace(CoalesceTables::Key{snap->epoch, std::move(key)}, fit);
      leader = true;
    }
  }
  if (rejected) {
    predict_rejected_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  if (!leader) {
    coalesce_hits_.fetch_add(1, std::memory_order_relaxed);
    return fit->future.get();
  }

  computations_.fetch_add(1, std::memory_order_relaxed);
  std::optional<FlowPrediction> result;
  try {
    ScratchLease scratch = lease_scratch();
    result = answer_predict(*snap, request, horizon, scratch.get());
  } catch (...) {
    fits_in_flight_.fetch_sub(1, std::memory_order_relaxed);
    fit->promise.set_exception(std::current_exception());
    throw;
  }
  fits_in_flight_.fetch_sub(1, std::memory_order_relaxed);
  fit->promise.set_value(result);
  return result;
}

// ---- retained mutex baseline ---------------------------------------------

VirtualTopology QueryServer::topology_query_locked(const std::vector<net::Ipv4Address>& nodes) {
  queries_total_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lock(serve_mu_);
  const QuerySnapshot snap = build_snapshot();
  return answer_topology(snap, nodes);
}

std::vector<FlowInfo> QueryServer::flow_query_locked(const FlowQuery& query) {
  queries_total_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lock(serve_mu_);
  const QuerySnapshot snap = build_snapshot();
  return answer_flows(snap, query, locked_scratch_);
}

std::optional<FlowPrediction> QueryServer::predict_flow_locked(const FlowRequest& request,
                                                               std::size_t horizon) {
  queries_total_.fetch_add(1, std::memory_order_relaxed);
  if (horizon == 0) horizon = config_.prediction_horizon;
  std::lock_guard lock(serve_mu_);
  const QuerySnapshot snap = build_snapshot();
  return answer_predict(snap, request, horizon, locked_scratch_);
}

QueryServer::ScratchLease QueryServer::lease_scratch() const {
  std::unique_ptr<MaxMinScratch> scratch;
  {
    std::lock_guard lock(scratch_mu_);
    if (!scratch_pool_.empty()) {
      scratch = std::move(scratch_pool_.back());
      scratch_pool_.pop_back();
    }
  }
  if (!scratch) scratch = std::make_unique<MaxMinScratch>();
  return ScratchLease(*this, std::move(scratch));
}

}  // namespace remos::core
