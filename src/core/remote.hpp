// Remote collector access: a server that exposes any Collector over a wire
// protocol, and a client-side stub that *is* a Collector. Together they let
// a Modeler (or a Master Collector) talk to collectors at remote sites
// exactly as it talks to local ones — the property the paper's architecture
// depends on ("Local or global collectors at remote sites can be contacted
// to obtain information about those remote sites").
//
// The transport is a pluggable request->response function; tests use an
// in-memory loopback standing in for the TCP socket of the original system.
#pragma once

#include <functional>
#include <map>

#include "core/collector.hpp"
#include "core/protocol.hpp"

namespace remos::core {

/// Serves one Collector over the chosen protocol. ASCII handles queries
/// only; XML also answers history requests (the paper's motivation for the
/// protocol transition).
class CollectorServer {
 public:
  CollectorServer(Collector& collector, ProtocolKind protocol);

  /// Handle one request (wire format in, wire format out). Malformed
  /// requests yield an empty string (connection reset, in spirit).
  [[nodiscard]] std::string handle(const std::string& request);

  [[nodiscard]] ProtocolKind protocol() const { return protocol_; }
  [[nodiscard]] std::uint64_t requests_handled() const { return handled_; }

 private:
  Collector& collector_;
  ProtocolKind protocol_;
  std::uint64_t handled_ = 0;
};

/// Client stub: forwards Collector calls through a transport to a
/// CollectorServer. Registerable in a directory like any local collector.
class RemoteCollector final : public Collector {
 public:
  using Transport = std::function<std::string(const std::string&)>;

  RemoteCollector(std::string name, std::vector<net::Ipv4Prefix> responsibility,
                  Transport transport, ProtocolKind protocol);

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] std::vector<net::Ipv4Prefix> responsibility() const override {
    return responsibility_;
  }
  CollectorResponse query(const std::vector<net::Ipv4Address>& nodes) override;

  /// Only available over the XML protocol; the ASCII protocol "only
  /// topologies are exchanged" limitation returns nullptr.
  [[nodiscard]] const sim::MeasurementHistory* history(const std::string& resource_id) const override;

 private:
  std::string name_;
  std::vector<net::Ipv4Prefix> responsibility_;
  Transport transport_;
  ProtocolKind protocol_;
  /// Materialized histories fetched over the wire.
  mutable std::map<std::string, sim::MeasurementHistory> history_cache_;
};

/// In-memory loopback transport bound to a server (the test/sim stand-in
/// for a TCP connection).
[[nodiscard]] RemoteCollector::Transport loopback_transport(CollectorServer& server);

}  // namespace remos::core
