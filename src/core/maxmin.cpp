#include "core/maxmin.hpp"

#include "core/audit.hpp"
#include "core/obs.hpp"
#include "core/waterfill.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace remos::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Directed resource key for edge `ei` traversed a->b (dir 0) or b->a (1).
std::uint32_t resource_key(std::size_t ei, bool ab) {
  return static_cast<std::uint32_t>(ei * 2 + (ab ? 0 : 1));
}

}  // namespace

MaxMinResult max_min_allocate(const VirtualTopology& topo,
                              const std::vector<FlowRequest>& requests,
                              MaxMinScratch& scratch) {
  auto& [solver, capacity, offsets, resources, demand, rates, dense_to_request, routed] = scratch;

  MaxMinResult result;
  // remos-analyze: allow(hotpath): the result vector is the product of the query, sized once and returned to the caller; everything else lives in the scratch arenas
  result.flows.resize(requests.size());

  // Per-flow routing scratch: clear() keeps each element's capacity, so a
  // steady stream of similar queries reassembles paths with no heap churn.
  routed.resize(requests.size());
  for (auto& r : routed) {
    r.resources.clear();
    r.edge_ids.clear();
    r.latency_s = 0.0;
    r.routable = false;
  }
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const VNodeIndex src = topo.find_by_addr(requests[i].src);
    const VNodeIndex dst = topo.find_by_addr(requests[i].dst);
    if (src == kNoVNode || dst == kNoVNode) continue;
    auto path = topo.shortest_path(src, dst);
    if (!path) continue;
    auto& rf = routed[i];
    rf.routable = true;
    rf.demand = requests[i].demand_bps;
    rf.bottleneck_capacity = kInf;
    VNodeIndex cur = src;
    for (std::size_t ei : *path) {
      const VEdge& e = topo.edges()[ei];
      const bool ab = (e.a == cur);
      rf.resources.push_back(resource_key(ei, ab));
      rf.latency_s += e.latency_s;
      rf.edge_ids.push_back(e.id);
      // Zero capacity means unknown (virtual-switch edge): not a bottleneck.
      if (e.capacity_bps > 0.0) {
        rf.bottleneck_capacity = std::min(rf.bottleneck_capacity, e.capacity_bps);
      }
      cur = ab ? e.b : e.a;
    }
    if (!std::isfinite(rf.bottleneck_capacity)) rf.bottleneck_capacity = 0.0;
  }

  // Progressive filling via the shared water-filling kernel. Resources are
  // directed edges (key 2*edge+dir) with the edge direction's *available*
  // bandwidth as capacity; unroutable flows stay out of the problem (and
  // keep rate 0). All problem arrays live in the caller-owned scratch, so
  // steady-state queries allocate nothing here.
  // Capacity slots for resources no routed flow references are never read
  // by the kernel, so stale values from earlier queries are harmless.
  capacity.resize(topo.edge_count() * 2);
  offsets.clear();
  offsets.push_back(0);
  resources.clear();
  demand.clear();
  dense_to_request.clear();
  for (std::size_t i = 0; i < routed.size(); ++i) {
    if (!routed[i].routable) continue;
    for (const std::uint32_t key : routed[i].resources) {
      const std::size_t ei = key / 2;
      const bool ab = (key % 2) == 0;
      capacity[key] = topo.edges()[ei].available_bps(ab);
      resources.push_back(key);
    }
    offsets.push_back(resources.size());
    demand.push_back(routed[i].demand);
    dense_to_request.push_back(i);
  }
  rates.assign(demand.size(), 0.0);
  WaterfillOptions options;
  options.clamp_negative_level = true;
  const WaterfillStats stats =
      solver.solve(capacity, offsets, resources, demand, rates, options);

  for (std::size_t d = 0; d < dense_to_request.size(); ++d) {
    const std::size_t i = dense_to_request[d];
    FlowInfo& info = result.flows[i];
    info.available_bps = rates[d];
    info.bottleneck_capacity_bps = routed[i].bottleneck_capacity;
    info.latency_s = routed[i].latency_s;
    info.path_edge_ids = std::move(routed[i].edge_ids);
  }
  sim::metrics().counter("core.maxmin.solves_total").inc();
  sim::metrics().counter("core.maxmin.iterations_total").inc(stats.rounds);
  sim::metrics().counter("core.maxmin.demand_frozen_total").inc(stats.demand_frozen);
  sim::metrics().counter("core.maxmin.saturation_frozen_total").inc(stats.saturation_frozen);
  // Every allocation leaves through this audit: feasibility (no directed
  // edge overcommitted) and max-min optimality (unsatisfied flows are
  // bottlenecked) are checked before any caller sees the answer.
  audit::audit_max_min(topo, requests, result);
  return result;
}

MaxMinResult max_min_allocate(const VirtualTopology& topo,
                              const std::vector<FlowRequest>& requests) {
  MaxMinScratch scratch;
  return max_min_allocate(topo, requests, scratch);
}

FlowInfo single_flow_info(const VirtualTopology& topo, const FlowRequest& request,
                          MaxMinScratch& scratch) {
  MaxMinResult r = max_min_allocate(topo, {request}, scratch);
  return r.flows.empty() ? FlowInfo{} : std::move(r.flows.front());
}

FlowInfo single_flow_info(const VirtualTopology& topo, const FlowRequest& request) {
  MaxMinScratch scratch;
  return single_flow_info(topo, request, scratch);
}

}  // namespace remos::core
