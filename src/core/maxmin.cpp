#include "core/maxmin.hpp"

#include "core/audit.hpp"
#include "core/obs.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

namespace remos::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct RoutedFlow {
  std::vector<std::size_t> resources;  // directed-edge resource keys
  double demand = kInf;
  double latency_s = 0.0;
  double bottleneck_capacity = 0.0;
  std::vector<std::string> edge_ids;
  bool routable = false;
};

/// Directed resource key for edge `ei` traversed a->b (dir 0) or b->a (1).
std::size_t resource_key(std::size_t ei, bool ab) { return ei * 2 + (ab ? 0 : 1); }

}  // namespace

MaxMinResult max_min_allocate(const VirtualTopology& topo,
                              const std::vector<FlowRequest>& requests) {
  MaxMinResult result;
  result.flows.resize(requests.size());

  std::vector<RoutedFlow> routed(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const VNodeIndex src = topo.find_by_addr(requests[i].src);
    const VNodeIndex dst = topo.find_by_addr(requests[i].dst);
    if (src == kNoVNode || dst == kNoVNode) continue;
    auto path = topo.shortest_path(src, dst);
    if (!path) continue;
    RoutedFlow& rf = routed[i];
    rf.routable = true;
    rf.demand = requests[i].demand_bps;
    rf.bottleneck_capacity = kInf;
    VNodeIndex cur = src;
    for (std::size_t ei : *path) {
      const VEdge& e = topo.edges()[ei];
      const bool ab = (e.a == cur);
      rf.resources.push_back(resource_key(ei, ab));
      rf.latency_s += e.latency_s;
      rf.edge_ids.push_back(e.id);
      // Zero capacity means unknown (virtual-switch edge): not a bottleneck.
      if (e.capacity_bps > 0.0) {
        rf.bottleneck_capacity = std::min(rf.bottleneck_capacity, e.capacity_bps);
      }
      cur = ab ? e.b : e.a;
    }
    if (!std::isfinite(rf.bottleneck_capacity)) rf.bottleneck_capacity = 0.0;
  }

  // Residual capacity per directed edge.
  std::unordered_map<std::size_t, double> capacity;
  std::unordered_map<std::size_t, std::uint32_t> unfrozen_count;
  for (std::size_t i = 0; i < routed.size(); ++i) {
    if (!routed[i].routable) continue;
    VNodeIndex unused = kNoVNode;
    (void)unused;
    for (std::size_t key : routed[i].resources) {
      const std::size_t ei = key / 2;
      const bool ab = (key % 2) == 0;
      capacity.try_emplace(key, topo.edges()[ei].available_bps(ab));
      ++unfrozen_count[key];
    }
  }

  // Progressive filling.
  std::vector<bool> frozen(routed.size(), false);
  std::vector<double> rate(routed.size(), 0.0);
  std::unordered_map<std::size_t, double> frozen_usage;
  std::size_t remaining = 0;
  for (std::size_t i = 0; i < routed.size(); ++i) {
    if (routed[i].routable) {
      ++remaining;
    } else {
      frozen[i] = true;
    }
  }
  std::uint64_t iterations = 0;
  std::uint64_t demand_frozen = 0;
  std::uint64_t saturation_frozen = 0;
  while (remaining > 0) {
    ++iterations;
    double level = kInf;
    for (const auto& [key, cap] : capacity) {
      const auto n = unfrozen_count[key];
      if (n == 0) continue;
      level = std::min(level, (cap - frozen_usage[key]) / static_cast<double>(n));
    }
    for (std::size_t i = 0; i < routed.size(); ++i) {
      if (!frozen[i]) level = std::min(level, routed[i].demand);
    }
    if (!std::isfinite(level)) break;
    if (level < 0.0) level = 0.0;

    std::vector<std::size_t> freeze;
    for (std::size_t i = 0; i < routed.size(); ++i) {
      if (frozen[i]) continue;
      if (routed[i].demand <= level + 1e-9) {
        freeze.push_back(i);
        ++demand_frozen;
        continue;
      }
      for (std::size_t key : routed[i].resources) {
        const double sat =
            (capacity[key] - frozen_usage[key]) / static_cast<double>(unfrozen_count[key]);
        if (sat <= level + 1e-9) {
          freeze.push_back(i);
          ++saturation_frozen;
          break;
        }
      }
    }
    if (freeze.empty()) break;  // numerical guard
    for (std::size_t i : freeze) {
      rate[i] = std::min(level, routed[i].demand);
      frozen[i] = true;
      --remaining;
      for (std::size_t key : routed[i].resources) {
        frozen_usage[key] += rate[i];
        --unfrozen_count[key];
      }
    }
  }

  for (std::size_t i = 0; i < routed.size(); ++i) {
    FlowInfo& info = result.flows[i];
    if (!routed[i].routable) continue;
    info.available_bps = rate[i];
    info.bottleneck_capacity_bps = routed[i].bottleneck_capacity;
    info.latency_s = routed[i].latency_s;
    info.path_edge_ids = routed[i].edge_ids;
  }
  sim::metrics().counter("core.maxmin.solves_total").inc();
  sim::metrics().counter("core.maxmin.iterations_total").inc(iterations);
  sim::metrics().counter("core.maxmin.demand_frozen_total").inc(demand_frozen);
  sim::metrics().counter("core.maxmin.saturation_frozen_total").inc(saturation_frozen);
  // Every allocation leaves through this audit: feasibility (no directed
  // edge overcommitted) and max-min optimality (unsatisfied flows are
  // bottlenecked) are checked before any caller sees the answer.
  audit::audit_max_min(topo, requests, result);
  return result;
}

FlowInfo single_flow_info(const VirtualTopology& topo, const FlowRequest& request) {
  MaxMinResult r = max_min_allocate(topo, {request});
  return r.flows.empty() ? FlowInfo{} : std::move(r.flows.front());
}

}  // namespace remos::core
