#include "core/app_collector.hpp"

#include <algorithm>
#include <cmath>

#include "core/audit.hpp"

namespace remos::core {

AppFeedbackCollector::AppFeedbackCollector(sim::Engine& engine, AppFeedbackConfig config)
    : engine_(engine), config_(std::move(config)) {}

AppFeedbackCollector::PairKey AppFeedbackCollector::key_of(net::Ipv4Address a,
                                                           net::Ipv4Address b) {
  return a < b ? PairKey{a, b} : PairKey{b, a};
}

std::string AppFeedbackCollector::id_of(const PairKey& key) {
  return "app:" + key.first.to_string() + "-" + key.second.to_string();
}

void AppFeedbackCollector::report(net::Ipv4Address src, net::Ipv4Address dst,
                                  double achieved_bps) {
  if (achieved_bps <= 0.0 || src == dst) return;  // nothing observable
  // NaN slips past the <= 0 guard and would poison every mean over the
  // pair's history.
  REMOS_CHECK(std::isfinite(achieved_bps), "app-reported bandwidth must be finite");
  auto [it, inserted] =
      pairs_.try_emplace(key_of(src, dst), sim::MeasurementHistory(config_.history_capacity));
  (void)inserted;
  it->second.add(engine_.now(), achieved_bps);
  ++reports_;
}

std::optional<double> AppFeedbackCollector::observed_bandwidth(net::Ipv4Address a,
                                                               net::Ipv4Address b) const {
  auto it = pairs_.find(key_of(a, b));
  if (it == pairs_.end() || it->second.empty()) return std::nullopt;
  const sim::Sample& latest = it->second.latest();
  if (engine_.now() - latest.time > config_.report_ttl_s) return std::nullopt;
  return latest.value;
}

std::optional<double> AppFeedbackCollector::mean_bandwidth(net::Ipv4Address a,
                                                           net::Ipv4Address b) const {
  auto it = pairs_.find(key_of(a, b));
  if (it == pairs_.end()) return std::nullopt;
  const double mean =
      it->second.mean_over(engine_.now() - config_.report_ttl_s, engine_.now());
  if (it->second.window(engine_.now() - config_.report_ttl_s, engine_.now()).empty()) {
    return std::nullopt;
  }
  return mean;
}

CollectorResponse AppFeedbackCollector::query(const std::vector<net::Ipv4Address>& nodes) {
  CollectorResponse resp;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      const auto bw = observed_bandwidth(nodes[i], nodes[j]);
      if (!bw) {
        // Passive collection can only speak about pairs applications have
        // exercised; unknown pairs make the answer incomplete.
        resp.complete = false;
        continue;
      }
      const VNodeIndex a = resp.topology.ensure_node(
          VNode{VNodeKind::kHost, "host@" + nodes[i].to_string(), nodes[i]});
      const VNodeIndex b = resp.topology.ensure_node(
          VNode{VNodeKind::kHost, "host@" + nodes[j].to_string(), nodes[j]});
      VEdge e;
      e.a = a;
      e.b = b;
      e.capacity_bps = *bw;  // observed application-level throughput
      e.id = id_of(key_of(nodes[i], nodes[j]));
      resp.topology.add_edge(std::move(e));
    }
  }
  audit::audit_response(resp, engine_.now());
  return resp;
}

const sim::MeasurementHistory* AppFeedbackCollector::history(
    const std::string& resource_id) const {
  for (const auto& [key, hist] : pairs_) {
    if (id_of(key) == resource_id) return &hist;
  }
  return nullptr;
}

}  // namespace remos::core
