#include "core/remote.hpp"

#include <cmath>

#include "core/audit.hpp"

namespace remos::core {

CollectorServer::CollectorServer(Collector& collector, ProtocolKind protocol)
    : collector_(collector), protocol_(protocol) {}

std::string CollectorServer::handle(const std::string& request) {
  ++handled_;
  if (protocol_ == ProtocolKind::kAscii) {
    auto nodes = ascii_decode_query(request);
    if (!nodes) return {};
    return ascii_encode_response(collector_.query(*nodes));
  }
  // XML over HTTP.
  auto framed = http_unframe(request);
  if (!framed) return {};
  const auto& [path, body] = *framed;
  if (path == "/query") {
    auto nodes = xml_decode_query(body);
    if (!nodes) return {};
    return http_frame("/response", xml_encode_response(collector_.query(*nodes)));
  }
  if (path == "/history") {
    auto resource = xml_decode_history_request(body);
    if (!resource) return {};
    const sim::MeasurementHistory* hist = collector_.history(*resource);
    if (hist == nullptr) {
      // Empty history document: resource unknown.
      sim::MeasurementHistory empty(1);
      return http_frame("/history", xml_encode_history(*resource, empty));
    }
    return http_frame("/history", xml_encode_history(*resource, *hist));
  }
  return {};
}

RemoteCollector::RemoteCollector(std::string name, std::vector<net::Ipv4Prefix> responsibility,
                                 Transport transport, ProtocolKind protocol)
    : name_(std::move(name)),
      responsibility_(std::move(responsibility)),
      transport_(std::move(transport)),
      protocol_(protocol) {}

CollectorResponse RemoteCollector::query(const std::vector<net::Ipv4Address>& nodes) {
  // Decoded responses cross a trust boundary: the wire can carry values
  // the local collectors never produce.
  const auto checked = [](CollectorResponse resp) {
    REMOS_CHECK(std::isfinite(resp.cost_s) && resp.cost_s >= 0.0,
                "decoded response cost must be finite and non-negative");
    REMOS_CHECK(std::isfinite(resp.max_staleness_s) && resp.max_staleness_s >= 0.0,
                "decoded response staleness must be finite and non-negative");
    return resp;
  };
  std::string reply;
  if (protocol_ == ProtocolKind::kAscii) {
    reply = transport_(ascii_encode_query(nodes));
    auto resp = ascii_decode_response(reply);
    if (resp) return checked(std::move(*resp));
  } else {
    reply = transport_(http_frame("/query", xml_encode_query(nodes)));
    if (auto framed = http_unframe(reply)) {
      auto resp = xml_decode_response(framed->second);
      if (resp) return checked(std::move(*resp));
    }
  }
  CollectorResponse failed;
  failed.complete = false;
  return failed;
}

const sim::MeasurementHistory* RemoteCollector::history(const std::string& resource_id) const {
  if (protocol_ != ProtocolKind::kXml) return nullptr;  // ASCII limitation
  const std::string reply =
      transport_(http_frame("/history", xml_encode_history_request(resource_id)));
  auto framed = http_unframe(reply);
  if (!framed) return nullptr;
  auto decoded = xml_decode_history(framed->second);
  if (!decoded || decoded->second.empty()) return nullptr;
  sim::MeasurementHistory materialized(decoded->second.size());
  for (const sim::Sample& s : decoded->second) materialized.add(s.time, s.value);
  auto [it, inserted] = history_cache_.insert_or_assign(resource_id, std::move(materialized));
  (void)inserted;
  return &it->second;
}

RemoteCollector::Transport loopback_transport(CollectorServer& server) {
  return [&server](const std::string& request) { return server.handle(request); };
}

}  // namespace remos::core
