// Benchmark Collector: active end-to-end probing between sites.
//
// "Remos generally cannot obtain SNMP access to network information for
// WANs ... In that case, we fall back on a Benchmark Collector, that does
// explicit testing to determine the performance characteristics of the
// network. A Benchmark Collector is run at each site where an SNMP
// Collector is. When a measurement of performance between multiple sites is
// needed, the Benchmark Collector exchanges data with the Benchmark
// Collector running at the other site of interest."
//
// Probes are finite fluid transfers injected into the simulated network;
// their achieved rate is the measured available bandwidth, and the bytes
// they inject are the intrusiveness cost the paper's §6.1 worries about
// ("benchmarks ... too expensive and intrusive for many types of
// networks").
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/collector.hpp"
#include "net/flows.hpp"
#include "sim/engine.hpp"
#include "sim/stats.hpp"

namespace remos::core {

struct BenchmarkCollectorConfig {
  std::string name = "benchmark-collector";
  /// Transfer size of one probe.
  std::uint64_t probe_bytes = 512 * 1024;
  /// A cached measurement older than this triggers a refresh on access.
  double cache_ttl_s = 60.0;
  /// Periodic re-measurement interval for registered peers (0 = on demand).
  double period_s = 0.0;
  std::size_t history_capacity = 4096;
};

class BenchmarkCollector final : public Collector {
 public:
  BenchmarkCollector(sim::Engine& engine, net::FlowEngine& flows,
                     BenchmarkCollectorConfig config = {});
  ~BenchmarkCollector() override;
  BenchmarkCollector(const BenchmarkCollector&) = delete;
  BenchmarkCollector& operator=(const BenchmarkCollector&) = delete;

  /// Register a site's benchmark daemon (a host that sources/sinks probes).
  void add_daemon(std::string site, net::NodeId host, net::Ipv4Address addr);

  /// Register a site pair for periodic measurement (requires period_s > 0;
  /// call start_periodic() once after registering).
  void add_peer(const std::string& site_a, const std::string& site_b);
  void start_periodic();

  /// Launch one probe now; `done(bps)` fires from the event loop when the
  /// probe drains. Returns false when either site is unknown or a probe
  /// for the pair is already in flight.
  bool measure_now(const std::string& site_a, const std::string& site_b,
                   std::function<void(double)> done = {});

  /// Latest measured available bandwidth for a pair (bits/second). When
  /// the value is stale, a background refresh is scheduled but the stale
  /// value is still returned ("collectors aggressively cache information").
  [[nodiscard]] std::optional<double> available_bandwidth(const std::string& site_a,
                                                          const std::string& site_b);

  [[nodiscard]] const sim::MeasurementHistory* pair_history(const std::string& site_a,
                                                            const std::string& site_b) const;

  /// Total probe bytes injected into the network (intrusiveness metric).
  [[nodiscard]] std::uint64_t bytes_injected() const { return bytes_injected_; }
  [[nodiscard]] std::uint64_t probes_completed() const { return probes_completed_; }

  // ---- latency/jitter metrics (§6.2's "metrics other than bandwidth") ----

  /// Take one ping-like RTT sample between two sites and record it.
  /// Returns the RTT (seconds); nullopt when either site is unknown.
  std::optional<double> ping(const std::string& site_a, const std::string& site_b);
  /// Piggy-back an RTT sample on every periodic bandwidth measurement.
  void enable_latency_probes() { latency_probes_ = true; }
  /// Mean RTT over recorded samples; nullopt when never pinged.
  [[nodiscard]] std::optional<double> latency(const std::string& site_a,
                                              const std::string& site_b) const;
  /// RTT standard deviation — the jitter metric multimedia applications
  /// want. nullopt until at least two samples exist.
  [[nodiscard]] std::optional<double> jitter(const std::string& site_a,
                                             const std::string& site_b) const;

  [[nodiscard]] std::optional<net::Ipv4Address> daemon_addr(const std::string& site) const;

  // Collector interface: topology of WAN pair edges among requested nodes.
  [[nodiscard]] std::string name() const override { return config_.name; }
  [[nodiscard]] std::vector<net::Ipv4Prefix> responsibility() const override;
  CollectorResponse query(const std::vector<net::Ipv4Address>& nodes) override;
  [[nodiscard]] const sim::MeasurementHistory* history(const std::string& resource_id) const override;

 private:
  struct Daemon {
    std::string site;
    net::NodeId host = net::kNone;
    net::Ipv4Address addr{};
  };
  struct PairState {
    sim::MeasurementHistory history;
    sim::MeasurementHistory rtt_history;
    sim::Time last_measured = -1.0;
    bool in_flight = false;
    explicit PairState(std::size_t cap) : history(cap), rtt_history(cap) {}
  };
  using PairKey = std::pair<std::string, std::string>;

  static PairKey key_of(const std::string& a, const std::string& b);
  PairState& pair_state(const PairKey& key);
  const Daemon* find_daemon(const std::string& site) const;

  sim::Engine& engine_;
  net::FlowEngine& flows_;
  BenchmarkCollectorConfig config_;
  std::vector<Daemon> daemons_;
  std::map<PairKey, PairState> pairs_;
  std::vector<PairKey> periodic_peers_;
  sim::TaskId periodic_task_ = 0;
  bool latency_probes_ = false;
  std::uint64_t bytes_injected_ = 0;
  std::uint64_t probes_completed_ = 0;
};

}  // namespace remos::core
