// Remos core data types: the virtual topology graph exchanged between
// collectors and modelers, and the query/response structures of the
// Remos API (topology queries and flow queries).
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "net/ipv4.hpp"
#include "sim/stats.hpp"

namespace remos::core {

/// Index of a vertex within a VirtualTopology.
using VNodeIndex = std::uint32_t;
inline constexpr VNodeIndex kNoVNode = ~0u;

enum class VNodeKind : std::uint8_t {
  kHost,
  kRouter,
  kSwitch,
  /// Synthesized by a collector/modeler to stand for network elements it
  /// could not access (shared Ethernet, unmanageable routers, a WAN cloud).
  kVirtualSwitch,
};

[[nodiscard]] const char* to_string(VNodeKind kind);

struct VNode {
  VNodeKind kind = VNodeKind::kHost;
  std::string name;           // device name, or synthesized vswitch label
  net::Ipv4Address addr{};    // primary address (zero for virtual switches)
};

/// Undirected edge carrying per-direction measurements (full duplex).
struct VEdge {
  VNodeIndex a = kNoVNode;
  VNodeIndex b = kNoVNode;
  double capacity_bps = 0.0;       // link capacity (0 = unknown)
  double util_ab_bps = 0.0;        // measured traffic a -> b
  double util_ba_bps = 0.0;        // measured traffic b -> a
  double latency_s = 0.0;
  std::string id;                  // stable resource identifier for history lookups
  /// Quality annotation: age (seconds) of the utilization measurements at
  /// response time. 0 = fresh (or unmeasured — capacity-only edges). Grows
  /// while the monitoring agent is unreachable; resets when it recovers.
  double staleness_s = 0.0;

  /// Available bandwidth in the given direction. A zero capacity means
  /// "unknown" (an unmeasurable virtual-switch edge) and is treated as
  /// unconstrained — the constraint lives on the measurable edges.
  [[nodiscard]] double available_bps(bool ab) const {
    if (capacity_bps <= 0.0) return std::numeric_limits<double>::infinity();
    const double used = ab ? util_ab_bps : util_ba_bps;
    const double avail = capacity_bps - used;
    return avail > 0.0 ? avail : 0.0;
  }
};

/// The graph form in which Remos reports network state. Vertices are keyed
/// by name (devices) so topologies from different collectors merge cleanly.
class VirtualTopology {
 public:
  VNodeIndex add_node(VNode node);
  /// Find-or-create by name; existing node wins (its kind/addr kept).
  VNodeIndex ensure_node(VNode node);
  /// Add an edge; duplicate (a,b,id) edges update measurements instead.
  std::size_t add_edge(VEdge edge);

  [[nodiscard]] VNodeIndex find_by_name(std::string_view name) const;
  [[nodiscard]] VNodeIndex find_by_addr(net::Ipv4Address addr) const;

  [[nodiscard]] const std::vector<VNode>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<VEdge>& edges() const { return edges_; }
  [[nodiscard]] std::vector<VEdge>& edges() { return edges_; }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }

  /// Edge indices incident to a vertex.
  [[nodiscard]] std::vector<std::size_t> incident_edges(VNodeIndex v) const;

  /// Union with another topology (vertices merged by name). Edge
  /// measurements from `other` overwrite same-id edges.
  void merge(const VirtualTopology& other);

  /// Shortest path (hop count) between two vertices; edge indices in
  /// order. Empty when src == dst; nullopt when disconnected.
  [[nodiscard]] std::optional<std::vector<std::size_t>> shortest_path(VNodeIndex src,
                                                                      VNodeIndex dst) const;

  /// Multi-line human-readable rendering (examples print this).
  [[nodiscard]] std::string to_text() const;

 private:
  std::vector<VNode> nodes_;
  std::vector<VEdge> edges_;
};

// ---------------------------------------------------------------------------
// Remos API queries
// ---------------------------------------------------------------------------

/// Topology query: "give me the virtual topology connecting these nodes".
struct TopologyQuery {
  std::vector<net::Ipv4Address> nodes;
};

/// One requested flow in a flow query.
struct FlowRequest {
  net::Ipv4Address src{};
  net::Ipv4Address dst{};
  /// Application demand cap; infinity = "as much as possible".
  double demand_bps = std::numeric_limits<double>::infinity();
};

/// Flow query: predicted performance for a *set* of flows introduced
/// simultaneously (they share bottlenecks max-min fairly).
struct FlowQuery {
  std::vector<FlowRequest> flows;
};

struct FlowInfo {
  /// Max-min bandwidth this new flow can expect, given measured residual
  /// capacity and the other flows in the same query.
  double available_bps = 0.0;
  /// Raw bottleneck capacity along the chosen path.
  double bottleneck_capacity_bps = 0.0;
  double latency_s = 0.0;
  /// Edge ids of the path used (empty when unroutable).
  std::vector<std::string> path_edge_ids;
  [[nodiscard]] bool routable() const { return !path_edge_ids.empty(); }
};

/// Prediction of future available bandwidth for one flow.
struct FlowPrediction {
  std::vector<double> mean_bps;
  std::vector<double> variance;
  std::string model_name;
};

/// What collectors return: a topology plus the virtual time the collector
/// spent assembling it (SNMP round trips etc.) — the "query time" axis of
/// the paper's Fig 3.
struct CollectorResponse {
  VirtualTopology topology;
  double cost_s = 0.0;
  bool complete = true;  // false when parts of the query failed
  /// Worst-case measurement age across the reported edges — applications
  /// (and upstream Master Collectors) use it to judge answer quality when
  /// agents are flapping.
  double max_staleness_s = 0.0;
};

}  // namespace remos::core
