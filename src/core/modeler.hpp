// Modeler: the component that implements the Remos API.
//
// "Modelers provide the Remos API to the application and communicate with
// a collector to obtain information needed to respond to queries made
// through the API." The Modeler post-processes collector topologies
// (virtual-switch simplification), answers flow queries with max-min flow
// calculations, and acts as the intermediary to the RPS prediction service
// when predictions are requested.
#pragma once

#include <optional>

#include "core/collector.hpp"
#include "core/maxmin.hpp"
#include "core/types.hpp"
#include "rps/predictor.hpp"

namespace remos::core {

struct ModelerConfig {
  std::string name = "modeler";
  /// Collapse pure switch clusters into single virtual switches when
  /// reporting topology to the application.
  bool simplify_topology = true;
  /// Model used for client-server predictions (AR(16) per the paper's
  /// host-load findings; bandwidth model choice is an open question there).
  rps::ModelSpec prediction_model = rps::ModelSpec::ar(16);
  std::size_t prediction_horizon = 30;
  /// Minimum history samples before a prediction is attempted.
  std::size_t min_history = 64;
};

class Modeler {
 public:
  explicit Modeler(Collector& collector, ModelerConfig config = {});

  // ---- Remos API ----

  /// Topology query: the virtual topology connecting `nodes`, simplified
  /// for application consumption.
  [[nodiscard]] VirtualTopology topology_query(const std::vector<net::Ipv4Address>& nodes);

  /// Flow query: predicted max-min bandwidth for a set of flows introduced
  /// together. "the Modeler reports only the bottleneck available
  /// bandwidth to the application."
  [[nodiscard]] std::vector<FlowInfo> flow_query(const FlowQuery& query);

  /// Single-flow convenience.
  [[nodiscard]] FlowInfo flow_info(net::Ipv4Address src, net::Ipv4Address dst);

  /// Future available bandwidth of a flow's bottleneck, via the RPS
  /// client-server interface over the collector's measurement history.
  [[nodiscard]] std::optional<FlowPrediction> predict_flow(const FlowRequest& request,
                                                           std::size_t horizon = 0);

  /// Collector time spent answering the most recent query — applications
  /// computing *effective* bandwidth (Figs 8-9) add this to transfer time.
  [[nodiscard]] double last_query_cost_s() const { return last_cost_s_; }
  [[nodiscard]] bool last_query_complete() const { return last_complete_; }
  /// Worst measurement age in the most recent answer (0 = all fresh).
  /// Rises while agents along the reported paths are unreachable.
  [[nodiscard]] double last_query_staleness_s() const { return last_staleness_s_; }

  /// Collapse maximal switch/virtual-switch clusters into single virtual
  /// switches; endpoints keep their access-link capacity and utilization.
  [[nodiscard]] static VirtualTopology simplify(const VirtualTopology& topo);

 private:
  VirtualTopology fetch(const std::vector<net::Ipv4Address>& nodes);

  Collector& collector_;
  ModelerConfig config_;
  rps::ClientServerPredictor predictor_;
  /// Max-min problem arenas, reused across flow queries. Explicitly owned
  /// here (one scratch per Modeler, which is single-threaded per instance)
  /// rather than hidden in thread_local storage inside the allocator.
  MaxMinScratch maxmin_scratch_;
  double last_cost_s_ = 0.0;
  bool last_complete_ = true;
  double last_staleness_s_ = 0.0;
};

}  // namespace remos::core
