#include "core/gma.hpp"

#include <algorithm>

namespace remos::core::gma {

const char* to_string(EventType type) {
  switch (type) {
    case EventType::kTopology: return "topology";
    case EventType::kHistory: return "history";
  }
  return "?";
}

void DirectoryService::register_producer(Registration registration) {
  // Hoist the key: reading registration.name in the same full-expression
  // that moves `registration` trips bugprone-use-after-move.
  std::string name = registration.name;
  entries_[std::move(name)] = std::move(registration);
}

void DirectoryService::unregister(const std::string& name) { entries_.erase(name); }

std::vector<Producer*> DirectoryService::lookup(net::Ipv4Address subject) const {
  // Collect matches with their best (longest) covering prefix length.
  std::vector<std::pair<int, Producer*>> matches;
  for (const auto& [name, reg] : entries_) {
    (void)name;
    int best = -1;
    for (const auto& prefix : reg.subjects) {
      if (prefix.contains(subject)) best = std::max(best, prefix.length());
    }
    if (best >= 0 && reg.producer != nullptr) matches.emplace_back(best, reg.producer);
  }
  std::stable_sort(matches.begin(), matches.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<Producer*> out;
  out.reserve(matches.size());
  for (const auto& [len, producer] : matches) {
    (void)len;
    out.push_back(producer);
  }
  return out;
}

std::vector<Producer*> DirectoryService::lookup(net::Ipv4Address subject,
                                                const std::string& producer_class) const {
  std::vector<Producer*> filtered;
  for (Producer* p : lookup(subject)) {
    for (const auto& [name, reg] : entries_) {
      (void)name;
      if (reg.producer == p && reg.producer_class == producer_class) {
        filtered.push_back(p);
        break;
      }
    }
  }
  return filtered;
}

const DirectoryService::Registration* DirectoryService::find(const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

CollectorResponse DirectoryConsumer::query(const std::vector<net::Ipv4Address>& subjects) {
  ++queries_;
  CollectorResponse resp;
  // Group subjects by their best producer.
  std::map<Producer*, std::vector<net::Ipv4Address>> groups;
  for (net::Ipv4Address subject : subjects) {
    const auto producers = directory_.lookup(subject);
    if (producers.empty()) {
      resp.complete = false;
      continue;
    }
    groups[producers.front()].push_back(subject);
  }
  for (auto& [producer, members] : groups) {
    CollectorResponse sub = producer->produce_topology(members);
    resp.topology.merge(sub.topology);
    resp.cost_s += sub.cost_s;
    resp.complete = resp.complete && sub.complete;
  }
  return resp;
}

}  // namespace remos::core::gma
