#include <charconv>

#include "core/protocol.hpp"
#include "core/xml.hpp"

namespace remos::core {
namespace {

std::optional<VNodeKind> kind_from_token(const std::string& token) {
  if (token == "host") return VNodeKind::kHost;
  if (token == "router") return VNodeKind::kRouter;
  if (token == "switch") return VNodeKind::kSwitch;
  if (token == "vswitch") return VNodeKind::kVirtualSwitch;
  return std::nullopt;
}

}  // namespace

std::string xml_encode_query(const std::vector<net::Ipv4Address>& nodes) {
  XmlElement root("query");
  for (net::Ipv4Address a : nodes) root.add_child("node").set_attr("addr", a.to_string());
  return root.to_string();
}

std::optional<std::vector<net::Ipv4Address>> xml_decode_query(const std::string& wire) {
  auto root = xml_parse(wire);
  if (!root || root->name != "query") return std::nullopt;
  std::vector<net::Ipv4Address> nodes;
  for (const XmlElement* node : root->children_named("node")) {
    auto addr_text = node->attr("addr");
    if (!addr_text) return std::nullopt;
    auto addr = net::Ipv4Address::parse(*addr_text);
    if (!addr) return std::nullopt;
    nodes.push_back(*addr);
  }
  return nodes;
}

std::string xml_encode_response(const CollectorResponse& response) {
  XmlElement root("response");
  root.set_attr("cost", response.cost_s);
  root.set_attr("complete", std::int64_t{response.complete ? 1 : 0});
  if (response.max_staleness_s > 0.0) root.set_attr("staleness", response.max_staleness_s);
  XmlElement& topo = root.add_child("topology");
  for (const VNode& n : response.topology.nodes()) {
    XmlElement& vn = topo.add_child("vnode");
    vn.set_attr("kind", std::string(to_string(n.kind)));
    vn.set_attr("name", n.name);
    vn.set_attr("addr", n.addr.to_string());
  }
  for (const VEdge& e : response.topology.edges()) {
    XmlElement& ve = topo.add_child("vedge");
    ve.set_attr("a", std::int64_t{e.a});
    ve.set_attr("b", std::int64_t{e.b});
    ve.set_attr("capacity", e.capacity_bps);
    ve.set_attr("utilab", e.util_ab_bps);
    ve.set_attr("utilba", e.util_ba_bps);
    ve.set_attr("latency", e.latency_s);
    ve.set_attr("id", e.id);
    if (e.staleness_s > 0.0) ve.set_attr("staleness", e.staleness_s);
  }
  return root.to_string();
}

std::optional<CollectorResponse> xml_decode_response(const std::string& wire) {
  auto root = xml_parse(wire);
  if (!root || root->name != "response") return std::nullopt;
  CollectorResponse resp;
  resp.cost_s = root->attr_double("cost");
  resp.complete = root->attr_int("complete", 1) != 0;
  resp.max_staleness_s = root->attr_double("staleness");
  const XmlElement* topo = root->first_child("topology");
  if (topo == nullptr) return std::nullopt;
  for (const XmlElement* vn : topo->children_named("vnode")) {
    auto kind = kind_from_token(vn->attr("kind").value_or(""));
    auto addr = net::Ipv4Address::parse(vn->attr("addr").value_or(""));
    if (!kind || !addr) return std::nullopt;
    resp.topology.add_node(VNode{*kind, vn->attr("name").value_or(""), *addr});
  }
  for (const XmlElement* ve : topo->children_named("vedge")) {
    VEdge e;
    e.a = static_cast<VNodeIndex>(ve->attr_int("a"));
    e.b = static_cast<VNodeIndex>(ve->attr_int("b"));
    if (e.a >= resp.topology.node_count() || e.b >= resp.topology.node_count()) {
      return std::nullopt;
    }
    e.capacity_bps = ve->attr_double("capacity");
    e.util_ab_bps = ve->attr_double("utilab");
    e.util_ba_bps = ve->attr_double("utilba");
    e.latency_s = ve->attr_double("latency");
    e.id = ve->attr("id").value_or("");
    e.staleness_s = ve->attr_double("staleness");
    resp.topology.add_edge(std::move(e));
  }
  return resp;
}

std::string xml_encode_history_request(const std::string& resource_id) {
  XmlElement root("history-request");
  root.set_attr("resource", resource_id);
  return root.to_string();
}

std::optional<std::string> xml_decode_history_request(const std::string& wire) {
  auto root = xml_parse(wire);
  if (!root || root->name != "history-request") return std::nullopt;
  return root->attr("resource");
}

std::string xml_encode_history(const std::string& resource_id,
                               const sim::MeasurementHistory& history) {
  XmlElement root("history");
  root.set_attr("resource", resource_id);
  for (std::size_t i = 0; i < history.size(); ++i) {
    XmlElement& s = root.add_child("sample");
    s.set_attr("t", history.at(i).time);
    s.set_attr("v", history.at(i).value);
  }
  return root.to_string();
}

std::optional<std::pair<std::string, std::vector<sim::Sample>>> xml_decode_history(
    const std::string& wire) {
  auto root = xml_parse(wire);
  if (!root || root->name != "history") return std::nullopt;
  auto resource = root->attr("resource");
  if (!resource) return std::nullopt;
  std::vector<sim::Sample> samples;
  for (const XmlElement* s : root->children_named("sample")) {
    samples.push_back(sim::Sample{s->attr_double("t"), s->attr_double("v")});
  }
  return std::make_pair(*resource, std::move(samples));
}

std::string http_frame(const std::string& path, const std::string& body) {
  std::string out = "POST " + path + " HTTP/1.0\r\n";
  out += "Content-Type: text/xml\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "\r\n";
  out += body;
  return out;
}

std::optional<std::pair<std::string, std::string>> http_unframe(const std::string& wire) {
  const auto line_end = wire.find("\r\n");
  if (line_end == std::string::npos) return std::nullopt;
  const std::string request_line = wire.substr(0, line_end);
  if (!request_line.starts_with("POST ")) return std::nullopt;
  const auto path_end = request_line.find(' ', 5);
  if (path_end == std::string::npos) return std::nullopt;
  const std::string path = request_line.substr(5, path_end - 5);

  const auto headers_end = wire.find("\r\n\r\n");
  if (headers_end == std::string::npos) return std::nullopt;
  // Content-Length validation.
  std::size_t content_length = std::string::npos;
  std::size_t cursor = line_end + 2;
  while (cursor < headers_end) {
    auto eol = wire.find("\r\n", cursor);
    if (eol == std::string::npos || eol > headers_end) eol = headers_end;
    const std::string header = wire.substr(cursor, eol - cursor);
    if (header.starts_with("Content-Length:")) {
      const std::string value = header.substr(15);
      std::size_t v = 0;
      auto trimmed = value;
      trimmed.erase(0, trimmed.find_first_not_of(' '));
      auto [ptr, ec] = std::from_chars(trimmed.data(), trimmed.data() + trimmed.size(), v);
      (void)ptr;
      if (ec == std::errc{}) content_length = v;
    }
    cursor = eol + 2;
  }
  const std::string body = wire.substr(headers_end + 4);
  if (content_length != std::string::npos && content_length != body.size()) return std::nullopt;
  return std::make_pair(path, body);
}

}  // namespace remos::core
