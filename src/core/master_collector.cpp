#include "core/master_collector.hpp"

#include "core/audit.hpp"
#include "core/obs.hpp"

#include <algorithm>
#include <map>

namespace remos::core {

MasterCollector::MasterCollector(MasterCollectorConfig config) : config_(std::move(config)) {}

void MasterCollector::add_site(Site site) {
  directory_.register_collector(*site.collector);
  site_index_.emplace(site.collector, sites_.size());
  sites_.push_back(std::move(site));
}

std::vector<net::Ipv4Prefix> MasterCollector::responsibility() const {
  std::vector<net::Ipv4Prefix> out;
  for (const auto& entry : directory_.entries()) out.push_back(entry.prefix);
  return out;
}

const MasterCollector::Site* MasterCollector::site_of(net::Ipv4Address addr) const {
  Collector* c = directory_.lookup(addr);
  if (c == nullptr) return nullptr;
  auto it = site_index_.find(c);
  return it == site_index_.end() ? nullptr : &sites_[it->second];
}

CollectorResponse MasterCollector::query(const std::vector<net::Ipv4Address>& nodes) {
  auto sp = obs::span("master_collector.query");
  sp.attr("nodes", nodes.size());
  sim::metrics().counter("core.master_collector.queries_total").inc();
  CollectorResponse resp;
  resp.cost_s = config_.merge_overhead_s;

  // Split the query by responsible site.
  std::map<const Site*, std::vector<net::Ipv4Address>> groups;
  for (net::Ipv4Address addr : nodes) {
    const Site* site = site_of(addr);
    if (site == nullptr) {
      resp.complete = false;
      continue;
    }
    groups[site].push_back(addr);
  }
  if (groups.empty()) return resp;

  // Single-site queries pass straight through.
  if (groups.size() == 1) {
    auto& [site, members] = *groups.begin();
    CollectorResponse sub = site->collector->query(members);
    resp.topology = std::move(sub.topology);
    resp.cost_s += sub.cost_s;
    resp.complete = resp.complete && sub.complete;
    resp.max_staleness_s = sub.max_staleness_s;
    return resp;
  }

  // Multi-site: each site answers for its own hosts *plus its border*, so
  // the merged graph can be stitched with WAN edges between borders.
  sp.attr("sites", groups.size());
  sim::metrics().counter("core.master_collector.merges_total").inc();
  sim::metrics().counter("core.master_collector.site_queries_total").inc(groups.size());
  double max_site_cost = 0.0, sum_site_cost = 0.0;
  for (auto& [site, members] : groups) {
    std::vector<net::Ipv4Address> sub_nodes = members;
    if (!site->border.is_zero() &&
        std::find(sub_nodes.begin(), sub_nodes.end(), site->border) == sub_nodes.end()) {
      sub_nodes.push_back(site->border);
    }
    CollectorResponse sub = site->collector->query(sub_nodes);
    resp.topology.merge(sub.topology);
    resp.complete = resp.complete && sub.complete;
    // Worst measurement age across sites bounds the merged answer's quality.
    resp.max_staleness_s = std::max(resp.max_staleness_s, sub.max_staleness_s);
    max_site_cost = std::max(max_site_cost, sub.cost_s);
    sum_site_cost += sub.cost_s;
  }
  resp.cost_s += config_.parallel_sites ? max_site_cost : sum_site_cost;

  // Inter-site connectivity from the Benchmark Collector.
  for (auto it1 = groups.begin(); it1 != groups.end(); ++it1) {
    for (auto it2 = std::next(it1); it2 != groups.end(); ++it2) {
      const Site* a = it1->first;
      const Site* b = it2->first;
      if (benchmark_ == nullptr || a->border.is_zero() || b->border.is_zero()) {
        resp.complete = false;
        continue;
      }
      const auto bw = benchmark_->available_bandwidth(a->name, b->name);
      if (!bw) {
        resp.complete = false;
        continue;
      }
      VNodeIndex va = resp.topology.find_by_addr(a->border);
      VNodeIndex vb = resp.topology.find_by_addr(b->border);
      if (va == kNoVNode) {
        va = resp.topology.add_node(
            VNode{VNodeKind::kHost, "host@" + a->border.to_string(), a->border});
      }
      if (vb == kNoVNode) {
        vb = resp.topology.add_node(
            VNode{VNodeKind::kHost, "host@" + b->border.to_string(), b->border});
      }
      VEdge e;
      e.a = va;
      e.b = vb;
      e.capacity_bps = *bw;  // measured available bandwidth of the WAN path
      const std::string lo = std::min(a->name, b->name);
      const std::string hi = std::max(a->name, b->name);
      e.id = "wan:" + lo + "-" + hi;
      resp.topology.add_edge(std::move(e));
    }
  }
  // The merged, WAN-stitched graph is what applications route over — audit
  // it before it leaves the Master Collector. (No engine clock up here, so
  // the staleness-vs-now response audit stays with the site collectors.)
  audit::audit_topology(resp.topology);
  return resp;
}

const sim::MeasurementHistory* MasterCollector::history(const std::string& resource_id) const {
  if (benchmark_ != nullptr) {
    if (const auto* h = benchmark_->history(resource_id)) return h;
  }
  for (const Site& s : sites_) {
    if (const auto* h = s.collector->history(resource_id)) return h;
  }
  return nullptr;
}

}  // namespace remos::core
