#include "rps/multi_expert.hpp"

#include <cmath>
#include <stdexcept>

namespace remos::rps {

MultiExpertPredictor::MultiExpertPredictor(std::vector<ModelSpec> experts,
                                           MultiExpertConfig config)
    : specs_(std::move(experts)), config_(config) {
  if (specs_.empty()) throw std::invalid_argument("MultiExpertPredictor: need >= 1 expert");
}

void MultiExpertPredictor::prime(std::span<const double> history) {
  experts_.clear();
  for (const ModelSpec& spec : specs_) {
    Expert e;
    e.model = make_model(spec);
    e.name = spec.to_string();
    try {
      e.model->fit(history);
    } catch (const std::invalid_argument&) {
      continue;  // not enough data for this expert's order: drop it
    }
    experts_.push_back(std::move(e));
  }
  last_best_ = 0;
  switches_ = 0;
}

std::size_t MultiExpertPredictor::best_index() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < experts_.size(); ++i) {
    if (experts_[i].error < experts_[best].error) best = i;
  }
  return best;
}

Prediction MultiExpertPredictor::push(double measurement) {
  if (!primed()) throw std::logic_error("MultiExpertPredictor: push before prime");
  for (Expert& e : experts_) {
    if (e.has_pending) {
      const double err = measurement - e.pending_prediction;
      e.error = config_.error_decay * e.error + (1.0 - config_.error_decay) * err * err;
    }
    e.model->step(measurement);
    const Prediction next = e.model->predict(1);
    e.pending_prediction = next.mean.empty() ? measurement : next.mean[0];
    e.has_pending = true;
  }
  const std::size_t best = best_index();
  if (best != last_best_) {
    ++switches_;
    last_best_ = best;
  }
  return experts_[best].model->predict(config_.horizon);
}

Prediction MultiExpertPredictor::predict() const {
  if (!primed()) throw std::logic_error("MultiExpertPredictor: predict before prime");
  return experts_[best_index()].model->predict(config_.horizon);
}

std::string MultiExpertPredictor::best_expert() const {
  if (!primed()) return {};
  return experts_[best_index()].name;
}

namespace {

/// Rough free-parameter count per model family (for AIC's 2k penalty).
std::size_t parameter_count(const ModelSpec& spec) {
  switch (spec.family) {
    case ModelSpec::Family::kMean: return 1;
    case ModelSpec::Family::kLast: return 1;
    case ModelSpec::Family::kWindow: return 1;
    case ModelSpec::Family::kAr: return spec.p + 1;
    case ModelSpec::Family::kMa: return spec.q + 1;
    case ModelSpec::Family::kArma: return spec.p + spec.q + 1;
    case ModelSpec::Family::kArima: return spec.p + spec.q + 2;
    case ModelSpec::Family::kFarima: return spec.p + spec.q + 2;
  }
  return 1;
}

}  // namespace

std::size_t select_model_aic(const std::vector<ModelSpec>& candidates,
                             std::span<const double> data) {
  if (candidates.empty()) throw std::invalid_argument("select_model_aic: no candidates");
  std::size_t best = 0;
  double best_aic = std::numeric_limits<double>::infinity();
  const double n = static_cast<double>(data.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    double sigma2 = 0.0;
    try {
      auto model = make_model(candidates[i]);
      model->fit(data);
      sigma2 = model->one_step_variance();
    } catch (const std::invalid_argument&) {
      continue;  // infeasible candidate for this data length
    }
    // Guard degenerate zero-variance fits (constant data).
    const double aic =
        n * std::log(std::max(sigma2, 1e-12)) + 2.0 * static_cast<double>(parameter_count(candidates[i]));
    if (aic < best_aic) {
      best_aic = aic;
      best = i;
    }
  }
  return best;
}

}  // namespace remos::rps
