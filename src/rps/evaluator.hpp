// Prediction-error evaluator.
//
// RPS continuously tests a fitted model against incoming measurements and
// uses the result to (a) decide when the model must be refit and (b)
// characterize the system's own prediction error — the property the paper
// highlights as "usually quite accurate regardless of the data ... in large
// part due to the feedback in the system".
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

namespace remos::rps {

struct EvaluatorConfig {
  /// Sliding window of one-step errors to track.
  std::size_t window = 64;
  /// Refit when observed MSE exceeds `tolerance` x the model's own
  /// claimed one-step variance.
  double tolerance = 2.0;
  /// Minimum tracked errors before a refit verdict is possible.
  std::size_t min_samples = 16;
};

class Evaluator {
 public:
  explicit Evaluator(EvaluatorConfig config = {});

  /// Record the prediction made for the *next* observation, then later the
  /// actual value via observe(). The pair order is enforced.
  void note_prediction(double predicted_next);
  void observe(double actual);

  /// Observed one-step mean squared error over the window.
  [[nodiscard]] double observed_mse() const;
  /// Observed mean error (bias) over the window.
  [[nodiscard]] double observed_bias() const;
  /// Number of (prediction, actual) pairs tracked.
  [[nodiscard]] std::size_t sample_count() const { return errors_.size(); }

  /// Verdict: does the observed error say the fit no longer holds?
  /// `claimed_variance` is the model's own one-step error estimate.
  [[nodiscard]] bool needs_refit(double claimed_variance) const;

  /// Ratio observed MSE / claimed variance — ~1 when the model
  /// characterizes its error well.
  [[nodiscard]] double calibration_ratio(double claimed_variance) const;

  void reset();

 private:
  EvaluatorConfig config_;
  bool pending_ = false;
  double pending_prediction_ = 0.0;
  std::deque<double> errors_;
};

}  // namespace remos::rps
