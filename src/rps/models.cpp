#include "rps/models.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <deque>
#include <stdexcept>

#include "rps/linear.hpp"
#include "rps/series.hpp"

namespace remos::rps {
namespace {

void require_fitted(bool fitted, const char* who) {
  if (!fitted) throw std::logic_error(std::string(who) + ": predict/step before fit");
}

// ---------------------------------------------------------------------------
// MEAN — long-term average
// ---------------------------------------------------------------------------

class MeanModel final : public Model {
 public:
  void fit(std::span<const double> xs) override {
    if (xs.empty()) throw std::invalid_argument("MEAN: empty series");
    n_ = static_cast<double>(xs.size());
    mu_ = mean(xs);
    var_ = variance(xs);
    fitted_ = true;
  }
  void step(double x) override {
    require_fitted(fitted_, "MEAN");
    // Continue the running moments past the fit window.
    n_ += 1.0;
    const double delta = x - mu_;
    mu_ += delta / n_;
    var_ += (delta * (x - mu_) - var_) / n_;
  }
  [[nodiscard]] Prediction predict(std::size_t horizon) const override {
    require_fitted(fitted_, "MEAN");
    return Prediction{std::vector<double>(horizon, mu_), std::vector<double>(horizon, var_)};
  }
  [[nodiscard]] double one_step_variance() const override { return var_; }
  [[nodiscard]] bool fitted() const override { return fitted_; }
  [[nodiscard]] std::string name() const override { return "MEAN"; }
  [[nodiscard]] std::unique_ptr<Model> clone() const override {
    return std::make_unique<MeanModel>(*this);
  }

 private:
  double mu_ = 0.0, var_ = 0.0, n_ = 0.0;
  bool fitted_ = false;
};

// ---------------------------------------------------------------------------
// LAST — random-walk predictor
// ---------------------------------------------------------------------------

class LastModel final : public Model {
 public:
  void fit(std::span<const double> xs) override {
    if (xs.empty()) throw std::invalid_argument("LAST: empty series");
    last_ = xs.back();
    // Error model: random walk => h-step error variance = h * Var(diff).
    const std::vector<double> d = difference(xs, 1);
    diff_var_ = d.empty() ? 0.0 : variance(d) + mean(d) * mean(d);
    fitted_ = true;
  }
  void step(double x) override {
    require_fitted(fitted_, "LAST");
    last_ = x;
  }
  [[nodiscard]] Prediction predict(std::size_t horizon) const override {
    require_fitted(fitted_, "LAST");
    Prediction p{std::vector<double>(horizon, last_), std::vector<double>(horizon)};
    for (std::size_t h = 0; h < horizon; ++h) {
      p.variance[h] = diff_var_ * static_cast<double>(h + 1);
    }
    return p;
  }
  [[nodiscard]] double one_step_variance() const override { return diff_var_; }
  [[nodiscard]] bool fitted() const override { return fitted_; }
  [[nodiscard]] std::string name() const override { return "LAST"; }
  [[nodiscard]] std::unique_ptr<Model> clone() const override {
    return std::make_unique<LastModel>(*this);
  }

 private:
  double last_ = 0.0, diff_var_ = 0.0;
  bool fitted_ = false;
};

// ---------------------------------------------------------------------------
// BM(w) — windowed average
// ---------------------------------------------------------------------------

class WindowModel final : public Model {
 public:
  explicit WindowModel(std::size_t w) : w_(std::max<std::size_t>(w, 1)) {}

  void fit(std::span<const double> xs) override {
    if (xs.empty()) throw std::invalid_argument("BM: empty series");
    window_.assign(xs.end() - static_cast<std::ptrdiff_t>(std::min(w_, xs.size())), xs.end());
    // Empirical one-step MSE of the window-mean predictor over the fit data.
    double sse = 0.0;
    std::size_t count = 0;
    double rolling = 0.0;
    std::deque<double> roll;
    for (double x : xs) {
      if (roll.size() == w_) {
        const double pred = rolling / static_cast<double>(roll.size());
        sse += (x - pred) * (x - pred);
        ++count;
      }
      roll.push_back(x);
      rolling += x;
      if (roll.size() > w_) {
        rolling -= roll.front();
        roll.pop_front();
      }
    }
    mse_ = count > 0 ? sse / static_cast<double>(count) : variance(xs);
    fitted_ = true;
  }
  void step(double x) override {
    require_fitted(fitted_, "BM");
    window_.push_back(x);
    if (window_.size() > w_) window_.erase(window_.begin());
  }
  [[nodiscard]] Prediction predict(std::size_t horizon) const override {
    require_fitted(fitted_, "BM");
    const double m = mean(window_);
    return Prediction{std::vector<double>(horizon, m), std::vector<double>(horizon, mse_)};
  }
  [[nodiscard]] double one_step_variance() const override { return mse_; }
  [[nodiscard]] bool fitted() const override { return fitted_; }
  [[nodiscard]] std::string name() const override { return "BM" + std::to_string(w_); }
  [[nodiscard]] std::unique_ptr<Model> clone() const override {
    return std::make_unique<WindowModel>(*this);
  }

 private:
  std::size_t w_;
  std::vector<double> window_;
  double mse_ = 0.0;
  bool fitted_ = false;
};

// ---------------------------------------------------------------------------
// ARMA core — shared by AR, MA, ARMA (phi and/or theta may be empty)
// ---------------------------------------------------------------------------

class ArmaCore {
 public:
  void configure(std::vector<double> phi, std::vector<double> theta, double mu, double sigma2) {
    phi_ = std::move(phi);
    theta_ = std::move(theta);
    mu_ = mu;
    sigma2_ = sigma2;
    z_.clear();
    eps_.clear();
  }

  /// Non-owning configure: copies coefficients into the existing vectors
  /// (capacity reused across refits — the incremental install path).
  /// Deliberately not named `set`: analyzer call resolution is by name,
  /// and this runs inside the hot refit-install closure.
  void set_params(std::span<const double> phi, std::span<const double> theta, double mu,
                  double sigma2) {
    phi_.assign(phi.begin(), phi.end());
    theta_.assign(theta.begin(), theta.end());
    mu_ = mu;
    sigma2_ = sigma2;
    z_.clear();
    eps_.clear();
  }

  /// Replay a series through the residual recursion to initialize state.
  /// (Named `replay`, and delegating step -> absorb, so the hot
  /// refit-install closure never touches the project-wide `prime`/`step`
  /// name pools in the analyzer's by-name call graph.)
  void replay(std::span<const double> xs) {
    for (double x : xs) absorb(x);
  }

  void step(double x) { absorb(x); }

  [[nodiscard]] Prediction predict(std::size_t horizon) const {
    Prediction out;
    out.mean.resize(horizon);
    out.variance.resize(horizon);
    std::vector<double> zhat(horizon, 0.0);
    for (std::size_t h = 1; h <= horizon; ++h) {
      double acc = 0.0;
      for (std::size_t j = 1; j <= phi_.size(); ++j) {
        const std::ptrdiff_t idx = static_cast<std::ptrdiff_t>(h) - static_cast<std::ptrdiff_t>(j);
        acc += phi_[j - 1] * (idx >= 1 ? zhat[static_cast<std::size_t>(idx - 1)]
                                       : past_z(static_cast<std::size_t>(1 - idx)));
      }
      for (std::size_t j = 1; j <= theta_.size(); ++j) {
        const std::ptrdiff_t idx = static_cast<std::ptrdiff_t>(h) - static_cast<std::ptrdiff_t>(j);
        // Future innovations forecast to zero; past ones come from state.
        if (idx < 1) acc += theta_[j - 1] * past_eps(static_cast<std::size_t>(1 - idx));
      }
      zhat[h - 1] = acc;
      out.mean[h - 1] = mu_ + acc;
    }
    const std::vector<double> psi = psi_weights(phi_, theta_, horizon);
    double cum = 0.0;
    for (std::size_t h = 0; h < horizon; ++h) {
      cum += psi[h] * psi[h];
      out.variance[h] = sigma2_ * cum;
    }
    return out;
  }

  [[nodiscard]] double sigma2() const { return sigma2_; }
  [[nodiscard]] double mu() const { return mu_; }
  [[nodiscard]] const std::vector<double>& phi() const { return phi_; }
  [[nodiscard]] const std::vector<double>& theta() const { return theta_; }

 private:
  void absorb(double x) {
    const double z = x - mu_;
    double pred = 0.0;
    for (std::size_t j = 0; j < phi_.size(); ++j) {
      pred += phi_[j] * past_z(j + 1);
    }
    for (std::size_t j = 0; j < theta_.size(); ++j) {
      pred += theta_[j] * past_eps(j + 1);
    }
    const double e = z - pred;
    push_bounded(z_, z, needed_z());
    push_bounded(eps_, e, theta_.size());
  }

  [[nodiscard]] std::size_t needed_z() const { return std::max<std::size_t>(phi_.size(), 1); }
  /// k-steps-back deviation (k >= 1); zero-padded before history begins.
  [[nodiscard]] double past_z(std::size_t k) const {
    return k <= z_.size() ? z_[z_.size() - k] : 0.0;
  }
  [[nodiscard]] double past_eps(std::size_t k) const {
    return k <= eps_.size() ? eps_[eps_.size() - k] : 0.0;
  }
  static void push_bounded(std::deque<double>& dq, double v, std::size_t cap) {
    dq.push_back(v);
    while (dq.size() > std::max<std::size_t>(cap, 1)) dq.pop_front();
  }

  std::vector<double> phi_, theta_;
  double mu_ = 0.0, sigma2_ = 0.0;
  std::deque<double> z_, eps_;
};

class ArmaModel final : public Model {
 public:
  ArmaModel(std::size_t p, std::size_t q, bool burg) : p_(p), q_(q), burg_(burg) {}

  void fit(std::span<const double> xs) override {
    const double mu = mean(xs);
    if (q_ == 0) {
      ArFit f = burg_ ? fit_ar_burg(xs, p_) : fit_ar_yule_walker(xs, p_);
      core_.configure(std::move(f.phi), {}, mu, f.sigma2);
    } else if (p_ == 0) {
      MaFit f = fit_ma_innovations(xs, q_);
      core_.configure({}, std::move(f.theta), mu, f.sigma2);
    } else {
      ArmaFit f = fit_arma_hannan_rissanen(xs, p_, q_);
      core_.configure(std::move(f.phi), std::move(f.theta), mu, f.sigma2);
    }
    core_.replay(xs);
    fitted_ = true;
  }
  void step(double x) override {
    require_fitted(fitted_, "ARMA");
    core_.step(x);
  }
  [[nodiscard]] Prediction predict(std::size_t horizon) const override {
    require_fitted(fitted_, "ARMA");
    return core_.predict(horizon);
  }
  [[nodiscard]] double one_step_variance() const override { return core_.sigma2(); }
  [[nodiscard]] bool fitted() const override { return fitted_; }
  [[nodiscard]] std::string name() const override {
    if (q_ == 0) return (burg_ ? "ARBURG" : "AR") + std::to_string(p_);
    if (p_ == 0) return "MA" + std::to_string(q_);
    return "ARMA(" + std::to_string(p_) + "," + std::to_string(q_) + ")";
  }
  [[nodiscard]] std::unique_ptr<Model> clone() const override {
    return std::make_unique<ArmaModel>(*this);
  }

  [[nodiscard]] const ArmaCore& core() const { return core_; }

  /// Pure AR shape (no MA terms): the only shape install_ar_fit targets —
  /// its streaming state is fully determined by the last p deviations.
  [[nodiscard]] bool pure_ar() const { return q_ == 0; }
  [[nodiscard]] std::size_t ar_order() const { return p_; }

  /// Install externally fitted parameters and re-prime streaming state
  /// from `recent` (the series' latest raw samples, oldest first).
  void adopt(std::span<const double> phi, std::span<const double> theta, double mu, double sigma2,
             std::span<const double> recent) {
    core_.set_params(phi, theta, mu, sigma2);
    core_.replay(recent);
    fitted_ = true;
  }

 private:
  std::size_t p_, q_;
  bool burg_;
  ArmaCore core_;
  bool fitted_ = false;
};

// ---------------------------------------------------------------------------
// ARIMA(p,d,q)
// ---------------------------------------------------------------------------

/// Multiply AR polynomial coefficients: (1 - sum a_k B^k)(1-B)^d expressed
/// as extended coefficients a~ with (1 - sum a~_j B^j).
std::vector<double> extend_ar_with_differencing(std::span<const double> phi, int d) {
  // Represent polynomials with full coefficient arrays: p(B) = 1 - sum phi B^k.
  std::vector<double> poly{1.0};
  for (double c : phi) poly.push_back(-c);
  for (int k = 0; k < d; ++k) {
    std::vector<double> next(poly.size() + 1, 0.0);
    for (std::size_t i = 0; i < poly.size(); ++i) {
      next[i] += poly[i];
      next[i + 1] -= poly[i];
    }
    poly = std::move(next);
  }
  std::vector<double> out(poly.size() - 1);
  for (std::size_t i = 1; i < poly.size(); ++i) out[i - 1] = -poly[i];
  return out;
}

class ArimaModel final : public Model {
 public:
  ArimaModel(std::size_t p, int d, std::size_t q) : p_(p), d_(d), q_(q) {}

  void fit(std::span<const double> xs) override {
    if (xs.size() <= static_cast<std::size_t>(d_) + p_ + q_ + 2) {
      throw std::invalid_argument("ARIMA: series too short");
    }
    const std::vector<double> diffd = difference(xs, d_);
    const double mu = mean(diffd);
    if (p_ == 0 && q_ == 0) {
      core_.configure({}, {}, mu, variance(diffd));
    } else {
      ArmaFit f = fit_arma_hannan_rissanen(diffd, p_, q_);
      core_.configure(std::move(f.phi), std::move(f.theta), mu, f.sigma2);
    }
    core_.replay(diffd);
    tails_ = integration_tails(xs, d_);
    fitted_ = true;
  }

  void step(double x) override {
    require_fitted(fitted_, "ARIMA");
    // Update the d-level differencing tails incrementally.
    double value = x;
    for (int k = 0; k < d_; ++k) {
      const double next = value - tails_[static_cast<std::size_t>(k)];
      tails_[static_cast<std::size_t>(k)] = value;
      value = next;
    }
    core_.step(value);
  }

  [[nodiscard]] Prediction predict(std::size_t horizon) const override {
    require_fitted(fitted_, "ARIMA");
    Prediction diff_pred = core_.predict(horizon);
    Prediction out;
    out.mean = integrate_forecast(diff_pred.mean, tails_);
    // psi-weights of the integrated process: extend the AR polynomial by
    // (1-B)^d, then expand.
    const std::vector<double> phi_ext = extend_ar_with_differencing(core_.phi(), d_);
    const std::vector<double> psi = psi_weights(phi_ext, core_.theta(), horizon);
    out.variance.resize(horizon);
    double cum = 0.0;
    for (std::size_t h = 0; h < horizon; ++h) {
      cum += psi[h] * psi[h];
      out.variance[h] = core_.sigma2() * cum;
    }
    return out;
  }

  [[nodiscard]] double one_step_variance() const override { return core_.sigma2(); }
  [[nodiscard]] bool fitted() const override { return fitted_; }
  [[nodiscard]] std::string name() const override {
    return "ARIMA(" + std::to_string(p_) + "," + std::to_string(d_) + "," + std::to_string(q_) + ")";
  }
  [[nodiscard]] std::unique_ptr<Model> clone() const override {
    return std::make_unique<ArimaModel>(*this);
  }

 private:
  std::size_t p_;
  int d_;
  std::size_t q_;
  ArmaCore core_;
  std::vector<double> tails_;
  bool fitted_ = false;
};

// ---------------------------------------------------------------------------
// FARIMA(p,d,q), fractional d — long-range dependence
// ---------------------------------------------------------------------------

class FarimaModel final : public Model {
 public:
  static constexpr std::size_t kWindow = 100;

  FarimaModel(std::size_t p, double d, std::size_t q) : p_(p), d_(d), q_(q) {
    pi_ = fractional_diff_coeffs(d_, kWindow);
    inv_ = fractional_diff_coeffs(-d_, kWindow);
  }

  void fit(std::span<const double> xs) override {
    if (xs.size() < kWindow + p_ + q_ + 8) throw std::invalid_argument("FARIMA: series too short");
    const std::vector<double> filtered = fractional_difference(xs, d_, kWindow);
    // Discard the filter warm-up region when fitting.
    std::span<const double> stable(filtered.data() + kWindow, filtered.size() - kWindow);
    if (p_ == 0 && q_ == 0) {
      core_.configure({}, {}, mean(stable), variance(stable));
    } else {
      ArmaFit f = fit_arma_hannan_rissanen(stable, p_, q_);
      core_.configure(std::move(f.phi), std::move(f.theta), mean(stable), f.sigma2);
    }
    core_.replay(stable);
    raw_.assign(xs.end() - static_cast<std::ptrdiff_t>(std::min(xs.size(), kWindow)), xs.end());
    fhist_.assign(filtered.end() - static_cast<std::ptrdiff_t>(std::min(filtered.size(), kWindow)),
                  filtered.end());
    fitted_ = true;
  }

  void step(double x) override {
    require_fitted(fitted_, "FARIMA");
    raw_.push_back(x);
    if (raw_.size() > kWindow) raw_.erase(raw_.begin());
    double filtered = 0.0;
    for (std::size_t k = 0; k < raw_.size(); ++k) filtered += pi_[k] * raw_[raw_.size() - 1 - k];
    core_.step(filtered);
    fhist_.push_back(filtered);
    if (fhist_.size() > kWindow) fhist_.erase(fhist_.begin());
  }

  [[nodiscard]] Prediction predict(std::size_t horizon) const override {
    require_fitted(fitted_, "FARIMA");
    const Prediction ypred = core_.predict(horizon);
    Prediction out;
    out.mean.resize(horizon);
    // Invert (1-B)^d with the truncated expansion: x(t+h) = sum_k inv_k y(t+h-k).
    for (std::size_t h = 1; h <= horizon; ++h) {
      double acc = 0.0;
      for (std::size_t k = 0; k < kWindow; ++k) {
        const std::ptrdiff_t idx = static_cast<std::ptrdiff_t>(h) - static_cast<std::ptrdiff_t>(k);
        double y;
        if (idx >= 1) {
          y = ypred.mean[static_cast<std::size_t>(idx - 1)];
        } else {
          const std::size_t back = static_cast<std::size_t>(-idx);  // 0 = latest history
          if (back >= fhist_.size()) break;
          y = fhist_[fhist_.size() - 1 - back];
        }
        acc += inv_[k] * y;
      }
      out.mean[h - 1] = acc;
    }
    // Combined psi: ARMA psi convolved with the inverse fractional filter.
    const std::vector<double> psi_arma = psi_weights(core_.phi(), core_.theta(), horizon);
    std::vector<double> psi(horizon, 0.0);
    for (std::size_t j = 0; j < horizon; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k <= j && k < kWindow; ++k) acc += inv_[k] * psi_arma[j - k];
      psi[j] = acc;
    }
    out.variance.resize(horizon);
    double cum = 0.0;
    for (std::size_t h = 0; h < horizon; ++h) {
      cum += psi[h] * psi[h];
      out.variance[h] = core_.sigma2() * cum;
    }
    return out;
  }

  [[nodiscard]] double one_step_variance() const override { return core_.sigma2(); }
  [[nodiscard]] bool fitted() const override { return fitted_; }
  [[nodiscard]] std::string name() const override {
    return "FARIMA(" + std::to_string(p_) + "," + std::to_string(d_) + "," + std::to_string(q_) + ")";
  }
  [[nodiscard]] std::unique_ptr<Model> clone() const override {
    return std::make_unique<FarimaModel>(*this);
  }

 private:
  std::size_t p_;
  double d_;
  std::size_t q_;
  std::vector<double> pi_, inv_;
  ArmaCore core_;
  std::vector<double> raw_, fhist_;
  bool fitted_ = false;
};

}  // namespace

// ---------------------------------------------------------------------------
// ModelSpec
// ---------------------------------------------------------------------------

ModelSpec ModelSpec::last() {
  ModelSpec s;
  s.family = Family::kLast;
  return s;
}
ModelSpec ModelSpec::window_avg(std::size_t w) {
  ModelSpec s;
  s.family = Family::kWindow;
  s.window = w;
  return s;
}
ModelSpec ModelSpec::ar(std::size_t p, bool burg) {
  ModelSpec s;
  s.family = Family::kAr;
  s.p = p;
  s.use_burg = burg;
  return s;
}
ModelSpec ModelSpec::ma(std::size_t q) {
  ModelSpec s;
  s.family = Family::kMa;
  s.q = q;
  return s;
}
ModelSpec ModelSpec::arma(std::size_t p, std::size_t q) {
  ModelSpec s;
  s.family = Family::kArma;
  s.p = p;
  s.q = q;
  return s;
}
ModelSpec ModelSpec::arima(std::size_t p, int d, std::size_t q) {
  ModelSpec s;
  s.family = Family::kArima;
  s.p = p;
  s.d = d;
  s.q = q;
  return s;
}
ModelSpec ModelSpec::farima(std::size_t p, double d, std::size_t q) {
  ModelSpec s;
  s.family = Family::kFarima;
  s.p = p;
  s.frac_d = d;
  s.q = q;
  return s;
}

namespace {

/// Parse a list like "(8,0.4,2)" or "8,2"; returns values as doubles.
std::optional<std::vector<double>> parse_args(std::string_view text) {
  if (!text.empty() && text.front() == '(') {
    if (text.back() != ')') return std::nullopt;
    text = text.substr(1, text.size() - 2);
  }
  std::vector<double> out;
  while (!text.empty()) {
    double v = 0.0;
    const char* begin = text.data();
    const char* end = text.data() + text.size();
    auto [ptr, ec] = std::from_chars(begin, end, v);
    if (ec != std::errc{} || ptr == begin) return std::nullopt;
    out.push_back(v);
    text.remove_prefix(static_cast<std::size_t>(ptr - begin));
    if (!text.empty()) {
      if (text.front() != ',') return std::nullopt;
      text.remove_prefix(1);
    }
  }
  return out;
}

}  // namespace

std::optional<ModelSpec> ModelSpec::parse(std::string_view text) {
  auto starts = [&](std::string_view prefix) { return text.substr(0, prefix.size()) == prefix; };
  if (text == "MEAN") return mean();
  if (text == "LAST") return last();
  if (starts("BM")) {
    auto args = parse_args(text.substr(2));
    if (!args || args->size() != 1) return std::nullopt;
    return window_avg(static_cast<std::size_t>((*args)[0]));
  }
  if (starts("ARBURG")) {
    auto args = parse_args(text.substr(6));
    if (!args || args->size() != 1) return std::nullopt;
    return ar(static_cast<std::size_t>((*args)[0]), /*burg=*/true);
  }
  if (starts("ARMA")) {
    auto args = parse_args(text.substr(4));
    if (!args || args->size() != 2) return std::nullopt;
    return arma(static_cast<std::size_t>((*args)[0]), static_cast<std::size_t>((*args)[1]));
  }
  if (starts("ARIMA")) {
    auto args = parse_args(text.substr(5));
    if (!args || args->size() != 3) return std::nullopt;
    return arima(static_cast<std::size_t>((*args)[0]), static_cast<int>((*args)[1]),
                 static_cast<std::size_t>((*args)[2]));
  }
  if (starts("FARIMA")) {
    auto args = parse_args(text.substr(6));
    if (!args || args->size() != 3) return std::nullopt;
    return farima(static_cast<std::size_t>((*args)[0]), (*args)[1],
                  static_cast<std::size_t>((*args)[2]));
  }
  if (starts("AR")) {
    auto args = parse_args(text.substr(2));
    if (!args || args->size() != 1) return std::nullopt;
    return ar(static_cast<std::size_t>((*args)[0]));
  }
  if (starts("MA")) {
    auto args = parse_args(text.substr(2));
    if (!args || args->size() != 1) return std::nullopt;
    return ma(static_cast<std::size_t>((*args)[0]));
  }
  return std::nullopt;
}

std::string ModelSpec::to_string() const {
  switch (family) {
    case Family::kMean: return "MEAN";
    case Family::kLast: return "LAST";
    case Family::kWindow: return "BM" + std::to_string(window);
    case Family::kAr: return (use_burg ? "ARBURG" : "AR") + std::to_string(p);
    case Family::kMa: return "MA" + std::to_string(q);
    case Family::kArma: return "ARMA(" + std::to_string(p) + "," + std::to_string(q) + ")";
    case Family::kArima:
      return "ARIMA(" + std::to_string(p) + "," + std::to_string(d) + "," + std::to_string(q) + ")";
    case Family::kFarima: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.2f", frac_d);
      return "FARIMA(" + std::to_string(p) + "," + buf + "," + std::to_string(q) + ")";
    }
  }
  return "?";
}

std::unique_ptr<Model> make_model(const ModelSpec& spec) {
  switch (spec.family) {
    case ModelSpec::Family::kMean: return std::make_unique<MeanModel>();
    case ModelSpec::Family::kLast: return std::make_unique<LastModel>();
    case ModelSpec::Family::kWindow: return std::make_unique<WindowModel>(spec.window);
    case ModelSpec::Family::kAr: return std::make_unique<ArmaModel>(spec.p, 0, spec.use_burg);
    case ModelSpec::Family::kMa: return std::make_unique<ArmaModel>(0, spec.q, false);
    case ModelSpec::Family::kArma: return std::make_unique<ArmaModel>(spec.p, spec.q, false);
    case ModelSpec::Family::kArima: return std::make_unique<ArimaModel>(spec.p, spec.d, spec.q);
    case ModelSpec::Family::kFarima:
      return std::make_unique<FarimaModel>(spec.p, spec.frac_d, spec.q);
  }
  throw std::invalid_argument("make_model: unknown family");
}

// ---------------------------------------------------------------------------
// Template extraction / seeding (warm cache tier currency)
// ---------------------------------------------------------------------------

namespace {

[[nodiscard]] bool linear_family(ModelSpec::Family family) {
  return family == ModelSpec::Family::kAr || family == ModelSpec::Family::kMa ||
         family == ModelSpec::Family::kArma;
}

}  // namespace

std::optional<ModelTemplate> extract_template(const Model& model, const ModelSpec& spec) {
  if (!linear_family(spec.family)) return std::nullopt;
  const auto* arma = dynamic_cast<const ArmaModel*>(&model);
  if (arma == nullptr || !arma->fitted()) return std::nullopt;
  const ArmaCore& core = arma->core();
  return ModelTemplate{spec, core.phi(), core.theta(), core.mu(), core.sigma2()};
}

std::unique_ptr<Model> model_from_template(const ModelTemplate& tmpl,
                                           std::span<const double> recent) {
  if (!linear_family(tmpl.spec.family)) return nullptr;
  std::unique_ptr<Model> model = make_model(tmpl.spec);
  auto* arma = dynamic_cast<ArmaModel*>(model.get());
  if (arma == nullptr) return nullptr;
  arma->adopt(tmpl.phi, tmpl.theta, tmpl.mu, tmpl.sigma2, recent);
  return model;
}

// remos-hot
bool install_ar_fit(Model& model, const ArFit& fit, double mu, std::span<const double> recent) {
  auto* arma = dynamic_cast<ArmaModel*>(&model);
  if (arma == nullptr || !arma->pure_ar() || arma->ar_order() != fit.phi.size()) return false;
  arma->adopt(fit.phi, {}, mu, fit.sigma2, recent);
  return true;
}

// ---------------------------------------------------------------------------
// RefittingModel
// ---------------------------------------------------------------------------

RefittingModel::RefittingModel(ModelSpec inner, std::size_t refit_interval, std::size_t fit_window)
    : spec_(inner),
      refit_interval_(std::max<std::size_t>(refit_interval, 1)),
      fit_window_(std::max<std::size_t>(fit_window, 2)) {}

void RefittingModel::fit(std::span<const double> xs) {
  const std::size_t take = std::min(fit_window_, xs.size());
  buffer_.assign(xs.end() - static_cast<std::ptrdiff_t>(take), xs.end());
  inner_ = make_model(spec_);
  inner_->fit(buffer_);
  steps_since_fit_ = 0;
  ++refits_;
}

void RefittingModel::step(double x) {
  require_fitted(fitted(), "REFIT");
  buffer_.push_back(x);
  if (buffer_.size() > fit_window_) buffer_.erase(buffer_.begin());
  inner_->step(x);
  if (++steps_since_fit_ >= refit_interval_) refit_now();
}

void RefittingModel::refit_now() {
  require_fitted(fitted(), "REFIT");
  auto fresh = make_model(spec_);
  try {
    fresh->fit(buffer_);
  } catch (const std::invalid_argument&) {
    // Not enough buffered data for this model order yet; keep the old fit
    // and try again after more samples arrive.
    steps_since_fit_ = 0;
    return;
  }
  inner_ = std::move(fresh);
  steps_since_fit_ = 0;
  ++refits_;
}

Prediction RefittingModel::predict(std::size_t horizon) const {
  require_fitted(fitted(), "REFIT");
  return inner_->predict(horizon);
}

double RefittingModel::one_step_variance() const {
  return inner_ ? inner_->one_step_variance() : 0.0;
}

bool RefittingModel::fitted() const { return inner_ != nullptr && inner_->fitted(); }

std::string RefittingModel::name() const {
  return "REFIT[" + spec_.to_string() + "/" + std::to_string(refit_interval_) + "]";
}

std::unique_ptr<Model> RefittingModel::clone() const {
  auto copy = std::make_unique<RefittingModel>(spec_, refit_interval_, fit_window_);
  copy->inner_ = inner_ ? inner_->clone() : nullptr;
  copy->buffer_ = buffer_;
  copy->steps_since_fit_ = steps_since_fit_;
  copy->refits_ = refits_;
  return copy;
}

}  // namespace remos::rps
