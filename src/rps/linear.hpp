// Linear time-series estimation machinery: Levinson-Durbin, Yule-Walker and
// Burg AR estimation, the innovations algorithm for MA, Hannan-Rissanen for
// ARMA, and psi-weight expansion for multi-step forecast error variance.
#pragma once

#include <span>
#include <vector>

namespace remos::rps {

/// AR(p) fit result: coefficients phi_1..phi_p on mean-removed data plus
/// the innovation (one-step prediction error) variance.
struct ArFit {
  std::vector<double> phi;
  double sigma2 = 0.0;
};

/// MA(q) fit result: theta_1..theta_q plus innovation variance.
struct MaFit {
  std::vector<double> theta;
  double sigma2 = 0.0;
};

/// ARMA(p,q) fit result.
struct ArmaFit {
  std::vector<double> phi;
  std::vector<double> theta;
  double sigma2 = 0.0;
};

/// Reusable workspace for the allocation-free Levinson-Durbin entry point
/// (and for IncrementalArFitter's autocovariance assembly). One scratch per
/// lane lets batched fleet refits run with zero steady-state allocation.
struct ArFitScratch {
  std::vector<double> gamma;  // autocovariance workspace, lags 0..p
  std::vector<double> prev;   // previous recursion row
};

/// Solve the Yule-Walker equations for AR(p) given autocovariances
/// gamma[0..p] via Levinson-Durbin recursion. Throws on p == 0 shortfall.
[[nodiscard]] ArFit levinson_durbin(std::span<const double> gamma, std::size_t p);

/// Allocation-free variant: writes into `out` (capacity reused across
/// calls) using `scratch`. Bit-identical to levinson_durbin — same
/// recursion, same float operation order.
void levinson_durbin_into(std::span<const double> gamma, std::size_t p, ArFit& out,
                          ArFitScratch& scratch);

/// Yule-Walker AR(p) fit on raw data (mean removed internally).
[[nodiscard]] ArFit fit_ar_yule_walker(std::span<const double> xs, std::size_t p);

/// Burg's method AR(p) fit (better for short series; always stable).
[[nodiscard]] ArFit fit_ar_burg(std::span<const double> xs, std::size_t p);

/// Innovations-algorithm MA(q) fit from autocovariances of the data.
[[nodiscard]] MaFit fit_ma_innovations(std::span<const double> xs, std::size_t q);

/// Hannan-Rissanen two-stage ARMA(p,q) fit.
[[nodiscard]] ArmaFit fit_arma_hannan_rissanen(std::span<const double> xs, std::size_t p,
                                               std::size_t q);

/// psi-weights of an ARMA(p,q) process: X_t = sum_j psi_j eps_{t-j},
/// psi[0] == 1. The h-step forecast error variance is
/// sigma2 * sum_{j<h} psi_j^2 — what RPS reports as its error
/// characterization.
[[nodiscard]] std::vector<double> psi_weights(std::span<const double> phi,
                                              std::span<const double> theta, std::size_t count);

/// Ordinary least squares: solve min ||y - X b||^2 where X is row-major
/// n x k. Returns b (size k). Uses normal equations with partial-pivot
/// Gaussian elimination — adequate for the small k used here.
[[nodiscard]] std::vector<double> ols(const std::vector<std::vector<double>>& rows,
                                      std::span<const double> y);

}  // namespace remos::rps
