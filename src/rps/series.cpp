#include "rps/series.hpp"

#include <algorithm>
#include <stdexcept>

namespace remos::rps {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double sum = 0.0;
  for (double x : xs) sum += (x - m) * (x - m);
  return sum / static_cast<double>(xs.size());
}

std::vector<double> autocovariance(std::span<const double> xs, std::size_t max_lag) {
  const std::size_t n = xs.size();
  std::vector<double> out(max_lag + 1, 0.0);
  if (n == 0) return out;
  const double m = mean(xs);
  for (std::size_t lag = 0; lag <= max_lag && lag < n; ++lag) {
    double sum = 0.0;
    for (std::size_t t = lag; t < n; ++t) sum += (xs[t] - m) * (xs[t - lag] - m);
    out[lag] = sum / static_cast<double>(n);
  }
  return out;
}

std::vector<double> autocorrelation(std::span<const double> xs, std::size_t max_lag) {
  std::vector<double> acov = autocovariance(xs, max_lag);
  if (acov[0] <= 0.0) return std::vector<double>(max_lag + 1, 0.0);
  std::vector<double> out(acov.size());
  for (std::size_t i = 0; i < acov.size(); ++i) out[i] = acov[i] / acov[0];
  out[0] = 1.0;
  return out;
}

std::vector<double> difference(std::span<const double> xs, int d) {
  std::vector<double> cur(xs.begin(), xs.end());
  for (int k = 0; k < d; ++k) {
    if (cur.size() < 2) return {};
    std::vector<double> next(cur.size() - 1);
    for (std::size_t i = 0; i + 1 < cur.size(); ++i) next[i] = cur[i + 1] - cur[i];
    cur = std::move(next);
  }
  return cur;
}

std::vector<double> integration_tails(std::span<const double> xs, int d) {
  std::vector<double> tails;
  tails.reserve(static_cast<std::size_t>(d));
  std::vector<double> cur(xs.begin(), xs.end());
  for (int k = 0; k < d; ++k) {
    if (cur.empty()) throw std::invalid_argument("integration_tails: series too short");
    tails.push_back(cur.back());
    cur = difference(cur, 1);
  }
  return tails;
}

std::vector<double> integrate_forecast(std::span<const double> diff_forecast,
                                       std::span<const double> tails) {
  std::vector<double> cur(diff_forecast.begin(), diff_forecast.end());
  // Integrate innermost difference first: walk tails from deepest to 0.
  for (std::size_t level = tails.size(); level-- > 0;) {
    double prev = tails[level];
    for (double& v : cur) {
      v += prev;
      prev = v;
    }
  }
  return cur;
}

std::vector<double> fractional_diff_coeffs(double d, std::size_t count) {
  std::vector<double> pi(count, 0.0);
  if (count == 0) return pi;
  pi[0] = 1.0;
  for (std::size_t j = 1; j < count; ++j) {
    // pi_j = pi_{j-1} * (j - 1 - d) / j
    pi[j] = pi[j - 1] * ((static_cast<double>(j) - 1.0 - d) / static_cast<double>(j));
  }
  return pi;
}

std::vector<double> fractional_difference(std::span<const double> xs, double d,
                                          std::size_t window) {
  const std::vector<double> pi = fractional_diff_coeffs(d, window);
  std::vector<double> out(xs.size(), 0.0);
  for (std::size_t t = 0; t < xs.size(); ++t) {
    const std::size_t kmax = std::min(t + 1, window);
    double sum = 0.0;
    for (std::size_t k = 0; k < kmax; ++k) sum += pi[k] * xs[t - k];
    out[t] = sum;
  }
  return out;
}

}  // namespace remos::rps
