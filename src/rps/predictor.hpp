// The two RPS operating modes the paper describes (§2.3):
//
//  * StreamingPredictor — stateful: one model fit is amortized over many
//    predictions; each new measurement is pushed through the fitted model
//    (step/predict), with evaluator feedback triggering refits when the fit
//    stops holding.
//  * ClientServerPredictor — stateless: every request carries a measurement
//    history, is fitted from scratch, and returns a vector of predictions.
//    "The advantage of the client-server form is that it is stateless,
//    while the advantage of the streaming mode is that a single model
//    fitting operation can be amortized over multiple predictions."
#pragma once

#include <atomic>
#include <memory>

#include "rps/evaluator.hpp"
#include "rps/models.hpp"

namespace remos::rps {

struct StreamingConfig {
  std::size_t horizon = 30;     // steps ahead per prediction
  std::size_t fit_window = 600; // samples kept for refitting
  EvaluatorConfig evaluator{};
  bool refit_on_error = true;   // evaluator-driven refits
};

class StreamingPredictor {
 public:
  StreamingPredictor(ModelSpec spec, StreamingConfig config = {});

  /// Initial fit from a measurement history (oldest first).
  void prime(std::span<const double> history);
  [[nodiscard]] bool primed() const { return model_ != nullptr && model_->fitted(); }

  /// Feed one new measurement; returns the refreshed multi-step forecast.
  Prediction push(double measurement);

  /// Forecast from current state without new data.
  [[nodiscard]] Prediction predict() const;

  [[nodiscard]] const Evaluator& evaluator() const { return evaluator_; }
  [[nodiscard]] std::size_t refit_count() const { return refits_; }
  [[nodiscard]] const Model& model() const { return *model_; }
  [[nodiscard]] std::uint64_t steps() const { return steps_; }

 private:
  void refit();

  ModelSpec spec_;
  StreamingConfig config_;
  std::unique_ptr<Model> model_;
  Evaluator evaluator_;
  std::vector<double> buffer_;
  std::size_t refits_ = 0;
  std::uint64_t steps_ = 0;
};

/// Stateless request/response prediction service: fit + predict per call.
/// "the RPS request-response prediction system is stateless and computation
/// happens only in direct response to queries."
class ClientServerPredictor {
 public:
  explicit ClientServerPredictor(ModelSpec default_spec = ModelSpec::ar(16));

  struct Request {
    std::span<const double> history;
    std::size_t horizon = 30;
    /// Override the service's default model; nullopt = use default.
    std::optional<ModelSpec> spec;
  };

  /// Thread-safe: the service is stateless per request, and the served
  /// counter is atomic, so one predictor instance can serve concurrent
  /// query threads (the QueryServer's prediction fits share one).
  [[nodiscard]] Prediction predict(const Request& request) const;
  [[nodiscard]] std::uint64_t requests_served() const {
    return served_.load(std::memory_order_relaxed);
  }

 private:
  ModelSpec default_spec_;
  mutable std::atomic<std::uint64_t> served_{0};
};

}  // namespace remos::rps
