// The two RPS operating modes the paper describes (§2.3):
//
//  * StreamingPredictor — stateful: one model fit is amortized over many
//    predictions; each new measurement is pushed through the fitted model
//    (step/predict), with evaluator feedback triggering refits when the fit
//    stops holding.
//  * ClientServerPredictor — stateless: every request carries a measurement
//    history, is fitted from scratch, and returns a vector of predictions.
//    "The advantage of the client-server form is that it is stateless,
//    while the advantage of the streaming mode is that a single model
//    fitting operation can be amortized over multiple predictions."
#pragma once

#include <atomic>
#include <memory>

#include "rps/evaluator.hpp"
#include "rps/incremental.hpp"
#include "rps/models.hpp"

namespace remos::rps {

struct StreamingConfig {
  std::size_t horizon = 30;     // steps ahead per prediction
  std::size_t fit_window = 600; // samples kept for refitting
  EvaluatorConfig evaluator{};
  bool refit_on_error = true;   // evaluator-driven refits
  /// Sliding-window incremental refits for pure AR Yule-Walker specs:
  /// O(p^2) per refit instead of O(window * p) recomputation, matching the
  /// batch fit within 1e-9 relative tolerance (see IncrementalArFitter).
  /// Other model families always take the full-recompute path.
  bool incremental_fit = true;
  /// Pushes between exact recomputes of the incremental sums (drift
  /// control); 0 means one full window turnover.
  std::size_t resync_interval = 0;
};

class StreamingPredictor {
 public:
  StreamingPredictor(ModelSpec spec, StreamingConfig config = {});

  /// Initial fit from a measurement history (oldest first).
  void prime(std::span<const double> history);
  [[nodiscard]] bool primed() const { return model_ != nullptr && model_->fitted(); }

  /// Feed one new measurement; returns the refreshed multi-step forecast.
  Prediction push(double measurement);

  /// Forecast from current state without new data.
  [[nodiscard]] Prediction predict() const;

  [[nodiscard]] const Evaluator& evaluator() const { return evaluator_; }
  [[nodiscard]] std::size_t refit_count() const { return refits_; }
  [[nodiscard]] const Model& model() const { return *model_; }
  [[nodiscard]] std::uint64_t steps() const { return steps_; }

  /// How many refits took the O(p^2) incremental-install path (the rest
  /// were full recomputes).
  [[nodiscard]] std::size_t incremental_refit_count() const { return incremental_refits_; }
  /// Existing-element copies performed by the fit window across the
  /// predictor's lifetime. The ring makes push() zero-move; only prime()
  /// and full-refit linearization copy, so tests can pin the complexity
  /// contract (the old vector buffer moved window-1 elements per push).
  [[nodiscard]] std::uint64_t fit_buffer_moves() const { return fitter_.element_moves(); }
  /// Exact-recompute resyncs performed by the incremental fitter.
  [[nodiscard]] std::uint64_t resync_count() const { return fitter_.resyncs(); }

 private:
  void refit();
  /// Last max(p, 1) window samples, oldest first (streaming-state seed).
  [[nodiscard]] std::span<const double> recent_samples();

  ModelSpec spec_;
  StreamingConfig config_;
  std::unique_ptr<Model> model_;
  Evaluator evaluator_;
  IncrementalArFitter fitter_;  // fit window ring + running sums
  bool use_incremental_;
  std::vector<double> window_scratch_;  // full-refit linearization scratch
  std::vector<double> recent_scratch_;  // streaming-state seed scratch
  ArFit fit_scratch_;
  ArFitScratch ld_scratch_;
  std::size_t refits_ = 0;
  std::size_t incremental_refits_ = 0;
  std::uint64_t steps_ = 0;
};

/// Stateless request/response prediction service: fit + predict per call.
/// "the RPS request-response prediction system is stateless and computation
/// happens only in direct response to queries."
class ClientServerPredictor {
 public:
  explicit ClientServerPredictor(ModelSpec default_spec = ModelSpec::ar(16));

  struct Request {
    std::span<const double> history;
    std::size_t horizon = 30;
    /// Override the service's default model; nullopt = use default.
    std::optional<ModelSpec> spec;
  };

  /// Thread-safe: the service is stateless per request, and the served
  /// counter is atomic, so one predictor instance can serve concurrent
  /// query threads (the QueryServer's prediction fits share one).
  [[nodiscard]] Prediction predict(const Request& request) const;

  /// As above, but also exposes the fitted model's parameters as a warm
  /// cache template (nullopt for families templates cannot capture).
  Prediction predict(const Request& request, std::optional<ModelTemplate>* template_out) const;
  [[nodiscard]] std::uint64_t requests_served() const {
    return served_.load(std::memory_order_relaxed);
  }

 private:
  ModelSpec default_spec_;
  mutable std::atomic<std::uint64_t> served_{0};
};

}  // namespace remos::rps
