#include "rps/fleet.hpp"

#include <algorithm>
#include <stdexcept>

#include "rps/series.hpp"

namespace remos::rps {
namespace {

/// The AR fast lane handles exactly what IncrementalArFitter can fit.
bool ar_lane(const ModelSpec& spec) {
  return spec.family == ModelSpec::Family::kAr && !spec.use_burg;
}

FleetConfig sanitize(FleetConfig config) {
  config.window = std::max<std::size_t>(config.window, 1);
  config.max_batch_tasks = std::max<std::size_t>(config.max_batch_tasks, 1);
  return config;
}

}  // namespace

FleetPredictor::FleetPredictor(FleetConfig config) : config_(sanitize(config)) {}

FleetPredictor::SeriesId FleetPredictor::add_series(const ModelSpec& spec) {
  const SeriesId id = series_.size();
  Series s;
  s.spec = spec;
  if (ar_lane(spec)) {
    s.ar = std::make_unique<ArSeries>(spec.p, config_.window, config_.resync_interval);
  } else {
    s.gen = std::make_unique<GenericSeries>(config_.window);
  }
  series_.push_back(std::move(s));
  auto [it, fresh] = groups_.try_emplace(spec.to_string());
  if (fresh) it->second.spec = spec;
  it->second.members.push_back(id);
  return id;
}

void FleetPredictor::prime(SeriesId id, std::span<const double> history) {
  Series& s = series_.at(id);
  if (s.ar != nullptr) {
    s.ar->fitter.assign(history);
  } else {
    s.gen->ring.assign(history);
  }
}

void FleetPredictor::observe(SeriesId id, double x) {
  Series& s = series_[id];
  if (s.ar != nullptr) {
    s.ar->fitter.push(x);
    return;
  }
  s.gen->ring.push_sample(x);
  if (s.gen->fitted) s.gen->model->step(x);
}

void FleetPredictor::fit_one(Series& s, LaneScratch& lane) {
  if (s.ar != nullptr) {
    ArSeries& ar = *s.ar;
    if (!ar.fitter.fittable()) {
      ++lane.failures;
      return;  // too young; keep any previous fit
    }
    if (config_.incremental) {
      ar.fitter.fit_into(ar.fit, lane.ld);
      ar.mu = ar.fitter.mean();
    } else {
      // Full-refit baseline: exact batch recompute, float-identical to the
      // ArmaModel::fit path (mean + autocovariance + Levinson-Durbin).
      ar.fitter.samples().copy_to(lane.window);
      ar.fit = fit_ar_yule_walker(lane.window, s.spec.p);
      ar.mu = mean(lane.window);
    }
    ar.fitted = true;
    ++lane.refits;
    return;
  }
  GenericSeries& gen = *s.gen;
  gen.ring.copy_to(lane.window);
  auto fresh = make_model(s.spec);
  try {
    fresh->fit(lane.window);
  } catch (const std::invalid_argument&) {
    ++lane.failures;
    return;  // window too short for this model; keep any previous fit
  }
  gen.model = std::move(fresh);
  gen.fitted = true;
  ++lane.refits;
}

void FleetPredictor::refit_all() {
  if (lanes_.size() < config_.max_batch_tasks) lanes_.resize(config_.max_batch_tasks);
  for (auto& lane : lanes_) {
    lane.refits = 0;
    lane.failures = 0;
  }
  for (auto& [key, group] : groups_) {
    auto fit_range = [&](std::size_t task, std::size_t begin, std::size_t end) {
      LaneScratch& lane = lanes_[task];
      for (std::size_t i = begin; i < end; ++i) fit_one(series_[group.members[i]], lane);
    };
    const std::size_t n = group.members.size();
    if (config_.pool != nullptr && config_.max_batch_tasks > 1 &&
        n >= config_.parallel_min_series) {
      // No FleetPredictor lock is held here and lanes take none, so the
      // only mutex in play is ThreadPool::mu_ (order 10).
      config_.pool->parallel_ranges(n, config_.max_batch_tasks, fit_range);
    } else {
      fit_range(0, 0, n);
    }
    publish_template(group);
  }
  std::uint64_t refits = 0;
  std::uint64_t failures = 0;
  for (const auto& lane : lanes_) {
    refits += lane.refits;
    failures += lane.failures;
  }
  refits_total_.fetch_add(refits, std::memory_order_relaxed);
  fit_failures_.fetch_add(failures, std::memory_order_relaxed);
}

void FleetPredictor::publish_template(const Group& group) {
  if (config_.cache == nullptr) return;
  // The lowest-id fitted series decides the group template — a fixed,
  // schedule-independent choice.
  for (SeriesId id : group.members) {
    const Series& s = series_[id];
    if (s.ar != nullptr && s.ar->fitted) {
      const ModelTemplate tmpl{group.spec, s.ar->fit.phi, {}, s.ar->mu, s.ar->fit.sigma2};
      config_.cache->put_template(group.spec.to_string(), tmpl);
      ++templates_published_;
      return;
    }
    if (s.gen != nullptr && s.gen->fitted) {
      if (auto tmpl = extract_template(*s.gen->model, group.spec)) {
        config_.cache->put_template(group.spec.to_string(), *tmpl);
        ++templates_published_;
      }
      return;
    }
  }
}

bool FleetPredictor::fitted(SeriesId id) const {
  const Series& s = series_.at(id);
  return s.ar != nullptr ? s.ar->fitted : s.gen->fitted;
}

void FleetPredictor::predict_ar(const RingWindow& ring, std::span<const double> phi, double mu,
                                double sigma2, Prediction& out) {
  const std::size_t horizon = config_.horizon;
  out.mean.resize(horizon);
  out.variance.resize(horizon);
  zhat_scratch_.assign(horizon, 0.0);
  const std::size_t n = ring.size();
  // ArmaCore keeps the last max(p, 1) deviations; replicate its
  // zero-padding so the fast lane is bit-identical to the Model path.
  const std::size_t keep = std::min(n, std::max<std::size_t>(phi.size(), 1));
  const auto past_z = [&](std::size_t k) { return k <= keep ? ring[n - k] - mu : 0.0; };
  for (std::size_t h = 1; h <= horizon; ++h) {
    double acc = 0.0;
    for (std::size_t j = 1; j <= phi.size(); ++j) {
      const std::ptrdiff_t idx = static_cast<std::ptrdiff_t>(h) - static_cast<std::ptrdiff_t>(j);
      acc += phi[j - 1] * (idx >= 1 ? zhat_scratch_[static_cast<std::size_t>(idx - 1)]
                                    : past_z(static_cast<std::size_t>(1 - idx)));
    }
    zhat_scratch_[h - 1] = acc;
    out.mean[h - 1] = mu + acc;
  }
  // psi-weights with theta empty, same operation order as psi_weights().
  psi_scratch_.assign(horizon, 0.0);
  if (horizon > 0) psi_scratch_[0] = 1.0;
  for (std::size_t j = 1; j < horizon; ++j) {
    double acc = 0.0;
    const std::size_t kmax = std::min(j, phi.size());
    for (std::size_t k = 1; k <= kmax; ++k) acc += phi[k - 1] * psi_scratch_[j - k];
    psi_scratch_[j] = acc;
  }
  double cum = 0.0;
  for (std::size_t h = 0; h < horizon; ++h) {
    cum += psi_scratch_[h] * psi_scratch_[h];
    out.variance[h] = sigma2 * cum;
  }
}

bool FleetPredictor::predict_into(SeriesId id, Prediction& out) {
  Series& s = series_.at(id);
  if (s.ar != nullptr) {
    if (s.ar->fitted) {
      predict_ar(s.ar->fitter.samples(), s.ar->fit.phi, s.ar->mu, s.ar->fit.sigma2, out);
      return true;
    }
    if (config_.cache != nullptr) {
      if (auto tmpl = config_.cache->warm_template(s.spec.to_string());
          tmpl && tmpl->phi.size() == s.spec.p) {
        predict_ar(s.ar->fitter.samples(), tmpl->phi, tmpl->mu, tmpl->sigma2, out);
        config_.cache->note_seeded();
        ++seeded_predictions_;
        return true;
      }
    }
    return false;
  }
  GenericSeries& gen = *s.gen;
  if (gen.fitted) {
    out = gen.model->predict(config_.horizon);
    return true;
  }
  if (config_.cache != nullptr) {
    if (auto tmpl = config_.cache->warm_template(s.spec.to_string())) {
      gen.ring.copy_to(seed_scratch_);
      if (auto seeded = model_from_template(*tmpl, seed_scratch_)) {
        out = seeded->predict(config_.horizon);
        config_.cache->note_seeded();
        ++seeded_predictions_;
        return true;
      }
    }
  }
  return false;
}

Prediction FleetPredictor::predict(SeriesId id) {
  Prediction out;
  if (!predict_into(id, out)) {
    throw std::logic_error("FleetPredictor: predict before any successful fit or seed");
  }
  return out;
}

}  // namespace remos::rps
