#include "rps/incremental.hpp"

#include <algorithm>
#include <stdexcept>

namespace remos::rps {

RingWindow::RingWindow(std::size_t capacity) : slots_(capacity, 0.0) {
  if (capacity == 0) throw std::invalid_argument("RingWindow: capacity must be > 0");
}

// remos-hot
bool RingWindow::push_sample(double x) {
  if (count_ < slots_.size()) {
    slots_[index(count_)] = x;
    ++count_;
    return false;
  }
  slots_[head_] = x;  // new sample lands where the evicted one lived
  head_ = head_ + 1 < slots_.size() ? head_ + 1 : 0;
  return true;
}

void RingWindow::assign(std::span<const double> xs) {
  const std::size_t take = std::min(slots_.size(), xs.size());
  const std::span<const double> tail = xs.subspan(xs.size() - take);
  std::copy(tail.begin(), tail.end(), slots_.begin());
  head_ = 0;
  count_ = take;
  element_moves_ += take;
}

void RingWindow::clear() {
  head_ = 0;
  count_ = 0;
}

void RingWindow::copy_to(std::vector<double>& out) const {
  out.resize(count_);
  for (std::size_t i = 0; i < count_; ++i) out[i] = slots_[index(i)];
  element_moves_ += count_;
}

IncrementalArFitter::IncrementalArFitter(std::size_t order, std::size_t window,
                                         std::size_t resync_interval)
    : order_(order),
      resync_interval_(resync_interval == 0 ? window : resync_interval),
      ring_(window),
      cross_(order + 1, 0.0) {}
// A window <= order + 1 is allowed but never fittable() — matches the
// batch path, where fit_ar_yule_walker rejects short series per call.

// remos-hot
void IncrementalArFitter::push(double x) {
  if (ring_.full()) {
    // Evicting the oldest sample removes exactly the pairs that touch it:
    // for lag k that is y_k * y_0 (the evicted sample is always the older
    // member). Remaining pair distances are unchanged by the index shift.
    const double y0 = ring_[0] - offset_;
    sum_ -= y0;
    cross_[0] -= y0 * y0;
    const std::size_t kmax = std::min(order_, ring_.size() - 1);
    for (std::size_t k = 1; k <= kmax; ++k) {
      cross_[k] -= y0 * (ring_[k] - offset_);
    }
  }
  ring_.push_sample(x);
  const double y = x - offset_;
  sum_ += y;
  cross_[0] += y * y;
  const std::size_t n = ring_.size();
  const std::size_t kmax = std::min(order_, n - 1);
  for (std::size_t k = 1; k <= kmax; ++k) {
    cross_[k] += y * (ring_[n - 1 - k] - offset_);
  }
  if (++pushes_since_resync_ >= resync_interval_) {
    recompute();
    ++resyncs_;
  }
}

void IncrementalArFitter::assign(std::span<const double> xs) {
  ring_.assign(xs);
  recompute();
}

void IncrementalArFitter::clear() {
  ring_.clear();
  recompute();
}

void IncrementalArFitter::recompute() {
  const std::size_t n = ring_.size();
  // Re-anchor the shift at the current window mean: the sums then
  // accumulate near-zero-mean values, which is what keeps the
  // gamma assembly cancellation-free when mean >> std.
  double raw = 0.0;
  for (std::size_t i = 0; i < n; ++i) raw += ring_[i];
  offset_ = n > 0 ? raw / static_cast<double>(n) : 0.0;
  sum_ = 0.0;
  std::fill(cross_.begin(), cross_.end(), 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double y = ring_[i] - offset_;
    sum_ += y;
    const std::size_t kmax = std::min(order_, i);
    for (std::size_t k = 0; k <= kmax; ++k) {
      cross_[k] += y * (ring_[i - k] - offset_);
    }
  }
  pushes_since_resync_ = 0;
}

double IncrementalArFitter::mean() const {
  const std::size_t n = ring_.size();
  if (n == 0) return offset_;
  return offset_ + sum_ / static_cast<double>(n);
}

// remos-hot
void IncrementalArFitter::fit_into(ArFit& out, ArFitScratch& scratch) const {
  if (!fittable()) {
    throw std::invalid_argument("IncrementalArFitter: series too short");
  }
  const std::size_t n = ring_.size();
  const double nd = static_cast<double>(n);
  const double m = sum_ / nd;  // mean of the shifted samples
  // gamma_k = (1/n) sum_{t=k}^{n-1} (y_t - m)(y_{t-k} - m)
  //         = (C_k - m*(S - tail_k) - m*(S - head_k) + (n-k)*m^2) / n
  // where head_k / tail_k are the sums of the first / last k shifted
  // samples (the lag loop only covers t in [k, n-1]).
  scratch.gamma.assign(order_ + 1, 0.0);
  double head = 0.0;
  double tail = 0.0;
  for (std::size_t k = 0; k <= order_; ++k) {
    const double nk = static_cast<double>(n - k);
    scratch.gamma[k] =
        (cross_[k] - m * (sum_ - tail) - m * (sum_ - head) + nk * m * m) / nd;
    head += ring_[k] - offset_;
    tail += ring_[n - 1 - k] - offset_;
  }
  levinson_durbin_into(scratch.gamma, order_, out, scratch);
}

ArFit IncrementalArFitter::fit() const {
  ArFit out;
  ArFitScratch scratch;
  fit_into(out, scratch);
  return out;
}

}  // namespace remos::rps
