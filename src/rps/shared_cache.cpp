#include "rps/shared_cache.hpp"

#include <stdexcept>
#include <utility>

#include "sim/metrics.hpp"

namespace remos::rps {

SharedPredictionCache::SharedPredictionCache(double ttl_s, std::function<double()> now,
                                             double warm_ttl_s)
    : ttl_s_(ttl_s), warm_ttl_s_(warm_ttl_s > 0.0 ? warm_ttl_s : 8.0 * ttl_s),
      now_(std::move(now)) {
  if (!now_) throw std::invalid_argument("SharedPredictionCache: time source required");
}

std::optional<Prediction> SharedPredictionCache::peek(const std::string& key) const {
  std::lock_guard lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  if (now_() - it->second.computed_at > ttl_s_) return std::nullopt;
  return it->second.prediction;
}

Prediction SharedPredictionCache::get_or_compute(
    const std::string& key, const std::function<Prediction()>& compute) {
  std::shared_ptr<InFlightFit> fit;
  bool leader = false;
  {
    std::lock_guard lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end() && now_() - it->second.computed_at <= ttl_s_) {
      ++hits_;
      sim::metrics().counter("rps.prediction_cache.hits_total").inc();
      return it->second.prediction;
    }
    if (auto in_flight = fits_.find(key); in_flight != fits_.end()) {
      // Someone is already fitting this key: joining their fit is a hit
      // (the whole point of sharing — one fit serves every concurrent
      // asker of the key).
      ++hits_;
      sim::metrics().counter("rps.prediction_cache.hits_total").inc();
      fit = in_flight->second;
    } else {
      ++misses_;
      sim::metrics().counter("rps.prediction_cache.misses_total").inc();
      fit = std::make_shared<InFlightFit>();
      fit->started_at = now_();
      fits_.emplace(key, fit);
      leader = true;
    }
  }
  if (!leader) return fit->future.get();

  Prediction result;
  try {
    result = compute();
  } catch (...) {
    {
      std::lock_guard lock(mu_);
      if (!fit->cancelled) fits_.erase(key);
    }
    fit->promise.set_exception(std::current_exception());
    throw;
  }
  {
    std::lock_guard lock(mu_);
    if (!fit->cancelled) {
      // Stamped with the fit's *start* time: the prediction describes the
      // resource as of when the fit began, so a long fit ages the entry.
      entries_.insert_or_assign(key, Entry{result, fit->started_at});
      fits_.erase(key);
    }
  }
  fit->promise.set_value(std::move(result));
  return fit->future.get();
}

void SharedPredictionCache::invalidate(const std::string& key) {
  std::lock_guard lock(mu_);
  entries_.erase(key);
  if (auto it = fits_.find(key); it != fits_.end()) {
    // The in-flight fit observed pre-invalidation data: let its waiters
    // have the answer they asked for, but do not retain it in the cache,
    // and let the next asker start a fresh fit on the changed resource.
    it->second->cancelled = true;
    fits_.erase(it);
  }
}

void SharedPredictionCache::clear() {
  std::lock_guard lock(mu_);
  entries_.clear();
  for (auto& [key, fit] : fits_) fit->cancelled = true;
  fits_.clear();
  templates_.clear();
}

void SharedPredictionCache::put_template(const std::string& shape_key,
                                         const ModelTemplate& tmpl) {
  std::lock_guard lock(mu_);
  templates_.insert_or_assign(shape_key, WarmEntry{tmpl, now_()});
  ++templates_stored_;
  sim::metrics().counter("rps.prediction_cache.templates_stored_total").inc();
}

std::optional<ModelTemplate> SharedPredictionCache::warm_template(const std::string& shape_key) {
  std::lock_guard lock(mu_);
  auto it = templates_.find(shape_key);
  if (it == templates_.end() || now_() - it->second.stored_at > warm_ttl_s_) {
    ++warm_misses_;
    sim::metrics().counter("rps.prediction_cache.warm_misses_total").inc();
    return std::nullopt;
  }
  ++warm_hits_;
  sim::metrics().counter("rps.prediction_cache.warm_hits_total").inc();
  return it->second.tmpl;
}

void SharedPredictionCache::note_seeded() {
  std::lock_guard lock(mu_);
  ++seeds_;
  sim::metrics().counter("rps.prediction_cache.seeds_total").inc();
}

}  // namespace remos::rps
