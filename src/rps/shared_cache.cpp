#include "rps/shared_cache.hpp"

#include <stdexcept>

#include "sim/metrics.hpp"

namespace remos::rps {

SharedPredictionCache::SharedPredictionCache(double ttl_s, std::function<double()> now)
    : ttl_s_(ttl_s), now_(std::move(now)) {
  if (!now_) throw std::invalid_argument("SharedPredictionCache: time source required");
}

std::optional<Prediction> SharedPredictionCache::peek(const std::string& key) const {
  std::lock_guard lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  if (now_() - it->second.computed_at > ttl_s_) return std::nullopt;
  return it->second.prediction;
}

Prediction SharedPredictionCache::get_or_compute(
    const std::string& key, const std::function<Prediction()>& compute) {
  std::lock_guard lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end() && now_() - it->second.computed_at <= ttl_s_) {
    ++hits_;
    sim::metrics().counter("rps.prediction_cache.hits_total").inc();
    return it->second.prediction;
  }
  ++misses_;
  sim::metrics().counter("rps.prediction_cache.misses_total").inc();
  // compute() runs under the lock: concurrent callers of the same cold key
  // then fit the model once instead of racing to fit it N times (the whole
  // point of sharing). Cost: unrelated keys briefly serialize behind a fit.
  Entry entry{compute(), now_()};
  auto [pos, inserted] = entries_.insert_or_assign(key, std::move(entry));
  (void)inserted;
  return pos->second.prediction;
}

void SharedPredictionCache::invalidate(const std::string& key) {
  std::lock_guard lock(mu_);
  entries_.erase(key);
}

void SharedPredictionCache::clear() {
  std::lock_guard lock(mu_);
  entries_.clear();
}

}  // namespace remos::rps
