#include "rps/shared_cache.hpp"

#include <stdexcept>

namespace remos::rps {

SharedPredictionCache::SharedPredictionCache(double ttl_s, std::function<double()> now)
    : ttl_s_(ttl_s), now_(std::move(now)) {
  if (!now_) throw std::invalid_argument("SharedPredictionCache: time source required");
}

const Prediction* SharedPredictionCache::peek(const std::string& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  if (now_() - it->second.computed_at > ttl_s_) return nullptr;
  return &it->second.prediction;
}

const Prediction& SharedPredictionCache::get_or_compute(
    const std::string& key, const std::function<Prediction()>& compute) {
  auto it = entries_.find(key);
  if (it != entries_.end() && now_() - it->second.computed_at <= ttl_s_) {
    ++hits_;
    return it->second.prediction;
  }
  ++misses_;
  Entry entry{compute(), now_()};
  auto [pos, inserted] = entries_.insert_or_assign(key, std::move(entry));
  (void)inserted;
  return pos->second.prediction;
}

void SharedPredictionCache::invalidate(const std::string& key) { entries_.erase(key); }

void SharedPredictionCache::clear() { entries_.clear(); }

}  // namespace remos::rps
