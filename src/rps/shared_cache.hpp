// Shared prediction cache — the paper's §6.2 open issue: "an evaluation of
// techniques for caching and sharing of prediction results".
//
// Multiple consumers asking about the same resource within a short window
// (e.g. every student's video client probing the same mirror list) should
// not each pay a model fit. The cache keys predictions by resource id and
// serves them until a TTL expires or the owner invalidates them; hit/miss
// accounting supports the ablation study.
//
// Thread safety: all operations are safe to call concurrently (the Master
// Collector's worker threads share one cache). Results are returned by
// value so no caller holds a reference into the map while another thread
// mutates it.
//
// Fit concurrency: `compute` runs *outside* the cache lock. Concurrent
// callers of the same cold key still fit once — the first becomes the
// leader, the rest block on the leader's shared_future — but fits for
// distinct keys proceed in parallel instead of serializing behind one
// global lock (the pre-snapshot design's scaling bottleneck).
//
// Eviction-during-fit rule: a fit observes the resource's state at the
// instant it *starts*. The installed entry is therefore stamped with the
// fit's start time (a fit that outlives the TTL is already stale at
// install), and invalidate()/clear() during a fit cancel the pending
// install — the leader and its waiters still get the computed value (they
// asked before the invalidation), but the cache does not retain a
// prediction fitted on pre-invalidation data.
#pragma once

#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "rps/models.hpp"

namespace remos::rps {

class SharedPredictionCache {
 public:
  /// `now`: time source (simulated seconds in this repo). Must itself be
  /// safe to call from multiple threads.
  SharedPredictionCache(double ttl_s, std::function<double()> now);

  /// Return the cached prediction for `key` if fresh; otherwise run
  /// `compute` (outside the lock; same-key callers coalesce on the one
  /// in-flight fit), cache, and return its result.
  Prediction get_or_compute(const std::string& key,
                            const std::function<Prediction()>& compute);

  /// Copy of the fresh cached entry, or nullopt.
  [[nodiscard]] std::optional<Prediction> peek(const std::string& key) const;

  /// Drop one entry (a collector noticed the resource changed). Also
  /// cancels the pending install of any in-flight fit for the key: the
  /// fit is serving pre-invalidation data, so its result must not outlive
  /// the invalidation in the cache.
  void invalidate(const std::string& key);
  void clear();

  [[nodiscard]] std::uint64_t hits() const {
    std::lock_guard lock(mu_);
    return hits_;
  }
  [[nodiscard]] std::uint64_t misses() const {
    std::lock_guard lock(mu_);
    return misses_;
  }
  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mu_);
    return entries_.size();
  }
  [[nodiscard]] double hit_rate() const {
    std::lock_guard lock(mu_);
    const double total = static_cast<double>(hits_ + misses_);
    return total > 0 ? static_cast<double>(hits_) / total : 0.0;
  }

 private:
  struct Entry {
    Prediction prediction;
    double computed_at = 0.0;
  };
  /// One in-flight fit. Waiters hold the shared_future; the leader holds
  /// the whole record through its shared_ptr, so invalidate() can detach
  /// it from the map (allowing a fresh fit on the changed data) without
  /// orphaning anyone.
  struct InFlightFit {
    std::promise<Prediction> promise;
    std::shared_future<Prediction> future;
    double started_at = 0.0;
    bool cancelled = false;  // remos-guarded-by(mu_)
    InFlightFit() : future(promise.get_future().share()) {}
  };

  // Set once in the constructor, read concurrently without the lock.
  const double ttl_s_;
  const std::function<double()> now_;
  mutable std::mutex mu_;  // remos-lock-order(20)
  std::map<std::string, Entry> entries_;
  std::map<std::string, std::shared_ptr<InFlightFit>> fits_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace remos::rps
