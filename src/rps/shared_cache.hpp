// Shared prediction cache — the paper's §6.2 open issue: "an evaluation of
// techniques for caching and sharing of prediction results".
//
// Multiple consumers asking about the same resource within a short window
// (e.g. every student's video client probing the same mirror list) should
// not each pay a model fit. The cache keys predictions by resource id and
// serves them until a TTL expires or the owner invalidates them; hit/miss
// accounting supports the ablation study.
//
// Thread safety: all operations are safe to call concurrently (the Master
// Collector's worker threads share one cache). Results are returned by
// value so no caller holds a reference into the map while another thread
// mutates it.
//
// Fit concurrency: `compute` runs *outside* the cache lock. Concurrent
// callers of the same cold key still fit once — the first becomes the
// leader, the rest block on the leader's shared_future — but fits for
// distinct keys proceed in parallel instead of serializing behind one
// global lock (the pre-snapshot design's scaling bottleneck).
//
// Eviction-during-fit rule: a fit observes the resource's state at the
// instant it *starts*. The installed entry is therefore stamped with the
// fit's start time (a fit that outlives the TTL is already stale at
// install), and invalidate()/clear() during a fit cancel the pending
// install — the leader and its waiters still get the computed value (they
// asked before the invalidation), but the cache does not retain a
// prediction fitted on pre-invalidation data.
//
// Tiers (ROADMAP item 4): the per-key entries above form the *hot* tier —
// exact fitted predictions, valid only for their own series. The *warm*
// tier below it holds ModelTemplates keyed by spec *shape* (not series):
// coefficients extracted from one fitted series seed model state for
// another series of the same shape whose history is too short to fit.
// Warm entries age on their own (longer) TTL — coefficients drift slower
// than the point forecasts they generate. invalidate(key) drops only the
// hot entry: a change to one series says nothing about the shape template
// the fleet shares. clear() drops both tiers.
#pragma once

#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "rps/models.hpp"

namespace remos::rps {

class SharedPredictionCache {
 public:
  /// `now`: time source (simulated seconds in this repo). Must itself be
  /// safe to call from multiple threads. `warm_ttl_s` ages the warm
  /// (spec-shape template) tier; 0 means 8x the hot TTL.
  SharedPredictionCache(double ttl_s, std::function<double()> now, double warm_ttl_s = 0.0);

  /// Return the cached prediction for `key` if fresh; otherwise run
  /// `compute` (outside the lock; same-key callers coalesce on the one
  /// in-flight fit), cache, and return its result.
  Prediction get_or_compute(const std::string& key,
                            const std::function<Prediction()>& compute);

  /// Copy of the fresh cached entry, or nullopt.
  [[nodiscard]] std::optional<Prediction> peek(const std::string& key) const;

  /// Drop one entry (a collector noticed the resource changed). Also
  /// cancels the pending install of any in-flight fit for the key: the
  /// fit is serving pre-invalidation data, so its result must not outlive
  /// the invalidation in the cache. Warm-tier templates survive — one
  /// series changing says nothing about the fleet's shared shape.
  void invalidate(const std::string& key);
  void clear();

  /// Store or refresh a spec-shape template in the warm tier.
  void put_template(const std::string& shape_key, const ModelTemplate& tmpl);

  /// Fresh warm-tier template for a spec shape, or nullopt; counts a warm
  /// hit or miss either way.
  [[nodiscard]] std::optional<ModelTemplate> warm_template(const std::string& shape_key);

  /// Record that a prediction was served from a template-seeded model (the
  /// caller seeds outside the lock, so this is a separate accounting call).
  void note_seeded();

  [[nodiscard]] std::uint64_t hits() const {
    std::lock_guard lock(mu_);
    return hits_;
  }
  [[nodiscard]] std::uint64_t misses() const {
    std::lock_guard lock(mu_);
    return misses_;
  }
  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mu_);
    return entries_.size();
  }
  [[nodiscard]] double hit_rate() const {
    std::lock_guard lock(mu_);
    const double total = static_cast<double>(hits_ + misses_);
    return total > 0 ? static_cast<double>(hits_) / total : 0.0;
  }

  // Warm-tier accounting.
  [[nodiscard]] std::uint64_t warm_hits() const {
    std::lock_guard lock(mu_);
    return warm_hits_;
  }
  [[nodiscard]] std::uint64_t warm_misses() const {
    std::lock_guard lock(mu_);
    return warm_misses_;
  }
  [[nodiscard]] std::uint64_t seeds() const {
    std::lock_guard lock(mu_);
    return seeds_;
  }
  [[nodiscard]] std::uint64_t templates_stored() const {
    std::lock_guard lock(mu_);
    return templates_stored_;
  }
  [[nodiscard]] std::size_t warm_size() const {
    std::lock_guard lock(mu_);
    return templates_.size();
  }

 private:
  struct Entry {
    Prediction prediction;
    double computed_at = 0.0;
  };
  /// One in-flight fit. Waiters hold the shared_future; the leader holds
  /// the whole record through its shared_ptr, so invalidate() can detach
  /// it from the map (allowing a fresh fit on the changed data) without
  /// orphaning anyone.
  struct InFlightFit {
    std::promise<Prediction> promise;
    std::shared_future<Prediction> future;
    double started_at = 0.0;
    bool cancelled = false;  // remos-guarded-by(mu_)
    InFlightFit() : future(promise.get_future().share()) {}
  };

  struct WarmEntry {
    ModelTemplate tmpl;
    double stored_at = 0.0;
  };

  // Set once in the constructor, read concurrently without the lock.
  const double ttl_s_;
  const double warm_ttl_s_;
  const std::function<double()> now_;
  mutable std::mutex mu_;  // remos-lock-order(20)
  std::map<std::string, Entry> entries_;
  std::map<std::string, std::shared_ptr<InFlightFit>> fits_;
  std::map<std::string, WarmEntry> templates_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t warm_hits_ = 0;
  std::uint64_t warm_misses_ = 0;
  std::uint64_t seeds_ = 0;
  std::uint64_t templates_stored_ = 0;
};

}  // namespace remos::rps
