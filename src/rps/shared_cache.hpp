// Shared prediction cache — the paper's §6.2 open issue: "an evaluation of
// techniques for caching and sharing of prediction results".
//
// Multiple consumers asking about the same resource within a short window
// (e.g. every student's video client probing the same mirror list) should
// not each pay a model fit. The cache keys predictions by resource id and
// serves them until a TTL expires or the owner invalidates them; hit/miss
// accounting supports the ablation study.
//
// Thread safety: all operations are safe to call concurrently (the Master
// Collector's worker threads share one cache). Results are returned by
// value so no caller holds a reference into the map while another thread
// mutates it. `compute` runs under the cache lock, so it must not reenter
// the same cache.
#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "rps/models.hpp"

namespace remos::rps {

class SharedPredictionCache {
 public:
  /// `now`: time source (simulated seconds in this repo). Must itself be
  /// safe to call from multiple threads.
  SharedPredictionCache(double ttl_s, std::function<double()> now);

  /// Return the cached prediction for `key` if fresh; otherwise run
  /// `compute`, cache, and return its result.
  Prediction get_or_compute(const std::string& key,
                            const std::function<Prediction()>& compute);

  /// Copy of the fresh cached entry, or nullopt.
  [[nodiscard]] std::optional<Prediction> peek(const std::string& key) const;

  /// Drop one entry (a collector noticed the resource changed).
  void invalidate(const std::string& key);
  void clear();

  [[nodiscard]] std::uint64_t hits() const {
    std::lock_guard lock(mu_);
    return hits_;
  }
  [[nodiscard]] std::uint64_t misses() const {
    std::lock_guard lock(mu_);
    return misses_;
  }
  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mu_);
    return entries_.size();
  }
  [[nodiscard]] double hit_rate() const {
    std::lock_guard lock(mu_);
    const double total = static_cast<double>(hits_ + misses_);
    return total > 0 ? static_cast<double>(hits_) / total : 0.0;
  }

 private:
  struct Entry {
    Prediction prediction;
    double computed_at = 0.0;
  };

  // Set once in the constructor, read concurrently without the lock.
  const double ttl_s_;
  const std::function<double()> now_;
  mutable std::mutex mu_;  // remos-lock-order(20)
  std::map<std::string, Entry> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace remos::rps
