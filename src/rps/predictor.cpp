#include "rps/predictor.hpp"

#include <stdexcept>

namespace remos::rps {

StreamingPredictor::StreamingPredictor(ModelSpec spec, StreamingConfig config)
    : spec_(spec), config_(config), evaluator_(config.evaluator) {}

void StreamingPredictor::prime(std::span<const double> history) {
  const std::size_t take = std::min(config_.fit_window, history.size());
  buffer_.assign(history.end() - static_cast<std::ptrdiff_t>(take), history.end());
  model_ = make_model(spec_);
  model_->fit(buffer_);
  evaluator_.reset();
  refits_ = 1;
}

void StreamingPredictor::refit() {
  auto fresh = make_model(spec_);
  try {
    fresh->fit(buffer_);
  } catch (const std::invalid_argument&) {
    return;  // buffer too short for the model order; keep the current fit
  }
  model_ = std::move(fresh);
  evaluator_.reset();
  ++refits_;
}

Prediction StreamingPredictor::push(double measurement) {
  if (!primed()) throw std::logic_error("StreamingPredictor: push before prime");
  ++steps_;
  evaluator_.observe(measurement);
  buffer_.push_back(measurement);
  if (buffer_.size() > config_.fit_window) buffer_.erase(buffer_.begin());
  model_->step(measurement);
  if (config_.refit_on_error && evaluator_.needs_refit(model_->one_step_variance())) {
    refit();
  }
  Prediction p = model_->predict(config_.horizon);
  if (!p.mean.empty()) evaluator_.note_prediction(p.mean.front());
  return p;
}

Prediction StreamingPredictor::predict() const {
  if (!primed()) throw std::logic_error("StreamingPredictor: predict before prime");
  return model_->predict(config_.horizon);
}

ClientServerPredictor::ClientServerPredictor(ModelSpec default_spec)
    : default_spec_(default_spec) {}

Prediction ClientServerPredictor::predict(const Request& request) const {
  served_.fetch_add(1, std::memory_order_relaxed);
  const ModelSpec spec = request.spec.value_or(default_spec_);
  auto model = make_model(spec);
  model->fit(request.history);
  return model->predict(request.horizon);
}

}  // namespace remos::rps
