#include "rps/predictor.hpp"

#include <algorithm>
#include <stdexcept>

namespace remos::rps {

namespace {

/// Only pure AR Yule-Walker specs can take the incremental-install path:
/// Burg fits from the raw samples (no autocovariance sums to maintain) and
/// every other family needs a full recompute.
bool incremental_eligible(const ModelSpec& spec, const StreamingConfig& config) {
  return config.incremental_fit && spec.family == ModelSpec::Family::kAr && !spec.use_burg;
}

}  // namespace

StreamingPredictor::StreamingPredictor(ModelSpec spec, StreamingConfig config)
    : spec_(spec),
      config_(config),
      evaluator_(config.evaluator),
      fitter_(incremental_eligible(spec, config) ? spec.p : 0,
              std::max<std::size_t>(config.fit_window, 1), config.resync_interval),
      use_incremental_(incremental_eligible(spec, config)) {}

void StreamingPredictor::prime(std::span<const double> history) {
  const std::size_t take = std::min(config_.fit_window, history.size());
  const std::span<const double> tail = history.subspan(history.size() - take);
  fitter_.assign(tail);
  model_ = make_model(spec_);
  model_->fit(tail);
  evaluator_.reset();
  refits_ = 1;
}

std::span<const double> StreamingPredictor::recent_samples() {
  const RingWindow& ring = fitter_.samples();
  const std::size_t want = std::max<std::size_t>(spec_.p, 1);
  const std::size_t take = std::min(want, ring.size());
  recent_scratch_.resize(take);
  for (std::size_t i = 0; i < take; ++i) {
    recent_scratch_[i] = ring[ring.size() - take + i];
  }
  return recent_scratch_;
}

void StreamingPredictor::refit() {
  if (use_incremental_) {
    if (!fitter_.fittable()) return;  // window too short; keep the current fit
    fitter_.fit_into(fit_scratch_, ld_scratch_);
    if (install_ar_fit(*model_, fit_scratch_, fitter_.mean(), recent_samples())) {
      evaluator_.reset();
      ++refits_;
      ++incremental_refits_;
      return;
    }
    // Unexpected model shape: fall through to the full-recompute path.
  }
  auto fresh = make_model(spec_);
  fitter_.samples().copy_to(window_scratch_);
  try {
    fresh->fit(window_scratch_);
  } catch (const std::invalid_argument&) {
    return;  // buffer too short for the model order; keep the current fit
  }
  model_ = std::move(fresh);
  evaluator_.reset();
  ++refits_;
}

Prediction StreamingPredictor::push(double measurement) {
  if (!primed()) throw std::logic_error("StreamingPredictor: push before prime");
  ++steps_;
  evaluator_.observe(measurement);
  fitter_.push(measurement);
  model_->step(measurement);
  if (config_.refit_on_error && evaluator_.needs_refit(model_->one_step_variance())) {
    refit();
  }
  Prediction p = model_->predict(config_.horizon);
  if (!p.mean.empty()) evaluator_.note_prediction(p.mean.front());
  return p;
}

Prediction StreamingPredictor::predict() const {
  if (!primed()) throw std::logic_error("StreamingPredictor: predict before prime");
  return model_->predict(config_.horizon);
}

ClientServerPredictor::ClientServerPredictor(ModelSpec default_spec)
    : default_spec_(default_spec) {}

Prediction ClientServerPredictor::predict(const Request& request) const {
  return predict(request, nullptr);
}

Prediction ClientServerPredictor::predict(const Request& request,
                                          std::optional<ModelTemplate>* template_out) const {
  served_.fetch_add(1, std::memory_order_relaxed);
  const ModelSpec spec = request.spec.value_or(default_spec_);
  auto model = make_model(spec);
  model->fit(request.history);
  if (template_out != nullptr) *template_out = extract_template(*model, spec);
  return model->predict(request.horizon);
}

}  // namespace remos::rps
