// RPS predictive models.
//
// The toolkit mirrors the model menu the paper lists for Dinda's RPS: the
// Box-Jenkins linear family (AR, MA, ARMA, ARIMA), a fractionally
// integrated ARIMA for long-range dependence, LAST, windowed-average (BM),
// long-term-average (MEAN), and a template that wraps any model with
// periodic refitting.
//
// Every model exposes both operating modes the paper describes:
//  * client-server: call fit() on a measurement vector, then predict() —
//    stateless from the caller's perspective;
//  * streaming: after one fit(), push each new measurement with step() and
//    predict() cheaply from updated state, amortizing the fit.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "rps/linear.hpp"

namespace remos::rps {

/// Multi-step forecast with RPS-style self-characterized error:
/// variance[h] is the model's estimate of its own (h+1)-step-ahead
/// squared prediction error.
struct Prediction {
  std::vector<double> mean;
  std::vector<double> variance;
};

class Model {
 public:
  virtual ~Model() = default;

  /// Fit model parameters to a measurement history (oldest first).
  virtual void fit(std::span<const double> xs) = 0;
  /// Push one new observation through the fitted model (streaming mode).
  virtual void step(double x) = 0;
  /// Forecast `horizon` steps ahead from current state.
  [[nodiscard]] virtual Prediction predict(std::size_t horizon) const = 0;
  /// Fitted innovation (one-step error) variance.
  [[nodiscard]] virtual double one_step_variance() const = 0;
  [[nodiscard]] virtual bool fitted() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::unique_ptr<Model> clone() const = 0;
};

struct ModelSpec {
  enum class Family { kMean, kLast, kWindow, kAr, kMa, kArma, kArima, kFarima };

  Family family = Family::kMean;
  std::size_t p = 0;       // AR order
  int d = 0;               // integer differencing order (ARIMA)
  std::size_t q = 0;       // MA order
  double frac_d = 0.4;     // fractional differencing exponent (FARIMA)
  std::size_t window = 32; // BM window
  bool use_burg = false;   // AR estimation: Burg instead of Yule-Walker

  /// Parse "MEAN", "LAST", "BM32", "AR16", "MA8", "ARMA(8,8)",
  /// "ARIMA(2,1,2)", "FARIMA(1,0.4,1)"; nullopt on malformed input.
  static std::optional<ModelSpec> parse(std::string_view text);
  [[nodiscard]] std::string to_string() const;

  static ModelSpec mean() { return {}; }
  static ModelSpec last();
  static ModelSpec window_avg(std::size_t w);
  static ModelSpec ar(std::size_t p, bool burg = false);
  static ModelSpec ma(std::size_t q);
  static ModelSpec arma(std::size_t p, std::size_t q);
  static ModelSpec arima(std::size_t p, int d, std::size_t q);
  static ModelSpec farima(std::size_t p, double d, std::size_t q);
};

/// Instantiate a model from its spec.
[[nodiscard]] std::unique_ptr<Model> make_model(const ModelSpec& spec);

/// Portable snapshot of a fitted linear (AR/MA/ARMA) model's parameters.
/// This is the warm-tier cache currency: a template extracted from one
/// series can seed a model for another series of the same spec shape, whose
/// own history is still too short to fit (the seeded model primes its
/// streaming state from the target's recent samples).
struct ModelTemplate {
  ModelSpec spec;
  std::vector<double> phi;
  std::vector<double> theta;
  double mu = 0.0;
  double sigma2 = 0.0;
};

/// Snapshot a fitted linear model's parameters. Returns nullopt for model
/// families whose state is not captured by (phi, theta, mu, sigma2) —
/// MEAN/LAST/BM and the differencing families (ARIMA/FARIMA carry
/// integration tails that are series-specific).
[[nodiscard]] std::optional<ModelTemplate> extract_template(const Model& model,
                                                            const ModelSpec& spec);

/// Instantiate a model from a template and prime its streaming state from
/// `recent` (the target series' latest samples, oldest first). Returns
/// nullptr when the template's family cannot be seeded.
[[nodiscard]] std::unique_ptr<Model> model_from_template(const ModelTemplate& tmpl,
                                                         std::span<const double> recent);

/// Install an incremental AR fit into an existing pure-AR model without
/// re-allocating it: sets (phi, mu, sigma2) and re-primes the recursion
/// state from `recent`. For a pure AR model the streaming state after
/// priming on the last max(p, 1) raw samples is identical to a full
/// fit-window replay (the predict recursion only reads the last p
/// deviations; innovations are unused when theta is empty). Returns false
/// (model untouched) when `model` is not a pure-AR linear model.
// remos-hot
bool install_ar_fit(Model& model, const ArFit& fit, double mu,
                    std::span<const double> recent);

/// Wrap any spec in the periodic-refit template: the returned model keeps a
/// rolling window of `fit_window` observations and refits its inner model
/// every `refit_interval` steps (and whenever refit() is forced).
class RefittingModel final : public Model {
 public:
  RefittingModel(ModelSpec inner, std::size_t refit_interval, std::size_t fit_window);

  void fit(std::span<const double> xs) override;
  void step(double x) override;
  [[nodiscard]] Prediction predict(std::size_t horizon) const override;
  [[nodiscard]] double one_step_variance() const override;
  [[nodiscard]] bool fitted() const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Model> clone() const override;

  /// Force an immediate refit on the buffered window (the evaluator calls
  /// this when error tracking says the fit no longer holds).
  void refit_now();
  [[nodiscard]] std::size_t refit_count() const { return refits_; }

 private:
  ModelSpec spec_;
  std::size_t refit_interval_;
  std::size_t fit_window_;
  std::unique_ptr<Model> inner_;
  std::vector<double> buffer_;  // rolling fit window
  std::size_t steps_since_fit_ = 0;
  std::size_t refits_ = 0;
};

}  // namespace remos::rps
