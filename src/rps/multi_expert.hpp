// NWS-style multi-expert predictor — the baseline the paper contrasts RPS
// against: "the Network Weather Service uses similar feedback to decide
// which of a set of models to use next in a variant of the multiple expert
// machine learning approach."
//
// A panel of experts (one model each) runs in parallel on the measurement
// stream; every prediction comes from the expert with the lowest recent
// one-step error. Where RPS keeps one well-chosen model honest by refitting
// it, NWS hedges across simple models and switches.
#pragma once

#include <memory>
#include <vector>

#include "rps/models.hpp"

namespace remos::rps {

struct MultiExpertConfig {
  /// Exponential forgetting factor for each expert's tracked error
  /// (closer to 1 = longer memory).
  double error_decay = 0.9;
  std::size_t horizon = 30;
};

class MultiExpertPredictor {
 public:
  explicit MultiExpertPredictor(std::vector<ModelSpec> experts, MultiExpertConfig config = {});

  /// Fit every expert on the history (experts whose model order exceeds
  /// the data are dropped from the panel).
  void prime(std::span<const double> history);
  [[nodiscard]] bool primed() const { return !experts_.empty(); }

  /// Feed one measurement: score every expert on its pending prediction,
  /// step all of them, and return the current best expert's forecast.
  Prediction push(double measurement);

  /// Forecast from the current best expert without new data.
  [[nodiscard]] Prediction predict() const;

  /// Name of the currently winning expert.
  [[nodiscard]] std::string best_expert() const;
  /// How often the winner changed so far.
  [[nodiscard]] std::uint64_t switches() const { return switches_; }
  [[nodiscard]] std::size_t expert_count() const { return experts_.size(); }
  /// Tracked (decayed) squared error of expert `i`.
  [[nodiscard]] double expert_error(std::size_t i) const { return experts_.at(i).error; }
  [[nodiscard]] const std::string& expert_name(std::size_t i) const {
    return experts_.at(i).name;
  }

 private:
  struct Expert {
    std::unique_ptr<Model> model;
    std::string name;
    double error = 0.0;
    double pending_prediction = 0.0;
    bool has_pending = false;
  };

  [[nodiscard]] std::size_t best_index() const;

  std::vector<ModelSpec> specs_;
  MultiExpertConfig config_;
  std::vector<Expert> experts_;
  std::size_t last_best_ = 0;
  std::uint64_t switches_ = 0;
};

/// Offline model selection by information criterion — the "system
/// identification" question the paper flags as complex. Fits every
/// candidate on `data`, scores AIC = n*ln(sigma2) + 2k (k = parameter
/// count), and returns the index of the best candidate.
[[nodiscard]] std::size_t select_model_aic(const std::vector<ModelSpec>& candidates,
                                           std::span<const double> data);

}  // namespace remos::rps
