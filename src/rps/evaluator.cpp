#include "rps/evaluator.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace remos::rps {

Evaluator::Evaluator(EvaluatorConfig config) : config_(config) {
  if (config_.window == 0) throw std::invalid_argument("Evaluator: window must be > 0");
}

void Evaluator::note_prediction(double predicted_next) {
  pending_ = true;
  pending_prediction_ = predicted_next;
}

void Evaluator::observe(double actual) {
  if (!pending_) return;  // nothing was predicted for this observation
  pending_ = false;
  errors_.push_back(actual - pending_prediction_);
  if (errors_.size() > config_.window) errors_.pop_front();
}

double Evaluator::observed_mse() const {
  if (errors_.empty()) return 0.0;
  double sum = 0.0;
  for (double e : errors_) sum += e * e;
  return sum / static_cast<double>(errors_.size());
}

double Evaluator::observed_bias() const {
  if (errors_.empty()) return 0.0;
  double sum = 0.0;
  for (double e : errors_) sum += e;
  return sum / static_cast<double>(errors_.size());
}

bool Evaluator::needs_refit(double claimed_variance) const {
  if (errors_.size() < config_.min_samples) return false;
  if (claimed_variance <= 0.0) return observed_mse() > 0.0;
  return observed_mse() > config_.tolerance * claimed_variance;
}

double Evaluator::calibration_ratio(double claimed_variance) const {
  if (claimed_variance <= 0.0) return std::numeric_limits<double>::infinity();
  return observed_mse() / claimed_variance;
}

void Evaluator::reset() {
  pending_ = false;
  errors_.clear();
}

}  // namespace remos::rps
