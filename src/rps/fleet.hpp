// Fleet-scale batched prediction (ROADMAP item 4).
//
// One FleetPredictor owns many RPS series and refits them in batches:
// series are grouped by ModelSpec shape, each group's refits are dispatched
// over sim::ThreadPool::parallel_ranges (deterministic range boundaries,
// per-lane scratch arenas — the waterfill pattern), and every series writes
// only its own slot, so batched results are bit-identical across worker
// counts.
//
// Pure AR Yule-Walker series take the fast lane: an IncrementalArFitter
// per series makes a refit O(p^2) instead of O(window * p), and prediction
// runs the AR forecast recursion directly on the ring window — no Model
// object, no per-series heap churn. Every other family falls back to the
// generic make_model/fit path inside the same batching machinery.
// `FleetConfig::incremental = false` switches the AR lane to exact batch
// recomputation (same float path as ArmaModel::fit) — that is the
// full-refit baseline the rps-scale bench compares against.
//
// Warm-tier seeding: when a SharedPredictionCache is attached, refit_all
// publishes each group's fitted coefficients as a spec-shape template
// (deterministically: the lowest-id fitted series wins), and predictions
// for series whose own history is still too short are seeded from the
// group template instead of failing.
//
// Thread safety: externally synchronized — one driver thread calls
// observe/refit_all/predict_into; refit_all parallelizes internally.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "rps/incremental.hpp"
#include "rps/models.hpp"
#include "rps/shared_cache.hpp"
#include "sim/thread_pool.hpp"

namespace remos::rps {

struct FleetConfig {
  std::size_t window = 600;        // samples retained per series
  std::size_t horizon = 30;        // forecast steps per prediction
  std::size_t resync_interval = 0; // incremental drift control; 0 = window
  /// AR lane fit mode: incremental sliding-window sums (true) or exact
  /// batch recompute per refit (false, the bench baseline).
  bool incremental = true;
  sim::ThreadPool* pool = nullptr; // nullptr => sequential refits
  std::size_t max_batch_tasks = 8; // lanes per group dispatch
  /// Groups smaller than this refit inline (dispatch overhead dominates).
  std::size_t parallel_min_series = 256;
  SharedPredictionCache* cache = nullptr;  // optional warm tier
};

class FleetPredictor {
 public:
  using SeriesId = std::size_t;

  explicit FleetPredictor(FleetConfig config = {});

  /// Register a series; ids are dense and assigned in call order.
  SeriesId add_series(const ModelSpec& spec);
  [[nodiscard]] std::size_t series_count() const { return series_.size(); }
  [[nodiscard]] std::size_t group_count() const { return groups_.size(); }

  /// Seed a series' window from a history (oldest first; keeps the tail).
  void prime(SeriesId id, std::span<const double> history);

  /// Feed one new measurement. O(p) for the AR lane. (Deliberately carries
  /// no hot annotation itself: the generic lane's virtual Model::step
  /// dispatch reaches cold refit machinery. The AR fast lane it delegates
  /// to — IncrementalArFitter push/fit_into, install_ar_fit — carries the
  /// hot-path discipline.)
  void observe(SeriesId id, double x);

  /// Refit every series, group by group, batched across the pool.
  /// Deterministic: group order is the spec-shape map order, per-series
  /// results depend only on that series' window, and group templates are
  /// published from the lowest-id fitted series.
  void refit_all();

  [[nodiscard]] bool fitted(SeriesId id) const;

  /// Forecast `config.horizon` steps for one series into `out` (scratch
  /// capacity reused). Returns false when the series has no fit and no
  /// warm template could seed one.
  bool predict_into(SeriesId id, Prediction& out);

  /// Convenience allocating variant.
  [[nodiscard]] Prediction predict(SeriesId id);

  [[nodiscard]] std::uint64_t refits_total() const {
    return refits_total_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t fit_failures() const {
    return fit_failures_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t seeded_predictions() const { return seeded_predictions_; }
  [[nodiscard]] std::uint64_t templates_published() const { return templates_published_; }

 private:
  /// AR fast lane state: fitter + last installed fit, no Model object.
  struct ArSeries {
    IncrementalArFitter fitter;
    ArFit fit;
    double mu = 0.0;
    bool fitted = false;
    ArSeries(std::size_t order, std::size_t window, std::size_t resync)
        : fitter(order, window, resync) {}
  };
  /// Generic lane: ring window + model refitted from a linearized copy.
  struct GenericSeries {
    RingWindow ring;
    std::unique_ptr<Model> model;
    bool fitted = false;
    explicit GenericSeries(std::size_t window) : ring(window) {}
  };
  struct Series {
    ModelSpec spec;
    std::unique_ptr<ArSeries> ar;        // exactly one of ar / gen is set
    std::unique_ptr<GenericSeries> gen;
  };
  struct Group {
    ModelSpec spec;
    std::vector<SeriesId> members;  // ascending (append-only id order)
  };
  /// Private per-lane workspace, indexed by the parallel_ranges task id.
  struct LaneScratch {
    ArFitScratch ld;
    std::vector<double> window;  // full-mode / generic linearization
    std::uint64_t refits = 0;
    std::uint64_t failures = 0;
  };

  void fit_one(Series& s, LaneScratch& lane);
  void publish_template(const Group& group);
  /// AR forecast recursion on the ring window — float-op-for-float-op the
  /// ArmaCore::predict path with theta empty, so the fast lane stays
  /// bit-identical to the Model-based path given identical parameters.
  void predict_ar(const RingWindow& ring, std::span<const double> phi, double mu, double sigma2,
                  Prediction& out);

  /// const: pool lanes read it concurrently during refit_all.
  const FleetConfig config_;
  // remos-analyze: allow(concurrency): pool lanes index disjoint member ranges — parallel_ranges hands each lane a distinct [begin, end) slice of one group's ids and every series writes only its own slot.
  std::vector<Series> series_;
  std::map<std::string, Group> groups_;  // spec shape -> members
  // remos-analyze: allow(concurrency): one private scratch per lane, indexed by the lane's own task id; no element is shared across lanes.
  std::vector<LaneScratch> lanes_;
  std::vector<double> zhat_scratch_;  // predict recursion workspace
  std::vector<double> psi_scratch_;   // psi-weight workspace
  std::vector<double> seed_scratch_;  // generic-lane template seeding
  std::atomic<std::uint64_t> refits_total_{0};
  std::atomic<std::uint64_t> fit_failures_{0};
  std::uint64_t seeded_predictions_ = 0;
  std::uint64_t templates_published_ = 0;
};

}  // namespace remos::rps
