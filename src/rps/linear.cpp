#include "rps/linear.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "rps/series.hpp"

namespace remos::rps {

void levinson_durbin_into(std::span<const double> gamma, std::size_t p, ArFit& out,
                          ArFitScratch& scratch) {
  if (gamma.size() < p + 1) throw std::invalid_argument("levinson_durbin: need gamma[0..p]");
  out.phi.assign(p, 0.0);
  double e = gamma[0];
  if (e <= 0.0) {
    // Constant series: zero coefficients, zero innovation variance.
    out.sigma2 = 0.0;
    return;
  }
  std::vector<double>& phi = out.phi;
  scratch.prev.assign(p, 0.0);
  std::vector<double>& prev = scratch.prev;
  for (std::size_t k = 1; k <= p; ++k) {
    double acc = gamma[k];
    for (std::size_t j = 1; j < k; ++j) acc -= prev[j - 1] * gamma[k - j];
    const double kappa = acc / e;  // reflection coefficient
    phi[k - 1] = kappa;
    for (std::size_t j = 1; j < k; ++j) phi[j - 1] = prev[j - 1] - kappa * prev[k - j - 1];
    e *= (1.0 - kappa * kappa);
    if (e < 0.0) e = 0.0;
    std::copy(phi.begin(), phi.begin() + static_cast<std::ptrdiff_t>(k), prev.begin());
  }
  out.sigma2 = e;
}

ArFit levinson_durbin(std::span<const double> gamma, std::size_t p) {
  ArFit fit;
  ArFitScratch scratch;
  levinson_durbin_into(gamma, p, fit, scratch);
  return fit;
}

ArFit fit_ar_yule_walker(std::span<const double> xs, std::size_t p) {
  if (xs.size() <= p + 1) throw std::invalid_argument("fit_ar_yule_walker: series too short");
  const std::vector<double> gamma = autocovariance(xs, p);
  return levinson_durbin(gamma, p);
}

ArFit fit_ar_burg(std::span<const double> xs, std::size_t p) {
  const std::size_t n = xs.size();
  if (n <= p + 1) throw std::invalid_argument("fit_ar_burg: series too short");
  const double m = mean(xs);
  std::vector<double> f(n), b(n);
  for (std::size_t i = 0; i < n; ++i) f[i] = b[i] = xs[i] - m;

  double e = 0.0;
  for (std::size_t i = 0; i < n; ++i) e += f[i] * f[i];
  e /= static_cast<double>(n);

  std::vector<double> a(p, 0.0), prev(p, 0.0);
  for (std::size_t k = 1; k <= p; ++k) {
    double num = 0.0, den = 0.0;
    for (std::size_t t = k; t < n; ++t) {
      num += f[t] * b[t - 1];
      den += f[t] * f[t] + b[t - 1] * b[t - 1];
    }
    const double kappa = den > 0.0 ? 2.0 * num / den : 0.0;
    a[k - 1] = kappa;
    for (std::size_t j = 1; j < k; ++j) a[j - 1] = prev[j - 1] - kappa * prev[k - j - 1];
    std::copy(a.begin(), a.begin() + static_cast<std::ptrdiff_t>(k), prev.begin());
    // Update prediction errors in place (order matters: use old values).
    for (std::size_t t = n - 1; t >= k; --t) {
      const double fk = f[t], bk = b[t - 1];
      f[t] = fk - kappa * bk;
      b[t] = bk - kappa * fk;
    }
    e *= (1.0 - kappa * kappa);
    if (e < 0.0) e = 0.0;
  }
  return ArFit{std::move(a), e};
}

MaFit fit_ma_innovations(std::span<const double> xs, std::size_t q) {
  if (xs.size() <= q + 1) throw std::invalid_argument("fit_ma_innovations: series too short");
  // Innovations algorithm (Brockwell & Davis §5.2): run m >> q iterations
  // and take the last row's leading q coefficients.
  const std::size_t m = std::min<std::size_t>(xs.size() - 1, std::max<std::size_t>(4 * q + 8, 16));
  const std::vector<double> gamma = autocovariance(xs, m);
  std::vector<std::vector<double>> theta(m + 1);
  std::vector<double> v(m + 1, 0.0);
  v[0] = gamma[0];
  if (v[0] <= 0.0) return MaFit{std::vector<double>(q, 0.0), 0.0};
  for (std::size_t n = 1; n <= m; ++n) {
    theta[n].assign(n, 0.0);  // theta[n][k-1] == theta_{n,k}
    for (std::size_t k = 0; k < n; ++k) {
      // theta_{n, n-k} = (gamma(n-k) - sum_{j<k} theta_{k,k-j} theta_{n,n-j} v_j) / v_k
      double acc = gamma[n - k];
      for (std::size_t j = 0; j < k; ++j) {
        acc -= theta[k][k - j - 1] * theta[n][n - j - 1] * v[j];
      }
      theta[n][n - k - 1] = v[k] > 0.0 ? acc / v[k] : 0.0;
    }
    double vn = gamma[0];
    for (std::size_t j = 0; j < n; ++j) vn -= theta[n][n - j - 1] * theta[n][n - j - 1] * v[j];
    v[n] = std::max(vn, 0.0);
  }
  MaFit fit;
  fit.theta.assign(q, 0.0);
  for (std::size_t k = 0; k < q && k < theta[m].size(); ++k) fit.theta[k] = theta[m][k];
  fit.sigma2 = v[m];
  return fit;
}

std::vector<double> ols(const std::vector<std::vector<double>>& rows, std::span<const double> y) {
  if (rows.size() != y.size() || rows.empty()) throw std::invalid_argument("ols: shape mismatch");
  const std::size_t k = rows[0].size();
  // Normal equations: (X'X) b = X'y.
  std::vector<std::vector<double>> xtx(k, std::vector<double>(k, 0.0));
  std::vector<double> xty(k, 0.0);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    for (std::size_t a = 0; a < k; ++a) {
      xty[a] += r[a] * y[i];
      for (std::size_t b = a; b < k; ++b) xtx[a][b] += r[a] * r[b];
    }
  }
  for (std::size_t a = 0; a < k; ++a) {
    for (std::size_t b = 0; b < a; ++b) xtx[a][b] = xtx[b][a];
    xtx[a][a] += 1e-10;  // ridge epsilon: keeps near-singular designs solvable
  }
  // Gaussian elimination with partial pivoting.
  for (std::size_t col = 0; col < k; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < k; ++r) {
      if (std::fabs(xtx[r][col]) > std::fabs(xtx[pivot][col])) pivot = r;
    }
    std::swap(xtx[col], xtx[pivot]);
    std::swap(xty[col], xty[pivot]);
    const double diag = xtx[col][col];
    if (std::fabs(diag) < 1e-14) continue;  // degenerate column -> b stays 0
    for (std::size_t r = col + 1; r < k; ++r) {
      const double factor = xtx[r][col] / diag;
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < k; ++c) xtx[r][c] -= factor * xtx[col][c];
      xty[r] -= factor * xty[col];
    }
  }
  std::vector<double> b(k, 0.0);
  for (std::size_t row = k; row-- > 0;) {
    double acc = xty[row];
    for (std::size_t c = row + 1; c < k; ++c) acc -= xtx[row][c] * b[c];
    b[row] = std::fabs(xtx[row][row]) < 1e-14 ? 0.0 : acc / xtx[row][row];
  }
  return b;
}

ArmaFit fit_arma_hannan_rissanen(std::span<const double> xs, std::size_t p, std::size_t q) {
  if (q == 0) {
    ArFit ar = fit_ar_yule_walker(xs, p);
    return ArmaFit{std::move(ar.phi), {}, ar.sigma2};
  }
  const std::size_t n = xs.size();
  const std::size_t m = std::min<std::size_t>(n / 4, std::max<std::size_t>(p + q + 5, 20));
  if (n <= m + p + q + 2) throw std::invalid_argument("fit_arma_hannan_rissanen: series too short");
  const double mu = mean(xs);
  std::vector<double> z(n);
  for (std::size_t i = 0; i < n; ++i) z[i] = xs[i] - mu;

  // Stage 1: long AR to estimate the innovations.
  ArFit long_ar = fit_ar_yule_walker(xs, m);
  std::vector<double> eps(n, 0.0);
  for (std::size_t t = m; t < n; ++t) {
    double pred = 0.0;
    for (std::size_t j = 0; j < m; ++j) pred += long_ar.phi[j] * z[t - 1 - j];
    eps[t] = z[t] - pred;
  }

  // Stage 2: regress z_t on p lags of z and q lags of eps-hat.
  const std::size_t start = m + std::max(p, q);
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  rows.reserve(n - start);
  for (std::size_t t = start; t < n; ++t) {
    std::vector<double> row;
    row.reserve(p + q);
    for (std::size_t j = 1; j <= p; ++j) row.push_back(z[t - j]);
    for (std::size_t j = 1; j <= q; ++j) row.push_back(eps[t - j]);
    rows.push_back(std::move(row));
    y.push_back(z[t]);
  }
  std::vector<double> b = ols(rows, y);
  ArmaFit fit;
  fit.phi.assign(b.begin(), b.begin() + static_cast<std::ptrdiff_t>(p));
  fit.theta.assign(b.begin() + static_cast<std::ptrdiff_t>(p), b.end());

  // Innovation variance from stage-2 residuals.
  double sse = 0.0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    double pred = 0.0;
    for (std::size_t j = 0; j < p + q; ++j) pred += b[j] * rows[i][j];
    const double r = y[i] - pred;
    sse += r * r;
  }
  fit.sigma2 = rows.empty() ? 0.0 : sse / static_cast<double>(rows.size());
  return fit;
}

std::vector<double> psi_weights(std::span<const double> phi, std::span<const double> theta,
                                std::size_t count) {
  std::vector<double> psi(count, 0.0);
  if (count == 0) return psi;
  psi[0] = 1.0;
  for (std::size_t j = 1; j < count; ++j) {
    double acc = j <= theta.size() ? theta[j - 1] : 0.0;
    const std::size_t kmax = std::min(j, phi.size());
    for (std::size_t k = 1; k <= kmax; ++k) acc += phi[k - 1] * psi[j - k];
    psi[j] = acc;
  }
  return psi;
}

}  // namespace remos::rps
