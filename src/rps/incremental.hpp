// Incremental sliding-window Yule-Walker fitting (ROADMAP item 4).
//
// The batch path recomputes mean + lag-0..p autocovariance over the whole
// fit window on every refit: O(window * p) per refit. At fleet scale
// (millions of live RPS series) that recomputation is the bottleneck, not
// the O(p^2) Levinson-Durbin solve. IncrementalArFitter keeps the window in
// a ring buffer and maintains running cross-product sums under sample
// add/evict, so a refit costs O(p) assembly + O(p^2) solve regardless of
// window size.
//
// Contract vs the batch fit_ar_yule_walker (same window contents):
//   * phi and sigma2 agree within 1e-9 relative tolerance (the sums are
//     accumulated on offset-shifted samples to kill cancellation when
//     mean >> std; gamma is shift-invariant so the offset choice only
//     affects rounding, not the value).
//   * A periodic exact recompute (every `resync_interval` pushes; default
//     one full window turnover) re-anchors the sums and caps float drift,
//     so the bound holds over unbounded push streams, not just one window.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rps/linear.hpp"

namespace remos::rps {

/// Fixed-capacity ring of samples, oldest first. Replaces the
/// vector-with-front-erase fit buffer: push never moves existing elements
/// (the old erase(begin()) moved window-1 elements per sample).
/// `element_moves()` counts existing-element copies (assign/copy_to
/// linearization only) so tests can pin the complexity contract.
class RingWindow {
 public:
  explicit RingWindow(std::size_t capacity);

  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] bool full() const { return count_ == slots_.size(); }

  /// i == 0 is the oldest retained sample.
  [[nodiscard]] double operator[](std::size_t i) const {
    return slots_[index(i)];
  }

  /// Append one sample, overwriting the oldest slot when full. Zero
  /// existing-element moves. Returns true when a sample was evicted.
  /// (Named push_sample, not push: the static analyzer resolves calls by
  /// unqualified name, and `push` would drag unrelated namesakes into the
  /// hot-path closure.)
  bool push_sample(double x);  // remos-hot

  /// Replace contents with the last `capacity()` samples of `xs`.
  void assign(std::span<const double> xs);
  void clear();

  /// Linearize into `out` (oldest first), reusing its capacity.
  void copy_to(std::vector<double>& out) const;

  [[nodiscard]] std::uint64_t element_moves() const { return element_moves_; }

 private:
  [[nodiscard]] std::size_t index(std::size_t i) const {
    const std::size_t raw = head_ + i;
    return raw < slots_.size() ? raw : raw - slots_.size();
  }

  std::vector<double> slots_;
  std::size_t head_ = 0;   // slot index of the oldest sample
  std::size_t count_ = 0;
  // Mutable: copy_to is logically const but instruments the linearization.
  mutable std::uint64_t element_moves_ = 0;
};

/// Sliding-window AR(p) fitter with O(p) per-sample maintenance and
/// O(p^2) refits. See the file comment for the equivalence contract.
class IncrementalArFitter {
 public:
  /// `resync_interval` == 0 means one full window turnover between exact
  /// recomputes (the default drift-control policy).
  IncrementalArFitter(std::size_t order, std::size_t window,
                      std::size_t resync_interval = 0);

  /// Feed one sample: evict-adjust + add-adjust the running sums. O(p).
  void push(double x);  // remos-hot

  /// Replace the window with the tail of `xs` and recompute sums exactly.
  void assign(std::span<const double> xs);
  void clear();

  [[nodiscard]] std::size_t order() const { return order_; }
  [[nodiscard]] std::size_t window() const { return ring_.capacity(); }
  [[nodiscard]] std::size_t size() const { return ring_.size(); }

  /// Mirrors the batch precondition: fit_ar_yule_walker throws unless
  /// n > p + 1.
  [[nodiscard]] bool fittable() const { return ring_.size() > order_ + 1; }

  /// Mean of the current window (exact up to the running-sum contract).
  [[nodiscard]] double mean() const;

  /// Assemble gamma[0..p] from the running sums and solve Levinson-Durbin
  /// into `out`. Allocation-free in steady state (scratch capacity reused).
  /// Throws std::invalid_argument when !fittable().
  void fit_into(ArFit& out, ArFitScratch& scratch) const;  // remos-hot

  /// Convenience allocating variant.
  [[nodiscard]] ArFit fit() const;

  [[nodiscard]] const RingWindow& samples() const { return ring_; }
  [[nodiscard]] std::uint64_t resyncs() const { return resyncs_; }
  [[nodiscard]] std::uint64_t element_moves() const {
    return ring_.element_moves();
  }

 private:
  /// Exact O(n*p) recompute of offset + running sums from the ring.
  void recompute();

  std::size_t order_;
  std::size_t resync_interval_;
  RingWindow ring_;
  double offset_ = 0.0;        // shift applied to samples before summing
  double sum_ = 0.0;           // sum of (x - offset_) over the window
  std::vector<double> cross_;  // cross_[k] = sum_{t>=k} y_t * y_{t-k}
  std::uint64_t pushes_since_resync_ = 0;
  std::uint64_t resyncs_ = 0;
};

}  // namespace remos::rps
