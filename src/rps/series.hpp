// Time-series primitives shared by the RPS predictive models: sample
// moments, autocovariance, ordinary and fractional differencing.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace remos::rps {

[[nodiscard]] double mean(std::span<const double> xs);
/// Sample variance with n denominator (matches autocovariance(0)).
[[nodiscard]] double variance(std::span<const double> xs);

/// Biased sample autocovariance at lags 0..max_lag (n denominator, the
/// standard choice for Yule-Walker: keeps the Toeplitz matrix PSD).
[[nodiscard]] std::vector<double> autocovariance(std::span<const double> xs, std::size_t max_lag);

/// Autocorrelation at lags 0..max_lag (acf[0] == 1).
[[nodiscard]] std::vector<double> autocorrelation(std::span<const double> xs, std::size_t max_lag);

/// First difference applied `d` times; output length max(0, n - d).
[[nodiscard]] std::vector<double> difference(std::span<const double> xs, int d);

/// Undo `difference`: given the forecast of the d-times-differenced series
/// and the last `d` "integration tails" of the original series, rebuild
/// forecasts on the original scale.
///
/// `tails[k]` must hold the final value of the series differenced k times
/// (k = 0..d-1).
[[nodiscard]] std::vector<double> integrate_forecast(std::span<const double> diff_forecast,
                                                     std::span<const double> tails);

/// The last values needed by integrate_forecast for a given series/d.
[[nodiscard]] std::vector<double> integration_tails(std::span<const double> xs, int d);

/// Coefficients pi_j of the fractional differencing operator (1-B)^d,
/// j = 0..count-1 (pi_0 = 1). Valid for any real d (negative d gives the
/// inverse operator's psi weights).
[[nodiscard]] std::vector<double> fractional_diff_coeffs(double d, std::size_t count);

/// Apply the truncated fractional differencing filter (window `window`).
[[nodiscard]] std::vector<double> fractional_difference(std::span<const double> xs, double d,
                                                        std::size_t window = 100);

}  // namespace remos::rps
