#include "snmp/oid.hpp"

#include <charconv>

namespace remos::snmp {

std::optional<Oid> Oid::parse(std::string_view text) {
  if (text.empty()) return std::nullopt;
  if (text.front() == '.') text.remove_prefix(1);  // tolerate leading dot
  if (text.empty()) return std::nullopt;
  std::vector<std::uint32_t> parts;
  while (!text.empty()) {
    std::uint32_t value = 0;
    const char* begin = text.data();
    const char* end = text.data() + text.size();
    auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr == begin) return std::nullopt;
    parts.push_back(value);
    text.remove_prefix(static_cast<std::size_t>(ptr - begin));
    if (!text.empty()) {
      if (text.front() != '.') return std::nullopt;
      text.remove_prefix(1);
      if (text.empty()) return std::nullopt;  // trailing dot
    }
  }
  return Oid(std::move(parts));
}

Oid Oid::child(std::uint32_t component) const {
  std::vector<std::uint32_t> parts = parts_;
  parts.push_back(component);
  return Oid(std::move(parts));
}

Oid Oid::concat(const Oid& suffix) const {
  std::vector<std::uint32_t> parts = parts_;
  parts.insert(parts.end(), suffix.parts_.begin(), suffix.parts_.end());
  return Oid(std::move(parts));
}

bool Oid::is_prefix_of(const Oid& other) const {
  if (parts_.size() > other.parts_.size()) return false;
  return std::equal(parts_.begin(), parts_.end(), other.parts_.begin());
}

Oid Oid::suffix_after(const Oid& prefix) const {
  return Oid(std::vector<std::uint32_t>(parts_.begin() + static_cast<std::ptrdiff_t>(prefix.size()),
                                        parts_.end()));
}

std::string Oid::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    if (i > 0) out += '.';
    out += std::to_string(parts_[i]);
  }
  return out;
}

}  // namespace remos::snmp
