// Well-known OIDs used by the Remos collectors (MIB-II and Bridge-MIB).
#pragma once

#include "net/ipv4.hpp"
#include "snmp/oid.hpp"

namespace remos::snmp::oids {

// system group (1.3.6.1.2.1.1)
inline const Oid kSysDescr{1, 3, 6, 1, 2, 1, 1, 1, 0};
inline const Oid kSysName{1, 3, 6, 1, 2, 1, 1, 5, 0};

// interfaces group (1.3.6.1.2.1.2)
inline const Oid kIfNumber{1, 3, 6, 1, 2, 1, 2, 1, 0};
inline const Oid kIfTableEntry{1, 3, 6, 1, 2, 1, 2, 2, 1};
inline const Oid kIfIndex{1, 3, 6, 1, 2, 1, 2, 2, 1, 1};
inline const Oid kIfDescr{1, 3, 6, 1, 2, 1, 2, 2, 1, 2};
inline const Oid kIfType{1, 3, 6, 1, 2, 1, 2, 2, 1, 3};
inline const Oid kIfSpeed{1, 3, 6, 1, 2, 1, 2, 2, 1, 5};
inline const Oid kIfInOctets{1, 3, 6, 1, 2, 1, 2, 2, 1, 10};
inline const Oid kIfOutOctets{1, 3, 6, 1, 2, 1, 2, 2, 1, 16};

// ip group: ipRouteTable (1.3.6.1.2.1.4.21)
inline const Oid kIpRouteEntry{1, 3, 6, 1, 2, 1, 4, 21, 1};
inline const Oid kIpRouteDest{1, 3, 6, 1, 2, 1, 4, 21, 1, 1};
inline const Oid kIpRouteIfIndex{1, 3, 6, 1, 2, 1, 4, 21, 1, 2};
inline const Oid kIpRouteNextHop{1, 3, 6, 1, 2, 1, 4, 21, 1, 7};
inline const Oid kIpRouteType{1, 3, 6, 1, 2, 1, 4, 21, 1, 8};
inline const Oid kIpRouteMask{1, 3, 6, 1, 2, 1, 4, 21, 1, 11};

// ipRouteType values
inline constexpr std::int64_t kRouteTypeDirect = 3;
inline constexpr std::int64_t kRouteTypeIndirect = 4;

// ifType values
inline constexpr std::int64_t kIfTypeEthernet = 6;

// Bridge-MIB (1.3.6.1.2.1.17)
inline const Oid kDot1dBaseNumPorts{1, 3, 6, 1, 2, 1, 17, 1, 2, 0};
inline const Oid kDot1dTpFdbEntry{1, 3, 6, 1, 2, 1, 17, 4, 3, 1};
inline const Oid kDot1dTpFdbAddress{1, 3, 6, 1, 2, 1, 17, 4, 3, 1, 1};
inline const Oid kDot1dTpFdbPort{1, 3, 6, 1, 2, 1, 17, 4, 3, 1, 2};
inline const Oid kDot1dTpFdbStatus{1, 3, 6, 1, 2, 1, 17, 4, 3, 1, 3};

// dot1dTpFdbStatus values
inline constexpr std::int64_t kFdbStatusLearned = 3;

/// Row index for a MAC address: six OID components, one per octet.
[[nodiscard]] inline Oid mac_index(std::uint64_t mac) {
  Oid out;
  for (int shift = 40; shift >= 0; shift -= 8) {
    out = out.child(static_cast<std::uint32_t>((mac >> shift) & 0xFF));
  }
  return out;
}

/// Inverse of mac_index.
[[nodiscard]] inline std::uint64_t mac_from_index(const Oid& index) {
  std::uint64_t mac = 0;
  for (std::size_t i = 0; i < index.size() && i < 6; ++i) {
    mac = (mac << 8) | (index[i] & 0xFF);
  }
  return mac;
}

/// Row index for an IP address: four OID components.
[[nodiscard]] inline Oid ip_index(net::Ipv4Address addr) {
  const std::uint32_t v = addr.value();
  return Oid{(v >> 24) & 0xFF, (v >> 16) & 0xFF, (v >> 8) & 0xFF, v & 0xFF};
}

/// Inverse of ip_index.
[[nodiscard]] inline net::Ipv4Address ip_from_index(const Oid& index) {
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < index.size() && i < 4; ++i) v = (v << 8) | (index[i] & 0xFF);
  return net::Ipv4Address(v);
}

}  // namespace remos::snmp::oids
