// SNMP object identifiers with the lexicographic ordering GETNEXT depends on.
#pragma once

#include <compare>
#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace remos::snmp {

class Oid {
 public:
  Oid() = default;
  Oid(std::initializer_list<std::uint32_t> parts) : parts_(parts) {}
  explicit Oid(std::vector<std::uint32_t> parts) : parts_(std::move(parts)) {}

  /// Parse dotted numeric form ("1.3.6.1.2.1"); nullopt on malformed input.
  static std::optional<Oid> parse(std::string_view text);

  [[nodiscard]] std::size_t size() const { return parts_.size(); }
  [[nodiscard]] bool empty() const { return parts_.empty(); }
  [[nodiscard]] std::uint32_t operator[](std::size_t i) const { return parts_[i]; }
  [[nodiscard]] const std::vector<std::uint32_t>& parts() const { return parts_; }

  /// New OID with one extra component.
  [[nodiscard]] Oid child(std::uint32_t component) const;
  /// New OID with another OID appended (table row indexing).
  [[nodiscard]] Oid concat(const Oid& suffix) const;
  /// True when this OID is a (non-strict) prefix of `other`.
  [[nodiscard]] bool is_prefix_of(const Oid& other) const;
  /// Components after a given prefix (precondition: prefix.is_prefix_of(*this)).
  [[nodiscard]] Oid suffix_after(const Oid& prefix) const;

  [[nodiscard]] std::string to_string() const;

  friend auto operator<=>(const Oid& a, const Oid& b) {
    // Lexicographic component order — the SNMP GETNEXT traversal order.
    return a.parts_ <=> b.parts_;
  }
  friend bool operator==(const Oid&, const Oid&) = default;

 private:
  std::vector<std::uint32_t> parts_;
};

}  // namespace remos::snmp
