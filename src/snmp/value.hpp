// SNMP values and variable bindings.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "net/ipv4.hpp"
#include "snmp/oid.hpp"

namespace remos::snmp {

/// 32-bit wrapping counter, as MIB-II Counter32 (ifInOctets/ifOutOctets).
struct Counter32 {
  std::uint32_t value = 0;
  friend bool operator==(Counter32, Counter32) = default;
};

/// Non-wrapping gauge (ifSpeed).
struct Gauge32 {
  std::uint32_t value = 0;
  friend bool operator==(Gauge32, Gauge32) = default;
};

using Value = std::variant<std::int64_t,      // INTEGER
                           Counter32,         // Counter32
                           Gauge32,           // Gauge32
                           std::string,       // OCTET STRING
                           Oid,               // OBJECT IDENTIFIER
                           net::Ipv4Address>; // IpAddress

struct VarBind {
  Oid oid;
  Value value;
};

/// Render a Value for logs/tests.
[[nodiscard]] inline std::string to_string(const Value& v) {
  struct Visitor {
    std::string operator()(std::int64_t x) const { return std::to_string(x); }
    std::string operator()(Counter32 x) const { return std::to_string(x.value); }
    std::string operator()(Gauge32 x) const { return std::to_string(x.value); }
    std::string operator()(const std::string& x) const { return x; }
    std::string operator()(const Oid& x) const { return x.to_string(); }
    std::string operator()(net::Ipv4Address x) const { return x.to_string(); }
  };
  return std::visit(Visitor{}, v);
}

/// Wrap-aware Counter32 difference: how many octets passed between two
/// samples, assuming at most one wrap (valid when sampling faster than the
/// counter can wrap — the standard MIB-II assumption).
[[nodiscard]] inline std::uint64_t counter32_delta(std::uint32_t earlier, std::uint32_t later) {
  if (later >= earlier) return later - earlier;
  return (0x100000000ull - earlier) + later;
}

}  // namespace remos::snmp
