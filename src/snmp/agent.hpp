// Simulated SNMP agents and the site-wide agent registry.
//
// Every manageable device (router/switch with snmp_enabled) runs one agent
// reachable at its primary IP address. Agents enforce community-string
// authentication and can inject the failure modes the paper's §6.2 reports
// from real deployments: agents that time out, and agents with non-standard
// MIB coverage.
#pragma once

#include <memory>
#include <unordered_map>

#include "net/flows.hpp"
#include "net/topology.hpp"
#include "sim/rng.hpp"
#include "snmp/mib.hpp"

namespace remos::snmp {

enum class Status {
  kOk,
  kNoSuchName,   // object absent (GET) — also GETNEXT walked off the MIB
  kEndOfMib,
  kTimeout,      // agent disabled, unreachable, or dropped the request
  kAuthFailure,  // wrong community string
};

[[nodiscard]] const char* to_string(Status status);

struct AgentResponse {
  Status status = Status::kTimeout;
  VarBind vb;
  /// How long the exchange took (request latency; timeouts cost the
  /// client's timeout budget instead, accounted by SnmpClient).
  double latency_s = 0.0;
};

/// Response to an SNMPv2 GetBulk: up to max_repetitions successor bindings
/// in one exchange.
struct BulkResponse {
  Status status = Status::kTimeout;
  std::vector<VarBind> vbs;
  double latency_s = 0.0;
};

class Agent {
 public:
  Agent(const net::Network& net, net::NodeId node, sim::Rng rng, MibQuirks quirks = {});

  [[nodiscard]] AgentResponse get(std::string_view community, const Oid& oid);
  [[nodiscard]] AgentResponse get_next(std::string_view community, const Oid& oid);
  /// SNMPv2 GetBulk: up to `max_repetitions` lexicographic successors of
  /// `oid` in a single round trip. Status kEndOfMib when the MIB ends
  /// inside the batch (the collected rows are still returned).
  [[nodiscard]] BulkResponse get_bulk(std::string_view community, const Oid& oid,
                                      std::size_t max_repetitions);

  [[nodiscard]] net::NodeId node_id() const { return node_; }
  [[nodiscard]] std::uint64_t requests_served() const { return served_; }

  /// Per-request processing latency (simulated seconds).
  double response_latency_s = 0.002;
  /// Additional marshaling latency per binding beyond the first in a
  /// GetBulk response — much cheaper than a full round trip per row.
  double per_binding_latency_s = 0.0001;
  /// Fraction of requests silently dropped (client sees a timeout).
  double drop_probability = 0.0;
  /// Hard outage: the device is unreachable and every request times out.
  /// Fault-injection scripts flip this to model agent crashes/reboots.
  bool down = false;

 private:
  AgentResponse serve(std::string_view community, const Oid& oid, bool next);
  void rebuild_if_stale();

  const net::Network& net_;
  net::NodeId node_;
  sim::Rng rng_;
  MibQuirks quirks_;
  MibView view_;
  std::uint64_t built_at_version_ = 0;
  std::uint64_t served_ = 0;
};

/// Deploys agents for every snmp_enabled node of a network and resolves
/// them by management (primary) IP address. Holds an optional pre-read
/// hook used to bring fluid-flow octet counters up to date before a sample
/// is taken.
class AgentRegistry {
 public:
  AgentRegistry(const net::Network& net, sim::Rng rng);

  /// Wire counter synchronization (normally FlowEngine::sync).
  void set_before_read(std::function<void()> hook) { before_read_ = std::move(hook); }

  [[nodiscard]] Agent* find(net::Ipv4Address addr);
  [[nodiscard]] Agent* find_by_node(net::NodeId id);

  /// Invoke the pre-read hook (called by SnmpClient before each request).
  void before_read() const {
    if (before_read_) before_read_();
  }

  /// Apply quirks/failure knobs to one device's agent.
  void configure(net::NodeId id, MibQuirks quirks, double drop_probability = 0.0);

  [[nodiscard]] std::size_t agent_count() const { return by_node_.size(); }
  [[nodiscard]] const net::Network& network() const { return net_; }

 private:
  const net::Network& net_;
  sim::Rng rng_;
  std::unordered_map<net::NodeId, std::unique_ptr<Agent>> by_node_;
  std::unordered_map<net::Ipv4Address, net::NodeId> by_addr_;
  std::function<void()> before_read_;
};

}  // namespace remos::snmp
