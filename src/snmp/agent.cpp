#include "snmp/agent.hpp"

namespace remos::snmp {

const char* to_string(Status status) {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kNoSuchName: return "noSuchName";
    case Status::kEndOfMib: return "endOfMib";
    case Status::kTimeout: return "timeout";
    case Status::kAuthFailure: return "authFailure";
  }
  return "?";
}

Agent::Agent(const net::Network& net, net::NodeId node, sim::Rng rng, MibQuirks quirks)
    : net_(net), node_(node), rng_(rng), quirks_(quirks) {
  view_ = build_device_mib(net_, node_, quirks_);
  built_at_version_ = net_.version();
}

void Agent::rebuild_if_stale() {
  if (net_.version() != built_at_version_) {
    view_ = build_device_mib(net_, node_, quirks_);
    built_at_version_ = net_.version();
  }
}

AgentResponse Agent::serve(std::string_view community, const Oid& oid, bool next) {
  ++served_;
  if (down || (drop_probability > 0 && rng_.chance(drop_probability))) {
    return AgentResponse{Status::kTimeout, {}, 0.0};
  }
  if (community != net_.node(node_).snmp_community) {
    // Real agents silently ignore wrong-community requests; the client
    // observes a timeout. We surface the cause for diagnosability but the
    // client maps it to the same retry path.
    return AgentResponse{Status::kAuthFailure, {}, 0.0};
  }
  rebuild_if_stale();
  if (next) {
    if (auto vb = view_.get_next(oid)) return AgentResponse{Status::kOk, *vb, response_latency_s};
    return AgentResponse{Status::kEndOfMib, {}, response_latency_s};
  }
  if (auto vb = view_.get(oid)) return AgentResponse{Status::kOk, *vb, response_latency_s};
  return AgentResponse{Status::kNoSuchName, {}, response_latency_s};
}

AgentResponse Agent::get(std::string_view community, const Oid& oid) {
  return serve(community, oid, /*next=*/false);
}

AgentResponse Agent::get_next(std::string_view community, const Oid& oid) {
  return serve(community, oid, /*next=*/true);
}

BulkResponse Agent::get_bulk(std::string_view community, const Oid& oid,
                             std::size_t max_repetitions) {
  ++served_;
  if (down || (drop_probability > 0 && rng_.chance(drop_probability))) {
    return BulkResponse{Status::kTimeout, {}, 0.0};
  }
  if (community != net_.node(node_).snmp_community) {
    return BulkResponse{Status::kAuthFailure, {}, 0.0};
  }
  rebuild_if_stale();
  BulkResponse resp;
  resp.status = Status::kOk;
  Oid cursor = oid;
  for (std::size_t i = 0; i < max_repetitions; ++i) {
    auto vb = view_.get_next(cursor);
    if (!vb) {
      resp.status = Status::kEndOfMib;
      break;
    }
    cursor = vb->oid;
    resp.vbs.push_back(std::move(*vb));
  }
  resp.latency_s = response_latency_s;
  if (!resp.vbs.empty()) {
    resp.latency_s += per_binding_latency_s * static_cast<double>(resp.vbs.size() - 1);
  }
  return resp;
}

AgentRegistry::AgentRegistry(const net::Network& net, sim::Rng rng) : net_(net), rng_(rng) {
  for (const net::Node& n : net.nodes()) {
    if (!n.snmp_enabled) continue;
    const net::Ipv4Address addr = n.primary_address();
    if (addr.is_zero()) continue;  // unaddressed device cannot be managed
    by_node_.emplace(n.id, std::make_unique<Agent>(net_, n.id, rng_.fork(n.name)));
    by_addr_.emplace(addr, n.id);
  }
}

Agent* AgentRegistry::find(net::Ipv4Address addr) {
  auto it = by_addr_.find(addr);
  return it == by_addr_.end() ? nullptr : by_node_.at(it->second).get();
}

Agent* AgentRegistry::find_by_node(net::NodeId id) {
  auto it = by_node_.find(id);
  return it == by_node_.end() ? nullptr : it->second.get();
}

void AgentRegistry::configure(net::NodeId id, MibQuirks quirks, double drop_probability) {
  auto it = by_node_.find(id);
  if (it == by_node_.end()) return;
  auto fresh = std::make_unique<Agent>(net_, id, rng_.fork(net_.node(id).name + "#cfg"), quirks);
  fresh->drop_probability = drop_probability;
  fresh->response_latency_s = it->second->response_latency_s;
  fresh->down = it->second->down;
  it->second = std::move(fresh);
}

}  // namespace remos::snmp
