#include "snmp/mib.hpp"

#include <set>
#include <string>

#include "core/audit.hpp"
#include "snmp/oids.hpp"

namespace remos::snmp {

namespace {

/// Row index suffixes present under one table-column prefix.
std::set<Oid> column_rows(const std::map<Oid, MibView::ValueFn>& objects, const Oid& column) {
  std::set<Oid> rows;
  for (auto it = objects.lower_bound(column); it != objects.end(); ++it) {
    if (!column.is_prefix_of(it->first)) break;
    rows.insert(it->first.suffix_after(column));
  }
  return rows;
}

/// The row-index sets of every *present* column in a conceptual table must
/// agree — a GETNEXT table walk pivots between columns by shared index, so
/// a hole in one column silently truncates or skews the walked table.
/// Absent columns are legal (quirky agents omit ifSpeed / ipRouteMask).
void audit_table_columns(const std::map<Oid, MibView::ValueFn>& objects,
                         const char* table, const std::vector<Oid>& columns) {
  bool have_reference = false;
  std::set<Oid> reference;
  for (const Oid& col : columns) {
    std::set<Oid> rows = column_rows(objects, col);
    if (rows.empty()) continue;  // column absent on this agent
    if (!have_reference) {
      reference = std::move(rows);
      have_reference = true;
      continue;
    }
    REMOS_AUDIT(kMib, rows == reference,
                std::string(table) + ": column " + col.to_string() +
                    " row-index set disagrees with the table's other columns");
  }
}

}  // namespace

void MibView::set(Oid oid, ValueFn fn) { objects_[std::move(oid)] = std::move(fn); }

void MibView::set_const(Oid oid, Value value) {
  objects_[std::move(oid)] = [v = std::move(value)] { return v; };
}

std::optional<VarBind> MibView::get(const Oid& oid) const {
  auto it = objects_.find(oid);
  if (it == objects_.end()) return std::nullopt;
  return VarBind{it->first, it->second()};
}

std::optional<VarBind> MibView::get_next(const Oid& oid) const {
  auto it = objects_.upper_bound(oid);
  if (it == objects_.end()) return std::nullopt;
  return VarBind{it->first, it->second()};
}

void MibView::audit() const {
  if constexpr (!core::audit::kEnabled) return;
  // GETNEXT termination: starting from the empty OID, stepping with
  // get_next must yield strictly increasing OIDs and reach the end in
  // exactly object_count() steps. Any equal-or-smaller step would make a
  // management walk (and our collectors' walk()) loop forever.
  Oid cursor;
  std::size_t steps = 0;
  while (true) {
    auto next = get_next(cursor);
    if (!next.has_value()) break;
    REMOS_AUDIT(kMib, next->oid > cursor,
                "GETNEXT not strictly increasing at " + next->oid.to_string());
    REMOS_AUDIT(kMib, ++steps <= object_count(),
                "GETNEXT walk did not terminate within object_count() steps");
    cursor = next->oid;
  }
  REMOS_AUDIT(kMib, steps == object_count(),
              "GETNEXT walk visited " + std::to_string(steps) + " of " +
                  std::to_string(object_count()) + " objects");

  audit_table_columns(objects_, "ifTable",
                      {oids::kIfIndex, oids::kIfDescr, oids::kIfType, oids::kIfSpeed,
                       oids::kIfInOctets, oids::kIfOutOctets});
  audit_table_columns(objects_, "ipRouteTable",
                      {oids::kIpRouteDest, oids::kIpRouteIfIndex, oids::kIpRouteNextHop,
                       oids::kIpRouteType, oids::kIpRouteMask});
  audit_table_columns(objects_, "dot1dTpFdbTable",
                      {oids::kDot1dTpFdbAddress, oids::kDot1dTpFdbPort, oids::kDot1dTpFdbStatus});
}

void audit_walk_order(const std::vector<VarBind>& binds) {
  if constexpr (!core::audit::kEnabled) return;
  for (std::size_t i = 1; i < binds.size(); ++i) {
    REMOS_AUDIT(kMib, binds[i - 1].oid < binds[i].oid,
                "walk response not strictly increasing at step " + std::to_string(i) + " (" +
                    binds[i].oid.to_string() + " after " + binds[i - 1].oid.to_string() + ")");
  }
}

namespace {

/// Truncate a 64-bit octet count to Counter32 semantics (wraps at 2^32).
Counter32 as_counter32(std::uint64_t octets) {
  return Counter32{static_cast<std::uint32_t>(octets & 0xFFFFFFFFull)};
}

void add_system_group(MibView& view, const net::Network& net, net::NodeId id) {
  const net::Node& n = net.node(id);
  view.set_const(oids::kSysDescr,
                 std::string("remos-sim ") + net::to_string(n.kind) + " " + n.name);
  view.set_const(oids::kSysName, n.name);
}

void add_if_table(MibView& view, const net::Network& net, net::NodeId id,
                  const MibQuirks& quirks) {
  const net::Node& n = net.node(id);
  view.set_const(oids::kIfNumber, static_cast<std::int64_t>(n.interfaces.size()));
  for (const net::Interface& ifc : n.interfaces) {
    const std::uint32_t idx = ifc.ifindex;
    view.set_const(oids::kIfIndex.child(idx), static_cast<std::int64_t>(idx));
    view.set_const(oids::kIfDescr.child(idx), ifc.descr);
    view.set_const(oids::kIfType.child(idx), oids::kIfTypeEthernet);
    if (!quirks.hide_if_speed) {
      // ifSpeed is Gauge32 in bits/second; saturates like real agents do.
      const std::uint64_t speed = ifc.speed_bps;
      const std::uint32_t reported =
          speed > 0xFFFFFFFFull ? 0xFFFFFFFFu : static_cast<std::uint32_t>(speed);
      view.set_const(oids::kIfSpeed.child(idx), Gauge32{reported});
    }
    // Counters read live (and wrap) — the collector must difference them.
    view.set(oids::kIfInOctets.child(idx), [&net, id, idx] {
      return Value{as_counter32(net.node(id).find_interface(idx)->in_octets)};
    });
    view.set(oids::kIfOutOctets.child(idx), [&net, id, idx] {
      return Value{as_counter32(net.node(id).find_interface(idx)->out_octets)};
    });
  }
}

void add_route_table(MibView& view, const net::Network& net, net::NodeId id,
                     const MibQuirks& quirks) {
  const net::Node& n = net.node(id);
  for (const net::Route& r : n.routes) {
    const Oid index = oids::ip_index(r.dest.base());
    const net::Ipv4Address next_hop =
        quirks.force_next_hop.is_zero() ? r.next_hop : quirks.force_next_hop;
    view.set_const(oids::kIpRouteDest.concat(index), r.dest.base());
    view.set_const(oids::kIpRouteIfIndex.concat(index), static_cast<std::int64_t>(r.out_ifindex));
    view.set_const(oids::kIpRouteNextHop.concat(index), next_hop);
    view.set_const(oids::kIpRouteType.concat(index),
                   next_hop.is_zero() ? oids::kRouteTypeDirect : oids::kRouteTypeIndirect);
    if (!quirks.hide_route_mask) {
      const net::Ipv4Address mask = quirks.corrupt_route_mask
                                        ? net::Ipv4Address(0xFF00FF00u)
                                        : net::Ipv4Address(r.dest.netmask());
      view.set_const(oids::kIpRouteMask.concat(index), mask);
    }
  }
}

void add_bridge_mib(MibView& view, const net::Network& net, net::NodeId id) {
  const net::Node& n = net.node(id);
  view.set_const(oids::kDot1dBaseNumPorts, static_cast<std::int64_t>(n.interfaces.size()));
  // Row keys are the MACs present at build time; the *port* values read
  // live so host moves inside the segment show up without a rebuild.
  for (const auto& [mac, port] : n.fdb) {
    (void)port;
    const Oid index = oids::mac_index(mac);
    std::string mac_octets(6, '\0');
    for (int i = 0; i < 6; ++i) {
      mac_octets[static_cast<std::size_t>(i)] =
          static_cast<char>((mac >> (40 - 8 * i)) & 0xFF);
    }
    view.set_const(oids::kDot1dTpFdbAddress.concat(index), std::move(mac_octets));
    view.set(oids::kDot1dTpFdbPort.concat(index), [&net, id, mac = mac]() -> Value {
      const auto& fdb = net.node(id).fdb;
      auto it = fdb.find(mac);
      return static_cast<std::int64_t>(it == fdb.end() ? 0 : it->second);
    });
    view.set_const(oids::kDot1dTpFdbStatus.concat(index), oids::kFdbStatusLearned);
  }
}

}  // namespace

MibView build_device_mib(const net::Network& net, net::NodeId id, const MibQuirks& quirks) {
  MibView view;
  add_system_group(view, net, id);
  add_if_table(view, net, id, quirks);
  const net::Node& n = net.node(id);
  if (n.kind == net::NodeKind::kRouter) add_route_table(view, net, id, quirks);
  if (n.kind == net::NodeKind::kSwitch) add_bridge_mib(view, net, id);
  view.audit();
  return view;
}

}  // namespace remos::snmp
