#include "snmp/client.hpp"

#include <algorithm>

namespace remos::snmp {

SnmpClient::SnmpClient(AgentRegistry& registry, ClientConfig config)
    : registry_(registry), config_(config) {}

ClientResult SnmpClient::request(net::Ipv4Address agent_addr, const std::string& community,
                                 const Oid& oid, bool next) {
  Agent* agent = registry_.find(agent_addr);
  for (int attempt = 0; attempt <= config_.retries; ++attempt) {
    ++requests_;
    if (agent == nullptr) {
      consumed_s_ += config_.timeout_s;
      continue;
    }
    registry_.before_read();
    AgentResponse r = next ? agent->get_next(community, oid) : agent->get(community, oid);
    if (r.status == Status::kTimeout || r.status == Status::kAuthFailure) {
      // Both look like silence on the wire: burn the timeout and retry.
      consumed_s_ += config_.timeout_s;
      if (attempt == config_.retries) return ClientResult{r.status, {}};
      continue;
    }
    consumed_s_ += r.latency_s;
    return ClientResult{r.status, std::move(r.vb)};
  }
  return ClientResult{Status::kTimeout, {}};
}

ClientResult SnmpClient::get(net::Ipv4Address agent, const std::string& community, const Oid& oid) {
  return request(agent, community, oid, /*next=*/false);
}

ClientResult SnmpClient::get_next(net::Ipv4Address agent, const std::string& community,
                                  const Oid& oid) {
  return request(agent, community, oid, /*next=*/true);
}

std::vector<VarBind> SnmpClient::walk(net::Ipv4Address agent, const std::string& community,
                                      const Oid& subtree, Status* status_out) {
  std::vector<VarBind> out;
  Oid cursor = subtree;
  for (;;) {
    ClientResult r = get_next(agent, community, cursor);
    if (!r.ok()) {
      if (status_out) {
        *status_out = (r.status == Status::kEndOfMib) ? Status::kOk : r.status;
      }
      return out;
    }
    if (!subtree.is_prefix_of(r.vb.oid)) break;  // walked past the subtree
    cursor = r.vb.oid;
    out.push_back(std::move(r.vb));
  }
  if (status_out) *status_out = Status::kOk;
  return out;
}

std::vector<VarBind> SnmpClient::walk_bulk(net::Ipv4Address agent_addr,
                                           const std::string& community, const Oid& subtree,
                                           Status* status_out, std::size_t max_repetitions) {
  std::vector<VarBind> out;
  Agent* agent = registry_.find(agent_addr);
  Oid cursor = subtree;
  for (;;) {
    BulkResponse resp;
    bool answered = false;
    for (int attempt = 0; attempt <= config_.retries; ++attempt) {
      ++requests_;
      if (agent == nullptr) {
        consumed_s_ += config_.timeout_s;
        continue;
      }
      registry_.before_read();
      resp = agent->get_bulk(community, cursor, max_repetitions);
      if (resp.status == Status::kTimeout || resp.status == Status::kAuthFailure) {
        consumed_s_ += config_.timeout_s;
        continue;
      }
      consumed_s_ += resp.latency_s;
      answered = true;
      break;
    }
    if (!answered) {
      if (status_out) *status_out = agent == nullptr ? Status::kTimeout : resp.status;
      return out;
    }
    bool past_subtree = false;
    for (VarBind& vb : resp.vbs) {
      if (!subtree.is_prefix_of(vb.oid)) {
        past_subtree = true;
        break;
      }
      cursor = vb.oid;
      out.push_back(std::move(vb));
    }
    if (past_subtree || resp.status == Status::kEndOfMib) break;
  }
  if (status_out) *status_out = Status::kOk;
  return out;
}

void SnmpClient::parallel(std::span<const std::function<void()>> lanes) {
  const double base = consumed_s_;
  double max_end = base;
  for (const auto& lane : lanes) {
    consumed_s_ = base;
    lane();
    max_end = std::max(max_end, consumed_s_);
  }
  consumed_s_ = max_end;
}

}  // namespace remos::snmp
