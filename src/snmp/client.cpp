#include "snmp/client.hpp"

#include <algorithm>
#include <cmath>

#include "core/audit.hpp"

namespace remos::snmp {

SnmpClient::SnmpClient(AgentRegistry& registry, ClientConfig config)
    : registry_(registry),
      config_(config),
      m_requests_(sim::metrics().counter("snmp.client.requests_total")),
      m_retries_(sim::metrics().counter("snmp.client.retries_total")),
      m_timeouts_(sim::metrics().counter("snmp.client.timeouts_total")),
      m_successes_(sim::metrics().counter("snmp.client.successes_total")),
      m_failures_(sim::metrics().counter("snmp.client.failures_total")),
      m_latency_(sim::metrics().histogram("snmp.client.request_latency_s")) {}

double SnmpClient::backoff_s(int retry_index) const {
  if (config_.backoff_base_s <= 0.0 || retry_index <= 0) return 0.0;
  const double wait =
      config_.backoff_base_s * std::pow(config_.backoff_multiplier, retry_index - 1);
  return std::min(wait, config_.backoff_max_s);
}

void SnmpClient::note_success(net::Ipv4Address agent) {
  AgentHealth& h = health_[agent];
  h.consecutive_failures = 0;
  ++h.successes;
  if (clock_) h.last_success_s = clock_();
  m_successes_.inc();
}

void SnmpClient::note_failure(net::Ipv4Address agent) {
  AgentHealth& h = health_[agent];
  ++h.consecutive_failures;
  ++h.failures;
  if (clock_) h.last_failure_s = clock_();
  m_failures_.inc();
}

const AgentHealth* SnmpClient::health(net::Ipv4Address agent) const {
  auto it = health_.find(agent);
  return it == health_.end() ? nullptr : &it->second;
}

ClientResult SnmpClient::request(net::Ipv4Address agent_addr, const std::string& community,
                                 const Oid& oid, bool next) {
  Agent* agent = registry_.find(agent_addr);
  Status last = Status::kTimeout;
  const double start_s = consumed_s_;
  for (int attempt = 0; attempt <= config_.retries; ++attempt) {
    consumed_s_ += backoff_s(attempt);
    ++requests_;
    m_requests_.inc();
    if (attempt > 0) m_retries_.inc();
    if (agent == nullptr) {
      consumed_s_ += config_.timeout_s;
      m_timeouts_.inc();
      continue;
    }
    registry_.before_read();
    AgentResponse r = next ? agent->get_next(community, oid) : agent->get(community, oid);
    if (r.status == Status::kTimeout || r.status == Status::kAuthFailure) {
      // Both look like silence on the wire: burn the timeout and retry.
      consumed_s_ += config_.timeout_s;
      m_timeouts_.inc();
      last = r.status;
      continue;
    }
    consumed_s_ += r.latency_s;
    note_success(agent_addr);
    m_latency_.observe(consumed_s_ - start_s);
    return ClientResult{r.status, std::move(r.vb)};
  }
  note_failure(agent_addr);
  m_latency_.observe(consumed_s_ - start_s);
  return ClientResult{last, {}};
}

ClientResult SnmpClient::get(net::Ipv4Address agent, const std::string& community, const Oid& oid) {
  return request(agent, community, oid, /*next=*/false);
}

ClientResult SnmpClient::get_next(net::Ipv4Address agent, const std::string& community,
                                  const Oid& oid) {
  return request(agent, community, oid, /*next=*/true);
}

std::vector<VarBind> SnmpClient::walk(net::Ipv4Address agent, const std::string& community,
                                      const Oid& subtree, Status* status_out) {
  std::vector<VarBind> out;
  Oid cursor = subtree;
  for (;;) {
    ClientResult r = get_next(agent, community, cursor);
    if (!r.ok()) {
      if (status_out) {
        *status_out = (r.status == Status::kEndOfMib) ? Status::kOk : r.status;
      }
      return out;
    }
    if (!subtree.is_prefix_of(r.vb.oid)) break;  // walked past the subtree
    // A non-increasing GETNEXT answer would revisit this row forever; audit
    // it, and break defensively even with audits compiled out.
    REMOS_AUDIT(kMib, r.vb.oid > cursor,
                "walk: GETNEXT returned " + r.vb.oid.to_string() + " not after " +
                    cursor.to_string());
    if (!(r.vb.oid > cursor)) break;
    cursor = r.vb.oid;
    out.push_back(std::move(r.vb));
  }
  if (status_out) *status_out = Status::kOk;
  return out;
}

std::vector<VarBind> SnmpClient::walk_bulk(net::Ipv4Address agent_addr,
                                           const std::string& community, const Oid& subtree,
                                           Status* status_out, std::size_t max_repetitions) {
  std::vector<VarBind> out;
  Agent* agent = registry_.find(agent_addr);
  Oid cursor = subtree;
  for (;;) {
    BulkResponse resp;
    bool answered = false;
    const double start_s = consumed_s_;
    for (int attempt = 0; attempt <= config_.retries; ++attempt) {
      consumed_s_ += backoff_s(attempt);
      ++requests_;
      m_requests_.inc();
      if (attempt > 0) m_retries_.inc();
      if (agent == nullptr) {
        consumed_s_ += config_.timeout_s;
        m_timeouts_.inc();
        continue;
      }
      registry_.before_read();
      resp = agent->get_bulk(community, cursor, max_repetitions);
      if (resp.status == Status::kTimeout || resp.status == Status::kAuthFailure) {
        consumed_s_ += config_.timeout_s;
        m_timeouts_.inc();
        continue;
      }
      consumed_s_ += resp.latency_s;
      answered = true;
      break;
    }
    m_latency_.observe(consumed_s_ - start_s);
    if (!answered) {
      note_failure(agent_addr);
      if (status_out) *status_out = agent == nullptr ? Status::kTimeout : resp.status;
      return out;
    }
    note_success(agent_addr);
    bool past_subtree = false;
    bool stalled = false;
    for (VarBind& vb : resp.vbs) {
      if (!subtree.is_prefix_of(vb.oid)) {
        past_subtree = true;
        break;
      }
      REMOS_AUDIT(kMib, vb.oid > cursor,
                  "walk_bulk: response OID " + vb.oid.to_string() + " not after " +
                      cursor.to_string());
      if (!(vb.oid > cursor)) {
        stalled = true;  // defensive: never loop on a non-advancing agent
        break;
      }
      cursor = vb.oid;
      out.push_back(std::move(vb));
    }
    if (past_subtree || stalled || resp.vbs.empty() || resp.status == Status::kEndOfMib) break;
  }
  if (status_out) *status_out = Status::kOk;
  return out;
}

void SnmpClient::parallel(std::span<const std::function<void()>> lanes) {
  const double base = consumed_s_;
  double max_end = base;
  for (const auto& lane : lanes) {
    consumed_s_ = base;
    lane();
    max_end = std::max(max_end, consumed_s_);
  }
  consumed_s_ = max_end;
}

}  // namespace remos::snmp
