// MIB views: sorted OID -> value mappings served by simulated agents.
//
// Structure (the OID key set) is computed when a view is built; values are
// evaluated lazily at read time so octet counters and forwarding-database
// ports always reflect the live network state.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "net/topology.hpp"
#include "snmp/value.hpp"

namespace remos::snmp {

class MibView {
 public:
  using ValueFn = std::function<Value()>;

  /// Register an object. Later insertions of the same OID overwrite.
  void set(Oid oid, ValueFn fn);
  void set_const(Oid oid, Value value);

  /// Exact lookup.
  [[nodiscard]] std::optional<VarBind> get(const Oid& oid) const;
  /// Lexicographically next object strictly after `oid`; nullopt at end.
  [[nodiscard]] std::optional<VarBind> get_next(const Oid& oid) const;

  [[nodiscard]] std::size_t object_count() const { return objects_.size(); }

  /// MIB audit (kMib): a GETNEXT walk from the root visits every object in
  /// strictly increasing OID order and terminates within object_count()
  /// steps, and the ifTable / ipRouteTable columns expose consistent row
  /// index sets. No-op unless built with -DREMOS_AUDIT=ON.
  void audit() const;

 private:
  std::map<Oid, ValueFn> objects_;
};

/// Audit (kMib) one GETNEXT/WALK response sequence as seen on the wire:
/// OIDs must be strictly lexicographically increasing, otherwise a walker
/// revisits rows forever. Factored out of MibView::audit so corrupted agent
/// responses can be checked (and unit-tested) without a view.
void audit_walk_order(const std::vector<VarBind>& binds);

/// Options simulating non-standard/misconfigured agents (the portability
/// hazards §6.2 reports: "network elements that were misconfigured or have
/// non-standard features").
struct MibQuirks {
  bool hide_if_speed = false;    // agent omits the ifSpeed column
  bool hide_route_mask = false;  // agent omits ipRouteMask (some old IOSes)
  /// Misconfigured static routing: every row reports this next hop. Two
  /// routers pointing at each other produce a routing loop — the case the
  /// collector's hop-following guard must detect and flag as incomplete.
  net::Ipv4Address force_next_hop{};
  /// Agent reports a non-contiguous netmask (255.0.255.0) for every row —
  /// seen on broken stacks; no prefix length represents it, so the
  /// collector must reject the row rather than install a wrong route.
  bool corrupt_route_mask = false;
};

/// Build the full MIB view a device of the given kind exposes:
/// system + interfaces for everything manageable; ipRouteTable for routers;
/// Bridge-MIB for switches. Values read through `net` live.
[[nodiscard]] MibView build_device_mib(const net::Network& net, net::NodeId id,
                                       const MibQuirks& quirks = {});

}  // namespace remos::snmp
