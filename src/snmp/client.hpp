// SNMP client with virtual-latency accounting.
//
// Requests execute synchronously against agent state, while their network
// cost accumulates in a virtual-time meter. A collector answering a query
// reports the meter's delta as its response time — which is how the LAN
// scalability experiment (Fig 3) measures cold- vs warm-cache behaviour:
// the cost is dominated by the number of SNMP round trips.
//
// The paper's SNMP Collector is "implemented with Java threads, so it is
// capable of monitoring a number of routers ... simultaneously"; the
// parallel() scope reproduces that by charging the *maximum* lane cost
// instead of the sum.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "snmp/agent.hpp"

namespace remos::snmp {

struct ClientConfig {
  /// Round-trip budget charged when an agent does not answer.
  double timeout_s = 1.0;
  /// Retries after the first timeout before giving up.
  int retries = 1;
};

struct ClientResult {
  Status status = Status::kTimeout;
  VarBind vb;
  [[nodiscard]] bool ok() const { return status == Status::kOk; }
};

class SnmpClient {
 public:
  explicit SnmpClient(AgentRegistry& registry, ClientConfig config = {});

  ClientResult get(net::Ipv4Address agent, const std::string& community, const Oid& oid);
  ClientResult get_next(net::Ipv4Address agent, const std::string& community, const Oid& oid);

  /// Walk an entire subtree via chained GETNEXTs. On agent failure, returns
  /// what was gathered so far and sets `*status_out` (when non-null).
  std::vector<VarBind> walk(net::Ipv4Address agent, const std::string& community,
                            const Oid& subtree, Status* status_out = nullptr);

  /// Walk a subtree with SNMPv2 GetBulk: `max_repetitions` rows per round
  /// trip instead of one. Same result as walk(), far fewer exchanges.
  std::vector<VarBind> walk_bulk(net::Ipv4Address agent, const std::string& community,
                                 const Oid& subtree, Status* status_out = nullptr,
                                 std::size_t max_repetitions = 24);

  /// Run lanes as if on concurrent threads: the meter advances by the
  /// maximum lane cost rather than the sum. Lanes run sequentially in
  /// deterministic order; only cost accounting is parallel.
  void parallel(std::span<const std::function<void()>> lanes);

  /// Virtual seconds consumed by requests so far.
  [[nodiscard]] double consumed_s() const { return consumed_s_; }
  /// Account externally incurred virtual time against this client's meter
  /// (e.g. a Bridge Collector startup performed on this query's behalf).
  void charge(double seconds) { consumed_s_ += seconds; }
  /// Total requests issued (including retries).
  [[nodiscard]] std::uint64_t request_count() const { return requests_; }

  /// Measure the cost of one code region: returns meter delta.
  template <typename F>
  double metered(F&& fn) {
    const double before = consumed_s_;
    fn();
    return consumed_s_ - before;
  }

 private:
  ClientResult request(net::Ipv4Address agent, const std::string& community, const Oid& oid,
                       bool next);

  AgentRegistry& registry_;
  ClientConfig config_;
  double consumed_s_ = 0.0;
  std::uint64_t requests_ = 0;
};

}  // namespace remos::snmp
