// SNMP client with virtual-latency accounting.
//
// Requests execute synchronously against agent state, while their network
// cost accumulates in a virtual-time meter. A collector answering a query
// reports the meter's delta as its response time — which is how the LAN
// scalability experiment (Fig 3) measures cold- vs warm-cache behaviour:
// the cost is dominated by the number of SNMP round trips.
//
// The paper's SNMP Collector is "implemented with Java threads, so it is
// capable of monitoring a number of routers ... simultaneously"; the
// parallel() scope reproduces that by charging the *maximum* lane cost
// instead of the sum.
//
// Fault tolerance (§6.2): retries back off exponentially (deterministic,
// charged to the virtual meter like the timeouts themselves), and the
// client keeps a per-agent health record so collectors can quarantine
// flapping agents instead of treating one drop as permanent death.
#pragma once

#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "sim/metrics.hpp"
#include "snmp/agent.hpp"

namespace remos::snmp {

struct ClientConfig {
  /// Round-trip budget charged when an agent does not answer.
  double timeout_s = 1.0;
  /// Retries after the first timeout before giving up.
  int retries = 1;
  /// Wait charged before retry k (k = 1, 2, ...):
  /// min(backoff_max_s, backoff_base_s * backoff_multiplier^(k-1)).
  /// Zero base disables backoff (retry immediately, as SNMPv1 tools did).
  double backoff_base_s = 0.5;
  double backoff_multiplier = 2.0;
  double backoff_max_s = 8.0;
};

struct ClientResult {
  Status status = Status::kTimeout;
  VarBind vb;
  [[nodiscard]] bool ok() const { return status == Status::kOk; }
};

/// Per-agent health, updated on every logical request (after retries).
/// Collectors use consecutive_failures to decide when to quarantine and
/// last_success_s to judge how stale their cached view of the agent is.
struct AgentHealth {
  std::uint64_t consecutive_failures = 0;
  std::uint64_t failures = 0;   // logical requests that exhausted retries
  std::uint64_t successes = 0;  // logical requests the agent answered
  double last_success_s = -1.0;  // sim-clock time; -1 = never (or no clock)
  double last_failure_s = -1.0;
};

class SnmpClient {
 public:
  explicit SnmpClient(AgentRegistry& registry, ClientConfig config = {});

  ClientResult get(net::Ipv4Address agent, const std::string& community, const Oid& oid);
  ClientResult get_next(net::Ipv4Address agent, const std::string& community, const Oid& oid);

  /// Walk an entire subtree via chained GETNEXTs. On agent failure, returns
  /// what was gathered so far and sets `*status_out` (when non-null).
  std::vector<VarBind> walk(net::Ipv4Address agent, const std::string& community,
                            const Oid& subtree, Status* status_out = nullptr);

  /// Walk a subtree with SNMPv2 GetBulk: `max_repetitions` rows per round
  /// trip instead of one. Same result as walk(), far fewer exchanges.
  std::vector<VarBind> walk_bulk(net::Ipv4Address agent, const std::string& community,
                                 const Oid& subtree, Status* status_out = nullptr,
                                 std::size_t max_repetitions = 24);

  /// Run lanes as if on concurrent threads: the meter advances by the
  /// maximum lane cost rather than the sum. Lanes run sequentially in
  /// deterministic order; only cost accounting is parallel.
  void parallel(std::span<const std::function<void()>> lanes);

  /// Virtual seconds consumed by requests so far.
  [[nodiscard]] double consumed_s() const { return consumed_s_; }
  /// Account externally incurred virtual time against this client's meter
  /// (e.g. a Bridge Collector startup performed on this query's behalf).
  void charge(double seconds) { consumed_s_ += seconds; }
  /// Total requests issued (including retries).
  [[nodiscard]] std::uint64_t request_count() const { return requests_; }

  /// Time source for health-record timestamps (normally the sim engine's
  /// clock). Without one, timestamps stay at -1 but counters still work.
  void set_clock(std::function<double()> clock) { clock_ = std::move(clock); }

  /// Health record of an agent this client has talked to; nullptr if the
  /// agent was never addressed.
  [[nodiscard]] const AgentHealth* health(net::Ipv4Address agent) const;
  [[nodiscard]] const std::map<net::Ipv4Address, AgentHealth>& health_map() const {
    return health_;
  }

  /// Measure the cost of one code region: returns meter delta.
  template <typename F>
  double metered(F&& fn) {
    const double before = consumed_s_;
    fn();
    return consumed_s_ - before;
  }

 private:
  ClientResult request(net::Ipv4Address agent, const std::string& community, const Oid& oid,
                       bool next);
  [[nodiscard]] double backoff_s(int retry_index) const;
  void note_success(net::Ipv4Address agent);
  void note_failure(net::Ipv4Address agent);

  AgentRegistry& registry_;
  ClientConfig config_;
  double consumed_s_ = 0.0;
  std::uint64_t requests_ = 0;
  std::function<double()> clock_;
  std::map<net::Ipv4Address, AgentHealth> health_;
  // Metric handles, fetched once: this is the hottest instrumented path
  // (every SNMP round trip), so updates must be a single relaxed atomic.
  sim::Counter& m_requests_;
  sim::Counter& m_retries_;
  sim::Counter& m_timeouts_;
  sim::Counter& m_successes_;
  sim::Counter& m_failures_;
  sim::HistogramMetric& m_latency_;
};

}  // namespace remos::snmp
