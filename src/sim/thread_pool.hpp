// Fixed-size worker pool for real (wall-clock) CPU work.
//
// The simulation itself is single-threaded and deterministic; the pool is
// used where the paper's components do real computation concurrently — the
// SNMP Collector's "Java threads" answering queries and batch-refitting of
// RPS predictive models — so Figs 6/7 measure genuine parallel CPU cost.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace remos::sim {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t workers = std::thread::hardware_concurrency());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; the future resolves with its result (or exception).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mu_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Apply `fn(i)` for i in [0, n) across the pool and wait for all.
  ///
  /// Exception aggregation: every lane is joined before anything is
  /// rethrown. The first exception propagates to the caller; any further
  /// lane exceptions are counted (see last_suppressed()) and logged rather
  /// than lost silently.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Batched variant for many tiny work items: split [0, n) into at most
  /// `max_tasks` contiguous ranges and apply `fn(task, begin, end)` across
  /// the pool, where `task` < min(n, max_tasks) indexes the range (so a
  /// caller can give each task private scratch). Same join/exception
  /// discipline as parallel_for. Range boundaries depend only on n and
  /// max_tasks — never on scheduling — so deterministic callers stay
  /// deterministic.
  void parallel_ranges(std::size_t n, std::size_t max_tasks,
                       const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

  /// Number of worker exceptions swallowed (beyond the rethrown first one)
  /// by the most recent parallel_for on this pool. Only meaningful on the
  /// calling thread after parallel_for returns or throws.
  // remos-analyze: allow(lock): read on the parallel_for caller thread after every lane future is joined; no concurrent writer exists.
  [[nodiscard]] std::size_t last_suppressed() const { return last_suppressed_; }

  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mu_;  // remos-lock-order(10)
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
  std::size_t last_suppressed_ = 0;  // written only by the parallel_for caller
};

}  // namespace remos::sim
