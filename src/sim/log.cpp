#include "sim/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace remos::sim {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
// Highest order: logging happens under every other lock (REMOS_LOG is
// callable from any locked region), so g_out_mu must always be innermost.
std::mutex g_out_mu;  // remos-lock-order(50)

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_message(LogLevel level, std::string_view subsystem, std::string_view message) {
  if (level < log_level()) return;
  std::lock_guard lock(g_out_mu);
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(level),
               static_cast<int>(subsystem.size()), subsystem.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace remos::sim
