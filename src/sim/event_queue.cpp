#include "sim/event_queue.hpp"

#include <utility>

#include "core/audit.hpp"

namespace remos::sim {

EventId EventQueue::schedule(Time at, std::function<void()> fn) {
  EventId id = next_id_++;
  heap_.push(Entry{at, id, std::move(fn)});
  ++live_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  auto [it, inserted] = cancelled_.insert(id);
  (void)it;
  if (inserted && live_ > 0) --live_;
  return inserted;
}

void EventQueue::drop_cancelled_head() {
  while (!heap_.empty()) {
    auto found = cancelled_.find(heap_.top().id);
    if (found == cancelled_.end()) break;
    cancelled_.erase(found);
    heap_.pop();
  }
}

bool EventQueue::empty() const {
  // `live_` already excludes lazily-cancelled entries still in the heap.
  return live_ == 0;
}

Time EventQueue::next_time() const {
  // const_cast-free variant: scan past cancelled entries without popping is
  // not possible with std::priority_queue, so we maintain the invariant that
  // callers use pop()/empty() which compact; here we conservatively peek.
  auto* self = const_cast<EventQueue*>(this);
  self->drop_cancelled_head();
  return heap_.empty() ? kTimeNever : heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled_head();
  REMOS_CHECK(!heap_.empty(), "pop() on empty EventQueue");
  // priority_queue::top() returns const&; the function object must be moved
  // out, which is safe because we pop immediately afterwards.
  Entry& top = const_cast<Entry&>(heap_.top());
  Fired fired{top.time, top.id, std::move(top.fn)};
  heap_.pop();
  --live_;
  // A pop that travels into the past would let the simulation schedule and
  // observe events out of causal order — the core determinism invariant.
  REMOS_AUDIT(kSim, fired.time >= last_pop_,
              "event queue went backwards: popped t=" + std::to_string(fired.time) +
                  " after t=" + std::to_string(last_pop_));
  last_pop_ = fired.time;
  return fired;
}

void EventQueue::clear() {
  while (!heap_.empty()) heap_.pop();
  cancelled_.clear();
  live_ = 0;
  last_pop_ = Time{0};
}

}  // namespace remos::sim
