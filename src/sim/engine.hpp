// Discrete-event simulation engine: the single authority for simulated time
// in a Remos simulation. Collectors, the fluid-flow network model, traffic
// generators and SNMP latency accounting all advance time through it.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace remos::sim {

/// Handle for a periodic task registered with Engine::every().
using TaskId = std::uint64_t;

class Engine {
 public:
  /// Binds this engine's clock as the observability layer's time source
  /// (first live engine wins; see sim/metrics.hpp).
  Engine();
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time (seconds).
  [[nodiscard]] Time now() const { return now_.load(std::memory_order_relaxed); }

  /// Schedule `fn` to run `delay` seconds from now. Negative delays clamp
  /// to "immediately" to tolerate floating-point underrun in callers.
  EventId after(Duration delay, std::function<void()> fn);

  /// Schedule `fn` at absolute time `at` (clamped to now).
  EventId at(Time at, std::function<void()> fn);

  /// Cancel a pending event. No-op for fired/unknown ids.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Register a periodic task firing every `period` seconds, first firing
  /// at now()+`phase` (phase defaults to one period). The task keeps
  /// rescheduling itself until cancelled with cancel_task().
  TaskId every(Duration period, std::function<void()> fn, Duration phase = -1.0);

  /// Stop a periodic task.
  bool cancel_task(TaskId id);

  /// Run until the event queue is empty or `until` is reached (the clock is
  /// left at min(until, last event time); events at exactly `until` fire).
  /// Returns the number of events dispatched.
  std::size_t run_until(Time until);

  /// Run every pending event (dangerous with periodic tasks; intended for
  /// closed simulations). Returns events dispatched.
  std::size_t run();

  /// Advance the clock by `dt` seconds, firing everything due in between.
  std::size_t advance(Duration dt) { return run_until(now() + dt); }

  /// Move the clock directly to `t` without dispatching events before it.
  /// Only valid when nothing is scheduled earlier than `t`; used by tests.
  void warp_to(Time t);

  /// Number of pending events.
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  /// Total events dispatched since construction.
  [[nodiscard]] std::uint64_t dispatched() const { return dispatched_; }

 private:
  struct PeriodicTask;
  void fire_periodic(TaskId id);

  EventQueue queue_;
  /// The clock is written only by the dispatching thread, but the obs-layer
  /// clock binding (bind_obs_clock in the constructor) reads it from any
  /// thread that stamps a metric or span — atomic with relaxed ordering:
  /// there is no cross-thread ordering to establish, only tearing to avoid.
  std::atomic<Time> now_{0.0};
  std::uint64_t dispatched_ = 0;
  TaskId next_task_ = 1;
  // TaskId -> current pending EventId (0 while the task body runs).
  std::unordered_map<TaskId, std::pair<EventId, std::shared_ptr<PeriodicTask>>> tasks_;
};

}  // namespace remos::sim
