#include "sim/engine.hpp"

#include "core/audit.hpp"
#include "sim/metrics.hpp"

#include <memory>
#include <stdexcept>
#include <utility>

namespace remos::sim {

struct Engine::PeriodicTask {
  Duration period;
  std::function<void()> fn;
};

// The first live engine becomes the observability layer's time source, so
// spans and health timestamps are virtual-time by construction (bind is a
// no-op while another engine holds the binding).
Engine::Engine() {
  bind_obs_clock(this, [this] { return now_.load(std::memory_order_relaxed); });
}

Engine::~Engine() { unbind_obs_clock(this); }

EventId Engine::after(Duration delay, std::function<void()> fn) {
  if (delay < 0) delay = 0;
  return queue_.schedule(now() + delay, std::move(fn));
}

EventId Engine::at(Time t, std::function<void()> fn) {
  if (t < now()) t = now();
  return queue_.schedule(t, std::move(fn));
}

TaskId Engine::every(Duration period, std::function<void()> fn, Duration phase) {
  if (period <= 0) throw std::invalid_argument("Engine::every: period must be > 0");
  if (phase < 0) phase = period;
  TaskId id = next_task_++;
  auto task = std::make_shared<PeriodicTask>(PeriodicTask{period, std::move(fn)});
  EventId ev = after(phase, [this, id] { fire_periodic(id); });
  tasks_.emplace(id, std::make_pair(ev, std::move(task)));
  return id;
}

void Engine::fire_periodic(TaskId id) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return;  // cancelled between scheduling and firing
  auto task = it->second.second;   // keep alive across the callback
  // Reschedule before running so the task body can cancel itself.
  it->second.first = after(task->period, [this, id] { fire_periodic(id); });
  task->fn();
}

bool Engine::cancel_task(TaskId id) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return false;
  queue_.cancel(it->second.first);
  tasks_.erase(it);
  return true;
}

std::size_t Engine::run_until(Time until) {
  std::size_t fired = 0;
  while (!queue_.empty()) {
    Time t = queue_.next_time();
    if (t > until) break;
    auto ev = queue_.pop();
    REMOS_CHECK(ev.time >= now(), "event queue went backwards");
    now_.store(ev.time, std::memory_order_relaxed);
    ev.fn();
    ++dispatched_;
    ++fired;
  }
  if (until > now() && until != kTimeNever) now_.store(until, std::memory_order_relaxed);
  return fired;
}

std::size_t Engine::run() {
  std::size_t fired = 0;
  while (!queue_.empty()) {
    auto ev = queue_.pop();
    REMOS_CHECK(ev.time >= now(), "event queue went backwards");
    now_.store(ev.time, std::memory_order_relaxed);
    ev.fn();
    ++dispatched_;
    ++fired;
  }
  return fired;
}

void Engine::warp_to(Time t) {
  if (t < now()) throw std::invalid_argument("Engine::warp_to: cannot move backwards");
  if (queue_.next_time() < t) {
    throw std::logic_error("Engine::warp_to: events pending before warp target");
  }
  now_.store(t, std::memory_order_relaxed);
}

}  // namespace remos::sim
