#include "sim/thread_pool.hpp"

#include <atomic>

namespace remos::sim {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) workers = 1;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::atomic<std::size_t> next{0};
  const std::size_t lanes = std::min(n, worker_count());
  std::vector<std::future<void>> futs;
  futs.reserve(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    futs.push_back(submit([&] {
      for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) fn(i);
    }));
  }
  // Join every lane before propagating: rethrowing early would unwind the
  // stack frame that `next` and `fn` live in while other lanes still run.
  std::exception_ptr first_error;
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace remos::sim
