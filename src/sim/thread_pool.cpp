#include "sim/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#include "sim/log.hpp"

namespace remos::sim {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) workers = 1;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::atomic<std::size_t> next{0};
  const std::size_t lanes = std::min(n, worker_count());
  std::vector<std::future<void>> futs;
  futs.reserve(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    futs.push_back(submit([&] {
      for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) fn(i);
    }));
  }
  // Join every lane before propagating: rethrowing early would unwind the
  // stack frame that `next` and `fn` live in while other lanes still run.
  // Aggregate: the first exception is rethrown, the rest are counted so the
  // caller can tell a single bad index from a systemic failure.
  std::exception_ptr first_error;
  std::size_t suppressed = 0;
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) {
        first_error = std::current_exception();
      } else {
        ++suppressed;
      }
    }
  }
  // remos-analyze: allow(lock): single-writer — only the parallel_for caller thread reaches this line, after every lane future is joined.
  last_suppressed_ = suppressed;
  if (suppressed > 0) {
    REMOS_LOG(kWarn, "threadpool") << "parallel_for suppressed " << suppressed
                                   << " additional worker exception(s)";
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::parallel_ranges(
    std::size_t n, std::size_t max_tasks,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t tasks = std::max<std::size_t>(1, std::min(n, max_tasks));
  parallel_for(tasks, [&](std::size_t task) {
    // Even split with the remainder spread over the leading ranges.
    fn(task, task * n / tasks, (task + 1) * n / tasks);
  });
}

}  // namespace remos::sim
