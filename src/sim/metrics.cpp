#include "sim/metrics.hpp"

namespace remos::sim {

const std::vector<double>& default_latency_buckets() {
  static const std::vector<double> kBuckets{0.0005, 0.001, 0.0025, 0.005, 0.01,  0.025,
                                            0.05,   0.1,   0.25,   0.5,   1.0,   2.5,
                                            5.0,    10.0,  30.0,   60.0};
  return kBuckets;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mu_);
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mu_);
  return gauges_[name];
}

HistogramMetric& MetricsRegistry::histogram(const std::string& name, const std::vector<double>& bounds) {
  std::lock_guard lock(mu_);
  return histograms_.try_emplace(name, bounds).first->second;
}

void MetricsRegistry::zero_all() {
  std::lock_guard lock(mu_);
  for (auto& [name, c] : counters_) c.zero();
  for (auto& [name, g] : gauges_) g.zero();
  for (auto& [name, h] : histograms_) h.zero();
}

void MetricsRegistry::clear() {
  std::lock_guard lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

std::map<std::string, std::uint64_t> MetricsRegistry::counters_snapshot() const {
  std::lock_guard lock(mu_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, c] : counters_) out.emplace(name, c.value());
  return out;
}

std::map<std::string, double> MetricsRegistry::gauges_snapshot() const {
  std::lock_guard lock(mu_);
  std::map<std::string, double> out;
  for (const auto& [name, g] : gauges_) out.emplace(name, g.value());
  return out;
}

std::map<std::string, MetricsRegistry::HistogramSnapshot> MetricsRegistry::histograms_snapshot()
    const {
  std::lock_guard lock(mu_);
  std::map<std::string, HistogramSnapshot> out;
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot snap;
    snap.bounds = h.bounds();
    snap.buckets.reserve(snap.bounds.size() + 1);
    for (std::size_t i = 0; i <= snap.bounds.size(); ++i) snap.buckets.push_back(h.bucket(i));
    snap.sum = h.sum();
    snap.count = h.count();
    out.emplace(name, std::move(snap));
  }
  return out;
}

MetricsRegistry& metrics() {
  static MetricsRegistry g_registry;
  return g_registry;
}

namespace {
std::mutex g_clock_mu;  // remos-lock-order(40)
const void* g_clock_owner = nullptr;
std::function<double()> g_clock;
}  // namespace

void bind_obs_clock(const void* owner, std::function<double()> clock) {
  std::lock_guard lock(g_clock_mu);
  if (g_clock_owner != nullptr) return;  // first engine wins
  g_clock_owner = owner;
  g_clock = std::move(clock);
}

void unbind_obs_clock(const void* owner) {
  std::lock_guard lock(g_clock_mu);
  if (g_clock_owner != owner) return;
  g_clock_owner = nullptr;
  g_clock = nullptr;
}

double obs_now() {
  std::lock_guard lock(g_clock_mu);
  return g_clock ? g_clock() : 0.0;
}

}  // namespace remos::sim
