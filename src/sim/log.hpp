// Minimal leveled logger. Quiet by default so tests and benches stay clean;
// components tag messages with their subsystem name.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace remos::sim {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Process-wide minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one log line (thread-safe).
void log_message(LogLevel level, std::string_view subsystem, std::string_view message);

/// Convenience stream-style builder: LOG(kInfo, "snmp") << "walk " << oid;
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view subsystem)
      : level_(level), subsystem_(subsystem), enabled_(level >= log_level()) {}
  ~LogLine() {
    if (enabled_) log_message(level_, subsystem_, stream_.str());
  }
  template <typename T>
  LogLine& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string subsystem_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace remos::sim

#define REMOS_LOG(level, subsystem) ::remos::sim::LogLine(::remos::sim::LogLevel::level, subsystem)
