// Priority queue of timestamped events with stable FIFO ordering for
// simultaneous events and O(log n) cancellation via handles.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace remos::sim {

/// Opaque handle identifying a scheduled event; usable to cancel it.
using EventId = std::uint64_t;

/// Min-heap of (time, sequence) ordered events.
///
/// Events scheduled for the same instant fire in scheduling order, which
/// makes simulations deterministic. Cancellation is lazy: cancelled ids are
/// remembered and skipped at pop time.
class EventQueue {
 public:
  /// Schedule `fn` to run at absolute simulated time `at`.
  EventId schedule(Time at, std::function<void()> fn);

  /// Cancel a previously scheduled event. Cancelling an already-fired or
  /// unknown id is a harmless no-op (returns false).
  bool cancel(EventId id);

  /// True if no live events remain.
  [[nodiscard]] bool empty() const;

  /// Number of live (non-cancelled) events.
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Timestamp of the earliest live event; kTimeNever when empty.
  [[nodiscard]] Time next_time() const;

  /// Remove and return the earliest live event. Precondition: !empty().
  struct Fired {
    Time time;
    EventId id;
    std::function<void()> fn;
  };
  Fired pop();

  /// Drop every pending event.
  void clear();

 private:
  struct Entry {
    Time time;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;  // FIFO among simultaneous events
    }
  };

  void drop_cancelled_head();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> cancelled_;
  EventId next_id_ = 1;
  std::size_t live_ = 0;
  Time last_pop_ = Time{0};  // pop() monotonicity audit (kSim)
};

}  // namespace remos::sim
