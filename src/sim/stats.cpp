#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>

namespace remos::sim {

void RunningStats::add(double x) {
  ++n_;
  if (n_ == 1) {
    mean_ = min_ = max_ = x;
    m2_ = 0.0;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_), nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)), counts_(buckets, 0) {
  if (buckets == 0 || !(hi > lo)) {
    throw std::invalid_argument("Histogram: need hi > lo and buckets > 0");
  }
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto idx = static_cast<std::size_t>((x - lo_) / width_);
    if (idx >= counts_.size()) idx = counts_.size() - 1;  // x just below hi_
    ++counts_[idx];
  }
}

double Histogram::bucket_low(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
double Histogram::bucket_high(std::size_t i) const { return bucket_low(i) + width_; }

double Histogram::quantile(double q) const {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (cum >= target && underflow_ > 0) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return bucket_low(i) + frac * width_;
    }
    cum = next;
  }
  return hi_;
}

MeasurementHistory::MeasurementHistory(std::size_t capacity) : capacity_(capacity ? capacity : 1) {}

void MeasurementHistory::add(Time t, double value) {
  if (samples_.size() == capacity_) samples_.pop_front();
  samples_.push_back(Sample{t, value});
}

std::vector<double> MeasurementHistory::values() const {
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const auto& s : samples_) out.push_back(s.value);
  return out;
}

std::vector<Sample> MeasurementHistory::window(Time from, Time to) const {
  std::vector<Sample> out;
  for (const auto& s : samples_) {
    if (s.time >= from && s.time <= to) out.push_back(s);
  }
  return out;
}

double MeasurementHistory::mean_over(Time from, Time to) const {
  RunningStats rs;
  for (const auto& s : samples_) {
    if (s.time >= from && s.time <= to) rs.add(s.value);
  }
  return rs.mean();
}

std::vector<double> MeasurementHistory::last(std::size_t n) const {
  n = std::min(n, samples_.size());
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = samples_.size() - n; i < samples_.size(); ++i) {
    out.push_back(samples_[i].value);
  }
  return out;
}

double exact_quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= values.size()) return values.back();
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + frac * (values[lo + 1] - values[lo]);
}

std::string ascii_sparkline(const std::vector<double>& values) {
  static const char* kLevels = " .:-=+*#%@";
  if (values.empty()) return {};
  double lo = values[0], hi = values[0];
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double span = (hi > lo) ? (hi - lo) : 1.0;
  std::string out;
  out.reserve(values.size());
  for (double v : values) {
    auto idx = static_cast<std::size_t>((v - lo) / span * 9.0);
    idx = std::min<std::size_t>(idx, 9);
    out.push_back(kLevels[idx]);
  }
  return out;
}

}  // namespace remos::sim
