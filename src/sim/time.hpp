// Simulated-time representation for the Remos discrete-event kernel.
//
// Simulated time is a double counting seconds since simulation start. A
// dedicated strong-ish alias (rather than a wrapper class) keeps arithmetic
// natural for rate*dt style fluid-flow integration while still making
// signatures self-documenting.
#pragma once

#include <limits>

namespace remos::sim {

/// Simulated time in seconds since simulation start.
using Time = double;

/// Duration in simulated seconds.
using Duration = double;

/// Sentinel meaning "never" / "no deadline".
inline constexpr Time kTimeNever = std::numeric_limits<double>::infinity();

/// Tolerance used when comparing simulated timestamps that were produced by
/// accumulating floating-point increments.
inline constexpr double kTimeEpsilon = 1e-9;

/// True if two simulated timestamps are equal up to accumulation error.
inline bool time_close(Time a, Time b, double eps = kTimeEpsilon) {
  double diff = a - b;
  if (diff < 0) diff = -diff;
  return diff <= eps;
}

}  // namespace remos::sim
