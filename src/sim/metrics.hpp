// Metrics primitives for the observability layer: counters, gauges, and
// fixed-bucket histograms, collected in a process-global registry.
//
// Everything here is timestamp-free by design — values are pure event
// counts and accumulations, so two runs of the same deterministic scenario
// produce byte-identical exports (the regression surface test_observability
// pins). The *span* tracer, which does carry timestamps, lives in
// src/core/obs.hpp and reads the simulation's virtual clock through the
// binding at the bottom of this header; sim::Engine binds itself on
// construction, so wall-clock time never enters the data path.
//
// Instrumentation cost: hot components (e.g. snmp::SnmpClient) fetch their
// handles once at construction — registered entries are never invalidated
// by zero_all() — and each update is a relaxed atomic increment. Configure
// with -DREMOS_OBS=OFF to compile every update out entirely (the
// micro_core_ops on/off comparison in the README).
//
// Thread safety: updates are lock-free atomics (Master Collector worker
// threads share the prediction cache); registration and snapshots take the
// registry mutex.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace remos::sim {

#if defined(REMOS_OBS_ENABLED)
inline constexpr bool kObsEnabled = true;
#else
inline constexpr bool kObsEnabled = false;
#endif

/// Monotone event counter.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    if constexpr (kObsEnabled) v_.fetch_add(n, std::memory_order_relaxed);
    (void)n;
  }
  [[nodiscard]] std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void zero() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written value (cache sizes, quarantine population, ...).
class Gauge {
 public:
  void set(double v) {
    if constexpr (kObsEnabled) v_.store(v, std::memory_order_relaxed);
    (void)v;
  }
  void add(double d) {
    if constexpr (kObsEnabled) {
      double cur = v_.load(std::memory_order_relaxed);
      while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
      }
    }
    (void)d;
  }
  [[nodiscard]] double value() const { return v_.load(std::memory_order_relaxed); }
  void zero() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i]; one
/// extra +Inf bucket catches the rest. Bounds are fixed at registration so
/// exports are structurally stable run to run.
class HistogramMetric {
 public:
  explicit HistogramMetric(std::vector<double> upper_bounds)
      : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1) {}

  void observe(double v) {
    if constexpr (kObsEnabled) {
      std::size_t i = 0;
      while (i < bounds_.size() && v > bounds_[i]) ++i;
      buckets_[i].fetch_add(1, std::memory_order_relaxed);
      count_.fetch_add(1, std::memory_order_relaxed);
      double cur = sum_.load(std::memory_order_relaxed);
      while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
      }
    }
    (void)v;
  }

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Count in bucket `i`; index bounds().size() is the +Inf bucket.
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const { return sum_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  void zero() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<double> sum_{0.0};
  std::atomic<std::uint64_t> count_{0};
};

/// Default buckets for virtual-latency histograms (seconds): SNMP round
/// trips land in the low milliseconds, timeout storms in the tens of
/// seconds.
[[nodiscard]] const std::vector<double>& default_latency_buckets();

class MetricsRegistry {
 public:
  /// Look up or create. References stay valid for the registry's lifetime
  /// (zero_all() keeps every registration) — hot components cache them.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  HistogramMetric& histogram(const std::string& name, const std::vector<double>& bounds);
  HistogramMetric& histogram(const std::string& name) {
    return histogram(name, default_latency_buckets());
  }

  /// Zero every value, keeping registrations (safe with live handles).
  void zero_all();
  /// Drop every registration. Only safe when no component holds a handle —
  /// golden tests call this before building a scenario so exports contain
  /// exactly the metrics that scenario touched.
  void clear();

  struct HistogramSnapshot {
    std::vector<double> bounds;
    std::vector<std::uint64_t> buckets;  // bounds.size() + 1 (+Inf last)
    double sum = 0.0;
    std::uint64_t count = 0;
  };
  /// Deterministically ordered (name-sorted) snapshots for exporters.
  [[nodiscard]] std::map<std::string, std::uint64_t> counters_snapshot() const;
  [[nodiscard]] std::map<std::string, double> gauges_snapshot() const;
  [[nodiscard]] std::map<std::string, HistogramSnapshot> histograms_snapshot() const;

 private:
  // Innermost-but-one leaf (only the obs clock orders after it), held only
  // for a map lookup or registration — never across user code — so hot
  // paths may record counters through it.
  // remos-hot-leaf
  mutable std::mutex mu_;  // remos-lock-order(30)
  // std::map: stable node addresses (handles survive rehashing concerns)
  // and name-sorted iteration for deterministic export.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, HistogramMetric> histograms_;
};

/// The process-global registry every component reports into.
MetricsRegistry& metrics();

// --- virtual-clock binding -------------------------------------------------
// The observability layer timestamps spans exclusively with simulated time.
// The first live Engine binds its clock here (engine.cpp); when no engine
// exists the clock reads 0. `owner` disambiguates multiple engines: only
// the binder can unbind, so nested/sequential testbeds behave sanely.

void bind_obs_clock(const void* owner, std::function<double()> clock);
void unbind_obs_clock(const void* owner);
/// Current virtual time as seen by the observability layer (0 if unbound).
[[nodiscard]] double obs_now();

}  // namespace remos::sim
