#include "sim/rng.hpp"

#include <cmath>

namespace remos::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// FNV-1a over the stream name: stable, portable stream derivation.
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  for (auto& s : s_) s = splitmix64(seed);
  // Avoid the all-zero state xoshiro cannot leave.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng Rng::fork(std::string_view name) const {
  std::uint64_t mix = s_[0] ^ rotl(s_[2], 17) ^ fnv1a(name);
  return Rng(mix);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (hi <= lo) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // Modulo bias is < 2^-40 for the spans used here; acceptable for simulation.
  return lo + static_cast<std::int64_t>(next() % span);
}

double Rng::exponential(double mean) {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

double Rng::pareto(double alpha, double xm) {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

bool Rng::chance(double p) { return uniform() < p; }

}  // namespace remos::sim
