// Deterministic random-number streams for reproducible simulations.
//
// Every stochastic component (traffic generators, host-load signals, failure
// injection) takes its own named Rng stream derived from a root seed, so
// adding a component never perturbs the draws seen by the others.
#pragma once

#include <cstdint>
#include <string_view>

namespace remos::sim {

/// xoshiro256** generator with splitmix64 seeding; satisfies
/// UniformRandomBitGenerator so it composes with <random> distributions,
/// but the common distributions are provided as members to keep call
/// sites terse and implementation-pinned (libstdc++'s distribution
/// algorithms can change between releases; ours cannot).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Derive an independent child stream keyed by a component name.
  [[nodiscard]] Rng fork(std::string_view name) const;

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Exponential with the given mean (= 1/rate).
  double exponential(double mean);
  /// Standard normal via Box-Muller (no cached spare: keeps state minimal).
  double normal(double mean = 0.0, double stddev = 1.0);
  /// Pareto with shape alpha (>0) and minimum xm (>0); heavy-tailed flow sizes.
  double pareto(double alpha, double xm);
  /// Bernoulli trial with probability p.
  bool chance(double p);

 private:
  std::uint64_t s_[4];
};

}  // namespace remos::sim
