// Streaming statistics used throughout the Remos reproduction: Welford
// running moments, fixed-bucket histograms, and time-stamped measurement
// ring buffers (the history a collector keeps per monitored resource).
#pragma once

#include <cstddef>
#include <deque>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace remos::sim {

/// Numerically stable running mean/variance (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width histogram over [lo, hi) with overflow/underflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  /// Approximate quantile (linear interpolation within the bucket).
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double bucket_low(std::size_t i) const;
  [[nodiscard]] double bucket_high(std::size_t i) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

/// One timestamped measurement.
struct Sample {
  Time time = 0.0;
  double value = 0.0;
  friend bool operator==(const Sample&, const Sample&) = default;
};

/// Bounded history of timestamped measurements, newest at the back.
///
/// This is the per-resource history collectors maintain (and, once the XML
/// protocol transfers histories, what gets shipped to RPS for fitting).
class MeasurementHistory {
 public:
  explicit MeasurementHistory(std::size_t capacity = 4096);

  void add(Time t, double value);
  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] const Sample& at(std::size_t i) const { return samples_.at(i); }
  [[nodiscard]] const Sample& latest() const { return samples_.back(); }

  /// Values only, oldest first (what a time-series fitter consumes).
  [[nodiscard]] std::vector<double> values() const;
  /// Samples within [from, to], oldest first.
  [[nodiscard]] std::vector<Sample> window(Time from, Time to) const;
  /// Mean of values within [from, to]; 0 when the window is empty.
  [[nodiscard]] double mean_over(Time from, Time to) const;
  /// The last `n` values, oldest first (n clamped to size).
  [[nodiscard]] std::vector<double> last(std::size_t n) const;

  void clear() { samples_.clear(); }

 private:
  std::size_t capacity_;
  std::deque<Sample> samples_;
};

/// Exact sample quantile of an unsorted series (nearest-rank with linear
/// interpolation, the "R-7" rule): sorts a copy. q clamped to [0, 1]; 0 for
/// an empty series. Used for bench latency percentiles (p50/p95/p99),
/// where bucket-approximate Histogram::quantile would blur the tail.
[[nodiscard]] double exact_quantile(std::vector<double> values, double q);

/// Render a crude ASCII sparkline of a series; used by benches to show the
/// *shape* of a reproduced figure directly in terminal output.
std::string ascii_sparkline(const std::vector<double>& values);

}  // namespace remos::sim
