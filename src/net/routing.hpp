// L3 path inspection helpers over resolved forwarding paths.
#pragma once

#include <string>
#include <vector>

#include "net/topology.hpp"

namespace remos::net {

/// Bottleneck (minimum) link capacity along a path, in bits/second.
/// Shared (hub) segments are included: their shared capacity caps every hop
/// inside them. Returns +inf for an empty path.
[[nodiscard]] double bottleneck_capacity(const Network& net, const PathResult& path);

/// Total propagation latency along a path, in seconds.
[[nodiscard]] double path_latency(const Network& net, const PathResult& path);

/// The IP addresses of the routers a path traverses (a traceroute view).
[[nodiscard]] std::vector<Ipv4Address> trace_route(const Network& net, const PathResult& path);

/// Human-readable "hostA -(cap)-> sw1 -> rtr1 -> hostB" description.
[[nodiscard]] std::string describe_path(const Network& net, NodeId src, const PathResult& path);

/// All node ids a path traverses (excluding endpoints' own ids only when
/// absent from hops), in traversal order starting with `src`.
[[nodiscard]] std::vector<NodeId> path_nodes(const Network& net, NodeId src, const PathResult& path);

}  // namespace remos::net
