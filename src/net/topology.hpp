// Network topology model: hosts, routers (L3), switches and hubs (L2),
// duplex links, L2 segments (= IP subnets), interface octet counters.
//
// This is the ground-truth substrate that stands in for the paper's real
// campus/WAN networks. SNMP agents (src/snmp) expose read-only views of
// these structures; the fluid flow engine (net/flows) moves traffic over
// them and advances the octet counters the SNMP Collector samples.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/ipv4.hpp"
#include "sim/time.hpp"

namespace remos::net {

using NodeId = std::uint32_t;
using LinkId = std::uint32_t;
using SegmentId = std::uint32_t;

/// Sentinel for "no node / no link / no segment".
inline constexpr std::uint32_t kNone = ~0u;

enum class NodeKind : std::uint8_t {
  kHost,    // end system; runs applications, no SNMP agent by default
  kRouter,  // L3 forwarder; SNMP agent with ifTable + ipRouteTable
  kSwitch,  // L2 bridge; SNMP agent with ifTable + Bridge-MIB
  kHub,     // shared-Ethernet segment: all attached traffic shares one capacity
};

[[nodiscard]] const char* to_string(NodeKind kind);

/// One routing-table entry on a router (mirrors SNMP ipRouteTable rows).
struct Route {
  Ipv4Prefix dest;
  Ipv4Address next_hop{};     // 0.0.0.0 for directly connected subnets
  std::uint32_t out_ifindex = 0;
  std::uint32_t metric = 0;
};

struct Interface {
  std::uint32_t ifindex = 0;  // 1-based, like SNMP ifIndex
  LinkId link = kNone;
  Ipv4Address addr{};         // zero for pure L2 ports
  std::uint64_t speed_bps = 0;
  std::uint64_t in_octets = 0;
  std::uint64_t out_octets = 0;
  std::string descr;
};

struct Node {
  NodeId id = kNone;
  NodeKind kind = NodeKind::kHost;
  std::string name;
  std::uint64_t mac = 0;  // synthesized locally administered address
  std::vector<Interface> interfaces;

  // SNMP manageability (routers/switches; hosts default to no agent).
  bool snmp_enabled = false;
  std::string snmp_community = "public";

  // Hosts: default gateway (router NodeId); kNone when single-subnet.
  NodeId gateway = kNone;

  // Routers: forwarding table, filled by Network::finalize().
  std::vector<Route> routes;

  // Switches: forwarding database MAC -> ifindex, filled by finalize()
  // and updated when hosts move (wireless handoff simulation).
  std::unordered_map<std::uint64_t, std::uint32_t> fdb;

  // Hubs: shared capacity of the collision domain.
  double shared_capacity_bps = 0.0;

  // Switches: management address (switch ports themselves carry no IP).
  Ipv4Address mgmt_addr{};

  [[nodiscard]] Interface* find_interface(std::uint32_t ifindex);
  [[nodiscard]] const Interface* find_interface(std::uint32_t ifindex) const;
  /// First interface with an IP address (management/primary address).
  [[nodiscard]] Ipv4Address primary_address() const;
};

struct Link {
  LinkId id = kNone;
  NodeId a = kNone;
  std::uint32_t a_if = 0;
  NodeId b = kNone;
  std::uint32_t b_if = 0;
  double capacity_bps = 0.0;
  double latency_s = 0.0;
  SegmentId segment = kNone;
  /// False when the L2 spanning tree blocked this switch-switch link.
  bool forwarding = true;

  [[nodiscard]] NodeId other(NodeId n) const { return n == a ? b : a; }
};

/// L2 broadcast domain; carries exactly one IP subnet.
struct Segment {
  SegmentId id = kNone;
  Ipv4Prefix prefix{};
  std::vector<LinkId> links;
  std::vector<NodeId> bridges;  // switches and hubs in the segment
  /// (node, ifindex) pairs of L3 endpoints attached to the segment.
  std::vector<std::pair<NodeId, std::uint32_t>> attachments;
  /// True when the segment contains a hub (shared Ethernet).
  bool shared = false;
  double shared_capacity_bps = 0.0;
};

/// One directed traversal of a link: forward means a -> b.
struct Hop {
  LinkId link = kNone;
  bool forward = true;
  friend bool operator==(const Hop&, const Hop&) = default;
};

/// A resolved src->dst forwarding path.
struct PathResult {
  std::vector<Hop> hops;
  /// L3 devices traversed, in order, including neither endpoint.
  std::vector<NodeId> routers;
  double latency_s = 0.0;
  [[nodiscard]] bool empty() const { return hops.empty(); }
};

class Network {
 public:
  explicit Network(std::string name = "net");

  // ---- construction (before finalize) ----
  NodeId add_host(std::string name);
  NodeId add_router(std::string name);
  NodeId add_switch(std::string name);
  NodeId add_hub(std::string name, double shared_capacity_bps);
  /// Connect two nodes with a full-duplex link.
  LinkId connect(NodeId a, NodeId b, double capacity_bps, double latency_s = 0.0005);
  /// Pin a host's default gateway (otherwise auto-selected at finalize).
  void set_gateway(NodeId host, NodeId router);
  /// Configure SNMP manageability (default: routers+switches enabled, "public").
  void set_snmp(NodeId node, bool enabled, std::string community = "public");

  /// Compute segments, assign subnets/addresses out of `site_prefix`,
  /// build spanning trees + FDBs, and fill router routing tables.
  /// Must be called exactly once, after which the topology is static
  /// (except for explicit host moves).
  void finalize(Ipv4Prefix site_prefix = *Ipv4Prefix::parse("10.0.0.0/8"));
  [[nodiscard]] bool finalized() const { return finalized_; }

  // ---- dynamic reconfiguration (after finalize) ----
  /// Detach a (single-homed) host from its current switch port and attach
  /// it to `new_switch`, adding a fresh link. Models 802.11 re-association;
  /// FDB entries along the segment are updated. Both switches must belong
  /// to the same segment. Returns the new link id.
  LinkId move_host(NodeId host, NodeId new_switch, double capacity_bps, double latency_s = 0.0005);

  // ---- lookup ----
  [[nodiscard]] Node& node(NodeId id);
  [[nodiscard]] const Node& node(NodeId id) const;
  [[nodiscard]] Link& link(LinkId id);
  [[nodiscard]] const Link& link(LinkId id) const;
  [[nodiscard]] Segment& segment(SegmentId id);
  [[nodiscard]] const Segment& segment(SegmentId id) const;
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  [[nodiscard]] std::size_t segment_count() const { return segments_.size(); }
  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<Link>& links() const { return links_; }
  [[nodiscard]] const std::vector<Segment>& segments() const { return segments_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  [[nodiscard]] NodeId find_node(std::string_view name) const;  // kNone if absent
  [[nodiscard]] NodeId node_by_ip(Ipv4Address addr) const;      // kNone if absent
  [[nodiscard]] NodeId node_by_mac(std::uint64_t mac) const;    // kNone if absent
  /// Segment a given (node, ifindex) attaches to; kNone for unlinked ports.
  [[nodiscard]] SegmentId segment_of(NodeId node, std::uint32_t ifindex) const;

  // ---- path resolution (ground truth; collectors must *discover* this) ----
  /// Forwarding path between two L3 endpoints (hosts or routers).
  /// Throws std::runtime_error when unroutable.
  [[nodiscard]] PathResult resolve_path(NodeId src, NodeId dst) const;
  /// L2 path between two attachment points within one segment.
  [[nodiscard]] std::vector<Hop> l2_path(NodeId from, NodeId to) const;

  /// Longest-prefix-match lookup in a router's table; nullptr if no route.
  [[nodiscard]] const Route* lookup_route(NodeId router, Ipv4Address dest) const;

  /// Interface at the receiving end of a hop.
  [[nodiscard]] Interface& ingress_interface(const Hop& hop);
  /// Interface at the sending end of a hop.
  [[nodiscard]] Interface& egress_interface(const Hop& hop);

  /// Monotonic counter bumped by any post-finalize reconfiguration
  /// (move_host). Lets cached views (SNMP agents, collector caches)
  /// detect staleness.
  [[nodiscard]] std::uint64_t version() const { return version_; }

  /// Physical-graph audit (kTopology): link endpoints and interface
  /// back-pointers resolve both ways, capacities/latencies are finite and
  /// non-negative, every link belongs to the segment that lists it, and
  /// forwarding-database ports exist. Runs automatically after finalize()
  /// and move_host(); no-op unless built with -DREMOS_AUDIT=ON.
  void audit() const;

 private:
  NodeId add_node(NodeKind kind, std::string name);
  std::uint32_t add_interface(NodeId node, LinkId link, double capacity_bps);
  void compute_segments();
  void assign_subnets(Ipv4Prefix site_prefix);
  void build_spanning_trees();
  void build_fdbs();
  void assign_gateways();
  void build_routing_tables();
  void require_finalized(const char* what) const;

  std::string name_;
  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<Segment> segments_;
  std::unordered_map<std::string, NodeId> by_name_;
  std::unordered_map<Ipv4Address, NodeId> by_ip_;
  std::unordered_map<std::uint64_t, NodeId> by_mac_;
  bool finalized_ = false;
  std::uint64_t version_ = 0;
};

}  // namespace remos::net
