#include "net/hostload.hpp"

#include <cmath>

namespace remos::net {
namespace {

/// One step of the shared host-load recurrence.
double load_step(double& prev1, double& prev2, double& spike, std::uint64_t tick,
                 sim::Rng& rng, const HostLoadParams& p, double tick_spacing_s) {
  const double ar = p.ar1 * prev1 + p.ar2 * prev2;
  const double noise = rng.normal(0.0, p.noise_sigma);
  const double phase = 2.0 * M_PI * static_cast<double>(tick) * tick_spacing_s / p.diurnal_period;
  const double diurnal = p.diurnal_amplitude * std::sin(phase);
  if (rng.chance(p.spike_probability)) spike += p.spike_magnitude * rng.uniform(0.5, 1.5);
  spike *= p.spike_decay;
  // The AR recurrence runs on deviations from the (diurnal-modulated) mean.
  const double dev = ar + noise;
  prev2 = prev1;
  prev1 = dev;
  double load = p.base_load + diurnal + dev + spike;
  return load < 0.0 ? 0.0 : load;
}

}  // namespace

std::vector<double> generate_host_load(std::size_t n, sim::Rng& rng, const HostLoadParams& params) {
  std::vector<double> out;
  out.reserve(n);
  double prev1 = 0.0, prev2 = 0.0, spike = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(load_step(prev1, prev2, spike, i, rng, params, 1.0));
  }
  return out;
}

HostLoadSensor::HostLoadSensor(sim::Engine& engine, sim::Rng rng, double interval_s,
                               HostLoadParams params)
    : engine_(engine), rng_(rng), interval_s_(interval_s), params_(params) {}

HostLoadSensor::~HostLoadSensor() { stop(); }

void HostLoadSensor::start() {
  if (task_ != 0) return;
  task_ = engine_.every(interval_s_, [this] { sample(); });
}

void HostLoadSensor::stop() {
  if (task_ == 0) return;
  engine_.cancel_task(task_);
  task_ = 0;
}

void HostLoadSensor::sample() {
  const double load = load_step(prev1_, prev2_, spike_, tick_++, rng_, params_, interval_s_);
  history_.add(engine_.now(), load);
  if (callback_) callback_(engine_.now(), load);
}

}  // namespace remos::net
