// IPv4 addresses and CIDR prefixes.
//
// Remos partitions monitoring responsibility by IP prefix (each SNMP
// Collector owns "an IP domain corresponding to a university or
// department"), so prefixes are a first-class type with longest-match
// support used by the Master Collector's directory.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace remos::net {

class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t value) : value_(value) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) | (std::uint32_t{c} << 8) | d) {}

  /// Parse dotted-quad; nullopt on malformed input.
  static std::optional<Ipv4Address> parse(std::string_view text);

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] constexpr bool is_zero() const { return value_ == 0; }
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) = default;

 private:
  std::uint32_t value_ = 0;
};

class Ipv4Prefix {
 public:
  constexpr Ipv4Prefix() = default;
  /// Construct base/len; host bits of `base` are masked off.
  Ipv4Prefix(Ipv4Address base, int length);

  /// Parse "a.b.c.d/len"; nullopt on malformed input.
  static std::optional<Ipv4Prefix> parse(std::string_view text);

  [[nodiscard]] Ipv4Address base() const { return base_; }
  [[nodiscard]] int length() const { return length_; }
  [[nodiscard]] std::uint32_t netmask() const;
  [[nodiscard]] bool contains(Ipv4Address addr) const;
  [[nodiscard]] bool contains(const Ipv4Prefix& other) const;
  /// The k-th host address inside the prefix (k starts at 1).
  [[nodiscard]] Ipv4Address host(std::uint32_t k) const;
  [[nodiscard]] std::string to_string() const;

  friend auto operator<=>(const Ipv4Prefix&, const Ipv4Prefix&) = default;

 private:
  Ipv4Address base_{};
  int length_ = 0;
};

}  // namespace remos::net

template <>
struct std::hash<remos::net::Ipv4Address> {
  std::size_t operator()(const remos::net::Ipv4Address& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};
