#include "net/topology.hpp"

#include "core/audit.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <numeric>
#include <stdexcept>

namespace remos::net {
namespace {

/// Locally administered MAC derived from the node id.
std::uint64_t synth_mac(NodeId id) { return 0x020000000000ull | id; }

/// Smallest power of two >= n.
std::uint32_t next_pow2(std::uint32_t n) {
  std::uint32_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

const char* to_string(NodeKind kind) {
  switch (kind) {
    case NodeKind::kHost: return "host";
    case NodeKind::kRouter: return "router";
    case NodeKind::kSwitch: return "switch";
    case NodeKind::kHub: return "hub";
  }
  return "?";
}

Interface* Node::find_interface(std::uint32_t ifindex) {
  for (auto& ifc : interfaces) {
    if (ifc.ifindex == ifindex) return &ifc;
  }
  return nullptr;
}

const Interface* Node::find_interface(std::uint32_t ifindex) const {
  return const_cast<Node*>(this)->find_interface(ifindex);
}

Ipv4Address Node::primary_address() const {
  for (const auto& ifc : interfaces) {
    if (!ifc.addr.is_zero()) return ifc.addr;
  }
  return mgmt_addr;
}

Network::Network(std::string name) : name_(std::move(name)) {}

NodeId Network::add_node(NodeKind kind, std::string name) {
  if (finalized_) throw std::logic_error("Network: cannot add nodes after finalize()");
  if (by_name_.contains(name)) throw std::invalid_argument("Network: duplicate node name " + name);
  NodeId id = static_cast<NodeId>(nodes_.size());
  Node n;
  n.id = id;
  n.kind = kind;
  n.name = name;
  n.mac = synth_mac(id);
  n.snmp_enabled = (kind == NodeKind::kRouter || kind == NodeKind::kSwitch);
  by_name_.emplace(std::move(name), id);
  by_mac_.emplace(n.mac, id);
  nodes_.push_back(std::move(n));
  return id;
}

NodeId Network::add_host(std::string name) { return add_node(NodeKind::kHost, std::move(name)); }
NodeId Network::add_router(std::string name) { return add_node(NodeKind::kRouter, std::move(name)); }
NodeId Network::add_switch(std::string name) { return add_node(NodeKind::kSwitch, std::move(name)); }

NodeId Network::add_hub(std::string name, double shared_capacity_bps) {
  NodeId id = add_node(NodeKind::kHub, std::move(name));
  nodes_[id].shared_capacity_bps = shared_capacity_bps;
  nodes_[id].snmp_enabled = false;  // dumb hubs are unmanaged
  return id;
}

std::uint32_t Network::add_interface(NodeId node_id, LinkId link, double capacity_bps) {
  Node& n = nodes_.at(node_id);
  Interface ifc;
  ifc.ifindex = static_cast<std::uint32_t>(n.interfaces.size()) + 1;
  ifc.link = link;
  ifc.speed_bps = static_cast<std::uint64_t>(capacity_bps);
  ifc.descr = n.name + "/eth" + std::to_string(ifc.ifindex - 1);
  n.interfaces.push_back(std::move(ifc));
  return n.interfaces.back().ifindex;
}

LinkId Network::connect(NodeId a, NodeId b, double capacity_bps, double latency_s) {
  if (finalized_) throw std::logic_error("Network: cannot add links after finalize()");
  if (a == b) throw std::invalid_argument("Network: self-link");
  if (a >= nodes_.size() || b >= nodes_.size()) throw std::out_of_range("Network: bad node id");
  if (capacity_bps <= 0) throw std::invalid_argument("Network: capacity must be positive");
  LinkId id = static_cast<LinkId>(links_.size());
  Link l;
  l.id = id;
  l.a = a;
  l.b = b;
  l.capacity_bps = capacity_bps;
  l.latency_s = latency_s;
  l.a_if = add_interface(a, id, capacity_bps);
  l.b_if = add_interface(b, id, capacity_bps);
  links_.push_back(l);
  return id;
}

void Network::set_gateway(NodeId host, NodeId router) {
  nodes_.at(host).gateway = router;
}

void Network::set_snmp(NodeId node_id, bool enabled, std::string community) {
  Node& n = nodes_.at(node_id);
  n.snmp_enabled = enabled;
  n.snmp_community = std::move(community);
}

// ---------------------------------------------------------------------------
// finalize
// ---------------------------------------------------------------------------

void Network::finalize(Ipv4Prefix site_prefix) {
  if (finalized_) throw std::logic_error("Network: finalize() called twice");
  compute_segments();
  assign_subnets(site_prefix);
  build_spanning_trees();
  build_fdbs();
  assign_gateways();
  build_routing_tables();
  finalized_ = true;
  audit();
}

void Network::compute_segments() {
  // Union-find over links: links sharing a switch/hub endpoint belong to one
  // L2 segment; a point-to-point link between L3 devices is its own segment.
  std::vector<LinkId> parent(links_.size());
  std::iota(parent.begin(), parent.end(), 0u);
  auto find = [&](LinkId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto unite = [&](LinkId x, LinkId y) { parent[find(x)] = find(y); };

  for (const Node& n : nodes_) {
    if (n.kind != NodeKind::kSwitch && n.kind != NodeKind::kHub) continue;
    LinkId first = kNone;
    for (const auto& ifc : n.interfaces) {
      if (ifc.link == kNone) continue;
      if (first == kNone) {
        first = ifc.link;
      } else {
        unite(first, ifc.link);
      }
    }
  }

  std::unordered_map<LinkId, SegmentId> root_to_segment;
  segments_.clear();
  for (Link& l : links_) {
    LinkId root = find(l.id);
    auto [it, inserted] = root_to_segment.try_emplace(root, static_cast<SegmentId>(segments_.size()));
    if (inserted) {
      Segment s;
      s.id = it->second;
      segments_.push_back(std::move(s));
    }
    l.segment = it->second;
    segments_[it->second].links.push_back(l.id);
  }

  // Fill per-segment membership.
  for (Segment& s : segments_) {
    std::vector<bool> seen(nodes_.size(), false);
    for (LinkId lid : s.links) {
      const Link& l = links_[lid];
      for (auto [node_id, ifidx] : {std::pair{l.a, l.a_if}, std::pair{l.b, l.b_if}}) {
        const Node& n = nodes_[node_id];
        if (n.kind == NodeKind::kSwitch || n.kind == NodeKind::kHub) {
          if (!seen[node_id]) {
            seen[node_id] = true;
            s.bridges.push_back(node_id);
            if (n.kind == NodeKind::kHub) {
              s.shared = true;
              s.shared_capacity_bps = s.shared ? std::max(s.shared_capacity_bps, 0.0) : 0.0;
              if (s.shared_capacity_bps <= 0.0 || n.shared_capacity_bps < s.shared_capacity_bps) {
                s.shared_capacity_bps = n.shared_capacity_bps;
              }
            }
          }
        } else {
          s.attachments.emplace_back(node_id, ifidx);
        }
      }
    }
    std::sort(s.bridges.begin(), s.bridges.end());
    std::sort(s.attachments.begin(), s.attachments.end());
  }
}

void Network::assign_subnets(Ipv4Prefix site_prefix) {
  // Bump allocator with power-of-two alignment inside the site prefix.
  std::uint32_t cursor = site_prefix.base().value();
  const std::uint32_t limit = cursor + (site_prefix.length() == 0
                                            ? ~0u
                                            : (1u << (32 - site_prefix.length())) - 1);
  for (Segment& s : segments_) {
    // Hosts/routers plus a management address per switch, net+bcast+slack.
    const auto needed =
        static_cast<std::uint32_t>(s.attachments.size() + s.bridges.size()) + 3;
    const std::uint32_t size = std::max<std::uint32_t>(next_pow2(needed), 4);
    // Align cursor up to the block size.
    cursor = (cursor + size - 1) & ~(size - 1);
    if (cursor + size - 1 > limit) {
      throw std::runtime_error("Network: site prefix exhausted while assigning subnets");
    }
    int prefix_len = 32;
    for (std::uint32_t v = size; v > 1; v >>= 1) --prefix_len;
    s.prefix = Ipv4Prefix(Ipv4Address(cursor), prefix_len);
    std::uint32_t host_index = 1;
    for (auto [node_id, ifidx] : s.attachments) {
      Interface* ifc = nodes_[node_id].find_interface(ifidx);
      REMOS_CHECK(ifc != nullptr, "segment attachment references a missing interface");
      ifc->addr = s.prefix.host(host_index++);
      by_ip_.emplace(ifc->addr, node_id);
    }
    for (NodeId bridge : s.bridges) {
      Node& b = nodes_[bridge];
      if (b.kind == NodeKind::kSwitch && b.mgmt_addr.is_zero()) {
        b.mgmt_addr = s.prefix.host(host_index++);
        by_ip_.emplace(b.mgmt_addr, bridge);
      }
    }
    cursor += size;
  }
}

void Network::build_spanning_trees() {
  // Per segment: BFS tree over the bridge-bridge subgraph rooted at the
  // lowest-id bridge; every non-tree bridge-bridge link is blocked.
  for (Segment& s : segments_) {
    if (s.bridges.size() < 2) continue;
    std::unordered_map<NodeId, std::vector<LinkId>> adj;
    for (LinkId lid : s.links) {
      const Link& l = links_[lid];
      const bool a_bridge = nodes_[l.a].kind == NodeKind::kSwitch || nodes_[l.a].kind == NodeKind::kHub;
      const bool b_bridge = nodes_[l.b].kind == NodeKind::kSwitch || nodes_[l.b].kind == NodeKind::kHub;
      if (a_bridge && b_bridge) {
        adj[l.a].push_back(lid);
        adj[l.b].push_back(lid);
      }
    }
    for (auto& [node_id, lids] : adj) std::sort(lids.begin(), lids.end());

    std::unordered_map<NodeId, bool> visited;
    std::vector<LinkId> tree;
    std::deque<NodeId> frontier{s.bridges.front()};
    visited[s.bridges.front()] = true;
    while (!frontier.empty()) {
      NodeId u = frontier.front();
      frontier.pop_front();
      for (LinkId lid : adj[u]) {
        NodeId v = links_[lid].other(u);
        if (!visited[v]) {
          visited[v] = true;
          tree.push_back(lid);
          frontier.push_back(v);
        }
      }
    }
    std::sort(tree.begin(), tree.end());
    for (LinkId lid : s.links) {
      const Link& l = links_[lid];
      const bool a_bridge = nodes_[l.a].kind != NodeKind::kHost && nodes_[l.a].kind != NodeKind::kRouter;
      const bool b_bridge = nodes_[l.b].kind != NodeKind::kHost && nodes_[l.b].kind != NodeKind::kRouter;
      if (a_bridge && b_bridge && !std::binary_search(tree.begin(), tree.end(), lid)) {
        links_[lid].forwarding = false;
      }
    }
  }
}

void Network::build_fdbs() {
  for (Segment& s : segments_) {
    for (NodeId bridge : s.bridges) nodes_[bridge].fdb.clear();
    for (NodeId bridge : s.bridges) {
      Node& b = nodes_[bridge];
      if (b.kind != NodeKind::kSwitch) continue;  // hubs have no FDB
      // For each forwarding port, flood-fill the far side and record which
      // endpoint MACs live behind it.
      for (const auto& ifc : b.interfaces) {
        if (ifc.link == kNone || !links_[ifc.link].forwarding) continue;
        if (links_[ifc.link].segment != s.id) continue;
        std::vector<bool> seen(nodes_.size(), false);
        seen[bridge] = true;
        std::deque<NodeId> frontier{links_[ifc.link].other(bridge)};
        while (!frontier.empty()) {
          NodeId u = frontier.front();
          frontier.pop_front();
          if (seen[u]) continue;
          seen[u] = true;
          const Node& un = nodes_[u];
          if (un.kind == NodeKind::kHost || un.kind == NodeKind::kRouter) {
            b.fdb[un.mac] = ifc.ifindex;
            continue;  // L3 endpoints do not forward L2 frames
          }
          for (const auto& uifc : un.interfaces) {
            if (uifc.link == kNone || !links_[uifc.link].forwarding) continue;
            if (links_[uifc.link].segment != s.id) continue;
            NodeId v = links_[uifc.link].other(u);
            if (!seen[v]) frontier.push_back(v);
          }
        }
      }
    }
  }
}

void Network::assign_gateways() {
  for (Node& n : nodes_) {
    if (n.kind != NodeKind::kHost || n.gateway != kNone) continue;
    // Pick the lowest-id router sharing a segment with the host.
    NodeId best = kNone;
    for (const auto& ifc : n.interfaces) {
      SegmentId sid = segment_of(n.id, ifc.ifindex);
      if (sid == kNone) continue;
      for (auto [att_node, att_if] : segments_[sid].attachments) {
        (void)att_if;
        if (nodes_[att_node].kind == NodeKind::kRouter && (best == kNone || att_node < best)) {
          best = att_node;
        }
      }
    }
    n.gateway = best;
  }
}

void Network::build_routing_tables() {
  // Router-level graph: routers adjacent when they share a segment.
  std::vector<NodeId> routers;
  for (const Node& n : nodes_) {
    if (n.kind == NodeKind::kRouter) routers.push_back(n.id);
  }
  // router -> list of (neighbor router, via segment)
  std::unordered_map<NodeId, std::vector<std::pair<NodeId, SegmentId>>> adj;
  for (const Segment& s : segments_) {
    std::vector<NodeId> attached;
    for (auto [node_id, ifidx] : s.attachments) {
      (void)ifidx;
      if (nodes_[node_id].kind == NodeKind::kRouter) attached.push_back(node_id);
    }
    for (NodeId u : attached) {
      for (NodeId v : attached) {
        if (u != v) adj[u].emplace_back(v, s.id);
      }
    }
  }
  for (auto& [r, neighbors] : adj) std::sort(neighbors.begin(), neighbors.end());

  auto interface_in_segment = [&](NodeId router, SegmentId sid) -> const Interface* {
    for (const auto& ifc : nodes_[router].interfaces) {
      if (ifc.link != kNone && links_[ifc.link].segment == sid) return &ifc;
    }
    return nullptr;
  };

  for (NodeId r : routers) {
    // BFS with parent tracking (hop-count metric, deterministic tie-break).
    std::unordered_map<NodeId, std::pair<NodeId, SegmentId>> parent;  // child -> (parent, via)
    std::unordered_map<NodeId, std::uint32_t> dist;
    std::deque<NodeId> frontier{r};
    dist[r] = 0;
    while (!frontier.empty()) {
      NodeId u = frontier.front();
      frontier.pop_front();
      for (auto [v, sid] : adj[u]) {
        if (!dist.contains(v)) {
          dist[v] = dist[u] + 1;
          parent[v] = {u, sid};
          frontier.push_back(v);
        }
      }
    }
    auto first_hop = [&](NodeId target) -> std::pair<NodeId, SegmentId> {
      NodeId cur = target;
      while (parent.at(cur).first != r) cur = parent.at(cur).first;
      return {cur, parent.at(cur).second};
    };

    Node& rn = nodes_[r];
    rn.routes.clear();
    for (const Segment& s : segments_) {
      if (const Interface* direct = interface_in_segment(r, s.id)) {
        rn.routes.push_back(Route{s.prefix, Ipv4Address{}, direct->ifindex, 0});
        continue;
      }
      // Nearest router attached to the segment.
      NodeId best = kNone;
      std::uint32_t best_dist = ~0u;
      for (auto [node_id, ifidx] : s.attachments) {
        (void)ifidx;
        if (nodes_[node_id].kind != NodeKind::kRouter) continue;
        auto it = dist.find(node_id);
        if (it == dist.end()) continue;
        if (it->second < best_dist || (it->second == best_dist && node_id < best)) {
          best = node_id;
          best_dist = it->second;
        }
      }
      if (best == kNone) continue;  // segment unreachable from this router
      auto [hop, via_segment] = first_hop(best);
      const Interface* out = interface_in_segment(r, via_segment);
      const Interface* hop_if = interface_in_segment(hop, via_segment);
      REMOS_CHECK(out != nullptr && hop_if != nullptr,
                  "routing-table build: no interface in the transit segment");
      rn.routes.push_back(Route{s.prefix, hop_if->addr, out->ifindex, best_dist});
    }
    // ipRouteTable is indexed by destination prefix; keep it sorted.
    std::sort(rn.routes.begin(), rn.routes.end(), [](const Route& x, const Route& y) {
      return std::pair(x.dest.base().value(), x.dest.length()) <
             std::pair(y.dest.base().value(), y.dest.length());
    });
  }
}

// ---------------------------------------------------------------------------
// lookup
// ---------------------------------------------------------------------------

Node& Network::node(NodeId id) { return nodes_.at(id); }
const Node& Network::node(NodeId id) const { return nodes_.at(id); }
Link& Network::link(LinkId id) { return links_.at(id); }
const Link& Network::link(LinkId id) const { return links_.at(id); }
Segment& Network::segment(SegmentId id) { return segments_.at(id); }
const Segment& Network::segment(SegmentId id) const { return segments_.at(id); }

NodeId Network::find_node(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? kNone : it->second;
}

NodeId Network::node_by_ip(Ipv4Address addr) const {
  auto it = by_ip_.find(addr);
  return it == by_ip_.end() ? kNone : it->second;
}

NodeId Network::node_by_mac(std::uint64_t mac) const {
  auto it = by_mac_.find(mac);
  return it == by_mac_.end() ? kNone : it->second;
}

SegmentId Network::segment_of(NodeId node_id, std::uint32_t ifindex) const {
  const Interface* ifc = nodes_.at(node_id).find_interface(ifindex);
  if (ifc == nullptr || ifc->link == kNone) return kNone;
  return links_[ifc->link].segment;
}

const Route* Network::lookup_route(NodeId router, Ipv4Address dest) const {
  const Node& r = nodes_.at(router);
  const Route* best = nullptr;
  for (const Route& route : r.routes) {
    if (route.dest.contains(dest) && (best == nullptr || route.dest.length() > best->dest.length())) {
      best = &route;
    }
  }
  return best;
}

Interface& Network::ingress_interface(const Hop& hop) {
  Link& l = links_.at(hop.link);
  Node& n = nodes_[hop.forward ? l.b : l.a];
  Interface* ifc = n.find_interface(hop.forward ? l.b_if : l.a_if);
  REMOS_CHECK(ifc != nullptr, "hop ingress interface missing");
  return *ifc;
}

Interface& Network::egress_interface(const Hop& hop) {
  Link& l = links_.at(hop.link);
  Node& n = nodes_[hop.forward ? l.a : l.b];
  Interface* ifc = n.find_interface(hop.forward ? l.a_if : l.b_if);
  REMOS_CHECK(ifc != nullptr, "hop egress interface missing");
  return *ifc;
}

// ---------------------------------------------------------------------------
// path resolution
// ---------------------------------------------------------------------------

std::vector<Hop> Network::l2_path(NodeId from, NodeId to) const {
  require_finalized("l2_path");
  if (from == to) return {};
  // Find the segment both endpoints attach to.
  SegmentId shared = kNone;
  for (const auto& ifc : nodes_.at(from).interfaces) {
    SegmentId sid = segment_of(from, ifc.ifindex);
    if (sid == kNone) continue;
    const Segment& s = segments_[sid];
    const bool to_in = std::any_of(
        s.attachments.begin(), s.attachments.end(),
        [&](const auto& att) { return att.first == to; });
    const bool to_is_bridge = std::binary_search(s.bridges.begin(), s.bridges.end(), to);
    if (to_in || to_is_bridge) {
      shared = sid;
      break;
    }
  }
  if (shared == kNone) throw std::runtime_error("l2_path: endpoints share no segment");

  // BFS over forwarding links of the segment, endpoints + bridges as vertices.
  const Segment& s = segments_[shared];
  std::unordered_map<NodeId, Hop> arrived_via;  // node -> hop used to reach it
  std::unordered_map<NodeId, NodeId> prev;
  std::deque<NodeId> frontier{from};
  std::unordered_map<NodeId, bool> visited{{from, true}};
  while (!frontier.empty()) {
    NodeId u = frontier.front();
    frontier.pop_front();
    if (u == to) break;
    // Endpoints other than `from` do not forward.
    const Node& un = nodes_[u];
    const bool is_endpoint = un.kind == NodeKind::kHost || un.kind == NodeKind::kRouter;
    if (is_endpoint && u != from) continue;
    for (const auto& ifc : un.interfaces) {
      if (ifc.link == kNone) continue;
      const Link& l = links_[ifc.link];
      if (l.segment != s.id || !l.forwarding) continue;
      NodeId v = l.other(u);
      if (visited[v]) continue;
      visited[v] = true;
      arrived_via[v] = Hop{l.id, l.a == u};
      prev[v] = u;
      frontier.push_back(v);
    }
  }
  if (!visited[to]) throw std::runtime_error("l2_path: no L2 path (blocked links?)");
  std::vector<Hop> hops;
  for (NodeId cur = to; cur != from; cur = prev.at(cur)) hops.push_back(arrived_via.at(cur));
  std::reverse(hops.begin(), hops.end());
  return hops;
}

PathResult Network::resolve_path(NodeId src, NodeId dst) const {
  require_finalized("resolve_path");
  PathResult out;
  if (src == dst) return out;
  const Ipv4Address dst_ip = nodes_.at(dst).primary_address();
  if (dst_ip.is_zero()) throw std::runtime_error("resolve_path: destination has no address");

  auto append = [&](std::vector<Hop> hops) {
    for (const Hop& h : hops) {
      out.latency_s += links_[h.link].latency_s;
      out.hops.push_back(h);
    }
  };

  // Same-segment fast path (pure L2 delivery).
  for (const auto& ifc : nodes_.at(src).interfaces) {
    SegmentId sid = segment_of(src, ifc.ifindex);
    if (sid == kNone) continue;
    const Segment& s = segments_[sid];
    if (std::any_of(s.attachments.begin(), s.attachments.end(),
                    [&](const auto& att) { return att.first == dst; })) {
      append(l2_path(src, dst));
      return out;
    }
  }

  // Walk the L3 forwarding chain.
  NodeId current = src;
  if (nodes_[src].kind == NodeKind::kHost) {
    NodeId gw = nodes_[src].gateway;
    if (gw == kNone) throw std::runtime_error("resolve_path: host " + nodes_[src].name + " has no gateway");
    append(l2_path(src, gw));
    out.routers.push_back(gw);
    current = gw;
  }
  for (int guard = 0; guard < 64; ++guard) {
    const Route* route = lookup_route(current, dst_ip);
    if (route == nullptr) {
      throw std::runtime_error("resolve_path: no route from " + nodes_[current].name + " to " +
                               dst_ip.to_string());
    }
    if (route->next_hop.is_zero()) {
      append(l2_path(current, dst));
      return out;
    }
    NodeId next = node_by_ip(route->next_hop);
    if (next == kNone) throw std::runtime_error("resolve_path: dangling next hop");
    append(l2_path(current, next));
    out.routers.push_back(next);
    current = next;
  }
  throw std::runtime_error("resolve_path: routing loop detected");
}

// ---------------------------------------------------------------------------
// dynamic reconfiguration
// ---------------------------------------------------------------------------

LinkId Network::move_host(NodeId host, NodeId new_switch, double capacity_bps, double latency_s) {
  require_finalized("move_host");
  Node& h = nodes_.at(host);
  if (h.kind != NodeKind::kHost) throw std::invalid_argument("move_host: not a host");
  if (h.interfaces.size() != 1 || h.interfaces[0].link == kNone) {
    throw std::invalid_argument("move_host: host must be single-homed");
  }
  Link& l = links_[h.interfaces[0].link];
  const NodeId old_attach = l.other(host);
  if (old_attach == new_switch) return l.id;
  const NodeKind target_kind = nodes_.at(new_switch).kind;
  if (target_kind != NodeKind::kSwitch && target_kind != NodeKind::kHub) {
    // Hubs model 802.11 access points: re-association is a host move onto
    // the AP's shared medium.
    throw std::invalid_argument("move_host: target is not a switch or hub");
  }
  const Segment& s = segments_[l.segment];
  if (!std::binary_search(s.bridges.begin(), s.bridges.end(), new_switch)) {
    throw std::invalid_argument("move_host: target switch in a different segment");
  }

  // Rewire the host's link end from the old device to the new switch.
  const bool host_is_a = (l.a == host);
  NodeId& far_node = host_is_a ? l.b : l.a;
  std::uint32_t& far_if = host_is_a ? l.b_if : l.a_if;
  // Detach the old port (it keeps existing but points at no link).
  if (Interface* old_ifc = nodes_[far_node].find_interface(far_if)) old_ifc->link = kNone;
  far_node = new_switch;
  far_if = add_interface(new_switch, l.id, capacity_bps);
  l.capacity_bps = capacity_bps;
  l.latency_s = latency_s;

  // The move changed which MACs live behind which ports: relearn the
  // segment's forwarding databases (real bridges age entries out; we model
  // the post-convergence state).
  build_fdbs();
  ++version_;
  audit();
  return l.id;
}

void Network::require_finalized(const char* what) const {
  if (!finalized_) throw std::logic_error(std::string("Network: ") + what + " before finalize()");
}

void Network::audit() const {
  if constexpr (!core::audit::kEnabled) return;
  for (const Link& l : links_) {
    const std::string where = "link #" + std::to_string(l.id);
    REMOS_AUDIT(kTopology, l.a < nodes_.size() && l.b < nodes_.size(),
                where + ": endpoint node out of range");
    REMOS_AUDIT(kTopology, l.a != l.b, where + ": both ends on one node");
    REMOS_AUDIT(kTopology, std::isfinite(l.capacity_bps) && l.capacity_bps >= 0.0,
                where + ": bad capacity");
    REMOS_AUDIT(kTopology, std::isfinite(l.latency_s) && l.latency_s >= 0.0,
                where + ": bad latency");
    const Interface* ia = nodes_[l.a].find_interface(l.a_if);
    const Interface* ib = nodes_[l.b].find_interface(l.b_if);
    REMOS_AUDIT(kTopology, ia != nullptr && ia->link == l.id,
                where + ": a-side interface missing or not pointing back");
    REMOS_AUDIT(kTopology, ib != nullptr && ib->link == l.id,
                where + ": b-side interface missing or not pointing back");
    if (finalized_) {
      REMOS_AUDIT(kTopology, l.segment < segments_.size(), where + ": segment out of range");
      const auto& seg_links = segments_[l.segment].links;
      REMOS_AUDIT(kTopology,
                  std::find(seg_links.begin(), seg_links.end(), l.id) != seg_links.end(),
                  where + ": not listed by its segment");
    }
  }
  for (const Node& n : nodes_) {
    const std::string where = "node " + n.name;
    for (const Interface& ifc : n.interfaces) {
      if (ifc.link == kNone) continue;  // detached port (after move_host)
      REMOS_AUDIT(kTopology, ifc.link < links_.size(),
                  where + ": interface link out of range");
      const Link& l = links_[ifc.link];
      const bool ours = (l.a == n.id && l.a_if == ifc.ifindex) ||
                        (l.b == n.id && l.b_if == ifc.ifindex);
      REMOS_AUDIT(kTopology, ours, where + ": interface points at a link that disowns it");
    }
    for (const auto& [mac, port] : n.fdb) {
      REMOS_AUDIT(kTopology, n.find_interface(port) != nullptr,
                  where + ": fdb entry for mac " + std::to_string(mac) +
                      " names a missing port");
    }
  }
  for (const Segment& s : segments_) {
    for (const auto& [node_id, ifindex] : s.attachments) {
      REMOS_AUDIT(kTopology,
                  node_id < nodes_.size() && nodes_[node_id].find_interface(ifindex) != nullptr,
                  "segment #" + std::to_string(s.id) + ": dangling attachment");
    }
    for (NodeId b : s.bridges) {
      REMOS_AUDIT(kTopology,
                  b < nodes_.size() && (nodes_[b].kind == NodeKind::kSwitch ||
                                        nodes_[b].kind == NodeKind::kHub),
                  "segment #" + std::to_string(s.id) + ": bridge list names a non-bridge");
    }
  }
}

}  // namespace remos::net
