// L2 (bridged Ethernet) inspection helpers.
//
// Ground-truth views over switch forwarding databases used by tests and by
// the Bridge Collector's verification paths. The Bridge Collector itself
// must *discover* this information through SNMP Bridge-MIB walks; these
// helpers read the model directly.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/topology.hpp"

namespace remos::net {

/// Where a (single-homed) host plugs into its segment.
struct Attachment {
  NodeId device = kNone;       // switch/hub/router/host on the far end
  std::uint32_t ifindex = 0;   // port on that device
};

/// The device and port a host's access link lands on; device may be any
/// node kind (point-to-point links attach directly to a router or host).
[[nodiscard]] Attachment host_attachment(const Network& net, NodeId host);

/// Sorted copy of a switch's forwarding database (MAC -> port), the exact
/// relation the Bridge-MIB dot1dTpFdbTable exposes.
[[nodiscard]] std::map<std::uint64_t, std::uint32_t> fdb_snapshot(const Node& sw);

/// Links of a segment that forward after spanning-tree blocking.
[[nodiscard]] std::vector<LinkId> forwarding_links(const Network& net, SegmentId segment);

/// True when the segment's forwarding links form a tree spanning all its
/// bridges and attachments (an invariant finalize() must establish).
[[nodiscard]] bool forwarding_topology_is_tree(const Network& net, SegmentId segment);

}  // namespace remos::net
