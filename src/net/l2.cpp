#include "net/l2.hpp"

#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace remos::net {

Attachment host_attachment(const Network& net, NodeId host) {
  const Node& h = net.node(host);
  for (const auto& ifc : h.interfaces) {
    if (ifc.link == kNone) continue;
    const Link& l = net.link(ifc.link);
    const bool host_is_a = (l.a == host);
    return Attachment{host_is_a ? l.b : l.a, host_is_a ? l.b_if : l.a_if};
  }
  throw std::runtime_error("host_attachment: host has no link");
}

std::map<std::uint64_t, std::uint32_t> fdb_snapshot(const Node& sw) {
  return {sw.fdb.begin(), sw.fdb.end()};
}

std::vector<LinkId> forwarding_links(const Network& net, SegmentId segment) {
  std::vector<LinkId> out;
  for (LinkId lid : net.segment(segment).links) {
    if (net.link(lid).forwarding) out.push_back(lid);
  }
  return out;
}

bool forwarding_topology_is_tree(const Network& net, SegmentId segment) {
  const Segment& s = net.segment(segment);
  // Vertices: every node touched by a segment link.
  std::unordered_set<NodeId> vertices;
  std::size_t edges = 0;
  std::unordered_map<NodeId, std::vector<LinkId>> adj;
  for (LinkId lid : s.links) {
    const Link& l = net.link(lid);
    vertices.insert(l.a);
    vertices.insert(l.b);
    if (!l.forwarding) continue;
    ++edges;
    adj[l.a].push_back(lid);
    adj[l.b].push_back(lid);
  }
  if (vertices.empty()) return true;
  if (edges != vertices.size() - 1) return false;
  // Connectivity check.
  std::unordered_set<NodeId> seen;
  std::vector<NodeId> stack{*vertices.begin()};
  while (!stack.empty()) {
    NodeId u = stack.back();
    stack.pop_back();
    if (!seen.insert(u).second) continue;
    for (LinkId lid : adj[u]) {
      NodeId v = net.link(lid).other(u);
      if (!seen.contains(v)) stack.push_back(v);
    }
  }
  return seen.size() == vertices.size();
}

}  // namespace remos::net
