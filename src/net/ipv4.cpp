#include "net/ipv4.hpp"

#include <charconv>

namespace remos::net {
namespace {

// Parse a decimal octet from the front of `text`; advances `text`.
std::optional<std::uint32_t> take_number(std::string_view& text, std::uint32_t max) {
  std::uint32_t out = 0;
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  if (ec != std::errc{} || ptr == begin || out > max) return std::nullopt;
  text.remove_prefix(static_cast<std::size_t>(ptr - begin));
  return out;
}

}  // namespace

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    auto octet = take_number(text, 255);
    if (!octet) return std::nullopt;
    value = (value << 8) | *octet;
    if (i < 3) {
      if (text.empty() || text.front() != '.') return std::nullopt;
      text.remove_prefix(1);
    }
  }
  if (!text.empty()) return std::nullopt;
  return Ipv4Address(value);
}

std::string Ipv4Address::to_string() const {
  std::string out;
  out.reserve(15);
  for (int shift = 24; shift >= 0; shift -= 8) {
    out += std::to_string((value_ >> shift) & 0xFF);
    if (shift > 0) out += '.';
  }
  return out;
}

Ipv4Prefix::Ipv4Prefix(Ipv4Address base, int length) : length_(length) {
  if (length_ < 0) length_ = 0;
  if (length_ > 32) length_ = 32;
  const std::uint32_t mask =
      length_ == 0 ? 0u : (length_ == 32 ? ~0u : ~0u << (32 - length_));
  base_ = Ipv4Address(base.value() & mask);
}

std::optional<Ipv4Prefix> Ipv4Prefix::parse(std::string_view text) {
  auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto addr = Ipv4Address::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  std::string_view len_text = text.substr(slash + 1);
  auto len = take_number(len_text, 32);
  if (!len || !len_text.empty()) return std::nullopt;
  return Ipv4Prefix(*addr, static_cast<int>(*len));
}

std::uint32_t Ipv4Prefix::netmask() const {
  if (length_ == 0) return 0;
  if (length_ == 32) return ~0u;
  return ~0u << (32 - length_);
}

bool Ipv4Prefix::contains(Ipv4Address addr) const {
  return (addr.value() & netmask()) == base_.value();
}

bool Ipv4Prefix::contains(const Ipv4Prefix& other) const {
  return other.length_ >= length_ && contains(other.base_);
}

Ipv4Address Ipv4Prefix::host(std::uint32_t k) const {
  return Ipv4Address(base_.value() + k);
}

std::string Ipv4Prefix::to_string() const {
  return base_.to_string() + "/" + std::to_string(length_);
}

}  // namespace remos::net
