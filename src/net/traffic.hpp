// Traffic generators driving the fluid flow engine: Markov on/off cross
// traffic, Poisson arrivals of heavy-tailed transfers, and scripted
// Netperf-style bursts (the ground-truth workload of Figs 4-5).
#pragma once

#include <vector>

#include "net/flows.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"

namespace remos::net {

/// Exponential on/off source: during "on" periods it runs one demand-capped
/// unbounded flow from src to dst; silent during "off" periods.
class OnOffSource {
 public:
  struct Params {
    NodeId src = kNone;
    NodeId dst = kNone;
    double demand_bps = 1e6;
    double mean_on_s = 5.0;
    double mean_off_s = 5.0;
  };

  OnOffSource(sim::Engine& engine, FlowEngine& flows, sim::Rng rng, Params params);
  ~OnOffSource();
  OnOffSource(const OnOffSource&) = delete;
  OnOffSource& operator=(const OnOffSource&) = delete;

  /// Begin the on/off cycle (starts in the "off" state).
  void start();
  /// Stop generating (tears down any active flow).
  void stop();

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] bool in_on_period() const { return flow_ != 0; }

 private:
  void enter_on();
  void enter_off();

  sim::Engine& engine_;
  FlowEngine& flows_;
  sim::Rng rng_;
  Params params_;
  bool running_ = false;
  FlowId flow_ = 0;
  sim::EventId pending_ = 0;
};

/// Poisson flow arrivals with Pareto-distributed transfer sizes — the
/// classic heavy-tailed WAN background-traffic model.
class PoissonSource {
 public:
  struct Params {
    NodeId src = kNone;
    NodeId dst = kNone;
    double arrivals_per_s = 0.5;
    double pareto_alpha = 1.5;
    double min_bytes = 50e3;
    /// Per-flow demand cap (infinity = greedy).
    double demand_bps = std::numeric_limits<double>::infinity();
  };

  PoissonSource(sim::Engine& engine, FlowEngine& flows, sim::Rng rng, Params params);
  ~PoissonSource();
  PoissonSource(const PoissonSource&) = delete;
  PoissonSource& operator=(const PoissonSource&) = delete;

  void start();
  void stop();

  [[nodiscard]] std::uint64_t flows_launched() const { return launched_; }

 private:
  void arrival();

  sim::Engine& engine_;
  FlowEngine& flows_;
  sim::Rng rng_;
  Params params_;
  bool running_ = false;
  sim::EventId pending_ = 0;
  std::uint64_t launched_ = 0;
};

/// One scripted traffic burst.
struct NetperfBurst {
  sim::Time start = 0.0;
  double duration_s = 0.0;
  /// Offered load; infinity = greedy TCP.
  double demand_bps = std::numeric_limits<double>::infinity();
};

/// Scripted Netperf-like session between two endpoints. Runs each burst as
/// a demand-capped flow, records the achieved rate per burst, and samples
/// the instantaneous end-to-end rate on a fine grid — the "bandwidth
/// reported by Netperf" series the paper plots against Remos (Figs 4-5).
class NetperfSession {
 public:
  NetperfSession(sim::Engine& engine, FlowEngine& flows, NodeId src, NodeId dst,
                 std::vector<NetperfBurst> bursts, double sample_interval_s = 0.5);
  ~NetperfSession();
  NetperfSession(const NetperfSession&) = delete;
  NetperfSession& operator=(const NetperfSession&) = delete;

  /// Schedule every burst (call once, before running the engine).
  void run();

  /// Achieved throughput per burst (bits/second), filled as bursts finish.
  [[nodiscard]] const std::vector<double>& burst_throughputs() const { return throughputs_; }

  /// Fine-grained ground-truth series of the session's instantaneous rate.
  [[nodiscard]] const sim::MeasurementHistory& rate_history() const { return history_; }

 private:
  sim::Engine& engine_;
  FlowEngine& flows_;
  NodeId src_, dst_;
  std::vector<NetperfBurst> bursts_;
  double sample_interval_s_;
  std::vector<double> throughputs_;
  sim::MeasurementHistory history_{1 << 16};
  FlowId active_flow_ = 0;
  sim::TaskId sampler_ = 0;
  bool scheduled_ = false;
};

}  // namespace remos::net
