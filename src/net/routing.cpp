#include "net/routing.hpp"

#include <limits>

namespace remos::net {

double bottleneck_capacity(const Network& net, const PathResult& path) {
  double best = std::numeric_limits<double>::infinity();
  for (const Hop& h : path.hops) {
    const Link& l = net.link(h.link);
    best = std::min(best, l.capacity_bps);
    const Segment& s = net.segment(l.segment);
    if (s.shared && s.shared_capacity_bps > 0) best = std::min(best, s.shared_capacity_bps);
  }
  return best;
}

double path_latency(const Network& net, const PathResult& path) {
  double total = 0.0;
  for (const Hop& h : path.hops) total += net.link(h.link).latency_s;
  return total;
}

std::vector<Ipv4Address> trace_route(const Network& net, const PathResult& path) {
  std::vector<Ipv4Address> out;
  out.reserve(path.routers.size());
  for (NodeId r : path.routers) out.push_back(net.node(r).primary_address());
  return out;
}

std::vector<NodeId> path_nodes(const Network& net, NodeId src, const PathResult& path) {
  std::vector<NodeId> out{src};
  NodeId cur = src;
  for (const Hop& h : path.hops) {
    const Link& l = net.link(h.link);
    cur = l.other(cur);
    out.push_back(cur);
  }
  return out;
}

std::string describe_path(const Network& net, NodeId src, const PathResult& path) {
  std::string out = net.node(src).name;
  NodeId cur = src;
  for (const Hop& h : path.hops) {
    const Link& l = net.link(h.link);
    cur = l.other(cur);
    out += " -(" + std::to_string(static_cast<long long>(l.capacity_bps / 1e6)) + "Mb)-> ";
    out += net.node(cur).name;
  }
  return out;
}

}  // namespace remos::net
