// Synthetic host-load signals.
//
// The paper's RPS evaluation (Figs 6-7) predicts Unix host load (the
// exponentially-smoothed run-queue length). Real load traces are not
// available offline, so we synthesize signals with the statistical
// properties Dinda reports for host load: strong autocorrelation (well
// modeled by AR(16)), self-similarity-like long-range structure (slow
// sinusoidal components), epochal spikes, and strictly non-negative values.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"

namespace remos::net {

struct HostLoadParams {
  double base_load = 0.8;        // long-term mean
  double ar1 = 0.72, ar2 = 0.18; // short-range AR structure
  double noise_sigma = 0.08;
  double diurnal_amplitude = 0.3;
  double diurnal_period = 3600.0;  // seconds (compressed "day")
  double spike_probability = 0.002;
  double spike_magnitude = 3.0;
  double spike_decay = 0.9;
};

/// Generate `n` load samples at 1-sample spacing. Deterministic given rng.
[[nodiscard]] std::vector<double> generate_host_load(std::size_t n, sim::Rng& rng,
                                                     const HostLoadParams& params = {});

/// Periodic host-load sensor: the measurement source RPS attaches a
/// streaming predictor to. Samples the synthetic signal at a fixed rate,
/// appends to a history, and invokes an optional per-sample callback.
class HostLoadSensor {
 public:
  HostLoadSensor(sim::Engine& engine, sim::Rng rng, double interval_s,
                 HostLoadParams params = {});
  ~HostLoadSensor();
  HostLoadSensor(const HostLoadSensor&) = delete;
  HostLoadSensor& operator=(const HostLoadSensor&) = delete;

  void start();
  void stop();

  /// Invoked with (time, load) on every sample, after the history append.
  void set_callback(std::function<void(sim::Time, double)> cb) { callback_ = std::move(cb); }

  [[nodiscard]] const sim::MeasurementHistory& history() const { return history_; }
  [[nodiscard]] double interval() const { return interval_s_; }

 private:
  void sample();

  sim::Engine& engine_;
  sim::Rng rng_;
  double interval_s_;
  HostLoadParams params_;
  sim::MeasurementHistory history_{1 << 16};
  std::function<void(sim::Time, double)> callback_;
  sim::TaskId task_ = 0;
  // Signal state (mirrors generate_host_load's recurrence).
  double prev1_ = 0.0, prev2_ = 0.0, spike_ = 0.0;
  std::uint64_t tick_ = 0;
};

}  // namespace remos::net
