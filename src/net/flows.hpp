// Fluid-flow traffic engine with max-min fair bandwidth sharing.
//
// Flows are fluid streams over resolved forwarding paths. At any instant the
// engine assigns every active flow its max-min fair rate (progressive
// filling, honoring per-flow demand caps and shared-Ethernet segments). As
// simulated time advances, each traversed interface accumulates octets —
// exactly the counters the SNMP Collector samples — and finite transfers
// complete at the precise instant their last byte drains.
//
// The same max-min allocation problem is solved a second time, on measured
// data, by the Remos Modeler (core/maxmin); comparing the two is how the
// reproduction evaluates SNMP Collector accuracy (Figs 4-5). Both solvers
// share one water-filling kernel (core/waterfill); the engine's job here is
// to keep the problem *incremental*: per-flow resource lists and the
// resource capacity table persist across start/stop/completion, a
// per-directed-link index answers link-rate queries in O(flows on link),
// and resolved paths are cached per (src, dst) until the topology changes.
//
// Threading discipline. The simulation itself is single-threaded, but
// queries (SNMP agents sampling counters, RTT probes, collector fleets on
// the thread pool) may run concurrently with it:
//   * Mutating entry points — start(), stop(), sync(), and the completion
//     event — must stay on the simulation thread (they drive sim::Engine,
//     which is not thread-safe).
//   * Const queries are safe from any thread, concurrently with the
//     mutators. The hot ones — rate(), directed_link_rate(),
//     current_rtt() — are lock-free: every rate recomputation publishes an
//     immutable RatesView through an atomic shared_ptr swap, and readers
//     answer from the view they loaded (RCU-style; a reader keeps its view
//     alive through the shared_ptr even across a concurrent recompute).
//     The remaining const accessors (stats, counters) take `mu_`, and
//     `path_mu_` guards the (src, dst) path cache that const queries
//     populate.
//   * Topology mutation (Network::move_host) requires exclusive access:
//     Network itself is unlocked, and the caches keyed on its version are
//     only revalidated at the next engine call.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/waterfill.hpp"
#include "net/topology.hpp"
#include "sim/engine.hpp"

namespace remos::sim {
class ThreadPool;
}  // namespace remos::sim

namespace remos::net {

using FlowId = std::uint64_t;

struct FlowSpec {
  NodeId src = kNone;
  NodeId dst = kNone;
  /// Application demand cap in bits/second; infinity = greedy (TCP bulk).
  double demand_bps = std::numeric_limits<double>::infinity();
  /// Transfer size in bytes; 0 = unbounded (runs until stop()).
  std::uint64_t bytes = 0;
  /// Invoked (from the simulation event loop) when a finite flow drains.
  std::function<void(FlowId)> on_complete;
};

struct FlowStats {
  sim::Time start_time = 0.0;
  sim::Time end_time = 0.0;  // completion or stop(); 0 while active
  std::uint64_t delivered_bytes = 0;
  bool completed = false;  // true: drained; false: stopped early / active
  /// Average achieved throughput in bits/second over the flow's lifetime.
  [[nodiscard]] double average_bps() const {
    const double dur = end_time - start_time;
    return dur > 0 ? static_cast<double>(delivered_bytes) * 8.0 / dur : 0.0;
  }
};

class FlowEngine {
 public:
  FlowEngine(sim::Engine& engine, Network& net);

  /// Enable partitioned parallel rate recomputation: water-filling
  /// problems with at least `min_flows` active flows are split into
  /// bottleneck-independent components and solved on `pool` (nullptr
  /// restores the sequential kernel). Rates are bit-identical across
  /// worker counts and match the sequential kernel within its 1e-9 freeze
  /// tolerance; the rounds counter then counts per-partition rounds.
  /// Call during setup, before any concurrent use of the engine.
  void set_thread_pool(sim::ThreadPool* pool, std::size_t min_flows = 4096);

  /// Start a flow; resolves the forwarding path immediately.
  FlowId start(FlowSpec spec);
  /// Stop an unbounded (or not-yet-finished) flow. No-op for unknown ids.
  void stop(FlowId id);

  [[nodiscard]] bool active(FlowId id) const {
    std::lock_guard lock(mu_);
    return flows_.contains(id);
  }
  [[nodiscard]] std::size_t active_count() const {
    std::lock_guard lock(mu_);
    return flows_.size();
  }

  /// Current max-min rate of a flow in bits/second (0 for unknown ids).
  /// Lock-free: binary search in the published RatesView.
  // remos-hot
  [[nodiscard]] double rate(FlowId id) const;

  /// Ground-truth aggregate rate currently crossing a directed link.
  /// Lock-free: O(1) lookup in the published RatesView's per-directed-link
  /// sums (accumulated in ascending-FlowId order, bit-identical to the
  /// historical locked scan).
  // remos-hot
  [[nodiscard]] double directed_link_rate(LinkId link, bool forward) const;

  /// Lifetime statistics; available while active and after completion.
  /// Finished records are retained up to a bounded history (oldest flows
  /// age out first), so callers should read stats promptly.
  [[nodiscard]] std::optional<FlowStats> stats(FlowId id) const;

  /// Bring octet counters up to the current simulated time. Called
  /// automatically before any rate change; exposed so SNMP agents can
  /// sample fresh counters at arbitrary instants (simulation thread only —
  /// it reads the virtual clock).
  void sync();

  /// Round-trip time estimate between two endpoints under the current
  /// load: per traversed hop (both directions), propagation latency plus
  /// an M/M/1-style queueing penalty `queue_scale * rho / (1 - rho)` with
  /// rho the directed link's current utilization (capped at 0.95; a
  /// zero-capacity link counts as fully utilized). This is what a small
  /// ping-like probe would observe, and the source of the latency/jitter
  /// metric the paper lists as future work.
  [[nodiscard]] double current_rtt(NodeId src, NodeId dst, double queue_scale_s = 0.002) const;

  /// Total flows ever started.
  [[nodiscard]] std::uint64_t started_count() const {
    std::lock_guard lock(mu_);
    return next_id_ - 1;
  }

  /// Cumulative water-filling freezing rounds across all rate
  /// recomputations — the deterministic work counter the scaling bench
  /// pins (the fluid counterpart of core.maxmin.iterations_total).
  [[nodiscard]] std::uint64_t waterfill_rounds_total() const {
    std::lock_guard lock(mu_);
    return waterfill_rounds_total_;
  }

  /// Path-cache observability (tested by the invalidation tests).
  [[nodiscard]] std::uint64_t path_cache_hits() const {
    std::lock_guard lock(path_mu_);
    return path_cache_hits_;
  }
  [[nodiscard]] std::uint64_t path_cache_misses() const {
    std::lock_guard lock(path_mu_);
    return path_cache_misses_;
  }

  /// Times the per-directed-link flow index was rebuilt because the
  /// topology version changed (tested by the invalidation tests).
  [[nodiscard]] std::uint64_t link_index_rebuilds() const {
    std::lock_guard lock(mu_);
    return link_index_rebuilds_;
  }

 private:
  struct Flow {
    FlowSpec spec;
    std::vector<Hop> hops;
    std::vector<SegmentId> shared_segments;  // deduped shared segments crossed
    /// Water-filling resource keys (hop order, then shared segments),
    /// computed once at start(). Duplicates preserved: a resource crossed
    /// twice constrains the flow twice, as in the original solver.
    std::vector<std::uint32_t> resource_keys;
    double rate_bps = 0.0;
    double remaining_bytes = 0.0;  // only meaningful when spec.bytes > 0
    /// Sub-byte residue of delivered traffic, carried across syncs so
    /// interface octet counters don't systematically undercount. Flushed
    /// (rounded into a final octet) at stop and completion so SNMP-visible
    /// octets reconcile exactly with the flow's delivered_bytes.
    double octet_carry = 0.0;
    FlowStats stats;
  };

  /// Immutable per-recompute rate summary, published via atomic
  /// shared_ptr swap at the end of every recompute_rates() (and once,
  /// empty, at construction). Readers answer rate queries from whichever
  /// view they loaded without taking mu_; exactness holds because every
  /// mutation that can change a rate ends in recompute_rates() before mu_
  /// is released.
  // remos-published
  struct RatesView {
    /// Active flows' current rates, ascending FlowId (binary-searchable).
    std::vector<std::pair<FlowId, double>> flow_rates;
    /// Aggregate rate per directed link (2*link + dir), summed in
    /// ascending-FlowId order per link — the same float accumulation
    /// sequence as the historical per-query locked scan.
    std::vector<double> directed_rate_bps;
  };

  // ---- all helpers below assume mu_ is held by the caller ----
  // remos-hot
  void sync_locked();
  // remos-hot
  void recompute_rates();
  void publish_rates_view();
  void schedule_next_completion();
  void handle_completion_event();
  [[nodiscard]] double directed_link_rate_locked(LinkId link, bool forward) const;
  /// Credit octets to the flow's stats and every traversed interface in
  /// one step — the single place flow-visible and SNMP-visible counters
  /// advance, so they cannot drift apart.
  void credit_octets(Flow& flow, std::uint64_t octets);

  // ---- incremental state helpers ----
  /// Water-filling resource key layout: shared segments first (their count
  /// is fixed at finalize), then both directions of each link (links can
  /// be added by move_host without invalidating existing keys).
  [[nodiscard]] std::uint32_t segment_resource_key(SegmentId sid) const {
    return static_cast<std::uint32_t>(sid);
  }
  [[nodiscard]] std::uint32_t link_resource_key(LinkId link, bool forward) const {
    return static_cast<std::uint32_t>(net_.segment_count() + 2 * static_cast<std::size_t>(link) +
                                      (forward ? 0 : 1));
  }
  /// Rebuild the persistent resource capacity table and the
  /// per-directed-link index when the topology version changed. The index
  /// is rebuilt from scratch — sized to exactly the current link count —
  /// so a version change can never leave dangling directed-link entries.
  void ensure_resource_tables();
  /// Register / unregister a flow in the per-directed-link index.
  void index_flow(FlowId id, const Flow& flow);
  void unindex_flow(FlowId id, const Flow& flow);
  /// Cached resolve_path (invalidated when the topology version changes).
  /// Takes path_mu_ itself; safe to call with or without mu_ held (mu_ is
  /// strictly outer). The returned reference stays valid until the next
  /// topology-version change: the cache is node-based, so inserts from
  /// concurrent queries never move existing entries.
  [[nodiscard]] const PathResult& resolved_path(NodeId src, NodeId dst) const;

  /// Bound on retained finished-flow records (FIFO eviction by FlowId).
  static constexpr std::size_t kFinishedCap = 1 << 16;

  void record_finished(FlowId id, const FlowStats& stats);

  sim::Engine& engine_;
  Network& net_;
  /// Partitioned-parallel recompute knobs (setup-time, not hot state).
  sim::ThreadPool* pool_ = nullptr;               // remos-guarded-by(mu_)
  std::size_t parallel_min_flows_ = 4096;         // remos-guarded-by(mu_)
  // Ordered by FlowId: max-min problem assembly and rate copy-back iterate
  // this, so hash order would leak into float sums and event ordering.
  std::map<FlowId, Flow> flows_;                  // remos-guarded-by(mu_)
  // Ordered: begin() is the oldest.
  std::map<FlowId, FlowStats> finished_;          // remos-guarded-by(mu_)
  FlowId next_id_ = 1;                            // remos-guarded-by(mu_)
  sim::Time last_sync_ = 0.0;                     // remos-guarded-by(mu_)
  sim::EventId completion_event_ = 0;             // remos-guarded-by(mu_)

  // ---- incremental solver state ----
  core::WaterfillSolver solver_;                  // remos-guarded-by(mu_)
  /// Capacity per resource key; rebuilt when net_.version() changes.
  std::vector<double> resource_capacity_;         // remos-guarded-by(mu_)
  std::uint64_t tables_net_version_ = 0;          // remos-guarded-by(mu_)
  bool tables_valid_ = false;                     // remos-guarded-by(mu_)
  /// CSR assembly arenas, reused across recomputes.
  std::vector<std::size_t> wf_offsets_;           // remos-guarded-by(mu_)
  std::vector<std::uint32_t> wf_resources_;       // remos-guarded-by(mu_)
  std::vector<double> wf_demand_;                 // remos-guarded-by(mu_)
  std::vector<double> wf_rates_;                  // remos-guarded-by(mu_)
  /// Earliest completion delta among finite flows, refreshed by every
  /// recompute (rates and remaining bytes are both current there), so
  /// schedule_next_completion is O(1).
  // remos-guarded-by(mu_)
  double earliest_completion_dt_ = std::numeric_limits<double>::infinity();
  /// Per directed link (2*link+dir): active FlowIds crossing it, ascending
  /// (ids are handed out monotonically, so appends keep the order — and
  /// rate sums visit flows in the same order the full scan did).
  std::vector<std::vector<FlowId>> link_flows_;   // remos-guarded-by(mu_)
  std::uint64_t link_index_rebuilds_ = 0;         // remos-guarded-by(mu_)
  std::uint64_t waterfill_rounds_total_ = 0;      // remos-guarded-by(mu_)
  /// Published rate summary (see RatesView). Written only by
  /// publish_rates_view() with mu_ held; read lock-free from any thread.
  std::atomic<std::shared_ptr<const RatesView>> rates_view_;

  /// Orders const queries against flow mutation/recompute. Everything
  /// above (except the engine/net references) carries an explicit
  /// remos-guarded-by(mu_); private helpers that rely on the caller's
  /// lock carry remos-requires(mu_) so the analyzer can check their
  /// bodies and call sites too. Held while dispatching partitioned
  /// solves, hence ordered before ThreadPool::mu_ (10).
  mutable std::mutex mu_;  // remos-lock-order(5)

  // ---- path cache, guarded by path_mu_ (declared first so the analyzer's
  // lock pass enforces the guard on every member after it; this is the
  // cache that was historically mutated from const queries with no
  // synchronization at all) ----
  mutable std::mutex path_mu_;  // remos-lock-order(6)
  mutable std::unordered_map<std::uint64_t, PathResult> path_cache_;
  mutable std::uint64_t path_cache_net_version_ = 0;
  mutable bool path_cache_valid_ = false;
  mutable std::uint64_t path_cache_hits_ = 0;
  mutable std::uint64_t path_cache_misses_ = 0;
};

}  // namespace remos::net
