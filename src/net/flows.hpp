// Fluid-flow traffic engine with max-min fair bandwidth sharing.
//
// Flows are fluid streams over resolved forwarding paths. At any instant the
// engine assigns every active flow its max-min fair rate (progressive
// filling, honoring per-flow demand caps and shared-Ethernet segments). As
// simulated time advances, each traversed interface accumulates octets —
// exactly the counters the SNMP Collector samples — and finite transfers
// complete at the precise instant their last byte drains.
//
// The same max-min allocation problem is solved a second time, on measured
// data, by the Remos Modeler (core/maxmin); comparing the two is how the
// reproduction evaluates SNMP Collector accuracy (Figs 4-5).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <vector>

#include "net/topology.hpp"
#include "sim/engine.hpp"

namespace remos::net {

using FlowId = std::uint64_t;

struct FlowSpec {
  NodeId src = kNone;
  NodeId dst = kNone;
  /// Application demand cap in bits/second; infinity = greedy (TCP bulk).
  double demand_bps = std::numeric_limits<double>::infinity();
  /// Transfer size in bytes; 0 = unbounded (runs until stop()).
  std::uint64_t bytes = 0;
  /// Invoked (from the simulation event loop) when a finite flow drains.
  std::function<void(FlowId)> on_complete;
};

struct FlowStats {
  sim::Time start_time = 0.0;
  sim::Time end_time = 0.0;  // completion or stop(); 0 while active
  std::uint64_t delivered_bytes = 0;
  bool completed = false;  // true: drained; false: stopped early / active
  /// Average achieved throughput in bits/second over the flow's lifetime.
  [[nodiscard]] double average_bps() const {
    const double dur = end_time - start_time;
    return dur > 0 ? static_cast<double>(delivered_bytes) * 8.0 / dur : 0.0;
  }
};

class FlowEngine {
 public:
  FlowEngine(sim::Engine& engine, Network& net);

  /// Start a flow; resolves the forwarding path immediately.
  FlowId start(FlowSpec spec);
  /// Stop an unbounded (or not-yet-finished) flow. No-op for unknown ids.
  void stop(FlowId id);

  [[nodiscard]] bool active(FlowId id) const { return flows_.contains(id); }
  [[nodiscard]] std::size_t active_count() const { return flows_.size(); }

  /// Current max-min rate of a flow in bits/second (0 for unknown ids).
  [[nodiscard]] double rate(FlowId id) const;

  /// Ground-truth aggregate rate currently crossing a directed link.
  [[nodiscard]] double directed_link_rate(LinkId link, bool forward) const;

  /// Lifetime statistics; available while active and after completion.
  /// Finished records are retained up to a bounded history (oldest flows
  /// age out first), so callers should read stats promptly.
  [[nodiscard]] std::optional<FlowStats> stats(FlowId id) const;

  /// Bring octet counters up to the current simulated time. Called
  /// automatically before any rate change; exposed so SNMP agents can
  /// sample fresh counters at arbitrary instants.
  void sync();

  /// Round-trip time estimate between two endpoints under the current
  /// load: per traversed hop (both directions), propagation latency plus
  /// an M/M/1-style queueing penalty `queue_scale * rho / (1 - rho)` with
  /// rho the directed link's current utilization (capped at 0.95). This is
  /// what a small ping-like probe would observe, and the source of the
  /// latency/jitter metric the paper lists as future work.
  [[nodiscard]] double current_rtt(NodeId src, NodeId dst, double queue_scale_s = 0.002) const;

  /// Total flows ever started.
  [[nodiscard]] std::uint64_t started_count() const { return next_id_ - 1; }

 private:
  struct Flow {
    FlowSpec spec;
    std::vector<Hop> hops;
    std::vector<SegmentId> shared_segments;  // deduped shared segments crossed
    double rate_bps = 0.0;
    double remaining_bytes = 0.0;  // only meaningful when spec.bytes > 0
    FlowStats stats;
  };

  void recompute_rates();
  void schedule_next_completion();
  void handle_completion_event();

  /// Bound on retained finished-flow records (FIFO eviction by FlowId).
  static constexpr std::size_t kFinishedCap = 1 << 16;

  void record_finished(FlowId id, const FlowStats& stats);

  sim::Engine& engine_;
  Network& net_;
  // Ordered by FlowId: max-min convergence and rate accumulation iterate
  // this, so hash order would leak into float sums and event ordering.
  std::map<FlowId, Flow> flows_;
  std::map<FlowId, FlowStats> finished_;  // ordered: begin() is the oldest
  FlowId next_id_ = 1;
  sim::Time last_sync_ = 0.0;
  sim::EventId completion_event_ = 0;
};

}  // namespace remos::net
