// Fluid-flow traffic engine with max-min fair bandwidth sharing.
//
// Flows are fluid streams over resolved forwarding paths. At any instant the
// engine assigns every active flow its max-min fair rate (progressive
// filling, honoring per-flow demand caps and shared-Ethernet segments). As
// simulated time advances, each traversed interface accumulates octets —
// exactly the counters the SNMP Collector samples — and finite transfers
// complete at the precise instant their last byte drains.
//
// The same max-min allocation problem is solved a second time, on measured
// data, by the Remos Modeler (core/maxmin); comparing the two is how the
// reproduction evaluates SNMP Collector accuracy (Figs 4-5). Both solvers
// share one water-filling kernel (core/waterfill); the engine's job here is
// to keep the problem *incremental*: per-flow resource lists and the
// resource capacity table persist across start/stop/completion, a
// per-directed-link index answers link-rate queries in O(flows on link),
// and resolved paths are cached per (src, dst) until the topology changes.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/waterfill.hpp"
#include "net/topology.hpp"
#include "sim/engine.hpp"

namespace remos::net {

using FlowId = std::uint64_t;

struct FlowSpec {
  NodeId src = kNone;
  NodeId dst = kNone;
  /// Application demand cap in bits/second; infinity = greedy (TCP bulk).
  double demand_bps = std::numeric_limits<double>::infinity();
  /// Transfer size in bytes; 0 = unbounded (runs until stop()).
  std::uint64_t bytes = 0;
  /// Invoked (from the simulation event loop) when a finite flow drains.
  std::function<void(FlowId)> on_complete;
};

struct FlowStats {
  sim::Time start_time = 0.0;
  sim::Time end_time = 0.0;  // completion or stop(); 0 while active
  std::uint64_t delivered_bytes = 0;
  bool completed = false;  // true: drained; false: stopped early / active
  /// Average achieved throughput in bits/second over the flow's lifetime.
  [[nodiscard]] double average_bps() const {
    const double dur = end_time - start_time;
    return dur > 0 ? static_cast<double>(delivered_bytes) * 8.0 / dur : 0.0;
  }
};

class FlowEngine {
 public:
  FlowEngine(sim::Engine& engine, Network& net);

  /// Start a flow; resolves the forwarding path immediately.
  FlowId start(FlowSpec spec);
  /// Stop an unbounded (or not-yet-finished) flow. No-op for unknown ids.
  void stop(FlowId id);

  [[nodiscard]] bool active(FlowId id) const { return flows_.contains(id); }
  [[nodiscard]] std::size_t active_count() const { return flows_.size(); }

  /// Current max-min rate of a flow in bits/second (0 for unknown ids).
  [[nodiscard]] double rate(FlowId id) const;

  /// Ground-truth aggregate rate currently crossing a directed link.
  /// O(flows on that link) via the per-directed-link flow index.
  [[nodiscard]] double directed_link_rate(LinkId link, bool forward) const;

  /// Lifetime statistics; available while active and after completion.
  /// Finished records are retained up to a bounded history (oldest flows
  /// age out first), so callers should read stats promptly.
  [[nodiscard]] std::optional<FlowStats> stats(FlowId id) const;

  /// Bring octet counters up to the current simulated time. Called
  /// automatically before any rate change; exposed so SNMP agents can
  /// sample fresh counters at arbitrary instants.
  void sync();

  /// Round-trip time estimate between two endpoints under the current
  /// load: per traversed hop (both directions), propagation latency plus
  /// an M/M/1-style queueing penalty `queue_scale * rho / (1 - rho)` with
  /// rho the directed link's current utilization (capped at 0.95). This is
  /// what a small ping-like probe would observe, and the source of the
  /// latency/jitter metric the paper lists as future work.
  [[nodiscard]] double current_rtt(NodeId src, NodeId dst, double queue_scale_s = 0.002) const;

  /// Total flows ever started.
  [[nodiscard]] std::uint64_t started_count() const { return next_id_ - 1; }

  /// Cumulative water-filling freezing rounds across all rate
  /// recomputations — the deterministic work counter the scaling bench
  /// pins (the fluid counterpart of core.maxmin.iterations_total).
  [[nodiscard]] std::uint64_t waterfill_rounds_total() const { return waterfill_rounds_total_; }

  /// Path-cache observability (tested by the invalidation tests).
  [[nodiscard]] std::uint64_t path_cache_hits() const { return path_cache_hits_; }
  [[nodiscard]] std::uint64_t path_cache_misses() const { return path_cache_misses_; }

 private:
  struct Flow {
    FlowSpec spec;
    std::vector<Hop> hops;
    std::vector<SegmentId> shared_segments;  // deduped shared segments crossed
    /// Water-filling resource keys (hop order, then shared segments),
    /// computed once at start(). Duplicates preserved: a resource crossed
    /// twice constrains the flow twice, as in the original solver.
    std::vector<std::uint32_t> resource_keys;
    double rate_bps = 0.0;
    double remaining_bytes = 0.0;  // only meaningful when spec.bytes > 0
    /// Sub-byte residue of delivered traffic, carried across syncs so
    /// interface octet counters don't systematically undercount.
    double octet_carry = 0.0;
    FlowStats stats;
  };

  void recompute_rates();
  void schedule_next_completion();
  void handle_completion_event();

  // ---- incremental state helpers ----
  /// Water-filling resource key layout: shared segments first (their count
  /// is fixed at finalize), then both directions of each link (links can
  /// be added by move_host without invalidating existing keys).
  [[nodiscard]] std::uint32_t segment_resource_key(SegmentId sid) const {
    return static_cast<std::uint32_t>(sid);
  }
  [[nodiscard]] std::uint32_t link_resource_key(LinkId link, bool forward) const {
    return static_cast<std::uint32_t>(net_.segment_count() + 2 * static_cast<std::size_t>(link) +
                                      (forward ? 0 : 1));
  }
  /// Rebuild the persistent resource capacity table (and grow the
  /// per-directed-link index) when the topology version changed.
  void ensure_resource_tables();
  /// Register / unregister a flow in the per-directed-link index.
  void index_flow(FlowId id, const Flow& flow);
  void unindex_flow(FlowId id, const Flow& flow);
  /// Cached resolve_path (invalidated when the topology version changes).
  [[nodiscard]] const PathResult& resolved_path(NodeId src, NodeId dst) const;

  /// Bound on retained finished-flow records (FIFO eviction by FlowId).
  static constexpr std::size_t kFinishedCap = 1 << 16;

  void record_finished(FlowId id, const FlowStats& stats);

  sim::Engine& engine_;
  Network& net_;
  // Ordered by FlowId: max-min problem assembly and rate copy-back iterate
  // this, so hash order would leak into float sums and event ordering.
  std::map<FlowId, Flow> flows_;
  std::map<FlowId, FlowStats> finished_;  // ordered: begin() is the oldest
  FlowId next_id_ = 1;
  sim::Time last_sync_ = 0.0;
  sim::EventId completion_event_ = 0;

  // ---- incremental solver state ----
  core::WaterfillSolver solver_;
  /// Capacity per resource key; rebuilt when net_.version() changes.
  std::vector<double> resource_capacity_;
  std::uint64_t tables_net_version_ = 0;
  bool tables_valid_ = false;
  /// CSR assembly arenas, reused across recomputes.
  std::vector<std::size_t> wf_offsets_;
  std::vector<std::uint32_t> wf_resources_;
  std::vector<double> wf_demand_;
  std::vector<double> wf_rates_;
  /// Earliest completion delta among finite flows, refreshed by every
  /// recompute (rates and remaining bytes are both current there), so
  /// schedule_next_completion is O(1).
  double earliest_completion_dt_ = std::numeric_limits<double>::infinity();
  /// Per directed link (2*link+dir): active FlowIds crossing it, ascending
  /// (ids are handed out monotonically, so appends keep the order — and
  /// rate sums visit flows in the same order the full scan did).
  std::vector<std::vector<FlowId>> link_flows_;
  std::uint64_t waterfill_rounds_total_ = 0;

  // ---- path cache (mutable: current_rtt is logically const) ----
  mutable std::unordered_map<std::uint64_t, PathResult> path_cache_;
  mutable std::uint64_t path_cache_net_version_ = 0;
  mutable bool path_cache_valid_ = false;
  mutable std::uint64_t path_cache_hits_ = 0;
  mutable std::uint64_t path_cache_misses_ = 0;
};

}  // namespace remos::net
