#include "net/traffic.hpp"

#include <stdexcept>

namespace remos::net {

// ---------------------------------------------------------------------------
// OnOffSource
// ---------------------------------------------------------------------------

OnOffSource::OnOffSource(sim::Engine& engine, FlowEngine& flows, sim::Rng rng, Params params)
    : engine_(engine), flows_(flows), rng_(rng), params_(params) {}

OnOffSource::~OnOffSource() { stop(); }

void OnOffSource::start() {
  if (running_) return;
  running_ = true;
  pending_ = engine_.after(rng_.exponential(params_.mean_off_s), [this] { enter_on(); });
}

void OnOffSource::stop() {
  if (!running_) return;
  running_ = false;
  if (pending_ != 0) {
    engine_.cancel(pending_);
    pending_ = 0;
  }
  if (flow_ != 0) {
    flows_.stop(flow_);
    flow_ = 0;
  }
}

void OnOffSource::enter_on() {
  if (!running_) return;
  FlowSpec spec;
  spec.src = params_.src;
  spec.dst = params_.dst;
  spec.demand_bps = params_.demand_bps;
  flow_ = flows_.start(std::move(spec));
  pending_ = engine_.after(rng_.exponential(params_.mean_on_s), [this] { enter_off(); });
}

void OnOffSource::enter_off() {
  if (!running_) return;
  if (flow_ != 0) {
    flows_.stop(flow_);
    flow_ = 0;
  }
  pending_ = engine_.after(rng_.exponential(params_.mean_off_s), [this] { enter_on(); });
}

// ---------------------------------------------------------------------------
// PoissonSource
// ---------------------------------------------------------------------------

PoissonSource::PoissonSource(sim::Engine& engine, FlowEngine& flows, sim::Rng rng, Params params)
    : engine_(engine), flows_(flows), rng_(rng), params_(params) {}

PoissonSource::~PoissonSource() { stop(); }

void PoissonSource::start() {
  if (running_) return;
  running_ = true;
  pending_ = engine_.after(rng_.exponential(1.0 / params_.arrivals_per_s), [this] { arrival(); });
}

void PoissonSource::stop() {
  if (!running_) return;
  running_ = false;
  if (pending_ != 0) {
    engine_.cancel(pending_);
    pending_ = 0;
  }
  // In-flight transfers drain on their own; the source only stops launching.
}

void PoissonSource::arrival() {
  if (!running_) return;
  FlowSpec spec;
  spec.src = params_.src;
  spec.dst = params_.dst;
  spec.demand_bps = params_.demand_bps;
  spec.bytes = static_cast<std::uint64_t>(rng_.pareto(params_.pareto_alpha, params_.min_bytes));
  flows_.start(std::move(spec));
  ++launched_;
  pending_ = engine_.after(rng_.exponential(1.0 / params_.arrivals_per_s), [this] { arrival(); });
}

// ---------------------------------------------------------------------------
// NetperfSession
// ---------------------------------------------------------------------------

NetperfSession::NetperfSession(sim::Engine& engine, FlowEngine& flows, NodeId src, NodeId dst,
                               std::vector<NetperfBurst> bursts, double sample_interval_s)
    : engine_(engine),
      flows_(flows),
      src_(src),
      dst_(dst),
      bursts_(std::move(bursts)),
      sample_interval_s_(sample_interval_s) {}

NetperfSession::~NetperfSession() {
  if (sampler_ != 0) engine_.cancel_task(sampler_);
}

void NetperfSession::run() {
  if (scheduled_) throw std::logic_error("NetperfSession::run called twice");
  scheduled_ = true;
  throughputs_.assign(bursts_.size(), 0.0);
  for (std::size_t i = 0; i < bursts_.size(); ++i) {
    const NetperfBurst& b = bursts_[i];
    engine_.at(b.start, [this, i] {
      FlowSpec spec;
      spec.src = src_;
      spec.dst = dst_;
      spec.demand_bps = bursts_[i].demand_bps;
      active_flow_ = flows_.start(std::move(spec));
      const FlowId flow = active_flow_;
      engine_.after(bursts_[i].duration_s, [this, i, flow] {
        auto st = flows_.stats(flow);
        flows_.stop(flow);
        st = flows_.stats(flow);  // refresh: stop() finalizes delivered bytes
        if (st) throughputs_[i] = st->average_bps();
        if (active_flow_ == flow) active_flow_ = 0;
      });
    });
  }
  sampler_ = engine_.every(sample_interval_s_, [this] {
    history_.add(engine_.now(), active_flow_ != 0 ? flows_.rate(active_flow_) : 0.0);
  });
}

}  // namespace remos::net
