#include "net/flows.hpp"

#include <algorithm>
#include <cmath>

#include "core/audit.hpp"
#include "sim/thread_pool.hpp"

namespace remos::net {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
/// Residual bytes below this are considered drained. Sub-byte residues are
/// physically meaningless, and chasing them risks scheduling ever-smaller
/// completion deltas that underflow the simulated clock's resolution.
constexpr double kByteEpsilon = 0.5;
/// Completion events are never scheduled closer than this, so the event
/// loop always advances the clock (guards an FP livelock at large t).
constexpr double kMinCompletionDt = 1e-9;

}  // namespace

FlowEngine::FlowEngine(sim::Engine& engine, Network& net) : engine_(engine), net_(net) {
  last_sync_ = engine_.now();
  // Publish the empty view so lock-free readers never observe a null one.
  rates_view_.store(std::make_shared<const RatesView>(), std::memory_order_release);
}

void FlowEngine::set_thread_pool(sim::ThreadPool* pool, std::size_t min_flows) {
  std::lock_guard lock(mu_);
  pool_ = pool;
  parallel_min_flows_ = min_flows;
}

const PathResult& FlowEngine::resolved_path(NodeId src, NodeId dst) const {
  std::lock_guard lock(path_mu_);
  if (!path_cache_valid_ || path_cache_net_version_ != net_.version()) {
    path_cache_.clear();
    path_cache_net_version_ = net_.version();
    path_cache_valid_ = true;
  }
  const std::uint64_t key = (static_cast<std::uint64_t>(src) << 32) | dst;
  if (auto it = path_cache_.find(key); it != path_cache_.end()) {
    ++path_cache_hits_;
    return it->second;
  }
  ++path_cache_misses_;
  // resolve_path throws for unroutable pairs, so only successes are cached.
  auto [it, inserted] = path_cache_.emplace(key, net_.resolve_path(src, dst));
  return it->second;
}

// remos-requires(mu_)
void FlowEngine::ensure_resource_tables() {
  if (tables_valid_ && tables_net_version_ == net_.version()) return;
  const std::size_t segs = net_.segment_count();
  resource_capacity_.assign(segs + 2 * net_.link_count(), 0.0);
  for (const Segment& s : net_.segments()) {
    resource_capacity_[segment_resource_key(s.id)] = s.shared_capacity_bps;
  }
  for (const Link& l : net_.links()) {
    resource_capacity_[link_resource_key(l.id, true)] = l.capacity_bps;
    resource_capacity_[link_resource_key(l.id, false)] = l.capacity_bps;
  }
  // Rebuild the directed-link index from scratch at exactly the current
  // link count, then re-register every active flow. Growing in place would
  // keep stale per-link entries alive across a version change (and a link
  // id could alias a different link after reconfiguration).
  const bool rebuild = tables_valid_;
  link_flows_.assign(2 * net_.link_count(), {});
  for (const auto& [id, f] : flows_) {
    for (const Hop& h : f.hops) {
      const std::size_t k = 2 * static_cast<std::size_t>(h.link) + (h.forward ? 0 : 1);
      REMOS_CHECK(k < link_flows_.size(),
                  "FlowEngine: active flow crosses a link the topology no longer has");
    }
    index_flow(id, f);
  }
  if (rebuild) ++link_index_rebuilds_;
  tables_net_version_ = net_.version();
  tables_valid_ = true;
}

// remos-requires(mu_)
void FlowEngine::index_flow(FlowId id, const Flow& flow) {
  for (const Hop& h : flow.hops) {
    const std::size_t k = 2 * static_cast<std::size_t>(h.link) + (h.forward ? 0 : 1);
    if (link_flows_.size() <= k) link_flows_.resize(k + 1);
    std::vector<FlowId>& v = link_flows_[k];
    // A flow counts once per directed link however many hops cross it;
    // within one registration only this id can be at the back.
    if (v.empty() || v.back() != id) v.push_back(id);
  }
}

// remos-requires(mu_)
void FlowEngine::unindex_flow(FlowId id, const Flow& flow) {
  for (const Hop& h : flow.hops) {
    const std::size_t k = 2 * static_cast<std::size_t>(h.link) + (h.forward ? 0 : 1);
    if (k >= link_flows_.size()) continue;
    std::vector<FlowId>& v = link_flows_[k];
    const auto it = std::lower_bound(v.begin(), v.end(), id);
    if (it != v.end() && *it == id) v.erase(it);
  }
}

FlowId FlowEngine::start(FlowSpec spec) {
  std::lock_guard lock(mu_);
  sync_locked();
  Flow f;
  const PathResult& path = resolved_path(spec.src, spec.dst);
  f.hops = path.hops;
  // A flow crossing a shared (hub) segment loads the collision domain once,
  // however many hops it takes inside it.
  for (const Hop& h : f.hops) {
    SegmentId sid = net_.link(h.link).segment;
    const Segment& s = net_.segment(sid);
    if (s.shared && s.shared_capacity_bps > 0 &&
        std::find(f.shared_segments.begin(), f.shared_segments.end(), sid) ==
            f.shared_segments.end()) {
      f.shared_segments.push_back(sid);
    }
  }
  // Water-filling resource keys, fixed for the flow's lifetime: one per
  // hop (duplicates preserved — each crossing is a constraint), then one
  // per crossed shared segment. Order matches the historical solver's
  // per-recompute `uses` list so float accumulation sequences are
  // unchanged.
  f.resource_keys.reserve(f.hops.size() + f.shared_segments.size());
  for (const Hop& h : f.hops) f.resource_keys.push_back(link_resource_key(h.link, h.forward));
  for (SegmentId sid : f.shared_segments) f.resource_keys.push_back(segment_resource_key(sid));
  f.remaining_bytes = static_cast<double>(spec.bytes);
  f.stats.start_time = engine_.now();
  f.spec = std::move(spec);

  FlowId id = next_id_++;
  auto [it, inserted] = flows_.emplace(id, std::move(f));
  REMOS_CHECK(inserted, "FlowEngine: duplicate flow id");
  index_flow(id, it->second);
  recompute_rates();
  // remos-analyze: allow(lock): only *schedules* handle_completion_event; the lambda runs later from the event loop, after mu_ is released.
  schedule_next_completion();
  return id;
}

void FlowEngine::stop(FlowId id) {
  std::lock_guard lock(mu_);
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  sync_locked();
  Flow& f = it->second;
  // Flush the sub-octet carry (rounded to nearest) so the interface
  // counters an SNMP agent reads reconcile with the flow's delivered
  // bytes; silently dropping it made early-stopped flows undercount.
  credit_octets(f, static_cast<std::uint64_t>(f.octet_carry + 0.5));
  f.octet_carry = 0.0;
  f.stats.end_time = engine_.now();
  f.stats.completed = false;
  record_finished(id, f.stats);
  unindex_flow(id, f);
  flows_.erase(it);
  recompute_rates();
  // remos-analyze: allow(lock): only *schedules* handle_completion_event; the lambda runs later from the event loop, after mu_ is released.
  schedule_next_completion();
}

double FlowEngine::rate(FlowId id) const {
  const std::shared_ptr<const RatesView> view = rates_view_.load(std::memory_order_acquire);
  const auto it = std::lower_bound(
      view->flow_rates.begin(), view->flow_rates.end(), id,
      [](const std::pair<FlowId, double>& entry, FlowId key) { return entry.first < key; });
  return it != view->flow_rates.end() && it->first == id ? it->second : 0.0;
}

double FlowEngine::directed_link_rate(LinkId link, bool forward) const {
  const std::shared_ptr<const RatesView> view = rates_view_.load(std::memory_order_acquire);
  const std::size_t k = 2 * static_cast<std::size_t>(link) + (forward ? 0 : 1);
  return k < view->directed_rate_bps.size() ? view->directed_rate_bps[k] : 0.0;
}

// remos-requires(mu_)
double FlowEngine::directed_link_rate_locked(LinkId link, bool forward) const {
  const std::size_t k = 2 * static_cast<std::size_t>(link) + (forward ? 0 : 1);
  if (k >= link_flows_.size()) return 0.0;
  double total = 0.0;
  // Ascending FlowId, the order the historical full-table scan summed in.
  for (const FlowId id : link_flows_[k]) {
    const auto it = flows_.find(id);
    REMOS_CHECK(it != flows_.end(), "FlowEngine: link index entry for inactive flow");
    total += it->second.rate_bps;
  }
  return total;
}

std::optional<FlowStats> FlowEngine::stats(FlowId id) const {
  std::lock_guard lock(mu_);
  if (auto it = flows_.find(id); it != flows_.end()) return it->second.stats;
  if (auto it = finished_.find(id); it != finished_.end()) return it->second;
  return std::nullopt;
}

// remos-requires(mu_)
void FlowEngine::record_finished(FlowId id, const FlowStats& stats) {
  finished_.insert_or_assign(id, stats);
  while (finished_.size() > kFinishedCap) finished_.erase(finished_.begin());
}

// remos-requires(mu_)
void FlowEngine::credit_octets(Flow& flow, std::uint64_t octets) {
  if (octets == 0) return;
  flow.stats.delivered_bytes += octets;
  for (const Hop& h : flow.hops) {
    net_.egress_interface(h).out_octets += octets;
    net_.ingress_interface(h).in_octets += octets;
  }
}

void FlowEngine::sync() {
  std::lock_guard lock(mu_);
  sync_locked();
}

// remos-requires(mu_)
void FlowEngine::sync_locked() {
  const sim::Time now = engine_.now();
  const double dt = now - last_sync_;
  if (dt <= 0) {
    last_sync_ = now;
    return;
  }
  for (auto& [id, f] : flows_) {
    (void)id;
    if (f.rate_bps <= 0) continue;
    double bytes = f.rate_bps / 8.0 * dt;
    if (f.spec.bytes > 0) {
      bytes = std::min(bytes, f.remaining_bytes);
      f.remaining_bytes -= bytes;
    }
    // Octet counters are integral; carry the sub-octet residue to the next
    // sync instead of truncating it away, so many small syncs deliver the
    // same octet totals as one large one (bounded drift < 1 octet, and the
    // residue is flushed when the flow completes or stops).
    f.octet_carry += bytes;
    const auto whole = static_cast<std::uint64_t>(f.octet_carry);
    f.octet_carry -= static_cast<double>(whole);
    credit_octets(f, whole);
  }
  last_sync_ = now;
}

double FlowEngine::current_rtt(NodeId src, NodeId dst, double queue_scale_s) const {
  const PathResult& path = resolved_path(src, dst);
  // Per-link loads come from the published view, so an RTT probe never
  // contends with rate recomputation (the view holds exactly the loads the
  // locked scan would have summed).
  const std::shared_ptr<const RatesView> view = rates_view_.load(std::memory_order_acquire);
  double rtt = 0.0;
  for (const Hop& h : path.hops) {
    const Link& l = net_.link(h.link);
    rtt += 2.0 * l.latency_s;
    for (const bool dir : {h.forward, !h.forward}) {
      const std::size_t k = 2 * static_cast<std::size_t>(l.id) + (dir ? 0 : 1);
      const double load = k < view->directed_rate_bps.size() ? view->directed_rate_bps[k] : 0.0;
      // A zero-capacity link has no headroom at all: treat it as fully
      // utilized (the cap) rather than dividing by zero, which fed NaN/inf
      // into every RTT downstream of this hop.
      const double rho =
          l.capacity_bps > 0.0 ? std::min(load / l.capacity_bps, 0.95) : 0.95;
      rtt += queue_scale_s * rho / (1.0 - rho);
    }
  }
  REMOS_CHECK(std::isfinite(rtt), "FlowEngine: RTT estimate must be finite");
  return rtt;
}

// remos-requires(mu_)
void FlowEngine::recompute_rates() {
  // Assemble the water-filling problem from persistent per-flow resource
  // lists and the persistent capacity table — the historical implementation
  // rebuilt per-solve hash maps from the hop lists on every call. The CSR
  // arenas keep their capacity across recomputes, so the steady state
  // allocates nothing.
  ensure_resource_tables();
  const std::size_t nf = flows_.size();
  wf_offsets_.clear();
  wf_resources_.clear();
  wf_demand_.clear();
  wf_offsets_.push_back(0);
  for (const auto& [id, f] : flows_) {
    (void)id;
    wf_resources_.insert(wf_resources_.end(), f.resource_keys.begin(), f.resource_keys.end());
    wf_offsets_.push_back(wf_resources_.size());
    wf_demand_.push_back(f.spec.demand_bps);
  }
  wf_rates_.assign(nf, 0.0);
  core::WaterfillOptions options;
  options.monotone_level = true;
  if (pool_ != nullptr) {
    // Opt-in partitioned parallel solve (set_thread_pool). mu_ (5) is held
    // across the dispatch; ThreadPool::mu_ is order 10, so the nesting is
    // strictly increasing.
    options.partition_min_flows = parallel_min_flows_;
    options.pool = pool_;
  }
  const core::WaterfillStats stats =
      solver_.solve(resource_capacity_, wf_offsets_, wf_resources_, wf_demand_, wf_rates_, options);
  waterfill_rounds_total_ += stats.rounds;

  // Copy rates back (same FlowId order the problem was assembled in) and
  // refresh the earliest-completion delta so scheduling stays O(1).
  double earliest = kInf;
  std::size_t dense = 0;
  for (auto& [id, f] : flows_) {
    (void)id;
    f.rate_bps = wf_rates_[dense++];
    if (f.spec.bytes == 0 || f.rate_bps <= 0) continue;
    earliest = std::min(earliest, f.remaining_bytes / (f.rate_bps / 8.0));
  }
  earliest_completion_dt_ = earliest;
  publish_rates_view();
}

// remos-requires(mu_)
void FlowEngine::publish_rates_view() {
  // remos-analyze: allow(hotpath): RCU publication — every recompute builds a fresh immutable view for readers still holding the old one; the allocation IS the publication protocol
  auto view = std::make_shared<RatesView>();
  view->flow_rates.reserve(flows_.size());
  for (const auto& [id, f] : flows_) view->flow_rates.emplace_back(id, f.rate_bps);
  view->directed_rate_bps.resize(link_flows_.size());
  for (std::size_t k = 0; k < link_flows_.size(); ++k) {
    view->directed_rate_bps[k] =
        directed_link_rate_locked(static_cast<LinkId>(k / 2), (k % 2) == 0);
  }
  rates_view_.store(std::move(view), std::memory_order_release);
}

// remos-requires(mu_)
void FlowEngine::schedule_next_completion() {
  if (completion_event_ != 0) {
    engine_.cancel(completion_event_);
    completion_event_ = 0;
  }
  // recompute_rates (which every call site runs first) left the earliest
  // completion delta among finite flows here.
  double earliest = earliest_completion_dt_;
  if (!std::isfinite(earliest)) return;
  earliest = std::max(earliest, kMinCompletionDt);
  // remos-analyze: allow(lock): only *schedules* handle_completion_event; the lambda runs later from the event loop, after mu_ is released.
  completion_event_ = engine_.after(earliest, [this] { handle_completion_event(); });
}

void FlowEngine::handle_completion_event() {
  std::vector<std::pair<FlowId, std::function<void(FlowId)>>> callbacks;
  {
    std::lock_guard lock(mu_);
    completion_event_ = 0;
    sync_locked();
    for (auto it = flows_.begin(); it != flows_.end();) {
      Flow& f = it->second;
      if (f.spec.bytes > 0 && f.remaining_bytes <= kByteEpsilon) {
        f.stats.end_time = engine_.now();
        f.stats.completed = true;
        // Deliver the fractional tail as real octets: the flow drained all
        // spec.bytes, so the interfaces it crossed must show them too.
        // (Historically delivered_bytes was forced to spec.bytes while the
        // interface counters kept only the truncated sync total, so SNMP
        // octets never reconciled with completed transfers.)
        REMOS_CHECK(f.stats.delivered_bytes <= f.spec.bytes,
                    "FlowEngine: completed flow overdelivered");
        credit_octets(f, f.spec.bytes - f.stats.delivered_bytes);
        f.octet_carry = 0.0;
        record_finished(it->first, f.stats);
        if (f.spec.on_complete) callbacks.emplace_back(it->first, std::move(f.spec.on_complete));
        unindex_flow(it->first, f);
        it = flows_.erase(it);
      } else {
        ++it;
      }
    }
    recompute_rates();
    // remos-analyze: allow(lock): only *schedules* handle_completion_event; the lambda runs later from the event loop, after mu_ is released.
    schedule_next_completion();
  }
  // Run callbacks after unlocking: they may start/stop flows reentrantly.
  for (auto& [id, cb] : callbacks) cb(id);
}

}  // namespace remos::net
