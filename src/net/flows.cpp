#include "net/flows.hpp"

#include <algorithm>
#include <cmath>

namespace remos::net {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
/// Residual bytes below this are considered drained. Sub-byte residues are
/// physically meaningless, and chasing them risks scheduling ever-smaller
/// completion deltas that underflow the simulated clock's resolution.
constexpr double kByteEpsilon = 0.5;
/// Completion events are never scheduled closer than this, so the event
/// loop always advances the clock (guards an FP livelock at large t).
constexpr double kMinCompletionDt = 1e-9;

}  // namespace

FlowEngine::FlowEngine(sim::Engine& engine, Network& net) : engine_(engine), net_(net) {
  last_sync_ = engine_.now();
}

FlowId FlowEngine::start(FlowSpec spec) {
  sync();
  Flow f;
  PathResult path = net_.resolve_path(spec.src, spec.dst);
  f.hops = std::move(path.hops);
  // A flow crossing a shared (hub) segment loads the collision domain once,
  // however many hops it takes inside it.
  for (const Hop& h : f.hops) {
    SegmentId sid = net_.link(h.link).segment;
    const Segment& s = net_.segment(sid);
    if (s.shared && s.shared_capacity_bps > 0 &&
        std::find(f.shared_segments.begin(), f.shared_segments.end(), sid) ==
            f.shared_segments.end()) {
      f.shared_segments.push_back(sid);
    }
  }
  f.remaining_bytes = static_cast<double>(spec.bytes);
  f.stats.start_time = engine_.now();
  f.spec = std::move(spec);

  FlowId id = next_id_++;
  flows_.emplace(id, std::move(f));
  recompute_rates();
  schedule_next_completion();
  return id;
}

void FlowEngine::stop(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  sync();
  it->second.stats.end_time = engine_.now();
  it->second.stats.completed = false;
  record_finished(id, it->second.stats);
  flows_.erase(it);
  recompute_rates();
  schedule_next_completion();
}

double FlowEngine::rate(FlowId id) const {
  auto it = flows_.find(id);
  return it == flows_.end() ? 0.0 : it->second.rate_bps;
}

double FlowEngine::directed_link_rate(LinkId link, bool forward) const {
  double total = 0.0;
  for (const auto& [id, f] : flows_) {
    (void)id;
    for (const Hop& h : f.hops) {
      if (h.link == link && h.forward == forward) {
        total += f.rate_bps;
        break;
      }
    }
  }
  return total;
}

std::optional<FlowStats> FlowEngine::stats(FlowId id) const {
  if (auto it = flows_.find(id); it != flows_.end()) return it->second.stats;
  if (auto it = finished_.find(id); it != finished_.end()) return it->second;
  return std::nullopt;
}

void FlowEngine::record_finished(FlowId id, const FlowStats& stats) {
  finished_.insert_or_assign(id, stats);
  while (finished_.size() > kFinishedCap) finished_.erase(finished_.begin());
}

void FlowEngine::sync() {
  const sim::Time now = engine_.now();
  const double dt = now - last_sync_;
  if (dt <= 0) {
    last_sync_ = now;
    return;
  }
  for (auto& [id, f] : flows_) {
    (void)id;
    if (f.rate_bps <= 0) continue;
    double bytes = f.rate_bps / 8.0 * dt;
    if (f.spec.bytes > 0) {
      bytes = std::min(bytes, f.remaining_bytes);
      f.remaining_bytes -= bytes;
    }
    const auto whole = static_cast<std::uint64_t>(bytes);
    f.stats.delivered_bytes += whole;
    for (const Hop& h : f.hops) {
      net_.egress_interface(h).out_octets += whole;
      net_.ingress_interface(h).in_octets += whole;
    }
  }
  last_sync_ = now;
}

double FlowEngine::current_rtt(NodeId src, NodeId dst, double queue_scale_s) const {
  const PathResult path = net_.resolve_path(src, dst);
  double rtt = 0.0;
  for (const Hop& h : path.hops) {
    const Link& l = net_.link(h.link);
    rtt += 2.0 * l.latency_s;
    for (const bool dir : {h.forward, !h.forward}) {
      const double load = directed_link_rate(l.id, dir);
      const double rho = std::min(load / l.capacity_bps, 0.95);
      rtt += queue_scale_s * rho / (1.0 - rho);
    }
  }
  return rtt;
}

void FlowEngine::recompute_rates() {
  // Progressive filling (water-filling) with demand caps.
  //
  // Resources: each directed link plus each shared segment. All unfrozen
  // flows share a common rising "water level"; a resource saturates when
  // frozen_usage + level * unfrozen_count == capacity, at which point every
  // unfrozen flow crossing it freezes at the current level. Flows whose
  // demand cap is reached freeze at their demand.
  struct Resource {
    double capacity;
    double frozen_usage = 0.0;
    std::uint32_t unfrozen = 0;
  };
  // Key: directed link -> 2*link+dir; shared segment -> offset + segment id.
  const std::size_t seg_offset = net_.link_count() * 2;
  std::unordered_map<std::size_t, Resource> resources;
  std::unordered_map<FlowId, std::vector<std::size_t>> uses;

  for (auto& [id, f] : flows_) {
    auto& u = uses[id];
    for (const Hop& h : f.hops) {
      const std::size_t key = static_cast<std::size_t>(h.link) * 2 + (h.forward ? 0 : 1);
      resources.try_emplace(key, Resource{net_.link(h.link).capacity_bps});
      u.push_back(key);
    }
    for (SegmentId sid : f.shared_segments) {
      const std::size_t key = seg_offset + sid;
      resources.try_emplace(key, Resource{net_.segment(sid).shared_capacity_bps});
      u.push_back(key);
    }
  }
  for (auto& [key, r] : resources) {
    (void)key;
    r.unfrozen = 0;
    r.frozen_usage = 0.0;
  }

  std::unordered_map<FlowId, bool> frozen;
  for (auto& [id, f] : flows_) {
    frozen[id] = false;
    f.rate_bps = 0.0;
    for (std::size_t key : uses[id]) ++resources[key].unfrozen;
  }

  std::size_t unfrozen_flows = flows_.size();
  double level = 0.0;
  while (unfrozen_flows > 0) {
    // Next saturation level among resources, and next demand cap.
    double next_level = kInf;
    for (const auto& [key, r] : resources) {
      (void)key;
      if (r.unfrozen == 0) continue;
      const double sat = (r.capacity - r.frozen_usage) / static_cast<double>(r.unfrozen);
      next_level = std::min(next_level, sat);
    }
    for (const auto& [id, f] : flows_) {
      if (!frozen[id]) next_level = std::min(next_level, f.spec.demand_bps);
    }
    if (!std::isfinite(next_level)) {
      // Only unconstrained flows remain (shouldn't happen: every flow
      // crosses at least one finite-capacity link). Freeze at 0 defensively.
      break;
    }
    level = std::max(level, next_level);

    // Freeze demand-capped flows first, then flows on saturated resources.
    std::vector<FlowId> to_freeze;
    for (const auto& [id, f] : flows_) {
      if (frozen[id]) continue;
      if (f.spec.demand_bps <= level + 1e-9) {
        to_freeze.push_back(id);
        continue;
      }
      for (std::size_t key : uses[id]) {
        const Resource& r = resources[key];
        const double sat = (r.capacity - r.frozen_usage) / static_cast<double>(r.unfrozen);
        if (sat <= level + 1e-9) {
          to_freeze.push_back(id);
          break;
        }
      }
    }
    if (to_freeze.empty()) break;  // numerical guard
    for (FlowId id : to_freeze) {
      Flow& f = flows_.at(id);
      const double r = std::min(level, f.spec.demand_bps);
      f.rate_bps = r;
      frozen[id] = true;
      --unfrozen_flows;
      for (std::size_t key : uses[id]) {
        Resource& res = resources[key];
        res.frozen_usage += r;
        --res.unfrozen;
      }
    }
  }
}

void FlowEngine::schedule_next_completion() {
  if (completion_event_ != 0) {
    engine_.cancel(completion_event_);
    completion_event_ = 0;
  }
  double earliest = kInf;
  for (const auto& [id, f] : flows_) {
    (void)id;
    if (f.spec.bytes == 0 || f.rate_bps <= 0) continue;
    earliest = std::min(earliest, f.remaining_bytes / (f.rate_bps / 8.0));
  }
  if (!std::isfinite(earliest)) return;
  earliest = std::max(earliest, kMinCompletionDt);
  completion_event_ = engine_.after(earliest, [this] { handle_completion_event(); });
}

void FlowEngine::handle_completion_event() {
  completion_event_ = 0;
  sync();
  std::vector<std::pair<FlowId, std::function<void(FlowId)>>> callbacks;
  for (auto it = flows_.begin(); it != flows_.end();) {
    Flow& f = it->second;
    if (f.spec.bytes > 0 && f.remaining_bytes <= kByteEpsilon) {
      f.stats.end_time = engine_.now();
      f.stats.completed = true;
      // Account the fractional tail byte so delivered == requested.
      f.stats.delivered_bytes = f.spec.bytes;
      record_finished(it->first, f.stats);
      if (f.spec.on_complete) callbacks.emplace_back(it->first, std::move(f.spec.on_complete));
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  recompute_rates();
  schedule_next_completion();
  // Run callbacks last: they may start/stop flows reentrantly.
  for (auto& [id, cb] : callbacks) cb(id);
}

}  // namespace remos::net
