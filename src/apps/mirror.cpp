#include "apps/mirror.hpp"

#include <algorithm>
#include <numeric>

namespace remos::apps {

MirrorClient::MirrorClient(sim::Engine& engine, net::FlowEngine& flows, core::Modeler& modeler,
                           net::NodeId client_host, net::Ipv4Address client_addr,
                           std::vector<MirrorServer> servers, std::uint64_t file_bytes)
    : engine_(engine),
      flows_(flows),
      modeler_(modeler),
      client_host_(client_host),
      client_addr_(client_addr),
      servers_(std::move(servers)),
      file_bytes_(file_bytes) {}

double MirrorClient::download_from(net::NodeId server) const {
  bool done = false;
  net::FlowSpec spec;
  spec.src = server;  // data flows server -> client
  spec.dst = client_host_;
  spec.bytes = file_bytes_;
  spec.on_complete = [&done](net::FlowId) { done = true; };
  const net::FlowId id = flows_.start(std::move(spec));
  // Drive the simulation until the transfer drains (bounded: even 1 kb/s
  // moves 3 MB within this horizon).
  const sim::Time deadline = engine_.now() + 7 * 24 * 3600.0;
  while (!done && engine_.now() < deadline) engine_.advance(1.0);
  const auto stats = flows_.stats(id);
  if (!done) flows_.stop(id);
  return stats ? stats->average_bps() : 0.0;
}

MirrorTrialResult MirrorClient::run_trial() {
  MirrorTrialResult result;

  // Ask Remos for the available bandwidth to every replica in one query.
  core::FlowQuery query;
  for (const MirrorServer& s : servers_) {
    query.flows.push_back(core::FlowRequest{.src = s.addr, .dst = client_addr_});
  }
  const auto infos = modeler_.flow_query(query);
  result.remos_query_time_s = modeler_.last_query_cost_s();
  result.remos_bandwidth_bps.resize(servers_.size(), 0.0);
  for (std::size_t i = 0; i < servers_.size() && i < infos.size(); ++i) {
    result.remos_bandwidth_bps[i] = infos[i].available_bps;
  }

  // Rank servers by reported bandwidth, best first (stable, deterministic).
  result.remos_ranking.resize(servers_.size());
  std::iota(result.remos_ranking.begin(), result.remos_ranking.end(), std::size_t{0});
  std::stable_sort(result.remos_ranking.begin(), result.remos_ranking.end(),
                   [&](std::size_t a, std::size_t b) {
                     return result.remos_bandwidth_bps[a] > result.remos_bandwidth_bps[b];
                   });

  // Download from every server, best-ranked first (the paper's evaluation
  // methodology), recording the achieved throughput.
  result.achieved_bps.resize(servers_.size(), 0.0);
  for (std::size_t rank = 0; rank < result.remos_ranking.size(); ++rank) {
    const std::size_t idx = result.remos_ranking[rank];
    result.achieved_bps[idx] = download_from(servers_[idx].host);
  }

  result.actual_best = static_cast<std::size_t>(
      std::max_element(result.achieved_bps.begin(), result.achieved_bps.end()) -
      result.achieved_bps.begin());
  const std::size_t picked = result.remos_ranking.front();
  result.remos_correct = (picked == result.actual_best);

  // Effective bandwidth of the picked server includes the Remos query time.
  const double picked_bps = result.achieved_bps[picked];
  if (picked_bps > 0) {
    const double transfer_s = static_cast<double>(file_bytes_) * 8.0 / picked_bps;
    result.effective_bps =
        static_cast<double>(file_bytes_) * 8.0 / (transfer_s + result.remos_query_time_s);
  }
  return result;
}

}  // namespace remos::apps
