// Adaptive video streaming application (§5.5).
//
// "The video server is able to adapt the outgoing video stream to the
// available bandwidth by intelligently dropping frames of lower importance
// [Hemy et al.]. It thereby maximizes the numbers of frames that are
// transmitted correctly."
//
// Model: the movie is a sequence of one-second chunks; each chunk holds a
// GOP-like frame mix (I/P/B) whose sizes vary with scene content. Per
// chunk the server picks the largest frame subset that fits its current
// bandwidth estimate (dropping B before P before I), ships it as a fluid
// transfer with a one-second deadline, and refreshes the estimate from the
// achieved rate. Frames whose bytes arrive past the deadline are lost.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/modeler.hpp"
#include "net/flows.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace remos::apps {

enum class FrameType : std::uint8_t { kI = 0, kP = 1, kB = 2 };

struct VideoFrame {
  FrameType type = FrameType::kB;
  std::uint32_t bytes = 0;
};

/// One second of video.
struct VideoChunk {
  std::vector<VideoFrame> frames;
  [[nodiscard]] std::uint64_t total_bytes() const;
};

/// Synthesized movie: I/P/B structure with content-driven size variation.
struct Movie {
  std::string title;
  std::vector<VideoChunk> chunks;  // one per second
  [[nodiscard]] std::size_t frame_count() const;
  [[nodiscard]] double mean_rate_bps() const;

  /// Generate a movie: `seconds` chunks at `fps`, around `mean_rate_bps`,
  /// with slow content variation. Deterministic given rng.
  static Movie generate(std::string title, std::size_t seconds, double mean_rate_bps,
                        sim::Rng& rng, std::size_t fps = 24);
};

struct StreamResult {
  std::size_t frames_total = 0;
  std::size_t frames_sent = 0;
  std::size_t frames_received_correctly = 0;
  double duration_s = 0.0;
  /// Path transfer rate per chunk (delivered bits / transfer time) — what
  /// the adaptive server's estimator tracks.
  std::vector<double> chunk_rate_bps;
  /// Application-perceived goodput per chunk-second (delivered bits /
  /// chunk duration) — what the paper's Fig 11 plots.
  std::vector<double> chunk_goodput_bps;
  /// Per-chunk arrival timestamps of the chunk's last byte (relative to
  /// chunk start) — lets callers compute windowed bandwidth averages.
  std::vector<double> chunk_completion_s;
};

struct VideoServerConfig {
  /// Initial bandwidth estimate (e.g. from a Remos flow query).
  double initial_estimate_bps = 1e6;
  /// EWMA weight for refreshing the estimate from achieved rates.
  double estimate_alpha = 0.5;
  /// Safety factor applied to the estimate when selecting frames.
  double headroom = 0.95;
  /// Deadline slack: a chunk's frames count as correct when its transfer
  /// finishes within chunk duration * (1 + slack).
  double deadline_slack = 0.05;
};

/// Stream a movie from `server` to `client` over the fluid network,
/// adapting per chunk. Drives the simulation forward.
[[nodiscard]] StreamResult stream_movie(sim::Engine& engine, net::FlowEngine& flows,
                                        net::NodeId server, net::NodeId client,
                                        const Movie& movie, const VideoServerConfig& config);

/// Windowed average of the application-perceived bandwidth (Fig 11):
/// averages chunk rates over `window_s`-second windows.
[[nodiscard]] std::vector<double> windowed_bandwidth(const StreamResult& result, double window_s);

}  // namespace remos::apps
