#include "apps/testbed.hpp"

#include <stdexcept>

namespace remos::apps {

std::function<std::optional<std::uint64_t>(net::Ipv4Address)> make_arp(const net::Network& net) {
  return [&net](net::Ipv4Address addr) -> std::optional<std::uint64_t> {
    const net::NodeId id = net.node_by_ip(addr);
    if (id == net::kNone) return std::nullopt;
    return net.node(id).mac;
  };
}

// ---------------------------------------------------------------------------
// LanTestbed
// ---------------------------------------------------------------------------

LanTestbed::LanTestbed() : LanTestbed(Params{}) {}

LanTestbed::LanTestbed(Params p) : params(p) {
  router = net.add_router("router");
  switches.reserve(p.switches);
  for (std::size_t i = 0; i < p.switches; ++i) {
    switches.push_back(net.add_switch("sw" + std::to_string(i)));
    if (i == 0) {
      net.connect(router, switches[0], p.uplink_bps);
    } else {
      net.connect(switches[i - 1], switches[i], p.trunk_bps);
    }
  }
  hosts.reserve(p.hosts);
  for (std::size_t i = 0; i < p.hosts; ++i) {
    hosts.push_back(net.add_host("h" + std::to_string(i)));
    net.connect(hosts.back(), switches[i % p.switches], p.host_link_bps);
  }
  net.finalize(*net::Ipv4Prefix::parse(p.site_prefix));

  flows = std::make_unique<net::FlowEngine>(engine, net);
  agents = std::make_unique<snmp::AgentRegistry>(net, sim::Rng(p.seed).fork("agents"));
  agents->set_before_read([this] { flows->sync(); });

  core::BridgeCollectorConfig bcfg;
  for (net::NodeId sw : switches) bcfg.switches.push_back(net.node(sw).primary_address());
  bcfg.arp = make_arp(net);
  bcfg.location_check_interval_s = p.location_check_interval_s;
  bridge = std::make_unique<core::BridgeCollector>(engine, *agents, std::move(bcfg));

  const net::SegmentId lan_segment = net.segment_of(hosts.front(), 1);
  core::SnmpCollectorConfig scfg;
  scfg.name = "campus-snmp";
  scfg.poll_interval_s = p.poll_interval_s;
  scfg.domain = {net.segment(lan_segment).prefix};
  scfg.subnets.push_back(core::SnmpCollectorConfig::SubnetInfo{
      net.segment(lan_segment).prefix, net.node(router).primary_address(), bridge.get(), false,
      0.0});
  collector = std::make_unique<core::SnmpCollector>(engine, *agents, std::move(scfg));
}

std::vector<net::Ipv4Address> LanTestbed::host_addrs(std::size_t count) const {
  std::vector<net::Ipv4Address> out;
  count = std::min(count, hosts.size());
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(addr(hosts[i]));
  return out;
}

// ---------------------------------------------------------------------------
// WanTestbed
// ---------------------------------------------------------------------------

WanTestbed::WanTestbed(Params p) : params(std::move(p)) {
  if (params.sites.size() < 2) throw std::invalid_argument("WanTestbed: need >= 2 sites");
  core_router = net.add_router("core");

  struct Pending {
    net::NodeId cross_src = net::kNone;
  };
  std::vector<Pending> pending(params.sites.size());
  sites.resize(params.sites.size());

  for (std::size_t i = 0; i < params.sites.size(); ++i) {
    const SiteSpec& spec = params.sites[i];
    Site& site = sites[i];
    site.name = spec.name;
    site.router = net.add_router(spec.name + "-rtr");
    site.lan_switch = net.add_switch(spec.name + "-sw");
    net.connect(site.router, site.lan_switch, spec.lan_bps);
    for (std::size_t h = 0; h < spec.hosts; ++h) {
      site.hosts.push_back(net.add_host(spec.name + "-h" + std::to_string(h)));
      net.connect(site.hosts.back(), site.lan_switch, spec.lan_bps);
    }
    // Dedicated cross-traffic source inside the site.
    pending[i].cross_src = net.add_host(spec.name + "-xsrc");
    net.connect(pending[i].cross_src, site.lan_switch, spec.lan_bps);
    // WAN access link: the site's bottleneck.
    net.connect(site.router, core_router, spec.access_bps);
    // Core-side sink absorbing this site's cross traffic.
    site.cross_sink = net.add_host(spec.name + "-xsink");
    net.connect(site.cross_sink, core_router, params.backbone_bps);
  }
  net.finalize();

  flows = std::make_unique<net::FlowEngine>(engine, net);
  agents = std::make_unique<snmp::AgentRegistry>(net, sim::Rng(params.seed).fork("agents"));
  agents->set_before_read([this] { flows->sync(); });

  benchmark = std::make_unique<core::BenchmarkCollector>(
      engine, *flows,
      core::BenchmarkCollectorConfig{"wan-benchmark", params.probe_bytes, 60.0,
                                     params.benchmark_period_s, 4096});
  master = std::make_unique<core::MasterCollector>(
      core::MasterCollectorConfig{"master", 0.002, true});
  master->set_benchmark(benchmark.get());

  sim::Rng rng(params.seed);
  for (std::size_t i = 0; i < params.sites.size(); ++i) {
    const SiteSpec& spec = params.sites[i];
    Site& site = sites[i];
    const net::SegmentId lan_segment = net.segment_of(site.hosts.front(), 1);

    core::BridgeCollectorConfig bcfg;
    bcfg.switches = {net.node(site.lan_switch).primary_address()};
    bcfg.arp = make_arp(net);
    bcfg.location_check_interval_s = 0.0;
    site.bridge = std::make_unique<core::BridgeCollector>(engine, *agents, std::move(bcfg));

    core::SnmpCollectorConfig scfg;
    scfg.name = spec.name + "-snmp";
    scfg.poll_interval_s = params.poll_interval_s;
    scfg.domain = {net.segment(lan_segment).prefix};
    scfg.subnets.push_back(core::SnmpCollectorConfig::SubnetInfo{
        net.segment(lan_segment).prefix, net.node(site.router).primary_address(),
        site.bridge.get(), false, 0.0});
    site.collector = std::make_unique<core::SnmpCollector>(engine, *agents, std::move(scfg));

    const net::Ipv4Address daemon = addr(site.hosts.front());
    benchmark->add_daemon(spec.name, site.hosts.front(), daemon);
    // The site's border — where WAN edges attach in merged topologies — is
    // its edge router; benchmark probes still run between daemon hosts.
    master->add_site(core::MasterCollector::Site{spec.name, site.collector.get(),
                                                 net.node(site.router).primary_address()});

    // Cross traffic: several on/off sources so the access link utilization
    // fluctuates around the requested mean load.
    const double load = i < params.site_cross_load.size() ? params.site_cross_load[i]
                                                          : params.cross_traffic_load;
    constexpr int kSources = 3;
    for (int k = 0; k < kSources; ++k) {
      net::OnOffSource::Params op;
      op.src = pending[i].cross_src;
      op.dst = site.cross_sink;
      op.demand_bps = 2.0 * load * spec.access_bps / kSources;
      op.mean_on_s = params.cross_period_s * (1.0 + 0.25 * k);
      op.mean_off_s = params.cross_period_s * (1.0 + 0.25 * k);
      site.cross_traffic.push_back(std::make_unique<net::OnOffSource>(
          engine, *flows, rng.fork(spec.name + "-x" + std::to_string(k)), op));
    }
  }
  for (std::size_t i = 0; i < sites.size(); ++i) {
    for (std::size_t j = i + 1; j < sites.size(); ++j) {
      if (params.probe_all_pairs || i == 0) {
        benchmark->add_peer(sites[i].name, sites[j].name);
      }
    }
  }
  modeler = std::make_unique<core::Modeler>(*master);
}

WanTestbed::~WanTestbed() = default;

const WanTestbed::Site& WanTestbed::site(const std::string& name) const {
  for (const Site& s : sites) {
    if (s.name == name) return s;
  }
  throw std::out_of_range("WanTestbed: unknown site " + name);
}

net::NodeId WanTestbed::host(const std::string& site_name, std::size_t index) const {
  return site(site_name).hosts.at(index);
}

void WanTestbed::warm_up(double seconds) {
  for (Site& s : sites) {
    for (auto& src : s.cross_traffic) src->start();
  }
  benchmark->start_periodic();
  engine.advance(seconds);
}

}  // namespace remos::apps
