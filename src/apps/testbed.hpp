// Canonical testbeds: a bridged campus LAN and a multi-site WAN with the
// full Remos stack deployed (agents, Bridge/SNMP/Benchmark/Master
// collectors, Modeler). Examples, tests, and every figure bench build on
// these instead of hand-wiring topologies.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/benchmark_collector.hpp"
#include "core/bridge_collector.hpp"
#include "core/master_collector.hpp"
#include "core/modeler.hpp"
#include "core/snmp_collector.hpp"
#include "net/flows.hpp"
#include "net/traffic.hpp"
#include "snmp/agent.hpp"

namespace remos::apps {

/// Build an ARP resolver backed by the ground-truth network (the
/// collector's static configuration data in the original system).
[[nodiscard]] std::function<std::optional<std::uint64_t>(net::Ipv4Address)> make_arp(
    const net::Network& net);

/// One bridged campus LAN behind a router:
///
///   router -- sw0 -- sw1 -- ... (switch chain; hosts round-robin)
///
/// with Bridge + SNMP collectors deployed.
class LanTestbed {
 public:
  struct Params {
    std::size_t hosts = 16;
    std::size_t switches = 4;
    double host_link_bps = 100e6;
    double trunk_bps = 1000e6;
    double uplink_bps = 1000e6;
    double poll_interval_s = 5.0;
    double location_check_interval_s = 0.0;  // bridge host-location monitor
    std::uint64_t seed = 42;
    /// Address space the campus allocates subnets from.
    std::string site_prefix = "10.0.0.0/8";
  };

  LanTestbed();  // default params
  explicit LanTestbed(Params params);

  [[nodiscard]] net::Ipv4Address addr(net::NodeId node) const {
    return net.node(node).primary_address();
  }
  [[nodiscard]] std::vector<net::Ipv4Address> host_addrs(std::size_t count) const;

  Params params;
  sim::Engine engine;
  net::Network net{"campus"};
  net::NodeId router = net::kNone;
  std::vector<net::NodeId> switches;
  std::vector<net::NodeId> hosts;
  std::unique_ptr<net::FlowEngine> flows;
  std::unique_ptr<snmp::AgentRegistry> agents;
  std::unique_ptr<core::BridgeCollector> bridge;
  std::unique_ptr<core::SnmpCollector> collector;
};

/// Multi-site WAN: each site is a small routed LAN joined to a WAN core
/// router by an access link whose capacity shapes the site's connectivity.
/// Per-site SNMP collectors, one Benchmark Collector with a daemon per
/// site, a Master Collector federating everything, and a Modeler on top.
class WanTestbed {
 public:
  struct SiteSpec {
    std::string name;
    std::size_t hosts = 2;
    double lan_bps = 100e6;
    double access_bps = 10e6;  // WAN access capacity (the site's bottleneck)
  };
  struct Params {
    std::vector<SiteSpec> sites;
    double backbone_bps = 622e6;  // OC-12-ish core
    double poll_interval_s = 5.0;
    double benchmark_period_s = 15.0;
    std::uint64_t probe_bytes = 256 * 1024;
    std::uint64_t seed = 7;
    /// Mean utilization of each site's access link by cross traffic
    /// (0..1); per-site values override.
    double cross_traffic_load = 0.3;
    std::vector<double> site_cross_load;  // optional per-site override
    /// Mean on/off period of the cross-traffic sources: small values give
    /// fast-fluctuating load, large values slowly-drifting (Internet-like)
    /// congestion states.
    double cross_period_s = 4.0;
    /// When true, the benchmark collector periodically probes every site
    /// pair; when false, only pairs involving sites[0] (the application
    /// site) — fewer concurrent probes, less self-interference.
    bool probe_all_pairs = true;
  };

  explicit WanTestbed(Params params);
  ~WanTestbed();
  WanTestbed(const WanTestbed&) = delete;
  WanTestbed& operator=(const WanTestbed&) = delete;

  struct Site {
    std::string name;
    net::NodeId router = net::kNone;
    net::NodeId lan_switch = net::kNone;
    std::vector<net::NodeId> hosts;  // hosts[0] doubles as benchmark daemon
    std::unique_ptr<core::BridgeCollector> bridge;
    std::unique_ptr<core::SnmpCollector> collector;
    std::vector<std::unique_ptr<net::OnOffSource>> cross_traffic;
    net::NodeId cross_sink = net::kNone;  // core-side host absorbing cross traffic
  };

  [[nodiscard]] net::Ipv4Address addr(net::NodeId node) const {
    return net.node(node).primary_address();
  }
  [[nodiscard]] const Site& site(const std::string& name) const;
  [[nodiscard]] net::NodeId host(const std::string& site_name, std::size_t index) const;

  /// Start cross traffic and periodic benchmarking, then run the engine
  /// for `seconds` so caches and histories warm up.
  void warm_up(double seconds);

  Params params;
  sim::Engine engine;
  net::Network net{"wan"};
  net::NodeId core_router = net::kNone;
  // flows/agents before sites: each Site's OnOffSources reference *flows,
  // so the engine must outlive them (members destroy in reverse order).
  std::unique_ptr<net::FlowEngine> flows;
  std::unique_ptr<snmp::AgentRegistry> agents;
  std::vector<Site> sites;
  std::unique_ptr<core::BenchmarkCollector> benchmark;
  std::unique_ptr<core::MasterCollector> master;
  std::unique_ptr<core::Modeler> modeler;
};

}  // namespace remos::apps
