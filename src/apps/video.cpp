#include "apps/video.hpp"

#include <algorithm>
#include <cmath>

namespace remos::apps {

std::uint64_t VideoChunk::total_bytes() const {
  std::uint64_t total = 0;
  for (const VideoFrame& f : frames) total += f.bytes;
  return total;
}

std::size_t Movie::frame_count() const {
  std::size_t total = 0;
  for (const VideoChunk& c : chunks) total += c.frames.size();
  return total;
}

double Movie::mean_rate_bps() const {
  if (chunks.empty()) return 0.0;
  std::uint64_t bytes = 0;
  for (const VideoChunk& c : chunks) bytes += c.total_bytes();
  return static_cast<double>(bytes) * 8.0 / static_cast<double>(chunks.size());
}

Movie Movie::generate(std::string title, std::size_t seconds, double mean_rate_bps,
                      sim::Rng& rng, std::size_t fps) {
  Movie movie;
  movie.title = std::move(title);
  movie.chunks.reserve(seconds);
  // Frame-size ratios roughly matching MPEG GOP statistics.
  const double i_weight = 6.0, p_weight = 2.5, b_weight = 1.0;
  // Per-chunk weight with a 15-frame GOP: 1 I + ~4 P + rest B.
  double content = 1.0;  // slow scene-complexity random walk
  for (std::size_t s = 0; s < seconds; ++s) {
    content = std::clamp(content + rng.normal(0.0, 0.12), 0.55, 1.8);
    VideoChunk chunk;
    chunk.frames.reserve(fps);
    double weight_sum = 0.0;
    std::vector<double> weights;
    weights.reserve(fps);
    for (std::size_t f = 0; f < fps; ++f) {
      FrameType type;
      if (f % 15 == 0) {
        type = FrameType::kI;
      } else if (f % 3 == 0) {
        type = FrameType::kP;
      } else {
        type = FrameType::kB;
      }
      const double w = (type == FrameType::kI ? i_weight : type == FrameType::kP ? p_weight
                                                                                 : b_weight) *
                       content * rng.uniform(0.85, 1.15);
      weights.push_back(w);
      weight_sum += w;
      chunk.frames.push_back(VideoFrame{type, 0});
    }
    const double chunk_bytes = mean_rate_bps / 8.0 * content;
    for (std::size_t f = 0; f < fps; ++f) {
      chunk.frames[f].bytes =
          static_cast<std::uint32_t>(std::max(64.0, chunk_bytes * weights[f] / weight_sum));
    }
    movie.chunks.push_back(std::move(chunk));
  }
  return movie;
}

namespace {

/// Pick the frames of a chunk that fit `budget_bytes`, dropping lowest
/// importance (B, then P, never I unless unavoidable) first. Returns the
/// selected indices and their byte total.
std::pair<std::vector<std::size_t>, std::uint64_t> select_frames(const VideoChunk& chunk,
                                                                 double budget_bytes) {
  // Sort candidate drop order: B frames (largest first), then P, then I.
  std::vector<std::size_t> order(chunk.frames.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const auto pa = static_cast<int>(chunk.frames[a].type);
    const auto pb = static_cast<int>(chunk.frames[b].type);
    if (pa != pb) return pa > pb;  // B (2) drops before P (1) before I (0)
    return chunk.frames[a].bytes > chunk.frames[b].bytes;
  });
  std::vector<bool> dropped(chunk.frames.size(), false);
  double total = static_cast<double>(chunk.total_bytes());
  for (std::size_t i : order) {
    if (total <= budget_bytes) break;
    dropped[i] = true;
    total -= chunk.frames[i].bytes;
  }
  std::vector<std::size_t> selected;
  std::uint64_t bytes = 0;
  for (std::size_t i = 0; i < chunk.frames.size(); ++i) {
    if (!dropped[i]) {
      selected.push_back(i);
      bytes += chunk.frames[i].bytes;
    }
  }
  return {std::move(selected), bytes};
}

}  // namespace

StreamResult stream_movie(sim::Engine& engine, net::FlowEngine& flows, net::NodeId server,
                          net::NodeId client, const Movie& movie,
                          const VideoServerConfig& config) {
  StreamResult result;
  result.frames_total = movie.frame_count();
  double estimate = std::max(config.initial_estimate_bps, 1e3);
  const double chunk_duration = 1.0;

  for (const VideoChunk& chunk : movie.chunks) {
    const double budget_bytes = estimate * config.headroom / 8.0 * chunk_duration;
    auto [selected, bytes] = select_frames(chunk, budget_bytes);
    result.frames_sent += selected.size();

    if (bytes == 0) {
      result.chunk_rate_bps.push_back(0.0);
      result.chunk_goodput_bps.push_back(0.0);
      result.chunk_completion_s.push_back(chunk_duration);
      engine.advance(chunk_duration);
      continue;
    }

    // Ship the selected frames; the transfer competes with cross traffic.
    bool done = false;
    const sim::Time start = engine.now();
    net::FlowSpec spec;
    spec.src = server;
    spec.dst = client;
    spec.bytes = bytes;
    spec.on_complete = [&done](net::FlowId) { done = true; };
    const net::FlowId id = flows.start(std::move(spec));
    const double deadline = chunk_duration * (1.0 + config.deadline_slack);
    while (!done && engine.now() - start < deadline) {
      engine.advance(0.05);
    }
    const double elapsed = engine.now() - start;
    double delivered_bytes = static_cast<double>(bytes);
    if (!done) {
      const auto st = flows.stats(id);
      delivered_bytes = st ? static_cast<double>(st->delivered_bytes) : 0.0;
      flows.stop(id);
    }
    const double achieved_bps = elapsed > 0 ? delivered_bytes * 8.0 / elapsed : 0.0;
    result.chunk_rate_bps.push_back(achieved_bps);
    result.chunk_goodput_bps.push_back(delivered_bytes * 8.0 / chunk_duration);
    result.chunk_completion_s.push_back(elapsed);

    if (done) {
      result.frames_received_correctly += selected.size();
    } else {
      // Partial chunk: frames are transmitted in decode order; count the
      // prefix whose bytes made it before the deadline.
      double cum = 0.0;
      for (std::size_t idx : selected) {
        cum += chunk.frames[idx].bytes;
        if (cum <= delivered_bytes) {
          ++result.frames_received_correctly;
        } else {
          break;
        }
      }
    }

    // Pace to the chunk boundary, then refresh the bandwidth estimate.
    if (engine.now() - start < chunk_duration) {
      engine.advance(chunk_duration - (engine.now() - start));
    }
    estimate = config.estimate_alpha * achieved_bps + (1.0 - config.estimate_alpha) * estimate;
    estimate = std::max(estimate, 8e3);  // floor: keep probing upward
  }
  result.duration_s = chunk_duration * static_cast<double>(movie.chunks.size());
  return result;
}

std::vector<double> windowed_bandwidth(const StreamResult& result, double window_s) {
  std::vector<double> out;
  const std::size_t window = std::max<std::size_t>(1, static_cast<std::size_t>(window_s));
  for (std::size_t start = 0; start < result.chunk_goodput_bps.size(); start += window) {
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = start; i < result.chunk_goodput_bps.size() && i < start + window; ++i) {
      sum += result.chunk_goodput_bps[i];
      ++n;
    }
    out.push_back(n > 0 ? sum / static_cast<double>(n) : 0.0);
  }
  return out;
}

}  // namespace remos::apps
