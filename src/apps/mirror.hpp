// Mirrored-server selection application (§5.4).
//
// "We have written a simple application that reads a 3MB file from a server
// after using network information obtained from Remos to choose the best
// server from a set of replicas." To evaluate the choice, the application
// "reads the file from all servers, starting with the server that,
// according to Remos, has the best network connectivity."
#pragma once

#include <string>
#include <vector>

#include "core/modeler.hpp"
#include "net/flows.hpp"
#include "sim/engine.hpp"

namespace remos::apps {

struct MirrorServer {
  std::string name;
  net::NodeId host = net::kNone;
  net::Ipv4Address addr{};
};

struct MirrorTrialResult {
  /// Ranking Remos produced (indices into the server list, best first).
  std::vector<std::size_t> remos_ranking;
  /// Measured available bandwidth per server (Remos flow query), bps.
  std::vector<double> remos_bandwidth_bps;
  /// Achieved download throughput per server, bps (download order = ranking).
  std::vector<double> achieved_bps;
  /// Index of the server with the actually-fastest transfer.
  std::size_t actual_best = 0;
  /// Did Remos rank the actual best server first?
  bool remos_correct = false;
  /// Effective bandwidth of the Remos-chosen server: transfer time plus
  /// the time it took to get an answer back from the Remos system.
  double effective_bps = 0.0;
  double remos_query_time_s = 0.0;
};

class MirrorClient {
 public:
  MirrorClient(sim::Engine& engine, net::FlowEngine& flows, core::Modeler& modeler,
               net::NodeId client_host, net::Ipv4Address client_addr,
               std::vector<MirrorServer> servers, std::uint64_t file_bytes = 3 * 1024 * 1024);

  /// One full trial: rank via Remos, then download from every server in
  /// ranked order. Runs the simulation forward while transfers drain.
  MirrorTrialResult run_trial();

  [[nodiscard]] const std::vector<MirrorServer>& servers() const { return servers_; }

 private:
  double download_from(net::NodeId server) const;

  sim::Engine& engine_;
  net::FlowEngine& flows_;
  core::Modeler& modeler_;
  net::NodeId client_host_;
  net::Ipv4Address client_addr_;
  std::vector<MirrorServer> servers_;
  std::uint64_t file_bytes_;
};

}  // namespace remos::apps
