// FleetPredictor: batched same-shape refits over the thread pool,
// incremental AR fast lane, and warm-tier template seeding. The
// load-bearing claims: results are bit-identical across worker counts, the
// full-refit mode is float-identical to the ArmaModel path, and the
// incremental mode stays inside the documented 1e-9 contract.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rps/fleet.hpp"
#include "rps/models.hpp"
#include "rps/shared_cache.hpp"
#include "sim/rng.hpp"
#include "sim/thread_pool.hpp"

namespace remos::rps {
namespace {

std::vector<double> series_history(std::size_t i, std::size_t n) {
  sim::Rng rng(0xF1EE7 + i);
  std::vector<double> xs(n);
  double prev = 100.0;
  for (double& x : xs) {
    prev = 100.0 + 0.7 * (prev - 100.0) + rng.normal(0.0, 2.0);
    x = prev;
  }
  return xs;
}

TEST(FleetPredictor, FullModeBitIdenticalToArmaModel) {
  const std::size_t window = 128;
  const std::size_t horizon = 20;
  const ModelSpec spec = ModelSpec::ar(8);
  FleetConfig cfg;
  cfg.window = window;
  cfg.horizon = horizon;
  cfg.incremental = false;
  FleetPredictor fleet(cfg);
  const auto id = fleet.add_series(spec);
  const std::vector<double> hist = series_history(1, window + 40);
  fleet.prime(id, std::span<const double>(hist).subspan(0, window));
  for (std::size_t t = window; t < hist.size(); ++t) fleet.observe(id, hist[t]);
  fleet.refit_all();
  const Prediction got = fleet.predict(id);

  // Reference: the Model path fitted on the identical final window.
  const std::vector<double> tail(hist.end() - static_cast<std::ptrdiff_t>(window), hist.end());
  auto model = make_model(spec);
  model->fit(tail);
  const Prediction want = model->predict(horizon);
  EXPECT_EQ(got.mean, want.mean);
  EXPECT_EQ(got.variance, want.variance);
}

TEST(FleetPredictor, BitIdenticalAcrossWorkerCounts) {
  const std::size_t n_series = 600;
  const std::size_t window = 64;
  sim::ThreadPool pool2(2);
  sim::ThreadPool pool5(5);
  sim::ThreadPool* pools[] = {nullptr, &pool2, &pool5};

  std::vector<Prediction> reference;
  for (std::size_t which = 0; which < 3; ++which) {
    FleetConfig cfg;
    cfg.window = window;
    cfg.horizon = 12;
    cfg.pool = pools[which];
    cfg.max_batch_tasks = 5;
    cfg.parallel_min_series = 1;  // force dispatch even for small groups
    FleetPredictor fleet(cfg);
    for (std::size_t i = 0; i < n_series; ++i) {
      fleet.add_series(i % 3 == 0 ? ModelSpec::ar(16) : ModelSpec::ar(8));
    }
    for (std::size_t i = 0; i < n_series; ++i) fleet.prime(i, series_history(i, window));
    fleet.refit_all();
    for (std::size_t i = 0; i < n_series; ++i) fleet.observe(i, 101.5);
    fleet.refit_all();
    EXPECT_EQ(fleet.refits_total(), 2 * n_series);
    if (which == 0) {
      reference.reserve(n_series);
      for (std::size_t i = 0; i < n_series; ++i) reference.push_back(fleet.predict(i));
      continue;
    }
    for (std::size_t i = 0; i < n_series; ++i) {
      const Prediction p = fleet.predict(i);
      ASSERT_EQ(p.mean, reference[i].mean) << "series " << i << " pool variant " << which;
      ASSERT_EQ(p.variance, reference[i].variance) << "series " << i;
    }
  }
}

TEST(FleetPredictor, IncrementalWithinContractOfFullMode) {
  const std::size_t window = 100;
  std::vector<Prediction> results[2];
  for (const bool incremental : {false, true}) {
    FleetConfig cfg;
    cfg.window = window;
    cfg.horizon = 16;
    cfg.incremental = incremental;
    FleetPredictor fleet(cfg);
    for (std::size_t i = 0; i < 20; ++i) fleet.add_series(ModelSpec::ar(8));
    for (std::size_t i = 0; i < 20; ++i) fleet.prime(i, series_history(i, window));
    // Push through a full turnover so the incremental sums have seen
    // evictions and at least one resync.
    for (std::size_t t = 0; t < window + 16; ++t) {
      const auto extra = series_history(1000 + t, 20);
      for (std::size_t i = 0; i < 20; ++i) fleet.observe(i, extra[i]);
    }
    fleet.refit_all();
    for (std::size_t i = 0; i < 20; ++i) {
      results[incremental ? 1 : 0].push_back(fleet.predict(i));
    }
  }
  for (std::size_t i = 0; i < 20; ++i) {
    const Prediction& full = results[0][i];
    const Prediction& inc = results[1][i];
    for (std::size_t h = 0; h < full.mean.size(); ++h) {
      const double scale = std::max({1.0, std::abs(full.mean[h]), std::abs(inc.mean[h])});
      EXPECT_LE(std::abs(full.mean[h] - inc.mean[h]), 1e-8 * scale);
      const double vscale =
          std::max({1.0, std::abs(full.variance[h]), std::abs(inc.variance[h])});
      EXPECT_LE(std::abs(full.variance[h] - inc.variance[h]), 1e-8 * vscale);
    }
  }
}

TEST(FleetPredictor, GroupsBySpecShapeAndCountsFailures) {
  FleetConfig cfg;
  cfg.window = 64;
  FleetPredictor fleet(cfg);
  fleet.add_series(ModelSpec::ar(4));
  fleet.add_series(ModelSpec::ar(4));
  fleet.add_series(ModelSpec::ar(8));
  const auto young = fleet.add_series(ModelSpec::ar(8));  // never primed
  EXPECT_EQ(fleet.series_count(), 4u);
  EXPECT_EQ(fleet.group_count(), 2u);
  for (std::size_t i = 0; i < 3; ++i) fleet.prime(i, series_history(i, 64));
  fleet.refit_all();
  EXPECT_EQ(fleet.refits_total(), 3u);
  EXPECT_EQ(fleet.fit_failures(), 1u);
  EXPECT_TRUE(fleet.fitted(0));
  EXPECT_FALSE(fleet.fitted(young));
}

TEST(FleetPredictor, UnfittedWithoutCacheFailsPredict) {
  FleetConfig cfg;
  cfg.window = 32;
  FleetPredictor fleet(cfg);
  const auto id = fleet.add_series(ModelSpec::ar(4));
  Prediction out;
  EXPECT_FALSE(fleet.predict_into(id, out));
  EXPECT_THROW(fleet.predict(id), std::logic_error);
}

TEST(FleetPredictor, WarmTierSeedsYoungArSeries) {
  SharedPredictionCache cache(1e9, [] { return 0.0; });
  FleetConfig cfg;
  cfg.window = 64;
  cfg.horizon = 8;
  cfg.cache = &cache;
  FleetPredictor fleet(cfg);
  for (std::size_t i = 0; i < 5; ++i) fleet.add_series(ModelSpec::ar(4));
  const auto young = fleet.add_series(ModelSpec::ar(4));
  for (std::size_t i = 0; i < 5; ++i) fleet.prime(i, series_history(i, 64));
  fleet.refit_all();
  EXPECT_EQ(fleet.templates_published(), 1u);  // one group, lowest-id winner
  Prediction out;
  ASSERT_TRUE(fleet.predict_into(young, out));
  EXPECT_EQ(out.mean.size(), 8u);
  EXPECT_TRUE(std::isfinite(out.mean[0]));
  EXPECT_EQ(fleet.seeded_predictions(), 1u);
  EXPECT_EQ(cache.seeds(), 1u);
  EXPECT_EQ(cache.warm_hits(), 1u);
  // The seeded forecast is the group template applied to the young
  // series' (empty) window: deviations are zero-padded, so the mean
  // forecast is the template's mean.
  const auto tmpl = cache.warm_template(ModelSpec::ar(4).to_string());
  ASSERT_TRUE(tmpl.has_value());
  EXPECT_DOUBLE_EQ(out.mean[0], tmpl->mu);
}

TEST(FleetPredictor, WarmTierSeedsGenericLane) {
  SharedPredictionCache cache(1e9, [] { return 0.0; });
  ModelSpec burg = ModelSpec::ar(4);
  burg.use_burg = true;  // not AR-lane eligible: exercises the generic path
  FleetConfig cfg;
  cfg.window = 64;
  cfg.horizon = 8;
  cfg.cache = &cache;
  FleetPredictor fleet(cfg);
  for (std::size_t i = 0; i < 3; ++i) fleet.add_series(burg);
  const auto young = fleet.add_series(burg);
  for (std::size_t i = 0; i < 3; ++i) fleet.prime(i, series_history(i, 64));
  fleet.refit_all();
  EXPECT_EQ(fleet.refits_total(), 3u);
  EXPECT_EQ(fleet.templates_published(), 1u);
  Prediction out;
  ASSERT_TRUE(fleet.predict_into(young, out));
  EXPECT_EQ(fleet.seeded_predictions(), 1u);
  EXPECT_TRUE(std::isfinite(out.mean[0]));
}

TEST(FleetPredictor, ObserveAgesYoungSeriesIntoFitting) {
  FleetConfig cfg;
  cfg.window = 32;
  FleetPredictor fleet(cfg);
  const auto id = fleet.add_series(ModelSpec::ar(2));
  fleet.refit_all();
  EXPECT_EQ(fleet.fit_failures(), 1u);
  const auto xs = series_history(3, 8);
  for (double x : xs) fleet.observe(id, x);  // 8 > order + 1
  fleet.refit_all();
  EXPECT_TRUE(fleet.fitted(id));
  const Prediction p = fleet.predict(id);
  EXPECT_TRUE(std::isfinite(p.mean[0]));
}

}  // namespace
}  // namespace remos::rps
