#!/usr/bin/env python3
"""Corpus harness for remos_analyze.

Each corpus root (bad/, good/) is a miniature repository: a layers.txt at
the root and sources under src/. Planted defects carry an inline marker on
the exact line the finding must land on:

    // expect(<pass>)

The harness runs the analyzer with --json on each root and demands an
exact two-way match for bad/ (every marker flagged by its pass, zero
unexpected findings) and total silence for good/.
"""

import argparse
import json
import re
import subprocess
import sys
from pathlib import Path

EXPECT_RE = re.compile(r"expect\((\w+)\)")


def collect_expectations(root: Path):
    expected = set()  # (rel_path, line, pass)
    for path in sorted((root / "src").rglob("*")):
        if path.suffix not in {".hpp", ".cpp", ".h", ".cc"}:
            continue
        rel = path.relative_to(root).as_posix()
        for lineno, text in enumerate(path.read_text().splitlines(), start=1):
            for pass_name in EXPECT_RE.findall(text):
                expected.add((rel, lineno, pass_name))
    return expected


def run_analyzer(analyzer: Path, root: Path):
    proc = subprocess.run(
        [str(analyzer), "--root", str(root), "--json"],
        capture_output=True,
        text=True,
    )
    if proc.returncode not in (0, 1):
        raise SystemExit(
            f"analyzer crashed on {root} (exit {proc.returncode}):\n{proc.stderr}"
        )
    report = json.loads(proc.stdout)
    actual = set()
    for f in report["findings"]:
        actual.add((f["file"], f["line"], f["pass"]))
    return actual, proc.returncode


def check_root(analyzer: Path, root: Path, expect_findings: bool) -> int:
    expected = collect_expectations(root)
    actual, code = run_analyzer(analyzer, root)
    failures = 0
    if expect_findings:
        for miss in sorted(expected - actual):
            print(f"MISSED  {root.name}: {miss[0]}:{miss[1]} [{miss[2]}] "
                  "planted defect not flagged")
            failures += 1
        for extra in sorted(actual - expected):
            print(f"EXTRA   {root.name}: {extra[0]}:{extra[1]} [{extra[2]}] "
                  "finding with no expect() marker")
            failures += 1
        if code != 1 and expected:
            print(f"EXIT    {root.name}: expected exit 1, got {code}")
            failures += 1
    else:
        if expected:
            print(f"CORPUS  {root.name}: good tree must carry no expect() markers")
            failures += 1
        for extra in sorted(actual):
            print(f"EXTRA   {root.name}: {extra[0]}:{extra[1]} [{extra[2]}] "
                  "finding in the known-good twin")
            failures += 1
        if code != 0 and not actual:
            print(f"EXIT    {root.name}: expected exit 0, got {code}")
            failures += 1
    return failures


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--analyzer", required=True, type=Path)
    ap.add_argument("--corpus", required=True, type=Path)
    args = ap.parse_args()

    failures = 0
    failures += check_root(args.analyzer, args.corpus / "bad", expect_findings=True)
    failures += check_root(args.analyzer, args.corpus / "good", expect_findings=False)
    if failures:
        print(f"analyze_corpus: {failures} failure(s)")
        return 1
    print("analyze_corpus: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
