namespace demo {  // expect(layer)

int rogue_thing() { return 42; }

}  // namespace demo
