#pragma once
#include <atomic>
#include <functional>
#include <memory>
#include <mutex>

namespace demo {

// Pool stand-in local to this file (the pass keys on the entry-point
// names submit/parallel_for, not on the type).
class SnapPool {
 public:
  template <typename F>
  void submit(F f) {
    (void)f;
  }
  void parallel_for(int items, const std::function<void(int)>& fn) {
    for (int i = 0; i < items; ++i) fn(i);
  }
};

struct Snap {
  int epoch = 0;
};
using SnapPtr = std::shared_ptr<const Snap>;

// The snapshot-swap idiom done wrong: the publication slot is a plain
// shared_ptr, so the writer's reset races every pool-executed reader —
// shared_ptr's control block is thread-safe, the pointer itself is not.
class TornServer {
 public:
  void publish(int epoch) {
    auto next = std::make_shared<Snap>();
    next->epoch = epoch;
    published_ = std::move(next);
  }

  void serve(int clients) {
    pool_->parallel_for(clients, [this](int) {
      const SnapPtr snap = published_;
      if (snap) sink(snap->epoch);
    });
  }

 private:
  static void sink(int v) { (void)v; }
  SnapPool* pool_ = nullptr;
  SnapPtr published_;  // expect(concurrency)
};

// Stale guard annotation left behind after the slot went atomic: the named
// mutex no longer exists, so the annotation documents protection that
// nothing provides. Flagged even though the atomic would be fine bare.
class StaleGuard {
 public:
  void publish(int epoch) {
    auto next = std::make_shared<Snap>();
    next->epoch = epoch;
    std::lock_guard<std::mutex> lk(build_mu_);
    published_.store(std::move(next), std::memory_order_release);
  }

 private:
  std::mutex build_mu_;  // remos-lock-order(10)
  std::atomic<SnapPtr> published_;  // remos-guarded-by(gone_mu_) expect(concurrency)
};

}  // namespace demo
