#pragma once
#include <condition_variable>
#include <functional>
#include <mutex>
#include <vector>

namespace demo {

// Stand-in for sim::ThreadPool: the concurrency pass keys on the entry
// point names, not the type.
class MiniPool {
 public:
  template <typename F>
  void submit(F f) {
    (void)f;
  }
  void parallel_for(int items, const std::function<void(int)>& fn) {
    for (int i = 0; i < items; ++i) fn(i);
  }
  void parallel_ranges(int items, int lanes,
                       const std::function<void(int, int, int)>& fn) {
    (void)lanes;
    fn(0, 0, items);
  }
};

// Mutable member handed to pool-executed code with no protection at all.
class Stage {
 public:
  void kick() {
    pool_->submit([this] { work_ = work_ + 1; });
  }

 private:
  MiniPool* pool_ = nullptr;
  int work_ = 0;  // expect(concurrency)
};

// Mutex-owning class: every member needs a protection story, explicit
// guards bind their access sites, and remos-requires contracts bind call
// sites.
class Registry {
 public:
  int peek() const {
    return total_;  // expect(concurrency)
  }
  int peek_locked() const {
    std::lock_guard<std::mutex> lk(mu_);
    return total_;
  }
  void bump() {
    std::lock_guard<std::mutex> lk(mu_);
    total_ = total_ + 1;
  }
  void drain() {
    helper();  // expect(concurrency)
  }
  void drain_locked() {
    std::lock_guard<std::mutex> lk(mu_);
    helper();
  }

 private:
  // remos-requires(mu_)
  void helper() { pending_ = 0; }
  // remos-requires(ghost_mu_)
  void phantom() {}  // expect(concurrency)
  int stray_ = 0;    // expect(concurrency)
  int noted_ = 0;    // remos-guarded-by(ghost_) expect(concurrency)
  int total_ = 0;    // remos-guarded-by(mu_)
  int pending_ = 0;  // remos-guarded-by(mu_)
  mutable std::mutex mu_;  // remos-lock-order(10)
};

// Waiting on a condition variable releases only the lock passed to wait();
// anything else held blocks every other thread for the full sleep.
class Waiter {
 public:
  void wait_badly() {
    std::unique_lock<std::mutex> lk(mu_);
    std::lock_guard<std::mutex> aux(aux_mu_);
    cv_.wait(lk);  // expect(concurrency)
  }

 private:
  std::condition_variable cv_;
  std::mutex mu_;      // remos-lock-order(30)
  std::mutex aux_mu_;  // remos-lock-order(40)
};

// Direct pool entry while holding a mutex: lanes queue behind the lock.
class Dispatcher {
 public:
  void go() {
    std::lock_guard<std::mutex> lk(mu_);
    pool_->parallel_for(4, [](int) {});  // expect(concurrency)
  }

 private:
  std::mutex mu_;  // remos-lock-order(50)
  MiniPool* pool_ = nullptr;
};

}  // namespace demo
