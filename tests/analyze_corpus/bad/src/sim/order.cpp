#include <mutex>

namespace demo {
namespace {
std::mutex g_high;  // remos-lock-order(30)
std::mutex g_low;   // remos-lock-order(10)
}  // namespace

void take_low() { std::lock_guard<std::mutex> lk(g_low); }

void backwards() {
  std::lock_guard<std::mutex> hi(g_high);
  std::lock_guard<std::mutex> lo(g_low);  // expect(lock)
}

void backwards_via_call() {
  std::lock_guard<std::mutex> hi(g_high);
  take_low();  // expect(lock)
}

}  // namespace demo
