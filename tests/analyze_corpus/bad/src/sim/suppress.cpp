#include <mutex>

namespace demo {
namespace {
std::mutex g_mu;  // remos-lock-order(10)
int counter = 0;
}  // namespace

// An allow() without a justification suppresses nothing: the original
// finding survives AND the marker itself is flagged.
void bump() {
  counter = counter + 1;  // remos-analyze: allow(lock) expect(suppression) expect(lock)
}

// Justified but covering nothing: stale.
void idle() {
  int local = 0;  // remos-analyze: allow(determinism): nothing unordered here expect(suppression)
  (void)local;
}

// Unknown pass name.
void typo() {
  int local = 1;  // remos-analyze: allow(frobnicate): no such pass expect(suppression)
  (void)local;
}

}  // namespace demo
