// Transitive pool entry: the lock is held by the caller, not at the entry
// site itself — the entry-held fixpoint has to carry it through the call.
#include <mutex>

#include "sim/conc.hpp"

namespace demo {
namespace {

std::mutex g_mu;  // remos-lock-order(60)
int g_total = 0;

}  // namespace

void deep_inner(MiniPool& pool) {
  pool.submit([] {});  // expect(concurrency)
}

void deep_outer(MiniPool& pool) {
  std::lock_guard<std::mutex> lk(g_mu);
  g_total = g_total + 1;
  deep_inner(pool);
}

}  // namespace demo
