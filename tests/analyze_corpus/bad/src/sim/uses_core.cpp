#include "core/render.hpp"  // expect(layer)

namespace demo {

int use_render() { return 0; }

}  // namespace demo
