#include <string>
#include <unordered_map>

#include "core/render.hpp"

namespace demo {

std::string emit_all() {
  std::unordered_map<int, int> table;
  table[1] = 2;
  std::string out;
  for (const auto& [key, val] : table) {  // expect(determinism)
    out += render_value(val);
  }
  return out;
}

}  // namespace demo
