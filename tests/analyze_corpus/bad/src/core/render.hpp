#pragma once  // expect(layer)
#include <string>

namespace demo {

inline std::string render_value(int v) { return std::to_string(v); }

}  // namespace demo
