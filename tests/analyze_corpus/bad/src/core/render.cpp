#include "core/render.hpp"

#include <string>
#include <unordered_set>

namespace demo {

std::string render_tags() {
  std::unordered_set<std::string> tags;
  tags.insert("a");
  std::string out;
  for (const auto& t : tags) {  // expect(determinism)
    out += t;
  }
  return out;
}

}  // namespace demo
