#pragma once
#include <memory>
#include <mutex>
#include <vector>

namespace demo {

// ---- hot-path discipline done wrong ---------------------------------------

// Direct violation: the steady-state read path allocates on every call.
// remos-hot
inline int* reserve_slot(int seq) {
  return new int(seq);  // expect(hotpath)
}

// Transitive violation: the hot entry point below is clean, but this
// helper it reaches grows a function-local vector per call.
inline int helper_total(int n) {
  std::vector<int> tmp;
  for (int i = 0; i < n; ++i) tmp.push_back(i);  // expect(hotpath)
  return static_cast<int>(tmp.size());
}

// remos-hot
inline int hot_summary(int n) { return helper_total(n); }

// Blocking violation: the hot read path serialises on a mutex that was
// never declared a `remos-hot-leaf` leaf.
class BlockyEngine {
 public:
  // remos-hot
  double rate() const {
    std::lock_guard<std::mutex> lk(mu_);  // expect(hotpath)
    return rate_;
  }

  void set_rate(double r) {
    std::lock_guard<std::mutex> lk(mu_);
    rate_ = r;
  }

 private:
  mutable std::mutex mu_;  // remos-lock-order(40)
  double rate_ = 0.0;  // remos-guarded-by(mu_)
};

// ---- published snapshots done wrong ---------------------------------------

// A mutable member on a published type: readers share instances
// concurrently, so "logically const" caching is a data race.
// remos-published
struct RateTable {
  int epoch = 0;
  mutable double cached_mean = 0.0;  // expect(hotpath)
  double mean() const { return cached_mean; }
};

// The slot the writer swaps and readers copy is a plain shared_ptr: the
// control block is thread-safe, the pointer update itself is torn.
class RatePublisher {
 public:
  void publish(int epoch) {
    auto next = std::make_shared<RateTable>();
    next->epoch = epoch;
    current_ = std::move(next);
  }

 private:
  std::shared_ptr<const RateTable> current_;  // expect(hotpath)
};

}  // namespace demo
