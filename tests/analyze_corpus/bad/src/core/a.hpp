#pragma once  // expect(layer)
#include "core/b.hpp"

inline int alpha() { return 1; }
