#pragma once
#include "core/a.hpp"

inline int beta() { return 2; }
