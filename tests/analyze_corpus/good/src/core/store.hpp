#pragma once
#include <cstddef>
#include <map>
#include <string>

namespace demo {

class Store {
 public:
  void put(const std::string& key, double value);
  [[nodiscard]] double get(const std::string& key) const;

 private:
  std::map<std::string, double> data_;
  std::size_t writes_ = 0;
};

}  // namespace demo
