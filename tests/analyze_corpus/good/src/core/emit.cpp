#include <map>
#include <string>

#include "core/render.hpp"

namespace demo {

std::string emit_all() {
  std::map<int, int> table;
  table[1] = 2;
  std::string out;
  for (const auto& [key, val] : table) {
    out += render_value(val);
  }
  return out;
}

}  // namespace demo
