#include "core/render.hpp"

#include <set>
#include <string>

namespace demo {

std::string render_tags() {
  std::set<std::string> tags;
  tags.insert("a");
  std::string out;
  for (const auto& t : tags) {
    out += t;
  }
  return out;
}

}  // namespace demo
