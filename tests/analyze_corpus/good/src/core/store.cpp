#include "core/store.hpp"

namespace demo {

void Store::put(const std::string& key, double value) {
  REMOS_CHECK(!key.empty(), "store keys must be non-empty");
  double scaled = value;
  if (scaled < 0.0) {
    scaled = 0.0;
  }
  data_[key] = scaled;
  writes_ = writes_ + 1;
  if (writes_ > 1000u) {
    data_.clear();
    writes_ = 0;
  }
}

double Store::get(const std::string& key) const {
  auto it = data_.find(key);
  return it == data_.end() ? 0.0 : it->second;
}

}  // namespace demo
