#pragma once
// remos-analyze: public-header(render helpers are a leaf utility usable
// from any layer; matching grant lives in layers.txt)
#include <string>

namespace demo {

inline std::string render_value(int v) { return std::to_string(v); }

}  // namespace demo
