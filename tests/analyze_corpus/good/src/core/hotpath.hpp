#pragma once
#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

namespace demo {

// ---- hot-path discipline done right ---------------------------------------

// Steady-state smoothing over a thread_local arena: the vector grows to
// its high-water mark once and is reused on every subsequent call.
// remos-hot
inline double windowed_mean(const double* xs, int n) {
  thread_local std::vector<double> window;
  window.assign(xs, xs + n);
  double sum = 0.0;
  for (double v : window) sum += v;
  return n > 0 ? sum / n : 0.0;
}

// The returned path is the product of the query; the suppression names
// the reason and covers exactly the growth line below it.
// remos-hot
inline std::vector<int> route(int hops) {
  std::vector<int> path;
  for (int i = 0; i < hops; ++i) {
    // remos-analyze: allow(hotpath): the returned path is the product of the query, not overhead
    path.push_back(i);
  }
  return path;
}

// Hot reads may cross a declared leaf mutex: held only for an indexed
// load or a bulk refresh, never across user code.
class RateEngine {
 public:
  // remos-hot
  double rate(int link) const {
    std::lock_guard<std::mutex> lk(mu_);
    if (rates_.empty()) return 0.0;
    return rates_[static_cast<std::size_t>(link) % rates_.size()];
  }

  // Rebuilds happen off the hot path, where allocation is fine.
  void rebuild(int n) {
    std::lock_guard<std::mutex> lk(mu_);
    rates_.assign(static_cast<std::size_t>(n), 1.0);
  }

 private:
  // remos-hot-leaf
  mutable std::mutex mu_;  // remos-lock-order(40)
  std::vector<double> rates_;  // remos-guarded-by(mu_)
};

// ---- published snapshots done right ---------------------------------------

// Deeply immutable after construction: no mutable members, only const
// accessors, shared freely across reader threads.
// remos-published
struct RateTable {
  int epoch = 0;
  double mean = 0.0;
  double at() const { return mean; }
};

// RCU-style slot: the writer builds a fresh table and release-stores it;
// readers acquire-load and keep their reference for the query duration.
class RatePublisher {
 public:
  void publish(int epoch, double mean) {
    REMOS_CHECK(epoch >= 0, "snapshot epochs are monotone and non-negative");
    auto next = std::make_shared<RateTable>();
    next->epoch = epoch;
    next->mean = mean;
    current_.store(std::move(next), std::memory_order_release);
  }

  std::shared_ptr<const RateTable> current() const {
    return current_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<std::shared_ptr<const RateTable>> current_;
};

}  // namespace demo
