// Twin of bad/conc_deep.cpp: the lock is released before the helper that
// enters the pool, so the entry-held fixpoint carries nothing through.
#include <mutex>

#include "sim/conc.hpp"

namespace demo {
namespace {

std::mutex g_mu;  // remos-lock-order(60)
int g_total = 0;

}  // namespace

void deep_inner(MiniPool& pool) {
  pool.submit([] {});
}

void deep_outer(MiniPool& pool) {
  {
    std::lock_guard<std::mutex> lk(g_mu);
    g_total = g_total + 1;
  }
  deep_inner(pool);
}

}  // namespace demo
