#pragma once
#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <vector>

namespace demo {

// Stand-in for sim::ThreadPool: the concurrency pass keys on the entry
// point names, not the type.
class MiniPool {
 public:
  template <typename F>
  void submit(F f) {
    (void)f;
  }
  void parallel_for(int items, const std::function<void(int)>& fn) {
    for (int i = 0; i < items; ++i) fn(i);
  }
  void parallel_ranges(int items, int lanes,
                       const std::function<void(int, int, int)>& fn) {
    (void)lanes;
    fn(0, 0, items);
  }
};

// Minimal scheduled-callback sink: the receiver type name is what marks a
// call to at/after/every/schedule as event-loop dispatch.
class DemoEngine {
 public:
  template <typename F>
  long after(double delay, F fn) {
    (void)delay;
    (void)fn;
    return 0;
  }
};

// Pool-escaping member, protected: atomic.
class Stage {
 public:
  void kick() {
    pool_->submit([this] { work_.fetch_add(1); });
  }

 private:
  MiniPool* pool_ = nullptr;
  std::atomic<int> work_{0};
};

// Mutex-owning class with a complete protection story: explicit guards,
// every access under the lock, helper contract via remos-requires.
class Registry {
 public:
  int peek() const {
    std::lock_guard<std::mutex> lk(mu_);
    return total_;
  }
  void bump() {
    std::lock_guard<std::mutex> lk(mu_);
    total_ = total_ + 1;
  }
  void drain() {
    std::lock_guard<std::mutex> lk(mu_);
    helper();
  }

 private:
  // remos-requires(mu_)
  void helper() { pending_ = 0; }
  int total_ = 0;    // remos-guarded-by(mu_)
  int pending_ = 0;  // remos-guarded-by(mu_)
  mutable std::mutex mu_;  // remos-lock-order(10)
};

// The wait releases exactly the lock it was handed — nothing else is held.
class Waiter {
 public:
  void wait_ok() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk);
  }

 private:
  std::condition_variable cv_;
  std::mutex mu_;  // remos-lock-order(30)
};

// Snapshot under the lock, dispatch after releasing it. The pool pointer
// is const-after-construction, so it needs no lock to read.
class Dispatcher {
 public:
  void go() {
    int items = 0;
    {
      std::lock_guard<std::mutex> lk(mu_);
      items = queued_;
    }
    pool_->parallel_for(items, [](int) {});
  }

 private:
  MiniPool* const pool_ = nullptr;
  std::mutex mu_;  // remos-lock-order(50)
  int queued_ = 0;
};

// Scheduled-only escape in a mutex-free class: event callbacks run on the
// single simulation thread, so plain members are fine (inventoried as
// sim-thread-only, not flagged).
class Ticker {
 public:
  void arm() {
    engine_->after(1.0, [this] { ticks_ = ticks_ + 1; });
  }

 private:
  DemoEngine* engine_ = nullptr;
  long ticks_ = 0;
};

// Pool escape that is safe by construction: the suppression discipline.
class Lanes {
 public:
  void kick() {
    pool_->parallel_ranges(4, 2, [this](int lane, int begin, int end) {
      for (int i = begin; i < end; ++i) slots_[i] = lane;
    });
  }

 private:
  MiniPool* pool_ = nullptr;
  // remos-analyze: allow(concurrency): parallel_ranges hands each lane a disjoint [begin, end) slice, so no element is written by two lanes.
  std::vector<int> slots_;
};

}  // namespace demo
