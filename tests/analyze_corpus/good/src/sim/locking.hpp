#pragma once
#include <mutex>

namespace demo {

class Widget {
 public:
  void touch() {
    std::lock_guard<std::mutex> lk(mu_);
    count_ = count_ + 1;
  }

 private:
  std::mutex mu_;  // remos-lock-order(20)
  int count_ = 0;
  std::mutex aux_mu_;  // remos-lock-order(25)
};

}  // namespace demo
