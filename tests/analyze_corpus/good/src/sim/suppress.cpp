#include <mutex>

namespace demo {
namespace {
std::mutex g_mu;  // remos-lock-order(10)
int counter = 0;
}  // namespace

void locked_bump() {
  std::lock_guard<std::mutex> lk(g_mu);
  counter = counter + 1;
}

void init() {
  // remos-analyze: allow(lock): single-threaded init runs before any worker exists.
  counter = 7;
}

}  // namespace demo
