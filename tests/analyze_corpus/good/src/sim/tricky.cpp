// Tokenizer hardening pins. Annotation-shaped text inside string literals
// must not become real annotations or suppressions (a phantom allow() here
// would surface as a "stale suppression" finding and break this corpus),
// digit separators must lex as one number, and raw strings must not
// swallow following code.
namespace demo {

const char* kDoc = R"(
  // remos-analyze: allow(lock): not a suppression - inside a raw string
  // remos-lock-order(99)
  // remos-guarded-by(phantom_mu_)
)";

const char* kUrl = "http://example.com/metrics";  // "//" inside the literal

long distance_budget() { return 1'000'000; }

}  // namespace demo
