#pragma once
#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace demo {

// Pool stand-in local to this file (the pass keys on the entry-point
// names submit/parallel_for, not on the type).
class SnapPool {
 public:
  template <typename F>
  void submit(F f) {
    (void)f;
  }
  void parallel_for(int items, const std::function<void(int)>& fn) {
    for (int i = 0; i < items; ++i) fn(i);
  }
};

struct Snap {
  int epoch = 0;
  double total = 0.0;
};
using SnapPtr = std::shared_ptr<const Snap>;

// The snapshot-swap idiom: one writer builds an immutable snapshot and
// publishes it with a release store; pool-executed readers take an
// acquire load and never touch the slot again. The slot is a bare
// std::atomic member — its protection story is the atomic itself, no
// mutex required for the read path.
class SnapServer {
 public:
  void publish(int epoch, double total) {
    auto next = std::make_shared<Snap>();
    next->epoch = epoch;
    next->total = total;
    published_.store(std::move(next), std::memory_order_release);
  }

  void serve(int clients) {
    pool_->parallel_for(clients, [this](int) {
      const SnapPtr snap = published_.load(std::memory_order_acquire);
      if (snap) sink(snap->total);
    });
  }

  // Per-epoch memo for identical queries: plain map, every access under
  // its explicitly named lock.
  double memoized(const std::string& key) {
    std::lock_guard<std::mutex> lk(memo_mu_);
    auto [it, fresh] = memo_.emplace(key, 0.0);
    if (fresh) it->second = 1.0;
    return it->second;
  }

 private:
  static void sink(double v) { (void)v; }
  SnapPool* const pool_ = nullptr;
  std::atomic<SnapPtr> published_;
  std::mutex memo_mu_;  // remos-lock-order(20)
  std::map<std::string, double> memo_;  // remos-guarded-by(memo_mu_)
};

}  // namespace demo
