#include <mutex>

namespace demo {
namespace {
std::mutex g_low;   // remos-lock-order(10)
std::mutex g_high;  // remos-lock-order(30)
}  // namespace

void take_high() { std::lock_guard<std::mutex> lk(g_high); }

void forwards() {
  std::lock_guard<std::mutex> lo(g_low);
  std::lock_guard<std::mutex> hi(g_high);
}

void forwards_via_call() {
  std::lock_guard<std::mutex> lo(g_low);
  take_high();
}

}  // namespace demo
