#include "core/render.hpp"

namespace demo {

int use_render() { return 0; }

}  // namespace demo
