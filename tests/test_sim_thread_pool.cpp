// ThreadPool: submission, results, exceptions, parallel_for coverage.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "sim/thread_pool.hpp"

namespace remos::sim {
namespace {

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 7 * 6; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 200; ++i) {
    futs.push_back(pool.submit([&count] { count.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, ExceptionsPropagateThroughFuture) {
  ThreadPool pool(2);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, ZeroWorkersClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 1u);
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(500);
  pool.parallel_for(500, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 5) throw std::logic_error("bad index");
                                 }),
               std::logic_error);
}

TEST(ThreadPool, DestructorDrainsCleanly) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      (void)pool.submit([&count] { count.fetch_add(1); });
    }
  }  // destructor joins
  EXPECT_LE(count.load(), 50);
}

}  // namespace
}  // namespace remos::sim
