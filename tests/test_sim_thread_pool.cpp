// ThreadPool: submission, results, exceptions, parallel_for coverage.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <tuple>

#include "sim/thread_pool.hpp"

namespace remos::sim {
namespace {

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 7 * 6; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 200; ++i) {
    futs.push_back(pool.submit([&count] { count.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, ExceptionsPropagateThroughFuture) {
  ThreadPool pool(2);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, ZeroWorkersClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 1u);
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(500);
  pool.parallel_for(500, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 5) throw std::logic_error("bad index");
                                 }),
               std::logic_error);
}

TEST(ThreadPool, ParallelRangesCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  std::atomic<std::size_t> lanes_seen{0};
  pool.parallel_ranges(1000, 8, [&](std::size_t task, std::size_t begin, std::size_t end) {
    EXPECT_LT(task, 8u);
    EXPECT_LE(begin, end);
    lanes_seen.fetch_add(1);
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_LE(lanes_seen.load(), 8u);
}

TEST(ThreadPool, ParallelRangesZeroItemsIsNoop) {
  ThreadPool pool(2);
  pool.parallel_ranges(0, 4, [](std::size_t, std::size_t, std::size_t) {
    FAIL() << "must not run";
  });
}

TEST(ThreadPool, ParallelRangesOneItemManyWorkers) {
  // More lanes than items: the single item lands in exactly one range and
  // the task index stays below min(n, max_tasks).
  ThreadPool pool(8);
  std::atomic<int> runs{0};
  pool.parallel_ranges(1, 16, [&](std::size_t task, std::size_t begin, std::size_t end) {
    EXPECT_EQ(task, 0u);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 1u);
    runs.fetch_add(1);
  });
  EXPECT_EQ(runs.load(), 1);
}

TEST(ThreadPool, ParallelRangesZeroMaxTasksStillCovers) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(10);
  pool.parallel_ranges(10, 0, [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelRangesPropagatesLaneException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.parallel_ranges(100, 4,
                           [&](std::size_t task, std::size_t, std::size_t) {
                             if (task == 2) throw std::logic_error("lane failed");
                             completed.fetch_add(1);
                           }),
      std::logic_error);
  // Every lane was joined before the rethrow: nothing is still running.
  EXPECT_LE(completed.load(), 3);
}

TEST(ThreadPool, ParallelRangesDeterministicBoundaries) {
  // Range boundaries depend only on (n, max_tasks), not scheduling: two
  // runs must see the identical (task, begin, end) set.
  ThreadPool pool(4);
  auto collect = [&pool] {
    std::mutex mu;
    std::vector<std::tuple<std::size_t, std::size_t, std::size_t>> out;
    pool.parallel_ranges(97, 6, [&](std::size_t task, std::size_t begin, std::size_t end) {
      std::lock_guard lock(mu);
      out.emplace_back(task, begin, end);
    });
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(collect(), collect());
}

TEST(ThreadPool, DestructorDrainsCleanly) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      (void)pool.submit([&count] { count.fetch_add(1); });
    }
  }  // destructor joins
  EXPECT_LE(count.load(), 50);
}

}  // namespace
}  // namespace remos::sim
