// NWS-style multi-expert predictor and AIC model selection.
#include <gtest/gtest.h>

#include "net/hostload.hpp"
#include "rps/multi_expert.hpp"
#include "rps/predictor.hpp"
#include "sim/rng.hpp"

namespace remos::rps {
namespace {

std::vector<double> ar1_series(double phi, std::size_t n, std::uint64_t seed, double mu = 0.0) {
  sim::Rng rng(seed);
  std::vector<double> xs;
  double x = 0.0;
  for (std::size_t t = 0; t < n + 100; ++t) {
    x = phi * x + rng.normal();
    if (t >= 100) xs.push_back(mu + x);
  }
  return xs;
}

std::vector<ModelSpec> panel() {
  return {ModelSpec::mean(), ModelSpec::last(), ModelSpec::window_avg(16), ModelSpec::ar(8)};
}

TEST(MultiExpert, RequiresExperts) {
  EXPECT_THROW(MultiExpertPredictor({}), std::invalid_argument);
}

TEST(MultiExpert, PushBeforePrimeThrows) {
  MultiExpertPredictor p(panel());
  EXPECT_THROW(p.push(1.0), std::logic_error);
  EXPECT_THROW(p.predict(), std::logic_error);
}

TEST(MultiExpert, DropsInfeasibleExperts) {
  MultiExpertPredictor p({ModelSpec::mean(), ModelSpec::ar(64)});
  const std::vector<double> tiny{1, 2, 3, 4, 5, 6, 7, 8};
  p.prime(tiny);
  EXPECT_EQ(p.expert_count(), 1u);  // AR(64) cannot fit 8 samples
  EXPECT_TRUE(p.primed());
}

TEST(MultiExpert, PicksArOnAutocorrelatedSignal) {
  MultiExpertPredictor p(panel());
  const auto xs = ar1_series(0.9, 3000, 1);
  p.prime(std::span(xs).subspan(0, 2000));
  for (std::size_t t = 2000; t < xs.size(); ++t) p.push(xs[t]);
  EXPECT_EQ(p.best_expert(), "AR8");
}

TEST(MultiExpert, PicksWindowOnNoisySignal) {
  // Pure white noise around a mean: averaging models beat LAST; AR offers
  // nothing. Winner must be MEAN or BM16, never LAST.
  MultiExpertPredictor p(panel());
  sim::Rng rng(2);
  std::vector<double> xs;
  for (int i = 0; i < 3000; ++i) xs.push_back(5.0 + rng.normal());
  p.prime(std::span(xs).subspan(0, 2000));
  for (std::size_t t = 2000; t < xs.size(); ++t) p.push(xs[t]);
  EXPECT_NE(p.best_expert(), "LAST");
}

TEST(MultiExpert, SwitchesOnRegimeChange) {
  // Steep ramp (trend followers win) followed by loud white noise around a
  // fixed level (averagers win): the panel must switch experts.
  MultiExpertPredictor p(panel());
  sim::Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 1200; ++i) xs.push_back(2.0 * i + rng.normal(0.0, 0.3));
  p.prime(xs);
  double level = xs.back();
  for (int i = 0; i < 300; ++i) {
    level += 2.0;
    p.push(level + rng.normal(0.0, 0.3));
  }
  const std::string trending = p.best_expert();
  EXPECT_TRUE(trending == "LAST" || trending == "AR8") << trending;
  for (int i = 0; i < 1200; ++i) p.push(level + rng.normal(0.0, 40.0));
  const std::string noisy = p.best_expert();
  EXPECT_GE(p.switches(), 1u);
  EXPECT_TRUE(noisy == "MEAN" || noisy == "BM16") << noisy;
}

TEST(MultiExpert, TracksCloseToRefittingRps) {
  // The paper's framing: RPS refits one good model; NWS switches among
  // simple ones. On host load both should land in the same error ballpark,
  // with the well-chosen AR(16) at least as good.
  sim::Rng rng(4);
  const auto series = net::generate_host_load(4000, rng);
  const std::vector<double> train(series.begin(), series.begin() + 3000);

  StreamingPredictor rps(ModelSpec::ar(16));
  rps.prime(train);
  MultiExpertPredictor nws(panel());
  nws.prime(train);

  double rps_sse = 0.0, nws_sse = 0.0;
  double rps_pred = train.back(), nws_pred = train.back();
  for (std::size_t t = 3000; t < series.size(); ++t) {
    rps_sse += (series[t] - rps_pred) * (series[t] - rps_pred);
    nws_sse += (series[t] - nws_pred) * (series[t] - nws_pred);
    rps_pred = rps.push(series[t]).mean[0];
    nws_pred = nws.push(series[t]).mean[0];
  }
  EXPECT_LE(rps_sse, nws_sse * 1.05);  // the tuned model is not worse
  EXPECT_LE(nws_sse, rps_sse * 2.0);   // ...and the hedge stays competitive
}

TEST(SelectModelAic, PrefersArForArData) {
  const auto xs = ar1_series(0.85, 4000, 5);
  const std::vector<ModelSpec> candidates{ModelSpec::mean(), ModelSpec::ar(1), ModelSpec::ar(4)};
  const std::size_t best = select_model_aic(candidates, xs);
  EXPECT_GE(best, 1u);  // some AR beats MEAN
}

TEST(SelectModelAic, PenalizesUselessParameters) {
  // White noise: MEAN (1 parameter) should beat AR(16) (17 parameters)
  // once AIC's penalty is applied.
  sim::Rng rng(6);
  std::vector<double> xs;
  for (int i = 0; i < 4000; ++i) xs.push_back(rng.normal(3.0, 1.0));
  const std::vector<ModelSpec> candidates{ModelSpec::mean(), ModelSpec::ar(16)};
  EXPECT_EQ(select_model_aic(candidates, xs), 0u);
}

TEST(SelectModelAic, SkipsInfeasibleCandidates) {
  const std::vector<double> tiny{1, 2, 3, 4, 5, 6};
  const std::vector<ModelSpec> candidates{ModelSpec::ar(32), ModelSpec::mean()};
  EXPECT_EQ(select_model_aic(candidates, tiny), 1u);
  EXPECT_THROW((void)select_model_aic({}, tiny), std::invalid_argument);
}

}  // namespace
}  // namespace remos::rps
