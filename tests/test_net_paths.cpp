// Path resolution: L2 delivery, routed forwarding, routing tables.
#include <gtest/gtest.h>

#include "net/l2.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"

namespace remos::net {
namespace {

/// Two LANs joined by a router chain:
///   a - swA - r1 --- r2 - swB - b
struct TwoLans {
  Network net{"two-lans"};
  NodeId a, b, r1, r2, swa, swb;
  TwoLans() {
    a = net.add_host("a");
    b = net.add_host("b");
    r1 = net.add_router("r1");
    r2 = net.add_router("r2");
    swa = net.add_switch("swA");
    swb = net.add_switch("swB");
    net.connect(a, swa, 100e6);
    net.connect(swa, r1, 1e9);
    net.connect(r1, r2, 45e6);  // WAN-ish link
    net.connect(r2, swb, 1e9);
    net.connect(b, swb, 100e6);
    net.finalize();
  }
};

TEST(Paths, SameNodeEmptyPath) {
  TwoLans t;
  EXPECT_TRUE(t.net.resolve_path(t.a, t.a).empty());
}

TEST(Paths, IntraSegmentViaSwitch) {
  Network net;
  const NodeId s = net.add_switch("s");
  const NodeId a = net.add_host("a");
  const NodeId b = net.add_host("b");
  net.connect(a, s, 1e8);
  net.connect(b, s, 1e8);
  net.finalize();
  const PathResult p = net.resolve_path(a, b);
  EXPECT_EQ(p.hops.size(), 2u);
  EXPECT_TRUE(p.routers.empty());
  const auto nodes = path_nodes(net, a, p);
  EXPECT_EQ(nodes, (std::vector<NodeId>{a, s, b}));
}

TEST(Paths, RoutedPathTraversesBothRouters) {
  TwoLans t;
  const PathResult p = t.net.resolve_path(t.a, t.b);
  EXPECT_EQ(p.routers, (std::vector<NodeId>{t.r1, t.r2}));
  const auto nodes = path_nodes(t.net, t.a, p);
  EXPECT_EQ(nodes, (std::vector<NodeId>{t.a, t.swa, t.r1, t.r2, t.swb, t.b}));
}

TEST(Paths, ReversePathIsSymmetric) {
  TwoLans t;
  const PathResult fwd = t.net.resolve_path(t.a, t.b);
  const PathResult rev = t.net.resolve_path(t.b, t.a);
  EXPECT_EQ(fwd.hops.size(), rev.hops.size());
  for (std::size_t i = 0; i < fwd.hops.size(); ++i) {
    const Hop& f = fwd.hops[i];
    const Hop& r = rev.hops[rev.hops.size() - 1 - i];
    EXPECT_EQ(f.link, r.link);
    EXPECT_NE(f.forward, r.forward);
  }
}

TEST(Paths, BottleneckCapacityIsMinimum) {
  TwoLans t;
  const PathResult p = t.net.resolve_path(t.a, t.b);
  EXPECT_DOUBLE_EQ(bottleneck_capacity(t.net, p), 45e6);
}

TEST(Paths, LatencyAccumulates) {
  Network net;
  const NodeId a = net.add_host("a");
  const NodeId r = net.add_router("r");
  const NodeId b = net.add_host("b");
  net.connect(a, r, 1e8, 0.010);
  net.connect(r, b, 1e8, 0.020);
  net.finalize();
  const PathResult p = net.resolve_path(a, b);
  EXPECT_NEAR(p.latency_s, 0.030, 1e-12);
  EXPECT_NEAR(path_latency(net, p), 0.030, 1e-12);
}

TEST(Paths, TraceRouteListsRouterAddresses) {
  TwoLans t;
  const PathResult p = t.net.resolve_path(t.a, t.b);
  const auto trace = trace_route(t.net, p);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0], t.net.node(t.r1).primary_address());
  EXPECT_EQ(trace[1], t.net.node(t.r2).primary_address());
}

TEST(Paths, RoutingTablesCoverAllSegments) {
  TwoLans t;
  for (NodeId r : {t.r1, t.r2}) {
    const Node& router = t.net.node(r);
    EXPECT_EQ(router.routes.size(), t.net.segment_count()) << router.name;
  }
}

TEST(Paths, LongestPrefixMatchWins) {
  TwoLans t;
  const Ipv4Address dst = t.net.node(t.b).primary_address();
  const Route* route = t.net.lookup_route(t.r1, dst);
  ASSERT_NE(route, nullptr);
  EXPECT_TRUE(route->dest.contains(dst));
  EXPECT_FALSE(route->next_hop.is_zero());  // b's LAN is not directly attached to r1
  const Route* direct = t.net.lookup_route(t.r2, dst);
  ASSERT_NE(direct, nullptr);
  EXPECT_TRUE(direct->next_hop.is_zero());  // ...but it is to r2
}

TEST(Paths, MultiHopRouterChain) {
  Network net;
  std::vector<NodeId> routers;
  for (int i = 0; i < 5; ++i) routers.push_back(net.add_router("r" + std::to_string(i)));
  for (int i = 0; i + 1 < 5; ++i) net.connect(routers[i], routers[i + 1], 1e8);
  const NodeId a = net.add_host("a");
  const NodeId b = net.add_host("b");
  net.connect(a, routers.front(), 1e8);
  net.connect(b, routers.back(), 1e8);
  net.finalize();
  const PathResult p = net.resolve_path(a, b);
  EXPECT_EQ(p.routers.size(), 5u);
  EXPECT_EQ(p.hops.size(), 6u);
}

TEST(Paths, UnroutableThrows) {
  Network net;
  const NodeId a = net.add_host("a");
  const NodeId b = net.add_host("b");
  const NodeId c = net.add_host("c");
  const NodeId d = net.add_host("d");
  net.connect(a, b, 1e8);
  net.connect(c, d, 1e8);  // disconnected island
  net.finalize();
  EXPECT_THROW(net.resolve_path(a, c), std::runtime_error);
}

TEST(Paths, L2PathThroughSpanningTreeOnly) {
  Network net;
  const NodeId s0 = net.add_switch("s0");
  const NodeId s1 = net.add_switch("s1");
  const NodeId s2 = net.add_switch("s2");
  net.connect(s0, s1, 1e9);
  net.connect(s1, s2, 1e9);
  net.connect(s2, s0, 1e9);  // blocked by spanning tree
  const NodeId a = net.add_host("a");
  const NodeId b = net.add_host("b");
  net.connect(a, s0, 1e8);
  net.connect(b, s2, 1e8);
  net.finalize();
  const auto hops = net.l2_path(a, b);
  for (const Hop& h : hops) EXPECT_TRUE(net.link(h.link).forwarding);
}

TEST(Paths, HostAttachmentHelper) {
  TwoLans t;
  const Attachment att = host_attachment(t.net, t.a);
  EXPECT_EQ(att.device, t.swa);
}

TEST(Paths, FdbSnapshotSorted) {
  TwoLans t;
  const auto snap = fdb_snapshot(t.net.node(t.swa));
  EXPECT_EQ(snap.size(), 2u);  // a and r1 attach to swA's segment
}

TEST(Paths, DescribePathMentionsEndpoints) {
  TwoLans t;
  const PathResult p = t.net.resolve_path(t.a, t.b);
  const std::string desc = describe_path(t.net, t.a, p);
  EXPECT_NE(desc.find("a"), std::string::npos);
  EXPECT_NE(desc.find("b"), std::string::npos);
  EXPECT_NE(desc.find("r1"), std::string::npos);
}

}  // namespace
}  // namespace remos::net
