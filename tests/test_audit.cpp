// Audit framework: every auditor must accept healthy inputs and trip the
// right category on corrupted ones. Fail-path tests are skipped when the
// build has audits compiled out (REMOS_AUDIT=OFF) — there is nothing to
// trip — but pass paths still run to prove the no-op stubs stay callable.
#include <gtest/gtest.h>

#include <limits>

#include "apps/testbed.hpp"
#include "core/audit.hpp"
#include "core/maxmin.hpp"
#include "core/types.hpp"
#include "sim/event_queue.hpp"
#include "snmp/mib.hpp"
#include "snmp/oids.hpp"

namespace remos {
namespace {

using core::audit::AuditError;
using core::audit::Category;

constexpr double kInf = std::numeric_limits<double>::infinity();

class AuditTest : public ::testing::Test {
 protected:
  void SetUp() override { core::audit::reset_counters(); }
  static bool enabled() { return core::audit::kEnabled; }
};

/// Two hosts joined through one measurable link — minimal healthy topology.
core::VirtualTopology healthy_topology() {
  core::VirtualTopology topo;
  const auto a = topo.add_node(
      core::VNode{core::VNodeKind::kHost, "a", net::Ipv4Address(10, 0, 0, 1)});
  const auto b = topo.add_node(
      core::VNode{core::VNodeKind::kHost, "b", net::Ipv4Address(10, 0, 0, 2)});
  topo.add_edge(core::VEdge{a, b, 100e6, 10e6, 5e6, 0.001, "ab"});
  return topo;
}

// ---------------------------------------------------------------------------
// Macro core
// ---------------------------------------------------------------------------

TEST_F(AuditTest, CheckPassesQuietly) {
  REMOS_CHECK(1 + 1 == 2, "arithmetic works");
  EXPECT_EQ(core::audit::total_failures(), 0u);
}

TEST_F(AuditTest, CheckThrowsAndCounts) {
  if (!enabled() && !core::audit::kCheckActive) GTEST_SKIP() << "REMOS_CHECK compiled out";
  EXPECT_THROW(REMOS_CHECK(false, "deliberately false"), AuditError);
  EXPECT_EQ(core::audit::failure_count(Category::kInvariant), 1u);
}

TEST_F(AuditTest, AuditCarriesCategoryAndMessage) {
  if (!enabled()) GTEST_SKIP() << "audits compiled out";
  try {
    REMOS_AUDIT(kTopology, false, "spotted on purpose");
    FAIL() << "REMOS_AUDIT did not throw";
  } catch (const AuditError& e) {
    EXPECT_EQ(e.category(), Category::kTopology);
    EXPECT_NE(std::string(e.what()).find("spotted on purpose"), std::string::npos);
  }
  EXPECT_EQ(core::audit::failure_count(Category::kTopology), 1u);
}

TEST_F(AuditTest, WarnSeverityCountsWithoutThrowing) {
  if (!enabled()) GTEST_SKIP() << "audits compiled out";
  EXPECT_NO_THROW(REMOS_AUDIT_SEV(kCache, kWarn, false, "just a warning"));
  EXPECT_EQ(core::audit::failure_count(Category::kCache), 1u);
  core::audit::reset_counters();
  EXPECT_EQ(core::audit::total_failures(), 0u);
}

// ---------------------------------------------------------------------------
// Topology auditor
// ---------------------------------------------------------------------------

TEST_F(AuditTest, TopologyHealthyPasses) {
  EXPECT_NO_THROW(core::audit::audit_topology(healthy_topology()));
}

TEST_F(AuditTest, TopologyEndpointOutOfRangeTrips) {
  if (!enabled()) GTEST_SKIP() << "audits compiled out";
  auto topo = healthy_topology();
  topo.edges()[0].b = 99;  // no such node
  EXPECT_THROW(core::audit::audit_topology(topo), AuditError);
  EXPECT_GE(core::audit::failure_count(Category::kTopology), 1u);
}

TEST_F(AuditTest, TopologySelfLoopTrips) {
  if (!enabled()) GTEST_SKIP() << "audits compiled out";
  auto topo = healthy_topology();
  topo.edges()[0].b = topo.edges()[0].a;
  EXPECT_THROW(core::audit::audit_topology(topo), AuditError);
}

TEST_F(AuditTest, TopologyNegativeCapacityTrips) {
  if (!enabled()) GTEST_SKIP() << "audits compiled out";
  auto topo = healthy_topology();
  topo.edges()[0].capacity_bps = -1.0;
  EXPECT_THROW(core::audit::audit_topology(topo), AuditError);
}

TEST_F(AuditTest, TopologyNanLatencyTrips) {
  if (!enabled()) GTEST_SKIP() << "audits compiled out";
  auto topo = healthy_topology();
  topo.edges()[0].latency_s = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(core::audit::audit_topology(topo), AuditError);
}

TEST_F(AuditTest, TopologyDuplicateEdgeTrips) {
  if (!enabled()) GTEST_SKIP() << "audits compiled out";
  auto topo = healthy_topology();
  // add_edge() dedups (merge refresh semantics), so corrupt the edge list
  // directly — the state a buggy merge would have to produce.
  topo.edges().push_back(topo.edges()[0]);
  EXPECT_THROW(core::audit::audit_topology(topo), AuditError);
}

TEST_F(AuditTest, TopologyAddressedVirtualSwitchTrips) {
  if (!enabled()) GTEST_SKIP() << "audits compiled out";
  core::VirtualTopology topo = healthy_topology();
  // A virtual switch must be addressless: it models an unmeasurable element.
  topo.add_node(core::VNode{core::VNodeKind::kVirtualSwitch, "vs:bad",
                            net::Ipv4Address(10, 0, 0, 9)});
  EXPECT_THROW(core::audit::audit_topology(topo), AuditError);
}

TEST_F(AuditTest, TopologyUtilizationOverCapacityOnlyWarns) {
  if (!enabled()) GTEST_SKIP() << "audits compiled out";
  auto topo = healthy_topology();
  topo.edges()[0].util_ab_bps = topo.edges()[0].capacity_bps * 2;  // counters overshoot
  EXPECT_NO_THROW(core::audit::audit_topology(topo));
  EXPECT_EQ(core::audit::failure_count(Category::kTopology), 1u);  // counted, not thrown
}

// ---------------------------------------------------------------------------
// Max-min auditor
// ---------------------------------------------------------------------------

TEST_F(AuditTest, MaxMinHealthyAllocationPasses) {
  auto topo = healthy_topology();
  std::vector<core::FlowRequest> reqs(2);
  reqs[0] = {net::Ipv4Address(10, 0, 0, 1), net::Ipv4Address(10, 0, 0, 2), kInf};
  reqs[1] = {net::Ipv4Address(10, 0, 0, 2), net::Ipv4Address(10, 0, 0, 1), 5e6};
  // max_min_allocate self-audits on the way out; auditing again is idempotent.
  const auto result = core::max_min_allocate(topo, reqs);
  EXPECT_NO_THROW(core::audit::audit_max_min(topo, reqs, result));
}

TEST_F(AuditTest, MaxMinSizeMismatchTrips) {
  if (!enabled()) GTEST_SKIP() << "audits compiled out";
  auto topo = healthy_topology();
  std::vector<core::FlowRequest> reqs(1);
  reqs[0] = {net::Ipv4Address(10, 0, 0, 1), net::Ipv4Address(10, 0, 0, 2), kInf};
  core::MaxMinResult result;  // empty: wrong size
  EXPECT_THROW(core::audit::audit_max_min(topo, reqs, result), AuditError);
  EXPECT_GE(core::audit::failure_count(Category::kMaxMin), 1u);
}

TEST_F(AuditTest, MaxMinOvercommittedEdgeTrips) {
  if (!enabled()) GTEST_SKIP() << "audits compiled out";
  auto topo = healthy_topology();
  std::vector<core::FlowRequest> reqs(1);
  reqs[0] = {net::Ipv4Address(10, 0, 0, 1), net::Ipv4Address(10, 0, 0, 2), kInf};
  auto result = core::max_min_allocate(topo, reqs);
  // Corrupt: promise more than the link's residual capacity.
  result.flows[0].available_bps = topo.edges()[0].capacity_bps * 2;
  EXPECT_THROW(core::audit::audit_max_min(topo, reqs, result), AuditError);
}

TEST_F(AuditTest, MaxMinUnroutableWithRateTrips) {
  if (!enabled()) GTEST_SKIP() << "audits compiled out";
  auto topo = healthy_topology();
  std::vector<core::FlowRequest> reqs(1);
  reqs[0] = {net::Ipv4Address(10, 0, 0, 1), net::Ipv4Address(192, 168, 0, 7), kInf};
  auto result = core::max_min_allocate(topo, reqs);
  ASSERT_FALSE(result.flows[0].routable());
  result.flows[0].available_bps = 1e6;  // unroutable flows must report zero
  EXPECT_THROW(core::audit::audit_max_min(topo, reqs, result), AuditError);
}

TEST_F(AuditTest, MaxMinStarvedFlowTrips) {
  if (!enabled()) GTEST_SKIP() << "audits compiled out";
  auto topo = healthy_topology();
  std::vector<core::FlowRequest> reqs(1);
  reqs[0] = {net::Ipv4Address(10, 0, 0, 1), net::Ipv4Address(10, 0, 0, 2), kInf};
  auto result = core::max_min_allocate(topo, reqs);
  // Corrupt: a flow far below demand with no saturated link to blame.
  result.flows[0].available_bps = 1.0;
  EXPECT_THROW(core::audit::audit_max_min(topo, reqs, result), AuditError);
}

// ---------------------------------------------------------------------------
// Response / cache auditors
// ---------------------------------------------------------------------------

TEST_F(AuditTest, ResponseHealthyPasses) {
  core::CollectorResponse resp;
  resp.topology = healthy_topology();
  resp.topology.edges()[0].staleness_s = 2.0;
  resp.max_staleness_s = 2.0;
  resp.cost_s = 0.5;
  EXPECT_NO_THROW(core::audit::audit_response(resp, /*now=*/10.0));
}

TEST_F(AuditTest, ResponseStalenessBeyondVirtualTimeTrips) {
  if (!enabled()) GTEST_SKIP() << "audits compiled out";
  core::CollectorResponse resp;
  resp.topology = healthy_topology();
  // Claims the measurement is older than the simulation itself.
  resp.topology.edges()[0].staleness_s = 99.0;
  resp.max_staleness_s = 99.0;
  EXPECT_THROW(core::audit::audit_response(resp, /*now=*/10.0), AuditError);
  EXPECT_GE(core::audit::failure_count(Category::kCache), 1u);
}

TEST_F(AuditTest, ResponseUnderstatedMaxStalenessTrips) {
  if (!enabled()) GTEST_SKIP() << "audits compiled out";
  core::CollectorResponse resp;
  resp.topology = healthy_topology();
  resp.topology.edges()[0].staleness_s = 5.0;
  resp.max_staleness_s = 1.0;  // lies about answer quality
  EXPECT_THROW(core::audit::audit_response(resp, /*now=*/10.0), AuditError);
}

TEST_F(AuditTest, TimestampInFutureTrips) {
  if (!enabled()) GTEST_SKIP() << "audits compiled out";
  EXPECT_NO_THROW(core::audit::audit_timestamp("t", 3.0, 10.0));
  EXPECT_THROW(core::audit::audit_timestamp("t", 11.0, 10.0), AuditError);
  EXPECT_THROW(core::audit::audit_timestamp("t", -1.0, 10.0), AuditError);
}

TEST_F(AuditTest, CollectorCachesStayAuditClean) {
  apps::LanTestbed lan;
  lan.engine.run_until(20.0);
  (void)lan.collector->query(lan.host_addrs(4));
  EXPECT_NO_THROW(lan.collector->audit_caches());
}

// ---------------------------------------------------------------------------
// MIB auditor
// ---------------------------------------------------------------------------

TEST_F(AuditTest, DeviceMibsPassAudit) {
  apps::LanTestbed lan;
  // build_device_mib self-audits; rebuild one per device kind explicitly.
  for (const net::Node& n : lan.net.nodes()) {
    if (!n.snmp_enabled) continue;
    EXPECT_NO_THROW(snmp::build_device_mib(lan.net, n.id).audit()) << n.name;
  }
}

TEST_F(AuditTest, WalkOrderViolationTrips) {
  if (!enabled()) GTEST_SKIP() << "audits compiled out";
  std::vector<snmp::VarBind> binds;
  binds.push_back({snmp::oids::kIfIndex.child(1), std::int64_t{1}});
  binds.push_back({snmp::oids::kIfIndex.child(3), std::int64_t{3}});
  EXPECT_NO_THROW(snmp::audit_walk_order(binds));
  binds.push_back({snmp::oids::kIfIndex.child(2), std::int64_t{2}});  // went backwards
  EXPECT_THROW(snmp::audit_walk_order(binds), AuditError);
  EXPECT_GE(core::audit::failure_count(Category::kMib), 1u);
}

// ---------------------------------------------------------------------------
// Sim auditor
// ---------------------------------------------------------------------------

TEST_F(AuditTest, EventQueuePopMonotonicityTrips) {
  if (!enabled()) GTEST_SKIP() << "audits compiled out";
  sim::EventQueue q;
  q.schedule(5.0, [] {});
  EXPECT_NO_THROW((void)q.pop());
  // Scheduling behind an already-fired instant rewinds simulated time.
  q.schedule(1.0, [] {});
  EXPECT_THROW((void)q.pop(), core::audit::AuditError);
  EXPECT_GE(core::audit::failure_count(Category::kSim), 1u);
  // clear() resets the monotonicity watermark.
  q.clear();
  q.schedule(0.5, [] {});
  EXPECT_NO_THROW((void)q.pop());
}

}  // namespace
}  // namespace remos
