// Traffic generators: on/off cycling, Poisson arrivals, Netperf sessions,
// host-load signal properties.
#include <gtest/gtest.h>

#include "net/hostload.hpp"
#include "net/traffic.hpp"
#include "rps/series.hpp"

namespace remos::net {
namespace {

struct Pipe {
  Network net{"pipe"};
  sim::Engine engine;
  NodeId a, b;
  std::unique_ptr<FlowEngine> flows;
  Pipe() {
    a = net.add_host("a");
    const NodeId r = net.add_router("r");
    b = net.add_host("b");
    net.connect(a, r, 10e6);
    net.connect(r, b, 10e6);
    net.finalize();
    flows = std::make_unique<FlowEngine>(engine, net);
  }
};

TEST(OnOffSource, CyclesBetweenStates) {
  Pipe p;
  OnOffSource src(p.engine, *p.flows, sim::Rng(1), {p.a, p.b, 5e6, 2.0, 2.0});
  src.start();
  int on_seen = 0, off_seen = 0;
  for (int i = 0; i < 400; ++i) {
    p.engine.advance(0.25);
    (src.in_on_period() ? on_seen : off_seen)++;
  }
  // Both states must occur with comparable frequency.
  EXPECT_GT(on_seen, 50);
  EXPECT_GT(off_seen, 50);
}

TEST(OnOffSource, StopTearsDownFlow) {
  Pipe p;
  OnOffSource src(p.engine, *p.flows, sim::Rng(2), {p.a, p.b, 5e6, 100.0, 0.001});
  src.start();
  p.engine.advance(1.0);  // almost surely in "on"
  EXPECT_TRUE(src.in_on_period());
  EXPECT_EQ(p.flows->active_count(), 1u);
  src.stop();
  EXPECT_EQ(p.flows->active_count(), 0u);
  p.engine.advance(5.0);
  EXPECT_EQ(p.flows->active_count(), 0u);  // no zombie reschedule
}

TEST(OnOffSource, RespectsDemandCap) {
  Pipe p;
  OnOffSource src(p.engine, *p.flows, sim::Rng(3), {p.a, p.b, 3e6, 50.0, 0.001});
  src.start();
  p.engine.advance(2.0);
  ASSERT_TRUE(src.in_on_period());
  const PathResult path = p.net.resolve_path(p.a, p.b);
  EXPECT_DOUBLE_EQ(p.flows->directed_link_rate(path.hops[0].link, path.hops[0].forward), 3e6);
}

TEST(PoissonSource, LaunchesRoughlyLambdaT) {
  Pipe p;
  PoissonSource::Params params;
  params.src = p.a;
  params.dst = p.b;
  params.arrivals_per_s = 2.0;
  params.min_bytes = 1e3;
  params.pareto_alpha = 1.8;
  PoissonSource src(p.engine, *p.flows, sim::Rng(4), params);
  src.start();
  p.engine.advance(200.0);
  src.stop();
  EXPECT_NEAR(static_cast<double>(src.flows_launched()), 400.0, 80.0);
}

TEST(PoissonSource, TransfersEventuallyDrain) {
  Pipe p;
  PoissonSource::Params params;
  params.src = p.a;
  params.dst = p.b;
  params.arrivals_per_s = 1.0;
  params.min_bytes = 10e3;
  PoissonSource src(p.engine, *p.flows, sim::Rng(5), params);
  src.start();
  p.engine.advance(30.0);
  src.stop();
  p.engine.advance(3600.0);  // generous drain time for the pareto tail
  EXPECT_EQ(p.flows->active_count(), 0u);
}

TEST(NetperfSession, MeasuresBurstThroughput) {
  Pipe p;
  std::vector<NetperfBurst> bursts{
      {.start = 1.0, .duration_s = 4.0, .demand_bps = 4e6},  // below capacity: achieves demand
      {.start = 6.0, .duration_s = 4.0},  // greedy: achieves link capacity
  };
  NetperfSession session(p.engine, *p.flows, p.a, p.b, bursts, 0.5);
  session.run();
  p.engine.run_until(12.0);
  ASSERT_EQ(session.burst_throughputs().size(), 2u);
  EXPECT_NEAR(session.burst_throughputs()[0], 4e6, 1e3);
  EXPECT_NEAR(session.burst_throughputs()[1], 10e6, 1e3);
}

TEST(NetperfSession, RateHistoryShowsOnAndOff) {
  Pipe p;
  NetperfSession session(p.engine, *p.flows, p.a, p.b, {{2.0, 3.0, 8e6}}, 0.5);
  session.run();
  p.engine.run_until(8.0);
  const auto& hist = session.rate_history();
  ASSERT_GT(hist.size(), 10u);
  EXPECT_DOUBLE_EQ(hist.mean_over(0.0, 1.9), 0.0);
  EXPECT_NEAR(hist.mean_over(2.6, 4.9), 8e6, 1e3);
  EXPECT_DOUBLE_EQ(hist.mean_over(5.6, 8.0), 0.0);
}

TEST(NetperfSession, RunTwiceThrows) {
  Pipe p;
  NetperfSession session(p.engine, *p.flows, p.a, p.b, {}, 0.5);
  session.run();
  EXPECT_THROW(session.run(), std::logic_error);
}

TEST(HostLoad, NonNegativeAndDeterministic) {
  sim::Rng r1(9), r2(9);
  const auto a = generate_host_load(500, r1);
  const auto b = generate_host_load(500, r2);
  EXPECT_EQ(a, b);
  for (double v : a) EXPECT_GE(v, 0.0);
}

TEST(HostLoad, HasStrongAutocorrelation) {
  sim::Rng rng(10);
  const auto series = generate_host_load(4000, rng);
  const auto acf = rps::autocorrelation(series, 5);
  // Host load is highly predictable short-term (the basis for AR(16)).
  EXPECT_GT(acf[1], 0.5);
  EXPECT_GT(acf[1], acf[5]);
}

TEST(HostLoadSensor, SamplesAtConfiguredRate) {
  sim::Engine engine;
  HostLoadSensor sensor(engine, sim::Rng(11), 0.5);
  sensor.start();
  engine.run_until(10.0);
  EXPECT_EQ(sensor.history().size(), 20u);
  sensor.stop();
  engine.run_until(20.0);
  EXPECT_EQ(sensor.history().size(), 20u);
}

TEST(HostLoadSensor, CallbackSeesEverySample) {
  sim::Engine engine;
  HostLoadSensor sensor(engine, sim::Rng(12), 1.0);
  int called = 0;
  sensor.set_callback([&](sim::Time, double) { ++called; });
  sensor.start();
  engine.run_until(25.0);
  EXPECT_EQ(called, 25);
}

}  // namespace
}  // namespace remos::net
