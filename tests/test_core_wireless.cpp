// Wireless Collector: association tracking, handoffs, expected bandwidth.
#include <gtest/gtest.h>

#include "core/wireless_collector.hpp"
#include "net/flows.hpp"

namespace remos::core {
namespace {

/// Wired distribution switch with two APs (hubs) and three stations.
struct Wlan {
  net::Network net{"wlan"};
  sim::Engine engine;
  net::NodeId sw, ap1, ap2;
  net::NodeId s0, s1, s2;   // stations
  net::NodeId wired;        // a wired host on the switch
  std::unique_ptr<WirelessCollector> collector;

  explicit Wlan(double poll_s = 5.0) {
    sw = net.add_switch("dist-sw");
    ap1 = net.add_hub("ap1", 11e6);  // 802.11b-ish
    ap2 = net.add_hub("ap2", 11e6);
    net.connect(sw, ap1, 100e6);
    net.connect(sw, ap2, 100e6);
    s0 = net.add_host("s0");
    s1 = net.add_host("s1");
    s2 = net.add_host("s2");
    net.connect(s0, ap1, 11e6);
    net.connect(s1, ap1, 11e6);
    net.connect(s2, ap2, 11e6);
    wired = net.add_host("wired");
    net.connect(wired, sw, 100e6);
    net.finalize();

    WirelessCollectorConfig cfg;
    cfg.domain = {net.segment(0).prefix};
    cfg.association_poll_s = poll_s;
    collector = std::make_unique<WirelessCollector>(engine, net, std::vector{ap1, ap2},
                                                    std::move(cfg));
  }
  [[nodiscard]] net::Ipv4Address addr(net::NodeId id) const {
    return net.node(id).primary_address();
  }
};

TEST(WirelessCollector, InitialAssociations) {
  Wlan w;
  EXPECT_EQ(w.collector->association_of(w.addr(w.s0)), w.ap1);
  EXPECT_EQ(w.collector->association_of(w.addr(w.s1)), w.ap1);
  EXPECT_EQ(w.collector->association_of(w.addr(w.s2)), w.ap2);
  EXPECT_EQ(w.collector->station_count(w.ap1), 2u);
  EXPECT_EQ(w.collector->station_count(w.ap2), 1u);
}

TEST(WirelessCollector, WiredHostsAreNotStations) {
  Wlan w;
  EXPECT_EQ(w.collector->association_of(w.addr(w.wired)), net::kNone);
  EXPECT_FALSE(w.collector->expected_bandwidth(w.addr(w.wired)).has_value());
}

TEST(WirelessCollector, ExpectedBandwidthSplitsSharedMedium) {
  Wlan w;
  // ap1 carries two stations: each can expect half of 11 Mb/s.
  EXPECT_DOUBLE_EQ(*w.collector->expected_bandwidth(w.addr(w.s0)), 5.5e6);
  // ap2 carries one: the full medium.
  EXPECT_DOUBLE_EQ(*w.collector->expected_bandwidth(w.addr(w.s2)), 11e6);
}

TEST(WirelessCollector, HandoffDetectedByPoll) {
  Wlan w(/*poll_s=*/0.0);  // manual polling
  w.net.move_host(w.s0, w.ap2, 11e6);
  EXPECT_EQ(w.collector->poll_associations(), 1u);
  EXPECT_EQ(w.collector->handoff_count(), 1u);
  EXPECT_EQ(w.collector->association_of(w.addr(w.s0)), w.ap2);
  EXPECT_EQ(w.collector->station_count(w.ap2), 2u);
  EXPECT_DOUBLE_EQ(*w.collector->expected_bandwidth(w.addr(w.s2)), 5.5e6);
}

TEST(WirelessCollector, PeriodicPollCatchesRoaming) {
  Wlan w(/*poll_s=*/2.0);
  w.net.move_host(w.s1, w.ap2, 11e6);
  w.engine.run_until(3.0);
  EXPECT_EQ(w.collector->handoff_count(), 1u);
  EXPECT_EQ(w.collector->association_of(w.addr(w.s1)), w.ap2);
}

TEST(WirelessCollector, StableNetworkNoHandoffs) {
  Wlan w(/*poll_s=*/1.0);
  w.engine.run_until(30.0);
  EXPECT_EQ(w.collector->handoff_count(), 0u);
}

TEST(WirelessCollector, QueryRendersApsAsVirtualSwitches) {
  Wlan w;
  const auto resp = w.collector->query({w.addr(w.s0), w.addr(w.s2)});
  EXPECT_TRUE(resp.complete);
  std::size_t vswitches = 0;
  for (const VNode& n : resp.topology.nodes()) {
    if (n.kind == VNodeKind::kVirtualSwitch) ++vswitches;
  }
  // ap1 + ap2 + the distribution joiner.
  EXPECT_EQ(vswitches, 3u);
  // Stations connect; the path crosses both APs.
  const auto path = resp.topology.shortest_path(resp.topology.find_by_addr(w.addr(w.s0)),
                                                resp.topology.find_by_addr(w.addr(w.s2)));
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 4u);
}

TEST(WirelessCollector, QueryAnnotatesContention) {
  Wlan w;
  const auto resp = w.collector->query({w.addr(w.s0)});
  ASSERT_EQ(resp.topology.edge_count(), 1u);
  const VEdge& e = resp.topology.edges()[0];
  EXPECT_DOUBLE_EQ(e.capacity_bps, 11e6);
  // Two stations on ap1: a new flow can expect half.
  EXPECT_DOUBLE_EQ(e.available_bps(true), 5.5e6);
}

TEST(WirelessCollector, UnknownStationIncomplete) {
  Wlan w;
  const auto resp = w.collector->query({*net::Ipv4Address::parse("203.0.113.5")});
  EXPECT_FALSE(resp.complete);
}

TEST(WirelessCollector, FluidModelAgreesWithExpectation) {
  // Ground truth check: two greedy flows out of ap1's stations really do
  // split the 11 Mb/s medium — the collector's estimate is honest.
  Wlan w;
  net::FlowEngine flows(w.engine, w.net);
  const auto f0 = flows.start(net::FlowSpec{.src = w.s0, .dst = w.wired});
  const auto f1 = flows.start(net::FlowSpec{.src = w.s1, .dst = w.wired});
  EXPECT_DOUBLE_EQ(flows.rate(f0), 5.5e6);
  EXPECT_DOUBLE_EQ(flows.rate(f1), 5.5e6);
}

}  // namespace
}  // namespace remos::core
