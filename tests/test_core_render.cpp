// DOT / adjacency rendering of virtual topologies.
#include <gtest/gtest.h>

#include "apps/testbed.hpp"
#include "core/render.hpp"

namespace remos::core {
namespace {

VirtualTopology sample() {
  VirtualTopology t;
  const auto h = t.add_node(VNode{VNodeKind::kHost, "h1", *net::Ipv4Address::parse("10.0.0.1")});
  const auto vs = t.add_node(VNode{VNodeKind::kVirtualSwitch, "vs\"x\"", {}});
  t.add_edge(VEdge{h, vs, 100e6, 10e6, 0, 0, "e1"});
  return t;
}

TEST(Render, DotContainsNodesAndEdges) {
  const std::string dot = to_dot(sample());
  EXPECT_NE(dot.find("graph \"remos\""), std::string::npos);
  EXPECT_NE(dot.find("n0 [label=\"h1\", shape=box]"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // virtual switch
  EXPECT_NE(dot.find("n0 -- n1"), std::string::npos);
  EXPECT_NE(dot.find("100.0 Mb/s"), std::string::npos);
}

TEST(Render, DotEscapesQuotes) {
  const std::string dot = to_dot(sample());
  EXPECT_NE(dot.find("vs\\\"x\\\""), std::string::npos);
}

TEST(Render, LabelsCanBeDisabled) {
  RenderOptions opts;
  opts.edge_labels = false;
  opts.graph_name = "g2";
  const std::string dot = to_dot(sample(), opts);
  EXPECT_EQ(dot.find("Mb/s"), std::string::npos);
  EXPECT_NE(dot.find("graph \"g2\""), std::string::npos);
}

TEST(Render, AdjacencyListsNeighbors) {
  const std::string adj = to_adjacency_text(sample());
  EXPECT_NE(adj.find("h1: vs\"x\""), std::string::npos);
}

TEST(Render, RealCollectorTopologyRenders) {
  apps::LanTestbed::Params p;
  p.hosts = 4;
  p.switches = 2;
  apps::LanTestbed lan(p);
  const auto resp = lan.collector->query(lan.host_addrs(4));
  const std::string dot = to_dot(resp.topology);
  // Every node appears once; DOT is balanced.
  for (const VNode& n : resp.topology.nodes()) {
    EXPECT_NE(dot.find(n.name), std::string::npos) << n.name;
  }
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'), 1);
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '}'), 1);
}

}  // namespace
}  // namespace remos::core
