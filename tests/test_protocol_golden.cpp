// Wire-format golden pins. The ASCII and XML protocols are frozen surfaces
// (remote Modelers/Collectors from other builds must interoperate), so the
// exact bytes each encoder produces for a canonical payload are pinned
// under tests/golden/protocol/ and every pin must survive a byte-exact
// decode -> re-encode round trip. remos_lint freezes the ASCII keyword
// *set*; this test freezes the full byte layout.
//
// REMOS_REGEN_GOLDEN=1 regenerates the pins after an intentional format
// change (which is a protocol version bump — say so in the commit).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/protocol.hpp"

namespace remos::core {
namespace {

net::Ipv4Address ip(const char* dotted) { return *net::Ipv4Address::parse(dotted); }

/// Canonical payload exercising every field the encoders serialize: all
/// four node kinds, a zero-address virtual switch, asymmetric utilization,
/// nonzero latency/staleness, a capacity-unknown edge, and an incomplete
/// response with nonzero cost.
CollectorResponse canonical_response() {
  CollectorResponse resp;
  VirtualTopology& t = resp.topology;
  const auto h1 = t.ensure_node({VNodeKind::kHost, "h1", ip("10.0.1.2")});
  const auto r1 = t.ensure_node({VNodeKind::kRouter, "r1", ip("10.0.1.1")});
  const auto sw = t.ensure_node({VNodeKind::kSwitch, "sw0", ip("10.0.2.1")});
  const auto vs = t.ensure_node({VNodeKind::kVirtualSwitch, "vs:dark:1", {}});
  const auto h2 = t.ensure_node({VNodeKind::kHost, "h2", ip("10.0.2.9")});
  t.add_edge({h1, r1, 100e6, 12.5e6, 0.75e6, 0.0005, "if:h1:1", 0.0});
  t.add_edge({r1, sw, 45e6, 30e6, 2e6, 0.002, "if:r1:2", 7.5});
  t.add_edge({sw, vs, 0.0, 0.0, 0.0, 0.0, "vs:dark:1#0", 0.0});
  t.add_edge({vs, h2, 10e6, 1e6, 0.125e6, 0.01, "if:h2:1", 2.25});
  resp.cost_s = 0.04375;
  resp.complete = false;
  resp.max_staleness_s = 7.5;
  return resp;
}

std::vector<net::Ipv4Address> canonical_query() {
  return {ip("10.0.1.2"), ip("10.0.2.9"), ip("192.168.7.33")};
}

sim::MeasurementHistory canonical_history() {
  // Values chosen to be fixpoints of the wire's %.9g double format (nine
  // significant digits — the protocol's precision contract): a literal like
  // 1.0/3.0 would decode to a different double and fail value equality.
  sim::MeasurementHistory h(16);
  h.add(0.0, 45e6);
  h.add(5.0, 32.5e6);
  h.add(10.0, 0.0);
  h.add(15.0, 0.333333333);
  return h;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void golden_check(const std::string& name, const std::string& wire) {
  const std::string path = std::string(REMOS_GOLDEN_DIR) + "/protocol/" + name;
  if (std::getenv("REMOS_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << wire;
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    return;
  }
  const std::string pinned = read_file(path);
  ASSERT_FALSE(pinned.empty()) << path << " missing — run with REMOS_REGEN_GOLDEN=1";
  EXPECT_EQ(wire, pinned)
      << name << ": wire bytes drifted — the protocol surface is frozen "
      << "(intentional format change? regenerate and bump the protocol note)";
}

void expect_response_equal(const CollectorResponse& a, const CollectorResponse& b,
                           bool carries_staleness) {
  EXPECT_DOUBLE_EQ(a.cost_s, b.cost_s);
  EXPECT_EQ(a.complete, b.complete);
  // The ASCII generation predates staleness annotations ("only topologies
  // are exchanged") and drops them on the wire; XML carries them.
  EXPECT_DOUBLE_EQ(b.max_staleness_s, carries_staleness ? a.max_staleness_s : 0.0);
  ASSERT_EQ(a.topology.node_count(), b.topology.node_count());
  ASSERT_EQ(a.topology.edge_count(), b.topology.edge_count());
  for (std::size_t i = 0; i < a.topology.edge_count(); ++i) {
    const VEdge& ea = a.topology.edges()[i];
    const VEdge& eb = b.topology.edges()[i];
    EXPECT_EQ(ea.id, eb.id);
    EXPECT_DOUBLE_EQ(eb.capacity_bps, ea.capacity_bps) << ea.id;
    EXPECT_DOUBLE_EQ(eb.staleness_s, carries_staleness ? ea.staleness_s : 0.0) << ea.id;
  }
}

TEST(ProtocolGolden, AsciiQuery) {
  const std::string wire = ascii_encode_query(canonical_query());
  golden_check("query.ascii", wire);
  const auto decoded = ascii_decode_query(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, canonical_query());
  // Byte-exact round trip: decode -> re-encode reproduces the pin.
  EXPECT_EQ(ascii_encode_query(*decoded), wire);
}

TEST(ProtocolGolden, AsciiResponse) {
  const CollectorResponse resp = canonical_response();
  const std::string wire = ascii_encode_response(resp);
  golden_check("response.ascii", wire);
  const auto decoded = ascii_decode_response(wire);
  ASSERT_TRUE(decoded.has_value());
  expect_response_equal(resp, *decoded, /*carries_staleness=*/false);
  EXPECT_EQ(ascii_encode_response(*decoded), wire);
}

TEST(ProtocolGolden, XmlQuery) {
  const std::string wire = xml_encode_query(canonical_query());
  golden_check("query.xml", wire);
  const auto decoded = xml_decode_query(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, canonical_query());
  EXPECT_EQ(xml_encode_query(*decoded), wire);
}

TEST(ProtocolGolden, XmlResponse) {
  const CollectorResponse resp = canonical_response();
  const std::string wire = xml_encode_response(resp);
  golden_check("response.xml", wire);
  const auto decoded = xml_decode_response(wire);
  ASSERT_TRUE(decoded.has_value());
  expect_response_equal(resp, *decoded, /*carries_staleness=*/true);
  EXPECT_EQ(xml_encode_response(*decoded), wire);
}

TEST(ProtocolGolden, XmlHistory) {
  const sim::MeasurementHistory hist = canonical_history();
  const std::string req = xml_encode_history_request("if:r1:2");
  golden_check("history_request.xml", req);
  const auto req_id = xml_decode_history_request(req);
  ASSERT_TRUE(req_id.has_value());
  EXPECT_EQ(*req_id, "if:r1:2");
  EXPECT_EQ(xml_encode_history_request(*req_id), req);

  const std::string wire = xml_encode_history("if:r1:2", hist);
  golden_check("history.xml", wire);
  const auto decoded = xml_decode_history(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->first, "if:r1:2");
  ASSERT_EQ(decoded->second.size(), hist.size());
  for (std::size_t i = 0; i < hist.size(); ++i) {
    EXPECT_EQ(decoded->second[i], hist.at(i)) << "sample " << i;
  }
}

TEST(ProtocolGolden, HttpFraming) {
  const std::string body = xml_encode_query(canonical_query());
  const std::string wire = http_frame("/remos/query", body);
  golden_check("framed_query.http", wire);
  const auto unframed = http_unframe(wire);
  ASSERT_TRUE(unframed.has_value());
  EXPECT_EQ(unframed->first, "/remos/query");
  EXPECT_EQ(unframed->second, body);
  EXPECT_EQ(http_frame(unframed->first, unframed->second), wire);
}

}  // namespace
}  // namespace remos::core
