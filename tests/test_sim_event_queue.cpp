// EventQueue: ordering, FIFO ties, cancellation semantics.
#include <gtest/gtest.h>

#include "sim/event_queue.hpp"

namespace remos::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.next_time(), kTimeNever);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsFireFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NextTimeReportsEarliest) {
  EventQueue q;
  q.schedule(7.0, [] {});
  q.schedule(2.5, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 2.5);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  EventId id = q.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelUnknownIdIsNoop) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(12345));
  EXPECT_FALSE(q.cancel(0));
}

TEST(EventQueue, DoubleCancelReturnsFalse) {
  EventQueue q;
  EventId id = q.schedule(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelMiddleKeepsOthers) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] { order.push_back(1); });
  EventId mid = q.schedule(2.0, [&] { order.push_back(2); });
  q.schedule(3.0, [&] { order.push_back(3); });
  q.cancel(mid);
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, NextTimeSkipsCancelledHead) {
  EventQueue q;
  EventId first = q.schedule(1.0, [] {});
  q.schedule(4.0, [] {});
  q.cancel(first);
  EXPECT_DOUBLE_EQ(q.next_time(), 4.0);
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue q;
  q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), kTimeNever);
}

TEST(EventQueue, PopReturnsTimeAndId) {
  EventQueue q;
  EventId id = q.schedule(6.5, [] {});
  auto fired = q.pop();
  EXPECT_DOUBLE_EQ(fired.time, 6.5);
  EXPECT_EQ(fired.id, id);
}

TEST(EventQueue, ManyEventsStressOrdering) {
  EventQueue q;
  // Deterministic pseudo-random times; verify global ordering on pop.
  std::uint64_t x = 99;
  for (int i = 0; i < 2000; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    q.schedule(static_cast<double>(x % 10000) / 100.0, [] {});
  }
  double last = -1.0;
  while (!q.empty()) {
    auto fired = q.pop();
    EXPECT_GE(fired.time, last);
    last = fired.time;
  }
}

}  // namespace
}  // namespace remos::sim
