// WaterfillSolver: randomized equivalence against a naive reference
// rescan solver, allocation invariants, determinism, and the FlowEngine
// path cache's invalidation on topology change.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "core/waterfill.hpp"
#include "net/flows.hpp"
#include "sim/thread_pool.hpp"

namespace remos {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Problem {
  std::vector<double> capacity;
  std::vector<std::size_t> offsets;
  std::vector<std::uint32_t> resources;
  std::vector<double> demand;
};

/// Textbook rescan water-filler, retained as the reference the optimized
/// kernel is checked against: every round recomputes every resource's
/// saturation level from scratch. Same freeze tolerance (1e-9) and the
/// same per-caller level options as the kernel.
std::vector<double> naive_waterfill(const Problem& p, const core::WaterfillOptions& opt) {
  const std::size_t nf = p.demand.size();
  const std::size_t nr = p.capacity.size();
  std::vector<double> rates(nf, 0.0);
  std::vector<char> frozen(nf, 0);
  double level = 0.0;
  for (;;) {
    std::vector<double> frozen_usage(nr, 0.0);
    std::vector<std::size_t> unfrozen(nr, 0);
    std::size_t active = 0;
    for (std::size_t f = 0; f < nf; ++f) {
      for (std::size_t k = p.offsets[f]; k < p.offsets[f + 1]; ++k) {
        if (frozen[f] != 0) {
          frozen_usage[p.resources[k]] += rates[f];
        } else {
          ++unfrozen[p.resources[k]];
        }
      }
      if (frozen[f] == 0) ++active;
    }
    if (active == 0) break;
    std::vector<double> sat(nr, kInf);
    double next = kInf;
    for (std::size_t r = 0; r < nr; ++r) {
      if (unfrozen[r] == 0) continue;
      sat[r] = (p.capacity[r] - frozen_usage[r]) / static_cast<double>(unfrozen[r]);
      next = std::min(next, sat[r]);
    }
    for (std::size_t f = 0; f < nf; ++f) {
      if (frozen[f] == 0) next = std::min(next, p.demand[f]);
    }
    if (!std::isfinite(next)) break;
    if (opt.monotone_level) {
      level = std::max(level, next);
    } else {
      level = next;
      if (opt.clamp_negative_level && level < 0.0) level = 0.0;
    }
    const double thr = level + 1e-9;
    bool any = false;
    for (std::size_t f = 0; f < nf; ++f) {
      if (frozen[f] != 0) continue;
      bool freeze = p.demand[f] <= thr;
      for (std::size_t k = p.offsets[f]; k < p.offsets[f + 1] && !freeze; ++k) {
        freeze = sat[p.resources[k]] <= thr;
      }
      if (freeze) {
        frozen[f] = 1;
        rates[f] = std::min(level, p.demand[f]);
        any = true;
      }
    }
    if (!any) break;
  }
  return rates;
}

/// 1..16 resources, 1..32 flows crossing 1..4 of them (duplicates allowed
/// — each crossing is a constraint, as on a path revisiting a link), ~30%
/// greedy (infinite-demand) flows.
Problem random_problem(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  Problem p;
  const std::size_t nr = std::uniform_int_distribution<std::size_t>(1, 16)(rng);
  const std::size_t nf = std::uniform_int_distribution<std::size_t>(1, 32)(rng);
  std::uniform_real_distribution<double> cap_d(0.5, 100.0);
  std::uniform_int_distribution<std::size_t> deg_d(1, 4);
  std::uniform_int_distribution<std::uint32_t> res_d(0, static_cast<std::uint32_t>(nr - 1));
  std::uniform_real_distribution<double> dem_d(0.1, 50.0);
  std::uniform_int_distribution<int> pct_d(0, 99);
  p.capacity.resize(nr);
  for (double& c : p.capacity) c = cap_d(rng);
  p.offsets.push_back(0);
  for (std::size_t f = 0; f < nf; ++f) {
    const std::size_t deg = deg_d(rng);
    for (std::size_t k = 0; k < deg; ++k) p.resources.push_back(res_d(rng));
    p.offsets.push_back(p.resources.size());
    p.demand.push_back(pct_d(rng) < 30 ? kInf : dem_d(rng));
  }
  return p;
}

TEST(Waterfill, MatchesNaiveReferenceOnRandomProblems) {
  core::WaterfillSolver solver;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const Problem p = random_problem(seed);
    for (const bool monotone : {true, false}) {
      core::WaterfillOptions opt;
      opt.monotone_level = monotone;       // fluid-engine flavor
      opt.clamp_negative_level = !monotone;  // Modeler flavor
      std::vector<double> rates(p.demand.size(), 0.0);
      solver.solve(p.capacity, p.offsets, p.resources, p.demand, rates, opt);
      const std::vector<double> want = naive_waterfill(p, opt);
      for (std::size_t f = 0; f < rates.size(); ++f) {
        EXPECT_NEAR(rates[f], want[f], 1e-9)
            << "seed " << seed << " monotone " << monotone << " flow " << f;
      }
    }
  }
}

TEST(Waterfill, RandomAllocationsAreFeasibleAndMaxMin) {
  core::WaterfillSolver solver;
  for (std::uint64_t seed = 100; seed < 130; ++seed) {
    const Problem p = random_problem(seed);
    core::WaterfillOptions opt;
    opt.monotone_level = true;
    std::vector<double> rates(p.demand.size(), 0.0);
    solver.solve(p.capacity, p.offsets, p.resources, p.demand, rates, opt);
    std::vector<double> used(p.capacity.size(), 0.0);
    for (std::size_t f = 0; f < p.demand.size(); ++f) {
      for (std::size_t k = p.offsets[f]; k < p.offsets[f + 1]; ++k) {
        used[p.resources[k]] += rates[f];
      }
    }
    // Feasibility: no resource overcommitted (counting path multiplicity).
    for (std::size_t r = 0; r < p.capacity.size(); ++r) {
      EXPECT_LE(used[r], p.capacity[r] + 1e-6) << "seed " << seed << " resource " << r;
    }
    // Max-min optimality: every unsatisfied flow crosses a saturated
    // resource — no rate can be raised without lowering a smaller one.
    for (std::size_t f = 0; f < p.demand.size(); ++f) {
      if (rates[f] >= p.demand[f] - 1e-6) continue;
      bool bottlenecked = false;
      for (std::size_t k = p.offsets[f]; k < p.offsets[f + 1] && !bottlenecked; ++k) {
        bottlenecked = used[p.resources[k]] >= p.capacity[p.resources[k]] - 1e-6;
      }
      EXPECT_TRUE(bottlenecked) << "seed " << seed << " flow " << f;
    }
  }
}

TEST(Waterfill, RepeatedSolvesAreBitIdentical) {
  core::WaterfillSolver solver;
  const Problem p = random_problem(7);
  core::WaterfillOptions opt;
  opt.monotone_level = true;
  std::vector<double> a(p.demand.size(), 0.0);
  std::vector<double> b(p.demand.size(), 0.0);
  const core::WaterfillStats s1 =
      solver.solve(p.capacity, p.offsets, p.resources, p.demand, a, opt);
  const core::WaterfillStats s2 =
      solver.solve(p.capacity, p.offsets, p.resources, p.demand, b, opt);
  EXPECT_EQ(s1.rounds, s2.rounds);
  EXPECT_EQ(s1.demand_frozen, s2.demand_frozen);
  EXPECT_EQ(s1.saturation_frozen, s2.saturation_frozen);
  // Reusing the solver's arenas must not perturb a single bit.
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(double)));
}

TEST(Waterfill, StatsClassifyFreezes) {
  core::WaterfillSolver solver;
  // One capacity-10 resource: a demand-2 flow freezes on its cap first,
  // the greedy flow then saturates the remainder at level 8.
  const std::vector<double> capacity{10.0};
  const std::vector<std::size_t> offsets{0, 1, 2};
  const std::vector<std::uint32_t> resources{0, 0};
  const std::vector<double> demand{2.0, kInf};
  std::vector<double> rates(2, 0.0);
  core::WaterfillOptions opt;
  opt.monotone_level = true;
  const core::WaterfillStats s =
      solver.solve(capacity, offsets, resources, demand, rates, opt);
  EXPECT_DOUBLE_EQ(rates[0], 2.0);
  EXPECT_DOUBLE_EQ(rates[1], 8.0);
  EXPECT_EQ(s.rounds, 2u);
  EXPECT_EQ(s.demand_frozen, 1u);
  EXPECT_EQ(s.saturation_frozen, 1u);
}

TEST(Waterfill, EmptyProblem) {
  core::WaterfillSolver solver;
  const std::vector<std::size_t> offsets{0};
  const std::vector<double> nothing;
  const std::vector<std::uint32_t> no_resources;
  std::vector<double> rates;
  const core::WaterfillStats s = solver.solve(nothing, offsets, no_resources, nothing, rates,
                                              core::WaterfillOptions{});
  EXPECT_EQ(s.rounds, 0u);
  EXPECT_EQ(s.demand_frozen, 0u);
  EXPECT_EQ(s.saturation_frozen, 0u);
}

/// `clusters` independent sub-problems (private resources + flows) plus one
/// shared backbone resource crossed by every flow but provisioned far above
/// the sum of all demand caps — the partitioner must cut it and recover
/// exactly `clusters` components. ~30% greedy flows per cluster exercise the
/// min-crossed-capacity refinement of the cut bound (an infinite demand
/// alone would make the backbone uncuttable).
Problem clustered_problem(std::uint64_t seed, std::size_t clusters) {
  std::mt19937_64 rng(seed);
  Problem p;
  std::uniform_int_distribution<std::size_t> nr_d(2, 6);
  std::uniform_int_distribution<std::size_t> nf_d(4, 12);
  std::uniform_real_distribution<double> cap_d(0.5, 100.0);
  std::uniform_int_distribution<std::size_t> deg_d(1, 3);
  std::uniform_real_distribution<double> dem_d(0.1, 50.0);
  std::uniform_int_distribution<int> pct_d(0, 99);
  p.offsets.push_back(0);
  const std::uint32_t backbone = 0;  // key 0; capacity patched at the end
  p.capacity.push_back(0.0);
  for (std::size_t c = 0; c < clusters; ++c) {
    const std::size_t nr = nr_d(rng);
    const std::uint32_t base = static_cast<std::uint32_t>(p.capacity.size());
    for (std::size_t r = 0; r < nr; ++r) p.capacity.push_back(cap_d(rng));
    std::uniform_int_distribution<std::uint32_t> res_d(base, base + static_cast<std::uint32_t>(nr) - 1);
    const std::size_t nf = nf_d(rng);
    for (std::size_t f = 0; f < nf; ++f) {
      const std::size_t deg = deg_d(rng);
      for (std::size_t k = 0; k < deg; ++k) p.resources.push_back(res_d(rng));
      p.resources.push_back(backbone);
      p.offsets.push_back(p.resources.size());
      p.demand.push_back(pct_d(rng) < 30 ? kInf : dem_d(rng));
    }
  }
  // Every flow is capped by its cluster's finite capacities, so total
  // backbone load is provably below sum(per-flow min crossed capacity).
  p.capacity[backbone] = 100.0 * static_cast<double>(p.demand.size()) + 1000.0;
  return p;
}

TEST(WaterfillPartition, BitIdenticalToMonolithicOnClusteredProblems) {
  core::WaterfillSolver mono_solver;
  core::WaterfillSolver part_solver;
  for (std::uint64_t seed = 200; seed < 230; ++seed) {
    const std::size_t clusters = 2 + static_cast<std::size_t>(seed % 5);
    const Problem p = clustered_problem(seed, clusters);
    core::WaterfillOptions mono;
    mono.monotone_level = true;
    core::WaterfillOptions part = mono;
    part.partition_min_flows = 2;
    std::vector<double> a(p.demand.size(), 0.0);
    std::vector<double> b(p.demand.size(), 0.0);
    const core::WaterfillStats sm =
        mono_solver.solve(p.capacity, p.offsets, p.resources, p.demand, a, mono);
    const core::WaterfillStats sp =
        part_solver.solve(p.capacity, p.offsets, p.resources, p.demand, b, part);
    EXPECT_EQ(sm.partitions, 1u);
    // At least one component per cluster; the partitioner may split finer
    // when a cluster's own resources cannot saturate either.
    EXPECT_GE(sp.partitions, clusters) << "seed " << seed;
    // The contract the parallel driver rests on: partitioning must not
    // perturb one bit of any rate.
    EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(double)))
        << "seed " << seed;
    // Freeze classifications are per-flow facts, so the totals agree too
    // (round counts may differ: a monolithic round can freeze flows of
    // several components at once).
    EXPECT_EQ(sm.demand_frozen, sp.demand_frozen) << "seed " << seed;
    EXPECT_EQ(sm.saturation_frozen, sp.saturation_frozen) << "seed " << seed;
  }
}

TEST(WaterfillPartition, PoolSolveBitIdenticalForAnyWorkerCount) {
  const Problem p = clustered_problem(42, 6);
  core::WaterfillOptions part;
  part.monotone_level = true;
  part.partition_min_flows = 2;
  core::WaterfillSolver seq_solver;
  std::vector<double> want(p.demand.size(), 0.0);
  const core::WaterfillStats ss =
      seq_solver.solve(p.capacity, p.offsets, p.resources, p.demand, want, part);
  EXPECT_GE(ss.partitions, 6u);
  for (const std::size_t workers : {1u, 2u, 5u}) {
    sim::ThreadPool pool(workers);
    core::WaterfillOptions par = part;
    par.pool = &pool;
    core::WaterfillSolver par_solver;
    for (int rep = 0; rep < 3; ++rep) {  // arena reuse must stay clean
      std::vector<double> got(p.demand.size(), 0.0);
      const core::WaterfillStats sp =
          par_solver.solve(p.capacity, p.offsets, p.resources, p.demand, got, par);
      EXPECT_EQ(sp.rounds, ss.rounds) << workers << " workers rep " << rep;
      EXPECT_EQ(sp.partitions, ss.partitions);
      EXPECT_EQ(0, std::memcmp(want.data(), got.data(), want.size() * sizeof(double)))
          << workers << " workers rep " << rep;
    }
  }
}

TEST(WaterfillPartition, RandomProblemsMatchNaiveUnderPartitioning) {
  // Generic random problems (usually one component, sometimes more):
  // partitioning enabled at threshold 1 must still match the reference.
  core::WaterfillSolver solver;
  for (std::uint64_t seed = 300; seed < 330; ++seed) {
    const Problem p = random_problem(seed);
    core::WaterfillOptions opt;
    opt.monotone_level = true;
    opt.partition_min_flows = 1;
    std::vector<double> rates(p.demand.size(), 0.0);
    solver.solve(p.capacity, p.offsets, p.resources, p.demand, rates, opt);
    const std::vector<double> want = naive_waterfill(p, opt);
    for (std::size_t f = 0; f < rates.size(); ++f) {
      EXPECT_NEAR(rates[f], want[f], 1e-9) << "seed " << seed << " flow " << f;
    }
  }
}

TEST(WaterfillPartition, SaturableSharedResourcePreventsCutting) {
  // Two two-flow groups over private resources plus one shared resource
  // that genuinely saturates: the partitioner must refuse to cut it and
  // fall back to the monolithic kernel.
  const std::vector<double> capacity{10.0, 100.0, 100.0};
  const std::vector<std::size_t> offsets{0, 2, 4};
  const std::vector<std::uint32_t> resources{1, 0, 2, 0};
  const std::vector<double> demand{kInf, kInf};
  core::WaterfillOptions opt;
  opt.monotone_level = true;
  opt.partition_min_flows = 1;
  core::WaterfillSolver solver;
  std::vector<double> rates(2, 0.0);
  const core::WaterfillStats s =
      solver.solve(capacity, offsets, resources, demand, rates, opt);
  EXPECT_EQ(s.partitions, 1u);
  EXPECT_DOUBLE_EQ(rates[0], 5.0);
  EXPECT_DOUBLE_EQ(rates[1], 5.0);
}

TEST(PathCache, InvalidatedOnTopologyChange) {
  net::Network lan{"lan"};
  sim::Engine engine;
  const net::NodeId sw0 = lan.add_switch("sw0");
  const net::NodeId sw1 = lan.add_switch("sw1");
  const net::NodeId h0 = lan.add_host("h0");
  const net::NodeId h1 = lan.add_host("h1");
  lan.connect(h0, sw0, 100e6);
  lan.connect(h1, sw1, 100e6);
  const net::LinkId trunk = lan.connect(sw0, sw1, 1e9);
  lan.finalize();
  net::FlowEngine flows(engine, lan);

  const net::FlowId f1 = flows.start(net::FlowSpec{.src = h0, .dst = h1});
  EXPECT_EQ(flows.path_cache_misses(), 1u);
  EXPECT_DOUBLE_EQ(
      flows.directed_link_rate(trunk, true) + flows.directed_link_rate(trunk, false), 100e6);
  // A second resolution of the same (src, dst) pair hits the cache.
  (void)flows.current_rtt(h0, h1, 0.0);
  EXPECT_GE(flows.path_cache_hits(), 1u);
  flows.stop(f1);

  // Rehoming h0 onto sw1 bumps the topology version: the cached h0->h1
  // path through the trunk must not be reused by the next start.
  lan.move_host(h0, sw1, 100e6);
  const std::uint64_t misses_before = flows.path_cache_misses();
  const net::FlowId f2 = flows.start(net::FlowSpec{.src = h0, .dst = h1});
  EXPECT_EQ(flows.path_cache_misses(), misses_before + 1);
  EXPECT_DOUBLE_EQ(flows.rate(f2), 100e6);
  EXPECT_DOUBLE_EQ(
      flows.directed_link_rate(trunk, true) + flows.directed_link_rate(trunk, false), 0.0);
}

}  // namespace
}  // namespace remos
