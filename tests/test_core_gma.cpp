// GMA mapping: producers, directory service, directory-driven consumer.
#include <gtest/gtest.h>

#include "apps/testbed.hpp"
#include "core/gma.hpp"

namespace remos::core::gma {
namespace {

using apps::LanTestbed;

LanTestbed::Params campus(const char* prefix, std::uint64_t seed) {
  LanTestbed::Params p;
  p.hosts = 4;
  p.switches = 2;
  p.seed = seed;
  p.site_prefix = prefix;
  return p;
}

TEST(Gma, CollectorIsAProducer) {
  LanTestbed lan(campus("10.1.0.0/16", 1));
  CollectorProducer producer(*lan.collector);
  EXPECT_EQ(producer.producer_name(), "campus-snmp");
  const auto types = producer.event_types();
  EXPECT_EQ(types.size(), 2u);
  const auto resp = producer.produce_topology(lan.host_addrs(2));
  EXPECT_TRUE(resp.complete);
  EXPECT_GT(resp.topology.node_count(), 0u);
}

TEST(Gma, ProducerServesHistoryEvents) {
  LanTestbed lan(campus("10.1.0.0/16", 2));
  CollectorProducer producer(*lan.collector);
  const auto resp = producer.produce_topology(lan.host_addrs(2));
  lan.engine.advance(30.0);
  bool found = false;
  for (const VEdge& e : resp.topology.edges()) {
    if (producer.produce_history(e.id) != nullptr) found = true;
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(producer.produce_history("nonsense"), nullptr);
}

TEST(GmaDirectory, RegisterLookupUnregister) {
  LanTestbed lan(campus("10.1.0.0/16", 3));
  CollectorProducer producer(*lan.collector);
  DirectoryService directory;
  directory.register_producer(
      {"campusA", "snmp", lan.collector->responsibility(), &producer});
  EXPECT_EQ(directory.size(), 1u);
  const auto found = directory.lookup(lan.host_addrs(1)[0]);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0], &producer);
  EXPECT_TRUE(directory.lookup(*net::Ipv4Address::parse("192.0.2.1")).empty());
  directory.unregister("campusA");
  EXPECT_EQ(directory.size(), 0u);
}

TEST(GmaDirectory, MostSpecificPrefixFirst) {
  LanTestbed lan(campus("10.1.0.0/16", 4));
  CollectorProducer narrow(*lan.collector);
  CollectorProducer wide(*lan.collector);
  DirectoryService directory;
  directory.register_producer({"wide", "master", {*net::Ipv4Prefix::parse("10.0.0.0/8")}, &wide});
  directory.register_producer(
      {"narrow", "snmp", lan.collector->responsibility(), &narrow});
  const auto found = directory.lookup(lan.host_addrs(1)[0]);
  ASSERT_EQ(found.size(), 2u);
  EXPECT_EQ(found[0], &narrow);  // longest prefix wins the front slot
  EXPECT_EQ(found[1], &wide);
}

TEST(GmaDirectory, ClassFilteredLookup) {
  LanTestbed lan(campus("10.1.0.0/16", 5));
  CollectorProducer a(*lan.collector);
  CollectorProducer b(*lan.collector);
  DirectoryService directory;
  directory.register_producer({"a", "snmp", {*net::Ipv4Prefix::parse("10.0.0.0/8")}, &a});
  directory.register_producer({"b", "benchmark", {*net::Ipv4Prefix::parse("10.0.0.0/8")}, &b});
  const auto snmp_only = directory.lookup(lan.host_addrs(1)[0], "snmp");
  ASSERT_EQ(snmp_only.size(), 1u);
  EXPECT_EQ(snmp_only[0], &a);
}

TEST(GmaDirectory, ReregistrationReplaces) {
  LanTestbed lan(campus("10.1.0.0/16", 6));
  CollectorProducer p1(*lan.collector);
  CollectorProducer p2(*lan.collector);
  DirectoryService directory;
  directory.register_producer({"x", "snmp", lan.collector->responsibility(), &p1});
  directory.register_producer({"x", "snmp", lan.collector->responsibility(), &p2});
  EXPECT_EQ(directory.size(), 1u);
  EXPECT_EQ(directory.find("x")->producer, &p2);
}

TEST(GmaConsumer, QueriesAcrossProducers) {
  // Two campuses with disjoint address spaces, discovered via the GMA
  // directory rather than a hard-wired master.
  LanTestbed a(campus("10.1.0.0/16", 7));
  LanTestbed b(campus("10.2.0.0/16", 8));
  CollectorProducer pa(*a.collector);
  CollectorProducer pb(*b.collector);
  DirectoryService directory;
  directory.register_producer({"campusA", "snmp", a.collector->responsibility(), &pa});
  directory.register_producer({"campusB", "snmp", b.collector->responsibility(), &pb});

  DirectoryConsumer consumer(directory);
  std::vector<net::Ipv4Address> subjects = a.host_addrs(2);
  const auto b_nodes = b.host_addrs(2);
  subjects.insert(subjects.end(), b_nodes.begin(), b_nodes.end());
  const CollectorResponse resp = consumer.query(subjects);
  EXPECT_TRUE(resp.complete);
  for (const auto& subj : subjects) {
    EXPECT_NE(resp.topology.find_by_addr(subj), kNoVNode) << subj.to_string();
  }
  EXPECT_EQ(consumer.queries_issued(), 1u);
}

TEST(GmaConsumer, UncoveredSubjectIncomplete) {
  LanTestbed a(campus("10.1.0.0/16", 9));
  CollectorProducer pa(*a.collector);
  DirectoryService directory;
  directory.register_producer({"campusA", "snmp", a.collector->responsibility(), &pa});
  DirectoryConsumer consumer(directory);
  auto subjects = a.host_addrs(1);
  subjects.push_back(*net::Ipv4Address::parse("198.51.100.1"));
  EXPECT_FALSE(consumer.query(subjects).complete);
}

}  // namespace
}  // namespace remos::core::gma
