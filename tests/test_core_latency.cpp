// Latency / jitter metrics (§6.2 extension): queueing-aware RTT in the
// fluid model and the Benchmark Collector's ping machinery.
#include <gtest/gtest.h>

#include "apps/testbed.hpp"
#include "net/flows.hpp"

namespace remos::core {
namespace {

using apps::WanTestbed;

WanTestbed::Params two_sites() {
  WanTestbed::Params p;
  p.sites = {{"a", 2, 100e6, 5e6}, {"b", 2, 100e6, 5e6}};
  p.cross_traffic_load = 0.0;
  return p;
}

TEST(Rtt, IdleNetworkIsPurePropagation) {
  net::Network net("rtt");
  sim::Engine engine;
  const auto a = net.add_host("a");
  const auto r = net.add_router("r");
  const auto b = net.add_host("b");
  net.connect(a, r, 10e6, 0.010);
  net.connect(r, b, 10e6, 0.020);
  net.finalize();
  net::FlowEngine flows(engine, net);
  EXPECT_NEAR(flows.current_rtt(a, b), 2 * (0.010 + 0.020), 1e-12);
}

TEST(Rtt, LoadAddsQueueingDelay) {
  net::Network net("rtt");
  sim::Engine engine;
  const auto a = net.add_host("a");
  const auto r = net.add_router("r");
  const auto b = net.add_host("b");
  net.connect(a, r, 10e6, 0.001);
  net.connect(r, b, 10e6, 0.001);
  net.finalize();
  net::FlowEngine flows(engine, net);
  const double idle = flows.current_rtt(a, b);
  flows.start(net::FlowSpec{.src = a, .dst = b, .demand_bps = 8e6});  // 80% load
  const double loaded = flows.current_rtt(a, b);
  EXPECT_GT(loaded, idle);
  // rho = 0.8 -> penalty 0.002 * 4 per loaded directed hop (2 hops).
  EXPECT_NEAR(loaded - idle, 2 * 0.002 * (0.8 / 0.2), 1e-9);
}

TEST(Rtt, SaturatedLinkClampsPenalty) {
  net::Network net("rtt");
  sim::Engine engine;
  const auto a = net.add_host("a");
  const auto b = net.add_host("b");
  net.connect(a, b, 10e6, 0.001);
  net.finalize();
  net::FlowEngine flows(engine, net);
  flows.start(net::FlowSpec{.src = a, .dst = b});  // greedy: 100%
  const double rtt = flows.current_rtt(a, b);
  EXPECT_LT(rtt, 1.0);  // rho capped at 0.95, so the penalty stays finite
}

TEST(BenchmarkLatency, PingRecordsRtt) {
  WanTestbed w(two_sites());
  const auto rtt = w.benchmark->ping("a", "b");
  ASSERT_TRUE(rtt.has_value());
  EXPECT_GT(*rtt, 0.0);
  EXPECT_FALSE(w.benchmark->ping("a", "nowhere").has_value());
}

TEST(BenchmarkLatency, LatencyIsMeanOfPings) {
  WanTestbed w(two_sites());
  EXPECT_FALSE(w.benchmark->latency("a", "b").has_value());
  for (int i = 0; i < 5; ++i) {
    w.benchmark->ping("a", "b");
    w.engine.advance(1.0);
  }
  const auto lat = w.benchmark->latency("a", "b");
  ASSERT_TRUE(lat.has_value());
  EXPECT_GT(*lat, 0.0);
}

TEST(BenchmarkLatency, JitterNeedsTwoSamplesAndSeesLoadChange) {
  WanTestbed w(two_sites());
  w.benchmark->ping("a", "b");
  EXPECT_FALSE(w.benchmark->jitter("a", "b").has_value());
  // Load the path between pings: RTT samples now differ -> jitter > 0.
  w.flows->start(net::FlowSpec{.src = w.host("a", 1), .dst = w.host("b", 1)});
  w.benchmark->ping("a", "b");
  const auto jit = w.benchmark->jitter("a", "b");
  ASSERT_TRUE(jit.has_value());
  EXPECT_GT(*jit, 0.0);
}

TEST(BenchmarkLatency, PeriodicProbesAccumulateJitter) {
  WanTestbed::Params p = two_sites();
  p.cross_traffic_load = 0.4;
  p.cross_period_s = 3.0;  // fast-changing load => jitter
  WanTestbed w(p);
  w.benchmark->enable_latency_probes();
  w.warm_up(120.0);
  const auto lat = w.benchmark->latency("a", "b");
  const auto jit = w.benchmark->jitter("a", "b");
  ASSERT_TRUE(lat.has_value());
  ASSERT_TRUE(jit.has_value());
  EXPECT_GT(*jit, 0.0);
  EXPECT_LT(*jit, *lat);  // jitter is a fraction of the RTT, not noise blowup
}

}  // namespace
}  // namespace remos::core
