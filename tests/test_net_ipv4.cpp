// Ipv4Address / Ipv4Prefix parsing, formatting, containment.
#include <gtest/gtest.h>

#include "net/ipv4.hpp"

namespace remos::net {
namespace {

TEST(Ipv4Address, RoundTrip) {
  const auto a = Ipv4Address::parse("10.1.2.3");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->to_string(), "10.1.2.3");
  EXPECT_EQ(a->value(), 0x0A010203u);
}

TEST(Ipv4Address, OctetConstructor) {
  const Ipv4Address a(192, 168, 0, 1);
  EXPECT_EQ(a.to_string(), "192.168.0.1");
}

TEST(Ipv4Address, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Address::parse(""));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3"));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4.5"));
  EXPECT_FALSE(Ipv4Address::parse("256.0.0.1"));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.x"));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4 "));
  EXPECT_FALSE(Ipv4Address::parse("-1.2.3.4"));
}

TEST(Ipv4Address, Ordering) {
  EXPECT_LT(*Ipv4Address::parse("10.0.0.1"), *Ipv4Address::parse("10.0.0.2"));
  EXPECT_LT(*Ipv4Address::parse("9.255.255.255"), *Ipv4Address::parse("10.0.0.0"));
}

TEST(Ipv4Prefix, MasksHostBits) {
  const Ipv4Prefix p(*Ipv4Address::parse("10.1.2.3"), 24);
  EXPECT_EQ(p.base().to_string(), "10.1.2.0");
  EXPECT_EQ(p.length(), 24);
  EXPECT_EQ(p.to_string(), "10.1.2.0/24");
}

TEST(Ipv4Prefix, ParseRoundTrip) {
  const auto p = Ipv4Prefix::parse("172.16.0.0/12");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->to_string(), "172.16.0.0/12");
}

TEST(Ipv4Prefix, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.0"));
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.0/33"));
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.0/"));
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0/24"));
}

TEST(Ipv4Prefix, ContainsAddresses) {
  const auto p = *Ipv4Prefix::parse("10.1.0.0/16");
  EXPECT_TRUE(p.contains(*Ipv4Address::parse("10.1.0.1")));
  EXPECT_TRUE(p.contains(*Ipv4Address::parse("10.1.255.255")));
  EXPECT_FALSE(p.contains(*Ipv4Address::parse("10.2.0.0")));
}

TEST(Ipv4Prefix, ContainsPrefixes) {
  const auto outer = *Ipv4Prefix::parse("10.0.0.0/8");
  const auto inner = *Ipv4Prefix::parse("10.5.0.0/16");
  EXPECT_TRUE(outer.contains(inner));
  EXPECT_FALSE(inner.contains(outer));
  EXPECT_TRUE(outer.contains(outer));
}

TEST(Ipv4Prefix, EdgeLengths) {
  const auto all = *Ipv4Prefix::parse("0.0.0.0/0");
  EXPECT_TRUE(all.contains(*Ipv4Address::parse("255.255.255.255")));
  const auto host = *Ipv4Prefix::parse("10.0.0.1/32");
  EXPECT_TRUE(host.contains(*Ipv4Address::parse("10.0.0.1")));
  EXPECT_FALSE(host.contains(*Ipv4Address::parse("10.0.0.2")));
}

TEST(Ipv4Prefix, HostEnumeration) {
  const auto p = *Ipv4Prefix::parse("10.0.0.0/24");
  EXPECT_EQ(p.host(1).to_string(), "10.0.0.1");
  EXPECT_EQ(p.host(254).to_string(), "10.0.0.254");
}

TEST(Ipv4Prefix, NetmaskValues) {
  EXPECT_EQ(Ipv4Prefix::parse("10.0.0.0/8")->netmask(), 0xFF000000u);
  EXPECT_EQ(Ipv4Prefix::parse("10.0.0.0/32")->netmask(), 0xFFFFFFFFu);
  EXPECT_EQ(Ipv4Prefix::parse("0.0.0.0/0")->netmask(), 0u);
}

}  // namespace
}  // namespace remos::net
