// Robustness sweeps: parsers and decoders must reject or survive mangled
// input — never crash, hang, or return half-validated garbage.
#include <gtest/gtest.h>

#include "core/protocol.hpp"
#include "core/xml.hpp"
#include "sim/rng.hpp"
#include "snmp/oid.hpp"

namespace remos {
namespace {

std::string random_bytes(sim::Rng& rng, std::size_t max_len) {
  const auto len = static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(max_len)));
  std::string out(len, '\0');
  for (char& c : out) c = static_cast<char>(rng.uniform_int(1, 255));
  return out;
}

/// Mutate a valid document: flip, delete, or insert bytes.
std::string mangle(std::string doc, sim::Rng& rng) {
  const int edits = static_cast<int>(rng.uniform_int(1, 8));
  for (int e = 0; e < edits && !doc.empty(); ++e) {
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(doc.size()) - 1));
    switch (rng.uniform_int(0, 2)) {
      case 0: doc[pos] = static_cast<char>(rng.uniform_int(1, 255)); break;
      case 1: doc.erase(pos, 1); break;
      default: doc.insert(pos, 1, static_cast<char>(rng.uniform_int(32, 126))); break;
    }
  }
  return doc;
}

core::CollectorResponse sample_response() {
  core::CollectorResponse resp;
  const auto a = resp.topology.add_node(
      core::VNode{core::VNodeKind::kHost, "host@10.0.0.1", *net::Ipv4Address::parse("10.0.0.1")});
  const auto b = resp.topology.add_node(
      core::VNode{core::VNodeKind::kRouter, "rtr@10.0.0.254", *net::Ipv4Address::parse("10.0.0.254")});
  resp.topology.add_edge(core::VEdge{a, b, 1e8, 1e6, 2e6, 0.001, "edge-1"});
  resp.cost_s = 0.5;
  return resp;
}

TEST(Fuzzish, XmlParserSurvivesRandomBytes) {
  sim::Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    (void)core::xml_parse(random_bytes(rng, 200));  // must not crash/hang
  }
}

TEST(Fuzzish, XmlParserSurvivesMangledDocuments) {
  sim::Rng rng(2);
  const std::string valid = core::xml_encode_response(sample_response());
  for (int i = 0; i < 2000; ++i) {
    const std::string doc = mangle(valid, rng);
    auto parsed = core::xml_parse(doc);
    // Parsing may succeed or fail; decoding must validate what it accepts.
    auto decoded = core::xml_decode_response(doc);
    if (decoded) {
      for (const auto& e : decoded->topology.edges()) {
        EXPECT_LT(e.a, decoded->topology.node_count());
        EXPECT_LT(e.b, decoded->topology.node_count());
      }
    }
    (void)parsed;
  }
}

TEST(Fuzzish, AsciiDecoderSurvivesMangledResponses) {
  sim::Rng rng(3);
  const std::string valid = core::ascii_encode_response(sample_response());
  for (int i = 0; i < 2000; ++i) {
    auto decoded = core::ascii_decode_response(mangle(valid, rng));
    if (decoded) {
      for (const auto& e : decoded->topology.edges()) {
        EXPECT_LT(e.a, decoded->topology.node_count());
        EXPECT_LT(e.b, decoded->topology.node_count());
      }
    }
  }
}

TEST(Fuzzish, AsciiQueryDecoderSurvives) {
  sim::Rng rng(4);
  const std::string valid = core::ascii_encode_query(
      {*net::Ipv4Address::parse("10.0.0.1"), *net::Ipv4Address::parse("10.0.0.2")});
  for (int i = 0; i < 2000; ++i) {
    (void)core::ascii_decode_query(mangle(valid, rng));
    (void)core::ascii_decode_query(random_bytes(rng, 120));
  }
}

TEST(Fuzzish, HttpUnframeSurvives) {
  sim::Rng rng(5);
  const std::string valid = core::http_frame("/query", "<query/>");
  for (int i = 0; i < 2000; ++i) {
    (void)core::http_unframe(mangle(valid, rng));
    (void)core::http_unframe(random_bytes(rng, 150));
  }
}

TEST(Fuzzish, OidParserSurvives) {
  sim::Rng rng(6);
  for (int i = 0; i < 5000; ++i) {
    (void)snmp::Oid::parse(random_bytes(rng, 60));
    (void)snmp::Oid::parse(mangle("1.3.6.1.2.1.2.2.1.10.4", rng));
  }
}

TEST(Fuzzish, Ipv4ParserSurvives) {
  sim::Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    (void)net::Ipv4Address::parse(random_bytes(rng, 24));
    (void)net::Ipv4Prefix::parse(mangle("10.20.30.0/24", rng));
  }
}

}  // namespace
}  // namespace remos
